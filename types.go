// Package caar is a context-aware advertisement recommender for high-speed
// social news feeds — an open reconstruction of the system described in
// "Context-aware Advertisement Recommendation for High-speed Social News
// Feeding" (ICDE 2016). See DESIGN.md for the reconstruction notes.
//
// The engine ingests a stream of social events — posts fanning out along a
// follower graph, and user check-ins — and continuously knows, for every
// user, the top-k advertisements most relevant to the user's current
// context: what they are reading now (a decayed window over their feed),
// where they are, and what time of day it is. Three interchangeable
// algorithms are provided: the incremental CAP engine (the paper's
// contribution, default), and the RS and IL baselines used in the
// evaluation.
//
// Basic use:
//
//	eng, _ := caar.Open(caar.DefaultConfig())
//	eng.AddUser("alice")
//	eng.AddUser("bob")
//	eng.Follow("alice", "bob")
//	eng.AddAd(caar.Ad{ID: "sneaker-sale", Text: "running shoes sale", Bid: 0.4})
//	eng.Post("bob", "morning run, new shoes day", time.Now())
//	recs, _ := eng.Recommend("alice", 3, time.Now())
package caar

import (
	"time"

	"caar/internal/timeslot"
)

// Algorithm selects the recommendation engine.
type Algorithm string

// Available algorithms.
const (
	// AlgorithmCAP is the incremental Context-aware Ad Publishing engine —
	// the paper's contribution and the default.
	AlgorithmCAP Algorithm = "CAP"
	// AlgorithmIL is the inverted-list baseline: exact per-query index
	// evaluation with no incremental reuse.
	AlgorithmIL Algorithm = "IL"
	// AlgorithmRS is the exhaustive re-scan baseline.
	AlgorithmRS Algorithm = "RS"
)

// Slot is a coarse time-of-day bucket for ad targeting.
type Slot string

// Available slots. The partition mirrors the evaluation's two reported
// windows (morning [05:00,13:00), afternoon [13:00,20:00)) plus night.
const (
	Night     Slot = "night"
	Morning   Slot = "morning"
	Afternoon Slot = "afternoon"
)

// SlotOf returns the slot containing t.
func SlotOf(t time.Time) Slot {
	switch timeslot.Of(t) {
	case timeslot.Morning:
		return Morning
	case timeslot.Afternoon:
		return Afternoon
	default:
		return Night
	}
}

func (s Slot) internal() (timeslot.Slot, bool) {
	switch s {
	case Night:
		return timeslot.Night, true
	case Morning:
		return timeslot.Morning, true
	case Afternoon:
		return timeslot.Afternoon, true
	default:
		return 0, false
	}
}

// Region is the geographic coverage rectangle of the engine's spatial index.
// Users must check in inside the region; ads may target circles overlapping
// it.
type Region struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
}

// Target is an ad's geographic target: a circle around a point. A nil
// *Target on an Ad means global targeting.
type Target struct {
	Lat, Lng float64
	RadiusKm float64
}

// Ad is one advertisement as submitted by an advertiser.
type Ad struct {
	// ID is the advertiser-assigned unique identifier.
	ID string
	// Text is the ad copy; its keywords are extracted with the same text
	// pipeline applied to posts.
	Text string
	// Campaign optionally names a budgeted campaign created with
	// AddCampaign. Empty means unbudgeted (always servable).
	Campaign string
	// Target restricts the ad geographically; nil means global.
	Target *Target
	// Slots restricts the ad to time-of-day slots; empty means all slots.
	Slots []Slot
	// Bid is the advertiser's per-impression bid in (0, 1].
	Bid float64
}

// PostRequest is one post in a PostBatch call: the batched form of the
// Post(author, text, at) argument list. The asynchronous ingest pipeline
// buffers these between accept and apply.
type PostRequest struct {
	Author string
	Text   string
	At     time.Time
}

// CheckInRequest is one location update in a CheckInBatch call: the batched
// form of the CheckIn(user, lat, lng, at) argument list.
type CheckInRequest struct {
	User string
	Lat  float64
	Lng  float64
	At   time.Time
}

// Recommendation is one ranked ad for a user, with the score decomposition.
type Recommendation struct {
	AdID  string
	Score float64
	Text  float64 // textual-relevance component
	Geo   float64 // geographic-proximity component
	Bid   float64 // bid component
}

// Stats is a snapshot of engine state for monitoring.
type Stats struct {
	Users          int
	Ads            int
	FollowEdges    int
	PostsDelivered uint64
	CheckIns       uint64
	Shards         int
	// CandidateBufferEntries is the total CAP candidate-buffer size across
	// users (0 for other algorithms).
	CandidateBufferEntries int
	// CachedMessages is the number of live shared delta lists (CAP with
	// fan-out sharing only).
	CachedMessages int
}
