package main

import (
	"errors"
	"strings"
	"sync"

	"caar/client"
)

// outcome classifies one mutation attempt from the harness's point of view.
type outcome int

const (
	// outcomeAcked: the server returned 2xx — the write is durable (the
	// journal runs fsync=always and acknowledgment follows the append).
	outcomeAcked outcome = iota
	// outcomeRejected: the server returned 4xx — the write was refused and
	// is certainly not in the state.
	outcomeRejected
	// outcomeUncertain: transport error or a 5xx that is not the recovery
	// gate — the write may or may not have been applied (e.g. applied and
	// journaled, but the process was killed before the response left).
	outcomeUncertain
	// outcomeNotSent: the request certainly never reached the engine — the
	// client breaker was open, or the recovery gate 503'd it before any
	// work. Safe to resend.
	outcomeNotSent
)

// classify maps a client error to an outcome. A nil error is outcomeAcked.
func classify(err error) outcome {
	if err == nil {
		return outcomeAcked
	}
	if errors.Is(err, client.ErrCircuitOpen) {
		return outcomeNotSent
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch {
		case ae.StatusCode >= 400 && ae.StatusCode < 500:
			return outcomeRejected
		case ae.StatusCode == 503 && strings.Contains(ae.Message, "recovering"):
			// The recovery gate rejects before any handler work happens.
			return outcomeNotSent
		default:
			return outcomeUncertain
		}
	}
	return outcomeUncertain
}

// adState tracks the ledger's view of one ad's lifecycle.
type adState struct {
	addAcked        bool
	addUncertain    bool
	removeAcked     bool
	removeUncertain bool
}

// ledger is the client-side acknowledged-write record the invariant checks
// compare server state against. Every count is from the harness's own
// perspective: "acked" happened for sure, "uncertain" may have happened.
type ledger struct {
	mu sync.Mutex

	ackedUsers, uncertainUsers   int
	ackedPosts, uncertainPosts   int
	rejectedPosts, rejectedOther int

	ads map[string]*adState

	// Per-campaign spend sums: acked is the total bid of impressions the
	// server acknowledged with served=true; uncertain is the total bid of
	// impression requests with unknown fate (an upper bound on spend the
	// server may have applied without us seeing the ack).
	ackedSpend     map[string]float64
	uncertainSpend map[string]float64
}

func newLedger() *ledger {
	return &ledger{
		ads:            make(map[string]*adState),
		ackedSpend:     make(map[string]float64),
		uncertainSpend: make(map[string]float64),
	}
}

func (l *ledger) ad(id string) *adState {
	s, ok := l.ads[id]
	if !ok {
		s = &adState{}
		l.ads[id] = s
	}
	return s
}

func (l *ledger) recordUser(o outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch o {
	case outcomeAcked:
		l.ackedUsers++
	case outcomeUncertain:
		l.uncertainUsers++
	case outcomeRejected:
		l.rejectedOther++
	}
}

func (l *ledger) recordPost(o outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch o {
	case outcomeAcked:
		l.ackedPosts++
	case outcomeUncertain:
		l.uncertainPosts++
	case outcomeRejected:
		l.rejectedPosts++
	}
}

func (l *ledger) recordAddAd(id string, o outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch o {
	case outcomeAcked:
		l.ad(id).addAcked = true
	case outcomeUncertain:
		l.ad(id).addUncertain = true
	}
}

func (l *ledger) recordRemoveAd(id string, o outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch o {
	case outcomeAcked:
		l.ad(id).removeAcked = true
	case outcomeUncertain:
		l.ad(id).removeUncertain = true
	case outcomeRejected:
		// A 404 on a remove proves the ad is not live server-side: either an
		// earlier attempt of this remove applied before the ack was lost (the
		// idempotent DELETE retries through crashes and open breakers), or the
		// add itself never applied. Both clear the ad's must-exist obligation;
		// neither proves it was OUR remove that was acked, so it does not join
		// the must-not-exist set.
		l.ad(id).removeUncertain = true
	}
}

// recordImpression books bid dollars for an impression attempt on the given
// campaign. served is meaningful only when o == outcomeAcked.
func (l *ledger) recordImpression(campaign string, bid float64, served bool, o outcome) {
	if campaign == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch o {
	case outcomeAcked:
		if served {
			l.ackedSpend[campaign] += bid
		}
	case outcomeUncertain:
		l.uncertainSpend[campaign] += bid
	}
}

// removedAcked returns the set of ads whose RemoveAd the server acknowledged
// — from the moment of the ack, none of them may ever be served again.
func (l *ledger) removedAcked() map[string]bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]bool)
	for id, s := range l.ads {
		if s.removeAcked {
			out[id] = true
		}
	}
	return out
}

// snapshot is an immutable copy of the ledger for the invariant checkers.
type ledgerSnapshot struct {
	AckedUsers, UncertainUsers int
	AckedPosts, UncertainPosts int

	// MustExist are acked-added ads with no acked or in-doubt removal; they
	// must be live. MustNotExist are acked-removed ads; they must be gone.
	MustExist, MustNotExist []string

	AckedSpend, UncertainSpend map[string]float64
}

func (l *ledger) snapshot() ledgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := ledgerSnapshot{
		AckedUsers: l.ackedUsers, UncertainUsers: l.uncertainUsers,
		AckedPosts: l.ackedPosts, UncertainPosts: l.uncertainPosts,
		AckedSpend:     make(map[string]float64, len(l.ackedSpend)),
		UncertainSpend: make(map[string]float64, len(l.uncertainSpend)),
	}
	for id, s := range l.ads {
		switch {
		case s.removeAcked:
			snap.MustNotExist = append(snap.MustNotExist, id)
		case s.addAcked && !s.removeUncertain:
			snap.MustExist = append(snap.MustExist, id)
		}
	}
	for k, v := range l.ackedSpend {
		snap.AckedSpend[k] = v
	}
	for k, v := range l.uncertainSpend {
		snap.UncertainSpend[k] = v
	}
	return snap
}
