package main

import (
	"fmt"
	"sort"
	"strings"

	caar "caar"
)

// verdict is one machine-checked invariant outcome, embedded per recovery
// cycle in BENCH_SOAK.json.
type verdict struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

func pass(name string, format string, args ...any) verdict {
	return verdict{Name: name, Pass: true, Detail: fmt.Sprintf(format, args...)}
}

func fail(name string, format string, args ...any) verdict {
	return verdict{Name: name, Pass: false, Detail: fmt.Sprintf(format, args...)}
}

// spendEpsilon absorbs float accumulation error between the ledger's sums
// and the server's — NOT double-application, which changes spend by whole
// bids (≥ 0.05 each).
const spendEpsilon = 1e-6

// checkAckedWrites is invariant 1: no acknowledged post or ad-add may be
// lost across a crash. The server's monotone applied-post counter must cover
// every acked post (and may exceed it only by writes whose ack we never
// saw), and every acked-added, not-removed ad must be live.
func checkAckedWrites(rep caar.InvariantReport, led ledgerSnapshot) verdict {
	const name = "acked-writes-survive"
	lo, hi := uint64(led.AckedPosts), uint64(led.AckedPosts+led.UncertainPosts)
	if rep.PostsDelivered < lo {
		return fail(name, "server applied %d posts, but %d were acked — acked posts lost", rep.PostsDelivered, lo)
	}
	if rep.PostsDelivered > hi {
		return fail(name, "server applied %d posts, more than acked+in-doubt %d — writes invented or double-applied", rep.PostsDelivered, hi)
	}
	if rep.Users < led.AckedUsers {
		return fail(name, "server has %d users, but %d adds were acked", rep.Users, led.AckedUsers)
	}
	if rep.Users > led.AckedUsers+led.UncertainUsers {
		return fail(name, "server has %d users, more than acked+in-doubt %d", rep.Users, led.AckedUsers+led.UncertainUsers)
	}
	live := make(map[string]bool, len(rep.Ads))
	for _, id := range rep.Ads {
		live[id] = true
	}
	var missing []string
	for _, id := range led.MustExist {
		if !live[id] {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fail(name, "%d acked ad-adds missing after recovery: %s", len(missing), sample(missing))
	}
	return pass(name, "%d acked posts ≤ %d applied ≤ %d acked+in-doubt; %d acked ads live",
		lo, rep.PostsDelivered, hi, len(led.MustExist))
}

// checkSpendConservation is invariant 2: campaign spend is conserved. Spend
// the server reports must cover every acknowledged impression, must not
// exceed acked + in-doubt (catching double-application on replay), and must
// never exceed the budget.
func checkSpendConservation(rep caar.InvariantReport, led ledgerSnapshot) verdict {
	const name = "spend-conserved"
	var problems []string
	for _, c := range rep.Campaigns {
		acked := led.AckedSpend[c.Name]
		hi := acked + led.UncertainSpend[c.Name] + spendEpsilon
		switch {
		case c.Spent > c.Budget+spendEpsilon:
			problems = append(problems, fmt.Sprintf("%s: spent %.4f exceeds budget %.4f", c.Name, c.Spent, c.Budget))
		case c.Spent > hi:
			problems = append(problems, fmt.Sprintf("%s: spent %.4f exceeds acked+in-doubt %.4f — impressions double-applied", c.Name, c.Spent, hi))
		case c.Spent < acked-spendEpsilon:
			problems = append(problems, fmt.Sprintf("%s: spent %.4f below acked %.4f — acked impressions lost", c.Name, c.Spent, acked))
		}
	}
	if len(problems) > 0 {
		return fail(name, "%d campaigns violate conservation: %s", len(problems), sample(problems))
	}
	return pass(name, "%d campaigns within [acked, acked+in-doubt] and ≤ budget", len(rep.Campaigns))
}

// checkRemovedAds is invariant 3: an ad whose RemoveAd was acknowledged must
// never be live (or served — the traffic driver additionally checks every
// recommendation response against the same set) after the ack.
func checkRemovedAds(rep caar.InvariantReport, led ledgerSnapshot) verdict {
	const name = "removed-stay-removed"
	live := make(map[string]bool, len(rep.Ads))
	for _, id := range rep.Ads {
		live[id] = true
	}
	var back []string
	for _, id := range led.MustNotExist {
		if live[id] {
			back = append(back, id)
		}
	}
	if len(back) > 0 {
		sort.Strings(back)
		return fail(name, "%d acked-removed ads resurrected: %s", len(back), sample(back))
	}
	return pass(name, "%d acked-removed ads stayed removed", len(led.MustNotExist))
}

// checkMemoryCeiling is invariant 4: bounded structures stay within their
// declared capacity every cycle, and the heap stays flat across crash
// cycles (full journal replay must not leak).
func checkMemoryCeiling(reports []caar.InvariantReport) verdict {
	const name = "memory-ceiling-flat"
	if len(reports) == 0 {
		return fail(name, "no invariant reports collected")
	}
	for i, rep := range reports {
		if rep.CachedMessages > rep.WindowCapacity {
			return fail(name, "cycle %d: %d cached messages exceed window capacity %d", i, rep.CachedMessages, rep.WindowCapacity)
		}
		if rep.TraceCapacity > 0 && rep.TraceCount > rep.TraceCapacity {
			return fail(name, "cycle %d: %d traces exceed ring capacity %d", i, rep.TraceCount, rep.TraceCapacity)
		}
	}
	first, last := reports[0], reports[len(reports)-1]
	heapCeiling := 3*first.HeapAllocBytes + 64<<20
	if last.HeapAllocBytes > heapCeiling {
		return fail(name, "heap grew %d → %d bytes across %d cycles (ceiling %d)",
			first.HeapAllocBytes, last.HeapAllocBytes, len(reports), heapCeiling)
	}
	if first.CandidateEntries > 0 && last.CandidateEntries > 3*first.CandidateEntries+10000 {
		return fail(name, "candidate buffers grew %d → %d entries across %d cycles",
			first.CandidateEntries, last.CandidateEntries, len(reports))
	}
	return pass(name, "windows/sketches/trace ring within capacity for %d cycles; heap %d → %d bytes",
		len(reports), first.HeapAllocBytes, last.HeapAllocBytes)
}

// sample renders at most 5 items of a problem list.
func sample(items []string) string {
	if len(items) > 5 {
		items = append(items[:5:5], "…")
	}
	return strings.Join(items, "; ")
}
