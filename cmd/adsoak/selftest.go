package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	caar "caar"
	"caar/journal"
)

// selftestReport documents the deliberate-fault self-test: the journal is
// replayed TWICE into a fresh engine — exactly the double-application bug
// the graceful-shutdown snapshot+reset dance prevents — and the same
// budget-conservation checker used live must flag the resulting over-spend.
// If it doesn't, the checker is too weak to trust and the whole run fails.
type selftestReport struct {
	Ran     bool    `json:"ran"`
	Caught  bool    `json:"caught"`
	Detail  string  `json:"detail,omitempty"`
	Records int64   `json:"journal_records"`
	Spent   float64 `json:"double_replay_total_spent"`
	Acked   float64 `json:"ledger_acked_spend"`
}

// runSelfTest copies the soak journal aside (Recover truncates torn tails in
// place), replays it twice into a fresh engine, and runs the spend checker.
func runSelfTest(journalPath, dir string, window int, led ledgerSnapshot) (selftestReport, error) {
	rep := selftestReport{Ran: true}
	cp := filepath.Join(dir, "selftest.journal")
	if err := copyFile(journalPath, cp); err != nil {
		return rep, err
	}
	f, err := os.OpenFile(cp, os.O_RDWR, 0o644)
	if err != nil {
		return rep, err
	}
	defer f.Close()

	cfg := caar.DefaultConfig()
	cfg.WindowSize = window
	eng, err := caar.Open(cfg)
	if err != nil {
		return rep, err
	}
	first, err := journal.Recover(f, eng)
	if err != nil {
		return rep, fmt.Errorf("selftest: first replay: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return rep, err
	}
	second, err := journal.Replay(f, eng)
	if err != nil {
		return rep, fmt.Errorf("selftest: second replay: %w", err)
	}
	rep.Records = int64(first.Applied + second.Applied)

	state := eng.Invariants()
	for _, c := range state.Campaigns {
		rep.Spent += c.Spent
	}
	for _, v := range led.AckedSpend {
		rep.Acked += v
	}
	v := checkSpendConservation(state, led)
	rep.Caught = !v.Pass
	rep.Detail = v.Detail
	if !rep.Caught {
		rep.Detail = fmt.Sprintf(
			"double replay went undetected: spent %.4f vs acked %.4f — budget checker too weak",
			rep.Spent, rep.Acked)
	}
	return rep, nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	if _, err := io.Copy(out, in); err != nil {
		return err
	}
	return out.Close()
}
