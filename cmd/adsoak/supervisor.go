package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"time"

	"caar/client"
	"caar/internal/faultinject"
)

// supervisor owns the adserver child process: it starts it (optionally with
// crash points armed through the environment), kills it, and watches for the
// self-inflicted deaths the armed crash points produce.
type supervisor struct {
	bin      string
	addr     string
	journal  string
	snapshot string
	logPath  string
	window   int

	cmd    *exec.Cmd
	exited chan error
	logF   *os.File
}

// start launches the child. crashSpec, when non-empty, is exported as
// CAAR_CRASHPOINTS so the named points are armed inside the child.
func (s *supervisor) start(crashSpec string) error {
	logF, err := os.OpenFile(s.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("adsoak: open server log: %w", err)
	}
	cmd := exec.Command(s.bin,
		"-addr", s.addr,
		"-journal", s.journal,
		"-snapshot", s.snapshot,
		"-fsync", "always",
		"-window", fmt.Sprint(s.window),
		"-shutdown-grace", "5s",
		"-log-level", "warn",
	)
	cmd.Stdout = logF
	cmd.Stderr = logF
	cmd.Env = append(os.Environ(), faultinject.CrashPointsEnv+"="+crashSpec)
	if err := cmd.Start(); err != nil {
		logF.Close()
		return fmt.Errorf("adsoak: start %s: %w", s.bin, err)
	}
	fmt.Fprintf(logF, "--- adsoak: started pid %d (crashpoints=%q)\n", cmd.Process.Pid, crashSpec)
	s.cmd, s.logF = cmd, logF
	s.exited = make(chan error, 1)
	go func(c *exec.Cmd, ch chan error) { ch <- c.Wait() }(cmd, s.exited)
	return nil
}

// errChildExited reports that the child died while the supervisor was
// waiting for readiness — expected for replay-time crash points.
type errChildExited struct{ wait error }

func (e errChildExited) Error() string {
	return fmt.Sprintf("adsoak: child exited during recovery: %v", e.wait)
}

// waitReady polls the readiness probe until the child reports ready,
// returning the recovery duration and the replay accounting the server
// embedded in its ready response. If the child dies first (an armed
// mid-replay crash point), the error is errChildExited.
func (s *supervisor) waitReady(ctx context.Context, cli *client.Client, timeout time.Duration) (time.Duration, *client.ReplaySummary, error) {
	begin := time.Now()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-s.exited:
			s.closeLog()
			return 0, nil, errChildExited{wait: err}
		case <-deadline.C:
			return 0, nil, fmt.Errorf("adsoak: server not ready after %v", timeout)
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-tick.C:
			rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			r, err := cli.Readiness(rctx)
			cancel()
			if err == nil && r.Ready {
				return time.Since(begin), r.Replay, nil
			}
		}
	}
}

// waitExit blocks until the child terminates on its own (an armed crash
// point firing) or the timeout elapses.
func (s *supervisor) waitExit(timeout time.Duration) error {
	select {
	case <-s.exited:
		s.closeLog()
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("adsoak: child still running after %v", timeout)
	}
}

// kill SIGKILLs the child — the unannounced power-cut every recovery cycle
// must survive — and reaps it.
func (s *supervisor) kill() error {
	if err := s.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("adsoak: kill: %w", err)
	}
	return s.waitExit(10 * time.Second)
}

// terminate sends SIGTERM (graceful shutdown: drain, flush, snapshot) and
// waits for exit. With a snapshot crash point armed, the child dies inside
// SaveSnapshot instead of completing the shutdown.
func (s *supervisor) terminate(timeout time.Duration) error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("adsoak: sigterm: %w", err)
	}
	return s.waitExit(timeout)
}

func (s *supervisor) closeLog() {
	if s.logF != nil {
		s.logF.Close()
		s.logF = nil
	}
}
