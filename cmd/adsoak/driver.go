package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	caar "caar"
	"caar/client"
	"caar/internal/adstore"
	"caar/internal/timeslot"
	"caar/workload"
)

// driver replays a generated workload against the server through the public
// client — the same retry/backoff/circuit-breaker path a real integration
// uses — recording every acknowledgment in the ledger.
type driver struct {
	cli *client.Client
	w   *workload.Workload
	led *ledger
	rng *rand.Rand

	// attempted counts stream events whose fate was settled (acked,
	// rejected, or uncertain) — the supervisor keys crash timing off it.
	attempted atomic.Int64
	// servedRemoved counts invariant-3 violations observed live: an ad
	// recommended after its RemoveAd was acknowledged.
	servedRemoved   atomic.Int64
	recommendChecks atomic.Int64

	done chan struct{}
}

func newDriver(cli *client.Client, w *workload.Workload, led *ledger, seed int64) *driver {
	return &driver{
		cli: cli, w: w, led: led,
		rng:  rand.New(rand.NewSource(seed + 1_000_003)),
		done: make(chan struct{}),
	}
}

func userHandle(id uint32) string   { return fmt.Sprintf("u%04d", id) }
func adName(id adstore.AdID) string { return fmt.Sprintf("ad-%05d", id) }

// sendMut runs one mutation, retrying as long as the request certainly never
// reached the engine (open breaker during an outage, recovery-gate 503) so
// workload events are not burned while the server is down. Any other fate is
// final and returned for the ledger.
func (d *driver) sendMut(ctx context.Context, op func(context.Context) error) outcome {
	for {
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := op(cctx)
		cancel()
		o := classify(err)
		if o != outcomeNotSent {
			return o
		}
		select {
		case <-ctx.Done():
			return outcomeNotSent
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// toAPIAd converts a generated ad to its API form, using the rendered text.
func (d *driver) toAPIAd(a *adstore.Ad) caar.Ad {
	ad := caar.Ad{
		ID:       adName(a.ID),
		Text:     d.w.AdText[a.ID],
		Campaign: a.Campaign,
		Bid:      a.Bid,
	}
	if !a.Global {
		ad.Target = &caar.Target{Lat: a.Target.Center.Lat, Lng: a.Target.Center.Lng, RadiusKm: a.Target.RadiusKm}
	}
	if a.Slots != timeslot.AllSlots {
		for _, sl := range a.Slots.Slots() {
			ad.Slots = append(ad.Slots, caar.Slot(sl.String()))
		}
	}
	return ad
}

// load seeds the social graph, the campaigns and the initial ad corpus.
func (d *driver) load(ctx context.Context) error {
	for _, u := range d.w.Users {
		handle := userHandle(uint32(u.ID))
		d.led.recordUser(d.sendMut(ctx, func(c context.Context) error {
			return d.cli.AddUser(c, handle)
		}))
	}
	for _, u := range d.w.Users {
		for _, f := range d.w.Graph.Followers(u.ID) {
			follower, followee := userHandle(uint32(f)), userHandle(uint32(u.ID))
			d.sendMut(ctx, func(c context.Context) error {
				return d.cli.Follow(c, follower, followee)
			})
		}
	}
	for _, cp := range d.w.Campaigns {
		o := d.sendMut(ctx, func(c context.Context) error {
			return d.cli.AddCampaign(c, cp.Name, cp.Budget, cp.Start, cp.End)
		})
		if o == outcomeRejected {
			return fmt.Errorf("adsoak: campaign %s rejected during load", cp.Name)
		}
	}
	for _, a := range d.w.InitialAds() {
		ad := d.toAPIAd(a)
		d.led.recordAddAd(ad.ID, d.sendMut(ctx, func(c context.Context) error {
			return d.cli.AddAd(c, ad)
		}))
	}
	return ctx.Err()
}

// run streams the workload's timeline: posts, check-ins, campaign churn and
// billable impressions, with periodic recommendation reads that verify
// acked-removed ads are never served.
func (d *driver) run(ctx context.Context) {
	defer close(d.done)
	for i, ev := range d.w.Events {
		if ctx.Err() != nil {
			return
		}
		switch ev.Kind {
		case workload.EventPost:
			author, text, at := userHandle(uint32(ev.User)), ev.Text, ev.Time
			d.led.recordPost(d.sendMut(ctx, func(c context.Context) error {
				return d.cli.Post(c, author, text, at)
			}))
		case workload.EventCheckIn:
			user, lat, lng, at := userHandle(uint32(ev.User)), ev.Loc.Lat, ev.Loc.Lng, ev.Time
			d.sendMut(ctx, func(c context.Context) error {
				return d.cli.CheckIn(c, user, lat, lng, at)
			})
		case workload.EventAddAd:
			ad := d.toAPIAd(d.w.AdByID(ev.Ad))
			d.led.recordAddAd(ad.ID, d.sendMut(ctx, func(c context.Context) error {
				return d.cli.AddAd(c, ad)
			}))
		case workload.EventRemoveAd:
			id := adName(ev.Ad)
			o := d.sendMut(ctx, func(c context.Context) error {
				return d.cli.RemoveAd(c, id)
			})
			// A 404 means the ad is gone (this delete retried after an
			// ack-lost predecessor, or the add itself never applied): the
			// server cannot serve it either way, which is all invariant 3
			// asserts — but only a 2xx proves OUR remove took effect, so
			// only that upgrades the ledger to acked.
			d.led.recordRemoveAd(id, o)
		case workload.EventImpression:
			a := d.w.AdByID(ev.Ad)
			id, at := adName(ev.Ad), ev.Time
			var served bool
			o := d.sendMut(ctx, func(c context.Context) error {
				var err error
				served, err = d.cli.ServeImpression(c, id, at)
				return err
			})
			d.led.recordImpression(a.Campaign, a.Bid, served, o)
		}
		d.attempted.Add(1)

		if i%53 == 0 {
			d.recommendCheck(ctx, ev.Time)
		}
	}
}

// recommendCheck exercises the read path and asserts invariant 3 live: no
// ad acked-removed BEFORE this request was issued may appear in the answer.
func (d *driver) recommendCheck(ctx context.Context, at time.Time) {
	removed := d.led.removedAcked()
	user := userHandle(uint32(d.w.Users[d.rng.Intn(len(d.w.Users))].ID))
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	recs, err := d.cli.Recommend(cctx, user, 3, at)
	cancel()
	if err != nil {
		return // reads during an outage prove nothing
	}
	d.recommendChecks.Add(1)
	for _, r := range recs {
		if removed[r.AdID] {
			d.servedRemoved.Add(1)
		}
	}
}
