// Command adsoak is the crash-recovery soak harness: it runs adserver as a
// supervised child process, drives a replayable workload (campaign churn,
// celebrity fan-out, diurnal posting) through the public HTTP client, and
// kills the server over and over — SIGKILL at random moments, and
// surgically at named crash points armed via CAAR_CRASHPOINTS
// (journal.pre-fsync, journal.mid-replay during recovery itself,
// snapshot.pre-fsync / snapshot.post-fsync-pre-rename during shutdown).
//
// After every restart it machine-checks four invariants against its own
// acknowledged-write ledger via GET /v1/invariants:
//
//  1. no acked post or ad-add is lost,
//  2. campaign spend is conserved — never double-applied, never over budget,
//  3. no ad is served (or live) after its RemoveAd was acked,
//  4. memory stays bounded: windows, trace ring and candidate buffers within
//     capacity, heap flat across crash cycles.
//
// It finishes with a deliberate-fault self-test — replaying the journal
// twice into a fresh engine, the exact double-application the shutdown
// snapshot+reset protocol exists to prevent — and requires the budget
// checker to flag it. Results land in BENCH_SOAK.json; the exit status is
// non-zero if any invariant or the self-test fails.
//
// Usage (see also `make soak-smoke`):
//
//	go build -o bin/adserver ./cmd/adserver
//	go run ./cmd/adsoak -server-bin bin/adserver -kills 3 \
//	    -crashpoints journal.pre-fsync,snapshot.post-fsync-pre-rename,journal.mid-replay
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	caar "caar"
	"caar/client"
	"caar/workload"
)

// cycleSpec is one scheduled crash: how the server started for this cycle is
// armed, and how it dies.
type cycleSpec struct {
	Label string // "sigkill" or the crash-point name
	Arm   string // CAAR_CRASHPOINTS value for this cycle's server start
	Crash string // "sigkill", "self", "sigterm" or "recovery"
}

// cycleReport is one recovery cycle in BENCH_SOAK.json.
type cycleReport struct {
	Crash               string                `json:"crash"` // what killed the previous server
	CrashedDuringReplay bool                  `json:"crashed_during_replay,omitempty"`
	RecoveryMs          float64               `json:"recovery_ms,omitempty"`
	Replay              *client.ReplaySummary `json:"replay,omitempty"`
	Invariants          []verdict             `json:"invariants,omitempty"`
	EventsSettled       int64                 `json:"events_settled"`
}

// benchReport is the BENCH_SOAK.json document.
type benchReport struct {
	Seed                int64           `json:"seed"`
	Users               int             `json:"users"`
	Ads                 int             `json:"ads"`
	Messages            int             `json:"messages"`
	SigkillCycles       int             `json:"sigkill_cycles"`
	CrashPointCycles    int             `json:"crashpoint_cycles"`
	Cycles              []cycleReport   `json:"cycles"`
	RecoveryMsP50       float64         `json:"recovery_ms_p50"`
	RecoveryMsP99       float64         `json:"recovery_ms_p99"`
	ReplayRecordsPerSec float64         `json:"replay_records_per_sec"`
	EventsSettled       int64           `json:"events_settled"`
	RecommendChecks     int64           `json:"recommend_checks"`
	ServedAfterRemove   int64           `json:"served_after_remove"`
	Memory              verdict         `json:"memory"`
	SelfTest            *selftestReport `json:"selftest,omitempty"`
	Pass                bool            `json:"pass"`
}

func main() {
	if err := run(); err != nil {
		log.Fatalf("adsoak: %v", err)
	}
}

func run() error {
	serverBin := flag.String("server-bin", "bin/adserver", "adserver binary to supervise")
	addr := flag.String("addr", "127.0.0.1:9784", "address the child listens on")
	dir := flag.String("dir", "", "working directory for journal/snapshot/logs (default: a temp dir)")
	out := flag.String("out", "BENCH_SOAK.json", "benchmark report path")
	seed := flag.Int64("seed", 1, "workload seed")
	users := flag.Int("users", 150, "workload users")
	ads := flag.Int("ads", 300, "workload ads")
	messages := flag.Int("messages", 4000, "workload posts")
	kills := flag.Int("kills", 3, "random SIGKILL cycles")
	crashpoints := flag.String("crashpoints",
		"journal.pre-fsync,snapshot.post-fsync-pre-rename,journal.mid-replay",
		"comma-separated named crash-point cycles (append :n to fire on the n-th hit)")
	eventsPerCycle := flag.Int("events-per-cycle", 250, "minimum settled events between crashes")
	window := flag.Int("window", 32, "server feed window size")
	readyTimeout := flag.Duration("ready-timeout", 60*time.Second, "max wait for readiness after a restart")
	selftest := flag.Bool("selftest", true, "run the double-replay self-test at the end")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	specs, named, err := buildSchedule(rng, *kills, *crashpoints)
	if err != nil {
		return err
	}

	wcfg := soakWorkloadConfig(*seed, *users, *ads, *messages)
	w, err := workload.Generate(wcfg)
	if err != nil {
		return err
	}

	workDir := *dir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "adsoak-*")
		if err != nil {
			return err
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		return err
	}
	log.Printf("work dir: %s", workDir)

	cli, err := client.New("http://"+*addr,
		client.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}),
		client.WithCircuitBreaker(client.BreakerPolicy{FailureThreshold: 5, Cooldown: 300 * time.Millisecond}),
	)
	if err != nil {
		return err
	}

	sup := &supervisor{
		bin:      *serverBin,
		addr:     *addr,
		journal:  filepath.Join(workDir, "soak.journal"),
		snapshot: filepath.Join(workDir, "soak.snapshot"),
		logPath:  filepath.Join(workDir, "server.log"),
		window:   *window,
	}

	led := newLedger()
	drv := newDriver(cli, w, led, *seed)
	ctx := context.Background()
	senderCtx, stopSender := context.WithCancel(ctx)
	defer stopSender()

	bench := benchReport{
		Seed: *seed, Users: *users, Ads: *ads, Messages: *messages,
		SigkillCycles: *kills, CrashPointCycles: named,
	}
	var reports []caar.InvariantReport
	var recoveries []time.Duration
	allPass := true
	lastCrash := "initial-start"

	for i := 0; i <= len(specs); i++ {
		arm := ""
		if i < len(specs) {
			arm = specs[i].Arm
		}
		if err := sup.start(arm); err != nil {
			return err
		}
		dur, replay, err := sup.waitReady(ctx, cli, *readyTimeout)
		if err != nil {
			var ce errChildExited
			if errors.As(err, &ce) && i < len(specs) && specs[i].Crash == "recovery" {
				// The armed mid-replay point killed recovery itself; the
				// next iteration restarts and must finish the interrupted
				// replay.
				log.Printf("cycle %d: %s fired during replay (as armed)", i, specs[i].Label)
				bench.Cycles = append(bench.Cycles, cycleReport{
					Crash: specs[i].Label, CrashedDuringReplay: true,
					EventsSettled: drv.attempted.Load(),
				})
				lastCrash = specs[i].Label
				continue
			}
			return fmt.Errorf("cycle %d (after %s): %w", i, lastCrash, err)
		}

		if i == 0 {
			log.Printf("loading: %d users, %d campaigns, %d initial ads",
				len(w.Users), len(w.Campaigns), len(w.InitialAds()))
			if err := drv.load(ctx); err != nil {
				return err
			}
			go drv.run(senderCtx)
		} else {
			recoveries = append(recoveries, dur)
			if replay != nil {
				bench.ReplayRecordsPerSec = replay.RecordsPerSec
			}
		}

		state, err := fetchInvariants(ctx, cli)
		if err != nil {
			return fmt.Errorf("cycle %d: invariants: %w", i, err)
		}
		reports = append(reports, state)
		snap := led.snapshot()
		verdicts := []verdict{
			checkAckedWrites(state, snap),
			checkSpendConservation(state, snap),
			checkRemovedAds(state, snap),
		}
		entry := cycleReport{
			Crash:         lastCrash,
			RecoveryMs:    float64(dur.Milliseconds()),
			Replay:        replay,
			Invariants:    verdicts,
			EventsSettled: drv.attempted.Load(),
		}
		bench.Cycles = append(bench.Cycles, entry)
		for _, v := range verdicts {
			if !v.Pass {
				allPass = false
				log.Printf("cycle %d INVARIANT FAILED after %s: %s: %s", i, lastCrash, v.Name, v.Detail)
			}
		}
		log.Printf("cycle %d ready after %s (recovery %v): %d events settled, invariants %s",
			i, lastCrash, dur.Round(time.Millisecond), drv.attempted.Load(), verdictSummary(verdicts))

		if i == len(specs) {
			break
		}

		// Induce this cycle's crash.
		sp := specs[i]
		switch sp.Crash {
		case "sigkill":
			waitProgress(drv, drv.attempted.Load()+int64(*eventsPerCycle)+int64(rng.Intn(*eventsPerCycle)), 2*time.Minute)
			if err := sup.kill(); err != nil {
				return err
			}
		case "self":
			// The armed journal append point fires under traffic.
			if err := sup.waitExit(2 * time.Minute); err != nil {
				return fmt.Errorf("crash point %s never fired: %w", sp.Label, err)
			}
		case "sigterm":
			waitProgress(drv, drv.attempted.Load()+int64(*eventsPerCycle), 2*time.Minute)
			// Graceful shutdown walks into the armed snapshot point.
			if err := sup.terminate(60 * time.Second); err != nil {
				return err
			}
		case "recovery":
			return fmt.Errorf("crash point %s did not fire during replay (journal too short?)", sp.Label)
		}
		lastCrash = sp.Label
		log.Printf("cycle %d: server down (%s)", i, sp.Label)
	}

	// Quiesce traffic, then close out the run.
	stopSender()
	select {
	case <-drv.done:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("traffic driver did not stop")
	}

	bench.EventsSettled = drv.attempted.Load()
	bench.RecommendChecks = drv.recommendChecks.Load()
	bench.ServedAfterRemove = drv.servedRemoved.Load()
	if bench.ServedAfterRemove > 0 {
		allPass = false
		log.Printf("INVARIANT FAILED: %d recommendations served acked-removed ads", bench.ServedAfterRemove)
	}
	bench.Memory = checkMemoryCeiling(reports)
	if !bench.Memory.Pass {
		allPass = false
		log.Printf("INVARIANT FAILED: %s: %s", bench.Memory.Name, bench.Memory.Detail)
	}
	bench.RecoveryMsP50, bench.RecoveryMsP99 = percentiles(recoveries)

	if *selftest {
		st, err := runSelfTest(sup.journal, workDir, *window, led.snapshot())
		if err != nil {
			return err
		}
		bench.SelfTest = &st
		if !st.Caught {
			allPass = false
			log.Printf("SELF-TEST FAILED: %s", st.Detail)
		} else {
			log.Printf("self-test: double replay caught (%s)", st.Detail)
		}
	}

	// Final graceful shutdown: drain, snapshot, journal reset.
	if err := sup.terminate(60 * time.Second); err != nil {
		return err
	}

	bench.Pass = allPass
	if err := writeJSON(*out, bench); err != nil {
		return err
	}
	log.Printf("report written to %s", *out)
	if !allPass {
		return fmt.Errorf("soak FAILED (%d cycles; see %s and %s)", len(bench.Cycles), *out, sup.logPath)
	}
	log.Printf("soak PASSED: %d recovery cycles (p50 %.0fms, p99 %.0fms), %d events, all invariants held",
		len(recoveries), bench.RecoveryMsP50, bench.RecoveryMsP99, bench.EventsSettled)
	if *dir == "" {
		os.RemoveAll(workDir)
	}
	return nil
}

// soakWorkloadConfig scales the default workload to soak size with every
// churn extension on. The campaign budget is sized so total expected spend
// stays well under half the pacing-released budget: the double-replay
// self-test then produces genuine over-spend instead of being clipped by
// the pacing cap.
func soakWorkloadConfig(seed int64, users, ads, messages int) workload.Config {
	c := workload.DefaultConfig()
	c.Seed = seed
	c.Users = users
	c.Ads = ads
	c.Messages = messages
	c.AvgFollowees = 8
	c.Topics = 20
	c.Vocab = 2000
	c.TermsPerTopic = 50
	c.Campaigns = 6
	// ≈ messages/ImpressionEvery impressions at mean bid ~0.5, spread over
	// the campaigns, then ~4× headroom.
	c.CampaignBudget = float64(messages) / 4 * 0.5 / 6 * 4
	c.AdChurnFrac = 0.15
	c.AdRemoveFrac = 0.10
	c.ImpressionEvery = 4
	c.Celebrities = 3
	c.CelebrityFollowFrac = 0.4
	c.RenderText = true
	return c
}

// buildSchedule interleaves random SIGKILL cycles with the named
// crash-point cycles. The first cycle is always a plain SIGKILL so the load
// phase runs on an unarmed server.
func buildSchedule(rng *rand.Rand, kills int, crashpoints string) ([]cycleSpec, int, error) {
	if kills < 1 {
		return nil, 0, fmt.Errorf("adsoak: need at least one SIGKILL cycle")
	}
	var named []cycleSpec
	for _, raw := range strings.Split(crashpoints, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		sp := cycleSpec{Label: name, Arm: name}
		base := name
		if i := strings.IndexByte(name, ':'); i >= 0 {
			base = name[:i]
		}
		switch {
		case base == "journal.mid-replay":
			sp.Crash = "recovery"
			if base == name {
				sp.Arm = name + ":25" // die after the 25th replayed record
			}
		case strings.HasPrefix(base, "snapshot."):
			sp.Crash = "sigterm"
		case base == "journal.pre-fsync":
			sp.Crash = "self"
			if base == name {
				// Fire on a random append so the kill lands mid-traffic.
				sp.Arm = fmt.Sprintf("%s:%d", name, 30+rng.Intn(120))
			}
		default:
			return nil, 0, fmt.Errorf("adsoak: unknown crash point %q", name)
		}
		named = append(named, sp)
	}
	specs := []cycleSpec{{Label: "sigkill", Crash: "sigkill"}}
	remainingKills := kills - 1
	for _, n := range named {
		specs = append(specs, n)
		if remainingKills > 0 {
			specs = append(specs, cycleSpec{Label: "sigkill", Crash: "sigkill"})
			remainingKills--
		}
	}
	for ; remainingKills > 0; remainingKills-- {
		specs = append(specs, cycleSpec{Label: "sigkill", Crash: "sigkill"})
	}
	return specs, len(named), nil
}

// waitProgress blocks until the driver settles target events, finishes the
// stream, or the timeout expires — crash timing rides real traffic.
func waitProgress(d *driver, target int64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for d.attempted.Load() < target && time.Now().Before(deadline) {
		select {
		case <-d.done:
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// fetchInvariants retries the raw (no-retry) invariant fetch a few times —
// right after readiness the listener can still drop a connection.
func fetchInvariants(ctx context.Context, cli *client.Client) (caar.InvariantReport, error) {
	var last error
	for attempt := 0; attempt < 5; attempt++ {
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		rep, err := cli.Invariants(cctx)
		cancel()
		if err == nil {
			return rep, nil
		}
		last = err
		time.Sleep(200 * time.Millisecond)
	}
	return caar.InvariantReport{}, last
}

func verdictSummary(vs []verdict) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		mark := "ok"
		if !v.Pass {
			mark = "FAIL"
		}
		parts[i] = v.Name + "=" + mark
	}
	return strings.Join(parts, " ")
}

func percentiles(ds []time.Duration) (p50, p99 float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i].Milliseconds())
	}
	return at(0.50), at(0.99)
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
