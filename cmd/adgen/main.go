// Command adgen generates a synthetic social-ads workload (the substitute
// for the original Twitter crawl; see DESIGN.md §4) and writes it as JSON
// lines in the workload trace format, or inspects an existing trace.
//
// Usage:
//
//	adgen -users 2000 -ads 10000 -messages 20000 -seed 1 > workload.jsonl
//	adgen -stats                          # statistics of a fresh workload
//	adgen -load workload.jsonl -stats     # statistics of a saved trace
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"caar/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.Users, "users", cfg.Users, "number of users")
	flag.IntVar(&cfg.Ads, "ads", cfg.Ads, "number of ads")
	flag.IntVar(&cfg.Messages, "messages", cfg.Messages, "number of posts")
	flag.IntVar(&cfg.Topics, "topics", cfg.Topics, "latent topics")
	flag.IntVar(&cfg.AvgFollowees, "followees", cfg.AvgFollowees, "average followees per user")
	statsOnly := flag.Bool("stats", false, "print workload statistics instead of the trace")
	load := flag.String("load", "", "load a trace file instead of generating")
	verbose := flag.Bool("v", false, "log generation timing as JSON on stderr")
	flag.Parse()

	var (
		w   *workload.Workload
		err error
	)
	start := time.Now()
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			log.Fatalf("adgen: %v", ferr)
		}
		defer f.Close()
		w, err = workload.LoadTrace(f)
	} else {
		w, err = workload.Generate(cfg)
	}
	if err != nil {
		log.Fatalf("adgen: %v", err)
	}
	if *verbose {
		// The trace goes to stdout; structured progress stays on stderr so
		// `adgen -v > workload.jsonl` composes.
		slog.New(slog.NewJSONHandler(os.Stderr, nil)).Info("workload ready",
			slog.Int("users", len(w.Users)),
			slog.Int("ads", len(w.Ads)),
			slog.Int("events", len(w.Events)),
			slog.Duration("took", time.Since(start)))
	}

	if *statsOnly {
		printStats(w)
		return
	}
	if err := w.ExportTrace(os.Stdout); err != nil {
		log.Fatalf("adgen: export: %v", err)
	}
}

func printStats(w *workload.Workload) {
	posts, checkins := 0, 0
	for _, e := range w.Events {
		if e.Kind == workload.EventPost {
			posts++
		} else {
			checkins++
		}
	}
	_, maxFan := w.Graph.MaxFanout()
	fmt.Printf("users          %d\n", len(w.Users))
	fmt.Printf("edges          %d\n", w.Graph.Edges())
	fmt.Printf("max fan-out    %d\n", maxFan)
	fmt.Printf("ads            %d\n", len(w.Ads))
	fmt.Printf("posts          %d\n", posts)
	fmt.Printf("check-ins      %d\n", checkins)
	if len(w.Events) > 0 {
		fmt.Printf("span           %v\n", w.Events[len(w.Events)-1].Time.Sub(w.Events[0].Time).Round(time.Second))
	}
}
