// Command adctl is a command-line client for a running adserver.
//
// Usage:
//
//	adctl [-server http://localhost:8080] <command> [args]
//
// Commands:
//
//	add-user <handle>
//	follow <follower> <followee>
//	unfollow <follower> <followee>
//	check-in <user> <lat> <lng>
//	post <author> <text...>
//	add-campaign <name> <budget> <start RFC3339> <end RFC3339>
//	add-ad <id> <bid> [-campaign c] [-geo lat,lng,radiusKm] [-slots morning,afternoon] <text...>
//	remove-ad <id>
//	recommend <user> [k]
//	explain <user> [k]
//	traces [n]
//	trace <id>
//	impression <ad-id>
//	trending [slot] [k]
//	hot [dim] [k] [window]   (heavy-hitter telemetry; dim "" = all dimensions)
//	hot partition [window]   (per-dimension shard-skew summary)
//	stats
//	health
//	ready
//	invariants
//	statusz
//	metrics
//	slo [-refresh]
//	capture now
//	capture list
//	capture get <bundle> [file]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	caar "caar"
	"caar/client"
	"caar/obs/trace"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "adserver base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	c, err := client.New(*server)
	if err != nil {
		log.Fatalf("adctl: %v", err)
	}
	ctx := context.Background()
	now := time.Now()

	cmd, rest := args[0], args[1:]
	if err := run(ctx, c, cmd, rest, now); err != nil {
		log.Fatalf("adctl: %s: %v", cmd, err)
	}
}

func run(ctx context.Context, c *client.Client, cmd string, args []string, now time.Time) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("need %d argument(s), got %d", n, len(args))
		}
		return nil
	}
	switch cmd {
	case "add-user":
		if err := need(1); err != nil {
			return err
		}
		return c.AddUser(ctx, args[0])
	case "follow":
		if err := need(2); err != nil {
			return err
		}
		return c.Follow(ctx, args[0], args[1])
	case "unfollow":
		if err := need(2); err != nil {
			return err
		}
		return c.Unfollow(ctx, args[0], args[1])
	case "check-in":
		if err := need(3); err != nil {
			return err
		}
		lat, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("lat: %w", err)
		}
		lng, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("lng: %w", err)
		}
		return c.CheckIn(ctx, args[0], lat, lng, now)
	case "post":
		if err := need(2); err != nil {
			return err
		}
		return c.Post(ctx, args[0], strings.Join(args[1:], " "), now)
	case "add-campaign":
		if err := need(4); err != nil {
			return err
		}
		budget, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("budget: %w", err)
		}
		start, err := time.Parse(time.RFC3339, args[2])
		if err != nil {
			return fmt.Errorf("start: %w", err)
		}
		end, err := time.Parse(time.RFC3339, args[3])
		if err != nil {
			return fmt.Errorf("end: %w", err)
		}
		return c.AddCampaign(ctx, args[0], budget, start, end)
	case "add-ad":
		return addAd(ctx, c, args)
	case "remove-ad":
		if err := need(1); err != nil {
			return err
		}
		return c.RemoveAd(ctx, args[0])
	case "recommend":
		if err := need(1); err != nil {
			return err
		}
		k := 5
		if len(args) > 1 {
			var err error
			if k, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("k: %w", err)
			}
		}
		recs, err := c.Recommend(ctx, args[0], k, now)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("(no eligible ads)")
			return nil
		}
		for i, r := range recs {
			fmt.Printf("%2d. %-24s score=%.4f text=%.4f geo=%.4f bid=%.4f\n",
				i+1, r.AdID, r.Score, r.Text, r.Geo, r.Bid)
		}
		return nil
	case "explain":
		if err := need(1); err != nil {
			return err
		}
		k := 5
		if len(args) > 1 {
			var err error
			if k, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("k: %w", err)
			}
		}
		recs, tr, err := c.RecommendExplained(ctx, args[0], k, now)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			fmt.Println("(no eligible ads)")
		}
		for i, r := range recs {
			fmt.Printf("%2d. %-24s score=%.4f text=%.4f geo=%.4f bid=%.4f\n",
				i+1, r.AdID, r.Score, r.Text, r.Geo, r.Bid)
		}
		if tr != nil {
			fmt.Printf("\ntrace %s (%.3f ms, %s)\n", tr.ID, tr.DurationSeconds*1e3, tr.Outcome)
			printSpans(tr)
			for _, pa := range tr.Policy {
				fmt.Printf("policy  %-24s %s\n", pa.AdID, pa.Action)
			}
		}
		return nil
	case "traces":
		n := 20
		if len(args) > 0 {
			var err error
			if n, err = strconv.Atoi(args[0]); err != nil {
				return fmt.Errorf("n: %w", err)
			}
		}
		list, err := c.Traces(ctx, n)
		if err != nil {
			return err
		}
		if len(list.Traces) == 0 {
			fmt.Println("(no captured traces)")
			return nil
		}
		for _, s := range list.Traces {
			fmt.Printf("%-32s %-8s %-8s %8.3fms user=%s ads=%d\n",
				s.ID, s.Outcome, s.CaptureReason, s.DurationSeconds*1e3, s.User, s.Ads)
		}
		for stage, exs := range list.Exemplars {
			for _, ex := range exs {
				fmt.Printf("exemplar %-10s le=%-8s %8.3fms trace=%s\n",
					stage, ex.BucketLE, ex.Value*1e3, ex.TraceID)
			}
		}
		return nil
	case "trace":
		if err := need(1); err != nil {
			return err
		}
		tr, err := c.TraceByID(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Printf("trace %s  user=%s k=%d  %.3fms  %s (%s)\n",
			tr.ID, tr.User, tr.K, tr.DurationSeconds*1e3, tr.Outcome, tr.CaptureReason)
		fmt.Printf("algo    %s  shard=%d  lock_wait=%.3fms\n",
			tr.Algorithm, tr.Shard, tr.LockWaitSeconds*1e3)
		if tr.Error != "" {
			fmt.Printf("error   %s\n", tr.Error)
		}
		printSpans(tr)
		for _, a := range tr.Ads {
			fmt.Printf("ad      %-24s score=%.4f text=%.4f geo=%.4f bid=%.4f\n",
				a.AdID, a.Score, a.Text, a.Geo, a.Bid)
		}
		for _, pa := range tr.Policy {
			fmt.Printf("policy  %-24s %s\n", pa.AdID, pa.Action)
		}
		for k, v := range tr.Annotations {
			fmt.Printf("note    %s=%s\n", k, v)
		}
		return nil
	case "impression":
		if err := need(1); err != nil {
			return err
		}
		served, err := c.ServeImpression(ctx, args[0], now)
		if err != nil {
			return err
		}
		fmt.Printf("served=%v\n", served)
		return nil
	case "trending":
		slot := caar.Slot("")
		if len(args) > 0 {
			slot = caar.Slot(args[0])
		}
		k := 10
		if len(args) > 1 {
			var err error
			if k, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("k: %w", err)
			}
		}
		terms, err := c.Trending(ctx, slot, k)
		if err != nil {
			return err
		}
		if len(terms) == 0 {
			fmt.Println("(no trending terms in this slot yet)")
			return nil
		}
		for i, tt := range terms {
			fmt.Printf("%2d. %-24s %d\n", i+1, tt.Term, tt.Count)
		}
		return nil
	case "hot":
		if len(args) > 0 && args[0] == "partition" {
			window := time.Duration(0)
			if len(args) > 1 {
				var err error
				if window, err = time.ParseDuration(args[1]); err != nil {
					return fmt.Errorf("window: %w", err)
				}
			}
			rep, err := c.HotPartitionReport(ctx, window)
			if err != nil {
				return err
			}
			fmt.Printf("window  %.0fs over %d shards\n", rep.WindowSeconds, rep.Shards)
			for _, d := range rep.Dimensions {
				fmt.Printf("%-10s top=%s count=%d (±%d) share=%.2f", d.Dimension, d.TopKey, d.TopCount, d.ErrorBound, d.TopShare)
				if d.ShardWeight != nil {
					fmt.Printf(" max-shard-share=%.2f shard-weight=%v", d.MaxShardShare, d.ShardWeight)
				}
				fmt.Println()
			}
			return nil
		}
		dim := ""
		if len(args) > 0 {
			dim = args[0]
		}
		k := 10
		if len(args) > 1 {
			var err error
			if k, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("k: %w", err)
			}
		}
		window := time.Duration(0)
		if len(args) > 2 {
			var err error
			if window, err = time.ParseDuration(args[2]); err != nil {
				return fmt.Errorf("window: %w", err)
			}
		}
		dims, err := c.Hot(ctx, dim, k, window)
		if err != nil {
			return err
		}
		for _, d := range dims {
			fmt.Printf("%s (events=%d dropped=%d tracked=%d window=%.0fs)\n",
				d.Dimension, d.Events, d.Dropped, d.TrackedKeys, d.WindowSeconds)
			if len(d.Keys) == 0 {
				fmt.Println("  (no keys yet)")
				continue
			}
			for i, hk := range d.Keys {
				fmt.Printf("  %2d. %-24s %d (±%d)\n", i+1, hk.Key, hk.Count, hk.ErrorBound)
			}
		}
		return nil
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("users            %d\n", st.Users)
		fmt.Printf("ads              %d\n", st.Ads)
		fmt.Printf("follow edges     %d\n", st.FollowEdges)
		fmt.Printf("posts delivered  %d\n", st.PostsDelivered)
		fmt.Printf("check-ins        %d\n", st.CheckIns)
		fmt.Printf("shards           %d\n", st.Shards)
		return nil
	case "health":
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("status     %s\n", h.Status)
		fmt.Printf("in flight  %d\n", h.InFlight)
		fmt.Printf("shed       %d\n", h.Shed)
		fmt.Printf("panics     %d\n", h.Panics)
		for _, p := range h.Problems {
			fmt.Printf("problem    %s\n", p)
		}
		return nil
	case "ready":
		ready, reasons, err := c.Ready(ctx)
		if err != nil {
			return err
		}
		if ready {
			fmt.Println("ready")
			return nil
		}
		fmt.Println("degraded")
		for _, r := range reasons {
			fmt.Printf("reason  %s\n", r)
		}
		os.Exit(1)
		return nil
	case "invariants":
		rep, err := c.Invariants(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("users             %d\n", rep.Users)
		fmt.Printf("follow edges      %d\n", rep.FollowEdges)
		fmt.Printf("ads               %d\n", len(rep.Ads))
		fmt.Printf("posts delivered   %d\n", rep.PostsDelivered)
		fmt.Printf("check-ins         %d\n", rep.CheckIns)
		fmt.Printf("vocab terms/docs  %d/%d\n", rep.VocabTerms, rep.VocabDocs)
		fmt.Printf("cached messages   %d (window capacity %d)\n", rep.CachedMessages, rep.WindowCapacity)
		fmt.Printf("candidate entries %d\n", rep.CandidateEntries)
		fmt.Printf("trace ring        %d/%d\n", rep.TraceCount, rep.TraceCapacity)
		fmt.Printf("heap alloc        %.1f MiB (%d goroutines)\n", float64(rep.HeapAllocBytes)/(1<<20), rep.Goroutines)
		for _, cs := range rep.Campaigns {
			fmt.Printf("campaign %-16s spent %.4f / budget %.4f\n", cs.Name, cs.Spent, cs.Budget)
		}
		return nil
	case "statusz":
		text, err := c.Statusz(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "metrics":
		text, err := c.MetricsText(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "slo":
		refresh := len(args) > 0 && args[0] == "-refresh"
		st, err := c.SLOStatus(ctx, refresh)
		if err != nil {
			return err
		}
		fmt.Printf("burn threshold  %.1f  (windows %s / %s)\n",
			st.BurnThreshold, st.FastWindow, st.SlowWindow)
		for _, o := range st.Objectives {
			state := "ok"
			if o.Breaching {
				state = "BREACHING"
			}
			fmt.Printf("\n%-32s %s  target=%.4g  %s", o.Name, o.Kind, o.Target, state)
			if o.Trips > 0 {
				fmt.Printf("  trips=%d", o.Trips)
			}
			fmt.Println()
			if o.Kind == "latency" {
				fmt.Printf("  threshold %.4gs (effective %.4gs after bucket quantization)\n",
					o.ThresholdSeconds, o.EffectiveThresholdSeconds)
			}
			for _, w := range o.Windows {
				complete := ""
				if !w.Complete {
					complete = "  (partial window)"
				}
				fmt.Printf("  %-4s  burn=%-8.3g budget=%-8.3g good/total=%d/%d%s\n",
					w.Window, w.BurnRate, w.BudgetRemaining, w.Good, w.Total, complete)
			}
		}
		return nil
	case "capture":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "now":
			fmt.Println("capturing (blocks for the CPU-profile duration)...")
			name, err := c.CaptureNow(ctx)
			if err != nil {
				return err
			}
			fmt.Printf("bundle %s\n", name)
			return nil
		case "list":
			list, err := c.CaptureList(ctx)
			if err != nil {
				return err
			}
			if len(list) == 0 {
				fmt.Println("(no capture bundles)")
				return nil
			}
			for _, b := range list {
				var total int64
				for _, f := range b.Files {
					total += f.Bytes
				}
				fmt.Printf("%-40s trigger=%-10s files=%-2d %8.1f KiB  %s\n",
					b.Name, b.Trigger, len(b.Files), float64(total)/1024,
					b.CapturedAt.Format(time.RFC3339))
			}
			return nil
		case "get":
			if len(args) < 2 {
				return fmt.Errorf("usage: capture get <bundle> [file]")
			}
			if len(args) == 2 {
				m, err := c.CaptureMeta(ctx, args[1])
				if err != nil {
					return err
				}
				fmt.Printf("bundle      %s\n", m.Name)
				fmt.Printf("trigger     %s\n", m.Trigger)
				fmt.Printf("reason      %s\n", m.Reason)
				fmt.Printf("captured    %s  (uptime %.0fs)\n", m.CapturedAt.Format(time.RFC3339), m.UptimeSeconds)
				fmt.Printf("build       %s %s rev %s\n", m.Build.Module, m.Build.Version, m.Build.ShortRev())
				fmt.Printf("goroutines  %d (GOMAXPROCS %d)\n", m.Goroutines, m.GOMAXPROCS)
				for _, e := range m.Errors {
					fmt.Printf("error       %s\n", e)
				}
				return nil
			}
			b, err := c.CaptureFile(ctx, args[1], args[2])
			if err != nil {
				return err
			}
			// Raw bytes to stdout so `adctl capture get <b> cpu.pprof > cpu.pprof`
			// composes with `go tool pprof`.
			_, err = os.Stdout.Write(b)
			return err
		default:
			return fmt.Errorf("unknown capture subcommand %q (want now, list or get)", args[0])
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printSpans renders a trace's stage spans as an attrition funnel.
func printSpans(tr *trace.Trace) {
	for _, sp := range tr.Spans {
		fmt.Printf("stage   %-10s %8.3fms  in=%-5d out=%d\n",
			sp.Stage, sp.DurationSeconds*1e3, sp.In, sp.Out)
	}
}

// addAd parses: <id> <bid> [-campaign c] [-geo lat,lng,radius] [-slots a,b] <text...>
func addAd(ctx context.Context, c *client.Client, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: add-ad <id> <bid> [options] <text...>")
	}
	ad := caar.Ad{ID: args[0]}
	bid, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return fmt.Errorf("bid: %w", err)
	}
	ad.Bid = bid
	rest := args[2:]
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
		switch rest[0] {
		case "-campaign":
			if len(rest) < 2 {
				return fmt.Errorf("-campaign needs a value")
			}
			ad.Campaign = rest[1]
			rest = rest[2:]
		case "-geo":
			if len(rest) < 2 {
				return fmt.Errorf("-geo needs lat,lng,radiusKm")
			}
			parts := strings.Split(rest[1], ",")
			if len(parts) != 3 {
				return fmt.Errorf("-geo needs lat,lng,radiusKm")
			}
			var vals [3]float64
			for i, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					return fmt.Errorf("-geo component %d: %w", i, err)
				}
				vals[i] = v
			}
			ad.Target = &caar.Target{Lat: vals[0], Lng: vals[1], RadiusKm: vals[2]}
			rest = rest[2:]
		case "-slots":
			if len(rest) < 2 {
				return fmt.Errorf("-slots needs a value")
			}
			for _, s := range strings.Split(rest[1], ",") {
				ad.Slots = append(ad.Slots, caar.Slot(strings.TrimSpace(s)))
			}
			rest = rest[2:]
		default:
			return fmt.Errorf("unknown option %q", rest[0])
		}
	}
	if len(rest) == 0 {
		return fmt.Errorf("missing ad text")
	}
	ad.Text = strings.Join(rest, " ")
	return c.AddAd(ctx, ad)
}
