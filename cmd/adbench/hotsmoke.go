package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	caar "caar"
	"caar/internal/server"
	"caar/obs"
)

// runHotSmoke is the end-to-end hot-key drill `make hot-smoke` runs under
// the race detector: stand up a live server, plant a celebrity poster (one
// author with far more followers than anyone else) and a hot consumer (one
// user hammering recommendations), serve the traffic over HTTP, and verify
// the telemetry names both — /v1/hot?dim=posters ranks the celebrity
// first, dim=users ranks the hot consumer first, and the caar_hot_* metric
// families show up in a /v1/metrics scrape.
func runHotSmoke() error {
	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	cfg.Metrics = reg
	eng, err := caar.Open(cfg)
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	defer close(stop)
	ht := eng.HotTracker()
	if ht == nil {
		return fmt.Errorf("hot-smoke: default config produced no tracker")
	}
	go ht.Run(stop)

	const nUsers = 40
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i)
		if err := eng.AddUser(users[i]); err != nil {
			return err
		}
	}
	// user000 is the celebrity: everyone follows them; everyone else gets
	// two followers.
	for _, u := range users[1:] {
		if err := eng.Follow(u, users[0]); err != nil {
			return err
		}
	}
	for i := 1; i < nUsers; i++ {
		for f := 1; f <= 2; f++ {
			if err := eng.Follow(users[(i+f)%nUsers], users[i]); err != nil {
				return err
			}
		}
	}

	ts := httptest.NewServer(server.New(eng, server.WithMetrics(reg)).Handler())
	defer ts.Close()
	client := ts.Client()
	at := time.Now().Format(time.RFC3339Nano)

	post := func(author string, n int) error {
		for i := 0; i < n; i++ {
			body, _ := json.Marshal(map[string]string{
				"author": author,
				"text":   fmt.Sprintf("word%04d word%04d smoke update", i%500, (i*7)%500),
				"at":     at,
			})
			resp, err := client.Post(ts.URL+"/v1/posts", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				return fmt.Errorf("hot-smoke: POST /v1/posts: status %d", resp.StatusCode)
			}
		}
		return nil
	}
	// The celebrity posts 20× with 39 followers each; ordinary users post
	// once with 2 followers — fan-out cost ~780 vs ~3.
	if err := post(users[0], 20); err != nil {
		return err
	}
	for _, u := range users[1:] {
		if err := post(u, 1); err != nil {
			return err
		}
	}
	// user001 is the hot consumer: 50 recommends vs 1 for everyone else.
	recommend := func(user string, n int) error {
		for i := 0; i < n; i++ {
			resp, err := client.Get(ts.URL + "/v1/recommendations?user=" + user + "&k=5")
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("hot-smoke: GET /v1/recommendations: status %d", resp.StatusCode)
			}
		}
		return nil
	}
	if err := recommend(users[1], 50); err != nil {
		return err
	}
	for _, u := range users[2:] {
		if err := recommend(u, 1); err != nil {
			return err
		}
	}

	posters, err := hotTopKeys(&servePhase{ts: ts, client: client}, "posters")
	if err != nil {
		return err
	}
	if len(posters) == 0 || posters[0] != users[0] {
		return fmt.Errorf("hot-smoke: planted celebrity %s not the top poster: %v", users[0], posters)
	}
	hotUsers, err := hotTopKeys(&servePhase{ts: ts, client: client}, "users")
	if err != nil {
		return err
	}
	if len(hotUsers) == 0 || hotUsers[0] != users[1] {
		return fmt.Errorf("hot-smoke: planted hot consumer %s not the top user: %v", users[1], hotUsers)
	}

	resp, err := client.Get(ts.URL + "/v1/metrics")
	if err != nil {
		return err
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, family := range []string{"caar_hot_events_total", "caar_hot_tracked_keys", "caar_hot_top_share_ratio"} {
		if !strings.Contains(string(scrape), family) {
			return fmt.Errorf("hot-smoke: %s missing from /v1/metrics scrape", family)
		}
	}

	fmt.Printf("hot-smoke: ok — top poster %s, top user %s, caar_hot_* families exported\n", posters[0], hotUsers[0])
	return nil
}
