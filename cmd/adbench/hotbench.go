package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"
)

// hotBudgetPct is the acceptance ceiling on recommend-p99 growth with
// hot-key telemetry enabled versus disabled. The tracker is always-on in
// production, so its record path — one lock-free ring enqueue per request —
// must stay cheaper than the tracing budget.
const hotBudgetPct = 5.0

// hotBenchResult is the JSON document written by -hot-bench (see
// BENCH_PR8.json). It reuses the A/B/B/A shape benchdiff already
// normalizes: "baseline" is the hot-off phase, "traced" is hot-on, and the
// overhead lands under the key the abba normalizer reads
// ("tracing_overhead_pct" — fixed by the consumer, not by what is traced).
type hotBenchResult struct {
	GeneratedAt    string      `json:"generated_at"`
	Bench          string      `json:"bench"`
	Workers        int         `json:"workers"`
	Rounds         int         `json:"rounds"`
	Baseline       phaseResult `json:"baseline"`
	Traced         phaseResult `json:"traced"`
	HotOverheadPct float64     `json:"tracing_overhead_pct"`
	HotBudgetPct   float64     `json:"hot_budget_pct"`
}

// runHotBench measures what always-on hot-key telemetry costs the serving
// path: two in-process adservers — tracking disabled and tracking enabled
// with a live aggregator goroutine, exactly as adserver wires it — driven
// with the same mixed workload in alternating ABBA slices (same noise
// strategy as -serve-bench). Fails if the recommend p99 grows beyond
// hotBudgetPct, if the hot-on phase's /v1/hot comes back empty, or if the
// hot-off phase serves /v1/hot at all.
func runHotBench(dur time.Duration, outPath string) error {
	off, err := newServePhase(nil, true)
	if err != nil {
		return err
	}
	defer off.close()
	on, err := newServePhase(nil, false)
	if err != nil {
		return err
	}
	defer on.close()

	// Production wiring: the aggregator drains the record queues in the
	// background while traffic flows.
	stop := make(chan struct{})
	defer close(stop)
	if ht := on.eng.HotTracker(); ht != nil {
		go ht.Run(stop)
	} else {
		return fmt.Errorf("hot-bench: hot-on phase has no tracker")
	}

	if err := off.drive(serveWarmup, false); err != nil {
		return err
	}
	if err := on.drive(serveWarmup, false); err != nil {
		return err
	}
	slice := dur / (2 * serveRounds)
	if slice < 50*time.Millisecond {
		slice = 50 * time.Millisecond
	}
	var overhead float64
	for attempt := 1; ; attempt++ {
		for r := 0; r < serveRounds; r++ {
			a, b := off, on
			if r%2 == 1 {
				a, b = on, off
			}
			if err := a.drive(slice, true); err != nil {
				return err
			}
			if err := b.drive(slice, true); err != nil {
				return err
			}
			off.endRound()
			on.endRound()
		}
		overhead = pairedOverheadPct(off.recP99ms, on.recP99ms)
		if overhead <= hotBudgetPct || attempt >= serveMaxAttempts {
			break
		}
		fmt.Printf("hot-bench: overhead estimate %.1f%% over budget after %d rounds; extending measurement\n",
			overhead, len(off.recP99ms))
	}

	// The hot-on phase must actually have tracked the workload: /v1/hot's
	// users dimension saw every recommend.
	hotUsers, err := hotTopKeys(on, "users")
	if err != nil {
		return err
	}
	if len(hotUsers) == 0 {
		return fmt.Errorf("hot-bench: hot-on phase reports no hot users — the record path is not wired")
	}
	// And the hot-off phase must not pretend to serve telemetry.
	resp, err := off.client.Get(off.ts.URL + "/v1/hot")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("hot-bench: disabled phase serves /v1/hot with status %d, want 404", resp.StatusCode)
	}

	baseline, err := off.result()
	if err != nil {
		return err
	}
	traced, err := on.result()
	if err != nil {
		return err
	}
	baseline.Tracing = "hot-off"
	traced.Tracing = "hot-on"

	res := hotBenchResult{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Bench:          "hotkey-overhead",
		Workers:        serveWorkers,
		Rounds:         serveRounds,
		Baseline:       baseline,
		Traced:         traced,
		HotOverheadPct: overhead,
		HotBudgetPct:   hotBudgetPct,
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("hot-bench: hot-off %d req (%.1f req/s, rec p99 %.2fms); hot-on %d req (%.1f req/s, rec p99 %.2fms, top user %s); overhead %.1f%%, wrote %s\n",
		baseline.RequestsTotal, baseline.ThroughputRPS, baseline.RecP99GateMs,
		traced.RequestsTotal, traced.ThroughputRPS, traced.RecP99GateMs, hotUsers[0],
		overhead, outPath)
	if overhead > hotBudgetPct {
		return fmt.Errorf("hot-bench: hot-key telemetry grew recommend p99 by %.1f%% (budget %.0f%%): %.2fms -> %.2fms",
			overhead, hotBudgetPct, baseline.RecP99GateMs, traced.RecP99GateMs)
	}
	return nil
}

// hotTopKeys fetches one dimension from the phase's /v1/hot and returns its
// ranked key names.
func hotTopKeys(p *servePhase, dim string) ([]string, error) {
	resp, err := p.client.Get(p.ts.URL + "/v1/hot?dim=" + dim)
	if err != nil {
		return nil, fmt.Errorf("hot query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hot query: status %d", resp.StatusCode)
	}
	var doc struct {
		Dimensions []struct {
			Keys []struct {
				Key string `json:"key"`
			} `json:"keys"`
		} `json:"dimensions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("hot query: %w", err)
	}
	var keys []string
	for _, d := range doc.Dimensions {
		for _, k := range d.Keys {
			keys = append(keys, k.Key)
		}
	}
	return keys, nil
}
