// Command adbench runs the reproduction experiments: one per table/figure of
// the evaluation grid in DESIGN.md §5.
//
// Usage:
//
//	adbench -exp F1            # one experiment at default scale
//	adbench -exp all -scale 1  # the full grid at full scale
//	adbench -list              # list experiment IDs and titles
//	adbench -serve-bench 5s    # tracing-overhead bench + metrics smoke test
//	adbench -contention 3s     # parallel-recommend-under-writer-churn bench
//	adbench -hot-bench 5s      # hot-key telemetry overhead bench (tracking on vs off)
//	adbench -hot-smoke         # end-to-end /v1/hot smoke: planted hot key must surface
//	adbench -ingest-bench 6s   # group-commit write-path bench (batched ingest vs sync)
//	adbench -ingest-smoke      # end-to-end ingest backpressure smoke: burst, 429s, drain
package main

import (
	"flag"
	"fmt"
	"os"

	"caar/internal/experiments"
	"caar/internal/faultinject"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (T1, F1, …, or 'all')")
	scale := flag.Float64("scale", 0.1, "workload scale factor (1.0 = full evaluation size)")
	list := flag.Bool("list", false, "list available experiments and exit")
	serveBench := flag.Duration("serve-bench", 0, "run the in-process HTTP server bench for this long and exit (0 = off)")
	benchOut := flag.String("bench-out", "BENCH_PR3.json", "output file for -serve-bench results")
	contention := flag.Duration("contention", 0, "run the parallel-recommend contention bench for this long per worker count and exit (0 = off)")
	contentionOut := flag.String("contention-out", "BENCH_PR4.json", "output file for -contention results")
	captureSmoke := flag.Bool("capture-smoke", false, "inject a serving-path latency fault, verify the SLO watchdog trips and captures an attributable CPU profile, and exit")
	captureSmokeOut := flag.String("capture-smoke-out", "BENCH_CAPTURE_SMOKE.json", "output file for -capture-smoke results")
	captureSmokeDir := flag.String("capture-smoke-dir", "", "keep the -capture-smoke bundle under this directory (empty = throwaway temp dir)")
	hotBench := flag.Duration("hot-bench", 0, "run the hot-key-telemetry overhead bench for this long and exit (0 = off)")
	hotOut := flag.String("hot-out", "BENCH_PR8.json", "output file for -hot-bench results")
	hotSmoke := flag.Bool("hot-smoke", false, "serve traffic with a planted hot key, verify /v1/hot names it, and exit")
	ingestBench := flag.Duration("ingest-bench", 0, "run the group-commit write-path bench for this long and exit (0 = off)")
	ingestOut := flag.String("ingest-out", "BENCH_PR9.json", "output file for -ingest-bench results")
	ingestSmoke := flag.Bool("ingest-smoke", false, "burst a tiny ingest ring behind a slow journal, verify 429+Retry-After shedding, drain, check invariants, and exit")
	flag.Parse()

	// Lock watchdog: a no-op outside `-tags caarlockwatch` builds; the
	// race-matrix smokes build with the tag and set CAAR_LOCKWATCH so a
	// mutex held past the bound dumps all goroutine stacks and panics.
	if spec, err := faultinject.ArmLockWatchFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "adbench:", err)
		os.Exit(1)
	} else if spec != "" {
		fmt.Fprintf(os.Stderr, "adbench: faultinject: lock watchdog armed: bound %s\n", spec)
	}

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	if *serveBench > 0 {
		if err := runServeBench(*serveBench, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *contention > 0 {
		if err := runContentionBench(*contention, *contentionOut); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *hotBench > 0 {
		if err := runHotBench(*hotBench, *hotOut); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *hotSmoke {
		if err := runHotSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *ingestBench > 0 {
		if err := runIngestBench(*ingestBench, *ingestOut); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *ingestSmoke {
		if err := runIngestSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	if *captureSmoke {
		if err := runCaptureSmoke(*captureSmokeOut, *captureSmokeDir); err != nil {
			fmt.Fprintln(os.Stderr, "adbench:", err)
			os.Exit(1)
		}
		return
	}

	r := &experiments.Runner{Out: os.Stdout, Scale: *scale}
	if err := r.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "adbench:", err)
		os.Exit(1)
	}
}
