package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	caar "caar"
	"caar/ingest"
	"caar/internal/server"
	"caar/journal"
	"caar/metrics"
	"caar/obs"
)

// Acceptance gates for -ingest-bench. The pipeline exists to amortize the
// fsync and the shard-lock acquisition across a batch, so at write
// saturation it must at least double posts/s, spend at least 5x fewer
// fsyncs per post, and actually form batches (mean >= ingestMinBatch);
// and at a matched, paced write load it must not tax the read path: the
// recommend p99 may grow at most ingestRecBudgetPct versus the synchronous
// write path. The two claims are measured in separate segments because a
// closed loop conflates them — a faster write path does more work per
// second, which by itself slows reads.
const (
	ingestMinSpeedup     = 2.0
	ingestMinFsyncFactor = 5.0
	ingestMinBatch       = 8.0
	ingestRecBudgetPct   = 10.0

	ingestPostWorkers = 32 // closed-loop posters in the throughput segment
	ingestReadWorkers = 6  // closed-loop recommend workers in the read segment
	ingestPacers      = 3  // paced background posters in the read segment
	ingestPaceEvery   = 5 * time.Millisecond

	// ingestLinger holds a partial batch open briefly so the saturation
	// segment measures the grouped regime rather than racing the committer
	// against the HTTP round-trip; it is the product's own -ingest-linger
	// knob, and its cost is on the posts it delays, which the post p99
	// reports.
	ingestLinger = 250 * time.Microsecond

	ingestRetryBackoff   = 500 * time.Microsecond
	ingestMaxSubmitRetry = 1000
)

// ingestBenchResult is the JSON document written by -ingest-bench (see
// BENCH_PR9.json). It reuses the A/B/B/A shape benchdiff normalizes:
// "baseline" is the synchronous journaled write path, "traced" is the
// batched ingest pipeline, and the recommend-p99 regression lands under the
// key the abba normalizer reads ("tracing_overhead_pct" — fixed by the
// consumer, not by what is measured).
type ingestBenchResult struct {
	GeneratedAt string      `json:"generated_at"`
	Bench       string      `json:"bench"`
	PostWorkers int         `json:"post_workers"`
	ReadWorkers int         `json:"read_workers"`
	Rounds      int         `json:"rounds"`
	Baseline    phaseResult `json:"baseline"`
	Traced      phaseResult `json:"traced"`
	// RecRegressionPct is the paired growth of the recommend p99 with the
	// ingest pipeline on versus the synchronous path, under the same paced
	// write load.
	RecRegressionPct float64 `json:"tracing_overhead_pct"`
	RecBudgetPct     float64 `json:"rec_budget_pct"`

	// Write-saturation gates (pure-post segment).
	SyncPostsPerSec     float64 `json:"sync_posts_per_sec"`
	IngestPostsPerSec   float64 `json:"ingest_posts_per_sec"`
	PostSpeedup         float64 `json:"post_speedup"`
	SyncFsyncsPerSec    float64 `json:"sync_fsyncs_per_sec"`
	IngestFsyncsPerSec  float64 `json:"ingest_fsyncs_per_sec"`
	SyncFsyncsPerPost   float64 `json:"sync_fsyncs_per_post"`
	IngestFsyncsPerPost float64 `json:"ingest_fsyncs_per_post"`
	FsyncReduction      float64 `json:"fsync_per_post_reduction"`
	MeanBatch           float64 `json:"mean_batch_entries"`
	Retried429          int     `json:"retried_429_total"`
}

// ingestPhase is one write-path variant under test: a seeded engine behind a
// live server, journaling to a real temp file with -fsync always so every
// group commit (or, on the sync path, every post) pays a true fsync.
type ingestPhase struct {
	name   string
	eng    *caar.Engine
	jw     *journal.Writer
	jf     *os.File
	pipe   *ingest.Pipeline
	ts     *httptest.Server
	client *http.Client
	users  []string
	at     string

	post        []time.Duration // post samples, current throughput round
	postDone    []time.Duration
	postElapsed time.Duration

	rec        []time.Duration // recommend samples, current read round
	recDone    []time.Duration
	recP99ms   []float64
	recElapsed time.Duration

	retried int // 429s absorbed by the drivers' retry loops
}

// newIngestPhase builds a seeded engine journaling to its own temp file.
// With batched false, posts take the synchronous Logged path (one fsync
// each); with batched true they go through a real ingest.Pipeline wired to
// the same journal writer.
func newIngestPhase(name string, batched bool) (*ingestPhase, error) {
	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	cfg.Metrics = reg
	eng, err := caar.Open(cfg)
	if err != nil {
		return nil, err
	}
	users, now, err := seedServeGraph(eng)
	if err != nil {
		return nil, err
	}

	jf, err := os.CreateTemp("", "ingestbench-*.journal")
	if err != nil {
		return nil, err
	}
	jw := journal.NewFileWriter(jf, journal.SyncAlways, 0)
	jw.SetMetrics(journal.NewMetrics(reg))

	opts := []server.Option{server.WithMetrics(reg)}
	var pipe *ingest.Pipeline
	if batched {
		pipe = ingest.New(eng, jw, reg, ingest.Config{Linger: ingestLinger})
		opts = append(opts, server.WithIngest(pipe))
	}
	ts := httptest.NewServer(server.New(journal.NewLogged(eng, jw), opts...).Handler())
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * ingestPostWorkers,
		MaxIdleConnsPerHost: 2 * ingestPostWorkers,
	}}
	return &ingestPhase{
		name:   name,
		eng:    eng,
		jw:     jw,
		jf:     jf,
		pipe:   pipe,
		ts:     ts,
		client: client,
		users:  users,
		at:     now.Format(time.RFC3339Nano),
	}, nil
}

func (p *ingestPhase) close() {
	p.client.CloseIdleConnections()
	p.ts.Close()
	if p.pipe != nil {
		p.pipe.Close()
	}
	p.jw.Close()
	p.jf.Close()
	os.Remove(p.jf.Name())
}

func (p *ingestPhase) endPostRound() {
	p.postDone = append(p.postDone, p.post...)
	p.post = p.post[:0]
}

func (p *ingestPhase) endReadRound() {
	if len(p.rec) == 0 {
		return
	}
	p.recP99ms = append(p.recP99ms, exactStats(p.rec).P99ms)
	p.recDone = append(p.recDone, p.rec...)
	p.rec = p.rec[:0]
}

// drivePosts saturates the write path: ingestPostWorkers closed-loop
// posters, nothing else. A 429 is retried after a short backoff — the
// client contract — and counted; the post's recorded latency then includes
// the backoff, exactly what a real producer observes.
func (p *ingestPhase) drivePosts(dur time.Duration, record bool) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for wk := 0; wk < ingestPostWorkers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 8192)
			retried := 0
			for i := 0; time.Now().Before(deadline); i++ {
				user := p.users[(wk*131+i)%len(p.users)]
				body, _ := json.Marshal(map[string]string{
					"author": user,
					"text":   fmt.Sprintf("word%04d word%04d update", (wk*31+i)%500, (i*7)%500),
					"at":     p.at,
				})
				t0 := time.Now()
				n, err := p.postWithRetry(body)
				retried += n
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			if record {
				mu.Lock()
				p.post = append(p.post, local...)
				p.retried += retried
				mu.Unlock()
			}
		}(wk)
	}
	wg.Wait()
	if record {
		p.postElapsed += time.Since(start)
	}
	if firstErr != nil {
		return fmt.Errorf("ingest-bench: post failed: %w", firstErr)
	}
	return nil
}

// driveReads measures the read path under a matched write load: closed-loop
// recommend workers plus paced background posters at a fixed rate — the
// SAME rate in both phases, so the comparison isolates what the write-path
// machinery costs readers rather than rewarding the slower writer with a
// lighter box.
func (p *ingestPhase) driveReads(dur time.Duration, record bool) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	deadline := time.Now().Add(dur)
	start := time.Now()
	for wk := 0; wk < ingestReadWorkers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			for i := 0; time.Now().Before(deadline); i++ {
				user := p.users[(wk*131+i)%len(p.users)]
				t0 := time.Now()
				resp, err := p.client.Get(p.ts.URL + "/v1/recommendations?user=" + user + "&k=5&at=" + p.at)
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if err != nil {
					fail(err)
					return
				}
				local = append(local, time.Since(t0))
			}
			if record {
				mu.Lock()
				p.rec = append(p.rec, local...)
				mu.Unlock()
			}
		}(wk)
	}
	for pc := 0; pc < ingestPacers; pc++ {
		wg.Add(1)
		go func(pc int) {
			defer wg.Done()
			tick := time.NewTicker(ingestPaceEvery)
			defer tick.Stop()
			retried := 0
			for i := 0; time.Now().Before(deadline); i++ {
				<-tick.C
				user := p.users[(pc*37+i)%len(p.users)]
				body, _ := json.Marshal(map[string]string{
					"author": user,
					"text":   fmt.Sprintf("paced word%04d note", (pc*97+i)%500),
					"at":     p.at,
				})
				n, err := p.postWithRetry(body)
				retried += n
				if err != nil {
					fail(err)
					return
				}
			}
			if record {
				mu.Lock()
				p.retried += retried
				mu.Unlock()
			}
		}(pc)
	}
	wg.Wait()
	if record {
		p.recElapsed += time.Since(start)
	}
	if firstErr != nil {
		return fmt.Errorf("ingest-bench: read-segment request failed: %w", firstErr)
	}
	return nil
}

// postWithRetry submits one post, honoring 429 backpressure with a short
// backoff, and returns how many 429s it absorbed.
func (p *ingestPhase) postWithRetry(body []byte) (int, error) {
	for attempt := 0; ; attempt++ {
		resp, err := p.client.Post(p.ts.URL+"/v1/posts", "application/json", bytes.NewReader(body))
		if err != nil {
			return attempt, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			if attempt >= ingestMaxSubmitRetry {
				return attempt, fmt.Errorf("post still shed after %d retries", attempt)
			}
			time.Sleep(ingestRetryBackoff)
		case resp.StatusCode >= 300:
			return attempt, fmt.Errorf("post status %d", resp.StatusCode)
		default:
			return attempt, nil
		}
	}
}

func (p *ingestPhase) result(tag string) (phaseResult, error) {
	var zero phaseResult
	series, families, err := scrapeMetrics(p.client, p.ts.URL+"/v1/metrics")
	if err != nil {
		return zero, err
	}
	if series == 0 {
		return zero, fmt.Errorf("ingest-bench: /v1/metrics scrape returned no series")
	}
	elapsed := p.postElapsed + p.recElapsed
	total := uint64(len(p.recDone) + len(p.postDone))
	return phaseResult{
		Tracing:         tag,
		DurationSeconds: elapsed.Seconds(),
		RequestsTotal:   total,
		ThroughputRPS:   metrics.Throughput{Events: total, Elapsed: elapsed}.PerSecond(),
		Endpoints: map[string]endpointStats{
			"/v1/recommendations": exactStats(p.recDone),
			"/v1/posts":           exactStats(p.postDone),
		},
		RecP99PerRoundMs: p.recP99ms,
		RecP99GateMs:     median(p.recP99ms),
		MetricSeries:     series,
		MetricFamilies:   families,
	}, nil
}

// counter scrapes one counter/gauge value from the phase's /v1/metrics.
func (p *ingestPhase) counter(name string) (float64, error) {
	resp, err := p.client.Get(p.ts.URL + "/v1/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("ingest-bench: metric %s not found in scrape", name)
}

// runIngestBench measures what group commit buys the write path: two live
// servers journaling to real files with -fsync always — the synchronous
// Logged path (one fsync per post) versus the batched ingest pipeline (one
// fsync per group commit). Segment 1 saturates both with closed-loop
// posters in alternating ABBA slices and gates posts/s, mean batch size and
// fsyncs per post; segment 2 drives closed-loop recommends with an
// identical paced write load on both and gates the recommend p99.
func runIngestBench(dur time.Duration, outPath string) error {
	syncPath, err := newIngestPhase("sync", false)
	if err != nil {
		return err
	}
	defer syncPath.close()
	batched, err := newIngestPhase("ingest", true)
	if err != nil {
		return err
	}
	defer batched.close()

	if err := syncPath.drivePosts(serveWarmup, false); err != nil {
		return err
	}
	if err := batched.drivePosts(serveWarmup, false); err != nil {
		return err
	}

	// Segment 1: write saturation. Counter snapshots bracket exactly this
	// segment so the batch-size and fsync gates describe the saturated
	// regime, not the paced one.
	syncFsyncs0, err := syncPath.counter("caar_journal_fsyncs_total")
	if err != nil {
		return err
	}
	ingFsyncs0, err := batched.counter("caar_journal_fsyncs_total")
	if err != nil {
		return err
	}
	accepted0, err := batched.counter("caar_ingest_accepted_total")
	if err != nil {
		return err
	}
	commits0, err := batched.counter("caar_ingest_batches_total")
	if err != nil {
		return err
	}

	slice := dur / (4 * serveRounds) // dur splits across 2 segments × 2 phases
	if slice < 50*time.Millisecond {
		slice = 50 * time.Millisecond
	}
	for r := 0; r < serveRounds; r++ {
		a, b := syncPath, batched
		if r%2 == 1 {
			a, b = batched, syncPath
		}
		if err := a.drivePosts(slice, true); err != nil {
			return err
		}
		if err := b.drivePosts(slice, true); err != nil {
			return err
		}
		syncPath.endPostRound()
		batched.endPostRound()
	}

	syncFsyncs, err := syncPath.counter("caar_journal_fsyncs_total")
	if err != nil {
		return err
	}
	ingFsyncs, err := batched.counter("caar_journal_fsyncs_total")
	if err != nil {
		return err
	}
	accepted, err := batched.counter("caar_ingest_accepted_total")
	if err != nil {
		return err
	}
	commits, err := batched.counter("caar_ingest_batches_total")
	if err != nil {
		return err
	}
	syncFsyncs -= syncFsyncs0
	ingFsyncs -= ingFsyncs0
	accepted -= accepted0
	commits -= commits0

	// Segment 2: read latency at matched write load, with the same
	// extend-on-noise policy as the other ABBA benches.
	var regression float64
	for attempt := 1; ; attempt++ {
		for r := 0; r < serveRounds; r++ {
			a, b := syncPath, batched
			if r%2 == 1 {
				a, b = batched, syncPath
			}
			if err := a.driveReads(slice, true); err != nil {
				return err
			}
			if err := b.driveReads(slice, true); err != nil {
				return err
			}
			syncPath.endReadRound()
			batched.endReadRound()
		}
		regression = pairedOverheadPct(syncPath.recP99ms, batched.recP99ms)
		if regression <= ingestRecBudgetPct || attempt >= serveMaxAttempts {
			break
		}
		fmt.Printf("ingest-bench: rec-p99 regression estimate %.1f%% over budget after %d rounds; extending measurement\n",
			regression, len(syncPath.recP99ms))
	}

	syncPosts := float64(len(syncPath.postDone))
	ingPosts := float64(len(batched.postDone))
	if syncPosts == 0 || ingPosts == 0 || syncFsyncs == 0 || ingFsyncs == 0 || commits == 0 {
		return fmt.Errorf("ingest-bench: degenerate run (posts %v/%v fsyncs %v/%v commits %v)",
			syncPosts, ingPosts, syncFsyncs, ingFsyncs, commits)
	}
	syncRate := syncPosts / syncPath.postElapsed.Seconds()
	ingRate := ingPosts / batched.postElapsed.Seconds()
	speedup := ingRate / syncRate
	// fsyncs are normalized per post: both phases run the segment closed-
	// loop, so raw fsyncs/s just tracks disk saturation on both sides; what
	// group commit changes is how many posts each fsync pays for.
	syncPerPost := syncFsyncs / syncPosts
	ingPerPost := ingFsyncs / ingPosts
	reduction := syncPerPost / ingPerPost
	meanBatch := accepted / commits

	baseline, err := syncPath.result("sync-write-path")
	if err != nil {
		return err
	}
	traced, err := batched.result("batched-ingest")
	if err != nil {
		return err
	}

	res := ingestBenchResult{
		GeneratedAt:         time.Now().UTC().Format(time.RFC3339),
		Bench:               "ingest-group-commit",
		PostWorkers:         ingestPostWorkers,
		ReadWorkers:         ingestReadWorkers,
		Rounds:              serveRounds,
		Baseline:            baseline,
		Traced:              traced,
		RecRegressionPct:    regression,
		RecBudgetPct:        ingestRecBudgetPct,
		SyncPostsPerSec:     syncRate,
		IngestPostsPerSec:   ingRate,
		PostSpeedup:         speedup,
		SyncFsyncsPerSec:    syncFsyncs / syncPath.postElapsed.Seconds(),
		IngestFsyncsPerSec:  ingFsyncs / batched.postElapsed.Seconds(),
		SyncFsyncsPerPost:   syncPerPost,
		IngestFsyncsPerPost: ingPerPost,
		FsyncReduction:      reduction,
		MeanBatch:           meanBatch,
		Retried429:          syncPath.retried + batched.retried,
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingest-bench: sync %.0f posts/s (%.2f fsyncs/post); ingest %.0f posts/s (%.3f fsyncs/post, mean batch %.1f); speedup %.1fx, fsync/post reduction %.1fx, rec p99 regression %.1f%% at matched load, wrote %s\n",
		syncRate, syncPerPost, ingRate, ingPerPost, meanBatch, speedup, reduction, regression, outPath)

	switch {
	case speedup < ingestMinSpeedup:
		return fmt.Errorf("ingest-bench: posts/s speedup %.2fx below gate %.1fx (%.0f -> %.0f posts/s)",
			speedup, ingestMinSpeedup, syncRate, ingRate)
	case meanBatch < ingestMinBatch:
		return fmt.Errorf("ingest-bench: mean batch %.1f below gate %.0f — group commit is not grouping", meanBatch, ingestMinBatch)
	case reduction < ingestMinFsyncFactor:
		return fmt.Errorf("ingest-bench: fsyncs per post reduced only %.1fx (gate %.0fx): %.2f -> %.3f",
			reduction, ingestMinFsyncFactor, syncPerPost, ingPerPost)
	case regression > ingestRecBudgetPct:
		return fmt.Errorf("ingest-bench: batched ingest grew recommend p99 by %.1f%% (budget %.0f%%): %.2fms -> %.2fms",
			regression, ingestRecBudgetPct, baseline.RecP99GateMs, traced.RecP99GateMs)
	}
	return nil
}
