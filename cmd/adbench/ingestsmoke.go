package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	caar "caar"
	"caar/ingest"
	"caar/internal/server"
	"caar/journal"
	"caar/obs"
)

const (
	smokeUsers    = 8
	smokeBurst    = 48
	smokeQueue    = 8 // tiny ring so the burst overflows it
	smokeBatch    = 4
	smokeCommitMs = 4 // per-commit journal delay; makes the ring back up
)

// slowJournal wraps a real writer with a fixed per-commit delay, standing in
// for a disk whose fsync cannot keep up with the offered burst.
type slowJournal struct {
	w *journal.Writer
}

func (s *slowJournal) AppendBatch(entries []journal.Entry) error {
	time.Sleep(smokeCommitMs * time.Millisecond)
	return s.w.AppendBatch(entries)
}

func (s *slowJournal) SyncPending() error { return s.w.SyncPending() }

// runIngestSmoke is the end-to-end backpressure drill, built to run under
// the race detector: a live server with a deliberately tiny ingest ring
// behind a slow journal takes a concurrent burst of posts. The smoke fails
// unless (1) some of the burst is shed with 429 + Retry-After while some is
// acked, (2) every shed post succeeds on client-style retry, (3) after the
// pipeline drains, /v1/invariants accounts for every acked post and lists
// only the impression op as apply-first, and (4) replaying the journal into
// a fresh engine reproduces the same delivered-post count — the acks were
// backed by the log.
func runIngestSmoke() error {
	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Shards = 2
	cfg.Metrics = reg
	eng, err := caar.Open(cfg)
	if err != nil {
		return err
	}
	users, err := seedSmokeGraph(eng)
	if err != nil {
		return err
	}

	jf, err := os.CreateTemp("", "ingestsmoke-*.journal")
	if err != nil {
		return err
	}
	defer os.Remove(jf.Name())
	defer jf.Close()
	jw := journal.NewFileWriter(jf, journal.SyncAlways, 0)
	jw.SetMetrics(journal.NewMetrics(reg))

	pipe := ingest.New(eng, &slowJournal{w: jw}, reg, ingest.Config{
		QueueSize: smokeQueue,
		MaxBatch:  smokeBatch,
	})
	ts := httptest.NewServer(server.New(journal.NewLogged(eng, jw),
		server.WithMetrics(reg), server.WithIngest(pipe)).Handler())
	defer ts.Close()
	client := &http.Client{}

	// Phase 1: the burst. More concurrent posts than the ring can hold while
	// each commit crawls — the edge must shed, and what it acks must stick.
	at := time.Now().Format(time.RFC3339Nano)
	type outcome struct {
		status     int
		retryAfter string
		body       []byte
	}
	results := make([]outcome, smokeBurst)
	var wg sync.WaitGroup
	for i := 0; i < smokeBurst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]string{
				"author": users[i%len(users)],
				"text":   fmt.Sprintf("burst message %d with context words", i),
				"at":     at,
			})
			resp, err := client.Post(ts.URL+"/v1/posts", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i] = outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results[i] = outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}
		}(i)
	}
	wg.Wait()

	acked, shed := 0, 0
	for i, r := range results {
		switch r.status {
		case http.StatusNoContent:
			acked++
		case http.StatusTooManyRequests:
			if r.retryAfter == "" {
				return fmt.Errorf("ingest-smoke: burst post %d shed without a Retry-After hint", i)
			}
			shed++
		default:
			return fmt.Errorf("ingest-smoke: burst post %d: status %d, want 204 or 429", i, r.status)
		}
	}
	if shed == 0 {
		return fmt.Errorf("ingest-smoke: %d concurrent posts against a %d-slot ring never shed — backpressure is not wired", smokeBurst, smokeQueue)
	}
	if acked == 0 {
		return fmt.Errorf("ingest-smoke: every burst post shed — the committer never drained the ring")
	}

	// Phase 2: the drain. Every shed post retries like a client honoring the
	// hint until the ring has room again; all of them must land.
	for i, r := range results {
		if r.status != http.StatusTooManyRequests {
			continue
		}
		landed := false
		for attempt := 0; attempt < 400; attempt++ {
			resp, err := client.Post(ts.URL+"/v1/posts", "application/json", bytes.NewReader(r.body))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusNoContent {
				landed = true
				break
			}
			if code != http.StatusTooManyRequests {
				return fmt.Errorf("ingest-smoke: retry of post %d: status %d", i, code)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !landed {
			return fmt.Errorf("ingest-smoke: post %d still shed after the burst ended — the ring never drained", i)
		}
		acked++
	}

	// Phase 3: drain the pipeline (commit AND apply), then the books must
	// balance: every acked post delivered, sync-exception ops limited to the
	// impression path.
	if err := pipe.Close(); err != nil {
		return err
	}
	var rep caar.InvariantReport
	resp, err := client.Get(ts.URL + "/v1/invariants")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if rep.PostsDelivered != uint64(acked) {
		return fmt.Errorf("ingest-smoke: %d posts acked but /v1/invariants reports %d delivered", acked, rep.PostsDelivered)
	}
	if len(rep.ApplyFirstOps) != 1 || rep.ApplyFirstOps[0] != string(journal.OpImpression) {
		return fmt.Errorf("ingest-smoke: apply-first ops = %v, want exactly [%s]", rep.ApplyFirstOps, journal.OpImpression)
	}

	// Phase 4: the acks were durable, not just in memory — a fresh engine
	// fed only the journal reaches the same delivered count.
	if err := jw.Close(); err != nil {
		return err
	}
	if _, err := jf.Seek(0, io.SeekStart); err != nil {
		return err
	}
	recovered, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		return err
	}
	if _, err := seedSmokeGraph(recovered); err != nil {
		return err
	}
	stats, err := journal.Replay(jf, recovered)
	if err != nil {
		return err
	}
	if stats.Applied != acked || stats.Skipped != 0 {
		return fmt.Errorf("ingest-smoke: replay applied %d, skipped %d; want %d applied", stats.Applied, stats.Skipped, acked)
	}
	if got := recovered.Stats().PostsDelivered; got != uint64(acked) {
		return fmt.Errorf("ingest-smoke: replayed engine delivered %d posts, acked %d", got, acked)
	}

	fmt.Printf("ingest-smoke: PASS — burst %d: %d acked, %d shed with Retry-After; all retries landed; invariants account for %d posts; replay reproduces them\n",
		smokeBurst, acked-shed, shed, acked)
	return nil
}

// seedSmokeGraph loads the smoke's tiny social graph: smokeUsers users who
// all follow user 0, so every post fans out.
func seedSmokeGraph(eng *caar.Engine) ([]string, error) {
	users := make([]string, smokeUsers)
	for i := range users {
		users[i] = fmt.Sprintf("smoke%02d", i)
		if err := eng.AddUser(users[i]); err != nil {
			return nil, err
		}
	}
	for _, u := range users[1:] {
		if err := eng.Follow(u, users[0]); err != nil {
			return nil, err
		}
	}
	return users, nil
}
