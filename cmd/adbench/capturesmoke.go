package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	caar "caar"
	"caar/internal/faultinject"
	"caar/internal/server"
	"caar/obs"
	"caar/obs/capture"
	"caar/obs/slo"
)

// -capture-smoke: the incident pipeline, end to end, against a live server.
//
// The smoke run arms the serving-path delay point (the same hook
// CAAR_DELAYS drives in a real deployment) so every recommend busy-spins
// for a few milliseconds, declares a latency objective the spin must
// violate, and then drives traffic until the burn-rate watchdog trips and
// the anomaly capture lands. It fails unless the resulting bundle holds a
// non-empty CPU profile in which the injected delay site
// (faultinject.spinDelay) is attributable — proving the profile was taken
// while the anomaly was still happening, which is the entire point of the
// flight recorder.

// captureSmokeResult is the JSON document written by -capture-smoke.
type captureSmokeResult struct {
	GeneratedAt     string  `json:"generated_at"`
	DelaySpec       string  `json:"delay_spec"`
	Requests        uint64  `json:"requests"`
	DelayHits       uint64  `json:"delay_hits"`
	TrippedAfterMs  float64 `json:"tripped_after_ms"`
	FastBurn        float64 `json:"fast_burn"`
	SlowBurn        float64 `json:"slow_burn"`
	Bundle          string  `json:"bundle"`
	CPUProfileBytes int     `json:"cpu_profile_bytes"`
	DelayAttributed bool    `json:"delay_site_attributed"`
}

const (
	smokeDelaySpec = "serve.recommend:5ms"
	smokeTimeout   = 30 * time.Second
)

func runCaptureSmoke(outPath, bundleDir string) error {
	if err := faultinject.ArmDelays(smokeDelaySpec); err != nil {
		return err
	}
	defer faultinject.DisarmDelays()

	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Metrics = reg
	eng, err := caar.Open(cfg)
	if err != nil {
		return err
	}
	if err := seedSmoke(eng); err != nil {
		return err
	}

	// With no -capture-smoke-dir the bundle lands in a throwaway temp dir;
	// CI passes a real path so the bundle survives as a build artifact.
	dir := bundleDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "caar-capture-smoke-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rec, err := capture.NewRecorder(capture.Config{
		Dir:                dir,
		CPUProfileDuration: time.Second,
		Metrics:            reg,
	})
	if err != nil {
		return err
	}

	// The objective is tight (1ms; bucket quantization makes it 0.8ms) and
	// the windows short, so a 5ms spin per request trips within seconds.
	tripped := make(chan slo.Trip, 1)
	start := time.Now()
	sloCfg := slo.Config{
		FastWindow:    2 * time.Second,
		SlowWindow:    4 * time.Second,
		SampleEvery:   100 * time.Millisecond,
		BurnThreshold: 14.4,
		MinEvents:     20,
		OnTrip: func(tp slo.Trip) {
			select {
			case tripped <- tp:
			default:
			}
		},
	}
	obj := slo.Objective{
		Name:      "rec-smoke",
		Endpoint:  "/v1/recommendations",
		Kind:      slo.KindLatency,
		Threshold: time.Millisecond,
		Target:    0.99,
	}
	srv := server.New(eng,
		server.WithMetrics(reg),
		server.WithSLO(sloCfg, obj),
		server.WithCapture(rec),
	)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go srv.SLO().Run(done)
	defer close(done)

	// Closed-loop load: keeps the delay site hot so the CPU profile taken
	// after the trip has spin frames to attribute.
	var reqs atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/v1/recommendations?user=alice&k=3")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				reqs.Add(1)
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	var trip slo.Trip
	select {
	case trip = <-tripped:
	case <-time.After(smokeTimeout):
		return fmt.Errorf("capture-smoke: watchdog did not trip within %s (%d requests, %d delay hits)",
			smokeTimeout, reqs.Load(), faultinject.DelayHits())
	}
	trippedAfter := time.Since(start)

	// Capture while the spin load is still running — the real wiring does
	// exactly this from OnTrip.
	bundle, err := rec.Capture("anomaly",
		fmt.Sprintf("smoke: %s fast burn %.1f", trip.Objective, trip.FastBurn), false)
	if err != nil {
		return fmt.Errorf("capture-smoke: capture after trip: %w", err)
	}
	cpu, err := rec.ReadFile(bundle, "cpu.pprof")
	if err != nil {
		return fmt.Errorf("capture-smoke: read cpu.pprof: %w", err)
	}
	if len(cpu) == 0 {
		return fmt.Errorf("capture-smoke: cpu.pprof is empty")
	}
	attributed, err := profileMentions(cpu, "faultinject")
	if err != nil {
		return fmt.Errorf("capture-smoke: parse cpu.pprof: %w", err)
	}
	if !attributed {
		return fmt.Errorf("capture-smoke: injected delay site not attributable in cpu.pprof (%d bytes)", len(cpu))
	}

	result := captureSmokeResult{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		DelaySpec:       smokeDelaySpec,
		Requests:        reqs.Load(),
		DelayHits:       faultinject.DelayHits(),
		TrippedAfterMs:  float64(trippedAfter.Milliseconds()),
		FastBurn:        trip.FastBurn,
		SlowBurn:        trip.SlowBurn,
		Bundle:          bundle,
		CPUProfileBytes: len(cpu),
		DelayAttributed: attributed,
	}
	blob, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("capture-smoke: tripped after %s (fast burn %.1f), bundle %s, cpu.pprof %d bytes, delay site attributed\n",
		trippedAfter.Round(time.Millisecond), trip.FastBurn, bundle, len(cpu))
	fmt.Printf("capture-smoke: wrote %s\n", outPath)
	return nil
}

// profileMentions reports whether the gzipped pprof protobuf contains the
// given symbol substring. The profile's string table stores function names
// as raw bytes, so a substring scan over the decompressed payload is a
// robust attribution check without a protobuf decoder.
func profileMentions(gzipped []byte, symbol string) (bool, error) {
	zr, err := gzip.NewReader(bytes.NewReader(gzipped))
	if err != nil {
		return false, err
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return false, err
	}
	return bytes.Contains(raw, []byte(symbol)), nil
}

// seedSmoke loads just enough state for recommends to exercise the full
// pipeline.
func seedSmoke(eng *caar.Engine) error {
	for _, u := range []string{"alice", "bob"} {
		if err := eng.AddUser(u); err != nil {
			return err
		}
	}
	if err := eng.Follow("alice", "bob"); err != nil {
		return err
	}
	ads := []caar.Ad{
		{ID: "shoes", Text: "marathon running shoes spring sale", Bid: 0.4},
		{ID: "vpn", Text: "secure fast vpn service", Bid: 0.6},
	}
	for _, a := range ads {
		if err := eng.AddAd(a); err != nil {
			return err
		}
	}
	now := time.Now()
	posts := []string{
		"long marathon run this morning, shoes finally broke in",
		"vpn setup for the home office finally done",
	}
	for _, p := range posts {
		if err := eng.Post("bob", p, now); err != nil {
			return err
		}
	}
	return nil
}
