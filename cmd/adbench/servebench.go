package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	caar "caar"
	"caar/internal/server"
	"caar/metrics"
	"caar/obs"
)

// serveBenchResult is the JSON document written by -serve-bench (see
// BENCH_PR2.json). Latencies come from metrics.LatencyHist quantiles, not an
// ad-hoc sort, so results merge and compare across runs the same way the
// experiment grid does.
type serveBenchResult struct {
	GeneratedAt     string                   `json:"generated_at"`
	DurationSeconds float64                  `json:"duration_seconds"`
	Workers         int                      `json:"workers"`
	RequestsTotal   uint64                   `json:"requests_total"`
	ThroughputRPS   float64                  `json:"throughput_rps"`
	Endpoints       map[string]endpointStats `json:"endpoints"`
	MetricSeries    int                      `json:"metric_series"`
	MetricFamilies  int                      `json:"metric_families"`
}

type endpointStats struct {
	Count uint64  `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// runServeBench stands up an in-process adserver (engine + HTTP middleware
// sharing one obs registry), drives a mixed read/write workload against it
// for dur, and writes per-endpoint throughput and latency quantiles to
// outPath. It fails if the /v1/metrics scrape afterwards is empty — the
// bench doubles as a smoke test that the observability layer is actually
// wired end to end.
func runServeBench(dur time.Duration, outPath string) error {
	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	cfg.Metrics = reg
	eng, err := caar.Open(cfg)
	if err != nil {
		return err
	}

	// Seed a small social graph with ads so recommendations have work to do.
	const nUsers = 64
	users := make([]string, nUsers)
	now := time.Now()
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i)
		if err := eng.AddUser(users[i]); err != nil {
			return err
		}
	}
	for i, u := range users {
		for f := 1; f <= 4; f++ {
			if err := eng.Follow(u, users[(i+f*7)%nUsers]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < 40; i++ {
		ad := caar.Ad{
			ID:   fmt.Sprintf("ad%03d", i),
			Text: fmt.Sprintf("word%04d word%04d word%04d offer sale", i%500, (i*3)%500, (i*11)%500),
			Bid:  0.1 + float64(i%10)/20,
		}
		if err := eng.AddAd(ad); err != nil {
			return err
		}
	}
	for i, u := range users {
		text := fmt.Sprintf("word%04d word%04d word%04d morning update", i%500, (i*5)%500, (i*13)%500)
		if err := eng.Post(u, text, now); err != nil {
			return err
		}
	}

	ts := httptest.NewServer(server.New(eng, server.WithMetrics(reg)).Handler())
	defer ts.Close()
	client := ts.Client()
	at := now.Format(time.RFC3339Nano)

	const workers = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		recHist  metrics.LatencyHist // /v1/recommendations
		postHist metrics.LatencyHist // /v1/posts
		firstErr error
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var localRec, localPost metrics.LatencyHist
			for i := 0; time.Now().Before(deadline); i++ {
				user := users[(wk*131+i)%nUsers]
				isPost := i%10 < 3 // 30% writes
				t0 := time.Now()
				var (
					resp *http.Response
					err  error
				)
				if isPost {
					body, _ := json.Marshal(map[string]string{
						"author": user,
						"text":   fmt.Sprintf("word%04d word%04d update", (wk*31+i)%500, (i*7)%500),
						"at":     at,
					})
					resp, err = client.Post(ts.URL+"/v1/posts", "application/json", bytes.NewReader(body))
				} else {
					resp, err = client.Get(ts.URL + "/v1/recommendations?user=" + user + "&k=5&at=" + at)
				}
				elapsed := time.Since(t0)
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if isPost {
					localPost.Observe(elapsed)
				} else {
					localRec.Observe(elapsed)
				}
			}
			mu.Lock()
			recHist.Merge(&localRec)
			postHist.Merge(&localPost)
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return fmt.Errorf("serve-bench: request failed: %w", firstErr)
	}

	// Scrape the exposition the workload just populated; an empty scrape
	// means the observability wiring is broken, which fails the bench.
	series, families, err := scrapeMetrics(client, ts.URL+"/v1/metrics")
	if err != nil {
		return err
	}
	if series == 0 {
		return fmt.Errorf("serve-bench: /v1/metrics scrape returned no series")
	}

	total := recHist.Count() + postHist.Count()
	res := serveBenchResult{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		DurationSeconds: elapsed.Seconds(),
		Workers:         workers,
		RequestsTotal:   total,
		ThroughputRPS:   metrics.Throughput{Events: total, Elapsed: elapsed}.PerSecond(),
		Endpoints: map[string]endpointStats{
			"/v1/recommendations": histStats(&recHist),
			"/v1/posts":           histStats(&postHist),
		},
		MetricSeries:   series,
		MetricFamilies: families,
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("serve-bench: %d requests in %v (%.1f req/s), %d metric series in %d families, wrote %s\n",
		total, elapsed.Round(time.Millisecond), res.ThroughputRPS, series, families, outPath)
	return nil
}

func histStats(h *metrics.LatencyHist) endpointStats {
	ms := func(q float64) float64 { return float64(h.Quantile(q)) / float64(time.Millisecond) }
	return endpointStats{Count: h.Count(), P50ms: ms(0.5), P95ms: ms(0.95), P99ms: ms(0.99)}
}

// scrapeMetrics fetches a Prometheus exposition and counts sample lines
// (series) and "# TYPE" lines (families).
func scrapeMetrics(client *http.Client, url string) (series, families int, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, 0, fmt.Errorf("serve-bench: metrics scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, fmt.Errorf("serve-bench: metrics scrape: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("serve-bench: metrics scrape: status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE"):
			families++
		case strings.HasPrefix(line, "#"):
		default:
			series++
		}
	}
	return series, families, nil
}
