package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	caar "caar"
	"caar/internal/server"
	"caar/metrics"
	"caar/obs"
	"caar/obs/trace"
)

// serveBenchResult is the JSON document written by -serve-bench (see
// BENCH_PR3.json). The bench drives the same workload against two live
// servers — tracing disabled and tracing at full sampling — and reports
// the per-phase latency quantiles plus the tracing overhead on the
// recommend p99. It fails when full-rate tracing costs more than
// tracingBudgetPct of p99: the flight recorder must be cheap enough to
// leave on.
type serveBenchResult struct {
	GeneratedAt string      `json:"generated_at"`
	Workers     int         `json:"workers"`
	Rounds      int         `json:"rounds"`
	Baseline    phaseResult `json:"baseline"`
	Traced      phaseResult `json:"traced"`
	// TracingOverheadPct is the relative growth of the recommend p99 with
	// tracing at SampleRate 1 versus tracing disabled, in percent.
	TracingOverheadPct float64 `json:"tracing_overhead_pct"`
	TracingBudgetPct   float64 `json:"tracing_budget_pct"`
}

// phaseResult is one workload target: tracing disabled ("off") or
// capturing every request ("full").
type phaseResult struct {
	Tracing         string                   `json:"tracing"`
	DurationSeconds float64                  `json:"duration_seconds"`
	RequestsTotal   uint64                   `json:"requests_total"`
	ThroughputRPS   float64                  `json:"throughput_rps"`
	Endpoints       map[string]endpointStats `json:"endpoints"`
	// RecP99PerRoundMs is the recommend p99 of each measurement round;
	// RecP99GateMs is their median. The overhead gate pairs these arrays
	// round-by-round (see pairedOverheadPct).
	RecP99PerRoundMs []float64 `json:"rec_p99_per_round_ms"`
	RecP99GateMs     float64   `json:"rec_p99_gate_ms"`
	MetricSeries     int       `json:"metric_series"`
	MetricFamilies   int       `json:"metric_families"`
	TracesCaptured   int       `json:"traces_captured"`
}

type endpointStats struct {
	Count uint64  `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// tracingBudgetPct is the acceptance ceiling on recommend-p99 growth when
// every request is traced. Exceeding it fails the bench.
const tracingBudgetPct = 10.0

// serveWorkers is the closed-loop client concurrency, matched to the CPU
// count (bounded to [2, 8]): oversubscribing a small box turns the
// measured p99 into run-queue scheduling delay many times the p50, which
// drowns the tracing signal the overhead gate exists to measure.
var serveWorkers = max(2, min(8, runtime.NumCPU()))

const (
	// serveRounds is the number of interleaved measurement slices per
	// phase. Both servers stay up for the whole bench and the workload
	// alternates between them in short slices (ABBA order), so machine-
	// level noise — GC pauses in the shared process, scheduler jitter,
	// cgroup throttling — lands on both phases instead of whichever one
	// happened to run second. Sequential phase runs were dominated by
	// exactly that order effect.
	serveRounds = 6
	// serveWarmup is driven against each server before measurement starts,
	// filling connection pools and warming the runtime.
	serveWarmup = 250 * time.Millisecond
	// serveMaxAttempts bounds how often a noisy over-budget estimate
	// extends the measurement with another serveRounds rounds before the
	// gate fails for real. Genuine degradation persists across attempts;
	// scheduler noise averages out.
	serveMaxAttempts = 3
)

// runServeBench stands up two in-process adservers — flight recorder off,
// and capturing every request — drives the same mixed read/write workload
// against both in alternating slices, and writes both phases plus the
// tracing overhead to outPath. dur is the measured driving time per
// attempt, split across both phases; a noisy over-budget estimate extends
// the run with more rounds (up to serveMaxAttempts) before failing. It
// fails if the /v1/metrics scrape is empty, if the traced phase captured
// no traces, or if full-rate tracing grew the recommend p99 beyond
// tracingBudgetPct.
func runServeBench(dur time.Duration, outPath string) error {
	off, err := newServePhase(nil, false)
	if err != nil {
		return err
	}
	defer off.close()
	store := trace.NewStore(trace.Config{Capacity: 1024, SampleRate: 1})
	full, err := newServePhase(store, false)
	if err != nil {
		return err
	}
	defer full.close()

	// Warm both servers, then interleave measurement slices. dur is the
	// total measured driving time, split evenly across both phases.
	if err := off.drive(serveWarmup, false); err != nil {
		return err
	}
	if err := full.drive(serveWarmup, false); err != nil {
		return err
	}
	slice := dur / (2 * serveRounds)
	if slice < 50*time.Millisecond {
		slice = 50 * time.Millisecond
	}
	var overhead float64
	for attempt := 1; ; attempt++ {
		for r := 0; r < serveRounds; r++ {
			a, b := off, full
			if r%2 == 1 { // ABBA: alternate which phase leads the round
				a, b = full, off
			}
			if err := a.drive(slice, true); err != nil {
				return err
			}
			if err := b.drive(slice, true); err != nil {
				return err
			}
			off.endRound()
			full.endRound()
		}
		overhead = pairedOverheadPct(off.recP99ms, full.recP99ms)
		if overhead <= tracingBudgetPct || attempt >= serveMaxAttempts {
			break
		}
		fmt.Printf("serve-bench: overhead estimate %.1f%% over budget after %d rounds; extending measurement\n",
			overhead, len(off.recP99ms))
	}

	baseline, err := off.result()
	if err != nil {
		return err
	}
	traced, err := full.result()
	if err != nil {
		return err
	}
	if traced.TracesCaptured == 0 {
		return fmt.Errorf("serve-bench: traced phase captured no traces — the recorder is not wired")
	}
	basep99 := baseline.RecP99GateMs
	tracedp99 := traced.RecP99GateMs

	res := serveBenchResult{
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		Workers:            serveWorkers,
		Rounds:             serveRounds,
		Baseline:           baseline,
		Traced:             traced,
		TracingOverheadPct: overhead,
		TracingBudgetPct:   tracingBudgetPct,
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("serve-bench: baseline %d req (%.1f req/s, rec p99 %.2fms); traced %d req (%.1f req/s, rec p99 %.2fms, %d traces); overhead %.1f%%, wrote %s\n",
		baseline.RequestsTotal, baseline.ThroughputRPS, basep99,
		traced.RequestsTotal, traced.ThroughputRPS, tracedp99, traced.TracesCaptured,
		overhead, outPath)
	if overhead > tracingBudgetPct {
		return fmt.Errorf("serve-bench: full-rate tracing grew recommend p99 by %.1f%% (budget %.0f%%): %.2fms -> %.2fms",
			overhead, tracingBudgetPct, basep99, tracedp99)
	}
	return nil
}

// servePhase is one live workload target: a seeded engine behind an HTTP
// server, plus the latency samples collected against it so far.
type servePhase struct {
	tracer   *trace.Store
	eng      *caar.Engine
	ts       *httptest.Server
	client   *http.Client
	users    []string
	at       string
	rec      []time.Duration // /v1/recommendations samples, current round
	post     []time.Duration // /v1/posts samples, all rounds
	recDone  []time.Duration // /v1/recommendations samples, closed rounds
	recP99ms []float64       // per-round recommend p99
	elapsed  time.Duration   // total measured driving time
}

// newServePhase builds a fresh seeded engine+server (tracer nil = tracing
// off; hotOff disables hot-key telemetry, the A/B knob of -hot-bench).
func newServePhase(tracer *trace.Store, hotOff bool) (*servePhase, error) {
	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	cfg.Metrics = reg
	cfg.Tracer = tracer
	cfg.DisableHotKeys = hotOff
	eng, err := caar.Open(cfg)
	if err != nil {
		return nil, err
	}

	users, now, err := seedServeGraph(eng)
	if err != nil {
		return nil, err
	}

	ts := httptest.NewServer(server.New(eng, server.WithMetrics(reg)).Handler())
	// The default transport keeps only 2 idle connections per host; with
	// serveWorkers concurrent workers most requests would open a fresh TCP
	// connection, and connection churn — not the serving path — would own
	// the measured tail.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * serveWorkers,
		MaxIdleConnsPerHost: 2 * serveWorkers,
	}}
	return &servePhase{
		tracer: tracer,
		eng:    eng,
		ts:     ts,
		client: client,
		users:  users,
		at:     now.Format(time.RFC3339Nano),
	}, nil
}

// seedServeGraph loads the shared bench dataset — a small social graph with
// ads — so recommendations have work to do. Seeding goes through the raw
// engine (not a journaled wrapper), leaving any attached journal empty.
func seedServeGraph(eng *caar.Engine) ([]string, time.Time, error) {
	const nUsers = 64
	users := make([]string, nUsers)
	now := time.Now()
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i)
		if err := eng.AddUser(users[i]); err != nil {
			return nil, now, err
		}
	}
	for i, u := range users {
		for f := 1; f <= 4; f++ {
			if err := eng.Follow(u, users[(i+f*7)%nUsers]); err != nil {
				return nil, now, err
			}
		}
	}
	for i := 0; i < 40; i++ {
		ad := caar.Ad{
			ID:   fmt.Sprintf("ad%03d", i),
			Text: fmt.Sprintf("word%04d word%04d word%04d offer sale", i%500, (i*3)%500, (i*11)%500),
			Bid:  0.1 + float64(i%10)/20,
		}
		if err := eng.AddAd(ad); err != nil {
			return nil, now, err
		}
	}
	for i, u := range users {
		text := fmt.Sprintf("word%04d word%04d word%04d morning update", i%500, (i*5)%500, (i*13)%500)
		if err := eng.Post(u, text, now); err != nil {
			return nil, now, err
		}
	}
	return users, now, nil
}

func (p *servePhase) close() {
	p.client.CloseIdleConnections()
	p.ts.Close()
}

// endRound closes the current measurement round: its recommend p99 is
// recorded for the gate's median and the samples move to the pooled set.
func (p *servePhase) endRound() {
	if len(p.rec) == 0 {
		return
	}
	p.recP99ms = append(p.recP99ms, exactStats(p.rec).P99ms)
	p.recDone = append(p.recDone, p.rec...)
	p.rec = p.rec[:0]
}

// drive runs the mixed 70/30 read/write workload against the phase's
// server for dur with serveWorkers concurrent workers. When record is
// true the per-request latencies are appended to the phase's samples
// (raw samples, not a LatencyHist: the overhead gate compares p99s
// within 10%, and the hist's exponential buckets — ~25% apart — would
// quantize both sides onto bucket bounds, snapping any real difference
// to 0% or +25%).
func (p *servePhase) drive(dur time.Duration, record bool) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for wk := 0; wk < serveWorkers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			localRec := make([]time.Duration, 0, 4096)
			localPost := make([]time.Duration, 0, 2048)
			for i := 0; time.Now().Before(deadline); i++ {
				user := p.users[(wk*131+i)%len(p.users)]
				isPost := i%10 < 3 // 30% writes
				t0 := time.Now()
				var (
					resp *http.Response
					err  error
				)
				if isPost {
					body, _ := json.Marshal(map[string]string{
						"author": user,
						"text":   fmt.Sprintf("word%04d word%04d update", (wk*31+i)%500, (i*7)%500),
						"at":     p.at,
					})
					resp, err = p.client.Post(p.ts.URL+"/v1/posts", "application/json", bytes.NewReader(body))
				} else {
					resp, err = p.client.Get(p.ts.URL + "/v1/recommendations?user=" + user + "&k=5&at=" + p.at)
				}
				elapsed := time.Since(t0)
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if isPost {
					localPost = append(localPost, elapsed)
				} else {
					localRec = append(localRec, elapsed)
				}
			}
			if record {
				mu.Lock()
				p.rec = append(p.rec, localRec...)
				p.post = append(p.post, localPost...)
				mu.Unlock()
			}
		}(wk)
	}
	wg.Wait()
	if record {
		p.elapsed += time.Since(start)
	}
	if firstErr != nil {
		return fmt.Errorf("serve-bench: request failed: %w", firstErr)
	}
	return nil
}

// result scrapes the phase's metrics endpoint and folds the collected
// samples into a phaseResult. An empty scrape means the observability
// wiring is broken, which fails the bench.
func (p *servePhase) result() (phaseResult, error) {
	var zero phaseResult
	series, families, err := scrapeMetrics(p.client, p.ts.URL+"/v1/metrics")
	if err != nil {
		return zero, err
	}
	if series == 0 {
		return zero, fmt.Errorf("serve-bench: /v1/metrics scrape returned no series")
	}

	tracing := "off"
	captured := 0
	if p.tracer != nil {
		tracing = "full"
		captured = p.tracer.Len()
		// Cross-check through the operator endpoint: the store the engine
		// filled must be the one /v1/traces serves.
		var listing struct {
			Traces []trace.Summary `json:"traces"`
		}
		resp, err := p.client.Get(p.ts.URL + "/v1/traces?n=5")
		if err != nil {
			return zero, fmt.Errorf("serve-bench: trace listing: %w", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			return zero, fmt.Errorf("serve-bench: trace listing: %w", err)
		}
		if len(listing.Traces) == 0 {
			return zero, fmt.Errorf("serve-bench: /v1/traces is empty in the traced phase")
		}
	}

	total := uint64(len(p.recDone) + len(p.post))
	return phaseResult{
		Tracing:         tracing,
		DurationSeconds: p.elapsed.Seconds(),
		RequestsTotal:   total,
		ThroughputRPS:   metrics.Throughput{Events: total, Elapsed: p.elapsed}.PerSecond(),
		Endpoints: map[string]endpointStats{
			"/v1/recommendations": exactStats(p.recDone),
			"/v1/posts":           exactStats(p.post),
		},
		RecP99PerRoundMs: p.recP99ms,
		RecP99GateMs:     median(p.recP99ms),
		MetricSeries:     series,
		MetricFamilies:   families,
		TracesCaptured:   captured,
	}, nil
}

// pairedOverheadPct estimates the tracing overhead on the recommend p99
// as the median over rounds of the per-round ratio traced/baseline, in
// percent. Rounds are adjacent in time, so machine-level noise — a GC
// cycle in the shared process, a throttled cgroup period — inflates both
// phases of a round and cancels out of its ratio; the median then
// discards the rounds where a spike straddled only one phase's slice. A
// pooled p99 comparison has neither protection and was observed to swing
// ±15% between runs of an unchanged binary.
func pairedOverheadPct(base, traced []float64) float64 {
	n := len(base)
	if len(traced) < n {
		n = len(traced)
	}
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if base[i] > 0 {
			ratios = append(ratios, traced[i]/base[i])
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	return (median(ratios) - 1) * 100
}

// median returns the middle value of vs (mean of the middle two for even
// lengths), or 0 for an empty slice.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// exactStats computes exact latency quantiles by sorting the raw samples.
func exactStats(lats []time.Duration) endpointStats {
	if len(lats) == 0 {
		return endpointStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	return endpointStats{Count: uint64(len(lats)), P50ms: q(0.5), P95ms: q(0.95), P99ms: q(0.99)}
}

// scrapeMetrics fetches a Prometheus exposition and counts sample lines
// (series) and "# TYPE" lines (families).
func scrapeMetrics(client *http.Client, url string) (series, families int, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, 0, fmt.Errorf("serve-bench: metrics scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, fmt.Errorf("serve-bench: metrics scrape: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("serve-bench: metrics scrape: status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE"):
			families++
		case strings.HasPrefix(line, "#"):
		default:
			series++
		}
	}
	return series, families, nil
}
