package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	caar "caar"
	"caar/metrics"
)

// The contention bench measures how the serving read path scales when
// global engine state is churning: parallel Recommend workers run directly
// against the engine (no HTTP — this isolates engine locking, not the
// server) while one writer continuously adds and withdraws ads. With the
// copy-on-write directory, readers resolve names off an atomically-loaded
// snapshot and never touch a global lock, so read throughput should grow
// with worker count even under a hot writer; the seed engine serialized
// every reader on one RWMutex (three acquisitions per request, plus one
// per candidate under policy) and flatlined instead.

// contentionWorkerCounts are the parallelism levels measured per run.
var contentionWorkerCounts = []int{1, 4, 8}

// contentionResult is the JSON document written by -contention (see
// BENCH_PR4.json).
type contentionResult struct {
	GeneratedAt  string            `json:"generated_at"`
	Algorithm    string            `json:"algorithm"`
	Shards       int               `json:"shards"`
	SliceSeconds float64           `json:"slice_seconds"`
	Phases       []contentionPhase `json:"phases"`
}

// contentionPhase is one worker-count measurement: read throughput and
// exact latency quantiles while the ad churn writer runs concurrently.
type contentionPhase struct {
	Workers       int     `json:"workers"`
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50ms         float64 `json:"p50_ms"`
	P95ms         float64 `json:"p95_ms"`
	P99ms         float64 `json:"p99_ms"`
	WriterOps     uint64  `json:"writer_ops"`
	// SpeedupVs1 is this phase's throughput relative to the 1-worker
	// phase of the same run — the scalability signal the bench exists for.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// runContentionBench seeds one engine, then for each worker count drives a
// closed-loop Recommend workload against it for dur while a writer churns
// AddAd/RemoveAd, and writes the per-phase throughput and exact quantiles
// to outPath.
func runContentionBench(dur time.Duration, outPath string) error {
	const (
		nUsers = 256
		nAds   = 500
		nPosts = 200
	)
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	eng, err := caar.Open(cfg)
	if err != nil {
		return err
	}
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%04d", i)
		if err := eng.AddUser(users[i]); err != nil {
			return err
		}
	}
	for i, u := range users {
		for f := 1; f <= 4; f++ {
			if err := eng.Follow(u, users[(i+f*13)%nUsers]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < nAds; i++ {
		ad := caar.Ad{
			ID:   fmt.Sprintf("ad%04d", i),
			Text: fmt.Sprintf("word%04d word%04d word%04d offer sale", i%600, (i*3)%600, (i*11)%600),
			Bid:  0.1 + float64(i%10)/20,
		}
		if err := eng.AddAd(ad); err != nil {
			return err
		}
	}
	now := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < nPosts; i++ {
		now = now.Add(time.Second)
		text := fmt.Sprintf("word%04d word%04d word%04d morning update", i%600, (i*5)%600, (i*13)%600)
		if err := eng.Post(users[i%nUsers], text, now); err != nil {
			return err
		}
	}

	res := contentionResult{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Algorithm:    string(eng.Algorithm()),
		Shards:       cfg.Shards,
		SliceSeconds: dur.Seconds(),
	}
	churnSeq := 0
	for _, workers := range contentionWorkerCounts {
		phase, err := runContentionPhase(eng, users, now, dur, workers, &churnSeq)
		if err != nil {
			return err
		}
		res.Phases = append(res.Phases, phase)
	}
	base := res.Phases[0].ThroughputRPS
	for i := range res.Phases {
		if base > 0 {
			res.Phases[i].SpeedupVs1 = res.Phases[i].ThroughputRPS / base
		}
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	for _, p := range res.Phases {
		fmt.Printf("contention: %d workers: %d recommends (%.0f req/s, %.2fx vs 1 worker, p99 %.3fms) under %d writer ops\n",
			p.Workers, p.Requests, p.ThroughputRPS, p.SpeedupVs1, p.P99ms, p.WriterOps)
	}
	fmt.Printf("contention: wrote %s\n", outPath)
	return nil
}

// runContentionPhase measures one worker count: `workers` goroutines loop
// Recommend while a writer goroutine churns AddAd/RemoveAd until the slice
// ends. churnSeq persists across phases so ad names are never reused.
func runContentionPhase(eng *caar.Engine, users []string, at time.Time, dur time.Duration, workers int, churnSeq *int) (contentionPhase, error) {
	var (
		stop      atomic.Bool
		writerOps atomic.Uint64
		writerErr error
		writerWg  sync.WaitGroup
	)
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for i := *churnSeq; !stop.Load(); i++ {
			*churnSeq = i + 1
			name := fmt.Sprintf("churn%07d", i)
			ad := caar.Ad{
				ID:   name,
				Text: fmt.Sprintf("word%04d word%04d flash deal", i%600, (i*7)%600),
				Bid:  0.2,
			}
			if err := eng.AddAd(ad); err != nil {
				writerErr = err
				return
			}
			if err := eng.RemoveAd(name); err != nil {
				writerErr = err
				return
			}
			writerOps.Add(2)
		}
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		firstErr error
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 1<<16)
			for i := 0; time.Now().Before(deadline); i++ {
				user := users[(w*131+i)%len(users)]
				t0 := time.Now()
				_, err := eng.Recommend(user, 5, at)
				elapsed := time.Since(t0)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, elapsed)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	writerWg.Wait()
	if firstErr != nil {
		return contentionPhase{}, fmt.Errorf("contention: recommend failed: %w", firstErr)
	}
	if writerErr != nil {
		return contentionPhase{}, fmt.Errorf("contention: writer failed: %w", writerErr)
	}

	st := exactStats(lats)
	return contentionPhase{
		Workers:       workers,
		Requests:      st.Count,
		ThroughputRPS: metrics.Throughput{Events: st.Count, Elapsed: elapsed}.PerSecond(),
		P50ms:         st.P50ms,
		P95ms:         st.P95ms,
		P99ms:         st.P99ms,
		WriterOps:     writerOps.Load(),
	}, nil
}
