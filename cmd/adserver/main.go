// Command adserver runs the context-aware ad recommender as an HTTP/JSON
// service (see internal/server for the endpoint list).
//
// Usage:
//
//	adserver -addr :8080 -algorithm CAP -shards 4
//
// The service starts empty; load users, follows, ads and campaigns through
// the API. Optionally -demo preloads a small demo dataset.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	caar "caar"
	"caar/internal/server"
	"caar/journal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	algorithm := flag.String("algorithm", "CAP", "engine: CAP, IL or RS")
	shards := flag.Int("shards", 1, "user shards processed in parallel")
	windowSize := flag.Int("window", 32, "feed window size in messages")
	halfLife := flag.Duration("half-life", 2*time.Hour, "feed content decay half-life (0 = none)")
	journalPath := flag.String("journal", "", "append-only event log; replayed at startup, appended at runtime")
	demo := flag.Bool("demo", false, "preload a small demo dataset")
	flag.Parse()

	cfg := caar.DefaultConfig()
	cfg.Algorithm = caar.Algorithm(*algorithm)
	cfg.Shards = *shards
	cfg.WindowSize = *windowSize
	cfg.DecayHalfLife = *halfLife

	eng, err := caar.Open(cfg)
	if err != nil {
		log.Fatalf("adserver: %v", err)
	}

	var api server.API = eng
	if *journalPath != "" {
		f, err := os.OpenFile(*journalPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			log.Fatalf("adserver: journal: %v", err)
		}
		stats, err := journal.Replay(f, eng)
		if err != nil {
			log.Fatalf("adserver: journal replay: %v", err)
		}
		log.Printf("journal replayed: %d applied, %d skipped, torn tail: %v",
			stats.Applied, stats.Skipped, stats.Torn)
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			log.Fatalf("adserver: journal seek: %v", err)
		}
		w := journal.NewWriter(f)
		w.Sync = f.Sync
		api = journal.NewLogged(eng, w)
	}

	if *demo {
		if err := loadDemo(eng); err != nil {
			log.Fatalf("adserver: demo data: %v", err)
		}
		log.Print("demo dataset loaded (users alice/bob/carol, ads shoes/cafe/vpn)")
	}

	log.Printf("adserver listening on %s (algorithm=%s shards=%d)", *addr, eng.Algorithm(), *shards)
	if err := http.ListenAndServe(*addr, server.New(api).Handler()); err != nil {
		log.Fatalf("adserver: %v", err)
	}
}

func loadDemo(eng *caar.Engine) error {
	now := time.Now()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := eng.AddUser(u); err != nil {
			return err
		}
	}
	follows := [][2]string{{"alice", "bob"}, {"carol", "bob"}, {"bob", "alice"}}
	for _, f := range follows {
		if err := eng.Follow(f[0], f[1]); err != nil {
			return err
		}
	}
	ads := []caar.Ad{
		{ID: "shoes", Text: "marathon running shoes spring sale", Bid: 0.4},
		{ID: "cafe", Text: "espresso pastries downtown coffee", Bid: 0.3,
			Target: &caar.Target{Lat: 1.5, Lng: 1.5, RadiusKm: 30}},
		{ID: "vpn", Text: "secure fast vpn service", Bid: 0.6},
	}
	for _, a := range ads {
		if err := eng.AddAd(a); err != nil {
			return err
		}
	}
	if err := eng.CheckIn("alice", 1.5, 1.5, now); err != nil {
		return err
	}
	posts := []struct{ author, text string }{
		{"bob", "long marathon run this morning, shoes finally broke in"},
		{"alice", "espresso after the run hits different"},
		{"bob", "coffee and pastries with the running club"},
	}
	for _, p := range posts {
		if err := eng.Post(p.author, p.text, now); err != nil {
			return err
		}
	}
	_, err := fmt.Println("demo ready: try GET /v1/recommendations?user=alice&k=3")
	return err
}
