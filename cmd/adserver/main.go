// Command adserver runs the context-aware ad recommender as an HTTP/JSON
// service (see internal/server for the endpoint list).
//
// Usage:
//
//	adserver -addr :8080 -algorithm CAP -shards 4
//
// The service starts empty; load users, follows, ads and campaigns through
// the API. Optionally -demo preloads a small demo dataset.
//
// Tracing: the request-scoped flight recorder is on by default, head-sampling
// 1% of recommends and always capturing slow (-trace-slow) and errored ones.
// Inspect captures via GET /v1/traces, force one with ?explain=1, disable
// with -trace-capacity 0.
//
// Durability: -snapshot restores engine state from an atomic snapshot at
// startup and writes a fresh one on shutdown; -journal recovers the event
// log (truncating a torn tail left by a crash) and appends every mutation
// at runtime with the fsync policy chosen by -fsync. On SIGINT/SIGTERM the
// server drains in-flight requests, flushes the journal, writes the final
// snapshot, and — with both flags set — resets the journal, whose events the
// snapshot now embeds, so the next startup doesn't double-apply them.
//
// Ingest: posts and check-ins go through the batched asynchronous pipeline by
// default — accepted into a bounded ring, group-committed to the journal (one
// fsync per batch), acked after the fsync, and fanned out to shards in
// batches. A full ring sheds with 429 + Retry-After. Tune with -ingest-queue,
// -ingest-batch and -ingest-linger; -ingest-off restores the synchronous
// per-request write path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	caar "caar"
	"caar/ingest"
	"caar/internal/faultinject"
	"caar/internal/server"
	"caar/journal"
	"caar/obs"
	"caar/obs/capture"
	"caar/obs/slo"
	"caar/obs/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("adserver: %v", err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	algorithm := flag.String("algorithm", "CAP", "engine: CAP, IL or RS")
	shards := flag.Int("shards", 1, "user shards processed in parallel")
	windowSize := flag.Int("window", 32, "feed window size in messages")
	halfLife := flag.Duration("half-life", 2*time.Hour, "feed content decay half-life (0 = none)")
	journalPath := flag.String("journal", "", "append-only event log; recovered at startup, appended at runtime")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", time.Second, "fsync at most once per interval (with -fsync interval)")
	snapshotPath := flag.String("snapshot", "", "engine snapshot; loaded at startup, written atomically on shutdown")
	maxInFlight := flag.Int("max-inflight", 256, "max concurrent requests before shedding with 429 (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline (0 = none)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes (-1 = unlimited)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "time to drain in-flight requests on SIGINT/SIGTERM")
	demo := flag.Bool("demo", false, "preload a small demo dataset")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	slowReq := flag.Duration("slow-request", 500*time.Millisecond, "log requests slower than this at warn level (0 = off)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	traceCapacity := flag.Int("trace-capacity", trace.DefaultCapacity, "captured traces retained in the ring buffer (0 = tracing off)")
	traceSample := flag.Float64("trace-sample", 0.01, "head-sampling rate of ordinary requests (0 = tail capture only, 1 = every request)")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "always capture requests slower than this (0 = no slow tail capture)")
	sloSpec := flag.String("slo", slo.DefaultObjectivesSpec, "SLO objectives: endpoint:latency:target or endpoint:errors:target, comma-separated (empty = tracking off)")
	sloFast := flag.Duration("slo-fast-window", 5*time.Minute, "fast burn-rate alerting window")
	sloSlow := flag.Duration("slo-slow-window", time.Hour, "slow burn-rate alerting window")
	sloSample := flag.Duration("slo-sample", 10*time.Second, "burn-rate sampling cadence")
	sloBurn := flag.Float64("slo-burn-threshold", 14.4, "burn rate that trips the watchdog (fast AND slow window)")
	captureDir := flag.String("capture-dir", "", "write anomaly capture bundles under this directory (empty = capture off)")
	captureRetain := flag.Int("capture-retain", 8, "capture bundles retained before the oldest are pruned")
	captureMinInterval := flag.Duration("capture-interval", time.Minute, "min spacing between anomaly-triggered captures")
	captureCPU := flag.Duration("capture-cpu", 2*time.Second, "CPU-profile duration inside each capture bundle")
	hotOff := flag.Bool("hot-off", false, "disable hot-key telemetry (/v1/hot)")
	hotWindow := flag.Duration("hot-window", 0, "hot-key sliding window (0 = engine default, 1m)")
	ingestOff := flag.Bool("ingest-off", false, "serve posts and check-ins synchronously instead of through the batched ingest pipeline")
	ingestQueue := flag.Int("ingest-queue", 4096, "ingest ring capacity, rounded up to a power of two; a full ring sheds with 429")
	ingestBatch := flag.Int("ingest-batch", 256, "max writes per ingest group commit (one fsync per batch, policy permitting)")
	ingestLinger := flag.Duration("ingest-linger", 0, "hold a partial ingest batch open this long to let it fill (0 = commit whatever drained)")
	flag.Parse()

	policy, err := journal.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// One registry shared by every layer — engine, journal and HTTP server —
	// so a single GET /v1/metrics scrape exposes the whole process.
	reg := obs.NewRegistry()

	cfg := caar.DefaultConfig()
	cfg.Algorithm = caar.Algorithm(*algorithm)
	cfg.Shards = *shards
	cfg.WindowSize = *windowSize
	cfg.DecayHalfLife = *halfLife
	cfg.Metrics = reg
	cfg.DisableHotKeys = *hotOff
	cfg.HotKeyWindow = *hotWindow
	if *traceCapacity > 0 {
		cfg.Tracer = trace.NewStore(trace.Config{
			Capacity:      *traceCapacity,
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
		})
	}

	// Restore durable state: snapshot first (compact), then journal replay
	// on top. After a graceful shutdown the journal is empty (its events are
	// embedded in the final snapshot); after a crash it holds everything
	// since the last snapshot.
	var eng *caar.Engine
	snapRestored := false
	if *snapshotPath != "" && caar.SnapshotExists(*snapshotPath) {
		var loaded string
		eng, loaded, err = caar.LoadSnapshot(cfg, *snapshotPath)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if loaded != *snapshotPath {
			log.Printf("snapshot: primary %s failed verification, restored from fallback %s", *snapshotPath, loaded)
		} else {
			log.Printf("snapshot restored from %s", loaded)
		}
		snapRestored = true
	} else {
		eng, err = caar.Open(cfg)
		if err != nil {
			return err
		}
	}

	// Fault injection: the soak harness arms named crash points through the
	// environment; the capture smoke test arms serving-path delay points the
	// same way. Production runs leave both variables unset and every hook
	// stays a single atomic load.
	if spec, err := faultinject.ArmCrashPointsFromEnv(); err != nil {
		return err
	} else if spec != "" {
		log.Printf("faultinject: crash points armed: %s", spec)
	}
	if spec, err := faultinject.ArmDelaysFromEnv(); err != nil {
		return err
	} else if spec != "" {
		log.Printf("faultinject: delay points armed: %s", spec)
	}
	// Lock watchdog: a no-op outside `-tags caarlockwatch` builds; the
	// race-matrix smokes build with the tag and set CAAR_LOCKWATCH so a
	// mutex held past the bound dumps all goroutine stacks and panics.
	if spec, err := faultinject.ArmLockWatchFromEnv(); err != nil {
		return err
	} else if spec != "" {
		log.Printf("faultinject: lock watchdog armed: bound %s", spec)
	}

	// The journal is recovered AFTER the listener opens (below), behind the
	// server's recovery gate: API traffic gets 503 + Retry-After and
	// /v1/readyz reports live replay progress, so a supervisor can tell a
	// long replay from a wedged process. Here we only open the file and
	// build the write path.
	var api server.API = eng
	var jw *journal.Writer
	var jf *os.File
	var jm *journal.Metrics
	var recovery *journal.RecoveryProgress
	if *journalPath != "" {
		jf, err = os.OpenFile(*journalPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		defer jf.Close()
		// O_CREATE may have minted the directory entry; make it durable
		// before acknowledging anything written through it.
		if err := journal.FsyncDir(filepath.Dir(*journalPath)); err != nil {
			return err
		}
		jm = journal.NewMetrics(reg)
		jw = journal.NewFileWriter(jf, policy, *fsyncInterval)
		jw.SetMetrics(jm)
		api = journal.NewLogged(eng, jw)
		recovery = journal.NewRecoveryProgress()
	}

	// Batched asynchronous ingest (default on): posts and check-ins enter a
	// bounded ring, a committer group-commits them to the journal (one fsync
	// per batch) and acks after the fsync, and an applier fans batches out to
	// the shards. Without -journal the pipeline still batches the fan-out but
	// the group commit is a no-op, matching the sync path's durability (none)
	// in that configuration. Control-plane mutations (users, follows, ads,
	// campaigns) stay on the synchronous journaled path either way.
	var ing *ingest.Pipeline
	if !*ingestOff {
		var ij ingest.Journal = noopJournal{}
		if jw != nil {
			ij = jw
		}
		ing = ingest.New(eng, ij, reg, ingest.Config{
			QueueSize: *ingestQueue,
			MaxBatch:  *ingestBatch,
			Linger:    *ingestLinger,
		})
	}

	srvOpts := []server.Option{
		server.WithMaxInFlight(*maxInFlight),
		server.WithRequestTimeout(*requestTimeout),
		server.WithMaxBodyBytes(*maxBody),
		server.WithMetrics(reg),
		server.WithAccessLog(logger),
		server.WithSlowRequestThreshold(*slowReq),
	}
	if recovery != nil {
		srvOpts = append(srvOpts, server.WithRecoveryProgress(recovery))
	}
	if ing != nil {
		srvOpts = append(srvOpts, server.WithIngest(ing))
	}
	if *pprofOn {
		// Profiling is opt-in. It mounts on the server's own mux: operator
		// paths (which /debug/pprof/ is) bypass admission control and the
		// request deadline, so a long CPU profile is not cut off.
		srvOpts = append(srvOpts, server.WithDebugPprof())
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}

	// Anomaly flight recorder: when the SLO watchdog below trips, profiles
	// are captured while the anomaly is still happening.
	var recorder *capture.Recorder
	if *captureDir != "" {
		recorder, err = capture.NewRecorder(capture.Config{
			Dir:                       *captureDir,
			Retain:                    *captureRetain,
			MinInterval:               *captureMinInterval,
			CPUProfileDuration:        *captureCPU,
			Metrics:                   reg,
			EnableContentionProfiling: true,
		})
		if err != nil {
			return err
		}
		srvOpts = append(srvOpts, server.WithCapture(recorder))
		logger.Info("capture enabled", slog.String("dir", *captureDir))
	}

	// SLO watchdog: multi-window burn rates over the serving histograms,
	// wired to the recorder so a trip produces a bundle (rate-limited by
	// -capture-interval; a trip during an in-flight capture is dropped).
	if *sloSpec != "" {
		objectives, err := slo.ParseObjectives(*sloSpec)
		if err != nil {
			return err
		}
		sloCfg := slo.Config{
			FastWindow:    *sloFast,
			SlowWindow:    *sloSlow,
			SampleEvery:   *sloSample,
			BurnThreshold: *sloBurn,
			OnTrip: func(tp slo.Trip) {
				logger.Warn("slo watchdog tripped",
					slog.String("objective", tp.Objective),
					slog.String("endpoint", tp.Endpoint),
					slog.Float64("fast_burn", tp.FastBurn),
					slog.Float64("slow_burn", tp.SlowBurn))
				if recorder == nil {
					return
				}
				go func() {
					reason := fmt.Sprintf("slo %s on %s: fast burn %.1f, slow burn %.1f (threshold %.1f)",
						tp.Objective, tp.Endpoint, tp.FastBurn, tp.SlowBurn, tp.Threshold)
					name, err := recorder.Capture("anomaly", reason, false)
					if err != nil {
						logger.Warn("anomaly capture skipped", slog.String("error", err.Error()))
						return
					}
					logger.Info("anomaly capture written", slog.String("bundle", name))
				}()
			},
		}
		srvOpts = append(srvOpts, server.WithSLO(sloCfg, objectives...))
	}

	srv := server.New(api, srvOpts...)
	handler := srv.Handler()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if t := srv.SLO(); t != nil {
		go t.Run(ctx.Done())
	}
	// Hot-key aggregator: drains the lock-free record queues into the
	// sliding-window sketches so gauges stay fresh between /v1/hot reads.
	if ht := eng.HotTracker(); ht != nil {
		go ht.Run(ctx.Done())
	}
	// With the ingest pipeline off, nothing periodically flushes an
	// interval-policy journal tail: a mutation inside the fsync window is
	// only synced by the NEXT append, which on an idle server may never
	// come. SyncPending is a no-op for the always/never policies, so the
	// ticker is unconditional when a journal is configured.
	if jw != nil && ing == nil {
		go func() {
			t := time.NewTicker(*fsyncInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					jw.SyncPending() //nolint:errcheck // degraded state carries the failure
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("adserver listening on %s (algorithm=%s shards=%d fsync=%s ingest=%v)",
			*addr, eng.Algorithm(), *shards, policy, ing != nil)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	// Replay the journal behind the recovery gate: the listener is already
	// up, operator endpoints answer, API traffic is parked with 503 until
	// the gate drops. No mutation can interleave with replay because every
	// mutating path goes through the gated handler.
	if jf != nil {
		stats, err := journal.RecoverWithProgress(jf, eng, recovery)
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		jm.ObserveReplay(stats)
		log.Printf("journal recovered: %d applied, %d skipped (%d duplicate, %d unknown ref, %d invalid)",
			stats.Applied, stats.Skipped, stats.SkippedDuplicate, stats.SkippedUnknownRef, stats.SkippedInvalid)
		if stats.Torn {
			log.Printf("journal: torn tail truncated, %d bytes discarded", stats.DiscardedBytes)
		}
		// After a snapshot restore, duplicate skips are expected (events from
		// the crash window already in the snapshot); only dump samples when
		// something other than a duplicate was skipped.
		if !snapRestored || stats.Skipped > stats.SkippedDuplicate {
			for _, e := range stats.SkipErrors {
				log.Printf("journal: skipped entry: %s", e)
			}
		}
	}

	if *demo {
		if err := loadDemo(api); err != nil {
			return fmt.Errorf("demo data: %w", err)
		}
		log.Print("demo dataset loaded (users alice/bob/carol, ads shoes/cafe/vpn)")
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	// Graceful shutdown: drain in-flight requests, then make everything
	// they changed durable.
	log.Printf("shutting down: draining for up to %v", *shutdownGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("shutdown: drain incomplete: %v", err)
	}
	// Drain order matters: the listener is down (no new submissions), so the
	// pipeline drains everything already acked through commit AND apply
	// BEFORE the journal is flushed and the snapshot captures final state.
	if ing != nil {
		if err := ing.Close(); err != nil {
			log.Printf("shutdown: ingest drain: %v", err)
		} else {
			log.Print("ingest pipeline drained")
		}
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return fmt.Errorf("journal flush on shutdown: %w", err)
		}
		log.Print("journal flushed")
	}
	if *snapshotPath != "" {
		if err := eng.SaveSnapshot(*snapshotPath); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("snapshot written to %s", *snapshotPath)
		// Every journaled event is now embedded in the snapshot (including
		// campaign spend and vocabulary counts, which are NOT idempotent to
		// replay). Reset the journal so the next startup restores the
		// snapshot alone instead of double-applying the log on top. A crash
		// in the instant between SaveSnapshot and Reset re-opens that window;
		// duplicate-tolerant ops are skipped on replay and the gap is logged.
		if jf != nil {
			if err := journal.Reset(jf); err != nil {
				return fmt.Errorf("journal reset after snapshot: %w", err)
			}
			log.Print("journal reset (state captured in snapshot)")
		}
	}
	log.Print("adserver stopped")
	return nil
}

// noopJournal backs the ingest pipeline when -journal is not configured:
// group commit is a no-op, so the ack only promises the write will be
// applied — the same (absent) durability the synchronous path offers in
// that configuration.
type noopJournal struct{}

func (noopJournal) AppendBatch([]journal.Entry) error { return nil }
func (noopJournal) SyncPending() error                { return nil }

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", s)
}

// loadDemo seeds through the API (not the raw engine) so the demo data is
// journaled like any other mutation.
func loadDemo(api server.API) error {
	now := time.Now()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := api.AddUser(u); err != nil {
			return err
		}
	}
	follows := [][2]string{{"alice", "bob"}, {"carol", "bob"}, {"bob", "alice"}}
	for _, f := range follows {
		if err := api.Follow(f[0], f[1]); err != nil {
			return err
		}
	}
	ads := []caar.Ad{
		{ID: "shoes", Text: "marathon running shoes spring sale", Bid: 0.4},
		{ID: "cafe", Text: "espresso pastries downtown coffee", Bid: 0.3,
			Target: &caar.Target{Lat: 1.5, Lng: 1.5, RadiusKm: 30}},
		{ID: "vpn", Text: "secure fast vpn service", Bid: 0.6},
	}
	for _, a := range ads {
		if err := api.AddAd(a); err != nil {
			return err
		}
	}
	if err := api.CheckIn("alice", 1.5, 1.5, now); err != nil {
		return err
	}
	posts := []struct{ author, text string }{
		{"bob", "long marathon run this morning, shoes finally broke in"},
		{"alice", "espresso after the run hits different"},
		{"bob", "coffee and pastries with the running club"},
	}
	for _, p := range posts {
		if err := api.Post(p.author, p.text, now); err != nil {
			return err
		}
	}
	_, err := fmt.Println("demo ready: try GET /v1/recommendations?user=alice&k=3")
	return err
}
