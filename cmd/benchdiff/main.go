// Command benchdiff compares the repo's benchmark artifacts across PRs and
// renders a regression verdict, so a perf cliff shows up in review instead of
// three PRs later.
//
// Usage:
//
//	benchdiff BENCH_PR2.json BENCH_PR4.json             # pairwise verdicts
//	benchdiff -budget 0.05 old.json new.json            # tighter gate
//	benchdiff -out BENCH_TRAJECTORY.json BENCH_*.json   # machine-readable too
//
// Each input is one of the four BENCH shapes the repo's harnesses emit:
// servebench (cmd/adbench -serve-bench), abba (the tracing-overhead A/B/B/A
// run, same flag's older shape), contention (-contention), and soak
// (cmd/adsoak). benchdiff auto-detects the kind from the document's keys,
// normalizes every file into named phases carrying direction-tagged metrics,
// and compares consecutive files phase by phase.
//
// Same-kind comparisons are gated: a metric that moves in the bad direction
// by more than -budget (default 10%) is a REGRESSION and the exit status is
// 1. A same-kind pair whose phase sets differ also fails with the missing
// phases named on stderr — aligning on the intersection would hide a phase
// a harness silently stopped emitting. Cross-kind comparisons (different workloads; the checked-in BENCH files
// span four harnesses) align only on the synthetic "summary" phase and are
// reported as informational — shown, never gated — so the cross-PR
// trajectory is visible without pretending a contention run and a soak run
// measure the same thing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// metricDir records which way "better" points for each gated metric.
// higherBetter=false means an increase is a regression.
var metricDir = map[string]bool{
	"throughput_rps":       true,
	"records_per_sec":      true,
	"speedup_vs_1":         true,
	"p50_ms":               false,
	"p95_ms":               false,
	"p99_ms":               false,
	"recovery_ms":          false,
	"tracing_overhead_pct": false,
	"invariant_failures":   false,
	"posts_per_sec":        true,
	"post_speedup":         true,
	"fsync_reduction":      true,
	"mean_batch_entries":   true,
	"rec_regression_pct":   false,
}

// phase is one named slice of a bench document: a worker count, a crash
// cycle, an endpoint, or the file-level "summary" every kind synthesizes so
// any two files align on at least one phase.
type phase struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchDoc struct {
	Path        string  `json:"path"`
	Kind        string  `json:"kind"`
	GeneratedAt string  `json:"generated_at,omitempty"`
	Phases      []phase `json:"phases"`
}

type metricVerdict struct {
	Phase    string  `json:"phase"`
	Metric   string  `json:"metric"`
	From     float64 `json:"from"`
	To       float64 `json:"to"`
	DeltaPct float64 `json:"delta_pct"`
	Verdict  string  `json:"verdict"` // ok | improved | REGRESSION | info
}

type comparison struct {
	From     string          `json:"from"`
	To       string          `json:"to"`
	FromKind string          `json:"from_kind"`
	ToKind   string          `json:"to_kind"`
	Gated    bool            `json:"gated"`
	Metrics  []metricVerdict `json:"metrics"`
	// PhaseMismatch names every phase present in exactly one side of a
	// same-kind pair. A gated comparison with a non-empty mismatch fails
	// the run: silently aligning on the intersection would let a harness
	// that stopped emitting a phase (a dropped worker count, a missing
	// crash cycle) pass the gate with the regressed phase simply absent.
	PhaseMismatch []string `json:"phase_mismatch,omitempty"`
}

type trajectory struct {
	GeneratedAt string       `json:"generated_at"`
	BudgetPct   float64      `json:"budget_pct"`
	Files       []benchDoc   `json:"files"`
	Comparisons []comparison `json:"comparisons"`
	Regressions int          `json:"regressions"`
	// PhaseMismatches counts gated pairs whose phase sets differ; any
	// non-zero value fails the run alongside Regressions.
	PhaseMismatches int `json:"phase_mismatches"`
}

func main() {
	budget := flag.Float64("budget", 0.10, "allowed bad-direction move before a same-kind metric is a regression (0.10 = 10%)")
	out := flag.String("out", "", "write the machine-readable trajectory JSON here (empty = stdout table only)")
	flag.Parse()

	files := flag.Args()
	if len(files) < 2 {
		fmt.Fprintln(os.Stderr, "benchdiff: need at least two BENCH json files (oldest first)")
		os.Exit(2)
	}

	docs := make([]benchDoc, 0, len(files))
	for _, f := range files {
		d, err := loadDoc(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", f, err)
			os.Exit(2)
		}
		docs = append(docs, d)
	}

	traj := trajectory{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		BudgetPct:   *budget * 100,
		Files:       docs,
	}
	for i := 1; i < len(docs); i++ {
		traj.Comparisons = append(traj.Comparisons, compare(docs[i-1], docs[i], *budget))
	}
	for _, c := range traj.Comparisons {
		for _, m := range c.Metrics {
			if m.Verdict == "REGRESSION" {
				traj.Regressions++
			}
		}
		if len(c.PhaseMismatch) > 0 {
			traj.PhaseMismatches++
		}
	}

	printTable(traj)

	if *out != "" {
		blob, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}

	fail := false
	if traj.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past the %.0f%% budget\n",
			traj.Regressions, *budget*100)
		fail = true
	}
	if traj.PhaseMismatches > 0 {
		for _, c := range traj.Comparisons {
			if len(c.PhaseMismatch) == 0 {
				continue
			}
			fmt.Fprintf(os.Stderr, "benchdiff: %s -> %s: same-kind pair (%s) has mismatched phase sets:\n",
				c.From, c.To, c.FromKind)
			for _, p := range c.PhaseMismatch {
				fmt.Fprintf(os.Stderr, "  %s\n", p)
			}
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d same-kind pair(s) with mismatched phase sets\n",
			traj.PhaseMismatches)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// loadDoc reads one BENCH json file and normalizes it into phases.
func loadDoc(path string) (benchDoc, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return benchDoc{}, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		return benchDoc{}, fmt.Errorf("parse: %w", err)
	}

	d := benchDoc{Path: path}
	if g, ok := raw["generated_at"]; ok {
		json.Unmarshal(g, &d.GeneratedAt)
	}

	switch {
	case has(raw, "post_speedup"):
		d.Kind = "ingest"
		err = normalizeIngest(raw, &d)
	case has(raw, "baseline") && has(raw, "traced"):
		d.Kind = "abba"
		err = normalizeABBA(raw, &d)
	case has(raw, "endpoints") && has(raw, "throughput_rps"):
		d.Kind = "servebench"
		err = normalizeServeBench(blob, &d)
	case has(raw, "phases"):
		d.Kind = "contention"
		err = normalizeContention(raw, &d)
	case has(raw, "cycles"):
		d.Kind = "soak"
		err = normalizeSoak(raw, &d)
	default:
		return benchDoc{}, fmt.Errorf("unrecognized BENCH shape (keys: %s)", strings.Join(keys(raw), ", "))
	}
	if err != nil {
		return benchDoc{}, err
	}
	sort.Slice(d.Phases, func(i, j int) bool { return d.Phases[i].Name < d.Phases[j].Name })
	return d, nil
}

func has(m map[string]json.RawMessage, k string) bool { _, ok := m[k]; return ok }

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// endpointStats is the per-endpoint latency block both servebench shapes
// share.
type endpointStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
}

func endpointPhases(endpoints map[string]endpointStats, prefix string) []phase {
	out := make([]phase, 0, len(endpoints))
	for ep, st := range endpoints {
		out = append(out, phase{
			Name: prefix + "endpoint:" + ep,
			Metrics: map[string]float64{
				"p50_ms": st.P50,
				"p95_ms": st.P95,
				"p99_ms": st.P99,
			},
		})
	}
	return out
}

// normalizeServeBench handles the flat PR2 shape: top-level throughput plus
// an endpoints map.
func normalizeServeBench(blob []byte, d *benchDoc) error {
	var doc struct {
		ThroughputRPS float64                  `json:"throughput_rps"`
		Endpoints     map[string]endpointStats `json:"endpoints"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return err
	}
	summary := map[string]float64{"throughput_rps": doc.ThroughputRPS}
	if rec, ok := doc.Endpoints["/v1/recommendations"]; ok {
		summary["p99_ms"] = rec.P99
	}
	d.Phases = append(d.Phases, phase{Name: "summary", Metrics: summary})
	d.Phases = append(d.Phases, endpointPhases(doc.Endpoints, "")...)
	return nil
}

// normalizeIngest handles the PR9 group-commit write-path shape: two
// servebench-style phases (synchronous journaled writes vs the batched
// ingest pipeline) plus the write-saturation gates. The summary carries the
// numbers the pipeline exists to move — posts/s, the speedup, the fsync
// amortization — and the read-path regression measured at matched load.
func normalizeIngest(raw map[string]json.RawMessage, d *benchDoc) error {
	type phaseResult struct {
		ThroughputRPS float64                  `json:"throughput_rps"`
		Endpoints     map[string]endpointStats `json:"endpoints"`
		RecP99Gate    float64                  `json:"rec_p99_gate_ms"`
	}
	var base, batched phaseResult
	if err := json.Unmarshal(raw["baseline"], &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(raw["traced"], &batched); err != nil {
		return fmt.Errorf("traced: %w", err)
	}
	num := func(key string) float64 {
		var v float64
		if b, ok := raw[key]; ok {
			json.Unmarshal(b, &v)
		}
		return v
	}
	d.Phases = append(d.Phases, phase{Name: "summary", Metrics: map[string]float64{
		"throughput_rps":     num("ingest_posts_per_sec"),
		"posts_per_sec":      num("ingest_posts_per_sec"),
		"post_speedup":       num("post_speedup"),
		"fsync_reduction":    num("fsync_per_post_reduction"),
		"mean_batch_entries": num("mean_batch_entries"),
		"rec_regression_pct": num("tracing_overhead_pct"),
	}})
	for name, pr := range map[string]phaseResult{"sync": base, "ingest": batched} {
		d.Phases = append(d.Phases, phase{
			Name:    name,
			Metrics: map[string]float64{"throughput_rps": pr.ThroughputRPS, "p99_ms": pr.RecP99Gate},
		})
		d.Phases = append(d.Phases, endpointPhases(pr.Endpoints, name+"/")...)
	}
	return nil
}

// normalizeABBA handles the tracing-overhead A/B/B/A shape: baseline and
// traced sections, each a full servebench-style phase, plus the computed
// overhead percentage.
func normalizeABBA(raw map[string]json.RawMessage, d *benchDoc) error {
	type phaseResult struct {
		ThroughputRPS float64                  `json:"throughput_rps"`
		Endpoints     map[string]endpointStats `json:"endpoints"`
		RecP99Gate    float64                  `json:"rec_p99_gate_ms"`
	}
	var base, traced phaseResult
	if err := json.Unmarshal(raw["baseline"], &base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(raw["traced"], &traced); err != nil {
		return fmt.Errorf("traced: %w", err)
	}
	var overhead float64
	if o, ok := raw["tracing_overhead_pct"]; ok {
		json.Unmarshal(o, &overhead)
	}

	summary := map[string]float64{
		"throughput_rps":       base.ThroughputRPS,
		"tracing_overhead_pct": overhead,
	}
	if rec, ok := base.Endpoints["/v1/recommendations"]; ok {
		summary["p99_ms"] = rec.P99
	}
	d.Phases = append(d.Phases, phase{Name: "summary", Metrics: summary})
	for name, pr := range map[string]phaseResult{"baseline": base, "traced": traced} {
		d.Phases = append(d.Phases, phase{
			Name:    name,
			Metrics: map[string]float64{"throughput_rps": pr.ThroughputRPS, "p99_ms": pr.RecP99Gate},
		})
		d.Phases = append(d.Phases, endpointPhases(pr.Endpoints, name+"/")...)
	}
	return nil
}

// normalizeContention handles the PR4 shape: one phase per worker count.
// The summary carries the highest-parallelism phase, which is the number the
// lock-free read path exists to protect.
func normalizeContention(raw map[string]json.RawMessage, d *benchDoc) error {
	var phases []struct {
		Workers       int     `json:"workers"`
		ThroughputRPS float64 `json:"throughput_rps"`
		P50           float64 `json:"p50_ms"`
		P95           float64 `json:"p95_ms"`
		P99           float64 `json:"p99_ms"`
		Speedup       float64 `json:"speedup_vs_1"`
	}
	if err := json.Unmarshal(raw["phases"], &phases); err != nil {
		return fmt.Errorf("phases: %w", err)
	}
	if len(phases) == 0 {
		return fmt.Errorf("phases: empty")
	}
	maxIdx := 0
	for i, p := range phases {
		if p.Workers > phases[maxIdx].Workers {
			maxIdx = i
		}
		d.Phases = append(d.Phases, phase{
			Name: fmt.Sprintf("workers=%02d", p.Workers),
			Metrics: map[string]float64{
				"throughput_rps": p.ThroughputRPS,
				"p50_ms":         p.P50,
				"p95_ms":         p.P95,
				"p99_ms":         p.P99,
				"speedup_vs_1":   p.Speedup,
			},
		})
	}
	top := phases[maxIdx]
	d.Phases = append(d.Phases, phase{Name: "summary", Metrics: map[string]float64{
		"throughput_rps": top.ThroughputRPS,
		"p99_ms":         top.P99,
		"speedup_vs_1":   top.Speedup,
	}})
	return nil
}

// normalizeSoak handles the crash-recovery soak shape: one phase per crash
// cycle, summary = mean recovery and replay rate plus total invariant
// failures (which the gate holds at zero).
func normalizeSoak(raw map[string]json.RawMessage, d *benchDoc) error {
	var cycles []struct {
		Crash      string  `json:"crash"`
		RecoveryMs float64 `json:"recovery_ms"`
		Replay     struct {
			RecordsPerSec float64 `json:"records_per_sec"`
		} `json:"replay"`
		Invariants []struct {
			OK bool `json:"ok"`
		} `json:"invariants"`
	}
	if err := json.Unmarshal(raw["cycles"], &cycles); err != nil {
		return fmt.Errorf("cycles: %w", err)
	}
	if len(cycles) == 0 {
		return fmt.Errorf("cycles: empty")
	}
	var sumRec, sumRate, failures float64
	seen := map[string]int{}
	for _, c := range cycles {
		sumRec += c.RecoveryMs
		sumRate += c.Replay.RecordsPerSec
		for _, inv := range c.Invariants {
			if !inv.OK {
				failures++
			}
		}
		// Crash names repeat across cycles (several random SIGKILLs); suffix
		// duplicates so every cycle keeps its own phase.
		name := "crash:" + c.Crash
		seen[name]++
		if n := seen[name]; n > 1 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		d.Phases = append(d.Phases, phase{Name: name, Metrics: map[string]float64{
			"recovery_ms":     c.RecoveryMs,
			"records_per_sec": c.Replay.RecordsPerSec,
		}})
	}
	n := float64(len(cycles))
	d.Phases = append(d.Phases, phase{Name: "summary", Metrics: map[string]float64{
		"recovery_ms":        sumRec / n,
		"records_per_sec":    sumRate / n,
		"invariant_failures": failures,
	}})
	return nil
}

// compare aligns two docs phase by phase. Same-kind pairs align on every
// shared phase name and gate against the budget; cross-kind pairs align only
// on "summary" and report informationally.
func compare(from, to benchDoc, budget float64) comparison {
	c := comparison{
		From:     from.Path,
		To:       to.Path,
		FromKind: from.Kind,
		ToKind:   to.Kind,
		Gated:    from.Kind == to.Kind,
	}
	toPhases := map[string]phase{}
	for _, p := range to.Phases {
		toPhases[p.Name] = p
	}
	if c.Gated {
		fromNames := map[string]bool{}
		for _, p := range from.Phases {
			fromNames[p.Name] = true
			if _, ok := toPhases[p.Name]; !ok {
				c.PhaseMismatch = append(c.PhaseMismatch,
					fmt.Sprintf("%s (only in %s)", p.Name, from.Path))
			}
		}
		for _, p := range to.Phases {
			if !fromNames[p.Name] {
				c.PhaseMismatch = append(c.PhaseMismatch,
					fmt.Sprintf("%s (only in %s)", p.Name, to.Path))
			}
		}
		sort.Strings(c.PhaseMismatch)
	}
	for _, fp := range from.Phases {
		if !c.Gated && fp.Name != "summary" {
			continue
		}
		tp, ok := toPhases[fp.Name]
		if !ok {
			continue
		}
		names := make([]string, 0, len(fp.Metrics))
		for m := range fp.Metrics {
			if _, shared := tp.Metrics[m]; shared {
				names = append(names, m)
			}
		}
		sort.Strings(names)
		for _, m := range names {
			c.Metrics = append(c.Metrics, judge(fp.Name, m, fp.Metrics[m], tp.Metrics[m], c.Gated, budget))
		}
	}
	return c
}

func judge(phaseName, metric string, from, to float64, gated bool, budget float64) metricVerdict {
	v := metricVerdict{Phase: phaseName, Metric: metric, From: from, To: to}
	switch {
	case from == to:
		v.DeltaPct = 0
	case from == 0:
		v.DeltaPct = math.Inf(sign(to))
	default:
		v.DeltaPct = (to - from) / math.Abs(from) * 100
	}

	if !gated {
		v.Verdict = "info"
		return v
	}
	higherBetter, known := metricDir[metric]
	if !known {
		v.Verdict = "info"
		return v
	}
	bad := v.DeltaPct < 0
	if !higherBetter {
		bad = v.DeltaPct > 0
	}
	switch {
	case math.Abs(v.DeltaPct) <= budget*100:
		v.Verdict = "ok"
	case bad:
		v.Verdict = "REGRESSION"
	default:
		v.Verdict = "improved"
	}
	// Infinities can't round-trip through JSON; clamp for the report.
	if math.IsInf(v.DeltaPct, 0) {
		v.DeltaPct = math.Copysign(999, v.DeltaPct)
	}
	return v
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

func printTable(traj trajectory) {
	fmt.Printf("benchdiff: %d file(s), budget %.0f%%\n", len(traj.Files), traj.BudgetPct)
	for _, d := range traj.Files {
		fmt.Printf("  %-24s kind=%-10s phases=%d", d.Path, d.Kind, len(d.Phases))
		if d.GeneratedAt != "" {
			fmt.Printf("  generated %s", d.GeneratedAt)
		}
		fmt.Println()
	}
	for _, c := range traj.Comparisons {
		mode := "gated"
		if !c.Gated {
			mode = fmt.Sprintf("informational: %s vs %s workloads differ", c.FromKind, c.ToKind)
		}
		fmt.Printf("\n%s -> %s  (%s)\n", c.From, c.To, mode)
		for _, p := range c.PhaseMismatch {
			fmt.Printf("  PHASE MISMATCH: %s\n", p)
		}
		if len(c.Metrics) == 0 {
			fmt.Println("  no shared phases/metrics")
			continue
		}
		fmt.Printf("  %-28s %-20s %14s %14s %9s  %s\n", "phase", "metric", "from", "to", "delta", "verdict")
		for _, m := range c.Metrics {
			fmt.Printf("  %-28s %-20s %14.2f %14.2f %+8.1f%%  %s\n",
				m.Phase, m.Metric, m.From, m.To, m.DeltaPct, m.Verdict)
		}
	}
	if traj.Regressions == 0 {
		fmt.Println("\nverdict: no regressions past budget")
	} else {
		fmt.Printf("\nverdict: %d REGRESSION(s)\n", traj.Regressions)
	}
}
