package main

import (
	"strings"
	"testing"
)

func doc(path, kind string, phaseNames ...string) benchDoc {
	d := benchDoc{Path: path, Kind: kind}
	for _, n := range phaseNames {
		d.Phases = append(d.Phases, phase{Name: n, Metrics: map[string]float64{
			"throughput_rps": 100,
		}})
	}
	return d
}

// A same-kind pair whose phase sets differ must surface every missing phase
// by name, in both directions, instead of silently comparing the
// intersection.
func TestComparePhaseMismatchSameKind(t *testing.T) {
	from := doc("old.json", "contention", "workers=1", "workers=4", "summary")
	to := doc("new.json", "contention", "workers=1", "workers=8", "summary")

	c := compare(from, to, 0.10)
	if !c.Gated {
		t.Fatalf("same-kind pair should be gated")
	}
	if len(c.PhaseMismatch) != 2 {
		t.Fatalf("PhaseMismatch = %q, want 2 entries", c.PhaseMismatch)
	}
	joined := strings.Join(c.PhaseMismatch, "\n")
	for _, want := range []string{
		"workers=4 (only in old.json)",
		"workers=8 (only in new.json)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("PhaseMismatch %q missing %q", c.PhaseMismatch, want)
		}
	}
	// The shared phases still get verdicts: the mismatch adds a failure, it
	// does not suppress the comparison.
	if len(c.Metrics) == 0 {
		t.Errorf("shared phases should still be compared, got no metrics")
	}
}

func TestCompareMatchedPhasesNoMismatch(t *testing.T) {
	from := doc("old.json", "contention", "workers=1", "summary")
	to := doc("new.json", "contention", "workers=1", "summary")
	if c := compare(from, to, 0.10); len(c.PhaseMismatch) != 0 {
		t.Fatalf("matched phase sets reported mismatch: %q", c.PhaseMismatch)
	}
}

// Cross-kind pairs align only on "summary" by design; differing phase sets
// are expected there and must not be reported as a mismatch.
func TestCompareCrossKindNoMismatch(t *testing.T) {
	from := doc("old.json", "contention", "workers=1", "summary")
	to := doc("new.json", "soak", "crash:sigkill", "summary")
	c := compare(from, to, 0.10)
	if c.Gated {
		t.Fatalf("cross-kind pair should not be gated")
	}
	if len(c.PhaseMismatch) != 0 {
		t.Fatalf("cross-kind pair reported phase mismatch: %q", c.PhaseMismatch)
	}
}
