package caar

import (
	"fmt"
	"sync"

	"caar/internal/sketch"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// Trending: per-slot streaming term frequencies over the post stream,
// tracked with a count-min sketch + heavy-hitters candidate set (bounded
// memory regardless of vocabulary size). Ad-ops uses this to steer keyword
// targeting: "what are people talking about on weekday afternoons?"

// TrendingTerm is one trending-term result.
type TrendingTerm struct {
	Term  string `json:"term"`
	Count uint64 `json:"count"` // sketch estimate; never under-counts
}

// trendTracker holds one heavy-hitters tracker per time slot.
type trendTracker struct {
	mu    sync.Mutex
	slots [timeslot.NumSlots]*sketch.HeavyHitters
}

// trendCapacity is how many top terms each slot retains (requests for
// larger k are clamped).
const trendCapacity = 50

func newTrendTracker() *trendTracker {
	t := &trendTracker{}
	for i := range t.slots {
		hh, err := sketch.NewHeavyHitters(trendCapacity, 0.001, 0.01)
		if err != nil {
			panic("caar: trend tracker sizing: " + err.Error())
		}
		t.slots[i] = hh
	}
	return t
}

// observe records one post's distinct terms under its slot.
func (t *trendTracker) observe(sl timeslot.Slot, vec textproc.SparseVector) {
	if len(vec) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	hh := t.slots[sl]
	for term := range vec {
		hh.Offer(uint64(term), 1)
	}
}

// top returns all tracked term IDs of a slot, most frequent first. Callers
// filter before truncating to k: truncating here would discard resolvable
// candidates whenever a higher-counted key fails its vocab lookup.
func (t *trendTracker) top(sl timeslot.Slot) []sketch.Counted {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slots[sl].TopK()
}

// Trending returns up to k terms most frequent in posts made during the
// given slot, most frequent first. Counts are sketch estimates (one-sided:
// never below the true count). k is clamped to the tracker capacity.
func (e *Engine) Trending(slot Slot, k int) ([]TrendingTerm, error) {
	sl, ok := slot.internal()
	if !ok {
		return nil, fmt.Errorf("%w: unknown slot %q", ErrBadConfig, slot)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadConfig, k)
	}
	counted := e.trends.top(sl)
	out := make([]TrendingTerm, 0, min(k, len(counted)))
	for _, c := range counted {
		if len(out) == k {
			break
		}
		term := e.pipeline.Vocab.Term(textproc.TermID(c.Key))
		if term == "" {
			continue // unresolvable sketch key; keep scanning for real terms
		}
		out = append(out, TrendingTerm{Term: term, Count: c.Count})
	}
	return out, nil
}
