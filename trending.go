package caar

import (
	"fmt"
	"sync"
	"time"

	"caar/internal/sketch"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// Trending: per-slot streaming term frequencies over the post stream,
// tracked with the shared windowed-sketch primitive (count-min +
// heavy-hitters candidate set; bounded memory regardless of vocabulary
// size). Ad-ops uses this to steer keyword targeting: "what are people
// talking about on weekday afternoons?"

// TrendingTerm is one trending-term result.
type TrendingTerm struct {
	Term  string `json:"term"`
	Count uint64 `json:"count"` // sketch estimate; never under-counts
}

// trendTracker holds one windowed-sketch tracker per time slot. The slot
// itself is the window — posts bucket by their timestamp's slot, and
// counts accumulate across days — so each tracker runs in the primitive's
// unwindowed mode (span 0: a single eternal sub-window, timestamps
// ignored) rather than decaying by wall clock like the hot-key layer.
type trendTracker struct {
	mu    sync.Mutex
	slots [timeslot.NumSlots]*sketch.Windowed
}

// trendCapacity is how many top terms each slot retains (requests for
// larger k are clamped).
const trendCapacity = 50

func newTrendTracker() *trendTracker {
	t := &trendTracker{}
	for i := range t.slots {
		w, err := sketch.NewWindowed(trendCapacity, 0.001, 0.01, 0, 1)
		if err != nil {
			panic("caar: trend tracker sizing: " + err.Error())
		}
		t.slots[i] = w
	}
	return t
}

// observe records one post's distinct terms under its slot.
func (t *trendTracker) observe(sl timeslot.Slot, vec textproc.SparseVector) {
	if len(vec) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.slots[sl]
	for term := range vec {
		w.Offer(uint64(term), 1, time.Time{})
	}
}

// top returns all tracked term IDs of a slot, most frequent first. Callers
// filter before truncating to k: truncating here would discard resolvable
// candidates whenever a higher-counted key fails its vocab lookup.
func (t *trendTracker) top(sl timeslot.Slot) []sketch.Counted {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slots[sl].TopK(time.Time{}, 0)
}

// Trending returns up to k terms most frequent in posts made during the
// given slot, most frequent first. Counts are sketch estimates (one-sided:
// never below the true count). k is clamped to the tracker capacity.
func (e *Engine) Trending(slot Slot, k int) ([]TrendingTerm, error) {
	sl, ok := slot.internal()
	if !ok {
		return nil, fmt.Errorf("%w: unknown slot %q", ErrBadConfig, slot)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadConfig, k)
	}
	counted := e.trends.top(sl)
	out := make([]TrendingTerm, 0, min(k, len(counted)))
	for _, c := range counted {
		if len(out) == k {
			break
		}
		term := e.pipeline.Vocab.Term(textproc.TermID(c.Key))
		if term == "" {
			continue // unresolvable sketch key; keep scanning for real terms
		}
		out = append(out, TrendingTerm{Term: term, Count: c.Count})
	}
	return out, nil
}
