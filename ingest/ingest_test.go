package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	caar "caar"
	"caar/journal"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newEngine(t *testing.T) *caar.Engine {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := eng.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	return eng
}

// countingJournal wraps a real Writer, counting batches and optionally
// delaying or failing each commit.
type countingJournal struct {
	w       *journal.Writer
	batches atomic.Int64
	syncs   atomic.Int64
	delay   time.Duration
	fail    atomic.Bool
}

func (j *countingJournal) AppendBatch(entries []journal.Entry) error {
	if j.delay > 0 {
		time.Sleep(j.delay)
	}
	if j.fail.Load() {
		return fmt.Errorf("%w: sync: injected", journal.ErrDurability)
	}
	j.batches.Add(1)
	return j.w.AppendBatch(entries)
}

func (j *countingJournal) SyncPending() error {
	j.syncs.Add(1)
	return nil
}

func TestPipelineCommitsAppliesAndReplays(t *testing.T) {
	eng := newEngine(t)
	var log bytes.Buffer
	// A 1ms "fsync" makes submitters pile up behind the in-flight commit, so
	// group commit has something to group even on a fast machine.
	cj := &countingJournal{w: journal.NewWriter(&log), delay: time.Millisecond}
	p := New(eng, cj, nil, Config{QueueSize: 128, MaxBatch: 32})

	const n = 200
	var wg sync.WaitGroup
	var acked atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Retry on ErrQueueFull exactly as a client honoring 429 +
			// Retry-After would.
			for {
				var err error
				if i%4 == 3 {
					err = p.SubmitCheckIn("alice", 1.5, 1.5, t0)
				} else {
					err = p.SubmitPost("bob", fmt.Sprintf("update %d from the road", i), t0)
				}
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				acked.Add(1)
				return
			}
		}(i)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if acked.Load() != n {
		t.Fatalf("acked %d of %d", acked.Load(), n)
	}

	// Everything acked was applied by Close's drain.
	st := eng.Stats()
	if st.PostsDelivered != n-n/4 {
		t.Fatalf("posts delivered = %d, want %d", st.PostsDelivered, n-n/4)
	}
	if st.CheckIns != n/4 {
		t.Fatalf("check-ins = %d, want %d", st.CheckIns, n/4)
	}
	// Group commit actually grouped: far fewer batches than entries.
	if b := cj.batches.Load(); b >= n {
		t.Fatalf("no batching: %d batches for %d entries", b, n)
	}

	// And the journal replays to the same state — the ack is backed by the
	// log, not by memory.
	recovered, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := recovered.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := recovered.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	stats, err := journal.Replay(bytes.NewReader(log.Bytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != n || stats.Skipped != 0 {
		t.Fatalf("replay stats = %+v, want %d applied", stats, n)
	}
	if got := recovered.Stats().PostsDelivered; got != n-n/4 {
		t.Fatalf("replayed posts = %d, want %d", got, n-n/4)
	}
}

func TestPipelineQueueFullRejects(t *testing.T) {
	eng := newEngine(t)
	var log bytes.Buffer
	cj := &countingJournal{w: journal.NewWriter(&log), delay: 20 * time.Millisecond}
	p := New(eng, cj, nil, Config{QueueSize: 8, MaxBatch: 4})
	defer p.Close()

	const n = 120
	var wg sync.WaitGroup
	var full, ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := p.SubmitPost("bob", fmt.Sprintf("burst %d", i), t0)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrQueueFull):
				full.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if full.Load() == 0 {
		t.Fatal("slow journal with a tiny ring never rejected — backpressure is not wired")
	}
	if ok.Load() == 0 {
		t.Fatal("every submit rejected — ring never drains")
	}
}

func TestPipelineJournalErrorAcksFailureAppliesNothing(t *testing.T) {
	eng := newEngine(t)
	var log bytes.Buffer
	cj := &countingJournal{w: journal.NewWriter(&log)}
	cj.fail.Store(true)
	p := New(eng, cj, nil, Config{QueueSize: 64, MaxBatch: 16})
	defer p.Close()

	err := p.SubmitPost("bob", "doomed", t0)
	if !errors.Is(err, journal.ErrDurability) {
		t.Fatalf("got %v, want ErrDurability", err)
	}
	if got := eng.Stats().PostsDelivered; got != 0 {
		t.Fatalf("failed commit was applied: %d posts", got)
	}
	if log.Len() != 0 {
		t.Fatal("failed commit reached the log buffer")
	}
}

func TestPipelineValidatesBeforeEnqueue(t *testing.T) {
	eng := newEngine(t)
	var log bytes.Buffer
	cj := &countingJournal{w: journal.NewWriter(&log)}
	p := New(eng, cj, nil, Config{})
	defer p.Close()

	if err := p.SubmitPost("ghost", "boo", t0); !errors.Is(err, caar.ErrUnknownUser) {
		t.Fatalf("unknown author: got %v, want ErrUnknownUser", err)
	}
	if err := p.SubmitCheckIn("ghost", 1, 1, t0); !errors.Is(err, caar.ErrUnknownUser) {
		t.Fatalf("unknown user: got %v, want ErrUnknownUser", err)
	}
	if err := p.SubmitCheckIn("alice", 99, 0, t0); err == nil {
		t.Fatal("out-of-region check-in accepted")
	}
	if log.Len() != 0 {
		t.Fatal("rejected submissions reached the journal")
	}
}

func TestPipelineClosedRejects(t *testing.T) {
	eng := newEngine(t)
	p := New(eng, &countingJournal{w: journal.NewWriter(&bytes.Buffer{})}, nil, Config{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitPost("bob", "late", t0); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineIdleTimerFlushesTail checks the satellite-4 wiring from the
// pipeline side: an idle committer periodically calls the journal's
// SyncPending so interval-policy records never sit unsynced waiting for the
// next append.
func TestPipelineIdleTimerFlushesTail(t *testing.T) {
	eng := newEngine(t)
	cj := &countingJournal{w: journal.NewWriter(&bytes.Buffer{})}
	p := New(eng, cj, nil, Config{IdleSync: 5 * time.Millisecond})
	defer p.Close()

	if err := p.SubmitPost("bob", "one post then silence", t0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for cj.syncs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle committer never flushed the journal tail")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelineCloseMidBurstDrainRace closes the pipeline while a burst is
// still in flight and checks the shutdown contract under the race detector:
// every write acked before or during the drain survives to the engine AND
// the journal, no submitter is left blocked, and both background goroutines
// exit. Close returning proves the exits structurally: Close blocks on
// p.done, which only the applier closes, and the applier only exits when
// the committer has closed applyq on its own way out.
func TestPipelineCloseMidBurstDrainRace(t *testing.T) {
	eng := newEngine(t)
	var log bytes.Buffer
	// A small ring behind a slow journal keeps the burst mid-flight: some
	// submitters acked, some parked in the ring, some shedding, all racing
	// the closed flag when Close lands.
	cj := &countingJournal{w: journal.NewWriter(&log), delay: 200 * time.Microsecond}
	p := New(eng, cj, nil, Config{QueueSize: 16, MaxBatch: 8})

	const n = 300
	var wg sync.WaitGroup
	var acked, shed, closed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := p.SubmitPost("bob", fmt.Sprintf("mid-burst %d", i), t0)
			switch {
			case err == nil:
				acked.Add(1)
			case errors.Is(err, ErrQueueFull):
				shed.Add(1)
			case errors.Is(err, ErrClosed):
				closed.Add(1)
			default:
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}

	// Pull the plug mid-burst: wait for proof the pipeline is live (a few
	// acks), not for the burst to finish.
	deadline := time.Now().Add(10 * time.Second)
	for acked.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never acked the first writes")
		}
		time.Sleep(100 * time.Microsecond)
	}
	closeDone := make(chan struct{})
	go func() {
		defer close(closeDone)
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	wg.Wait() // no submitter may be left blocked on its ack
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned — committer or applier leaked")
	}

	if got := acked.Load() + shed.Load() + closed.Load(); got != n {
		t.Fatalf("accounted for %d of %d submitters", got, n)
	}
	if closed.Load()+shed.Load() == 0 {
		t.Log("note: every submit was acked; close landed after the burst")
	}

	// Every ack is backed by state: the engine saw exactly the acked posts…
	if got := eng.Stats().PostsDelivered; got != uint64(acked.Load()) {
		t.Fatalf("engine delivered %d posts, %d were acked", got, acked.Load())
	}
	// …and so does the journal, replayed into a fresh engine.
	recovered, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := recovered.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := recovered.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	stats, err := journal.Replay(bytes.NewReader(log.Bytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != int(acked.Load()) || stats.Skipped != 0 {
		t.Fatalf("replay stats = %+v, want %d applied", stats, acked.Load())
	}

	// The committer is gone: a late submit fails fast instead of parking in
	// the ring forever.
	if err := p.SubmitPost("bob", "after close", t0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: got %v, want ErrClosed", err)
	}
}

func TestRing(t *testing.T) {
	r := newRing(4)
	if got := len(r.slots); got != 4 {
		t.Fatalf("capacity %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if !r.push(&item{}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(&item{}) {
		t.Fatal("push succeeded on full ring")
	}
	if got := r.depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if _, ok := r.pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
	if got := r.depth(); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
	// Wrap-around reuse.
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 4; i++ {
			if !r.push(&item{}) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 4; i++ {
			if _, ok := r.pop(); !ok {
				t.Fatalf("lap %d pop %d failed", lap, i)
			}
		}
	}
}
