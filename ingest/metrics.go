package ingest

import "caar/obs"

// ackBuckets covers the accept-to-durable window: sub-millisecond when a
// batch fills instantly, up to seconds behind a slow disk.
var ackBuckets = obs.ExpBuckets(50e-6, 2, 18) // 50 µs .. ~6.5 s

// metrics bundles the ingest pipeline's observability collectors.
type metrics struct {
	accepted      *obs.Counter
	rejected      *obs.Counter
	batches       *obs.Counter
	applied       *obs.Counter
	applyErrors   *obs.Counter
	ackSeconds    *obs.Histogram
	commitSeconds *obs.Histogram
	lastBatch     *obs.Gauge
}

// newMetrics registers the caar_ingest_* family on reg. depth is read at
// scrape time so the gauge never touches the hot path.
func newMetrics(reg *obs.Registry, depth func() float64) *metrics {
	reg.GaugeFunc("caar_ingest_queue_depth",
		"Posts and check-ins accepted into the ingest ring and not yet committed.", depth)
	return &metrics{
		accepted: reg.Counter("caar_ingest_accepted_total",
			"Writes accepted into the ingest ring."),
		rejected: reg.Counter("caar_ingest_rejected_total",
			"Writes rejected because the ingest ring was full (served as 429)."),
		batches: reg.Counter("caar_ingest_batches_total",
			"Group commits issued by the ingest committer (one fsync each, policy permitting)."),
		applied: reg.Counter("caar_ingest_applied_total",
			"Committed writes applied to the engine by the fan-out applier."),
		applyErrors: reg.Counter("caar_ingest_apply_errors_total",
			"Committed writes the engine rejected at apply time (post-ack; replay re-derives the same rejection)."),
		ackSeconds: reg.Histogram("caar_ingest_ack_seconds",
			"Latency from ring accept to durable acknowledgement (the group-commit wait).", ackBuckets),
		commitSeconds: reg.Histogram("caar_ingest_commit_seconds",
			"Latency of one group commit: batch journal append plus its single fsync.", ackBuckets),
		lastBatch: reg.Gauge("caar_ingest_last_batch_entries",
			"Size of the most recent group commit; with caar_ingest_batches_total and caar_ingest_accepted_total it gives the mean batch size."),
	}
}
