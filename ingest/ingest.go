// Package ingest is the batched asynchronous write path: it decouples
// accepting a post or check-in from applying it. Requests enter a bounded
// lock-free MPSC ring; a single committer goroutine drains them in batches
// and group-commits each batch to the journal — journal-first, ONE fsync per
// batch instead of one per append — acking every request only after its
// batch's fsync. A separate applier then fans each committed batch out to
// the engine shards in grouped deliveries (Engine.PostBatch/CheckInBatch:
// many follower windows per shard-lock acquisition).
//
// The acknowledgement contract: a nil return from SubmitPost/SubmitCheckIn
// means the write is durable per the journal's sync policy and will be
// applied; the apply itself is asynchronous, so a read raced immediately
// after the ack may not observe the write yet. Submission-time validation
// (unknown user, out-of-region point) re-derives the same rejections the
// synchronous path returns, so post-ack apply errors are an anomaly — they
// are counted in caar_ingest_apply_errors_total and re-derived identically
// by journal replay after a crash.
//
// Backpressure: a full ring fails fast with ErrQueueFull — the HTTP layer
// turns it into 429 + Retry-After — so overload surfaces at the edge instead
// of requests piling up on shard locks.
package ingest

import (
	"errors"
	"sync/atomic"
	"time"

	caar "caar"
	"caar/journal"
	"caar/obs"
)

// ErrQueueFull is returned when the ingest ring is at capacity; callers
// should retry after backing off (HTTP 429).
var ErrQueueFull = errors.New("ingest: queue full, retry later")

// ErrClosed is returned for writes submitted after Close began.
var ErrClosed = errors.New("ingest: pipeline closed")

// Engine is the slice of *caar.Engine the pipeline uses: lock-free
// submission-time validation plus the batched apply entry points.
type Engine interface {
	ValidateUser(handle string) error
	ValidateCheckIn(user string, lat, lng float64) error
	PostBatch([]caar.PostRequest) []error
	CheckInBatch([]caar.CheckInRequest) []error
}

// Journal is the slice of *journal.Writer the committer uses: group commit
// plus the idle-tail flush for interval fsync policies.
type Journal interface {
	AppendBatch([]journal.Entry) error
	SyncPending() error
}

// Config sizes the pipeline. Zero values select the defaults.
type Config struct {
	// QueueSize is the ring capacity, rounded up to a power of two.
	// Default 4096.
	QueueSize int
	// MaxBatch caps entries per group commit. Default 256.
	MaxBatch int
	// Linger optionally holds a partial batch open so it can fill before
	// committing, trading ack latency for batch size. Default 0 (commit
	// whatever drained).
	Linger time.Duration
	// IdleSync is the cadence of the idle-tail flush: with an interval
	// fsync policy, records acked inside the interval window are only
	// synced by the next append, so an idle committer flushes them via
	// Journal.SyncPending. Default 100ms.
	IdleSync time.Duration
	// ApplyDepth is how many committed batches may queue ahead of the
	// applier before the committer blocks (which in turn backs up the ring
	// into 429s). Default 4.
	ApplyDepth int
}

func (c *Config) setDefaults() {
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.IdleSync <= 0 {
		c.IdleSync = 100 * time.Millisecond
	}
	if c.ApplyDepth <= 0 {
		c.ApplyDepth = 4
	}
}

// item is one accepted write waiting for its group commit; errc (capacity 1)
// carries the single acknowledgement back to the blocked submitter.
type item struct {
	entry journal.Entry
	errc  chan error
}

// Pipeline is the asynchronous ingest path. Create with New, shut down with
// Close; Submit methods are safe for concurrent use.
type Pipeline struct {
	eng Engine
	jw  Journal
	cfg Config
	m   *metrics

	ring   *ring
	wake   chan struct{}        // nudges the committer after a push
	applyq chan []journal.Entry // committed batches awaiting fan-out
	stop   chan struct{}        // closed by Close after producers drain
	done   chan struct{}        // closed when the applier exits

	closed    atomic.Bool
	producers atomic.Int64 // submitters between the closed-check and their push
}

// New starts the pipeline: one committer goroutine (ring → journal) and one
// applier goroutine (journal → shards, preserving commit order). Metrics
// land on reg under caar_ingest_*; a nil reg keeps them private.
func New(eng Engine, jw Journal, reg *obs.Registry, cfg Config) *Pipeline {
	cfg.setDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Pipeline{
		eng:    eng,
		jw:     jw,
		cfg:    cfg,
		ring:   newRing(cfg.QueueSize),
		wake:   make(chan struct{}, 1),
		applyq: make(chan []journal.Entry, cfg.ApplyDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.m = newMetrics(reg, func() float64 { return float64(p.ring.depth()) })
	go p.committer()
	go p.applier()
	return p
}

// SubmitPost validates, enqueues and waits for the durable acknowledgement
// of one post. ErrQueueFull means the ring is at capacity (retry later); a
// journal error means the write is NOT durable and was not applied.
func (p *Pipeline) SubmitPost(author, text string, at time.Time) error {
	if err := p.eng.ValidateUser(author); err != nil {
		return err
	}
	return p.submit(journal.Entry{Op: journal.OpPost, User: author, Text: text, At: at})
}

// SubmitCheckIn validates, enqueues and waits for the durable
// acknowledgement of one check-in.
func (p *Pipeline) SubmitCheckIn(user string, lat, lng float64, at time.Time) error {
	if err := p.eng.ValidateCheckIn(user, lat, lng); err != nil {
		return err
	}
	return p.submit(journal.Entry{Op: journal.OpCheckIn, User: user, Lat: lat, Lng: lng, At: at})
}

func (p *Pipeline) submit(e journal.Entry) error {
	// The producer count brackets only the closed-check-to-push window so
	// Close can wait for racing pushes before the final drain; the ack wait
	// below is outside it (those items are already in the ring and will be
	// drained and acked by the committer's shutdown pass).
	p.producers.Add(1)
	if p.closed.Load() {
		p.producers.Add(-1)
		return ErrClosed
	}
	it := &item{entry: e, errc: make(chan error, 1)}
	pushed := p.ring.push(it)
	p.producers.Add(-1)
	if !pushed {
		p.m.rejected.Inc()
		return ErrQueueFull
	}
	p.m.accepted.Inc()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	start := time.Now()
	err := <-it.errc
	p.m.ackSeconds.ObserveDuration(time.Since(start))
	return err
}

// Close stops accepting writes, drains everything already accepted through
// commit AND apply, and returns when both background goroutines have
// exited. Every accepted write is acknowledged before Close returns — the
// crash-recovery ack ledger depends on no submitter being left blocked.
// Safe to call more than once.
func (p *Pipeline) Close() error {
	if !p.closed.Swap(true) {
		// Let racing submitters finish their push (or bail on the closed
		// flag) so the shutdown drain below sees every accepted item.
		for p.producers.Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
		close(p.stop)
	}
	<-p.done
	return nil
}

// committer is the single ring consumer: drain up to MaxBatch, group-commit,
// ack, hand the batch to the applier. An empty ring parks on the wake signal
// with an idle timer that flushes deferred interval-policy fsyncs.
func (p *Pipeline) committer() {
	timer := time.NewTimer(p.cfg.IdleSync)
	defer timer.Stop()
	for {
		batch := p.drainBatch(nil)
		if len(batch) == 0 {
			select {
			case <-p.wake:
				continue
			case <-p.stop:
				// Shutdown drain: commit everything accepted before the
				// producers quiesced, then let the applier finish.
				for {
					tail := p.drainBatch(nil)
					if len(tail) == 0 {
						break
					}
					p.commit(tail)
				}
				close(p.applyq)
				return
			case <-timer.C:
				// Idle tail: records acked inside an interval-policy window
				// have no next append to sync them — flush here. Errors flip
				// the writer's degraded flag, surfaced by readiness.
				p.jw.SyncPending() //nolint:errcheck // degraded state carries the failure
				timer.Reset(p.cfg.IdleSync)
				continue
			}
		}
		if p.cfg.Linger > 0 && len(batch) < p.cfg.MaxBatch {
			time.Sleep(p.cfg.Linger)
			batch = p.drainBatch(batch)
		}
		p.commit(batch)
	}
}

// drainBatch pops up to MaxBatch items (minus whatever batch already holds).
func (p *Pipeline) drainBatch(batch []*item) []*item {
	for len(batch) < p.cfg.MaxBatch {
		it, ok := p.ring.pop()
		if !ok {
			break
		}
		batch = append(batch, it)
	}
	return batch
}

// commit group-commits one batch: a single AppendBatch (one fsync, policy
// permitting), then acks every submitter, then queues the batch for apply.
// On a journal error nothing is applied and every submitter receives the
// error — the journal-first contract: no state the log does not contain.
func (p *Pipeline) commit(batch []*item) {
	entries := make([]journal.Entry, len(batch))
	for i, it := range batch {
		entries[i] = it.entry
	}
	start := time.Now()
	err := p.jw.AppendBatch(entries)
	p.m.commitSeconds.ObserveDuration(time.Since(start))
	p.m.batches.Inc()
	p.m.lastBatch.Set(float64(len(batch)))
	if err != nil {
		for _, it := range batch {
			it.errc <- err
		}
		return
	}
	for _, it := range batch {
		it.errc <- nil
	}
	// Bounded hand-off: when the applier lags ApplyDepth batches behind,
	// this blocks, the ring fills, and the edge sheds load with 429s.
	p.applyq <- entries
}

// applier fans committed batches out to the shards in commit order, splitting
// each batch into maximal same-op runs so posts and check-ins keep their
// relative order while still applying through the grouped batch entry points.
func (p *Pipeline) applier() {
	defer close(p.done)
	for entries := range p.applyq {
		for start := 0; start < len(entries); {
			end := start + 1
			for end < len(entries) && entries[end].Op == entries[start].Op {
				end++
			}
			p.applyRun(entries[start:end])
			start = end
		}
	}
}

func (p *Pipeline) applyRun(run []journal.Entry) {
	switch run[0].Op {
	case journal.OpPost:
		reqs := make([]caar.PostRequest, len(run))
		for i, e := range run {
			reqs[i] = caar.PostRequest{Author: e.User, Text: e.Text, At: e.At}
		}
		p.countApply(p.eng.PostBatch(reqs))
	case journal.OpCheckIn:
		reqs := make([]caar.CheckInRequest, len(run))
		for i, e := range run {
			reqs[i] = caar.CheckInRequest{User: e.User, Lat: e.Lat, Lng: e.Lng, At: e.At}
		}
		p.countApply(p.eng.CheckInBatch(reqs))
	}
}

func (p *Pipeline) countApply(errs []error) {
	ok := 0
	for _, err := range errs {
		if err != nil {
			p.m.applyErrors.Inc()
			continue
		}
		ok++
	}
	p.m.applied.Add(uint64(ok))
}
