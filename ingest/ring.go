package ingest

import "sync/atomic"

// ring is a bounded lock-free multi-producer single-consumer queue of
// in-flight ingest items — the same bounded-MPMC design with per-slot
// sequence numbers used by the hot-key record path (obs/hotkey), consumed
// from the single committer goroutine. Producers never block and never spin
// on a full ring: push fails fast and the handler turns that into a 429, so
// overload surfaces as backpressure at the edge instead of goroutines piling
// up on a shard lock.
type ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // next enqueue position (producers, CAS)
	tail  atomic.Uint64 // next dequeue position (written by the single consumer, read by the depth gauge)
}

type slot struct {
	// seq == pos: slot free for the producer claiming pos.
	// seq == pos+1: slot filled, ready for the consumer at pos.
	seq atomic.Uint64
	it  *item
}

// newRing rounds capacity up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &ring{slots: make([]slot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues it, returning false when the ring is full.
func (r *ring) push(it *item) bool {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				s.it = it
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case d < 0:
			// The slot still holds an entry from one lap ago: full.
			return false
		default:
			// Another producer claimed pos; reload and retry.
			pos = r.head.Load()
		}
	}
}

// pop dequeues the oldest item. Single-consumer: only the committer
// goroutine calls it.
func (r *ring) pop() (*item, bool) {
	tail := r.tail.Load()
	s := &r.slots[tail&r.mask]
	if s.seq.Load() != tail+1 {
		return nil, false
	}
	it := s.it
	s.it = nil // release the item for GC once acked
	s.seq.Store(tail + uint64(len(r.slots)))
	r.tail.Store(tail + 1)
	return it, true
}

// depth approximates the number of queued items; safe from any goroutine.
func (r *ring) depth() int {
	h, t := r.head.Load(), r.tail.Load()
	if h < t {
		return 0
	}
	return int(h - t)
}
