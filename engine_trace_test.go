package caar

import (
	"math"
	"strings"
	"testing"
	"time"

	"caar/obs/trace"
)

// tracedEngine builds an engine with a trace store, a small social graph,
// geo-targeted and global ads, and enough posted context that a recommend
// returns several ads with non-trivial text, geo and bid components.
func tracedEngine(t *testing.T, alg Algorithm, tcfg trace.Config) *Engine {
	t.Helper()
	cfg := testConfig()
	cfg.Algorithm = alg
	cfg.Tracer = trace.NewStore(tcfg)
	e := openEngine(t, cfg)
	for _, u := range []string{"alice", "bob"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckIn("alice", 1.0, 1.0, morning.Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	ads := []Ad{
		{ID: "shoes", Text: "marathon running shoes cushioned sole", Bid: 0.4},
		{ID: "espresso", Text: "espresso coffee beans roasted daily", Bid: 0.6,
			Target: &Target{Lat: 1.0, Lng: 1.0, RadiusKm: 50}},
		{ID: "pizza", Text: "fresh pizza delivered hot tonight", Bid: 0.9},
	}
	for _, ad := range ads {
		if err := e.AddAd(ad); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Post("bob", "morning espresso before the marathon, shoes laced", morning); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTracedRecommendStageSpanInvariant: one traced recommend yields
// exactly one span per pipeline stage, in pipeline order, and the
// candidate counts form an attrition funnel — from the score stage onward
// each stage consumes exactly what the previous stage produced and never
// emits more than it consumed.
func TestTracedRecommendStageSpanInvariant(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmCAP, AlgorithmIL, AlgorithmRS} {
		t.Run(string(alg), func(t *testing.T) {
			e := tracedEngine(t, alg, trace.Config{SampleRate: 1})
			recs, tr, err := e.RecommendTraced("alice", 2, morning.Add(time.Minute), ServingPolicy{}, TraceRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				t.Fatal("no recommendations")
			}
			if tr == nil {
				t.Fatal("no trace captured at sample rate 1")
			}

			wantStages := []string{"lookup", "retrieve", "score", "topk", "map", "policy"}
			if len(tr.Spans) != len(wantStages) {
				t.Fatalf("got %d spans %v, want one per stage %v", len(tr.Spans), tr.Spans, wantStages)
			}
			for i, want := range wantStages {
				if tr.Spans[i].Stage != want {
					t.Fatalf("span %d is %q, want %q (order must follow the pipeline)", i, tr.Spans[i].Stage, want)
				}
			}
			// Attrition funnel: after the score stage (which may widen the
			// candidate set with the static/geo remainder), each stage's
			// input equals the previous stage's output and output never
			// exceeds input.
			for i := 2; i < len(tr.Spans); i++ {
				sp := tr.Spans[i]
				if sp.Out > sp.In {
					t.Errorf("stage %s emitted more than it consumed: in=%d out=%d", sp.Stage, sp.In, sp.Out)
				}
				if i > 2 && sp.In != tr.Spans[i-1].Out {
					t.Errorf("stage %s in=%d does not match %s out=%d",
						sp.Stage, sp.In, tr.Spans[i-1].Stage, tr.Spans[i-1].Out)
				}
			}
			if final := tr.Spans[len(tr.Spans)-1].Out; final != len(recs) {
				t.Errorf("policy stage out=%d, response has %d ads", final, len(recs))
			}
			if tr.Outcome != trace.OutcomeOK || tr.CaptureReason != trace.ReasonSampled {
				t.Errorf("outcome=%q reason=%q", tr.Outcome, tr.CaptureReason)
			}
			if tr.Algorithm != string(alg) {
				t.Errorf("trace algorithm = %q, want %q", tr.Algorithm, alg)
			}
		})
	}
}

// TestScoreDecompositionSumsToScore: for every ad of a traced recommend,
// the additive decomposition text + geo + bid equals (within float
// tolerance) the score the ranking used — the acceptance criterion that
// makes the explanation trustworthy.
func TestScoreDecompositionSumsToScore(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmCAP, AlgorithmIL, AlgorithmRS} {
		t.Run(string(alg), func(t *testing.T) {
			e := tracedEngine(t, alg, trace.Config{SampleRate: 1})
			recs, tr, err := e.RecommendTraced("alice", 3, morning.Add(time.Minute), ServingPolicy{}, TraceRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if tr == nil || len(tr.Ads) == 0 {
				t.Fatal("no traced ads")
			}
			if len(tr.Ads) != len(recs) {
				t.Fatalf("trace has %d ads, response has %d", len(tr.Ads), len(recs))
			}
			for i, ad := range tr.Ads {
				sum := ad.Text + ad.Geo + ad.Bid
				if diff := math.Abs(sum - ad.Score); diff > 1e-9 {
					t.Errorf("ad %s: text %g + geo %g + bid %g = %g, score %g (diff %g)",
						ad.AdID, ad.Text, ad.Geo, ad.Bid, sum, ad.Score, diff)
				}
				if ad.AdID != recs[i].AdID || ad.Score != recs[i].Score {
					t.Errorf("trace ad %d = %+v does not match response %+v", i, ad, recs[i])
				}
			}
			// The geo-targeted ad must carry a positive spatial component for
			// the checked-in user, or the decomposition is vacuous.
			for _, ad := range tr.Ads {
				if ad.AdID == "espresso" && ad.Geo <= 0 {
					t.Errorf("geo-targeted ad has geo component %g, want > 0", ad.Geo)
				}
			}
		})
	}
}

// TestErrorTailCaptureBypassesSampling: with head sampling off, a failed
// recommend is still captured (reason "error"), while the successful one
// right before it is not.
func TestErrorTailCaptureBypassesSampling(t *testing.T) {
	e := tracedEngine(t, AlgorithmCAP, trace.Config{SampleRate: 0})

	if _, tr, err := e.RecommendTraced("alice", 2, morning, ServingPolicy{}, TraceRequest{}); err != nil {
		t.Fatal(err)
	} else if tr != nil {
		t.Fatal("successful request captured despite sampling off")
	}

	_, tr, err := e.RecommendTraced("nobody", 2, morning, ServingPolicy{}, TraceRequest{ID: "req-err-1"})
	if err == nil {
		t.Fatal("recommend for unknown user must fail")
	}
	if tr == nil {
		t.Fatal("errored request not tail-captured")
	}
	if tr.Outcome != trace.OutcomeError || tr.CaptureReason != trace.ReasonError {
		t.Errorf("outcome=%q reason=%q", tr.Outcome, tr.CaptureReason)
	}
	if !strings.Contains(tr.Error, "unknown user") {
		t.Errorf("trace error = %q", tr.Error)
	}
	if tr.ID != "req-err-1" {
		t.Errorf("trace did not adopt the request ID: %q", tr.ID)
	}
	if got := e.Tracer().Get("req-err-1"); got != tr {
		t.Error("captured trace not reachable through the store by request ID")
	}
}

// TestExplainWithoutStore: Explain returns a full trace even when no
// tracer is configured — the trace is built for the response and simply
// not retained.
func TestExplainWithoutStore(t *testing.T) {
	cfg := testConfig()
	e := openEngine(t, cfg)
	if err := e.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "coffee espresso beans", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	if e.Tracer() != nil {
		t.Fatal("test wants an engine without a tracer")
	}

	// Untraced path stays untraced.
	if _, tr, err := e.RecommendTraced("alice", 2, morning, ServingPolicy{}, TraceRequest{}); err != nil {
		t.Fatal(err)
	} else if tr != nil {
		t.Fatal("trace built without tracer and without explain")
	}

	_, tr, err := e.RecommendTraced("alice", 2, morning, ServingPolicy{}, TraceRequest{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("explain did not return a trace")
	}
	if tr.CaptureReason != trace.ReasonExplain {
		t.Errorf("capture reason = %q, want %q", tr.CaptureReason, trace.ReasonExplain)
	}
	if len(tr.Spans) != 6 {
		t.Errorf("explain trace has %d spans, want 6", len(tr.Spans))
	}
}

// TestPolicyActionsRecorded: a traced policy recommend records why
// candidates were dropped — the frequency-capped ad appears as a policy
// action, not silently missing.
func TestPolicyActionsRecorded(t *testing.T) {
	e := tracedEngine(t, AlgorithmCAP, trace.Config{SampleRate: 1})
	policy := ServingPolicy{FrequencyCap: 1, FrequencyWindow: time.Hour}

	recs, _, err := e.RecommendTraced("alice", 1, morning.Add(time.Minute), policy, TraceRequest{})
	if err != nil || len(recs) == 0 {
		t.Fatalf("first policy recommend: %v (%d recs)", err, len(recs))
	}
	top := recs[0].AdID
	if _, err := e.RecordImpressionTo("alice", top, morning.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}

	recs, tr, err := e.RecommendTraced("alice", 1, morning.Add(2*time.Minute), policy, TraceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no trace captured")
	}
	found := false
	for _, pa := range tr.Policy {
		if pa.AdID == top && pa.Action == "dropped_frequency_cap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("frequency-cap drop of %q not recorded; actions: %+v, slate: %+v", top, tr.Policy, recs)
	}
	for _, r := range recs {
		if r.AdID == top {
			t.Fatalf("frequency-capped ad %q still in the slate", top)
		}
	}
}

// TestStageExemplarsLinkToCapturedTraces: a kept trace annotates the stage
// histograms, and StageExemplars surfaces its ID for every pipeline stage
// plus the end-to-end histogram.
func TestStageExemplarsLinkToCapturedTraces(t *testing.T) {
	e := tracedEngine(t, AlgorithmCAP, trace.Config{SampleRate: 1})
	_, tr, err := e.RecommendTraced("alice", 2, morning.Add(time.Minute), ServingPolicy{}, TraceRequest{ID: "req-ex-1"})
	if err != nil || tr == nil {
		t.Fatalf("traced recommend: %v, tr=%v", err, tr)
	}
	ex := e.StageExemplars()
	for _, stage := range []string{"lookup", "retrieve", "score", "topk", "map", "policy", "recommend"} {
		bucketEx, okStage := ex[stage]
		if !okStage || len(bucketEx) == 0 {
			t.Errorf("stage %q has no exemplar after a captured trace", stage)
			continue
		}
		found := false
		for _, be := range bucketEx {
			if be.TraceID == "req-ex-1" {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %q exemplars %+v do not carry the captured trace ID", stage, bucketEx)
		}
	}
}

// TestRecommendUntracedZeroExtraAllocations: with tracing disabled the
// recommend path must not allocate more than it did before the flight
// recorder existed — the nil-tracer branch is free.
func TestRecommendUntracedZeroExtraAllocations(t *testing.T) {
	cfg := testConfig()
	e := openEngine(t, cfg)
	if err := e.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "coffee espresso beans", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Post("alice", "espresso time", morning); err != nil {
		t.Fatal(err)
	}
	at := morning.Add(time.Minute)
	if _, err := e.Recommend("alice", 2, at); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Recommend("alice", 2, at); err != nil {
			t.Fatal(err)
		}
	})
	// The CAP recommend path costs ~13 allocations (collector, results,
	// recommendations). Anything materially above that means the disabled
	// tracer is no longer free.
	if allocs > 16 {
		t.Errorf("untraced recommend costs %.0f allocs/op, want <= 16", allocs)
	}
}
