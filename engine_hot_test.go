package caar

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"caar/internal/feed"
	"caar/obs/hotkey"
	"caar/workload"
)

// hotWorkloadConfig is a laptop-fast workload slice. Celebrities > 0 plants
// a known heavy tail: the first `celebs` users post ~25× as often and are
// followed by half the user base, so their fan-out cost dwarfs everyone
// else's — the ground truth the recall assertions compare against.
func hotWorkloadConfig(celebs int) workload.Config {
	wcfg := workload.DefaultConfig()
	wcfg.Users = 250
	wcfg.AvgFollowees = 8
	wcfg.Messages = 3000
	wcfg.Ads = 40
	wcfg.RenderText = true
	wcfg.Celebrities = celebs
	if celebs > 0 {
		wcfg.CelebrityFollowFrac = 0.5
	}
	return wcfg
}

// feedHotWorkload mirrors the workload's users, graph, and post stream into
// the engine and returns the true per-author fan-out cost: for each post,
// followers(author)+1 feed windows are written.
func feedHotWorkload(t *testing.T, e *Engine, w *workload.Workload) (handles []string, truth map[feed.UserID]uint64) {
	t.Helper()
	handles = make([]string, len(w.Users))
	for i := range w.Users {
		handles[i] = fmt.Sprintf("u%04d", i)
		if err := e.AddUser(handles[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range w.Users {
		for _, f := range w.Graph.Followers(u.ID) {
			if err := e.Follow(handles[f], handles[u.ID]); err != nil {
				t.Fatal(err)
			}
		}
	}
	truth = map[feed.UserID]uint64{}
	for _, ev := range w.Events {
		if ev.Kind != workload.EventPost {
			continue
		}
		if err := e.Post(handles[ev.User], ev.Text, ev.Time); err != nil {
			t.Fatal(err)
		}
		truth[ev.User] += uint64(w.Graph.FollowerCount(ev.User) + 1)
	}
	return handles, truth
}

func trueRanking(truth map[feed.UserID]uint64) []feed.UserID {
	ids := make([]feed.UserID, 0, len(truth))
	for id := range truth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if truth[ids[i]] != truth[ids[j]] {
			return truth[ids[i]] > truth[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// TestHotPostersRecallOnCelebrityTail is the acceptance gate: against the
// workload generator's planted celebrity tail, the posters dimension must
// recall ≥ 0.9 of the true top-k by fan-out cost, and every reported
// estimate must cover the true count within its error bound.
func TestHotPostersRecallOnCelebrityTail(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	// A long window so nothing decays while the test feeds the stream.
	cfg.HotKeyWindow = time.Hour
	e := openEngine(t, cfg)
	w, err := workload.Generate(hotWorkloadConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	handles, truth := feedHotWorkload(t, e, w)

	const k = 10
	rep, err := e.Hot("posters", k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Keys) != k {
		t.Fatalf("got %d keys, want %d", len(rep.Keys), k)
	}

	trueTop := map[string]bool{}
	for _, id := range trueRanking(truth)[:k] {
		trueTop[handles[id]] = true
	}
	hits := 0
	for _, hk := range rep.Keys {
		if trueTop[hk.Key] {
			hits++
		}
	}
	if recall := float64(hits) / float64(k); recall < 0.9 {
		t.Fatalf("top-%d recall %.2f < 0.9: reported %+v", k, recall, rep.Keys)
	}

	// Error bounds must cover the true counts: estimates are one-sided
	// (never below truth) and within truth+bound.
	for _, hk := range rep.Keys {
		want := truth[feed.UserID(hk.RawKey)]
		if hk.Count < want {
			t.Errorf("poster %s under-estimated: %d < true %d", hk.Key, hk.Count, want)
		}
		if hk.Count > want+hk.ErrorBound {
			t.Errorf("poster %s outside bound: est %d true %d bound %d", hk.Key, hk.Count, want, hk.ErrorBound)
		}
	}

	// The terms dimension saw the same stream; it must be populated and
	// resolve display names through the vocabulary.
	trep, err := e.Hot("terms", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trep.Keys) == 0 || trep.Keys[0].Key == "" {
		t.Fatalf("terms dimension empty or unresolved: %+v", trep)
	}
}

// TestHotNoSpuriousHeavyHittersOnUniformTrace: with no planted tail, the
// tracker must not fabricate heavy hitters — every reported key must be
// genuinely near the top of the true ranking and estimated within bounds.
func TestHotNoSpuriousHeavyHittersOnUniformTrace(t *testing.T) {
	cfg := testConfig()
	cfg.HotKeyWindow = time.Hour
	e := openEngine(t, cfg)
	w, err := workload.Generate(hotWorkloadConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	_, truth := feedHotWorkload(t, e, w)

	rep, err := e.Hot("posters", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	ranking := trueRanking(truth)
	rankOf := make(map[feed.UserID]int, len(ranking))
	for i, id := range ranking {
		rankOf[id] = i
	}
	for _, hk := range rep.Keys {
		id := feed.UserID(hk.RawKey)
		want, known := truth[id]
		if !known {
			t.Fatalf("spurious heavy hitter %q: key never posted", hk.Key)
		}
		if hk.Count < want || hk.Count > want+hk.ErrorBound {
			t.Errorf("poster %s estimate %d outside [true %d, true+bound %d]",
				hk.Key, hk.Count, want, want+hk.ErrorBound)
		}
		// Near-ties make exact top-10 membership unstable on a flat
		// distribution; spurious means nowhere near the top.
		if rankOf[id] >= 30 {
			t.Errorf("poster %s reported hot but true rank is %d (count %d)", hk.Key, rankOf[id], want)
		}
	}
}

// TestHotUsersAndCampaignDimensions drives the two serving-side record
// sites — Recommend and ServeImpression — and checks the planted hot user
// and hot campaign surface in their dimensions.
func TestHotUsersAndCampaignDimensions(t *testing.T) {
	cfg := testConfig()
	cfg.HotKeyWindow = time.Hour
	e := openEngine(t, cfg)
	for _, h := range []string{"hotshot", "bob", "carol"} {
		if err := e.AddUser(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddCampaign("mega-launch", 1000, morning.Add(-24*time.Hour), morning.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "ad-mega", Text: "coffee deals downtown", Campaign: "mega-launch", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "ad-solo", Text: "quiet bookshop corner", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 40; i++ {
		if _, err := e.Recommend("hotshot", 3, morning); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Recommend("bob", 3, morning); err != nil {
		t.Fatal(err)
	}
	urep, err := e.Hot("users", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(urep.Keys) == 0 || urep.Keys[0].Key != "hotshot" || urep.Keys[0].Count != 40 {
		t.Fatalf("users dimension = %+v", urep.Keys)
	}

	for i := 0; i < 25; i++ {
		if _, err := e.ServeImpression("ad-mega", morning); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.ServeImpression("ad-solo", morning); err != nil {
		t.Fatal(err)
	}
	crep, err := e.Hot("campaigns", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crep.Keys) != 2 || crep.Keys[0].Key != "mega-launch" || crep.Keys[0].Count != 25 {
		t.Fatalf("campaigns dimension = %+v", crep.Keys)
	}
	// The campaign-less ad reports under its ad name.
	if crep.Keys[1].Key != "ad-solo" {
		t.Fatalf("campaign-less ad not named: %+v", crep.Keys)
	}
}

func TestHotPartitionReportSkewSignal(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	cfg.HotKeyWindow = time.Hour
	e := openEngine(t, cfg)
	w, err := workload.Generate(hotWorkloadConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	handles, truth := feedHotWorkload(t, e, w)

	rep, err := e.HotPartitionReport(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 4 || len(rep.Dimensions) != len(hotkey.Dimensions()) {
		t.Fatalf("report shape: %+v", rep)
	}
	var posters *DimensionSkew
	for i := range rep.Dimensions {
		if rep.Dimensions[i].Dimension == "posters" {
			posters = &rep.Dimensions[i]
		}
	}
	if posters == nil {
		t.Fatal("posters dimension missing")
	}
	if posters.TopKey != handles[trueRanking(truth)[0]] {
		t.Fatalf("top poster = %q, want %q", posters.TopKey, handles[trueRanking(truth)[0]])
	}
	if len(posters.ShardWeight) != 4 {
		t.Fatalf("shard weights = %+v", posters.ShardWeight)
	}
	var sum uint64
	for _, sw := range posters.ShardWeight {
		sum += sw
	}
	if sum == 0 || posters.MaxShardShare <= 0 || posters.TopShare <= 0 {
		t.Fatalf("skew signal empty: %+v", posters)
	}
	// Campaign dimension is string-keyed: no shard attribution.
	for _, d := range rep.Dimensions {
		if d.Dimension == "campaigns" && d.ShardWeight != nil {
			t.Fatalf("string-keyed dimension got shard weights: %+v", d)
		}
	}
}

func TestHotDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DisableHotKeys = true
	e := openEngine(t, cfg)
	if e.HotTracker() != nil {
		t.Fatal("tracker created despite DisableHotKeys")
	}
	if err := e.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	// Record sites must be nil-safe no-ops.
	if err := e.Post("alice", "hello world", morning); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recommend("alice", 3, morning); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Hot("users", 5, 0); !errors.Is(err, ErrHotKeysDisabled) {
		t.Fatalf("Hot on disabled engine: %v", err)
	}
	if _, err := e.HotPartitionReport(0); !errors.Is(err, ErrHotKeysDisabled) {
		t.Fatalf("HotPartitionReport on disabled engine: %v", err)
	}
}

func TestHotUnknownDimension(t *testing.T) {
	e := openEngine(t, testConfig())
	if _, err := e.Hot("bogus", 5, 0); err == nil {
		t.Fatal("unknown dimension accepted")
	}
}
