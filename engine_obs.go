package caar

import (
	"sync/atomic"
	"time"

	"caar/internal/adstore"
	"caar/internal/core"
	"caar/internal/textproc"
	"caar/obs"
	"caar/obs/trace"
)

// Engine observability: every engine carries a metrics registry (its own
// private one unless Config.Metrics supplies a shared registry) and records
// the serving pipeline's per-stage latency spans plus sampled gauges over
// live state. Metric names are stable API — they are documented in
// README.md §Observability and scraped by dashboards; renaming one is a
// breaking change.

// StageBuckets is the bucket layout of per-stage recommend spans: finer
// than request-level LatencyBuckets because CAP's retrieve stage sits in
// the sub-microsecond range its incremental design was built for.
var stageBuckets = obs.ExpBuckets(1e-6, 2, 22) // 1 µs .. ~2.1 s

// fsyncBuckets covers journal fsync and snapshot write latencies.
var fsyncBuckets = obs.ExpBuckets(10e-6, 2, 20) // 10 µs .. ~5.2 s

// engineMetrics bundles the engine's registered collectors. All fields are
// non-nil once the engine is open.
type engineMetrics struct {
	// Per-stage recommend spans, one histogram per pipeline stage. The
	// lookup/map/policy stages are recorded by the facade; retrieve/score/
	// topk by the core engine under the shard lock.
	stageSeconds  *obs.HistogramVec
	stageLookup   *obs.Histogram
	stageRetrieve *obs.Histogram
	stageScore    *obs.Histogram
	stageTopK     *obs.Histogram
	stageMap      *obs.Histogram
	stagePolicy   *obs.Histogram

	recommendSeconds *obs.Histogram
	recommends       *obs.Counter
	recommendErrors  *obs.Counter
	continuousErrors *obs.Counter
	lockWaitSeconds  *obs.Histogram
	vectorizeSeconds *obs.Histogram
	impressions      *obs.CounterVec

	snapshotSeconds *obs.Histogram
	snapshotSize    *obs.Gauge
	snapshotErrors  *obs.Counter

	lastSnapshotUnix atomic.Int64
	lastSnapshotErr  atomic.Value // string; "" after a successful save

	// lastExemplarNano gates how often ordinary sampled traces refresh the
	// histogram exemplars (see attachExemplars).
	lastExemplarNano atomic.Int64
}

// newEngineMetrics registers the engine's collectors on reg and installs
// gauge functions sampling e's live state at scrape time.
func newEngineMetrics(reg *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{
		stageSeconds: reg.HistogramVec("caar_engine_recommend_stage_seconds",
			"Latency of each recommend pipeline stage (lookup, retrieve, score, topk, map, policy).",
			stageBuckets, "stage"),
		recommendSeconds: reg.Histogram("caar_engine_recommend_seconds",
			"End-to-end engine recommend latency.", stageBuckets),
		recommends: reg.Counter("caar_engine_recommends_total",
			"Completed recommend queries."),
		recommendErrors: reg.Counter("caar_engine_recommend_errors_total",
			"Recommend queries rejected with an error."),
		continuousErrors: reg.Counter("caar_engine_continuous_errors_total",
			"Per-user TopAds failures swallowed on the continuous delivery path."),
		lockWaitSeconds: reg.Histogram("caar_engine_shard_lock_wait_seconds",
			"Time a recommend query waited for its shard's serializing lock.", stageBuckets),
		vectorizeSeconds: reg.Histogram("caar_engine_vectorize_seconds",
			"Text pipeline vectorization latency (posts and ad copy).", stageBuckets),
		impressions: reg.CounterVec("caar_engine_impressions_total",
			"Impression billing attempts by outcome.", "result"),
		snapshotSeconds: reg.Histogram("caar_snapshot_write_seconds",
			"Wall time of SaveSnapshot (serialize, fsync, rename).", fsyncBuckets),
		snapshotSize: reg.Gauge("caar_snapshot_size_bytes",
			"Size of the last successfully written snapshot."),
		snapshotErrors: reg.Counter("caar_snapshot_errors_total",
			"Failed snapshot writes."),
	}
	m.stageLookup = m.stageSeconds.With("lookup")
	m.stageRetrieve = m.stageSeconds.With(core.StageRetrieve.String())
	m.stageScore = m.stageSeconds.With(core.StageScore.String())
	m.stageTopK = m.stageSeconds.With(core.StageTopK.String())
	m.stageMap = m.stageSeconds.With("map")
	m.stagePolicy = m.stageSeconds.With("policy")
	m.lastSnapshotErr.Store("")

	reg.GaugeFunc("caar_engine_users", "Registered users.", func() float64 {
		return float64(len(e.dir.Load().users))
	})
	reg.GaugeFunc("caar_engine_ads", "Live advertisements.", func() float64 {
		return float64(e.store.Len())
	})
	reg.GaugeFunc("caar_engine_follow_edges", "Follow edges in the social graph.", func() float64 {
		return float64(e.graph.Edges())
	})
	reg.GaugeFunc("caar_engine_campaigns", "Registered campaigns.", func() float64 {
		n := 0
		e.store.ForEachCampaign(func(*adstore.Campaign) { n++ })
		return float64(n)
	})
	reg.GaugeFunc("caar_engine_campaign_budget_remaining", "Unspent budget summed over all campaigns.", func() float64 {
		var left float64
		e.store.ForEachCampaign(func(c *adstore.Campaign) { left += c.Remaining() })
		return left
	})
	reg.GaugeFunc("caar_engine_index_terms", "Distinct terms interned in the text pipeline's vocabulary.", func() float64 {
		return float64(e.pipeline.Vocab.Size())
	})
	reg.GaugeFunc("caar_engine_index_postings", "Total (term, ad) postings across shard inverted indexes.", func() float64 {
		total := 0
		for _, sh := range e.shards {
			sh.mu.Lock()
			if is, ok := sh.eng.(interface{ IndexStats() (int, int) }); ok {
				_, p := is.IndexStats()
				total += p
			}
			sh.mu.Unlock()
		}
		return float64(total)
	})
	reg.GaugeFunc("caar_engine_window_messages", "Messages resident in user feed windows (context occupancy).", func() float64 {
		total := 0
		for _, sh := range e.shards {
			sh.mu.Lock()
			if ws, ok := sh.eng.(interface{ WindowStats() (int, int) }); ok {
				_, entries := ws.WindowStats()
				total += entries
			}
			sh.mu.Unlock()
		}
		return float64(total)
	})
	reg.GaugeFunc("caar_engine_candidate_buffer_entries", "CAP candidate-buffer entries summed over users (0 for IL/RS).", func() float64 {
		total := 0
		for _, sh := range e.shards {
			sh.mu.Lock()
			if c, ok := sh.eng.(*core.CAP); ok {
				total += c.TotalBufferEntries()
			}
			sh.mu.Unlock()
		}
		return float64(total)
	})
	reg.GaugeFunc("caar_engine_cached_messages", "Messages with live shared delta lists (CAP fan-out sharing).", func() float64 {
		total := 0
		for _, sh := range e.shards {
			sh.mu.Lock()
			if c, ok := sh.eng.(*core.CAP); ok {
				total += c.CachedMessages()
			}
			sh.mu.Unlock()
		}
		return float64(total)
	})
	reg.GaugeFunc("caar_engine_shards", "Engine shard count.", func() float64 {
		return float64(len(e.shards))
	})
	reg.CounterFunc("caar_engine_posts_delivered_total", "Posts fanned out to follower windows.", func() uint64 {
		return e.postsDelivered.Load()
	})
	reg.CounterFunc("caar_engine_checkins_total", "User location check-ins.", func() uint64 {
		return e.checkIns.Load()
	})
	reg.GaugeFunc("caar_snapshot_age_seconds", "Seconds since the last successful snapshot write (-1 before the first).", func() float64 {
		last := m.lastSnapshotUnix.Load()
		if last == 0 {
			return -1
		}
		return time.Since(time.Unix(last, 0)).Seconds()
	})
	return m
}

// stage records one facade-side pipeline span and returns the start point
// of the next stage, sharing a single monotonic clock read between them.
func (m *engineMetrics) stage(h *obs.Histogram, start time.Time) time.Time {
	now := time.Now()
	h.ObserveDuration(now.Sub(start))
	return now
}

// recordCoreStage routes the stages measured under the shard lock into the
// shared per-stage histogram family. The per-shard core.StageRecorder
// closure (engine.go) calls it, adding the candidate counts to the active
// request trace when one is attached to the shard's sink.
func (m *engineMetrics) recordCoreStage(s core.Stage, d time.Duration) {
	switch s {
	case core.StageRetrieve:
		m.stageRetrieve.ObserveDuration(d)
	case core.StageScore:
		m.stageScore.ObserveDuration(d)
	case core.StageTopK:
		m.stageTopK.ObserveDuration(d)
	}
}

// stageHist maps a span's stage name to its latency histogram (nil for
// unknown stages).
func (m *engineMetrics) stageHist(stage string) *obs.Histogram {
	switch stage {
	case "lookup":
		return m.stageLookup
	case "retrieve":
		return m.stageRetrieve
	case "score":
		return m.stageScore
	case "topk":
		return m.stageTopK
	case "map":
		return m.stageMap
	case "policy":
		return m.stagePolicy
	}
	return nil
}

// exemplarRefresh bounds how often ordinary sampled traces rewrite the
// histogram exemplars. Exemplars only need freshness on a human timescale;
// without the gate, full-rate tracing would take seven shared histogram
// mutexes on every request, and a preempted holder stalls the whole
// serving path — a pure p99 tax for no operator benefit.
const exemplarRefresh = 100 * time.Millisecond

// attachExemplars links a captured trace into the aggregate view: each
// stage span becomes the exemplar of the bucket it landed in, and the
// end-to-end duration annotates the recommend histogram — so the slowest
// buckets on a dashboard carry the ID of a trace that actually hit them.
// Interesting captures (slow, errored, explained) always attach; routine
// head-sampled ones refresh the exemplars at most every exemplarRefresh.
func (m *engineMetrics) attachExemplars(tr *trace.Trace) {
	if tr.CaptureReason == trace.ReasonSampled {
		now := time.Now().UnixNano()
		last := m.lastExemplarNano.Load()
		if now-last < int64(exemplarRefresh) || !m.lastExemplarNano.CompareAndSwap(last, now) {
			return
		}
	}
	for _, sp := range tr.Spans {
		if h := m.stageHist(sp.Stage); h != nil {
			h.AttachExemplar(sp.DurationSeconds, tr.ID)
		}
	}
	m.recommendSeconds.AttachExemplar(tr.DurationSeconds, tr.ID)
}

// vectorize wraps a text-pipeline call with its latency span.
func (e *Engine) vectorize(text string) textproc.SparseVector {
	start := time.Now()
	vec := e.pipeline.Vector(text)
	e.obsm.vectorizeSeconds.ObserveDuration(time.Since(start))
	return vec
}

// snapshotResult records the outcome of one SaveSnapshot for the snapshot
// metrics and the readiness probe.
func (m *engineMetrics) snapshotResult(start time.Time, size int64, err error) {
	m.snapshotSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		m.snapshotErrors.Inc()
		m.lastSnapshotErr.Store(err.Error())
		return
	}
	m.lastSnapshotErr.Store("")
	m.lastSnapshotUnix.Store(time.Now().Unix())
	m.snapshotSize.Set(float64(size))
}

// Metrics returns the engine's observability registry — the one passed in
// Config.Metrics, or the engine's private registry otherwise. Expose it
// over HTTP with obs.Registry.Handler or server.WithMetrics.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// HealthProblems reports conditions that should mark the deployment
// degraded (not dead): currently a failed last snapshot write. The server's
// readiness probe aggregates these.
func (e *Engine) HealthProblems() []string {
	if s, _ := e.obsm.lastSnapshotErr.Load().(string); s != "" {
		return []string{"snapshot: last write failed: " + s}
	}
	return nil
}
