// Geocampaign: geographic targeting and budget pacing. Two cafés run
// campaigns targeting different districts; a user moving between districts
// sees recommendations follow their location, and a paced budget stops an
// over-served campaign mid-flight.
//
//	go run ./examples/geocampaign
package main

import (
	"fmt"
	"log"
	"time"

	caar "caar"
)

func main() {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.AddUser("maya"); err != nil {
		log.Fatal(err)
	}

	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	morning := day.Add(9 * time.Hour)

	// Campaign flight: the whole day; pacing releases budget pro rata, so at
	// noon half of the 1.0 budget (= one 0.3 impression plus change) is out.
	if err := eng.AddCampaign("river-espresso-launch", 1.0, day, day.Add(24*time.Hour)); err != nil {
		log.Fatal(err)
	}

	ads := []caar.Ad{
		{
			ID: "river-espresso", Text: "espresso tasting flight by the river",
			Campaign: "river-espresso-launch", Bid: 0.3,
			Target: &caar.Target{Lat: 1.0, Lng: 1.0, RadiusKm: 25},
		},
		{
			ID: "hill-coffee", Text: "pour over coffee with a hill view",
			Bid: 0.3, Target: &caar.Target{Lat: 3.0, Lng: 3.0, RadiusKm: 25},
		},
		{ID: "vpn-anywhere", Text: "vpn service works anywhere", Bid: 0.2},
	}
	for _, ad := range ads {
		if err := eng.AddAd(ad); err != nil {
			log.Fatal(err)
		}
	}

	// Maya reads about coffee — both cafés are textually relevant.
	if err := eng.Post("maya", "craving a really good espresso or pour over coffee", morning); err != nil {
		log.Fatal(err)
	}

	show := func(where string) {
		recs, err := eng.Recommend("maya", 3, morning)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", where)
		for _, r := range recs {
			fmt.Printf("  %-16s score=%.4f (geo=%.4f)\n", r.AdID, r.Score, r.Geo)
		}
	}

	// Near the river district: river-espresso is in range, hill-coffee not.
	if err := eng.CheckIn("maya", 1.05, 1.05, morning); err != nil {
		log.Fatal(err)
	}
	show("maya near the river (1.05, 1.05)")

	// She moves to the hills: eligibility flips.
	if err := eng.CheckIn("maya", 2.95, 2.95, morning); err != nil {
		log.Fatal(err)
	}
	show("maya in the hills (2.95, 2.95)")

	// Budget pacing: at 12:00, half the flight elapsed → 0.3 released,
	// exactly one 0.3-bid impression can be billed.
	noon := day.Add(12 * time.Hour)
	for i := 1; i <= 2; i++ {
		served, err := eng.ServeImpression("river-espresso", noon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("impression %d of river-espresso at noon: served=%v\n", i, served)
	}

	// Back at the river, the paced-out campaign no longer appears.
	if err := eng.CheckIn("maya", 1.05, 1.05, noon); err != nil {
		log.Fatal(err)
	}
	recs, err := eng.Recommend("maya", 3, noon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after the budget pacing cap, back at the river:")
	for _, r := range recs {
		fmt.Printf("  %-16s score=%.4f\n", r.AdID, r.Score)
	}
}
