// Recovery: durability through snapshots and the event journal. The example
// builds an engine, snapshots its durable state, journals the live traffic
// that follows, simulates a crash, and reconstructs an equivalent engine by
// restoring the snapshot and replaying the journal tail. It then damages the
// journal the two ways real crashes and real disks do — a torn final record
// (power loss mid-append) and a flipped bit inside a record (silent media
// corruption) — and shows journal.Recover truncating to the last valid
// record and resuming.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	caar "caar"
	"caar/journal"
)

func main() {
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	morning := day.Add(9 * time.Hour)

	// ----- phase 1: build the pre-snapshot world ------------------------
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		must(eng.AddUser(u))
	}
	must(eng.Follow("alice", "bob"))
	must(eng.AddCampaign("spring", 100, day, day.Add(48*time.Hour)))
	must(eng.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4}))
	must(eng.AddAd(caar.Ad{ID: "vpn", Text: "fast vpn anywhere", Bid: 0.6}))
	if _, err := eng.ServeImpression("shoes", morning); err != nil {
		log.Fatal(err)
	}

	var snapshot bytes.Buffer
	must(eng.Snapshot(&snapshot))
	fmt.Printf("snapshot taken: %d bytes (users, graph, ads, campaign spend)\n", snapshot.Len())

	// ----- phase 2: journaled live traffic ------------------------------
	var wal bytes.Buffer
	live := journal.NewLogged(eng, journal.NewWriter(&wal))
	must(live.AddUser("carol"))
	must(live.Follow("carol", "bob"))
	must(live.Post("bob", "marathon training with new shoes", morning))
	must(live.CheckIn("carol", 1.5, 1.5, morning))
	fmt.Printf("journal captured %d bytes of post-snapshot traffic\n", wal.Len())

	before, err := live.Recommend("carol", 2, morning.Add(time.Minute))
	must(err)

	// Keep copies of the raw bytes: Restore and Replay drain the buffers,
	// and phases 4-5 damage the journal stream in controlled ways.
	snap := append([]byte(nil), snapshot.Bytes()...)
	full := append([]byte(nil), wal.Bytes()...)

	// ----- phase 3: crash and recover ------------------------------------
	restored, err := caar.Restore(caar.DefaultConfig(), &snapshot)
	must(err)
	stats, err := journal.Replay(&wal, restored)
	must(err)
	fmt.Printf("recovered: snapshot + %d journal entries (%d skipped)\n", stats.Applied, stats.Skipped)

	after, err := restored.Recommend("carol", 2, morning.Add(time.Minute))
	must(err)

	fmt.Println("\nrecommendations for carol before the crash:")
	print(before)
	fmt.Println("recommendations for carol after recovery:")
	print(after)
	if len(before) == len(after) && len(before) > 0 && before[0].AdID == after[0].AdID {
		fmt.Println("\nrecovered engine agrees with the original ✔")
	} else {
		fmt.Println("\nMISMATCH — recovery failed")
	}

	// ----- phase 4: torn tail (crash mid-append) -------------------------
	dir, err := os.MkdirTemp("", "caar-recovery")
	must(err)
	defer os.RemoveAll(dir)

	tornPath := filepath.Join(dir, "torn.log")
	// Keep all but the last 10 bytes: the final record is cut mid-write,
	// exactly what a kill -9 or power loss during Append leaves behind.
	must(os.WriteFile(tornPath, full[:len(full)-10], 0o644))

	f, err := os.OpenFile(tornPath, os.O_RDWR, 0o644)
	must(err)
	eng2, err := caar.Restore(caar.DefaultConfig(), bytes.NewReader(snap))
	must(err)
	rstats, err := journal.Recover(f, eng2)
	must(err)
	fmt.Printf("\ntorn-tail recovery: %d applied, torn=%v, truncated to byte %d (%d bytes discarded)\n",
		rstats.Applied, rstats.Torn, rstats.ValidBytes, rstats.DiscardedBytes)
	// Recover left the file positioned at its (now clean) end: appending
	// resumes on the same handle.
	resumed := journal.NewLogged(eng2, journal.NewFileWriter(f, journal.SyncAlways, 0))
	must(resumed.Post("bob", "back online after the crash", morning.Add(2*time.Hour)))
	must(f.Close())

	// ----- phase 5: bit flip (silent media corruption) -------------------
	flippedPath := filepath.Join(dir, "flipped.log")
	damaged := append([]byte(nil), full...)
	damaged[len(damaged)/2] ^= 0x40 // flip one bit in the middle record
	must(os.WriteFile(flippedPath, damaged, 0o644))

	f, err = os.OpenFile(flippedPath, os.O_RDWR, 0o644)
	must(err)
	eng3, err := caar.Restore(caar.DefaultConfig(), bytes.NewReader(snap))
	must(err)
	rstats, err = journal.Recover(f, eng3)
	must(err)
	must(f.Close())
	fmt.Printf("bit-flip recovery: checksum caught the damage, %d of 4 entries survived, %d bytes discarded\n",
		rstats.Applied, rstats.DiscardedBytes)
	fmt.Println("\ndamaged journals recovered without refusing to start ✔")
}

func print(recs []caar.Recommendation) {
	for i, r := range recs {
		fmt.Printf("  %d. %-8s score=%.4f\n", i+1, r.AdID, r.Score)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
