// Recovery: durability through snapshots and the event journal. The example
// builds an engine, snapshots its durable state, journals the live traffic
// that follows, simulates a crash, and reconstructs an equivalent engine by
// restoring the snapshot and replaying the journal tail.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	caar "caar"
	"caar/journal"
)

func main() {
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	morning := day.Add(9 * time.Hour)

	// ----- phase 1: build the pre-snapshot world ------------------------
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		must(eng.AddUser(u))
	}
	must(eng.Follow("alice", "bob"))
	must(eng.AddCampaign("spring", 100, day, day.Add(48*time.Hour)))
	must(eng.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4}))
	must(eng.AddAd(caar.Ad{ID: "vpn", Text: "fast vpn anywhere", Bid: 0.6}))
	if _, err := eng.ServeImpression("shoes", morning); err != nil {
		log.Fatal(err)
	}

	var snapshot bytes.Buffer
	must(eng.Snapshot(&snapshot))
	fmt.Printf("snapshot taken: %d bytes (users, graph, ads, campaign spend)\n", snapshot.Len())

	// ----- phase 2: journaled live traffic ------------------------------
	var wal bytes.Buffer
	live := journal.NewLogged(eng, journal.NewWriter(&wal))
	must(live.AddUser("carol"))
	must(live.Follow("carol", "bob"))
	must(live.Post("bob", "marathon training with new shoes", morning))
	must(live.CheckIn("carol", 1.5, 1.5, morning))
	fmt.Printf("journal captured %d bytes of post-snapshot traffic\n", wal.Len())

	before, err := live.Recommend("carol", 2, morning.Add(time.Minute))
	must(err)

	// ----- phase 3: crash and recover ------------------------------------
	restored, err := caar.Restore(caar.DefaultConfig(), &snapshot)
	must(err)
	stats, err := journal.Replay(&wal, restored)
	must(err)
	fmt.Printf("recovered: snapshot + %d journal entries (%d skipped)\n", stats.Applied, stats.Skipped)

	after, err := restored.Recommend("carol", 2, morning.Add(time.Minute))
	must(err)

	fmt.Println("\nrecommendations for carol before the crash:")
	print(before)
	fmt.Println("recommendations for carol after recovery:")
	print(after)
	if len(before) == len(after) && len(before) > 0 && before[0].AdID == after[0].AdID {
		fmt.Println("\nrecovered engine agrees with the original ✔")
	} else {
		fmt.Println("\nMISMATCH — recovery failed")
	}
}

func print(recs []caar.Recommendation) {
	for i, r := range recs {
		fmt.Printf("  %d. %-8s score=%.4f\n", i+1, r.AdID, r.Score)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
