// Quickstart: the smallest end-to-end use of the caar engine — three users,
// two ads, one post, one recommendation call.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	caar "caar"
)

func main() {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A tiny social graph: alice follows bob.
	for _, u := range []string{"alice", "bob"} {
		if err := eng.AddUser(u); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Follow("alice", "bob"); err != nil {
		log.Fatal(err)
	}

	// Two ads with equal bids: only text relevance can separate them.
	ads := []caar.Ad{
		{ID: "marathon-shoes", Text: "cushioned marathon running shoes, spring sale", Bid: 0.4},
		{ID: "pizza-night", Text: "fresh pizza delivered hot to your door", Bid: 0.4},
	}
	for _, ad := range ads {
		if err := eng.AddAd(ad); err != nil {
			log.Fatal(err)
		}
	}

	// Bob posts; the message lands in alice's feed and becomes her context.
	now := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	if err := eng.Post("bob", "great marathon this morning, my running shoes held up", now); err != nil {
		log.Fatal(err)
	}

	recs, err := eng.Recommend("alice", 2, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations for alice:")
	for i, r := range recs {
		fmt.Printf("  %d. %-16s score=%.4f (text=%.4f geo=%.4f bid=%.4f)\n",
			i+1, r.AdID, r.Score, r.Text, r.Geo, r.Bid)
	}
	// The running-shoes ad wins on textual relevance to what alice is
	// reading right now; the pizza ad scores on bid alone.
}
