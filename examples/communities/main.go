// Communities: the triadic formal concept analysis library on the worked
// example from the TFCA literature — five users, three locations, five topic
// URIs, three time slots. Extracts location-focused and topic-focused
// communities as triadic concepts and matches an "Adidas" advertisement
// context against them.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"strings"

	"caar/fca"
)

func main() {
	// Check-in context: (user, location, slot) — Table 3 of the example.
	checkins, err := fca.NewTriContext(
		[]string{"Tom", "Luke", "Anna", "Sam", "Lia"},
		[]string{"m1", "m2", "m3"},
		[]string{"t1", "t2", "t3"},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range [][3]string{
		{"Tom", "m1", "t1"}, {"Tom", "m1", "t2"}, {"Tom", "m1", "t3"},
		{"Luke", "m2", "t1"}, {"Luke", "m2", "t2"}, {"Luke", "m3", "t3"},
		{"Sam", "m1", "t3"},
		{"Lia", "m2", "t1"}, {"Lia", "m2", "t2"}, {"Lia", "m2", "t3"},
	} {
		if err := checkins.Relate(tr[0], tr[1], tr[2]); err != nil {
			log.Fatal(err)
		}
	}

	// Tweet context: fuzzy (user, topic URI, slot) with annotation
	// confidences — Table 4 of the example.
	tweets, err := fca.NewFuzzyTriContext(
		[]string{"Tom", "Luke", "Anna", "Sam", "Lia"},
		[]string{"URI1", "URI2", "URI3", "URI4", "URI5"},
		[]string{"t1", "t2", "t3"},
	)
	if err != nil {
		log.Fatal(err)
	}
	type fz struct {
		u, uri, t string
		d         float64
	}
	for _, f := range []fz{
		{"Tom", "URI1", "t1", 1.0}, {"Luke", "URI1", "t1", 1.0}, {"Anna", "URI3", "t1", 0.9},
		{"Sam", "URI2", "t1", 1.0}, {"Lia", "URI5", "t1", 1.0},
		{"Tom", "URI1", "t2", 1.0}, {"Luke", "URI4", "t2", 0.8}, {"Anna", "URI3", "t2", 0.8},
		{"Sam", "URI5", "t2", 0.75}, {"Lia", "URI5", "t2", 0.8},
		{"Tom", "URI3", "t3", 0.8}, {"Luke", "URI1", "t3", 1.0}, {"Anna", "URI3", "t3", 1.0},
		{"Sam", "URI2", "t3", 1.0}, {"Lia", "URI5", "t3", 1.0},
	} {
		if err := tweets.Set(f.u, f.uri, f.t, f.d); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("all triadic concepts of the check-in context:")
	for _, tc := range checkins.Concepts() {
		fmt.Printf("  ({%s}, {%s}, {%s})\n",
			strings.Join(checkins.ExtentNames(tc), ", "),
			strings.Join(checkins.IntentNames(tc), ", "),
			strings.Join(checkins.ModusNames(tc), ", "))
	}

	fmt.Println("\nlocation-focused communities at m2:")
	for _, c := range fca.Communities(checkins, "m2") {
		fmt.Printf("  users %v during %v\n", c.Users, c.Slots)
	}

	cut := tweets.AlphaCut(0.6)
	fmt.Println("\ntopic communities for URI1 (α-cut 0.6):")
	for _, c := range fca.Communities(cut, "URI1") {
		fmt.Printf("  users %v during %v\n", c.Users, c.Slots)
	}

	// The advertisement scenario: an Adidas ad shown at location m2,
	// characterized by topic URIs URI1 and URI2.
	recs := fca.Recommend(checkins, cut, fca.AdContext{
		Location: "m2",
		URIs:     []string{"URI1", "URI2"},
	})
	fmt.Println("\ntarget users for the Adidas ad at m2 (URIs: URI1, URI2):")
	for _, r := range recs {
		fmt.Printf("  %s during %v\n", r.User, r.Slots)
	}
}
