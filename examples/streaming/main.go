// Streaming: the high-speed continuous-serving mode. A sharded engine
// ingests a simulated social stream; after every post, the engine pushes
// refreshed top-k recommendations for each affected follower through the
// OnRecommend callback — the paper's "ads with every feed refresh" model.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	caar "caar"
)

// topics the simulated users post about, with matching ads.
var topics = map[string][]string{
	"running": {"morning run felt amazing", "marathon training week four", "new personal best on the trail"},
	"coffee":  {"espresso tasting downtown", "latte art attempt number nine", "single origin beans arrived"},
	"tech":    {"new keyboard day", "debugging all afternoon", "shipped the feature finally"},
}

func main() {
	var pushes atomic.Int64
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	cfg.ContinuousK = 3
	cfg.OnRecommend = func(user string, recs []caar.Recommendation) {
		// In production this callback would attach the ads to the user's
		// feed refresh. Here we count pushes and sample a few for display.
		if n := pushes.Add(1); n <= 3 && len(recs) > 0 {
			fmt.Printf("  push → %-8s top ad %q (score %.3f)\n", user, recs[0].AdID, recs[0].Score)
		}
	}
	eng, err := caar.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	const nUsers = 200
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i)
		if err := eng.AddUser(users[i]); err != nil {
			log.Fatal(err)
		}
	}
	// A few celebrity accounts with big fan-outs plus random edges.
	for i, u := range users {
		for f := 0; f < 6; f++ {
			target := users[rng.Intn(10)] // celebrities
			if rng.Float64() < 0.5 {
				target = users[rng.Intn(nUsers)]
			}
			if target != u {
				eng.Follow(u, target) // duplicates are rejected; fine
			}
		}
		_ = i
	}

	adTexts := map[string]string{
		"trail-shoes":  "trail running shoes grip any terrain marathon ready",
		"espresso-bar": "espresso bar single origin latte downtown",
		"mech-keys":    "mechanical keyboard for debugging marathons",
	}
	for id, text := range adTexts {
		if err := eng.AddAd(caar.Ad{ID: id, Text: text, Bid: 0.3 + rng.Float64()*0.4}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("replaying 2000 posts through the sharded engine…")
	topicNames := []string{"running", "coffee", "tech"}
	now := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	start := time.Now()
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)
		topic := topicNames[rng.Intn(len(topicNames))]
		text := topics[topic][rng.Intn(len(topics[topic]))]
		if err := eng.Post(users[rng.Intn(nUsers)], text, now); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	st := eng.Stats()
	fmt.Printf("\nprocessed %d posts in %v (%.0f posts/sec)\n",
		st.PostsDelivered, elapsed.Round(time.Millisecond),
		float64(st.PostsDelivered)/elapsed.Seconds())
	fmt.Printf("continuous pushes delivered: %d\n", pushes.Load())
	fmt.Printf("engine: %d users, %d ads, %d follow edges, %d shards\n",
		st.Users, st.Ads, st.FollowEdges, st.Shards)
	fmt.Printf("CAP state: %d candidate-buffer entries, %d cached delta lists\n",
		st.CandidateBufferEntries, st.CachedMessages)
}
