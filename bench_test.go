package caar_test

// One benchmark per table/figure of the evaluation grid (DESIGN.md §5).
// Each bench runs the corresponding experiment end-to-end at a reduced
// scale and discards its printed output; run `go run ./cmd/adbench -exp
// <id>` to see the actual rows/series, and raise -scale for full-size runs.

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	caar "caar"
	"caar/internal/experiments"
)

// benchScale keeps a full `go test -bench=.` pass in the minutes range; the
// experiment *shapes* (who wins, how curves bend) are stable across scales.
const benchScale = 0.03

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := &experiments.Runner{Out: io.Discard, Scale: benchScale}
		if err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1WorkloadStats(b *testing.B)   { runExperiment(b, "T1") }
func BenchmarkT2IndexBuild(b *testing.B)      { runExperiment(b, "T2") }
func BenchmarkT3Server(b *testing.B)          { runExperiment(b, "T3") }
func BenchmarkF1ThroughputVsAds(b *testing.B) { runExperiment(b, "F1") }
func BenchmarkF2LatencyVsK(b *testing.B)      { runExperiment(b, "F2") }
func BenchmarkF3WindowSize(b *testing.B)      { runExperiment(b, "F3") }
func BenchmarkF4Fanout(b *testing.B)          { runExperiment(b, "F4") }
func BenchmarkF5Memory(b *testing.B)          { runExperiment(b, "F5") }
func BenchmarkF6Effectiveness(b *testing.B)   { runExperiment(b, "F6") }
func BenchmarkF7Mixing(b *testing.B)          { runExperiment(b, "F7") }
func BenchmarkF8Parallel(b *testing.B)        { runExperiment(b, "F8") }
func BenchmarkF9Ablation(b *testing.B)        { runExperiment(b, "F9") }
func BenchmarkF10Decay(b *testing.B)          { runExperiment(b, "F10") }

// --- facade micro-benchmarks -------------------------------------------

// benchEngine builds a loaded engine for the micro benches.
func benchEngine(b *testing.B, alg caar.Algorithm, users, ads int) (*caar.Engine, []string, time.Time) {
	b.Helper()
	cfg := caar.DefaultConfig()
	cfg.Algorithm = alg
	eng, err := caar.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, users)
	for i := range names {
		names[i] = fmt.Sprintf("u%05d", i)
		if err := eng.AddUser(names[i]); err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i < users; i++ {
		// Star-ish graph: everyone follows user 0 plus a neighbour.
		if err := eng.Follow(names[i], names[0]); err != nil {
			b.Fatal(err)
		}
		if err := eng.Follow(names[i], names[(i+1)%users]); err != nil && i+1 != users {
			b.Fatal(err)
		}
	}
	for i := 0; i < ads; i++ {
		text := fmt.Sprintf("word%04d word%04d word%04d word%04d", i%997, (i*3)%997, (i*7)%997, (i*13)%997)
		if err := eng.AddAd(caar.Ad{ID: fmt.Sprintf("ad%05d", i), Text: text, Bid: 0.1 + float64(i%90)/100}); err != nil {
			b.Fatal(err)
		}
	}
	now := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	// Warm the feeds.
	for i := 0; i < 100; i++ {
		now = now.Add(time.Second)
		if err := eng.Post(names[0], fmt.Sprintf("word%04d word%04d update", i%997, (i*11)%997), now); err != nil {
			b.Fatal(err)
		}
	}
	return eng, names, now
}

// BenchmarkPostCAP measures one post fan-out through the CAP engine
// (500 followers, 5k ads).
func BenchmarkPostCAP(b *testing.B) {
	eng, names, now := benchEngine(b, caar.AlgorithmCAP, 500, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		if err := eng.Post(names[0], "word0100 word0200 word0300 streaming update", now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommend measures one top-5 query per engine (5k ads).
func BenchmarkRecommend(b *testing.B) {
	for _, alg := range []caar.Algorithm{caar.AlgorithmRS, caar.AlgorithmIL, caar.AlgorithmCAP} {
		b.Run(string(alg), func(b *testing.B) {
			eng, names, now := benchEngine(b, alg, 200, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Recommend(names[i%100+1], 5, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecommendParallel measures top-5 queries issued from GOMAXPROCS
// goroutines at once while a writer churns AddAd/RemoveAd — the read path
// must scale instead of serializing on global engine state. (The
// `cmd/adbench -contention` bench measures the same shape at fixed worker
// counts and emits BENCH_PR4.json.)
func BenchmarkRecommendParallel(b *testing.B) {
	eng, names, now := benchEngine(b, caar.AlgorithmCAP, 200, 5000)
	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("churn-%d", i)
			if err := eng.AddAd(caar.Ad{ID: id, Text: "word0042 word0084 flash deal", Bid: 0.2}); err != nil {
				b.Error(err)
				return
			}
			if err := eng.RemoveAd(id); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := eng.Recommend(names[i%100+1], 5, now); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	writerDone.Wait()
}
