package caar

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildSnapshotEngine creates a small engine with users, a campaign and ads.
func buildSnapshotEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	for _, u := range []string{"alice", "bob"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddCampaign("spring", 100, day, day.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSaveLoadSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	e := buildSnapshotEngine(t)
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if !SnapshotExists(path) {
		t.Fatal("SnapshotExists = false after save")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), snapshotTrailer) {
		t.Fatal("saved snapshot missing checksum trailer")
	}

	loaded, src, err := LoadSnapshot(DefaultConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if src != path {
		t.Fatalf("loaded from %s, want primary %s", src, path)
	}
	a, b := e.Stats(), loaded.Stats()
	if a.Users != b.Users || a.Ads != b.Ads || a.FollowEdges != b.FollowEdges {
		t.Fatalf("state mismatch: %+v vs %+v", a, b)
	}

	// No stray temp files survive.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", ent.Name())
		}
	}
}

func TestLoadSnapshotFallsBackToPrevOnCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	e := buildSnapshotEngine(t)
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// Second save: the first becomes .prev, then corrupt the primary.
	if err := e.AddUser("carol"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20 // bit flip inside the payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, src, err := LoadSnapshot(DefaultConfig(), path)
	if err != nil {
		t.Fatalf("fallback to .prev failed: %v", err)
	}
	if src != path+PrevSnapshotSuffix {
		t.Fatalf("loaded from %s, want fallback %s", src, path+PrevSnapshotSuffix)
	}
	// The fallback is the pre-carol state.
	if got := loaded.Stats().Users; got != 2 {
		t.Fatalf("loaded %d users, want 2 (previous good snapshot)", got)
	}
}

func TestLoadSnapshotBothCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(DefaultConfig(), path); err == nil {
		t.Fatal("corrupt snapshot without fallback accepted")
	}
}

func TestLoadSnapshotLegacyWithoutTrailer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	e := buildSnapshotEngine(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, _, err := LoadSnapshot(DefaultConfig(), path)
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if loaded.Stats().Users != 2 {
		t.Fatal("legacy snapshot state lost")
	}
}
