package caar

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTrendingTracksSlotSeparatedTerms(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")

	morningAt := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	afternoonAt := time.Date(2026, 7, 6, 15, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		e.Post("alice", "coffee espresso breakfast", morningAt.Add(time.Duration(i)*time.Minute))
	}
	for i := 0; i < 20; i++ {
		e.Post("alice", "football match highlights", afternoonAt.Add(time.Duration(i)*time.Minute))
	}
	e.Post("alice", "coffee once in the afternoon", afternoonAt.Add(time.Hour))

	morning, err := e.Trending(Morning, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(morning) != 3 {
		t.Fatalf("morning trending = %+v", morning)
	}
	for _, tt := range morning {
		if tt.Term == "footbal" || tt.Term == "match" {
			t.Fatalf("afternoon term in morning slot: %+v", morning)
		}
		if tt.Count != 20 {
			t.Fatalf("morning counts should be 20: %+v", morning)
		}
	}
	afternoon, err := e.Trending(Afternoon, 5)
	if err != nil {
		t.Fatal(err)
	}
	top := afternoon[0]
	if top.Count != 20 {
		t.Fatalf("afternoon top = %+v", afternoon)
	}
	// "coffee" appears once in the afternoon — far below the top terms.
	for i, tt := range afternoon {
		if tt.Term == "coffe" && i < 3 {
			t.Fatalf("rare term ranked too high: %+v", afternoon)
		}
	}
	// Night slot saw nothing.
	night, err := e.Trending(Night, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(night) != 0 {
		t.Fatalf("night trending = %+v", night)
	}
}

func TestTrendingValidation(t *testing.T) {
	e := openEngine(t, testConfig())
	if _, err := e.Trending("brunch", 3); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown slot: %v", err)
	}
	if _, err := e.Trending(Morning, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("k=0: %v", err)
	}
}

// TestTrendingUnresolvableKeyDoesNotUnderfill pins the filter-then-truncate
// order: a sketch key with no vocabulary entry (e.g. a term dropped across
// a vocab restore) must not consume one of the k result slots. The seed
// code truncated to k first and filtered second, so callers received k-1
// terms while resolvable candidates were discarded.
func TestTrendingUnresolvableKeyDoesNotUnderfill(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		e.Post("alice", "coffee espresso breakfast", at.Add(time.Duration(i)*time.Minute))
	}
	// Inject a heavy hitter whose key resolves to no vocabulary term,
	// outranking every real term in the slot.
	sl, _ := Morning.internal()
	e.trends.mu.Lock()
	e.trends.slots[sl].Offer(1<<40, 100, time.Time{})
	e.trends.mu.Unlock()

	terms, err := e.Trending(Morning, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 3 {
		t.Fatalf("trending under-filled: got %d terms (%+v), want 3", len(terms), terms)
	}
	for _, tt := range terms {
		if tt.Term == "" {
			t.Fatalf("unresolvable key leaked into results: %+v", terms)
		}
	}
}

func TestTrendingKClampedToCapacity(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	for i := 0; i < 100; i++ {
		e.Post("alice", fmt.Sprintf("uniqueword%03d trending now", i),
			time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC).Add(time.Duration(i)*time.Second))
	}
	terms, err := e.Trending(Morning, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) > trendCapacity {
		t.Fatalf("trending returned %d terms, cap is %d", len(terms), trendCapacity)
	}
	// The stable terms ("trending", stemmed) dominate.
	if terms[0].Count < 90 {
		t.Fatalf("top term count = %+v", terms[0])
	}
}
