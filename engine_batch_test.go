package caar

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"caar/internal/feed"
)

// TestPostBatchMatchesSequential checks that a PostBatch call leaves the
// engine in the same observable state as the equivalent sequence of Post
// calls: same recommendations, same delivery counters, same trending terms.
func TestPostBatchMatchesSequential(t *testing.T) {
	build := func(t *testing.T) *Engine {
		e := openEngine(t, testConfig())
		for _, u := range []string{"alice", "bob", "carol"} {
			if err := e.AddUser(u); err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range [][2]string{{"alice", "bob"}, {"carol", "bob"}, {"alice", "carol"}} {
			if err := e.Follow(f[0], f[1]); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.AddAd(Ad{ID: "shoes", Text: "marathon running shoes with cushioned sole", Bid: 0.4}); err != nil {
			t.Fatal(err)
		}
		if err := e.AddAd(Ad{ID: "pizza", Text: "fresh pizza delivered hot tonight", Bid: 0.4}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	posts := []PostRequest{
		{Author: "bob", Text: "great marathon today, my running shoes held up", At: morning},
		{Author: "carol", Text: "pizza night after the marathon", At: morning.Add(time.Minute)},
		{Author: "bob", Text: "cushioned sole makes all the difference", At: morning.Add(2 * time.Minute)},
	}

	seq := build(t)
	for _, p := range posts {
		if err := seq.Post(p.Author, p.Text, p.At); err != nil {
			t.Fatal(err)
		}
	}
	bat := build(t)
	for i, err := range bat.PostBatch(posts) {
		if err != nil {
			t.Fatalf("batch item %d: %v", i, err)
		}
	}

	for _, u := range []string{"alice", "bob", "carol"} {
		want, err := seq.Recommend(u, 2, morning.Add(3*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		got, err := bat.Recommend(u, 2, morning.Add(3*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("user %s: batch returned %d recs, sequential %d", u, len(got), len(want))
		}
		for i := range got {
			if got[i].AdID != want[i].AdID {
				t.Errorf("user %s rec %d: batch %s, sequential %s", u, i, got[i].AdID, want[i].AdID)
			}
		}
	}
	if s, b := seq.Stats().PostsDelivered, bat.Stats().PostsDelivered; s != b {
		t.Errorf("posts delivered: sequential %d, batch %d", s, b)
	}
}

// TestPostBatchPerItemErrors checks that an unknown author inside a batch
// fails only its own slot: the other posts still deliver.
func TestPostBatchPerItemErrors(t *testing.T) {
	e := openEngine(t, testConfig())
	for _, u := range []string{"alice", "bob"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	errs := e.PostBatch([]PostRequest{
		{Author: "bob", Text: "first post", At: morning},
		{Author: "nobody", Text: "ghost post", At: morning},
		{Author: "bob", Text: "second post", At: morning},
	})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid batch items failed: %v, %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrUnknownUser) {
		t.Fatalf("unknown author: got %v, want ErrUnknownUser", errs[1])
	}
	if got := e.Stats().PostsDelivered; got != 2 {
		t.Fatalf("posts delivered = %d, want 2", got)
	}
}

// TestCheckInBatchPerItemErrors checks per-item error reporting and that the
// batched form updates location context exactly like the single-item form.
func TestCheckInBatchPerItemErrors(t *testing.T) {
	e := openEngine(t, testConfig())
	if err := e.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	errs := e.CheckInBatch([]CheckInRequest{
		{User: "alice", Lat: 1.5, Lng: 1.5, At: morning},
		{User: "nobody", Lat: 1.5, Lng: 1.5, At: morning},
		{User: "alice", Lat: 99, Lng: 0, At: morning}, // outside the region
	})
	if errs[0] != nil {
		t.Fatalf("valid check-in failed: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrUnknownUser) {
		t.Fatalf("unknown user: got %v, want ErrUnknownUser", errs[1])
	}
	if errs[2] == nil {
		t.Fatal("out-of-region check-in accepted")
	}
	if got := e.Stats().CheckIns; got != 1 {
		t.Fatalf("check-ins = %d, want 1", got)
	}
}

// TestFailedDeliveryLeavesNoTrendingTelemetry is the regression test for the
// telemetry-ordering bug: Engine.Post used to record trending terms (and
// hot-key term telemetry) before delivery, so a failed fan-out polluted
// Trending with phantom counts for a post that no feed ever received.
func TestFailedDeliveryLeavesNoTrendingTelemetry(t *testing.T) {
	e := openEngine(t, testConfig())
	for _, u := range []string{"bob", "carol"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	// Control: a successful post's terms must show up in Trending, proving
	// the text pipeline keeps the marker words we assert on below.
	if err := e.Post("bob", "zanzibar zanzibar zanzibar", morning); err != nil {
		t.Fatal(err)
	}
	if !trendingHas(t, e, "zanzibar") {
		t.Fatal("control term missing from Trending; marker words do not survive the text pipeline")
	}

	// Wire a follower into the graph that no shard knows about, so carol's
	// fan-out fails validation inside the core engine.
	ghost := feed.UserID(1 << 20)
	e.graph.AddUser(ghost)
	carol, err := e.lookupUser("carol")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.graph.Follow(ghost, carol); err != nil {
		t.Fatal(err)
	}

	before := e.Stats().PostsDelivered
	if err := e.Post("carol", "quokka quokka quokka", morning); err == nil {
		t.Fatal("post with unregistered follower succeeded, want delivery error")
	}
	if trendingHas(t, e, "quokka") {
		t.Fatal("failed delivery left phantom term counts in Trending")
	}
	if got := e.Stats().PostsDelivered; got != before {
		t.Fatalf("failed delivery counted as delivered: %d -> %d", before, got)
	}
}

func trendingHas(t *testing.T, e *Engine, term string) bool {
	t.Helper()
	terms, err := e.Trending(Morning, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range terms {
		if tt.Term == term {
			return true
		}
	}
	return false
}

// TestSlowOnRecommendDoesNotHoldShardLock is the regression test for the
// continuous-delivery callback bug: OnRecommend used to run while holding
// the shard lock, so one slow consumer stalled the shard's entire fan-out
// and every writer queued behind it. The callback must run outside the
// lock: while it blocks, a check-in on the same shard must still complete.
func TestSlowOnRecommendDoesNotHoldShardLock(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Shards = 1
	cfg.ContinuousK = 2
	cfg.OnRecommend = func(user string, recs []Recommendation) {
		entered <- struct{}{}
		<-release
	}
	e := openEngine(t, cfg)
	for _, u := range []string{"alice", "bob"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "shoes", Text: "marathon running shoes", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}

	postDone := make(chan error, 1)
	go func() {
		postDone <- e.Post("bob", "marathon running shoes forever", morning)
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("OnRecommend never invoked")
	}

	// The callback is now blocked. A writer on the same (only) shard must
	// not be stuck behind it.
	ciDone := make(chan error, 1)
	go func() {
		ciDone <- e.CheckIn("alice", 1.5, 1.5, morning)
	}()
	select {
	case err := <-ciDone:
		if err != nil {
			t.Fatalf("check-in failed: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("check-in blocked behind a slow OnRecommend callback: callback still holds the shard lock")
	}

	// Unblock and drain the remaining callbacks so Post can finish.
	go func() {
		for range entered {
		}
	}()
	close(release)
	if err := <-postDone; err != nil {
		t.Fatalf("post failed: %v", err)
	}
}

// TestPostBatchContinuousOncePerUser checks the batched continuous-delivery
// contract: one OnRecommend callback per affected user per batch, not one
// per message.
func TestPostBatchContinuousOncePerUser(t *testing.T) {
	var mu = make(chan struct{}, 1)
	calls := map[string]int{}
	cfg := testConfig()
	cfg.Shards = 1
	cfg.ContinuousK = 2
	cfg.OnRecommend = func(user string, recs []Recommendation) {
		mu <- struct{}{}
		calls[user]++
		<-mu
	}
	e := openEngine(t, cfg)
	for _, u := range []string{"alice", "bob"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "shoes", Text: "marathon running shoes", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	var batch []PostRequest
	for i := 0; i < 5; i++ {
		batch = append(batch, PostRequest{Author: "bob", Text: fmt.Sprintf("running update %d", i), At: morning})
	}
	for i, err := range e.PostBatch(batch) {
		if err != nil {
			t.Fatalf("batch item %d: %v", i, err)
		}
	}
	for _, u := range []string{"alice", "bob"} {
		if calls[u] != 1 {
			t.Errorf("user %s got %d continuous callbacks for one batch, want 1", u, calls[u])
		}
	}
}
