package caar

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// policyFixture builds an engine with one user whose context matches many
// ads, some grouped under one campaign.
func policyFixture(t *testing.T) *Engine {
	t.Helper()
	e := openEngine(t, testConfig())
	if err := e.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddCampaign("mega", 1000, morning.Add(-24*time.Hour), morning.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Five campaign ads with descending bids, plus two independents.
	for i := 0; i < 5; i++ {
		if err := e.AddAd(Ad{
			ID:       fmt.Sprintf("mega-%d", i),
			Text:     "sneaker marathon running sale",
			Campaign: "mega",
			Bid:      0.9 - float64(i)*0.1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.AddAd(Ad{ID: "indie-1", Text: "sneaker cleaning kit", Bid: 0.3})
	e.AddAd(Ad{ID: "indie-2", Text: "marathon photo prints", Bid: 0.2})
	e.Post("alice", "sneaker marathon this weekend", morning)
	return e
}

func TestRecommendWithPolicyZeroPolicyEqualsRecommend(t *testing.T) {
	e := policyFixture(t)
	plain, err := e.Recommend("alice", 4, morning)
	if err != nil {
		t.Fatal(err)
	}
	withPolicy, err := e.RecommendWithPolicy("alice", 4, morning, ServingPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(withPolicy) {
		t.Fatalf("zero policy differs: %v vs %v", plain, withPolicy)
	}
	for i := range plain {
		if plain[i].AdID != withPolicy[i].AdID {
			t.Fatalf("rank %d: %s vs %s", i, plain[i].AdID, withPolicy[i].AdID)
		}
	}
}

func TestCampaignDiversity(t *testing.T) {
	e := policyFixture(t)
	recs, err := e.RecommendWithPolicy("alice", 4, morning, ServingPolicy{MaxPerCampaign: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("slate = %+v", recs)
	}
	mega := 0
	for _, r := range recs {
		if e.dir.Load().campaignOf(r.AdID) == "mega" {
			mega++
		}
	}
	if mega != 2 {
		t.Fatalf("campaign cap violated: %d mega ads in %+v", mega, recs)
	}
	// The independents must have been pulled up into the slate.
	found := map[string]bool{}
	for _, r := range recs {
		found[r.AdID] = true
	}
	if !found["indie-1"] || !found["indie-2"] {
		t.Fatalf("diversity did not surface independents: %+v", recs)
	}
	// Ranking within the slate stays score-descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatalf("slate not score-ordered: %+v", recs)
		}
	}
}

func TestFrequencyCap(t *testing.T) {
	e := policyFixture(t)
	policy := ServingPolicy{FrequencyCap: 2, FrequencyWindow: time.Hour}

	top := func(at time.Time) string {
		recs, err := e.RecommendWithPolicy("alice", 1, at, policy)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatal("empty slate")
		}
		return recs[0].AdID
	}

	first := top(morning)
	// Two impressions: still under cap after one.
	if ok, err := e.RecordImpressionTo("alice", first, morning); err != nil || !ok {
		t.Fatalf("impression 1: %v %v", ok, err)
	}
	if got := top(morning.Add(time.Second)); got != first {
		t.Fatalf("after 1 impression: top = %s, want %s", got, first)
	}
	if ok, err := e.RecordImpressionTo("alice", first, morning.Add(time.Minute)); err != nil || !ok {
		t.Fatalf("impression 2: %v %v", ok, err)
	}
	// Cap reached: the ad disappears from alice's slate...
	if got := top(morning.Add(2 * time.Minute)); got == first {
		t.Fatalf("frequency cap not applied: still %s", got)
	}
	// ...but other users are unaffected.
	e.AddUser("bob")
	e.Post("bob", "sneaker marathon chatter", morning.Add(time.Minute))
	recs, err := e.RecommendWithPolicy("bob", 1, morning.Add(2*time.Minute), policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].AdID != first {
		t.Fatalf("cap leaked across users: %+v", recs)
	}
	// The cap expires with the window.
	later := morning.Add(2 * time.Hour)
	e.Post("alice", "sneaker marathon again", later)
	recs, err = e.RecommendWithPolicy("alice", 1, later, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].AdID != first {
		t.Fatalf("cap did not expire: %+v", recs)
	}
}

func TestRecordImpressionToErrors(t *testing.T) {
	e := policyFixture(t)
	if _, err := e.RecordImpressionTo("ghost", "indie-1", morning); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("ghost user: %v", err)
	}
	if _, err := e.RecordImpressionTo("alice", "nope", morning); !errors.Is(err, ErrUnknownAd) {
		t.Fatalf("ghost ad: %v", err)
	}
}

func TestFrequencyCapOnlyCountsBillableImpressions(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	// Tight budget: one impression only.
	e.AddCampaign("tiny", 1.0, morning.Add(-time.Hour), morning.Add(time.Hour))
	e.AddAd(Ad{ID: "x", Text: "sneaker sale", Campaign: "tiny", Bid: 0.5})
	e.Post("alice", "sneaker shopping", morning)

	if ok, _ := e.RecordImpressionTo("alice", "x", morning); !ok {
		t.Fatal("first impression should bill")
	}
	// Second attempt is paced out: not billable, must NOT count toward the
	// frequency cap.
	if ok, _ := e.RecordImpressionTo("alice", "x", morning); ok {
		t.Fatal("second impression should be paced out")
	}
	if got := e.impressions.countSince("alice", "x", morning, time.Hour); got != 1 {
		t.Fatalf("unbillable impression recorded: count = %d", got)
	}
}

func TestImpressionLogPruning(t *testing.T) {
	l := newImpressionLog()
	base := morning
	l.record("u", "a", base)
	l.record("u", "a", base.Add(time.Minute))
	if got := l.countSince("u", "a", base.Add(2*time.Minute), time.Hour); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	// Far in the future everything ages out and the maps empty themselves.
	if got := l.countSince("u", "a", base.Add(3*time.Hour), time.Hour); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	if len(l.byUA) != 0 {
		t.Fatalf("log not pruned: %v", l.byUA)
	}
	if got := l.countSince("ghost", "a", base, time.Hour); got != 0 {
		t.Fatal("unknown user count should be 0")
	}
}
