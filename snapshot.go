package caar

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// Snapshot persistence serializes the engine's durable state — users, the
// follower graph, campaigns (including spend), ads (exact keyword vectors),
// and the text pipeline's vocabulary statistics — as versioned JSON.
//
// Feed windows and candidate buffers are deliberately NOT persisted: they
// hold ephemeral context that decays within hours and rebuilds from the live
// stream within one window of traffic. A restored engine therefore returns
// bid/geo-ranked recommendations until fresh posts arrive, exactly like an
// engine after a quiet period.

// snapshotVersion is bumped on breaking format changes.
const snapshotVersion = 1

type snapshotFile struct {
	Version   int                `json:"version"`
	Algorithm Algorithm          `json:"algorithm"`
	Vocab     snapshotVocab      `json:"vocab"`
	Users     []string           `json:"users"` // handles in internal-ID order
	Edges     [][2]uint32        `json:"edges"` // (follower, followee) internal IDs
	Campaigns []snapshotCampaign `json:"campaigns"`
	Ads       []snapshotAd       `json:"ads"`
}

type snapshotVocab struct {
	Terms []string `json:"terms"`
	DF    []int    `json:"df"`
	Docs  int      `json:"docs"`
}

type snapshotCampaign struct {
	Name   string    `json:"name"`
	Budget float64   `json:"budget"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Spent  float64   `json:"spent"`
}

type snapshotAd struct {
	ID       string             `json:"id"` // external name
	Campaign string             `json:"campaign,omitempty"`
	Bid      float64            `json:"bid"`
	Global   bool               `json:"global"`
	Lat      float64            `json:"lat,omitempty"`
	Lng      float64            `json:"lng,omitempty"`
	RadiusKm float64            `json:"radius_km,omitempty"`
	Slots    []string           `json:"slots"`
	Terms    map[string]float64 `json:"terms"` // term string → weight (exact vector)
}

// Snapshot writes the engine's durable state to w. Concurrent mutations are
// excluded for the duration of the write.
func (e *Engine) Snapshot(w io.Writer) error {
	// Quiesce: take every shard lock plus the facade lock so the state is a
	// consistent cut.
	for _, sh := range e.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	sf := snapshotFile{Version: snapshotVersion, Algorithm: e.Algorithm()}
	sf.Vocab.Terms, sf.Vocab.DF, sf.Vocab.Docs = e.pipeline.Vocab.Snapshot()
	sf.Users = append([]string(nil), e.names...)

	for id := range e.names {
		poster := feed.UserID(id)
		for _, follower := range e.graph.Followers(poster) {
			sf.Edges = append(sf.Edges, [2]uint32{uint32(follower), uint32(poster)})
		}
	}

	e.store.ForEachCampaign(func(c *adstore.Campaign) {
		sf.Campaigns = append(sf.Campaigns, snapshotCampaign{
			Name: c.Name, Budget: c.Budget, Start: c.Start, End: c.End, Spent: c.Spent(),
		})
	})

	var adErr error
	e.store.ForEach(func(a *adstore.Ad) {
		name, ok := e.adNames[a.ID]
		if !ok {
			return
		}
		sa := snapshotAd{
			ID:       name,
			Campaign: a.Campaign,
			Bid:      a.Bid,
			Global:   a.Global,
			Terms:    make(map[string]float64, len(a.Vec)),
		}
		if !a.Global {
			sa.Lat, sa.Lng, sa.RadiusKm = a.Target.Center.Lat, a.Target.Center.Lng, a.Target.RadiusKm
		}
		for _, sl := range a.Slots.Slots() {
			sa.Slots = append(sa.Slots, sl.String())
		}
		for termID, weight := range a.Vec {
			term := e.pipeline.Vocab.Term(termID)
			if term == "" {
				adErr = fmt.Errorf("caar: snapshot: ad %q references unknown term %d", name, termID)
				return
			}
			sa.Terms[term] = weight
		}
		sf.Ads = append(sf.Ads, sa)
	})
	if adErr != nil {
		return adErr
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(sf); err != nil {
		return fmt.Errorf("caar: snapshot encode: %w", err)
	}
	return nil
}

// Restore opens a fresh engine from cfg and loads a snapshot into it. The
// snapshot's algorithm is informational; cfg.Algorithm decides the engine
// actually built (so a snapshot taken with CAP can be reopened with RS for
// debugging).
func Restore(cfg Config, r io.Reader) (*Engine, error) {
	var sf snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("caar: snapshot decode: %w", err)
	}
	if sf.Version != snapshotVersion {
		return nil, fmt.Errorf("caar: snapshot version %d not supported (want %d)", sf.Version, snapshotVersion)
	}
	e, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.pipeline.Vocab.Restore(sf.Vocab.Terms, sf.Vocab.DF, sf.Vocab.Docs); err != nil {
		return nil, err
	}
	for _, handle := range sf.Users {
		if err := e.AddUser(handle); err != nil {
			return nil, fmt.Errorf("caar: snapshot user %q: %w", handle, err)
		}
	}
	for _, edge := range sf.Edges {
		if int(edge[0]) >= len(sf.Users) || int(edge[1]) >= len(sf.Users) {
			return nil, fmt.Errorf("caar: snapshot edge %v references unknown user", edge)
		}
		if err := e.graph.Follow(feed.UserID(edge[0]), feed.UserID(edge[1])); err != nil {
			return nil, fmt.Errorf("caar: snapshot edge %v: %w", edge, err)
		}
	}
	for _, sc := range sf.Campaigns {
		c, err := adstore.NewCampaign(sc.Name, sc.Budget, sc.Start, sc.End)
		if err != nil {
			return nil, fmt.Errorf("caar: snapshot campaign %q: %w", sc.Name, err)
		}
		if err := c.SetSpent(sc.Spent); err != nil {
			return nil, fmt.Errorf("caar: snapshot campaign %q: %w", sc.Name, err)
		}
		if err := e.store.AddCampaign(c); err != nil {
			return nil, err
		}
	}
	for _, sa := range sf.Ads {
		if err := e.restoreAd(sa); err != nil {
			return nil, fmt.Errorf("caar: snapshot ad %q: %w", sa.ID, err)
		}
	}
	return e, nil
}

// restoreAd re-registers one ad from its snapshot record, bypassing the text
// pipeline: the exact keyword vector is re-interned term by term.
func (e *Engine) restoreAd(sa snapshotAd) error {
	internal := &adstore.Ad{
		Campaign: sa.Campaign,
		Bid:      sa.Bid,
		Global:   sa.Global,
		Vec:      make(textproc.SparseVector, len(sa.Terms)),
	}
	for term, weight := range sa.Terms {
		internal.Vec[e.pipeline.Vocab.Intern(term)] = weight
	}
	if !sa.Global {
		internal.Target = geo.Circle{
			Center:   geo.Point{Lat: sa.Lat, Lng: sa.Lng},
			RadiusKm: sa.RadiusKm,
		}
	}
	for _, name := range sa.Slots {
		sl, ok := Slot(name).internal()
		if !ok {
			return fmt.Errorf("unknown slot %q", name)
		}
		internal.Slots |= timeslot.NewSet(sl)
	}
	if len(sa.Slots) == 0 {
		internal.Slots = timeslot.AllSlots
	}

	e.mu.Lock()
	if _, dup := e.adIDs[sa.ID]; dup {
		e.mu.Unlock()
		return fmt.Errorf("%w: duplicate in snapshot", ErrDuplicate)
	}
	internal.ID = e.nextAd
	e.nextAd++
	e.adIDs[sa.ID] = internal.ID
	e.adNames[internal.ID] = sa.ID
	e.mu.Unlock()

	if err := internal.Validate(); err != nil {
		e.unmapAd(sa.ID, internal.ID)
		return err
	}
	if err := e.store.Add(internal); err != nil {
		e.unmapAd(sa.ID, internal.ID)
		return err
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.eng.RegisterAd(internal)
		sh.mu.Unlock()
	}
	return nil
}
