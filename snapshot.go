package caar

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"caar/internal/adstore"
	"caar/internal/faultinject"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// Crash points on the snapshot publish path, consulted through the
// faultinject registry (one atomic load each when disarmed). The soak
// harness arms them to kill the process at the two moments a buggy
// save protocol would lose or corrupt a snapshot.
const (
	// CrashSnapshotPreFsync fires after the temp file is written but before
	// its fsync: the bytes may still be only in the page cache.
	CrashSnapshotPreFsync = "snapshot.pre-fsync"
	// CrashSnapshotPreRename fires after the temp file is durable but
	// before any rename: the snapshot exists under its temp name only.
	CrashSnapshotPreRename = "snapshot.post-fsync-pre-rename"
)

// Snapshot persistence serializes the engine's durable state — users, the
// follower graph, campaigns (including spend), ads (exact keyword vectors),
// and the text pipeline's vocabulary statistics — as versioned JSON.
//
// Feed windows and candidate buffers are deliberately NOT persisted: they
// hold ephemeral context that decays within hours and rebuilds from the live
// stream within one window of traffic. A restored engine therefore returns
// bid/geo-ranked recommendations until fresh posts arrive, exactly like an
// engine after a quiet period.

// snapshotVersion is bumped on breaking format changes.
const snapshotVersion = 1

type snapshotFile struct {
	Version   int                `json:"version"`
	Algorithm Algorithm          `json:"algorithm"`
	Vocab     snapshotVocab      `json:"vocab"`
	Users     []string           `json:"users"` // handles in internal-ID order
	Edges     [][2]uint32        `json:"edges"` // (follower, followee) internal IDs
	Campaigns []snapshotCampaign `json:"campaigns"`
	Ads       []snapshotAd       `json:"ads"`
}

type snapshotVocab struct {
	Terms []string `json:"terms"`
	DF    []int    `json:"df"`
	Docs  int      `json:"docs"`
}

type snapshotCampaign struct {
	Name   string    `json:"name"`
	Budget float64   `json:"budget"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Spent  float64   `json:"spent"`
}

type snapshotAd struct {
	ID       string             `json:"id"` // external name
	Campaign string             `json:"campaign,omitempty"`
	Bid      float64            `json:"bid"`
	Global   bool               `json:"global"`
	Lat      float64            `json:"lat,omitempty"`
	Lng      float64            `json:"lng,omitempty"`
	RadiusKm float64            `json:"radius_km,omitempty"`
	Slots    []string           `json:"slots"`
	Terms    map[string]float64 `json:"terms"` // term string → weight (exact vector)
}

// Snapshot writes the engine's durable state to w. Concurrent mutations are
// excluded for the duration of the write.
func (e *Engine) Snapshot(w io.Writer) error {
	// Quiesce: take the directory writer mutex (freezing the published
	// snapshot — lock order: dirMu before shard locks) plus every shard
	// lock so the state is a consistent cut. Readers keep serving off the
	// frozen directory throughout.
	e.dirMu.Lock()
	defer e.dirMu.Unlock()
	defer faultinject.WatchLock("engine.dirMu")()
	for _, sh := range e.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	d := e.dir.Load()

	sf := snapshotFile{Version: snapshotVersion, Algorithm: e.Algorithm()}
	sf.Vocab.Terms, sf.Vocab.DF, sf.Vocab.Docs = e.pipeline.Vocab.Snapshot()
	sf.Users = append([]string(nil), d.names...)

	for id := range d.names {
		poster := feed.UserID(id)
		for _, follower := range e.graph.Followers(poster) {
			sf.Edges = append(sf.Edges, [2]uint32{uint32(follower), uint32(poster)})
		}
	}

	e.store.ForEachCampaign(func(c *adstore.Campaign) {
		sf.Campaigns = append(sf.Campaigns, snapshotCampaign{
			Name: c.Name, Budget: c.Budget, Start: c.Start, End: c.End, Spent: c.Spent(),
		})
	})

	var adErr error
	e.store.ForEach(func(a *adstore.Ad) {
		ref, ok := d.ads[a.ID]
		if !ok {
			return
		}
		name := ref.name
		sa := snapshotAd{
			ID:       name,
			Campaign: a.Campaign,
			Bid:      a.Bid,
			Global:   a.Global,
			Terms:    make(map[string]float64, len(a.Vec)),
		}
		if !a.Global {
			sa.Lat, sa.Lng, sa.RadiusKm = a.Target.Center.Lat, a.Target.Center.Lng, a.Target.RadiusKm
		}
		for _, sl := range a.Slots.Slots() {
			sa.Slots = append(sa.Slots, sl.String())
		}
		for termID, weight := range a.Vec {
			term := e.pipeline.Vocab.Term(termID)
			if term == "" {
				adErr = fmt.Errorf("caar: snapshot: ad %q references unknown term %d", name, termID)
				return
			}
			sa.Terms[term] = weight
		}
		sf.Ads = append(sf.Ads, sa)
	})
	if adErr != nil {
		return adErr
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(sf); err != nil {
		return fmt.Errorf("caar: snapshot encode: %w", err)
	}
	return nil
}

// snapshotTrailer prefixes the checksum line SaveSnapshot appends after the
// JSON document. json.Decoder stops at the end of the JSON value, so the
// trailer is invisible to plain Restore.
const snapshotTrailer = "//caar-snapshot-crc32c "

// PrevSnapshotSuffix is appended to the previous good snapshot's path when
// SaveSnapshot replaces it; LoadSnapshot falls back to that file when the
// primary fails verification.
const PrevSnapshotSuffix = ".prev"

// SaveSnapshot atomically writes the engine's durable state to path:
// serialize to a temp file in the same directory, append a CRC32C trailer,
// fsync, then rename over path. Any existing snapshot at path is first
// preserved as path+".prev" so a verification failure on load can fall back
// to the previous good state.
func (e *Engine) SaveSnapshot(path string) error {
	start := time.Now()
	size, err := e.saveSnapshot(path)
	e.obsm.snapshotResult(start, size, err)
	return err
}

// saveSnapshot does the work of SaveSnapshot and reports the bytes written.
func (e *Engine) saveSnapshot(path string) (int64, error) {
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		return 0, err
	}
	crc := crc32.Checksum(buf.Bytes(), crc32.MakeTable(crc32.Castagnoli))
	fmt.Fprintf(&buf, "%s%08x\n", snapshotTrailer, crc)
	size := int64(buf.Len())

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("caar: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		cleanup()
		return 0, fmt.Errorf("caar: snapshot write: %w", err)
	}
	faultinject.CrashPoint(CrashSnapshotPreFsync)
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("caar: snapshot fsync: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return 0, fmt.Errorf("caar: snapshot chmod: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("caar: snapshot close: %w", err)
	}
	faultinject.CrashPoint(CrashSnapshotPreRename)
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+PrevSnapshotSuffix); err != nil {
			os.Remove(tmpName)
			return 0, fmt.Errorf("caar: snapshot rotate previous: %w", err)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("caar: snapshot rename: %w", err)
	}
	// Persist the renames themselves: the file's bytes are fsynced, but the
	// name pointing at them lives in the directory. An OS crash before the
	// directory hits disk can resurrect the old snapshot (or no snapshot)
	// next to a journal that was reset on the strength of this one — so a
	// failure here is a durability error, not best-effort noise.
	if err := fsyncDir(dir); err != nil {
		return 0, fmt.Errorf("caar: snapshot publish: %w", err)
	}
	return size, nil
}

// fsyncDir makes directory-entry operations (the snapshot renames) durable.
// Kept local rather than shared with journal.FsyncDir because journal
// imports caar, not the other way around.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsync dir %s: %w", dir, err)
	}
	return nil
}

// LoadSnapshot reads a snapshot written by SaveSnapshot, verifying its
// checksum, and restores an engine from it. When the primary file is
// missing, corrupt, or fails verification it falls back to the previous
// good snapshot at path+".prev"; only if both fail does it return an error.
// The returned path names the file that actually loaded, so operators can
// tell a fallback from a normal restore. Snapshots without a checksum
// trailer (written by Snapshot directly) load unverified.
func LoadSnapshot(cfg Config, path string) (*Engine, string, error) {
	eng, primaryErr := loadVerified(cfg, path)
	if primaryErr == nil {
		return eng, path, nil
	}
	prev := path + PrevSnapshotSuffix
	eng, prevErr := loadVerified(cfg, prev)
	if prevErr == nil {
		return eng, prev, nil
	}
	return nil, "", fmt.Errorf("caar: snapshot %s: %w (previous: %v)", path, primaryErr, prevErr)
}

// loadVerified reads one snapshot file, checks the trailer checksum when
// present, and restores from the payload.
func loadVerified(cfg Config, path string) (*Engine, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload := raw
	if i := bytes.LastIndex(raw, []byte(snapshotTrailer)); i >= 0 {
		payload = raw[:i]
		field := bytes.TrimSpace(raw[i+len(snapshotTrailer):])
		want, err := strconv.ParseUint(string(field), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bad checksum trailer %q", field)
		}
		if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); got != uint32(want) {
			return nil, fmt.Errorf("checksum mismatch (want %08x, got %08x)", want, got)
		}
	}
	return Restore(cfg, bytes.NewReader(payload))
}

// SnapshotExists reports whether a loadable snapshot (primary or previous)
// is present at path.
func SnapshotExists(path string) bool {
	if _, err := os.Stat(path); err == nil {
		return true
	}
	_, err := os.Stat(path + PrevSnapshotSuffix)
	return err == nil
}

// Restore opens a fresh engine from cfg and loads a snapshot into it. The
// snapshot's algorithm is informational; cfg.Algorithm decides the engine
// actually built (so a snapshot taken with CAP can be reopened with RS for
// debugging).
func Restore(cfg Config, r io.Reader) (*Engine, error) {
	var sf snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sf); err != nil {
		return nil, fmt.Errorf("caar: snapshot decode: %w", err)
	}
	if sf.Version != snapshotVersion {
		return nil, fmt.Errorf("caar: snapshot version %d not supported (want %d)", sf.Version, snapshotVersion)
	}
	e, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.pipeline.Vocab.Restore(sf.Vocab.Terms, sf.Vocab.DF, sf.Vocab.Docs); err != nil {
		return nil, err
	}
	for _, handle := range sf.Users {
		if err := e.AddUser(handle); err != nil {
			return nil, fmt.Errorf("caar: snapshot user %q: %w", handle, err)
		}
	}
	for _, edge := range sf.Edges {
		if int(edge[0]) >= len(sf.Users) || int(edge[1]) >= len(sf.Users) {
			return nil, fmt.Errorf("caar: snapshot edge %v references unknown user", edge)
		}
		if err := e.graph.Follow(feed.UserID(edge[0]), feed.UserID(edge[1])); err != nil {
			return nil, fmt.Errorf("caar: snapshot edge %v: %w", edge, err)
		}
	}
	for _, sc := range sf.Campaigns {
		c, err := adstore.NewCampaign(sc.Name, sc.Budget, sc.Start, sc.End)
		if err != nil {
			return nil, fmt.Errorf("caar: snapshot campaign %q: %w", sc.Name, err)
		}
		if err := c.SetSpent(sc.Spent); err != nil {
			return nil, fmt.Errorf("caar: snapshot campaign %q: %w", sc.Name, err)
		}
		if err := e.store.AddCampaign(c); err != nil {
			return nil, err
		}
	}
	for _, sa := range sf.Ads {
		if err := e.restoreAd(sa); err != nil {
			return nil, fmt.Errorf("caar: snapshot ad %q: %w", sa.ID, err)
		}
	}
	return e, nil
}

// restoreAd re-registers one ad from its snapshot record, bypassing the text
// pipeline: the exact keyword vector is re-interned term by term.
func (e *Engine) restoreAd(sa snapshotAd) error {
	internal := &adstore.Ad{
		Campaign: sa.Campaign,
		Bid:      sa.Bid,
		Global:   sa.Global,
		Vec:      make(textproc.SparseVector, len(sa.Terms)),
	}
	for term, weight := range sa.Terms {
		internal.Vec[e.pipeline.Vocab.Intern(term)] = weight
	}
	if !sa.Global {
		internal.Target = geo.Circle{
			Center:   geo.Point{Lat: sa.Lat, Lng: sa.Lng},
			RadiusKm: sa.RadiusKm,
		}
	}
	for _, name := range sa.Slots {
		sl, ok := Slot(name).internal()
		if !ok {
			return fmt.Errorf("unknown slot %q", name)
		}
		internal.Slots |= timeslot.NewSet(sl)
	}
	if len(sa.Slots) == 0 {
		internal.Slots = timeslot.AllSlots
	}

	// The same publish-then-populate path as AddAd: one directory swap per
	// ad keeps every intermediate view a restore could serve consistent.
	var err error
	if internal.ID, err = e.mapAd(sa.ID, sa.Campaign); err != nil {
		return fmt.Errorf("duplicate in snapshot: %w", err)
	}

	if err := internal.Validate(); err != nil {
		e.unmapAd(sa.ID, internal.ID)
		return err
	}
	if err := e.store.Add(internal); err != nil {
		e.unmapAd(sa.ID, internal.ID)
		return err
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.eng.RegisterAd(internal)
		sh.mu.Unlock()
	}
	return nil
}
