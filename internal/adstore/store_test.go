package adstore

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestStoreAddGetRemove(t *testing.T) {
	s := NewStore()
	a := validAd(1)
	if err := s.Add(a); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add(validAd(1)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate Add = %v", err)
	}
	if got := s.Get(1); got != a {
		t.Fatal("Get returned wrong ad")
	}
	if s.Get(2) != nil {
		t.Fatal("Get of absent ad should be nil")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := s.Remove(1); !errors.Is(err, ErrUnknownAd) {
		t.Fatalf("double Remove = %v", err)
	}
	if s.Len() != 0 || s.Get(1) != nil {
		t.Fatal("ad still present after Remove")
	}
}

func TestStoreRejectsInvalidAd(t *testing.T) {
	s := NewStore()
	bad := validAd(1)
	bad.Bid = 0
	if err := s.Add(bad); err == nil {
		t.Fatal("invalid ad accepted")
	}
}

func TestStoreUnknownCampaignRejected(t *testing.T) {
	s := NewStore()
	a := validAd(1)
	a.Campaign = "nope"
	if err := s.Add(a); err == nil {
		t.Fatal("ad with unknown campaign accepted")
	}
}

func TestStoreForEachDeterministicOrder(t *testing.T) {
	s := NewStore()
	for id := AdID(1); id <= 5; id++ {
		if err := s.Add(validAd(id)); err != nil {
			t.Fatal(err)
		}
	}
	s.Remove(3)
	var got []AdID
	s.ForEach(func(a *Ad) { got = append(got, a.ID) })
	want := []AdID{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	// Second pass (after tombstone compaction) must agree.
	var again []AdID
	s.ForEach(func(a *Ad) { again = append(again, a.ID) })
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("second ForEach order %v, want %v", again, want)
		}
	}
}

func TestStoreChargeImpression(t *testing.T) {
	s := NewStore()
	end := flightStart.Add(time.Hour)
	c, _ := NewCampaign("sale", 1.0, flightStart, end)
	if err := s.AddCampaign(c); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCampaign(c); err == nil {
		t.Fatal("duplicate campaign accepted")
	}
	a := validAd(1)
	a.Campaign = "sale"
	a.Bid = 0.5
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}

	// Mid-flight: 0.5 of the 1.0 budget is released — exactly one impression.
	mid := flightStart.Add(30 * time.Minute)
	if !s.HasBudget(1, mid) {
		t.Fatal("should have budget mid-flight")
	}
	ok, err := s.ChargeImpression(1, mid)
	if err != nil || !ok {
		t.Fatalf("first impression: ok=%v err=%v", ok, err)
	}
	ok, err = s.ChargeImpression(1, mid)
	if err != nil || ok {
		t.Fatalf("second impression should be paced out: ok=%v err=%v", ok, err)
	}
	if s.HasBudget(1, mid) {
		t.Fatal("HasBudget should be false when paced out")
	}
	// Campaign-less ads are free.
	free := validAd(2)
	if err := s.Add(free); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ok, err := s.ChargeImpression(2, mid)
		if err != nil || !ok {
			t.Fatalf("free ad impression %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, err := s.ChargeImpression(99, mid); err == nil {
		t.Fatal("charging unknown ad should error")
	}
}

func TestStoreConcurrentReadsAndCharges(t *testing.T) {
	s := NewStore()
	end := flightStart.Add(time.Hour)
	c, _ := NewCampaign("c", 50, flightStart, end)
	s.AddCampaign(c)
	a := validAd(1)
	a.Campaign = "c"
	a.Bid = 0.001
	s.Add(a)

	var wg sync.WaitGroup
	now := flightStart.Add(30 * time.Minute)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Get(1)
				s.HasBudget(1, now)
				s.ChargeImpression(1, now)
			}
		}()
	}
	wg.Wait()
	if c.Spent() > c.allowedAt(now)+1e-9 {
		t.Fatalf("concurrent charging exceeded pacing cap: %v > %v", c.Spent(), c.allowedAt(now))
	}
}
