package adstore

import (
	"errors"
	"testing"
	"time"

	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

var flightStart = time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)

func validAd(id AdID) *Ad {
	return &Ad{
		ID:     id,
		Vec:    textproc.SparseVector{1: 0.6, 2: 0.8},
		Target: geo.Circle{Center: geo.Point{Lat: 1.35, Lng: 103.82}, RadiusKm: 25},
		Slots:  timeslot.AllSlots,
		Bid:    0.5,
	}
}

func TestAdValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Ad)
		wantErr error
	}{
		{"valid", func(a *Ad) {}, nil},
		{"empty vec", func(a *Ad) { a.Vec = textproc.SparseVector{} }, ErrEmptyVec},
		{"zero bid", func(a *Ad) { a.Bid = 0 }, ErrBadBid},
		{"negative bid", func(a *Ad) { a.Bid = -0.1 }, ErrBadBid},
		{"bid above one", func(a *Ad) { a.Bid = 1.01 }, ErrBadBid},
		{"no radius", func(a *Ad) { a.Target.RadiusKm = 0 }, ErrBadTarget},
		{"bad center", func(a *Ad) { a.Target.Center.Lat = 95 }, geo.ErrInvalidCoordinate},
		{"no slots", func(a *Ad) { a.Slots = 0 }, ErrNoSlots},
		{"global ignores target", func(a *Ad) { a.Global = true; a.Target = geo.Circle{} }, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := validAd(1)
			tt.mutate(a)
			err := a.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestAdEligible(t *testing.T) {
	a := validAd(1)
	a.Slots = timeslot.NewSet(timeslot.Morning)
	inside := geo.Point{Lat: 1.35, Lng: 103.82}
	outside := geo.Point{Lat: 51.5, Lng: -0.12}
	if !a.Eligible(inside, true, timeslot.Morning) {
		t.Error("in-range in-slot should be eligible")
	}
	if a.Eligible(inside, true, timeslot.Afternoon) {
		t.Error("wrong slot should be ineligible")
	}
	if a.Eligible(outside, true, timeslot.Morning) {
		t.Error("out-of-range should be ineligible")
	}
	if a.Eligible(inside, false, timeslot.Morning) {
		t.Error("unknown location should be ineligible for geo-targeted ad")
	}
	g := validAd(2)
	g.Global = true
	g.Target = geo.Circle{}
	if !g.Eligible(outside, true, timeslot.Morning) || !g.Eligible(geo.Point{}, false, timeslot.Night) {
		t.Error("global ad should be eligible anywhere, any known slot")
	}
}

func TestAdGeoScore(t *testing.T) {
	a := validAd(1)
	if got := a.GeoScore(a.Target.Center, true); got != 1 {
		t.Errorf("GeoScore at center = %v", got)
	}
	if got := a.GeoScore(geo.Point{Lat: 51.5, Lng: -0.12}, true); got != 0 {
		t.Errorf("GeoScore far away = %v", got)
	}
	if got := a.GeoScore(a.Target.Center, false); got != 0 {
		t.Errorf("GeoScore unknown loc = %v", got)
	}
	g := validAd(2)
	g.Global = true
	if got := g.GeoScore(geo.Point{Lat: 51.5, Lng: -0.12}, true); got != 1 {
		t.Errorf("global GeoScore = %v", got)
	}
}

func TestCampaignValidation(t *testing.T) {
	end := flightStart.Add(24 * time.Hour)
	if _, err := NewCampaign("c", 0, flightStart, end); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewCampaign("c", 10, end, flightStart); err == nil {
		t.Error("inverted flight accepted")
	}
	if _, err := NewCampaign("c", 10, flightStart, flightStart); err == nil {
		t.Error("zero-length flight accepted")
	}
}

func TestCampaignPacing(t *testing.T) {
	end := flightStart.Add(10 * time.Hour)
	c, err := NewCampaign("c", 100, flightStart, end)
	if err != nil {
		t.Fatal(err)
	}
	// Before flight: nothing released.
	if c.CanSpend(0.01, flightStart.Add(-time.Minute)) {
		t.Error("spend before flight allowed")
	}
	// At 10% of flight: 10 released.
	h1 := flightStart.Add(time.Hour)
	if !c.CanSpend(10, h1) {
		t.Error("pacing should release 10 after 1/10 of flight")
	}
	if c.CanSpend(10.5, h1) {
		t.Error("pacing released too much")
	}
	if err := c.Spend(10, h1); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	if err := c.Spend(1, h1); err == nil {
		t.Error("overspend past pacing cap allowed")
	}
	if c.Spent() != 10 || c.Remaining() != 90 {
		t.Fatalf("Spent=%v Remaining=%v", c.Spent(), c.Remaining())
	}
	// After flight end the full budget is available.
	if !c.CanSpend(90, end.Add(time.Hour)) {
		t.Error("full budget should be available after flight")
	}
	if c.CanSpend(91, end.Add(time.Hour)) {
		t.Error("total budget exceeded")
	}
	if err := c.Spend(-1, h1); err == nil {
		t.Error("negative spend allowed")
	}
}

func TestCampaignNeverOverspends(t *testing.T) {
	end := flightStart.Add(time.Hour)
	c, _ := NewCampaign("c", 5, flightStart, end)
	now := flightStart
	served := 0
	for i := 0; i < 10000; i++ {
		now = now.Add(400 * time.Millisecond)
		if c.CanSpend(0.01, now) {
			if err := c.Spend(0.01, now); err != nil {
				t.Fatalf("Spend after CanSpend: %v", err)
			}
			served++
		}
	}
	if c.Spent() > c.Budget+1e-9 {
		t.Fatalf("overspent: %v > %v", c.Spent(), c.Budget)
	}
	if served == 0 {
		t.Fatal("nothing served")
	}
}
