package adstore

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Store is the registry of live ads and their campaigns. It is safe for
// concurrent use; the indexes in internal/index subscribe to its mutations
// through the engine, which serializes writes.
type Store struct {
	mu        sync.RWMutex
	ads       map[AdID]*Ad
	campaigns map[string]*Campaign
	order     []AdID // insertion order for deterministic scans
	dirty     bool   // order contains tombstones
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		ads:       make(map[AdID]*Ad),
		campaigns: make(map[string]*Campaign),
	}
}

// AddCampaign registers a campaign. Re-registering an existing name is an
// error.
func (s *Store) AddCampaign(c *Campaign) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.campaigns[c.Name]; ok {
		return fmt.Errorf("%w: %q already exists", ErrDuplicateCampaign, c.Name)
	}
	s.campaigns[c.Name] = c
	return nil
}

// Campaign returns a campaign by name, or nil.
func (s *Store) Campaign(name string) *Campaign {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.campaigns[name]
}

// ForEachCampaign calls fn for every campaign in name order. fn must not
// mutate the store.
func (s *Store) ForEachCampaign(fn func(*Campaign)) {
	s.mu.RLock()
	names := make([]string, 0, len(s.campaigns))
	for name := range s.campaigns {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		if c := s.Campaign(name); c != nil {
			fn(c)
		}
	}
}

// Add validates and inserts an ad. The ad's campaign, when named, must exist.
func (s *Store) Add(a *Ad) error {
	if err := a.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ads[a.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, a.ID)
	}
	if a.Campaign != "" {
		if _, ok := s.campaigns[a.Campaign]; !ok {
			return fmt.Errorf("%w: ad %d references %q", ErrUnknownCampaign, a.ID, a.Campaign)
		}
	}
	s.ads[a.ID] = a
	s.order = append(s.order, a.ID)
	return nil
}

// Remove deletes an ad.
func (s *Store) Remove(id AdID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ads[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownAd, id)
	}
	delete(s.ads, id)
	s.dirty = true
	return nil
}

// Get returns an ad by ID, or nil when absent. The returned ad is shared;
// callers must not mutate it.
func (s *Store) Get(id AdID) *Ad {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ads[id]
}

// Len returns the number of live ads.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ads)
}

// ForEach calls fn for every live ad in insertion order. fn must not mutate
// the store. Iteration order is deterministic for reproducible experiments.
func (s *Store) ForEach(fn func(*Ad)) {
	s.mu.Lock()
	if s.dirty {
		live := s.order[:0]
		for _, id := range s.order {
			if _, ok := s.ads[id]; ok {
				live = append(live, id)
			}
		}
		s.order = live
		s.dirty = false
	}
	order := make([]AdID, len(s.order))
	copy(order, s.order)
	ads := s.ads
	s.mu.Unlock()

	for _, id := range order {
		s.mu.RLock()
		a := ads[id]
		s.mu.RUnlock()
		if a != nil {
			fn(a)
		}
	}
}

// ChargeImpression attempts to bill one impression of ad id at time t. Ads
// without a campaign are always servable and free. It reports whether the
// impression may be served.
func (s *Store) ChargeImpression(id AdID, t time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.ads[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownAd, id)
	}
	if a.Campaign == "" {
		return true, nil
	}
	c := s.campaigns[a.Campaign]
	if c == nil {
		return false, fmt.Errorf("adstore: ad %d campaign %q vanished", id, a.Campaign)
	}
	if !c.CanSpend(a.Bid, t) {
		return false, nil
	}
	return true, c.Spend(a.Bid, t)
}

// HasBudget reports whether the ad could currently be billed, without
// spending.
func (s *Store) HasBudget(id AdID, t time.Time) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.ads[id]
	if !ok {
		return false
	}
	if a.Campaign == "" {
		return true
	}
	c := s.campaigns[a.Campaign]
	return c != nil && c.CanSpend(a.Bid, t)
}
