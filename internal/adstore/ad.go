// Package adstore manages the advertiser side of the system: ads with
// weighted keyword profiles, geographic and time-slot targeting, bids, and
// campaign budgets with smooth pacing.
package adstore

import (
	"errors"
	"fmt"
	"time"

	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// AdID identifies an ad.
type AdID int64

// Ad is one advertisement after semantic processing.
type Ad struct {
	ID       AdID
	Campaign string // owning campaign; empty = unbudgeted (always servable)

	// Vec is the L2-normalized keyword profile extracted from the ad copy.
	Vec textproc.SparseVector

	// Target is the geographic target circle. Global ads (no geographic
	// restriction) set Global and leave Target zero.
	Target geo.Circle
	Global bool

	// Slots is the time-of-day targeting mask.
	Slots timeslot.Set

	// Bid is the advertiser's bid per impression, in [0, 1] after
	// normalization by the store's configured maximum bid.
	Bid float64
}

// Validation errors.
var (
	ErrEmptyVec    = errors.New("adstore: ad keyword vector is empty")
	ErrBadBid      = errors.New("adstore: bid must be in (0, 1]")
	ErrBadTarget   = errors.New("adstore: non-global ad needs a positive target radius")
	ErrNoSlots     = errors.New("adstore: ad targets no time slots")
	ErrDuplicateID = errors.New("adstore: duplicate ad ID")
	ErrUnknownAd   = errors.New("adstore: unknown ad")

	ErrUnknownCampaign   = errors.New("adstore: unknown campaign")
	ErrDuplicateCampaign = errors.New("adstore: duplicate campaign")
)

// Validate checks structural invariants of the ad.
func (a *Ad) Validate() error {
	if len(a.Vec) == 0 {
		return fmt.Errorf("ad %d: %w", a.ID, ErrEmptyVec)
	}
	if a.Bid <= 0 || a.Bid > 1 {
		return fmt.Errorf("ad %d: %w (got %v)", a.ID, ErrBadBid, a.Bid)
	}
	if !a.Global {
		if a.Target.RadiusKm <= 0 {
			return fmt.Errorf("ad %d: %w", a.ID, ErrBadTarget)
		}
		if err := a.Target.Center.Validate(); err != nil {
			return fmt.Errorf("ad %d: %w", a.ID, err)
		}
	}
	if a.Slots == 0 {
		return fmt.Errorf("ad %d: %w", a.ID, ErrNoSlots)
	}
	return nil
}

// Eligible reports whether the ad may be shown to a user at location loc
// (hasLoc false = unknown location) during slot sl. Unknown locations match
// only global ads: showing a geo-targeted ad without knowing the user is in
// range wastes the advertiser's budget.
func (a *Ad) Eligible(loc geo.Point, hasLoc bool, sl timeslot.Slot) bool {
	if !a.Slots.Contains(sl) {
		return false
	}
	if a.Global {
		return true
	}
	if !hasLoc {
		return false
	}
	return a.Target.Contains(loc)
}

// GeoScore returns the spatial proximity component in [0, 1]: 1 for global
// ads (no locality preference), else the linear distance decay inside the
// target circle.
func (a *Ad) GeoScore(loc geo.Point, hasLoc bool) float64 {
	if a.Global {
		return 1
	}
	if !hasLoc {
		return 0
	}
	return a.Target.Proximity(loc)
}

// Campaign tracks one advertiser budget with smooth pacing: spend is capped
// to the fraction of the flight window that has elapsed, so a campaign
// cannot exhaust its whole budget in the first minutes of a flight.
type Campaign struct {
	Name   string
	Budget float64   // total spend allowed over the flight
	Start  time.Time // flight start
	End    time.Time // flight end
	spent  float64
}

// NewCampaign creates a campaign. End must be after Start; Budget positive.
func NewCampaign(name string, budget float64, start, end time.Time) (*Campaign, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("adstore: campaign %q budget %v must be positive", name, budget)
	}
	if !end.After(start) {
		return nil, fmt.Errorf("adstore: campaign %q flight end %v not after start %v", name, end, start)
	}
	return &Campaign{Name: name, Budget: budget, Start: start, End: end}, nil
}

// Spent returns the amount already spent.
func (c *Campaign) Spent() float64 { return c.spent }

// SetSpent overwrites the spent amount — used when restoring a campaign
// from a snapshot. Amounts outside [0, Budget] are rejected.
func (c *Campaign) SetSpent(amount float64) error {
	if amount < 0 || amount > c.Budget {
		return fmt.Errorf("adstore: restored spend %v outside [0, %v]", amount, c.Budget)
	}
	c.spent = amount
	return nil
}

// Remaining returns the unspent budget.
func (c *Campaign) Remaining() float64 { return c.Budget - c.spent }

// allowedAt returns the pacing cap: the budget fraction released by time t.
// Before the flight nothing is released; after the flight everything is.
func (c *Campaign) allowedAt(t time.Time) float64 {
	if !t.After(c.Start) {
		return 0
	}
	if !t.Before(c.End) {
		return c.Budget
	}
	frac := t.Sub(c.Start).Seconds() / c.End.Sub(c.Start).Seconds()
	return c.Budget * frac
}

// CanSpend reports whether an impression costing amount fits both the total
// budget and the pacing cap at time t.
func (c *Campaign) CanSpend(amount float64, t time.Time) bool {
	return c.spent+amount <= c.allowedAt(t)+1e-12
}

// Spend records an impression cost. It returns an error when the spend would
// exceed the pacing cap, leaving the campaign unchanged.
func (c *Campaign) Spend(amount float64, t time.Time) error {
	if amount < 0 {
		return fmt.Errorf("adstore: negative spend %v", amount)
	}
	if !c.CanSpend(amount, t) {
		return fmt.Errorf("adstore: campaign %q pacing cap reached at %v (spent %.4f, cap %.4f)",
			c.Name, t, c.spent, c.allowedAt(t))
	}
	c.spent += amount
	return nil
}
