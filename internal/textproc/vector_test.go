package textproc

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDotAndCosine(t *testing.T) {
	v := SparseVector{1: 1, 2: 2}
	w := SparseVector{2: 3, 3: 4}
	if got := v.Dot(w); !almostEqual(got, 6) {
		t.Fatalf("Dot = %v, want 6", got)
	}
	if got := w.Dot(v); !almostEqual(got, 6) {
		t.Fatalf("Dot not symmetric: %v", got)
	}
	// cosine of identical vectors is 1
	if got := v.Cosine(v); !almostEqual(got, 1) {
		t.Fatalf("Cosine(v,v) = %v, want 1", got)
	}
	// orthogonal vectors
	if got := (SparseVector{1: 1}).Cosine(SparseVector{2: 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", got)
	}
	// empty vectors
	if got := (SparseVector{}).Cosine(v); got != 0 {
		t.Fatalf("empty cosine = %v, want 0", got)
	}
}

func TestAddSubScaled(t *testing.T) {
	v := SparseVector{1: 1}
	v.AddScaled(SparseVector{1: 2, 2: 3}, 0.5)
	want := SparseVector{1: 2, 2: 1.5}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("AddScaled = %v, want %v", v, want)
	}
	v.SubScaled(SparseVector{1: 2, 2: 3}, 0.5)
	// entry 2 should be deleted (returns to zero), entry 1 back to original
	if len(v) != 1 || !almostEqual(v[1], 1) {
		t.Fatalf("SubScaled = %v, want {1:1}", v)
	}
}

func TestSubScaledDeletesZeroEntries(t *testing.T) {
	v := SparseVector{7: 0.3}
	v.SubScaled(SparseVector{7: 0.3}, 1)
	if len(v) != 0 {
		t.Fatalf("zeroed entry not deleted: %v", v)
	}
}

func TestL2Normalize(t *testing.T) {
	v := SparseVector{1: 3, 2: 4}
	v.L2Normalize()
	if !almostEqual(v.Norm(), 1) {
		t.Fatalf("norm after normalize = %v", v.Norm())
	}
	if !almostEqual(v[1], 0.6) || !almostEqual(v[2], 0.8) {
		t.Fatalf("normalized = %v", v)
	}
	empty := SparseVector{}
	empty.L2Normalize() // must not panic or corrupt
	if len(empty) != 0 {
		t.Fatal("empty vector changed")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := SparseVector{1: 1}
	c := v.Clone()
	c[1] = 99
	c[2] = 5
	if v[1] != 1 || len(v) != 1 {
		t.Fatalf("clone mutation leaked into original: %v", v)
	}
}

func TestTopTerms(t *testing.T) {
	v := SparseVector{1: 0.5, 2: 0.9, 3: 0.5, 4: 0.1}
	got := v.TopTerms(3)
	want := []WeightedTerm{{2, 0.9}, {1, 0.5}, {3, 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopTerms = %v, want %v", got, want)
	}
	if got := v.TopTerms(10); len(got) != 4 {
		t.Fatalf("TopTerms(10) len = %d, want 4", len(got))
	}
	if got := (SparseVector{}).TopTerms(5); len(got) != 0 {
		t.Fatalf("empty TopTerms = %v", got)
	}
}

// quickVec converts testing/quick raw input into a small sparse vector.
func quickVec(raw map[uint8]float64) SparseVector {
	v := SparseVector{}
	for k, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		// keep weights bounded so dot products stay finite
		v[TermID(k)] = math.Mod(x, 100)
	}
	return v
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(a, b map[uint8]float64) bool {
		v, w := quickVec(a), quickVec(b)
		c := v.Cosine(w)
		return c >= -1-1e-9 && c <= 1+1e-9 && almostEqual(c, w.Cosine(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	f := func(a, b, c map[uint8]float64) bool {
		u, v, w := quickVec(a), quickVec(b), quickVec(c)
		// ⟨u+v, w⟩ == ⟨u,w⟩ + ⟨v,w⟩
		sum := u.Clone()
		sum.AddScaled(v, 1)
		lhs := sum.Dot(w)
		rhs := u.Dot(w) + v.Dot(w)
		return math.Abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(a, b map[uint8]float64) bool {
		v, w := quickVec(a), quickVec(b)
		orig := v.Clone()
		v.AddScaled(w, 0.7)
		v.SubScaled(w, 0.7)
		// After round trip every original entry is back (within float noise)
		for id, x := range orig {
			if math.Abs(v[id]-x) > 1e-6 {
				return false
			}
		}
		for id, x := range v {
			if math.Abs(orig[id]-x) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
