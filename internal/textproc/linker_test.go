package textproc

import (
	"math"
	"reflect"
	"testing"
)

func testConcepts() []Concept {
	return []Concept{
		{
			URI:      "http://dbpedia.org/resource/Volleyball",
			Surfaces: []string{"volleyball", "beach volleyball"},
			Prior:    1.0,
			Context:  []string{"team", "match", "court"},
		},
		{
			URI:      "http://dbpedia.org/resource/Apple_Inc.",
			Surfaces: []string{"apple"},
			Prior:    0.8,
			Context:  []string{"iphone", "mac", "tech"},
		},
		{
			URI:      "http://dbpedia.org/resource/Apple",
			Surfaces: []string{"apple"},
			Prior:    0.9,
			Context:  []string{"fruit", "pie", "orchard"},
		},
		{
			URI:      "http://dbpedia.org/resource/The_CW",
			Surfaces: []string{"the cw", "cw"},
			Prior:    0.7,
		},
	}
}

func mustLinker(t *testing.T) *Linker {
	t.Helper()
	l, err := NewLinker(testConcepts())
	if err != nil {
		t.Fatalf("NewLinker: %v", err)
	}
	return l
}

func TestLinkerValidation(t *testing.T) {
	if _, err := NewLinker([]Concept{{URI: "", Surfaces: []string{"x"}}}); err == nil {
		t.Error("empty URI accepted")
	}
	if _, err := NewLinker([]Concept{{URI: "u"}}); err == nil {
		t.Error("no surfaces accepted")
	}
	if _, err := NewLinker([]Concept{{URI: "u", Surfaces: []string{"!!"}}}); err == nil {
		t.Error("empty normalized surface accepted")
	}
	if _, err := NewLinker([]Concept{{URI: "u", Surfaces: []string{"x"}, Prior: 1.5}}); err == nil {
		t.Error("prior > 1 accepted")
	}
}

func TestAnnotateSimpleMention(t *testing.T) {
	l := mustLinker(t)
	anns := l.Annotate("the volleyball match was great")
	if len(anns) != 1 {
		t.Fatalf("annotations = %v, want 1", anns)
	}
	a := anns[0]
	if a.URI != "http://dbpedia.org/resource/Volleyball" {
		t.Fatalf("URI = %q", a.URI)
	}
	// context: "match" present (1 of 3 cues) → score = 1.0 × (0.5 + 0.5/3)
	want := 0.5 + 0.5/3.0
	if math.Abs(a.Score-want) > 1e-9 {
		t.Fatalf("score = %v, want %v", a.Score, want)
	}
	if a.Surface != "volleyball" {
		t.Fatalf("surface = %q", a.Surface)
	}
}

func TestAnnotateLongestMatchWins(t *testing.T) {
	l := mustLinker(t)
	anns := l.Annotate("playing beach volleyball today")
	if len(anns) != 1 || anns[0].Surface != "beach volleyball" {
		t.Fatalf("annotations = %v, want single beach volleyball mention", anns)
	}
}

func TestAnnotateDisambiguationByContext(t *testing.T) {
	l := mustLinker(t)
	tech := l.Annotate("new apple iphone out today")
	if len(tech) != 1 || tech[0].URI != "http://dbpedia.org/resource/Apple_Inc." {
		t.Fatalf("tech context: %v", tech)
	}
	fruit := l.Annotate("grandma's apple pie recipe")
	if len(fruit) != 1 || fruit[0].URI != "http://dbpedia.org/resource/Apple" {
		t.Fatalf("fruit context: %v", fruit)
	}
	// With no disambiguating cues the higher prior (fruit, 0.9) wins.
	bare := l.Annotate("an apple a day")
	if len(bare) != 1 || bare[0].URI != "http://dbpedia.org/resource/Apple" {
		t.Fatalf("bare mention: %v", bare)
	}
	if math.Abs(bare[0].Score-0.45) > 1e-9 { // 0.9 × 0.5
		t.Fatalf("bare score = %v, want 0.45", bare[0].Score)
	}
}

func TestAnnotateMultipleMentionsInOrder(t *testing.T) {
	l := mustLinker(t)
	anns := l.Annotate("volleyball on the cw tonight")
	if len(anns) != 2 {
		t.Fatalf("annotations = %v, want 2", anns)
	}
	if anns[0].URI != "http://dbpedia.org/resource/Volleyball" {
		t.Fatalf("first = %v", anns[0])
	}
	if anns[1].URI != "http://dbpedia.org/resource/The_CW" {
		t.Fatalf("second = %v", anns[1])
	}
}

func TestAnnotateNoMentions(t *testing.T) {
	l := mustLinker(t)
	if anns := l.Annotate("nothing relevant here"); anns != nil {
		t.Fatalf("got %v, want nil", anns)
	}
	if anns := l.Annotate(""); anns != nil {
		t.Fatalf("empty text: %v", anns)
	}
}

func TestURIsDedup(t *testing.T) {
	anns := []Annotation{
		{URI: "u1", Score: 0.4},
		{URI: "u1", Score: 0.9},
		{URI: "u2", Score: 0.6},
	}
	got := URIs(anns)
	want := []Annotation{{URI: "u1", Score: 0.9}, {URI: "u2", Score: 0.6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("URIs = %v, want %v", got, want)
	}
}

func TestDefaultPriorIsOne(t *testing.T) {
	l, err := NewLinker([]Concept{{URI: "u", Surfaces: []string{"zebra"}}})
	if err != nil {
		t.Fatal(err)
	}
	anns := l.Annotate("a zebra appeared")
	if len(anns) != 1 || anns[0].Score != 0.5 { // prior 1 × 0.5 base
		t.Fatalf("got %v", anns)
	}
}
