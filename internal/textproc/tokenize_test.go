package textproc

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	tests := []struct {
		name string
		in   string
		want []Token
	}{
		{
			"plain words",
			"The nation's best volleyball returns tomorrow",
			[]Token{
				{"the", KindWord}, {"nation's", KindWord}, {"best", KindWord},
				{"volleyball", KindWord}, {"returns", KindWord}, {"tomorrow", KindWord},
			},
		},
		{
			"hashtags",
			"watching #Volleyball tonight #GoTeam",
			[]Token{
				{"watching", KindWord}, {"volleyball", KindHashtag},
				{"tonight", KindWord}, {"goteam", KindHashtag},
			},
		},
		{
			"mentions dropped by default",
			"hey @alice see this",
			[]Token{{"hey", KindWord}, {"see", KindWord}, {"this", KindWord}},
		},
		{
			"urls removed",
			"read https://example.com/x and http://t.co/abc plus www.foo.org now",
			[]Token{{"read", KindWord}, {"and", KindWord}, {"plus", KindWord}, {"now", KindWord}},
		},
		{
			"punctuation splits",
			"well,done! really?yes",
			[]Token{{"well", KindWord}, {"done", KindWord}, {"really", KindWord}, {"yes", KindWord}},
		},
		{
			"numbers dropped by default",
			"score was 21 to 19 tonight",
			[]Token{{"score", KindWord}, {"was", KindWord}, {"to", KindWord}, {"tonight", KindWord}},
		},
		{
			"short tokens dropped",
			"a b cd",
			[]Token{{"cd", KindWord}},
		},
		{
			"empty",
			"",
			nil,
		},
		{
			"unicode letters kept",
			"café naïve",
			[]Token{{"café", KindWord}, {"naïve", KindWord}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tok.Tokenize(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Fatalf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeOptions(t *testing.T) {
	tok := NewTokenizer(KeepMentions(), KeepNumbers(), MinTokenLen(1))
	got := tok.Tokenize("@Bob scored 9 points")
	want := []Token{
		{"bob", KindMention}, {"scored", KindWord}, {"9", KindNumber}, {"points", KindWord},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeHashtagPunctuation(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Tokenize("#Go-Lang! rocks")
	want := []Token{{"golang", KindHashtag}, {"rocks", KindWord}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestWords(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Words("Big Match tonight")
	want := []string{"big", "match", "tonight"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "rt", "gonna", "won't"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"volleyball", "adidas", "stadium"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestRemoveStopwordsKeepsHashtags(t *testing.T) {
	toks := []Token{
		{"the", KindWord},
		{"the", KindHashtag}, // deliberate tag: kept
		{"match", KindWord},
	}
	got := RemoveStopwords(toks)
	want := []Token{{"the", KindHashtag}, {"match", KindWord}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenKindString(t *testing.T) {
	if KindWord.String() != "word" || KindHashtag.String() != "hashtag" ||
		KindMention.String() != "mention" || KindNumber.String() != "number" {
		t.Error("TokenKind.String mismatch")
	}
	if TokenKind(99).String() != "unknown" {
		t.Error("unknown kind should stringify to unknown")
	}
}
