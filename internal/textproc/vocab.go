package textproc

import (
	"fmt"
	"math"
	"sync"
)

// Vocabulary interns terms to dense TermIDs and tracks document frequencies
// for IDF weighting. It is safe for concurrent use: the ingest path interns
// new terms while scoring paths look up existing ones.
type Vocabulary struct {
	mu    sync.RWMutex
	ids   map[string]TermID
	terms []string
	df    []int // document frequency per TermID
	docs  int   // total documents observed
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]TermID)}
}

// Intern returns the TermID for term, assigning a new ID on first sight.
func (v *Vocabulary) Intern(term string) TermID {
	v.mu.RLock()
	id, ok := v.ids[term]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok = v.ids[term]; ok {
		return id
	}
	id = TermID(len(v.terms))
	v.ids[term] = id
	v.terms = append(v.terms, term)
	v.df = append(v.df, 0)
	return id
}

// Lookup returns the TermID for term without interning. ok is false for
// unknown terms.
func (v *Vocabulary) Lookup(term string) (TermID, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the string for a TermID; empty for out-of-range IDs.
func (v *Vocabulary) Term(id TermID) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(id) >= len(v.terms) {
		return ""
	}
	return v.terms[id]
}

// Size returns the number of interned terms.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.terms)
}

// Docs returns the number of documents observed via ObserveDoc.
func (v *Vocabulary) Docs() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.docs
}

// ObserveDoc records one document's distinct terms for DF statistics.
func (v *Vocabulary) ObserveDoc(ids []TermID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.docs++
	seen := make(map[TermID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if int(id) < len(v.df) {
			v.df[id]++
		}
	}
}

// Snapshot returns a copy of the vocabulary state for persistence: the
// interned terms in ID order, their document frequencies, and the total
// document count.
func (v *Vocabulary) Snapshot() (terms []string, df []int, docs int) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	terms = append([]string(nil), v.terms...)
	df = append([]int(nil), v.df...)
	return terms, df, v.docs
}

// Restore replaces the vocabulary state with a snapshot. It fails when the
// vocabulary is not empty, when terms and df disagree in length, or when a
// term is duplicated.
func (v *Vocabulary) Restore(terms []string, df []int, docs int) error {
	if len(terms) != len(df) {
		return fmt.Errorf("textproc: restore: %d terms but %d df entries", len(terms), len(df))
	}
	if docs < 0 {
		return fmt.Errorf("textproc: restore: negative doc count %d", docs)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.terms) != 0 {
		return fmt.Errorf("textproc: restore into non-empty vocabulary (%d terms)", len(v.terms))
	}
	for i, term := range terms {
		if _, dup := v.ids[term]; dup {
			return fmt.Errorf("textproc: restore: duplicate term %q", term)
		}
		v.ids[term] = TermID(i)
	}
	v.terms = append([]string(nil), terms...)
	v.df = append([]int(nil), df...)
	v.docs = docs
	return nil
}

// IDF returns the smoothed inverse document frequency of a term:
// ln(1 + N/(1 + df)). Unknown terms get the maximum IDF for the current N.
func (v *Vocabulary) IDF(id TermID) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	df := 0
	if int(id) < len(v.df) {
		df = v.df[id]
	}
	return math.Log(1 + float64(v.docs)/float64(1+df))
}

// Pipeline bundles tokenizer + vocabulary into the standard text → vector
// transformation used for both messages and ads.
type Pipeline struct {
	Tok   *Tokenizer
	Vocab *Vocabulary
	// UseIDF selects TF-IDF weighting; plain normalized TF otherwise.
	UseIDF bool
	// StemTokens applies Porter stemming before interning.
	StemTokens bool
}

// NewPipeline returns a pipeline with tweet-appropriate defaults: stemming on,
// IDF on.
func NewPipeline() *Pipeline {
	return &Pipeline{
		Tok:        NewTokenizer(),
		Vocab:      NewVocabulary(),
		UseIDF:     true,
		StemTokens: true,
	}
}

// TermIDs normalizes text to a bag of interned term IDs (with duplicates,
// preserving term frequency) and records the document for DF statistics.
func (p *Pipeline) TermIDs(text string) []TermID {
	toks := RemoveStopwords(p.Tok.Tokenize(text))
	if p.StemTokens {
		toks = StemAll(toks)
	}
	ids := make([]TermID, 0, len(toks))
	for _, tok := range toks {
		ids = append(ids, p.Vocab.Intern(tok.Text))
	}
	p.Vocab.ObserveDoc(ids)
	return ids
}

// Vector converts text into an L2-normalized TF or TF-IDF sparse vector.
// Empty or all-stopword text yields an empty vector.
func (p *Pipeline) Vector(text string) SparseVector {
	ids := p.TermIDs(text)
	return p.VectorFromIDs(ids)
}

// VectorFromIDs builds the weighted vector from a bag of term IDs without
// re-tokenizing (used when the caller already has IDs, e.g. generated
// workloads).
func (p *Pipeline) VectorFromIDs(ids []TermID) SparseVector {
	if len(ids) == 0 {
		return SparseVector{}
	}
	vec := make(SparseVector, len(ids))
	for _, id := range ids {
		vec[id]++
	}
	if p.UseIDF {
		for id, tf := range vec {
			vec[id] = tf * p.Vocab.IDF(id)
		}
	}
	vec.L2Normalize()
	return vec
}
