package textproc

import (
	"math"
	"sort"
)

// TermID is an interned vocabulary term identifier. Interning keeps the hot
// scoring path free of string hashing.
type TermID uint32

// SparseVector is a term-weighted sparse vector over interned term IDs. It is
// the representation of both ad keyword profiles and user feed contexts.
type SparseVector map[TermID]float64

// Dot returns the inner product ⟨v, w⟩, iterating over the smaller operand.
func (v SparseVector) Dot(w SparseVector) float64 {
	if len(w) < len(v) {
		v, w = w, v
	}
	var sum float64
	for id, x := range v {
		if y, ok := w[id]; ok {
			sum += x * y
		}
	}
	return sum
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v SparseVector) Norm() float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Cosine returns the cosine similarity between v and w in [−1, 1]; zero when
// either vector is empty or has zero norm.
func (v SparseVector) Cosine(w SparseVector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// AddScaled adds s·w into v in place.
func (v SparseVector) AddScaled(w SparseVector, s float64) {
	for id, x := range w {
		v[id] += x * s
	}
}

// SubScaled subtracts s·w from v in place, deleting entries that reach
// (numerically) zero so stale terms do not accumulate.
func (v SparseVector) SubScaled(w SparseVector, s float64) {
	for id, x := range w {
		nv := v[id] - x*s
		if math.Abs(nv) < 1e-12 {
			delete(v, id)
		} else {
			v[id] = nv
		}
	}
}

// Scale multiplies every weight by s in place.
func (v SparseVector) Scale(s float64) {
	for id := range v {
		v[id] *= s
	}
}

// Clone returns a deep copy.
func (v SparseVector) Clone() SparseVector {
	out := make(SparseVector, len(v))
	for id, x := range v {
		out[id] = x
	}
	return out
}

// L2Normalize scales v to unit norm in place; empty or zero vectors are left
// unchanged.
func (v SparseVector) L2Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	v.Scale(1 / n)
}

// WeightedTerm pairs a term with its weight, used for ranked views of a
// vector.
type WeightedTerm struct {
	ID     TermID
	Weight float64
}

// TopTerms returns the n highest-weighted terms in descending weight order
// (ties broken by ascending TermID for determinism).
func (v SparseVector) TopTerms(n int) []WeightedTerm {
	out := make([]WeightedTerm, 0, len(v))
	for id, x := range v {
		out = append(out, WeightedTerm{ID: id, Weight: x})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
