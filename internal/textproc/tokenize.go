// Package textproc provides the text substrate of the ad recommender:
// tweet-aware tokenization, stopword filtering, Porter stemming, TF-IDF
// weighted sparse vectors, and a dictionary-based entity linker that stands in
// for the DBpedia Spotlight annotation service used by the original system.
package textproc

import (
	"strings"
	"unicode"
)

// Token is one lexical unit extracted from raw text.
type Token struct {
	Text string    // normalized (lowercased) surface form
	Kind TokenKind // word, hashtag, mention, or number
}

// TokenKind classifies tokens so downstream stages can treat social-media
// artifacts (hashtags, @-mentions, URLs) differently from plain words.
type TokenKind uint8

// Token kinds.
const (
	KindWord TokenKind = iota
	KindHashtag
	KindMention
	KindNumber
)

func (k TokenKind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindHashtag:
		return "hashtag"
	case KindMention:
		return "mention"
	case KindNumber:
		return "number"
	default:
		return "unknown"
	}
}

// Tokenizer splits tweet-like text into tokens. The zero value is not usable;
// construct with NewTokenizer.
type Tokenizer struct {
	keepMentions bool
	keepNumbers  bool
	minLen       int
}

// TokenizerOption configures a Tokenizer.
type TokenizerOption func(*Tokenizer)

// KeepMentions retains @user tokens (dropped by default: they rarely carry
// topical signal for ad matching).
func KeepMentions() TokenizerOption { return func(t *Tokenizer) { t.keepMentions = true } }

// KeepNumbers retains pure-digit tokens (dropped by default).
func KeepNumbers() TokenizerOption { return func(t *Tokenizer) { t.keepNumbers = true } }

// MinTokenLen drops tokens shorter than n runes (default 2).
func MinTokenLen(n int) TokenizerOption { return func(t *Tokenizer) { t.minLen = n } }

// NewTokenizer returns a tokenizer with tweet-appropriate defaults.
func NewTokenizer(opts ...TokenizerOption) *Tokenizer {
	t := &Tokenizer{minLen: 2}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Tokenize splits text into tokens. URLs are removed entirely; hashtags keep
// their tag text with KindHashtag; mentions are dropped unless KeepMentions;
// everything else is split on non-alphanumeric runes and lowercased.
func (t *Tokenizer) Tokenize(text string) []Token {
	var out []Token
	for _, raw := range strings.Fields(text) {
		if isURL(raw) {
			continue
		}
		switch {
		case strings.HasPrefix(raw, "#") && len(raw) > 1:
			word := normalizeWord(raw[1:])
			if t.accept(word) {
				out = append(out, Token{Text: word, Kind: KindHashtag})
			}
		case strings.HasPrefix(raw, "@") && len(raw) > 1:
			if !t.keepMentions {
				continue
			}
			word := normalizeWord(raw[1:])
			if t.accept(word) {
				out = append(out, Token{Text: word, Kind: KindMention})
			}
		default:
			out = t.splitPlain(raw, out)
		}
	}
	return out
}

// Words is a convenience wrapper returning only the token texts.
func (t *Tokenizer) Words(text string) []string {
	toks := t.Tokenize(text)
	out := make([]string, len(toks))
	for i, tok := range toks {
		out[i] = tok.Text
	}
	return out
}

func (t *Tokenizer) splitPlain(raw string, out []Token) []Token {
	start := -1
	runes := []rune(raw)
	flush := func(end int) {
		if start < 0 {
			return
		}
		word := strings.ToLower(string(runes[start:end]))
		start = -1
		if !t.accept(word) {
			return
		}
		if isNumeric(word) {
			if t.keepNumbers {
				out = append(out, Token{Text: word, Kind: KindNumber})
			}
			return
		}
		out = append(out, Token{Text: word, Kind: KindWord})
	}
	for i, r := range runes {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(runes))
	return out
}

func (t *Tokenizer) accept(word string) bool {
	return len([]rune(word)) >= t.minLen
}

func normalizeWord(s string) string {
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}

func isURL(s string) bool {
	ls := strings.ToLower(s)
	return strings.HasPrefix(ls, "http://") ||
		strings.HasPrefix(ls, "https://") ||
		strings.HasPrefix(ls, "www.")
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}
