package textproc

import (
	"fmt"
	"sort"
	"strings"
)

// Annotation is one recognized concept mention: a DBpedia-style URI plus a
// confidence score in [0, 1]. It mirrors the ⟨URI, score⟩ pairs emitted by
// the DBpedia Spotlight service the original system calls; this package's
// Linker is the offline substitute (see DESIGN.md §4).
type Annotation struct {
	URI     string  // e.g. "http://dbpedia.org/resource/Volleyball"
	Score   float64 // disambiguation confidence in [0, 1]
	Surface string  // the matched surface form, normalized
}

// Concept is a dictionary entry of the Linker: a URI, the surface forms that
// may mention it, a prior probability that a mention of those forms refers to
// this concept, and context terms that raise confidence when present nearby.
type Concept struct {
	URI      string
	Surfaces []string // lowercase phrases, e.g. "volleyball", "beach volleyball"
	Prior    float64  // in (0, 1]; defaults to 1 when zero
	Context  []string // lowercase cue words that disambiguate this sense
}

// Linker recognizes concept mentions via longest-match gazetteer lookup and
// disambiguates ambiguous surface forms by context-term overlap. It is
// immutable after Build and safe for concurrent use.
type Linker struct {
	tok *Tokenizer
	// surface phrase (space-joined normalized tokens) → candidate senses
	senses map[string][]sense
	// maximum phrase length in tokens, bounding the matching window
	maxPhrase int
}

type sense struct {
	uri     string
	prior   float64
	context map[string]struct{}
}

// NewLinker builds a linker from a concept dictionary. Concepts with no
// surface forms are rejected.
func NewLinker(concepts []Concept) (*Linker, error) {
	l := &Linker{
		tok:    NewTokenizer(MinTokenLen(1)),
		senses: make(map[string][]sense),
	}
	for i, c := range concepts {
		if c.URI == "" {
			return nil, fmt.Errorf("textproc: concept %d has empty URI", i)
		}
		if len(c.Surfaces) == 0 {
			return nil, fmt.Errorf("textproc: concept %q has no surface forms", c.URI)
		}
		prior := c.Prior
		if prior <= 0 {
			prior = 1
		}
		if prior > 1 {
			return nil, fmt.Errorf("textproc: concept %q prior %v > 1", c.URI, prior)
		}
		ctx := make(map[string]struct{}, len(c.Context))
		for _, w := range c.Context {
			ctx[strings.ToLower(w)] = struct{}{}
		}
		sn := sense{uri: c.URI, prior: prior, context: ctx}
		for _, sf := range c.Surfaces {
			key, n := l.normalizePhrase(sf)
			if key == "" {
				return nil, fmt.Errorf("textproc: concept %q has empty surface form", c.URI)
			}
			l.senses[key] = append(l.senses[key], sn)
			if n > l.maxPhrase {
				l.maxPhrase = n
			}
		}
	}
	return l, nil
}

func (l *Linker) normalizePhrase(s string) (string, int) {
	words := l.tok.Words(s)
	return strings.Join(words, " "), len(words)
}

// Annotate scans text and returns the recognized annotations in mention
// order. Longest surface-form matches win (greedy left-to-right); each token
// participates in at most one mention. The confidence score is
// prior × (0.5 + 0.5 × contextOverlap), where contextOverlap is the fraction
// of the sense's context cues present among the other tokens of the text —
// so an unambiguous mention scores at least half its prior, and full context
// support recovers the full prior. Among multiple senses of one surface form
// the highest-scoring sense is chosen.
func (l *Linker) Annotate(text string) []Annotation {
	words := l.tok.Words(text)
	if len(words) == 0 {
		return nil
	}
	present := make(map[string]struct{}, len(words))
	for _, w := range words {
		present[w] = struct{}{}
	}

	var out []Annotation
	for i := 0; i < len(words); {
		matched := false
		maxLen := l.maxPhrase
		if rem := len(words) - i; rem < maxLen {
			maxLen = rem
		}
		for n := maxLen; n >= 1; n-- {
			key := strings.Join(words[i:i+n], " ")
			cands, ok := l.senses[key]
			if !ok {
				continue
			}
			best := l.disambiguate(cands, present)
			out = append(out, Annotation{URI: best.uri, Score: best.score, Surface: key})
			i += n
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return out
}

type scoredSense struct {
	uri   string
	score float64
}

func (l *Linker) disambiguate(cands []sense, present map[string]struct{}) scoredSense {
	best := scoredSense{score: -1}
	for _, c := range cands {
		overlap := 0.0
		if len(c.context) > 0 {
			hit := 0
			for w := range c.context {
				if _, ok := present[w]; ok {
					hit++
				}
			}
			overlap = float64(hit) / float64(len(c.context))
		}
		score := c.prior * (0.5 + 0.5*overlap)
		if score > best.score || (score == best.score && c.uri < best.uri) {
			best = scoredSense{uri: c.uri, score: score}
		}
	}
	return best
}

// URIs returns the deduplicated URIs of the annotations, keeping the maximum
// score per URI, sorted by descending score then URI.
func URIs(anns []Annotation) []Annotation {
	byURI := make(map[string]float64)
	for _, a := range anns {
		if s, ok := byURI[a.URI]; !ok || a.Score > s {
			byURI[a.URI] = a.Score
		}
	}
	out := make([]Annotation, 0, len(byURI))
	for uri, score := range byURI {
		out = append(out, Annotation{URI: uri, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].URI < out[j].URI
	})
	return out
}
