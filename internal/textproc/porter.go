package textproc

// Stem reduces an English word to its stem using the classic Porter (1980)
// algorithm. Input must already be lowercased; non-ASCII-letter input is
// returned unchanged. Words of length ≤ 2 are returned unchanged, per the
// original algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	w := &stemmer{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant per Porter's definition:
// 'y' is a consonant when preceded by a vowel position (i.e., when the
// previous letter is not a consonant).
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in b[:end].
func (s *stemmer) measureTo(end int) int {
	n := 0
	i := 0
	// skip initial consonants
	for i < end && s.isConsonant(i) {
		i++
	}
	for i < end {
		// in a vowel run
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		n++
		for i < end && s.isConsonant(i) {
			i++
		}
	}
	return n
}

func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	m := len(suf)
	if m >= n {
		return false // a suffix equal to the whole word leaves no stem
	}
	return string(s.b[n-m:]) == suf
}

// m returns the measure of the stem remaining after removing suffix suf.
func (s *stemmer) m(suf string) int {
	return s.measureTo(len(s.b) - len(suf))
}

// stemHasVowel reports whether the stem before suffix suf contains a vowel.
func (s *stemmer) stemHasVowel(suf string) bool {
	end := len(s.b) - len(suf)
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// replace removes suffix suf and appends rep.
func (s *stemmer) replace(suf, rep string) {
	s.b = append(s.b[:len(s.b)-len(suf)], rep...)
}

// endsDoubleConsonant reports whether the word ends with the same consonant
// twice.
func (s *stemmer) endsDoubleConsonant() bool {
	n := len(s.b)
	if n < 2 {
		return false
	}
	return s.b[n-1] == s.b[n-2] && s.isConsonant(n-1)
}

// endsCVC reports whether the last three letters of the stem before suffix
// suf form consonant-vowel-consonant where the final consonant is not w, x
// or y ("*o" condition in Porter's notation).
func (s *stemmer) endsCVC(suf string) bool {
	end := len(s.b) - len(suf)
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-3) || s.isConsonant(end-2) || !s.isConsonant(end-1) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replace("sses", "ss")
	case s.hasSuffix("ies"):
		s.replace("ies", "i")
	case s.hasSuffix("ss"):
		// keep
	case s.hasSuffix("s"):
		s.replace("s", "")
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.m("eed") > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	removed := false
	switch {
	case s.hasSuffix("ed") && s.stemHasVowel("ed"):
		s.replace("ed", "")
		removed = true
	case s.hasSuffix("ing") && s.stemHasVowel("ing"):
		s.replace("ing", "")
		removed = true
	}
	if !removed {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.endsDoubleConsonant():
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measureTo(len(s.b)) == 1 && s.endsCVC(""):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.stemHasVowel("y") {
		s.b[len(s.b)-1] = 'i'
	}
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func (s *stemmer) step2() {
	for _, r := range step2Rules {
		if s.hasSuffix(r.suf) {
			if s.m(r.suf) > 0 {
				s.replace(r.suf, r.rep)
			}
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemmer) step3() {
	for _, r := range step3Rules {
		if s.hasSuffix(r.suf) {
			if s.m(r.suf) > 0 {
				s.replace(r.suf, r.rep)
			}
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment",
	"ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemmer) step4() {
	// "ion" needs an extra condition: stem must end in s or t.
	if s.hasSuffix("ion") {
		end := len(s.b) - 3
		if s.m("ion") > 1 && end > 0 && (s.b[end-1] == 's' || s.b[end-1] == 't') {
			s.replace("ion", "")
		}
		return
	}
	// Longest-match first: sort is implicit in ordering of checks below, but
	// several suffixes overlap ("ement" ⊃ "ment" ⊃ "ent"), so check longer
	// variants before shorter ones.
	ordered := []string{
		"ement", "ance", "ence", "able", "ible", "ment", "ant", "ent", "ism",
		"ate", "iti", "ous", "ive", "ize", "ou", "al", "er", "ic",
	}
	_ = step4Suffixes // documented set; ordered variant used for matching
	for _, suf := range ordered {
		if s.hasSuffix(suf) {
			if s.m(suf) > 1 {
				s.replace(suf, "")
			}
			return
		}
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	m := s.m("e")
	if m > 1 || (m == 1 && !s.endsCVC("e")) {
		s.replace("e", "")
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n > 1 && s.b[n-1] == 'l' && s.b[n-2] == 'l' && s.measureTo(n) > 1 {
		s.b = s.b[:n-1]
	}
}

// StemAll stems every token in place and returns the slice for chaining.
func StemAll(toks []Token) []Token {
	for i := range toks {
		toks[i].Text = Stem(toks[i].Text)
	}
	return toks
}
