package textproc

// defaultStopwords is a compact English stopword list tuned for tweet text:
// the standard closed-class words plus the contractions and interjections
// that dominate social posts.
var defaultStopwords = map[string]struct{}{}

func init() {
	words := []string{
		"a", "about", "above", "after", "again", "against", "all", "also", "am",
		"an", "and", "any", "are", "aren't", "as", "at", "be", "because",
		"been", "before", "being", "below", "between", "both", "but", "by",
		"can", "can't", "cannot", "could", "couldn't", "did", "didn't", "do",
		"does", "doesn't", "doing", "don't", "down", "during", "each", "few",
		"for", "from", "further", "get", "got", "had", "hadn't", "has",
		"hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's",
		"her", "here", "here's", "hers", "herself", "him", "himself", "his",
		"how", "how's", "i", "i'd", "i'll", "i'm", "i've", "if", "in", "into",
		"is", "isn't", "it", "it's", "its", "itself", "just", "let's", "like",
		"me", "more", "most", "mustn't", "my", "myself", "no", "nor", "not",
		"now", "of", "off", "on", "once", "only", "or", "other", "ought",
		"our", "ours", "ourselves", "out", "over", "own", "really", "same",
		"shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't",
		"so", "some", "such", "than", "that", "that's", "the", "their",
		"theirs", "them", "themselves", "then", "there", "there's", "these",
		"they", "they'd", "they'll", "they're", "they've", "this", "those",
		"through", "to", "too", "under", "until", "up", "very", "was",
		"wasn't", "we", "we'd", "we'll", "we're", "we've", "were", "weren't",
		"what", "what's", "when", "when's", "where", "where's", "which",
		"while", "who", "who's", "whom", "why", "why's", "will", "with",
		"won't", "would", "wouldn't", "you", "you'd", "you'll", "you're",
		"you've", "your", "yours", "yourself", "yourselves",
		// tweet-specific noise
		"rt", "via", "amp", "lol", "omg", "idk", "tbh", "yeah", "yes", "nah",
		"gonna", "wanna", "gotta", "im", "u", "ur", "pls", "plz", "thx",
	}
	for _, w := range words {
		defaultStopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the normalized word is in the default English
// social-media stopword list.
func IsStopword(word string) bool {
	_, ok := defaultStopwords[word]
	return ok
}

// RemoveStopwords filters a token slice in a newly allocated slice, keeping
// hashtags even when their text collides with a stopword (a deliberate tag is
// signal).
func RemoveStopwords(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, tok := range toks {
		if tok.Kind != KindHashtag && IsStopword(tok.Text) {
			continue
		}
		out = append(out, tok)
	}
	return out
}
