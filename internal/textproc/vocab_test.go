package textproc

import (
	"fmt"
	"sync"
	"testing"
)

func TestVocabularyInternLookup(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("apple")
	b := v.Intern("banana")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if again := v.Intern("apple"); again != a {
		t.Fatalf("re-intern gave %d, want %d", again, a)
	}
	if id, ok := v.Lookup("apple"); !ok || id != a {
		t.Fatalf("Lookup(apple) = %d,%v", id, ok)
	}
	if _, ok := v.Lookup("cherry"); ok {
		t.Fatal("unknown term found")
	}
	if v.Term(a) != "apple" || v.Term(b) != "banana" {
		t.Fatal("Term round trip failed")
	}
	if v.Term(TermID(999)) != "" {
		t.Fatal("out-of-range Term should be empty")
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
}

func TestVocabularyIDF(t *testing.T) {
	v := NewVocabulary()
	common := v.Intern("common")
	rare := v.Intern("rare")
	for i := 0; i < 100; i++ {
		doc := []TermID{common}
		if i == 0 {
			doc = append(doc, rare)
		}
		v.ObserveDoc(doc)
	}
	if v.Docs() != 100 {
		t.Fatalf("Docs = %d", v.Docs())
	}
	if v.IDF(common) >= v.IDF(rare) {
		t.Fatalf("IDF(common)=%v should be < IDF(rare)=%v", v.IDF(common), v.IDF(rare))
	}
	if v.IDF(rare) <= 0 {
		t.Fatal("IDF must be positive")
	}
}

func TestObserveDocCountsDistinctTermsOnce(t *testing.T) {
	v := NewVocabulary()
	id := v.Intern("dup")
	v.ObserveDoc([]TermID{id, id, id})
	v.ObserveDoc([]TermID{id})
	// df should be 2 (two docs), not 4. With N=2, df=2:
	// idf = ln(1 + 2/3); with df=4 it would be ln(1 + 2/5).
	want := v.IDF(id)
	v2 := NewVocabulary()
	id2 := v2.Intern("dup")
	v2.ObserveDoc([]TermID{id2})
	v2.ObserveDoc([]TermID{id2})
	if want != v2.IDF(id2) {
		t.Fatalf("duplicate terms inflated df: %v vs %v", want, v2.IDF(id2))
	}
}

func TestVocabularyConcurrentIntern(t *testing.T) {
	v := NewVocabulary()
	var wg sync.WaitGroup
	const workers = 8
	ids := make([][]TermID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ids[w] = append(ids[w], v.Intern(fmt.Sprintf("term-%d", i%50)))
			}
		}(w)
	}
	wg.Wait()
	if v.Size() != 50 {
		t.Fatalf("Size = %d, want 50", v.Size())
	}
	// All workers must agree on IDs.
	for i := 0; i < 50; i++ {
		want := ids[0][i]
		for w := 1; w < workers; w++ {
			if ids[w][i] != want {
				t.Fatalf("worker %d got different ID for term %d", w, i)
			}
		}
	}
}

func TestPipelineVector(t *testing.T) {
	p := NewPipeline()
	vec := p.Vector("The volleyball team plays volleyball tonight")
	if len(vec) == 0 {
		t.Fatal("vector should not be empty")
	}
	if !almostEqual(vec.Norm(), 1) {
		t.Fatalf("vector not normalized: %v", vec.Norm())
	}
	// "volleyball" appears twice → highest weight after stemming.
	stemID, ok := p.Vocab.Lookup(Stem("volleyball"))
	if !ok {
		t.Fatal("volleyball stem not interned")
	}
	top := vec.TopTerms(1)
	if top[0].ID != stemID {
		t.Fatalf("top term = %q, want volleyball stem", p.Vocab.Term(top[0].ID))
	}
}

func TestPipelineEmptyAndStopwordOnly(t *testing.T) {
	p := NewPipeline()
	if vec := p.Vector(""); len(vec) != 0 {
		t.Fatalf("empty text vector = %v", vec)
	}
	if vec := p.Vector("the and of to"); len(vec) != 0 {
		t.Fatalf("stopword-only vector = %v", vec)
	}
}

func TestPipelineWithoutIDFAndStem(t *testing.T) {
	p := NewPipeline()
	p.UseIDF = false
	p.StemTokens = false
	vec := p.Vector("running running walks")
	// TF only: running has tf 2, walks tf 1 → after L2 norm ratio 2:1.
	runID, _ := p.Vocab.Lookup("running")
	walkID, _ := p.Vocab.Lookup("walks")
	if !almostEqual(vec[runID]/vec[walkID], 2) {
		t.Fatalf("TF ratio = %v, want 2", vec[runID]/vec[walkID])
	}
}
