package textproc

import "testing"

// TestStemKnownPairs exercises the published Porter examples plus
// tweet-domain words.
func TestStemKnownPairs(t *testing.T) {
	tests := []struct{ in, want string }{
		// step 1a
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		// step 1b
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		// step 1c
		{"happy", "happi"},
		{"sky", "sky"},
		// step 2
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"digitizer", "digit"},
		{"operator", "oper"},
		// step 3
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		// step 4
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"adjustment", "adjust"},
		{"adoption", "adopt"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"effective", "effect"},
		// step 5
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// domain words
		{"volleyball", "volleybal"},
		{"advertising", "advertis"},
		{"advertisement", "advertis"},
		{"recommendations", "recommend"},
		{"locations", "locat"},
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", ""},
		{"a", "a"},
		{"is", "is"},
		{"été", "été"},           // non-ASCII passes through
		{"abc1", "abc1"},         // digits pass through
		{"nation's", "nation's"}, // apostrophes pass through untouched
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestStemIdempotentOnFamilies checks the property the recommender relies on:
// morphological variants of the same word map to one stem.
func TestStemMergesFamilies(t *testing.T) {
	families := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"recommend", "recommends", "recommended", "recommending"},
		{"locate", "located", "locating"},
	}
	for _, fam := range families {
		base := Stem(fam[0])
		for _, w := range fam[1:] {
			if got := Stem(w); got != base {
				t.Errorf("family %v: Stem(%q)=%q, want %q", fam, w, got, base)
			}
		}
	}
}

func TestStemAll(t *testing.T) {
	toks := []Token{{"running", KindWord}, {"games", KindHashtag}}
	StemAll(toks)
	if toks[0].Text != "run" || toks[1].Text != "game" {
		t.Fatalf("StemAll = %v", toks)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"recommendations", "advertising", "volleyball", "connected", "happiness"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
