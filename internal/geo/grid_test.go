package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func mustGrid(t *testing.T, cover Rect, rows, cols int) *Grid {
	t.Helper()
	g, err := NewGrid(cover, rows, cols)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(WorldRect(), 0, 10); err == nil {
		t.Error("zero rows should error")
	}
	if _, err := NewGrid(WorldRect(), 10, -1); err == nil {
		t.Error("negative cols should error")
	}
	if _, err := NewGrid(Rect{MinLat: 5, MaxLat: 1}, 2, 2); err == nil {
		t.Error("invalid cover should error")
	}
	if _, err := NewGrid(Rect{MinLat: 1, MaxLat: 1, MinLng: 0, MaxLng: 5}, 2, 2); err == nil {
		t.Error("zero-area cover should error")
	}
}

func TestCellOfCorners(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 10, 10)
	tests := []struct {
		p    Point
		want CellID
	}{
		{Point{0, 0}, 0},                // SW corner
		{Point{0.5, 0.5}, 0},            // inside first cell
		{Point{9.99, 9.99}, 99},         // inside last cell
		{Point{10, 10}, 99},             // NE corner clamps into last cell
		{Point{0, 10}, 9},               // SE corner clamps into last column
		{Point{10, 0}, 90},              // NW corner clamps into last row
		{Point{5, 5}, 55},               // center
		{Point{-0.01, 5}, InvalidCell},  // below coverage
		{Point{5, 10.01}, InvalidCell},  // east of coverage
		{Point{50, 50}, InvalidCell},    // far outside
		{Point{-89, -179}, InvalidCell}, // far outside
	}
	for _, tt := range tests {
		if got := g.CellOf(tt.p); got != tt.want {
			t.Errorf("CellOf(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	g := mustGrid(t, NewRect(Point{-45, -90}, Point{45, 90}), 9, 18)
	for row := 0; row < 9; row++ {
		for col := 0; col < 18; col++ {
			id := CellID(row*18 + col)
			r := g.CellRect(id)
			if got := g.CellOf(r.Center()); got != id {
				t.Fatalf("cell %d: CellOf(center %v) = %d", id, r.Center(), got)
			}
		}
	}
}

func TestCellsIntersecting(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 10, 10)
	// A rect covering cells (2,2)..(4,5) inclusive => 3 rows × 4 cols = 12.
	got := g.CellsIntersecting(NewRect(Point{2.1, 2.1}, Point{4.9, 5.9}))
	if len(got) != 12 {
		t.Fatalf("got %d cells, want 12: %v", len(got), got)
	}
	// Rect entirely off coverage.
	if got := g.CellsIntersecting(NewRect(Point{20, 20}, Point{30, 30})); got != nil {
		t.Fatalf("off-cover rect should yield nil, got %v", got)
	}
	// Rect partially off coverage clips.
	got = g.CellsIntersecting(NewRect(Point{-5, -5}, Point{0.5, 0.5}))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("clipped rect = %v, want [0]", got)
	}
	// World-size rect covers every cell.
	if got := g.CellsIntersecting(WorldRect()); len(got) != 100 {
		t.Fatalf("world rect covers %d cells, want 100", len(got))
	}
}

func TestGridInsertQueryRemove(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 10, 10)
	c := Circle{Center: Point{5, 5}, RadiusKm: 1} // tiny: a single cell
	g.InsertCircle(7, c)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.ContainsItemAt(7, Point{5, 5}) {
		t.Error("item should be found at circle center")
	}
	if g.ContainsItemAt(7, Point{9.9, 9.9}) {
		t.Error("item should not be registered far away")
	}
	items := g.ItemsAt(Point{5, 5})
	if len(items) != 1 || items[0] != 7 {
		t.Fatalf("ItemsAt = %v, want [7]", items)
	}
	g.Remove(7)
	if g.Len() != 0 || g.ContainsItemAt(7, Point{5, 5}) {
		t.Error("item should be gone after Remove")
	}
	g.Remove(7) // removing twice is a no-op
}

func TestGridReinsertReplaces(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 10, 10)
	g.InsertCircle(1, Circle{Center: Point{1, 1}, RadiusKm: 1})
	g.InsertCircle(1, Circle{Center: Point{9, 9}, RadiusKm: 1})
	if g.ContainsItemAt(1, Point{1, 1}) {
		t.Error("old registration should be replaced")
	}
	if !g.ContainsItemAt(1, Point{9, 9}) {
		t.Error("new registration missing")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestGridInsertOutsideCoverage(t *testing.T) {
	g := mustGrid(t, NewRect(Point{0, 0}, Point{10, 10}), 10, 10)
	g.InsertCircle(5, Circle{Center: Point{80, 80}, RadiusKm: 10})
	if g.Len() != 0 {
		t.Fatalf("circle outside coverage should not register, Len=%d", g.Len())
	}
	if g.ItemsAt(Point{80, 80}) != nil {
		t.Error("query outside coverage should be nil")
	}
}

// TestGridAgainstExhaustive cross-checks the grid pre-filter guarantee: every
// item whose circle contains a query point must be registered in that point's
// cell (no false negatives; false positives are allowed by design).
func TestGridAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cover := NewRect(Point{0, 0}, Point{10, 10})
	g := mustGrid(t, cover, 16, 16)
	type entry struct {
		id int64
		c  Circle
	}
	var entries []entry
	for i := 0; i < 200; i++ {
		c := Circle{
			Center:   Point{Lat: rng.Float64() * 10, Lng: rng.Float64() * 10},
			RadiusKm: rng.Float64() * 120,
		}
		g.InsertCircle(int64(i), c)
		entries = append(entries, entry{int64(i), c})
	}
	for q := 0; q < 500; q++ {
		p := Point{Lat: rng.Float64() * 10, Lng: rng.Float64() * 10}
		cellItems := map[int64]bool{}
		for _, id := range g.ItemsAt(p) {
			cellItems[id] = true
		}
		for _, e := range entries {
			if e.c.Contains(p) && !cellItems[e.id] {
				t.Fatalf("false negative: circle %d contains %v but grid missed it", e.id, p)
			}
		}
	}
}

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
