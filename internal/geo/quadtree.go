package geo

// Quadtree is a point-region quadtree over ID-tagged points. The engine uses
// it for user-location analytics (range queries over recent check-ins) and the
// experiment harness uses it as the exact reference for grid-filter tests.
//
// Quadtree is not safe for concurrent mutation.
type Quadtree struct {
	root     *qnode
	capacity int
	size     int
}

type qpoint struct {
	id int64
	p  Point
}

type qnode struct {
	bounds   Rect
	points   []qpoint // leaf payload; nil for internal nodes after split
	children *[4]*qnode
	depth    int
}

// maxQuadDepth bounds subdivision so duplicate points cannot recurse forever.
const maxQuadDepth = 24

// NewQuadtree creates a quadtree covering bounds. capacity is the number of
// points a leaf holds before splitting; values < 1 are raised to 1.
func NewQuadtree(bounds Rect, capacity int) *Quadtree {
	if capacity < 1 {
		capacity = 1
	}
	return &Quadtree{
		root:     &qnode{bounds: bounds},
		capacity: capacity,
	}
}

// Len returns the number of stored points.
func (t *Quadtree) Len() int { return t.size }

// Insert adds a point with an identifier. Points outside the tree bounds are
// rejected and Insert returns false. Duplicate IDs are allowed; callers that
// need uniqueness remove the old entry first.
func (t *Quadtree) Insert(id int64, p Point) bool {
	if !t.root.bounds.Contains(p) {
		return false
	}
	t.root.insert(qpoint{id: id, p: p}, t.capacity)
	t.size++
	return true
}

func (n *qnode) insert(qp qpoint, capacity int) {
	if n.children == nil {
		if len(n.points) < capacity || n.depth >= maxQuadDepth {
			n.points = append(n.points, qp)
			return
		}
		n.split(capacity)
	}
	n.childFor(qp.p).insert(qp, capacity)
}

func (n *qnode) split(capacity int) {
	c := n.bounds.Center()
	b := n.bounds
	var kids [4]*qnode
	kids[0] = &qnode{bounds: Rect{MinLat: c.Lat, MinLng: b.MinLng, MaxLat: b.MaxLat, MaxLng: c.Lng}, depth: n.depth + 1} // NW
	kids[1] = &qnode{bounds: Rect{MinLat: c.Lat, MinLng: c.Lng, MaxLat: b.MaxLat, MaxLng: b.MaxLng}, depth: n.depth + 1} // NE
	kids[2] = &qnode{bounds: Rect{MinLat: b.MinLat, MinLng: b.MinLng, MaxLat: c.Lat, MaxLng: c.Lng}, depth: n.depth + 1} // SW
	kids[3] = &qnode{bounds: Rect{MinLat: b.MinLat, MinLng: c.Lng, MaxLat: c.Lat, MaxLng: b.MaxLng}, depth: n.depth + 1} // SE
	n.children = &kids
	pts := n.points
	n.points = nil
	for _, qp := range pts {
		n.childFor(qp.p).insert(qp, capacity)
	}
}

// childFor routes a point to the quadrant that contains it. Points exactly on
// the centre lines go to the north/east quadrants, matching Rect.Contains
// semantics used at query time.
func (n *qnode) childFor(p Point) *qnode {
	c := n.bounds.Center()
	north := p.Lat >= c.Lat
	east := p.Lng >= c.Lng
	switch {
	case north && !east:
		return n.children[0]
	case north && east:
		return n.children[1]
	case !north && !east:
		return n.children[2]
	default:
		return n.children[3]
	}
}

// Remove deletes one point with the given id located exactly at p. It returns
// true when a matching entry was found and removed.
func (t *Quadtree) Remove(id int64, p Point) bool {
	if !t.root.bounds.Contains(p) {
		return false
	}
	if t.root.remove(id, p) {
		t.size--
		return true
	}
	return false
}

func (n *qnode) remove(id int64, p Point) bool {
	if n.children != nil {
		return n.childFor(p).remove(id, p)
	}
	for i, qp := range n.points {
		if qp.id == id && qp.p == p {
			last := len(n.points) - 1
			n.points[i] = n.points[last]
			n.points = n.points[:last]
			return true
		}
	}
	return false
}

// QueryRect appends the IDs of all points inside r to dst and returns it.
func (t *Quadtree) QueryRect(r Rect, dst []int64) []int64 {
	return t.root.queryRect(r, dst)
}

func (n *qnode) queryRect(r Rect, dst []int64) []int64 {
	if !n.bounds.Intersects(r) {
		return dst
	}
	if n.children != nil {
		for _, child := range n.children {
			dst = child.queryRect(r, dst)
		}
		return dst
	}
	for _, qp := range n.points {
		if r.Contains(qp.p) {
			dst = append(dst, qp.id)
		}
	}
	return dst
}

// QueryCircle appends the IDs of all points within the circle to dst and
// returns it. The circle's bounding rectangle prunes subtrees; the exact
// Haversine test filters candidates.
func (t *Quadtree) QueryCircle(c Circle, dst []int64) []int64 {
	return t.root.queryCircle(c, c.Bounds(), dst)
}

func (n *qnode) queryCircle(c Circle, bound Rect, dst []int64) []int64 {
	if !n.bounds.Intersects(bound) {
		return dst
	}
	if n.children != nil {
		for _, child := range n.children {
			dst = child.queryCircle(c, bound, dst)
		}
		return dst
	}
	for _, qp := range n.points {
		if c.Contains(qp.p) {
			dst = append(dst, qp.id)
		}
	}
	return dst
}

// Neighbor is one kNN result: an item and its distance from the query.
type Neighbor struct {
	ID         int64
	P          Point
	DistanceKm float64
}

// KNearest returns the k stored points nearest to q in ascending distance
// (fewer when the tree holds fewer than k points). Ties break by ascending
// ID. Exact: implemented as exponentially widening circle queries over the
// (exact) QueryCircle, so its cost is O(log(span) · query).
func (t *Quadtree) KNearest(q Point, k int) []Neighbor {
	if k < 1 || t.size == 0 {
		return nil
	}
	if k > t.size {
		k = t.size
	}
	// Start from a radius proportional to the expected nearest-neighbor
	// spacing and double until enough candidates are inside.
	b := t.root.bounds
	spanKm := Point{b.MinLat, b.MinLng}.DistanceKm(Point{b.MaxLat, b.MaxLng})
	if spanKm == 0 {
		spanKm = 1
	}
	radius := spanKm / 64
	var pts []qpoint
	for {
		pts = t.root.collectCircle(Circle{Center: q, RadiusKm: radius}, pts[:0])
		if len(pts) >= k || radius > 2*spanKm {
			break
		}
		radius *= 2
	}
	if len(pts) < k {
		// Query point may be far outside the tree bounds: fall back to the
		// full tree.
		pts = t.root.collectCircle(Circle{Center: q, RadiusKm: 2 * EarthRadiusKm * 4}, pts[:0])
	}
	out := make([]Neighbor, 0, len(pts))
	for _, qp := range pts {
		out = append(out, Neighbor{ID: qp.id, P: qp.p, DistanceKm: q.DistanceKm(qp.p)})
	}
	sortNeighbors(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// collectCircle gathers the (id, point) pairs inside the circle.
func (n *qnode) collectCircle(c Circle, dst []qpoint) []qpoint {
	if !n.bounds.Intersects(c.Bounds()) {
		return dst
	}
	if n.children != nil {
		for _, child := range n.children {
			dst = child.collectCircle(c, dst)
		}
		return dst
	}
	for _, qp := range n.points {
		if c.Contains(qp.p) {
			dst = append(dst, qp)
		}
	}
	return dst
}

func sortNeighbors(ns []Neighbor) {
	// Insertion sort: candidate lists are small (k plus circle overshoot).
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0; j-- {
			a, b := ns[j-1], ns[j]
			if b.DistanceKm < a.DistanceKm ||
				(b.DistanceKm == a.DistanceKm && b.ID < a.ID) {
				ns[j-1], ns[j] = b, a
			} else {
				break
			}
		}
	}
}

// Depth returns the maximum node depth, a diagnostic for skewed insertions.
func (t *Quadtree) Depth() int {
	return t.root.maxDepth()
}

func (n *qnode) maxDepth() int {
	if n.children == nil {
		return n.depth
	}
	max := n.depth
	for _, child := range n.children {
		if d := child.maxDepth(); d > max {
			max = d
		}
	}
	return max
}
