// Package geo provides the spatial substrate for context-aware ad targeting:
// geographic points, great-circle distance, bounding boxes, a uniform grid
// index and a PR quadtree. All coordinates are WGS-84 degrees.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by Haversine distance.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 // latitude in [-90, 90]
	Lng float64 // longitude in [-180, 180]
}

// ErrInvalidCoordinate reports a latitude or longitude outside its legal range.
var ErrInvalidCoordinate = errors.New("geo: coordinate out of range")

// Validate returns ErrInvalidCoordinate if p lies outside the legal
// latitude/longitude ranges or contains NaN/Inf.
func (p Point) Validate() error {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lng) || math.IsInf(p.Lat, 0) || math.IsInf(p.Lng, 0) {
		return fmt.Errorf("%w: non-finite (%v, %v)", ErrInvalidCoordinate, p.Lat, p.Lng)
	}
	if p.Lat < -90 || p.Lat > 90 {
		return fmt.Errorf("%w: latitude %v", ErrInvalidCoordinate, p.Lat)
	}
	if p.Lng < -180 || p.Lng > 180 {
		return fmt.Errorf("%w: longitude %v", ErrInvalidCoordinate, p.Lng)
	}
	return nil
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lng)
}

// DistanceKm returns the Haversine great-circle distance to q in kilometres.
func (p Point) DistanceKm(q Point) float64 {
	lat1 := p.Lat * math.Pi / 180
	lat2 := q.Lat * math.Pi / 180
	dLat := (q.Lat - p.Lat) * math.Pi / 180
	dLng := (q.Lng - p.Lng) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLng*sinLng
	// Clamp to guard against floating-point drift slightly above 1.
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(a))
}

// Rect is an axis-aligned bounding box in degrees. A Rect never wraps the
// antimeridian; callers needing wrap-around split their query into two rects.
type Rect struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLng: math.Min(a.Lng, b.Lng),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLng: math.Max(a.Lng, b.Lng),
	}
}

// WorldRect covers the full coordinate domain.
func WorldRect() Rect {
	return Rect{MinLat: -90, MinLng: -180, MaxLat: 90, MaxLng: 180}
}

// Contains reports whether p lies inside r (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lng >= r.MinLng && p.Lng <= r.MaxLng
}

// Intersects reports whether r and s share any area (touching edges count).
func (r Rect) Intersects(s Rect) bool {
	return r.MinLat <= s.MaxLat && s.MinLat <= r.MaxLat &&
		r.MinLng <= s.MaxLng && s.MinLng <= r.MaxLng
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lng: (r.MinLng + r.MaxLng) / 2}
}

// Valid reports whether r has non-negative extent and legal coordinates.
func (r Rect) Valid() bool {
	if r.MinLat > r.MaxLat || r.MinLng > r.MaxLng {
		return false
	}
	return (Point{r.MinLat, r.MinLng}).Validate() == nil &&
		(Point{r.MaxLat, r.MaxLng}).Validate() == nil
}

// Circle is a spherical cap target region: all points within RadiusKm of
// Center. It is the natural shape of an ad's geographic target ("within 25 km
// of the stadium").
type Circle struct {
	Center   Point
	RadiusKm float64
}

// Contains reports whether p lies within the circle.
func (c Circle) Contains(p Point) bool {
	return c.Center.DistanceKm(p) <= c.RadiusKm
}

// Bounds returns a bounding rectangle that is guaranteed to contain the
// circle. The rectangle is conservative (may be larger than the tight bound)
// near the poles, which only costs extra candidate checks, never misses.
func (c Circle) Bounds() Rect {
	dLat := (c.RadiusKm / EarthRadiusKm) * 180 / math.Pi
	// Longitude degrees shrink with cos(lat); use the worst (largest |lat|)
	// edge of the circle for a conservative bound.
	maxAbsLat := math.Min(90, math.Max(math.Abs(c.Center.Lat-dLat), math.Abs(c.Center.Lat+dLat)))
	cosLat := math.Cos(maxAbsLat * math.Pi / 180)
	var dLng float64
	if cosLat < 1e-9 {
		dLng = 180 // circle touches a pole: all longitudes possible
	} else {
		dLng = dLat / cosLat
		if dLng > 180 {
			dLng = 180
		}
	}
	return Rect{
		MinLat: math.Max(-90, c.Center.Lat-dLat),
		MaxLat: math.Min(90, c.Center.Lat+dLat),
		MinLng: math.Max(-180, c.Center.Lng-dLng),
		MaxLng: math.Min(180, c.Center.Lng+dLng),
	}
}

// Proximity maps distance from the circle's centre to a relevance value in
// [0, 1]: 1 at the centre, decaying linearly to 0 at the radius, 0 outside.
// This is the GeoProx term of the ad scoring function.
func (c Circle) Proximity(p Point) float64 {
	if c.RadiusKm <= 0 {
		if c.Center.DistanceKm(p) == 0 {
			return 1
		}
		return 0
	}
	d := c.Center.DistanceKm(p)
	if d >= c.RadiusKm {
		return 0
	}
	return 1 - d/c.RadiusKm
}
