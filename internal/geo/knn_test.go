package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKNearestBasics(t *testing.T) {
	qt := NewQuadtree(NewRect(Point{0, 0}, Point{10, 10}), 4)
	pts := map[int64]Point{
		1: {1, 1}, 2: {2, 2}, 3: {5, 5}, 4: {9, 9},
	}
	for id, p := range pts {
		qt.Insert(id, p)
	}
	got := qt.KNearest(Point{0, 0}, 2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("KNearest = %+v", got)
	}
	if got[0].DistanceKm >= got[1].DistanceKm {
		t.Fatal("not distance-ordered")
	}
	// k larger than the tree returns everything, sorted.
	got = qt.KNearest(Point{0, 0}, 10)
	if len(got) != 4 || got[3].ID != 4 {
		t.Fatalf("oversized k: %+v", got)
	}
	// Edge cases.
	if qt.KNearest(Point{0, 0}, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
	empty := NewQuadtree(WorldRect(), 4)
	if empty.KNearest(Point{0, 0}, 3) != nil {
		t.Fatal("empty tree should be nil")
	}
}

func TestKNearestQueryOutsideBounds(t *testing.T) {
	qt := NewQuadtree(NewRect(Point{0, 0}, Point{1, 1}), 4)
	qt.Insert(1, Point{0.5, 0.5})
	qt.Insert(2, Point{0.9, 0.9})
	// Query from far outside the tree's coverage.
	got := qt.KNearest(Point{50, 50}, 2)
	if len(got) != 2 || got[0].ID != 2 {
		t.Fatalf("outside query: %+v", got)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bounds := NewRect(Point{-30, -30}, Point{30, 30})
	qt := NewQuadtree(bounds, 8)
	type rec struct {
		id int64
		p  Point
	}
	var recs []rec
	for i := 0; i < 500; i++ {
		p := Point{Lat: rng.Float64()*60 - 30, Lng: rng.Float64()*60 - 30}
		qt.Insert(int64(i), p)
		recs = append(recs, rec{int64(i), p})
	}
	for trial := 0; trial < 50; trial++ {
		q := Point{Lat: rng.Float64()*60 - 30, Lng: rng.Float64()*60 - 30}
		k := 1 + rng.Intn(12)
		got := qt.KNearest(q, k)

		sorted := append([]rec(nil), recs...)
		sort.Slice(sorted, func(i, j int) bool {
			di, dj := q.DistanceKm(sorted[i].p), q.DistanceKm(sorted[j].p)
			if di != dj {
				return di < dj
			}
			return sorted[i].id < sorted[j].id
		})
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i := 0; i < k; i++ {
			if got[i].ID != sorted[i].id {
				t.Fatalf("trial %d rank %d: got id %d (d=%.4f), want %d (d=%.4f)",
					trial, i, got[i].ID, got[i].DistanceKm, sorted[i].id, q.DistanceKm(sorted[i].p))
			}
		}
	}
}

func BenchmarkKNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	qt := NewQuadtree(NewRect(Point{-30, -30}, Point{30, 30}), 16)
	for i := 0; i < 20000; i++ {
		qt.Insert(int64(i), Point{Lat: rng.Float64()*60 - 30, Lng: rng.Float64()*60 - 30})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt.KNearest(Point{Lat: float64(i%60) - 30, Lng: 0}, 10)
	}
}
