package geo

import (
	"fmt"
	"math"
)

// CellID identifies one cell of a uniform Grid. Cells are numbered row-major
// from the south-west corner.
type CellID int32

// InvalidCell is returned for points outside the grid's coverage rectangle.
const InvalidCell CellID = -1

// Grid partitions a coverage rectangle into Rows × Cols equal cells and keeps
// a set of item IDs per cell. It is the coarse spatial pre-filter of the ad
// pipeline: ads register the cells their target circles overlap, and a user
// location maps to exactly one cell, so eligibility checks touch only the ads
// registered there.
//
// Grid is not safe for concurrent mutation; the engine guards it with its own
// lock. Reads concurrent with reads are safe.
type Grid struct {
	cover Rect
	rows  int
	cols  int
	cellH float64 // latitude degrees per row
	cellW float64 // longitude degrees per column
	cells map[CellID]map[int64]struct{}
	items map[int64][]CellID // reverse map for O(cells) removal
}

// NewGrid creates a grid over cover with the given resolution. rows and cols
// must be positive; cover must be valid with positive area.
func NewGrid(cover Rect, rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("geo: grid resolution %dx%d must be positive", rows, cols)
	}
	if !cover.Valid() {
		return nil, fmt.Errorf("geo: invalid cover rect %+v", cover)
	}
	if cover.MaxLat == cover.MinLat || cover.MaxLng == cover.MinLng {
		return nil, fmt.Errorf("geo: cover rect has zero area: %+v", cover)
	}
	return &Grid{
		cover: cover,
		rows:  rows,
		cols:  cols,
		cellH: (cover.MaxLat - cover.MinLat) / float64(rows),
		cellW: (cover.MaxLng - cover.MinLng) / float64(cols),
		cells: make(map[CellID]map[int64]struct{}),
		items: make(map[int64][]CellID),
	}, nil
}

// Rows returns the number of grid rows.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of grid columns.
func (g *Grid) Cols() int { return g.cols }

// Cover returns the coverage rectangle.
func (g *Grid) Cover() Rect { return g.cover }

// CellOf maps a point to its cell, or InvalidCell when p is outside coverage.
func (g *Grid) CellOf(p Point) CellID {
	if !g.cover.Contains(p) {
		return InvalidCell
	}
	row := int((p.Lat - g.cover.MinLat) / g.cellH)
	col := int((p.Lng - g.cover.MinLng) / g.cellW)
	// Points exactly on the max edge belong to the last row/column.
	if row == g.rows {
		row = g.rows - 1
	}
	if col == g.cols {
		col = g.cols - 1
	}
	return CellID(row*g.cols + col)
}

// CellRect returns the rectangle of the given cell.
func (g *Grid) CellRect(id CellID) Rect {
	row := int(id) / g.cols
	col := int(id) % g.cols
	return Rect{
		MinLat: g.cover.MinLat + float64(row)*g.cellH,
		MinLng: g.cover.MinLng + float64(col)*g.cellW,
		MaxLat: g.cover.MinLat + float64(row+1)*g.cellH,
		MaxLng: g.cover.MinLng + float64(col+1)*g.cellW,
	}
}

// CellsIntersecting returns the IDs of all cells overlapping r, clipped to the
// coverage rectangle. The result is empty when r misses the coverage entirely.
func (g *Grid) CellsIntersecting(r Rect) []CellID {
	if !r.Intersects(g.cover) {
		return nil
	}
	minRow := g.clampRow(int(math.Floor((r.MinLat - g.cover.MinLat) / g.cellH)))
	maxRow := g.clampRow(int(math.Floor((r.MaxLat - g.cover.MinLat) / g.cellH)))
	minCol := g.clampCol(int(math.Floor((r.MinLng - g.cover.MinLng) / g.cellW)))
	maxCol := g.clampCol(int(math.Floor((r.MaxLng - g.cover.MinLng) / g.cellW)))
	out := make([]CellID, 0, (maxRow-minRow+1)*(maxCol-minCol+1))
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			out = append(out, CellID(row*g.cols+col))
		}
	}
	return out
}

func (g *Grid) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= g.rows {
		return g.rows - 1
	}
	return r
}

func (g *Grid) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

// InsertCircle registers item in every cell its circle's bounding box
// overlaps. Re-inserting an existing item replaces its registration.
func (g *Grid) InsertCircle(item int64, c Circle) {
	g.Remove(item)
	ids := g.CellsIntersecting(c.Bounds())
	if len(ids) == 0 {
		return
	}
	for _, id := range ids {
		set := g.cells[id]
		if set == nil {
			set = make(map[int64]struct{})
			g.cells[id] = set
		}
		set[item] = struct{}{}
	}
	g.items[item] = ids
}

// Remove deletes an item's registration. Removing an unknown item is a no-op.
func (g *Grid) Remove(item int64) {
	ids, ok := g.items[item]
	if !ok {
		return
	}
	for _, id := range ids {
		set := g.cells[id]
		delete(set, item)
		if len(set) == 0 {
			delete(g.cells, id)
		}
	}
	delete(g.items, item)
}

// ItemsAt returns the items registered in the cell containing p. The returned
// slice is freshly allocated. Ordering is unspecified.
func (g *Grid) ItemsAt(p Point) []int64 {
	id := g.CellOf(p)
	if id == InvalidCell {
		return nil
	}
	set := g.cells[id]
	if len(set) == 0 {
		return nil
	}
	out := make([]int64, 0, len(set))
	for item := range set {
		out = append(out, item)
	}
	return out
}

// ContainsItemAt reports whether item is registered in the cell containing p.
// It is the O(1) eligibility probe used on the hot scoring path.
func (g *Grid) ContainsItemAt(item int64, p Point) bool {
	id := g.CellOf(p)
	if id == InvalidCell {
		return false
	}
	_, ok := g.cells[id][item]
	return ok
}

// Len returns the number of registered items.
func (g *Grid) Len() int { return len(g.items) }
