package geo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestQuadtreeInsertAndLen(t *testing.T) {
	qt := NewQuadtree(NewRect(Point{0, 0}, Point{10, 10}), 4)
	if qt.Len() != 0 {
		t.Fatalf("new tree Len = %d", qt.Len())
	}
	if !qt.Insert(1, Point{5, 5}) {
		t.Fatal("in-bounds insert rejected")
	}
	if qt.Insert(2, Point{11, 5}) {
		t.Fatal("out-of-bounds insert accepted")
	}
	if qt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", qt.Len())
	}
}

func TestQuadtreeSplitAndQuery(t *testing.T) {
	qt := NewQuadtree(NewRect(Point{0, 0}, Point{10, 10}), 2)
	pts := []Point{{1, 1}, {1, 9}, {9, 1}, {9, 9}, {5, 5}, {2, 2}, {8, 8}}
	for i, p := range pts {
		if !qt.Insert(int64(i), p) {
			t.Fatalf("insert %d failed", i)
		}
	}
	got := sortedIDs(qt.QueryRect(NewRect(Point{0, 0}, Point{5, 5}), nil))
	want := []int64{0, 4, 5} // (1,1), (5,5), (2,2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QueryRect = %v, want %v", got, want)
	}
}

func TestQuadtreeRemove(t *testing.T) {
	qt := NewQuadtree(NewRect(Point{0, 0}, Point{10, 10}), 2)
	qt.Insert(1, Point{3, 3})
	qt.Insert(2, Point{3, 3}) // same location, different id
	if !qt.Remove(1, Point{3, 3}) {
		t.Fatal("remove existing failed")
	}
	if qt.Remove(1, Point{3, 3}) {
		t.Fatal("double remove succeeded")
	}
	if qt.Remove(3, Point{3, 3}) {
		t.Fatal("removing unknown id succeeded")
	}
	if qt.Remove(2, Point{4, 4}) {
		t.Fatal("removing with wrong location succeeded")
	}
	if qt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", qt.Len())
	}
	ids := qt.QueryRect(WorldRect(), nil)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("remaining ids = %v, want [2]", ids)
	}
}

func TestQuadtreeDuplicatePointsBoundedDepth(t *testing.T) {
	qt := NewQuadtree(NewRect(Point{0, 0}, Point{10, 10}), 1)
	for i := 0; i < 100; i++ {
		qt.Insert(int64(i), Point{5, 5})
	}
	if qt.Len() != 100 {
		t.Fatalf("Len = %d, want 100", qt.Len())
	}
	if d := qt.Depth(); d > maxQuadDepth {
		t.Fatalf("depth %d exceeds cap %d", d, maxQuadDepth)
	}
	got := qt.QueryRect(NewRect(Point{4, 4}, Point{6, 6}), nil)
	if len(got) != 100 {
		t.Fatalf("query returned %d ids, want 100", len(got))
	}
}

// TestQuadtreeMatchesLinearScan is the exactness property: quadtree range
// and circle queries must return exactly what a brute-force scan returns.
func TestQuadtreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := NewRect(Point{-50, -50}, Point{50, 50})
	qt := NewQuadtree(bounds, 8)
	type rec struct {
		id int64
		p  Point
	}
	var recs []rec
	for i := 0; i < 1000; i++ {
		p := Point{Lat: rng.Float64()*100 - 50, Lng: rng.Float64()*100 - 50}
		qt.Insert(int64(i), p)
		recs = append(recs, rec{int64(i), p})
	}
	for q := 0; q < 100; q++ {
		r := NewRect(
			Point{rng.Float64()*100 - 50, rng.Float64()*100 - 50},
			Point{rng.Float64()*100 - 50, rng.Float64()*100 - 50},
		)
		var want []int64
		for _, rc := range recs {
			if r.Contains(rc.p) {
				want = append(want, rc.id)
			}
		}
		got := sortedIDs(qt.QueryRect(r, nil))
		if !reflect.DeepEqual(got, sortedIDs(want)) {
			t.Fatalf("rect query mismatch: got %d ids, want %d", len(got), len(want))
		}

		c := Circle{
			Center:   Point{rng.Float64()*100 - 50, rng.Float64()*100 - 50},
			RadiusKm: rng.Float64() * 2000,
		}
		want = want[:0]
		for _, rc := range recs {
			if c.Contains(rc.p) {
				want = append(want, rc.id)
			}
		}
		got = sortedIDs(qt.QueryCircle(c, nil))
		if !reflect.DeepEqual(got, sortedIDs(want)) {
			t.Fatalf("circle query mismatch: got %d ids, want %d", len(got), len(want))
		}
	}
}

func TestQuadtreeInsertQueryProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		bounds := NewRect(Point{0, 0}, Point{1, 1})
		qt := NewQuadtree(bounds, 3)
		var pts []Point
		for i, s := range seeds {
			p := Point{
				Lat: float64(s%1000) / 1000,
				Lng: float64((s/1000)%1000) / 1000,
			}
			if !qt.Insert(int64(i), p) {
				return false
			}
			pts = append(pts, p)
		}
		// Every inserted point must be returned by a query containing it.
		got := qt.QueryRect(bounds, nil)
		return len(got) == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
