package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Point
		ok   bool
	}{
		{"origin", Point{0, 0}, true},
		{"north pole", Point{90, 0}, true},
		{"south pole", Point{-90, 0}, true},
		{"dateline east", Point{0, 180}, true},
		{"dateline west", Point{0, -180}, true},
		{"lat too big", Point{90.001, 0}, false},
		{"lat too small", Point{-90.001, 0}, false},
		{"lng too big", Point{0, 180.5}, false},
		{"lng too small", Point{0, -181}, false},
		{"nan lat", Point{math.NaN(), 0}, false},
		{"inf lng", Point{0, math.Inf(1)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate(%v) = %v, want ok=%v", tt.p, err, tt.ok)
			}
		})
	}
}

func TestDistanceKmKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"same point", Point{1.3, 103.8}, Point{1.3, 103.8}, 0, 1e-9},
		{"singapore to kuala lumpur", Point{1.3521, 103.8198}, Point{3.1390, 101.6869}, 309, 5},
		{"london to paris", Point{51.5074, -0.1278}, Point{48.8566, 2.3522}, 344, 5},
		{"pole to pole", Point{90, 0}, Point{-90, 0}, math.Pi * EarthRadiusKm, 1},
		{"quarter meridian", Point{0, 0}, Point{90, 0}, math.Pi * EarthRadiusKm / 2, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceKm(tt.b)
			if math.Abs(got-tt.wantKm) > tt.tolKm {
				t.Fatalf("DistanceKm = %v, want %v ± %v", got, tt.wantKm, tt.tolKm)
			}
		})
	}
}

// clampPoint maps arbitrary float64 pairs into valid coordinates so quick
// can exercise the full domain.
func clampPoint(lat, lng float64) Point {
	wrap := func(v, lim float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, lim)
	}
	return Point{Lat: wrap(lat, 90), Lng: wrap(lng, 180)}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := clampPoint(lat1, lng1)
		b := clampPoint(lat2, lng2)
		d1 := a.DistanceKm(b)
		d2 := b.DistanceKm(a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && d1 <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2, lat3, lng3 float64) bool {
		a := clampPoint(lat1, lng1)
		b := clampPoint(lat2, lng2)
		c := clampPoint(lat3, lng3)
		return a.DistanceKm(c) <= a.DistanceKm(b)+b.DistanceKm(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectContainsAndIntersects(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if !r.Contains(Point{5, 5}) {
		t.Error("center should be contained")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("corners should be contained (inclusive)")
	}
	if r.Contains(Point{10.01, 5}) {
		t.Error("outside point contained")
	}
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(Point{5, 5}, Point{15, 15}), true},
		{NewRect(Point{10, 10}, Point{20, 20}), true}, // touching corner
		{NewRect(Point{11, 11}, Point{20, 20}), false},
		{NewRect(Point{-5, -5}, Point{-1, -1}), false},
		{NewRect(Point{2, 2}, Point{3, 3}), true}, // fully inside
	}
	for i, c := range cases {
		if got := r.Intersects(c.s); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.s.Intersects(r); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestRectValid(t *testing.T) {
	if !WorldRect().Valid() {
		t.Error("world rect should be valid")
	}
	if (Rect{MinLat: 5, MaxLat: 1, MinLng: 0, MaxLng: 1}).Valid() {
		t.Error("inverted rect should be invalid")
	}
	if (Rect{MinLat: -100, MaxLat: 0, MinLng: 0, MaxLng: 1}).Valid() {
		t.Error("out-of-range rect should be invalid")
	}
}

func TestCircleContainsAndProximity(t *testing.T) {
	c := Circle{Center: Point{1.3521, 103.8198}, RadiusKm: 50}
	if !c.Contains(c.Center) {
		t.Error("center must be contained")
	}
	if c.Proximity(c.Center) != 1 {
		t.Errorf("Proximity(center) = %v, want 1", c.Proximity(c.Center))
	}
	far := Point{3.1390, 101.6869} // ~316 km away
	if c.Contains(far) {
		t.Error("far point should be outside")
	}
	if got := c.Proximity(far); got != 0 {
		t.Errorf("Proximity(far) = %v, want 0", got)
	}
	// A point at roughly half the radius should give proximity near 0.5.
	near := Point{1.3521, 103.8198 + 25.0/111.0} // ≈25 km east at the equator
	got := c.Proximity(near)
	if got < 0.4 || got > 0.6 {
		t.Errorf("Proximity(half radius) = %v, want ≈0.5", got)
	}
}

func TestCircleZeroRadius(t *testing.T) {
	c := Circle{Center: Point{10, 10}, RadiusKm: 0}
	if got := c.Proximity(Point{10, 10}); got != 1 {
		t.Errorf("zero-radius proximity at center = %v, want 1", got)
	}
	if got := c.Proximity(Point{10, 10.1}); got != 0 {
		t.Errorf("zero-radius proximity off center = %v, want 0", got)
	}
}

func TestCircleBoundsContainsCircleProperty(t *testing.T) {
	f := func(lat, lng, radius, bearingSeed float64) bool {
		center := clampPoint(lat, lng)
		r := math.Mod(math.Abs(radius), 500) // up to 500 km
		if math.IsNaN(r) {
			r = 10
		}
		c := Circle{Center: center, RadiusKm: r}
		b := c.Bounds()
		// Sample points on the circle edge in several bearings; each must be
		// inside the bounding rect (when coordinates remain in range).
		for i := 0; i < 8; i++ {
			theta := bearingSeed + float64(i)*math.Pi/4
			p := offset(center, r*0.999, theta)
			if p.Validate() != nil {
				continue
			}
			if !c.Contains(p) {
				continue // spherical offset approximation overshoot; skip
			}
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// offset moves approximately distKm from p along a bearing (flat-earth local
// approximation, adequate for test sampling at sub-500 km scales away from
// the poles).
func offset(p Point, distKm, bearing float64) Point {
	dLat := distKm / 111.0 * math.Cos(bearing)
	cosLat := math.Cos(p.Lat * math.Pi / 180)
	if math.Abs(cosLat) < 1e-6 {
		cosLat = 1e-6
	}
	dLng := distKm / 111.0 * math.Sin(bearing) / cosLat
	return Point{Lat: p.Lat + dLat, Lng: p.Lng + dLng}
}
