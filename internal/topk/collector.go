// Package topk provides the top-k machinery of the recommender: a streaming
// bounded min-heap collector for one-shot rankings, and a k-skyband that
// bounds the candidate sets the CAP engine must retain to stay exact as
// scores decay over time.
package topk

import (
	"container/heap"
	"sort"
)

// Item is one scored candidate. Ties are broken by ascending ID so rankings
// are deterministic across engines, which lets the test suite compare exact
// result sets between CAP and the baselines.
type Item struct {
	ID    int64
	Score float64
}

// Less orders items by descending score, ascending ID on ties.
func (a Item) Less(b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Collector accumulates streamed candidates and retains the k best. The zero
// value is unusable; construct with NewCollector.
type Collector struct {
	k    int
	heap itemHeap // min-heap: heap[0] is the weakest retained item
}

// NewCollector returns a collector retaining the k best items (k ≥ 1 is
// clamped).
func NewCollector(k int) *Collector {
	if k < 1 {
		k = 1
	}
	return &Collector{k: k, heap: make(itemHeap, 0, k)}
}

// K returns the configured capacity.
func (c *Collector) K() int { return c.k }

// Len returns the number of retained items (≤ k).
func (c *Collector) Len() int { return len(c.heap) }

// Offer submits a candidate; it is retained only if it beats the current
// weakest (or the collector is not yet full). Returns true when retained.
func (c *Collector) Offer(id int64, score float64) bool {
	it := Item{ID: id, Score: score}
	if len(c.heap) < c.k {
		heap.Push(&c.heap, it)
		return true
	}
	if !it.Less(c.heap[0]) {
		return false
	}
	c.heap[0] = it
	heap.Fix(&c.heap, 0)
	return true
}

// Threshold returns the weakest retained score, or negative infinity when
// the collector is not yet full — the score a new candidate must beat.
func (c *Collector) Threshold() float64 {
	if len(c.heap) < c.k {
		return negInf
	}
	return c.heap[0].Score
}

// WouldAccept reports whether a candidate with the given score could enter
// the top-k (used by pruned query evaluation).
func (c *Collector) WouldAccept(score float64) bool {
	if len(c.heap) < c.k {
		return true
	}
	return score > c.heap[0].Score ||
		(score == c.heap[0].Score) // may win on ID tie-break; caller offers
}

// Items returns the retained items in final ranked order (best first),
// leaving the collector intact.
func (c *Collector) Items() []Item {
	out := make([]Item, len(c.heap))
	copy(out, c.heap)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Reset clears the collector for reuse without reallocating.
func (c *Collector) Reset() { c.heap = c.heap[:0] }

const negInf = -1.7976931348623157e308

// itemHeap is a min-heap ordered so the WORST retained item is at the root.
type itemHeap []Item

func (h itemHeap) Len() int { return len(h) }

// Less inverts Item.Less: the root must be the weakest element.
func (h itemHeap) Less(i, j int) bool { return h[j].Less(h[i]) }

func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(Item)) }

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
