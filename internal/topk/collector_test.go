package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(3)
	if c.K() != 3 || c.Len() != 0 {
		t.Fatal("fresh collector state wrong")
	}
	if got := c.Threshold(); got != negInf {
		t.Fatalf("empty threshold = %v", got)
	}
	for id, score := range map[int64]float64{1: 0.5, 2: 0.9, 3: 0.1, 4: 0.7, 5: 0.3} {
		c.Offer(id, score)
	}
	items := c.Items()
	want := []Item{{2, 0.9}, {4, 0.7}, {1, 0.5}}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("Items = %v, want %v", items, want)
	}
	if got := c.Threshold(); got != 0.5 {
		t.Fatalf("Threshold = %v, want 0.5", got)
	}
}

func TestCollectorTieBreakByID(t *testing.T) {
	c := NewCollector(2)
	c.Offer(5, 1.0)
	c.Offer(3, 1.0)
	c.Offer(9, 1.0)
	items := c.Items()
	want := []Item{{3, 1.0}, {5, 1.0}}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("Items = %v, want %v", items, want)
	}
}

func TestCollectorKClamped(t *testing.T) {
	c := NewCollector(0)
	if c.K() != 1 {
		t.Fatalf("K = %d, want 1", c.K())
	}
	c.Offer(1, 0.1)
	c.Offer(2, 0.2)
	items := c.Items()
	if len(items) != 1 || items[0].ID != 2 {
		t.Fatalf("Items = %v", items)
	}
}

func TestCollectorOfferReturn(t *testing.T) {
	c := NewCollector(1)
	if !c.Offer(1, 0.5) {
		t.Fatal("first offer should be retained")
	}
	if c.Offer(2, 0.4) {
		t.Fatal("weaker offer should be rejected")
	}
	if !c.Offer(3, 0.6) {
		t.Fatal("stronger offer should be retained")
	}
	if c.Items()[0].ID != 3 {
		t.Fatal("strongest not retained")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(2)
	c.Offer(1, 0.5)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	c.Offer(2, 0.1)
	if got := c.Items(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("post-Reset Items = %v", got)
	}
}

func TestWouldAccept(t *testing.T) {
	c := NewCollector(2)
	if !c.WouldAccept(0.0) {
		t.Fatal("non-full collector must accept anything")
	}
	c.Offer(1, 0.5)
	c.Offer(2, 0.7)
	if c.WouldAccept(0.4) {
		t.Fatal("score below threshold should be rejected")
	}
	if !c.WouldAccept(0.6) {
		t.Fatal("score above threshold should be accepted")
	}
	if !c.WouldAccept(0.5) {
		t.Fatal("score equal to threshold is a potential ID tie-break win")
	}
}

// TestCollectorMatchesSort is the exactness property: the collector must
// agree with sort-and-truncate on random inputs, including duplicates.
func TestCollectorMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(100)
		k := 1 + rng.Intn(10)
		c := NewCollector(k)
		var all []Item
		for i := 0; i < n; i++ {
			it := Item{ID: int64(rng.Intn(30)), Score: float64(rng.Intn(10)) / 10}
			all = append(all, it)
			c.Offer(it.ID, it.Score)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		got := c.Items()
		if len(got) == 0 && len(all) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d (n=%d k=%d): got %v want %v", trial, n, k, got, all)
		}
	}
}

func BenchmarkCollectorOffer(b *testing.B) {
	c := NewCollector(10)
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Offer(int64(i), scores[i%len(scores)])
	}
}
