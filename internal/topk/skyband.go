package topk

import "sort"

// Point2 is a candidate with two score components that are mixed with an
// unknown non-negative weight at read time. In the CAP engine these are
// (text relevance, static score): the final score is α·f·text + static where
// the decay factor f shrinks over time, so the ranking drifts between the
// text-dominant and static-dominant orders.
type Point2 struct {
	ID   int64
	X, Y float64 // the two score components (both "higher is better")
}

// dominates reports whether a dominates b: a is at least as good in both
// components and strictly better in one. A point never dominates an
// identical twin.
func dominates(a, b Point2) bool {
	return a.X >= b.X && a.Y >= b.Y && (a.X > b.X || a.Y > b.Y)
}

// Skyband returns the k-skyband of pts: the points dominated by fewer than k
// other points. Any candidate outside the k-skyband of
// (text, static) can never appear in a top-k result for any mixing factor
// ≥ 0, which is exactly the guarantee the CAP buffer compaction relies on.
//
// The result preserves no particular order. Runs in O(n log n).
func Skyband(pts []Point2, k int) []Point2 {
	if k < 1 || len(pts) == 0 {
		return nil
	}
	sorted := make([]Point2, len(pts))
	copy(sorted, pts)
	// Sort by X descending; within equal X by Y descending so a group scan
	// can count same-X dominators positionally.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X > sorted[j].X
		}
		return sorted[i].Y > sorted[j].Y
	})

	ranks := compressY(sorted)
	fen := newFenwick(len(ranks))
	out := make([]Point2, 0, min(len(pts), 4*k))

	i := 0
	for i < len(sorted) {
		// Group of equal X: all previously-inserted points have strictly
		// larger X, so every one of them with Y ≥ p.Y dominates p.
		j := i
		for j < len(sorted) && sorted[j].X == sorted[i].X {
			j++
		}
		group := sorted[i:j]
		for gi, p := range group {
			r := yRank(ranks, p.Y)
			prevDominators := fen.total() - fen.prefix(r-1) // prev points with Y ≥ p.Y
			// Within the group (same X), exactly the elements before the
			// first equal-Y entry have strictly larger Y and so dominate p.
			withinDominators := firstWithSameY(group, gi)
			if prevDominators+withinDominators < k {
				out = append(out, p)
			}
		}
		for _, p := range group {
			fen.add(yRank(ranks, p.Y), 1)
		}
		i = j
	}
	return out
}

// firstWithSameY returns the index of the first group element whose Y equals
// group[gi].Y (group is Y-descending).
func firstWithSameY(group []Point2, gi int) int {
	y := group[gi].Y
	lo := gi
	for lo > 0 && group[lo-1].Y == y {
		lo--
	}
	return lo
}

// compressY returns the sorted distinct Y values for rank compression.
func compressY(pts []Point2) []float64 {
	ys := make([]float64, len(pts))
	for i, p := range pts {
		ys[i] = p.Y
	}
	sort.Float64s(ys)
	out := ys[:0]
	for i, y := range ys {
		if i == 0 || y != out[len(out)-1] {
			out = append(out, y)
		}
	}
	return out
}

// yRank maps a Y value to its 1-based rank among the compressed values.
func yRank(ranks []float64, y float64) int {
	return sort.SearchFloat64s(ranks, y) + 1
}

// fenwick is a Fenwick (binary indexed) tree over 1-based ranks.
type fenwick struct {
	tree []int
	n    int
	sum  int
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int, n+1), n: n}
}

func (f *fenwick) add(i, delta int) {
	f.sum += delta
	for ; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the count of inserted ranks ≤ i.
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

func (f *fenwick) total() int { return f.sum }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
