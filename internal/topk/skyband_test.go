package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// skybandNaive is the O(n²) reference implementation.
func skybandNaive(pts []Point2, k int) []Point2 {
	if k < 1 {
		return nil
	}
	var out []Point2
	for _, p := range pts {
		dom := 0
		for _, q := range pts {
			if dominates(q, p) {
				dom++
			}
		}
		if dom < k {
			out = append(out, p)
		}
	}
	return out
}

func sortPts(pts []Point2) []Point2 {
	out := append([]Point2(nil), pts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func TestSkybandSmallCases(t *testing.T) {
	pts := []Point2{
		{ID: 1, X: 1, Y: 1},
		{ID: 2, X: 2, Y: 2}, // dominates 1
		{ID: 3, X: 3, Y: 0},
		{ID: 4, X: 0, Y: 3},
	}
	got := sortPts(Skyband(pts, 1))
	want := sortPts([]Point2{{ID: 2, X: 2, Y: 2}, {ID: 3, X: 3, Y: 0}, {ID: 4, X: 0, Y: 3}})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("1-skyband = %v, want %v", got, want)
	}
	// With k=2, point 1 (dominated only by 2) is included.
	got = Skyband(pts, 2)
	if len(got) != 4 {
		t.Fatalf("2-skyband size = %d, want 4", len(got))
	}
}

func TestSkybandDuplicates(t *testing.T) {
	// Identical points do not dominate each other.
	pts := []Point2{{1, 5, 5}, {2, 5, 5}, {3, 5, 5}}
	got := Skyband(pts, 1)
	if len(got) != 3 {
		t.Fatalf("identical points: %v, want all 3 kept", got)
	}
	// A strictly better point dominates all duplicates at once.
	pts = append(pts, Point2{4, 6, 5})
	got = Skyband(pts, 1)
	if len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("dominated duplicates kept: %v", got)
	}
}

func TestSkybandEdgeCases(t *testing.T) {
	if got := Skyband(nil, 3); got != nil {
		t.Fatalf("empty input: %v", got)
	}
	if got := Skyband([]Point2{{1, 1, 1}}, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	got := Skyband([]Point2{{1, 1, 1}}, 1)
	if len(got) != 1 {
		t.Fatalf("singleton: %v", got)
	}
}

func TestSkybandEqualXColumn(t *testing.T) {
	// All same X: dominance is a strict Y order; k-skyband keeps top-k Y
	// values (plus ties at the boundary value's dominator count).
	pts := []Point2{{1, 5, 1}, {2, 5, 2}, {3, 5, 3}, {4, 5, 4}}
	got := sortPts(Skyband(pts, 2))
	want := sortPts([]Point2{{3, 5, 3}, {4, 5, 4}})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("column 2-skyband = %v, want %v", got, want)
	}
}

func TestSkybandMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60)
		k := 1 + rng.Intn(5)
		pts := make([]Point2, n)
		for i := range pts {
			// Small discrete domain to generate many ties.
			pts[i] = Point2{
				ID: int64(i),
				X:  float64(rng.Intn(8)),
				Y:  float64(rng.Intn(8)),
			}
		}
		got := sortPts(Skyband(pts, k))
		want := sortPts(skybandNaive(pts, k))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): got %v want %v", trial, n, k, got, want)
		}
	}
}

// TestSkybandTopKCoverageProperty checks the property the CAP engine relies
// on: for ANY non-negative mixing factor f, the top-k of score = f·X + Y is
// contained in the k-skyband.
func TestSkybandTopKCoverageProperty(t *testing.T) {
	f := func(seed int64, rawFactor uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		n := 5 + rng.Intn(50)
		pts := make([]Point2, n)
		for i := range pts {
			pts[i] = Point2{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
		}
		factor := float64(rawFactor) / 16.0 // 0 .. ~16
		band := map[int64]bool{}
		for _, p := range Skyband(pts, k) {
			band[p.ID] = true
		}
		c := NewCollector(k)
		for _, p := range pts {
			c.Offer(p.ID, factor*p.X+p.Y)
		}
		for _, it := range c.Items() {
			if !band[it.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSkyband(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point2, 2000)
	for i := range pts {
		pts[i] = Point2{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Skyband(pts, 10)
	}
}
