// Package sketch provides streaming frequency summaries: a count-min sketch
// and a heavy-hitters tracker built on it. The engine uses them to surface
// trending topics per time slot from the post stream in O(1) memory — the
// signal ad-ops uses to steer keyword targeting.
package sketch

import (
	"fmt"
	"math"
)

// CountMin is a count-min sketch: a fixed-size frequency summary with
// one-sided error. Count(key) never under-estimates the true count and
// over-estimates by at most ε·N with probability ≥ 1−δ, where N is the
// total added weight.
//
// Not safe for concurrent use.
type CountMin struct {
	width  int
	depth  int
	counts []uint64 // depth × width, row-major
	total  uint64
}

// NewCountMin sizes the sketch for error bound epsilon at confidence 1−delta.
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("sketch: epsilon %v outside (0,1)", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: delta %v outside (0,1)", delta)
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return &CountMin{
		width:  width,
		depth:  depth,
		counts: make([]uint64, width*depth),
	}, nil
}

// Width returns the sketch width (counters per row).
func (c *CountMin) Width() int { return c.width }

// Depth returns the number of hash rows.
func (c *CountMin) Depth() int { return c.depth }

// Total returns the total added weight N.
func (c *CountMin) Total() uint64 { return c.total }

// splitmix64 is the 64-bit finalizer used as the row hash family: mixing
// key ⊕ seed through it gives independent-enough hash rows.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rowSeed derives a per-row seed.
func rowSeed(row int) uint64 {
	return splitmix64(uint64(row+1) * 0x9e3779b97f4a7c15)
}

func (c *CountMin) slot(row int, key uint64) int {
	h := splitmix64(key ^ rowSeed(row))
	return row*c.width + int(h%uint64(c.width))
}

// Add increases key's count by inc.
func (c *CountMin) Add(key uint64, inc uint64) {
	for row := 0; row < c.depth; row++ {
		c.counts[c.slot(row, key)] += inc
	}
	c.total += inc
}

// Count returns the estimated count of key (never below the true count).
func (c *CountMin) Count(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for row := 0; row < c.depth; row++ {
		if v := c.counts[c.slot(row, key)]; v < min {
			min = v
		}
	}
	return min
}

// Reset zeroes the sketch for reuse.
func (c *CountMin) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.total = 0
}

// ErrorBound returns the one-sided overestimate bound ε·N for the stream
// seen so far, where ε = e/width: Count(key) ≤ true + ErrorBound() with
// probability ≥ 1−δ, and Count(key) ≥ true always.
func (c *CountMin) ErrorBound() uint64 {
	return uint64(math.Ceil(math.E / float64(c.width) * float64(c.total)))
}

// Merge folds other into c element-wise. Both sketches must share the same
// row-hash family, which NewCountMin guarantees for equal dimensions; the
// merged sketch estimates the concatenated stream. Merging is commutative:
// a.Merge(b) and b.Merge(a) yield identical counters.
func (c *CountMin) Merge(other *CountMin) error {
	if c.width != other.width || c.depth != other.depth {
		return fmt.Errorf("sketch: merge dimension mismatch %dx%d vs %dx%d",
			c.depth, c.width, other.depth, other.width)
	}
	for i := range c.counts {
		c.counts[i] += other.counts[i]
	}
	c.total += other.total
	return nil
}

// Counted is one heavy-hitter result.
type Counted struct {
	Key   uint64
	Count uint64
}

// HeavyHitters tracks the approximate top-k most frequent keys of a stream
// using a count-min sketch plus a bounded candidate map. Not safe for
// concurrent use.
type HeavyHitters struct {
	cm   *CountMin
	k    int
	cand map[uint64]uint64 // candidate key → sketch estimate at last touch
}

// NewHeavyHitters tracks the top k keys with the given sketch accuracy.
func NewHeavyHitters(k int, epsilon, delta float64) (*HeavyHitters, error) {
	if k < 1 {
		return nil, fmt.Errorf("sketch: k %d < 1", k)
	}
	cm, err := NewCountMin(epsilon, delta)
	if err != nil {
		return nil, err
	}
	return &HeavyHitters{cm: cm, k: k, cand: make(map[uint64]uint64, 2*k)}, nil
}

// Offer adds weight for a key and updates the candidate set.
func (h *HeavyHitters) Offer(key uint64, inc uint64) {
	h.cm.Add(key, inc)
	est := h.cm.Count(key)
	if _, tracked := h.cand[key]; tracked {
		h.cand[key] = est
		return
	}
	if len(h.cand) < 2*h.k {
		h.cand[key] = est
		return
	}
	// Evict the weakest candidate if the newcomer beats it.
	weakestKey, weakest := uint64(0), uint64(math.MaxUint64)
	for ck, cv := range h.cand {
		if cv < weakest {
			weakestKey, weakest = ck, cv
		}
	}
	if est > weakest {
		delete(h.cand, weakestKey)
		h.cand[key] = est
	}
}

// TopK returns the current top-k candidates in descending estimated count
// (ascending key on ties).
func (h *HeavyHitters) TopK() []Counted {
	out := make([]Counted, 0, len(h.cand))
	for key := range h.cand {
		out = append(out, Counted{Key: key, Count: h.cm.Count(key)})
	}
	sortCounted(out)
	if len(out) > h.k {
		out = out[:h.k]
	}
	return out
}

// sortCounted orders results in descending count, ascending key on ties.
// Insertion sort: candidate sets are ≤ 2k per sub-window.
func sortCounted(out []Counted) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Count > a.Count || (b.Count == a.Count && b.Key < a.Key) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
}

// Total returns the total weight observed.
func (h *HeavyHitters) Total() uint64 { return h.cm.Total() }

// Reset clears the tracker.
func (h *HeavyHitters) Reset() {
	h.cm.Reset()
	h.cand = make(map[uint64]uint64, 2*h.k)
}
