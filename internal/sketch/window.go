package sketch

import (
	"fmt"
	"math"
	"time"
)

// epochUnset marks a Windowed that has not seen a timestamp yet; the first
// Advance anchors the ring to that instant's sub-window.
const epochUnset = math.MinInt64

// Windowed tracks heavy hitters over a sliding time window. The window is
// ring-buffered into n sub-windows of span each: offers land in the current
// sub-window, and advancing time rotates the ring, resetting sub-windows as
// they age out. Decay is therefore stepwise — an observation contributes at
// full weight until its sub-window leaves the ring, then disappears — which
// keeps memory exactly bounded at n sketches regardless of stream rate.
//
// span == 0 disables windowing: a single sub-window accumulates forever and
// timestamps are ignored. That mode serves callers that window by an
// external key (the trending tracker buckets per time slot) but still want
// the shared top-k machinery.
//
// Not safe for concurrent use.
type Windowed struct {
	k     int
	span  time.Duration
	subs  []*HeavyHitters
	cur   int   // index of the current (newest) sub-window
	epoch int64 // absolute sub-window number of subs[cur]
}

// NewWindowed tracks the top k keys per query window with the given
// per-sub-window sketch accuracy. span is the sub-window length and n the
// number of sub-windows retained (so the maximum queryable window is
// n×span). span == 0 means unwindowed: n is forced to 1 and time is
// ignored.
func NewWindowed(k int, epsilon, delta float64, span time.Duration, n int) (*Windowed, error) {
	if span < 0 {
		return nil, fmt.Errorf("sketch: negative sub-window span %v", span)
	}
	if span == 0 {
		n = 1
	}
	if n < 1 {
		return nil, fmt.Errorf("sketch: sub-window count %d < 1", n)
	}
	subs := make([]*HeavyHitters, n)
	for i := range subs {
		hh, err := NewHeavyHitters(k, epsilon, delta)
		if err != nil {
			return nil, err
		}
		subs[i] = hh
	}
	return &Windowed{k: k, span: span, subs: subs, epoch: epochUnset}, nil
}

// K returns the per-query result capacity.
func (w *Windowed) K() int { return w.k }

// Span returns the sub-window length (0 when unwindowed).
func (w *Windowed) Span() time.Duration { return w.span }

// SubWindows returns the number of retained sub-windows.
func (w *Windowed) SubWindows() int { return len(w.subs) }

// MaxWindow returns the longest queryable window, n×span (0 when
// unwindowed).
func (w *Windowed) MaxWindow() time.Duration {
	return w.span * time.Duration(len(w.subs))
}

// Advance rotates the ring so that subs[cur] is the sub-window containing
// now, resetting any sub-windows that aged out. Time moving backwards (or
// standing still) leaves the ring untouched, so out-of-order offers within
// the resolution of a sub-window are absorbed rather than dropped.
func (w *Windowed) Advance(now time.Time) {
	if w.span == 0 {
		return
	}
	e := now.UnixNano() / int64(w.span)
	switch {
	case w.epoch == epochUnset:
		w.epoch = e
	case e <= w.epoch:
		// stalled or stepped-back clock: keep accumulating in the
		// current sub-window
	case e-w.epoch >= int64(len(w.subs)):
		// the whole ring aged out at once
		for _, s := range w.subs {
			s.Reset()
		}
		w.cur = 0
		w.epoch = e
	default:
		for w.epoch < e {
			w.cur = (w.cur + 1) % len(w.subs)
			w.subs[w.cur].Reset()
			w.epoch++
		}
	}
}

// Offer adds weight for a key at time now.
func (w *Windowed) Offer(key uint64, inc uint64, now time.Time) {
	w.Advance(now)
	w.subs[w.cur].Offer(key, inc)
}

// covered maps a requested window to the number of newest sub-windows it
// spans: ⌈window/span⌉ clamped to [1, n]. window ≤ 0 requests the full
// ring.
func (w *Windowed) covered(window time.Duration) int {
	if w.span == 0 || len(w.subs) == 1 {
		return 1
	}
	if window <= 0 {
		return len(w.subs)
	}
	m := int((window + w.span - 1) / w.span)
	if m < 1 {
		m = 1
	}
	if m > len(w.subs) {
		m = len(w.subs)
	}
	return m
}

// CoveredSpan returns the effective window a query for the given window
// actually reads: covered×span, the requested window rounded up to whole
// sub-windows and clamped to the ring (0 when unwindowed).
func (w *Windowed) CoveredSpan(window time.Duration) time.Duration {
	if w.span == 0 {
		return 0
	}
	return w.span * time.Duration(w.covered(window))
}

// sub returns the i-th newest sub-window (0 = current).
func (w *Windowed) sub(i int) *HeavyHitters {
	return w.subs[(w.cur-i+len(w.subs))%len(w.subs)]
}

// estimate sums the key's per-sub-window sketch estimates over the m newest
// sub-windows. Each term is one-sided (never under its sub-window's true
// count), so the sum never under-estimates the windowed count.
func (w *Windowed) estimate(key uint64, m int) uint64 {
	var total uint64
	for i := 0; i < m; i++ {
		total += w.sub(i).cm.Count(key)
	}
	return total
}

// TopK returns the top-k keys over the requested window ending at now, in
// descending estimated count (ascending key on ties).
func (w *Windowed) TopK(now time.Time, window time.Duration) []Counted {
	w.Advance(now)
	m := w.covered(window)
	keys := make(map[uint64]struct{})
	for i := 0; i < m; i++ {
		for key := range w.sub(i).cand {
			keys[key] = struct{}{}
		}
	}
	out := make([]Counted, 0, len(keys))
	for key := range keys {
		out = append(out, Counted{Key: key, Count: w.estimate(key, m)})
	}
	sortCounted(out)
	if len(out) > w.k {
		out = out[:w.k]
	}
	return out
}

// Candidates returns the union of candidate keys across the whole ring —
// every key a query over any window could currently report. Callers use it
// to bound side tables (e.g. key→name maps) to live candidates.
func (w *Windowed) Candidates() []uint64 {
	keys := make(map[uint64]struct{})
	for _, s := range w.subs {
		for key := range s.cand {
			keys[key] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(keys))
	for key := range keys {
		out = append(out, key)
	}
	return out
}

// Total returns the total weight observed in the requested window ending at
// now.
func (w *Windowed) Total(now time.Time, window time.Duration) uint64 {
	w.Advance(now)
	m := w.covered(window)
	var total uint64
	for i := 0; i < m; i++ {
		total += w.sub(i).Total()
	}
	return total
}

// ErrorBound returns the one-sided overestimate bound for windowed counts:
// the sum of each covered sub-window's ε·N bound, which telescopes to
// ε·N_window. For any key, TopK's count ≤ true + ErrorBound with
// probability ≥ 1−δ per sub-window, and count ≥ true always.
func (w *Windowed) ErrorBound(now time.Time, window time.Duration) uint64 {
	w.Advance(now)
	m := w.covered(window)
	var bound uint64
	for i := 0; i < m; i++ {
		bound += w.sub(i).cm.ErrorBound()
	}
	return bound
}

// Reset clears the whole ring.
func (w *Windowed) Reset() {
	for _, s := range w.subs {
		s.Reset()
	}
	w.cur = 0
	w.epoch = epochUnset
}
