package sketch

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestCountMinOverestimateBoundProperty: for random streams, every point
// query is ≥ the true count and — with headroom for the per-key δ failure
// probability — within the advertised ε·N bound.
func TestCountMinOverestimateBoundProperty(t *testing.T) {
	f := func(keys []uint64, weights []uint16) bool {
		cm, err := NewCountMin(0.01, 0.01)
		if err != nil {
			return false
		}
		truth := map[uint64]uint64{}
		for i, k := range keys {
			w := uint64(1)
			if i < len(weights) {
				w = uint64(weights[i]) + 1
			}
			cm.Add(k, w)
			truth[k] += w
		}
		bound := cm.ErrorBound()
		violations := 0
		for k, want := range truth {
			got := cm.Count(k)
			if got < want {
				return false // the hard one-sided guarantee
			}
			if got > want+bound {
				violations++
			}
		}
		// ε·N holds per key with prob ≥ 1−δ; allow a small tail.
		return violations <= len(truth)/20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCountMinMergeCommutativity: merging two sketches in either order
// yields identical counters, and the merge of two half-streams matches the
// sketch of the concatenated stream exactly.
func TestCountMinMergeCommutativity(t *testing.T) {
	f := func(as, bs []uint64) bool {
		build := func(keys []uint64) *CountMin {
			cm, _ := NewCountMin(0.02, 0.05)
			for _, k := range keys {
				cm.Add(k, 1)
			}
			return cm
		}
		ab, ba := build(as), build(bs)
		whole := build(append(append([]uint64{}, as...), bs...))
		other := build(bs)
		if err := ab.Merge(other); err != nil {
			return false
		}
		otherA := build(as)
		if err := ba.Merge(otherA); err != nil {
			return false
		}
		if ab.Total() != ba.Total() || ab.Total() != whole.Total() {
			return false
		}
		for i := range ab.counts {
			if ab.counts[i] != ba.counts[i] || ab.counts[i] != whole.counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinMergeDimensionMismatch(t *testing.T) {
	a, _ := NewCountMin(0.01, 0.01)
	b, _ := NewCountMin(0.1, 0.01)
	if err := a.Merge(b); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestWindowedDecayMonotonicity: with no new offers, advancing time never
// increases a key's windowed estimate, and after the whole ring ages out
// the estimate is exactly zero.
func TestWindowedDecayMonotonicity(t *testing.T) {
	const span = time.Second
	w, err := NewWindowed(10, 0.01, 0.01, span, 6)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		w.Offer(uint64(rng.Intn(40)), 1, t0.Add(time.Duration(i)*4*time.Millisecond))
	}
	prev := w.Total(t0, 0)
	prevHot := w.estimate(7, w.covered(0))
	for step := 1; step <= 8; step++ {
		now := t0.Add(time.Duration(step) * span)
		total := w.Total(now, 0)
		hot := w.estimate(7, w.covered(0))
		if total > prev || hot > prevHot {
			t.Fatalf("step %d: decay not monotone: total %d→%d key7 %d→%d",
				step, prev, total, prevHot, hot)
		}
		prev, prevHot = total, hot
	}
	// 8 spans > 6-sub ring: everything has aged out.
	if prev != 0 || len(w.TopK(t0.Add(8*span), 0)) != 0 {
		t.Fatalf("ring not empty after full decay: total=%d", prev)
	}
}

func TestWindowedUnwindowedMode(t *testing.T) {
	w, err := NewWindowed(3, 0.01, 0.01, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.SubWindows() != 1 || w.MaxWindow() != 0 {
		t.Fatalf("span=0 should force a single eternal sub-window, got n=%d", w.SubWindows())
	}
	// Timestamps (including zero ones) are ignored: nothing ever decays.
	w.Offer(1, 5, time.Time{})
	w.Offer(2, 1, time.Unix(99999999, 0))
	top := w.TopK(time.Time{}, 0)
	if len(top) != 2 || top[0].Key != 1 || top[0].Count != 5 {
		t.Fatalf("TopK = %v", top)
	}
	if w.Total(time.Time{}, 0) != 6 {
		t.Fatalf("Total = %d", w.Total(time.Time{}, 0))
	}
}

func TestWindowedSlidingQueryWindows(t *testing.T) {
	const span = 10 * time.Second
	w, err := NewWindowed(5, 0.01, 0.01, span, 6)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(86400, 0)
	// One offer per sub-window, distinct keys, walking forward in time.
	for i := 0; i < 6; i++ {
		w.Offer(uint64(100+i), uint64(10+i), t0.Add(time.Duration(i)*span))
	}
	now := t0.Add(5 * span)
	if got := w.Total(now, span); got != 15 {
		t.Fatalf("1-sub window total = %d, want 15", got)
	}
	if got := w.Total(now, 3*span); got != 13+14+15 {
		t.Fatalf("3-sub window total = %d", got)
	}
	if got := w.Total(now, 0); got != 10+11+12+13+14+15 {
		t.Fatalf("full window total = %d", got)
	}
	// A window request beyond the ring clamps to the ring.
	if got := w.Total(now, 100*span); got != w.Total(now, 0) {
		t.Fatalf("over-long window not clamped: %d", got)
	}
	top := w.TopK(now, 2*span)
	if len(top) != 2 || top[0].Key != 105 || top[1].Key != 104 {
		t.Fatalf("2-sub TopK = %v", top)
	}
	if w.CoveredSpan(15*time.Second) != 2*span {
		t.Fatalf("CoveredSpan(15s) = %v", w.CoveredSpan(15*time.Second))
	}
}

func TestWindowedErrorBoundCoversEstimates(t *testing.T) {
	const span = time.Second
	w, _ := NewWindowed(8, 0.005, 0.01, span, 4)
	t0 := time.Unix(5000, 0)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	z := rand.NewZipf(rng, 1.4, 1, 1<<12)
	for i := 0; i < 20000; i++ {
		k := z.Uint64()
		// all within one span: nothing decays mid-test
		w.Offer(k, 1, t0.Add(time.Duration(i)*time.Microsecond))
		truth[k]++
	}
	bound := w.ErrorBound(t0, 0)
	for _, c := range w.TopK(t0, 0) {
		want := truth[c.Key]
		if c.Count < want {
			t.Fatalf("key %d under-estimated: %d < %d", c.Key, c.Count, want)
		}
		if c.Count > want+bound {
			t.Fatalf("key %d outside bound: est %d true %d bound %d", c.Key, c.Count, want, bound)
		}
	}
}

func TestWindowedValidation(t *testing.T) {
	if _, err := NewWindowed(5, 0.01, 0.01, -time.Second, 4); err == nil {
		t.Error("negative span accepted")
	}
	if _, err := NewWindowed(5, 0.01, 0.01, time.Second, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewWindowed(0, 0.01, 0.01, time.Second, 4); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestWindowedReset(t *testing.T) {
	w, _ := NewWindowed(4, 0.01, 0.01, time.Second, 3)
	w.Offer(9, 9, time.Unix(50, 0))
	w.Reset()
	if w.Total(time.Unix(50, 0), 0) != 0 || len(w.Candidates()) != 0 {
		t.Fatal("Reset incomplete")
	}
}

// FuzzCountMinEstimate feeds arbitrary key streams and checks the sketch's
// hard invariants: point queries never under-estimate, totals add up, and
// merging split halves reproduces the whole stream's counters.
func FuzzCountMinEstimate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 9})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		var keys []uint64
		for i := 0; i+8 <= len(data); i += 8 {
			keys = append(keys, binary.LittleEndian.Uint64(data[i:]))
		}
		whole, err := NewCountMin(0.05, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		left, _ := NewCountMin(0.05, 0.05)
		right, _ := NewCountMin(0.05, 0.05)
		truth := map[uint64]uint64{}
		for i, k := range keys {
			whole.Add(k, 1)
			if i%2 == 0 {
				left.Add(k, 1)
			} else {
				right.Add(k, 1)
			}
			truth[k]++
		}
		var n uint64
		for k, want := range truth {
			n += want
			if got := whole.Count(k); got < want {
				t.Fatalf("Count(%d) = %d < true %d", k, got, want)
			}
		}
		if whole.Total() != n {
			t.Fatalf("Total = %d, want %d", whole.Total(), n)
		}
		if err := left.Merge(right); err != nil {
			t.Fatal(err)
		}
		if left.Total() != whole.Total() {
			t.Fatalf("merged total %d != whole %d", left.Total(), whole.Total())
		}
		for i := range left.counts {
			if left.counts[i] != whole.counts[i] {
				t.Fatalf("merged counter %d diverges: %d != %d", i, left.counts[i], whole.counts[i])
			}
		}
	})
}

// FuzzWindowedDecay drives a windowed sketch with an arbitrary interleaving
// of offers and clock steps and checks the ring's invariants: the windowed
// total never exceeds the weight offered, never under-runs the weight
// offered within the newest sub-window, and a full ring of idle spans
// drains it to zero.
func FuzzWindowedDecay(f *testing.F) {
	f.Add([]byte{10, 1, 200, 10, 3, 0, 7, 2})
	f.Add([]byte{255, 255, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		const span = time.Second
		const n = 4
		w, err := NewWindowed(6, 0.02, 0.02, span, n)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Unix(10000, 0)
		var offered uint64
		for i := 0; i+1 < len(data); i += 2 {
			key, step := uint64(data[i]), data[i+1]
			if step&1 == 0 {
				w.Offer(key, uint64(step)+1, now)
				offered += uint64(step) + 1
			} else {
				now = now.Add(time.Duration(step) * span / 4)
				w.Advance(now)
			}
			if got := w.Total(now, 0); got > offered {
				t.Fatalf("windowed total %d exceeds offered %d", got, offered)
			}
		}
		w.Advance(now.Add((n + 1) * span))
		if got := w.Total(now.Add((n+1)*span), 0); got != 0 {
			t.Fatalf("ring holds %d after full idle decay", got)
		}
	})
}
