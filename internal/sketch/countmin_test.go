package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCountMinValidation(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.01, 0}, {0.01, 1}, {-1, 0.5}} {
		if _, err := NewCountMin(c[0], c[1]); err == nil {
			t.Errorf("NewCountMin(%v, %v) accepted", c[0], c[1])
		}
	}
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Width() < 250 || cm.Depth() < 4 {
		t.Fatalf("sizing: width=%d depth=%d", cm.Width(), cm.Depth())
	}
}

// TestCountMinNeverUndercounts is the sketch's hard guarantee.
func TestCountMinNeverUndercounts(t *testing.T) {
	f := func(keys []uint64) bool {
		cm, err := NewCountMin(0.05, 0.05)
		if err != nil {
			return false
		}
		truth := map[uint64]uint64{}
		for _, k := range keys {
			cm.Add(k, 1)
			truth[k]++
		}
		for k, want := range truth {
			if cm.Count(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinErrorBound(t *testing.T) {
	const epsilon = 0.01
	cm, err := NewCountMin(epsilon, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	truth := map[uint64]uint64{}
	z := rand.NewZipf(rng, 1.3, 1, 1<<16)
	const n = 200000
	for i := 0; i < n; i++ {
		k := z.Uint64()
		cm.Add(k, 1)
		truth[k]++
	}
	// Sample keys: the overwhelming majority must respect the ε·N bound
	// (the bound holds per key with prob ≥ 1−δ).
	violations := 0
	checked := 0
	bound := uint64(epsilon * float64(cm.Total()))
	for k, want := range truth {
		checked++
		if cm.Count(k) > want+bound {
			violations++
		}
		if checked == 2000 {
			break
		}
	}
	if violations > checked/20 {
		t.Fatalf("error bound violated for %d/%d keys", violations, checked)
	}
}

func TestCountMinReset(t *testing.T) {
	cm, _ := NewCountMin(0.1, 0.1)
	cm.Add(7, 5)
	cm.Reset()
	if cm.Count(7) != 0 || cm.Total() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHeavyHittersFindsZipfHead(t *testing.T) {
	hh, err := NewHeavyHitters(10, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	z := rand.NewZipf(rng, 1.5, 1, 1<<20)
	truth := map[uint64]uint64{}
	for i := 0; i < 300000; i++ {
		k := z.Uint64()
		hh.Offer(k, 1)
		truth[k]++
	}
	top := hh.TopK()
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	// With s=1.5 Zipf the true top items are unambiguous: keys 0..4 must be
	// among the reported top 10.
	reported := map[uint64]bool{}
	for _, c := range top {
		reported[c.Key] = true
	}
	for k := uint64(0); k < 5; k++ {
		if !reported[k] {
			t.Fatalf("true heavy key %d missing from %v", k, top)
		}
	}
	// Descending order.
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("TopK not sorted: %v", top)
		}
	}
	if hh.Total() != 300000 {
		t.Fatalf("Total = %d", hh.Total())
	}
}

func TestHeavyHittersValidationAndReset(t *testing.T) {
	if _, err := NewHeavyHitters(0, 0.01, 0.01); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewHeavyHitters(5, 2, 0.01); err == nil {
		t.Error("bad epsilon accepted")
	}
	hh, _ := NewHeavyHitters(2, 0.01, 0.01)
	hh.Offer(1, 10)
	hh.Reset()
	if len(hh.TopK()) != 0 || hh.Total() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHeavyHittersSmallStream(t *testing.T) {
	hh, _ := NewHeavyHitters(3, 0.01, 0.01)
	for i := 0; i < 5; i++ {
		hh.Offer(100, 1)
	}
	hh.Offer(200, 1)
	top := hh.TopK()
	if len(top) != 2 || top[0].Key != 100 || top[0].Count != 5 {
		t.Fatalf("TopK = %v", top)
	}
}

func BenchmarkHeavyHittersOffer(b *testing.B) {
	hh, _ := NewHeavyHitters(20, 0.001, 0.01)
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = z.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Offer(keys[i%len(keys)], 1)
	}
}
