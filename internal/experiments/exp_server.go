package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	caar "caar"
	"caar/internal/server"
	"caar/metrics"
)

func init() {
	register(Experiment{ID: "T3", Title: "End-to-end HTTP server throughput", Run: runT3})
}

// runT3 measures the full system over HTTP: a loaded engine behind the JSON
// API, hammered by concurrent clients mixing posts and recommendation
// queries. Reported: requests/sec and latency quantiles per mix.
func runT3(r *Runner) error {
	nUsers := int(200 * r.Scale * 10)
	if nUsers < 50 {
		nUsers = 50
	}
	w := genFacadeWorkload(3, nUsers, 0, 2000, 8)
	cfg := caar.DefaultConfig()
	cfg.Shards = 4
	eng, err := buildFacade(cfg, w, int(2000*r.Scale*10), 5)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.New(eng).Handler())
	defer ts.Close()

	nReq := int(2000 * r.Scale * 10)
	if nReq < 400 {
		nReq = 400
	}
	mixes := []struct {
		name      string
		postRatio float64
	}{
		{"read-heavy (10% posts)", 0.1},
		{"balanced (50% posts)", 0.5},
		{"write-heavy (90% posts)", 0.9},
	}
	at := time.Date(2026, 7, 6, 10, 0, 0, 0, time.UTC).Format(time.RFC3339)
	client := ts.Client()

	r.printf("%-26s %12s %10s %10s %10s\n", "mix", "req/s", "p50", "p95", "p99")
	for _, mix := range mixes {
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			hist    metrics.LatencyHist
			reqErr  error
			workers = 8
		)
		start := time.Now()
		perWorker := nReq / workers
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				var local metrics.LatencyHist
				for i := 0; i < perWorker; i++ {
					user := w.users[(wk*perWorker+i)%len(w.users)]
					isPost := float64(i%100)/100 < mix.postRatio
					t0 := time.Now()
					var err error
					if isPost {
						body, _ := json.Marshal(map[string]string{
							"author": user,
							"text":   fmt.Sprintf("word%04d word%04d word%04d", i%2000, (i*7)%2000, (i*13)%2000),
							"at":     at,
						})
						var resp *http.Response
						resp, err = client.Post(ts.URL+"/v1/posts", "application/json", bytes.NewReader(body))
						if resp != nil {
							resp.Body.Close()
						}
					} else {
						var resp *http.Response
						resp, err = client.Get(ts.URL + "/v1/recommendations?user=" + user + "&k=5&at=" + at)
						if resp != nil {
							resp.Body.Close()
						}
					}
					local.Observe(time.Since(t0))
					if err != nil {
						mu.Lock()
						if reqErr == nil {
							reqErr = err
						}
						mu.Unlock()
						return
					}
				}
				mu.Lock()
				hist.Merge(&local)
				mu.Unlock()
			}(wk)
		}
		wg.Wait()
		if reqErr != nil {
			return reqErr
		}
		elapsed := time.Since(start)
		tp := metrics.Throughput{Events: hist.Count(), Elapsed: elapsed}
		r.printf("%-26s %12.1f %10v %10v %10v\n", mix.name, tp.PerSecond(),
			hist.Quantile(0.5).Round(time.Microsecond),
			hist.Quantile(0.95).Round(time.Microsecond),
			hist.Quantile(0.99).Round(time.Microsecond))
	}
	return nil
}
