package experiments

import (
	"fmt"
	"math/rand"
	"time"

	caar "caar"
	"caar/metrics"
)

// facadeWorkload generates a text-level workload for facade experiments
// (the facade API takes raw text; the engine-level experiments use
// pre-vectorized workloads).
type facadeWorkload struct {
	users []string
	posts []facadePost
}

type facadePost struct {
	author string
	text   string
	at     time.Time
}

func genFacadeWorkload(seed int64, users, posts, vocab, termsPerPost int) facadeWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := facadeWorkload{}
	for i := 0; i < users; i++ {
		w.users = append(w.users, fmt.Sprintf("user%04d", i))
	}
	z := rand.NewZipf(rng, 1.2, 1, uint64(vocab-1))
	now := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < posts; i++ {
		now = now.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
		text := ""
		for t := 0; t < termsPerPost; t++ {
			text += fmt.Sprintf("word%04d ", z.Uint64())
		}
		w.posts = append(w.posts, facadePost{
			author: w.users[rng.Intn(users)],
			text:   text,
			at:     now,
		})
	}
	return w
}

// buildFacade opens a facade engine, loads users (star-ish follow graph for
// meaningful fan-out) and synthetic ads.
func buildFacade(cfg caar.Config, w facadeWorkload, ads int, seed int64) (*caar.Engine, error) {
	eng, err := caar.Open(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for _, u := range w.users {
		if err := eng.AddUser(u); err != nil {
			return nil, err
		}
	}
	// Every user follows ~8 others, biased toward the first few "celebrity"
	// accounts.
	for _, u := range w.users {
		for f := 0; f < 8; f++ {
			var target string
			if rng.Float64() < 0.5 {
				target = w.users[rng.Intn(1+len(w.users)/20)]
			} else {
				target = w.users[rng.Intn(len(w.users))]
			}
			if target == u {
				continue
			}
			_ = eng.Follow(u, target) // duplicate edges are fine to skip
		}
	}
	for i := 0; i < ads; i++ {
		text := ""
		for t := 0; t < 6; t++ {
			text += fmt.Sprintf("word%04d ", rng.Intn(2000))
		}
		if err := eng.AddAd(caar.Ad{
			ID:   fmt.Sprintf("ad%05d", i),
			Text: text,
			Bid:  0.05 + 0.95*rng.Float64(),
		}); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// runFacadeParallel implements F8: post throughput of the sharded facade in
// continuous mode, on a celebrity workload where every post fans out to all
// users (so each shard receives a substantial follower group). Claim:
// throughput scales with shards up to the core count, then flattens;
// sharding with tiny per-shard groups is counterproductive (dispatch
// overhead), which the companion low-fanout row demonstrates.
func runFacadeParallel(r *Runner) error {
	nUsers := int(300 * r.Scale * 10)
	if nUsers < 100 {
		nUsers = 100
	}
	nPosts := int(60 * r.Scale * 10)
	if nPosts < 30 {
		nPosts = 30
	}
	w := genFacadeWorkload(7, nUsers, nPosts, 2000, 8)
	// Celebrity stream: every post comes from one of 4 accounts that
	// everyone follows, maximizing per-post fan-out.
	for i := range w.posts {
		w.posts[i].author = w.users[i%4]
	}

	build := func(shards int, everyoneFollowsCelebs bool) (*caar.Engine, error) {
		cfg := caar.DefaultConfig()
		cfg.Shards = shards
		cfg.ContinuousK = 10
		cfg.OnRecommend = func(string, []caar.Recommendation) {}
		eng, err := caar.Open(cfg)
		if err != nil {
			return nil, err
		}
		for _, u := range w.users {
			if err := eng.AddUser(u); err != nil {
				return nil, err
			}
		}
		for i, u := range w.users {
			if everyoneFollowsCelebs {
				for c := 0; c < 4; c++ {
					if u != w.users[c] {
						_ = eng.Follow(u, w.users[c])
					}
				}
			} else if i >= 4 && i%10 == 0 {
				_ = eng.Follow(u, w.users[i%4])
			}
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < int(2000*r.Scale*10); i++ {
			text := ""
			for t := 0; t < 6; t++ {
				text += fmt.Sprintf("word%04d ", rng.Intn(2000))
			}
			if err := eng.AddAd(caar.Ad{
				ID:   fmt.Sprintf("ad%05d", i),
				Text: text,
				Bid:  0.05 + 0.95*rng.Float64(),
			}); err != nil {
				return nil, err
			}
		}
		return eng, nil
	}

	// measure replays the post set reps times so fast configurations still
	// get a statistically meaningful wall-clock window.
	measure := func(eng *caar.Engine, reps int) (float64, error) {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, p := range w.posts {
				if err := eng.Post(p.author, p.text, p.at); err != nil {
					return 0, err
				}
			}
		}
		return metrics.Throughput{
			Events: uint64(reps * len(w.posts)), Elapsed: time.Since(start),
		}.PerSecond(), nil
	}

	high := metrics.Series{Name: "high-fanout"}
	low := metrics.Series{Name: "low-fanout"}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, row := range []struct {
			series *metrics.Series
			celebs bool
			reps   int
		}{{&high, true, 1}, {&low, false, 40}} {
			eng, err := build(shards, row.celebs)
			if err != nil {
				return err
			}
			tput, err := measure(eng, row.reps)
			if err != nil {
				return err
			}
			row.series.Add(float64(shards), tput)
		}
	}
	r.printf("posts/sec by shard count (continuous top-10; GOMAXPROCS bounds the attainable speedup)\n%s",
		metrics.Table("shards", high, low))
	return nil
}
