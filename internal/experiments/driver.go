// Package experiments implements the reproduction harness: one runner per
// table/figure of the (reconstructed) evaluation grid in DESIGN.md §5. Each
// experiment builds its workload, drives the engines, and prints the
// rows/series the figure reports. `cmd/adbench` and the root bench_test.go
// both dispatch into this package.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"caar/internal/core"
	"caar/internal/feed"
	"caar/internal/timeslot"
	"caar/metrics"
	"caar/workload"
)

// driver replays one workload into one engine, measuring event processing
// cost. In continuous mode (k > 0) every post additionally refreshes the
// top-k of each affected follower — the paper's "ads with every feed
// refresh" serving model.
type driver struct {
	eng core.Recommender
	w   *workload.Workload
	k   int
}

// newEngine constructs an engine by name over the workload's region.
func newEngine(name string, scoring core.Scoring, w *workload.Workload, opts core.CAPOptions) (core.Recommender, error) {
	region := w.Cfg.Region
	switch name {
	case "RS":
		return core.NewRS(scoring, nil)
	case "IL":
		return core.NewIL(scoring, nil, region, 32, 32)
	case "CAP":
		return core.NewCAP(scoring, nil, region, 32, 32, opts)
	default:
		return nil, fmt.Errorf("experiments: unknown engine %q", name)
	}
}

// defaultScoring is the harness's operating point (matches DESIGN.md §5).
func defaultScoring(windowCap int) core.Scoring {
	return core.Scoring{
		AlphaText: 0.6,
		BetaGeo:   0.25,
		GammaBid:  0.15,
		Decay:     timeslot.NewDecay(2 * time.Hour),
		WindowCap: windowCap,
	}
}

// prepare loads users (with home-location check-ins) and ads into the
// engine.
func (d *driver) prepare() error {
	start := d.w.Cfg.Start
	for _, u := range d.w.Users {
		d.eng.AddUser(u.ID)
		if err := d.eng.CheckIn(u.ID, u.Home, start); err != nil {
			return err
		}
	}
	for _, a := range d.w.CloneAds() {
		if err := d.eng.AddAd(a); err != nil {
			return err
		}
	}
	return nil
}

// replayResult aggregates one replay's measurements.
type replayResult struct {
	Events    int
	Elapsed   time.Duration
	Latency   metrics.LatencyHist
	TopKCalls int
}

// replay processes the workload's event stream. Each post is delivered to
// the author plus all followers; with k > 0 each affected user's top-k is
// refreshed. Latency is recorded per event (delivery + refreshes).
func (d *driver) replay(events []workload.Event) (replayResult, error) {
	var res replayResult
	fanout := make([]feed.UserID, 0, 256)
	wall := time.Now()
	for i := range events {
		ev := &events[i]
		evStart := time.Now()
		switch ev.Kind {
		case workload.EventCheckIn:
			if err := d.eng.CheckIn(ev.User, ev.Loc, ev.Time); err != nil {
				return res, err
			}
		case workload.EventPost:
			fanout = fanout[:0]
			fanout = append(fanout, ev.User)
			fanout = append(fanout, d.w.Graph.Followers(ev.User)...)
			if err := d.eng.Deliver(ev.Msg, fanout); err != nil {
				return res, err
			}
			if d.k > 0 {
				for _, u := range fanout {
					if _, err := d.eng.TopAds(u, d.k, ev.Time); err != nil {
						return res, err
					}
					res.TopKCalls++
				}
			}
		}
		res.Latency.Observe(time.Since(evStart))
		res.Events++
	}
	res.Elapsed = time.Since(wall)
	return res, nil
}

// runOnce builds an engine, prepares it, and replays the stream.
func runOnce(engineName string, w *workload.Workload, windowCap, k int, opts core.CAPOptions) (replayResult, error) {
	eng, err := newEngine(engineName, defaultScoring(windowCap), w, opts)
	if err != nil {
		return replayResult{}, err
	}
	d := &driver{eng: eng, w: w, k: k}
	if err := d.prepare(); err != nil {
		return replayResult{}, err
	}
	return d.replay(w.Events)
}

// heapAllocDelta measures live-heap growth across fn, in bytes. It is a
// coarse but honest memory probe: GC runs before both samples.
func heapAllocDelta(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// mustGenerate panics on generator misconfiguration — experiment configs
// are code, not user input.
func mustGenerate(cfg workload.Config) *workload.Workload {
	w, err := workload.Generate(cfg)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return w
}

// scaledConfig returns the harness's base workload scaled by the runner's
// scale factor (bench mode uses small sizes; -full uses larger ones).
func scaledConfig(scale float64) workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Users = int(float64(cfg.Users) * scale)
	cfg.Ads = int(float64(cfg.Ads) * scale)
	cfg.Messages = int(float64(cfg.Messages) * scale)
	if cfg.Users < 50 {
		cfg.Users = 50
	}
	if cfg.Ads < 100 {
		cfg.Ads = 100
	}
	if cfg.Messages < 200 {
		cfg.Messages = 200
	}
	return cfg
}
