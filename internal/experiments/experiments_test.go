package experiments

import (
	"strings"
	"testing"

	"caar/internal/core"
	"caar/internal/timeslot"
)

func tinyRunner(t *testing.T) (*Runner, *strings.Builder) {
	t.Helper()
	var sb strings.Builder
	return &Runner{Out: &sb, Scale: 0.03}, &sb
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	ids := IDs()
	if len(ids) < len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	// Stable ordering: tables first, then figures numerically.
	if ids[0][0] != 'T' {
		t.Fatalf("tables should sort first: %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i][0] == ids[i-1][0] && num(ids[i]) < num(ids[i-1]) {
			t.Fatalf("IDs not numerically sorted: %v", ids)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r, _ := tinyRunner(t)
	if err := r.Run("F99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunT1(t *testing.T) {
	r, sb := tinyRunner(t)
	if err := r.Run("T1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"users", "follow edges", "ads", "post events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("T1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunF1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	r, sb := tinyRunner(t)
	if err := r.Run("F1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"RS", "IL", "CAP"} {
		if !strings.Contains(out, name) {
			t.Fatalf("F1 missing engine %s:\n%s", name, out)
		}
	}
}

func TestRunF6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	r, sb := tinyRunner(t)
	if err := r.Run("F6"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"TFCA-morning", "CAP-morning", "TFCA-afternoon", "CAP-afternoon"} {
		if !strings.Contains(out, name) {
			t.Fatalf("F6 missing series %s:\n%s", name, out)
		}
	}
}

func TestRunF9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	r, sb := tinyRunner(t)
	if err := r.Run("F9"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CAP (full)") {
		t.Fatalf("F9 output:\n%s", sb.String())
	}
}

// TestAllExperimentsTiny executes every registered experiment end-to-end at
// a tiny scale: the full harness path of each table/figure runs in the test
// suite, not only under `go test -bench`.
func TestAllExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			r := &Runner{Out: &sb, Scale: 0.02}
			if err := r.Run(id); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
		})
	}
}

func TestDriverReplayMatchesWorkload(t *testing.T) {
	cfg := scaledConfig(0.03)
	w := mustGenerate(cfg)
	res, err := runOnce("CAP", w, 16, 3, core.DefaultCAPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != len(w.Events) {
		t.Fatalf("replayed %d of %d events", res.Events, len(w.Events))
	}
	if res.TopKCalls == 0 {
		t.Fatal("continuous mode made no top-k calls")
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
}

func TestQualityEnvSnapshotsBothSlots(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	env, err := buildQualityEnv(qualityConfig(0.03), defaultScoring(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range []timeslot.Slot{timeslot.Morning, timeslot.Afternoon} {
		if _, ok := env.snapshots[sl]; !ok {
			t.Fatalf("no snapshot for slot %v (stream too short?)", sl)
		}
	}
	if len(env.sampleEvalAds(10)) == 0 {
		t.Fatal("no evaluable ads")
	}
}
