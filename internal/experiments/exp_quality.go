package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"caar/fca"
	"caar/internal/adstore"
	"caar/internal/core"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/timeslot"
	"caar/metrics"
	"caar/workload"
)

func init() {
	register(Experiment{ID: "F6", Title: "Effectiveness: F-score vs threshold α (CAP vs TFCA, two slots)", Run: runF6})
	register(Experiment{ID: "F7", Title: "Mixing-weight sensitivity", Run: runF7})
	register(Experiment{ID: "F10", Title: "Decay half-life sensitivity", Run: runF10})
}

// evalSlots are the two slots the evaluation reports (morning
// [05:00,13:00) and afternoon [13:00,20:00), matching the paper's two
// windows).
var evalSlots = []timeslot.Slot{timeslot.Morning, timeslot.Afternoon}

const snapshotK = 50 // top-K retained per user per slot snapshot

// qualityEnv is one replayed engine run with per-slot prediction snapshots.
type qualityEnv struct {
	w         *workload.Workload
	oracle    *workload.Oracle
	scoring   core.Scoring
	eng       *core.CAP
	snapshots map[timeslot.Slot]map[feed.UserID][]core.Scored
}

// qualityConfig shrinks the workload to TFCA-tractable size and stretches
// the stream across the whole day so both evaluation slots receive traffic.
func qualityConfig(scale float64) workload.Config {
	cfg := scaledConfig(scale)
	if cfg.Users > 150 {
		cfg.Users = 150
	}
	if cfg.Ads > 1000 {
		cfg.Ads = 1000
	}
	cfg.Topics = 20
	cfg.InterestsPerUser = 3
	// Keep posting sparse (~8 posts per user per day): with saturated
	// per-slot topic coverage the morning/afternoon density asymmetry the
	// evaluation reports would be invisible.
	cfg.Messages = cfg.Users * 8
	// Spread the stream over 05:00 → ~20:00 so morning and afternoon both
	// fill up (the diurnal intensity modulates around this mean gap).
	const daySpanMs = 15 * 60 * 60 * 1000
	cfg.MeanGapMs = daySpanMs / cfg.Messages
	if cfg.MeanGapMs < 1 {
		cfg.MeanGapMs = 1
	}
	return cfg
}

// buildQualityEnv replays the workload into a CAP engine, snapshotting every
// user's top-K when the stream crosses a slot boundary (so each slot's
// predictions reflect the context accumulated during that slot).
func buildQualityEnv(cfg workload.Config, scoring core.Scoring) (*qualityEnv, error) {
	w := mustGenerate(cfg)
	eng, err := core.NewCAP(scoring, nil, cfg.Region, 32, 32, core.DefaultCAPOptions())
	if err != nil {
		return nil, err
	}
	env := &qualityEnv{
		w:         w,
		oracle:    workload.NewOracle(w),
		scoring:   scoring,
		eng:       eng,
		snapshots: make(map[timeslot.Slot]map[feed.UserID][]core.Scored),
	}
	d := &driver{eng: eng, w: w, k: 0}
	if err := d.prepare(); err != nil {
		return nil, err
	}

	prevSlot := timeslot.Of(cfg.Start)
	var prevTime time.Time
	snapshot := func(sl timeslot.Slot, at time.Time) error {
		users := make(map[feed.UserID][]core.Scored, len(w.Users))
		for _, u := range w.Users {
			scored, err := eng.TopAds(u.ID, snapshotK, at)
			if err != nil {
				return err
			}
			users[u.ID] = scored
		}
		env.snapshots[sl] = users
		return nil
	}
	for i := range w.Events {
		ev := &w.Events[i]
		if sl := timeslot.Of(ev.Time); sl != prevSlot {
			if !prevTime.IsZero() {
				if err := snapshot(prevSlot, prevTime); err != nil {
					return nil, err
				}
			}
			prevSlot = sl
		}
		prevTime = ev.Time
		switch ev.Kind {
		case workload.EventCheckIn:
			if err := eng.CheckIn(ev.User, ev.Loc, ev.Time); err != nil {
				return nil, err
			}
		case workload.EventPost:
			fanout := append([]feed.UserID{ev.User}, w.Graph.Followers(ev.User)...)
			if err := eng.Deliver(ev.Msg, fanout); err != nil {
				return nil, err
			}
		}
	}
	if !prevTime.IsZero() {
		if err := snapshot(prevSlot, prevTime); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// capPredict returns the users for whom the ad appears in the slot snapshot
// with score ≥ threshold × (the ad's best score in that snapshot). The
// relative threshold makes the [0, 1] sweep meaningful regardless of the
// absolute score scale: 0 keeps every top-K appearance, 1 keeps only the
// best-matched user(s).
func (env *qualityEnv) capPredict(ad adstore.AdID, sl timeslot.Slot, threshold float64) []feed.UserID {
	best := 0.0
	for _, scored := range env.snapshots[sl] {
		for _, s := range scored {
			if s.Ad == ad && s.Score > best {
				best = s.Score
			}
		}
	}
	if best == 0 {
		return nil
	}
	var out []feed.UserID
	for u, scored := range env.snapshots[sl] {
		for _, s := range scored {
			if s.Ad == ad && s.Score >= threshold*best {
				out = append(out, u)
				break
			}
		}
	}
	return out
}

// sampleEvalAds picks geo-targeted ads that have at least one interested
// user in some evaluation slot (ads nobody could ever want tell us nothing
// about ranking quality).
func (env *qualityEnv) sampleEvalAds(n int) []*adstore.Ad {
	var out []*adstore.Ad
	for _, a := range env.w.Ads {
		if a.Global {
			continue
		}
		interested := false
		for _, sl := range evalSlots {
			if len(env.oracle.InterestedUsers(a.ID, sl)) > 0 {
				interested = true
				break
			}
		}
		if interested {
			out = append(out, a)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// districtOf returns the nearest district centre index to a point.
func (env *qualityEnv) districtOf(p geo.Point) int {
	best, bestD := 0, -1.0
	for i, c := range env.w.DistrictCenters {
		d := c.DistanceKm(p)
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func userName(u feed.UserID) string    { return fmt.Sprintf("u%d", u) }
func districtName(d int) string        { return fmt.Sprintf("d%d", d) }
func slotName(sl timeslot.Slot) string { return sl.String() }

// buildTFCAContexts constructs the TFCA pipeline inputs from the same event
// stream: a fuzzy (user × topicURI × slot) context whose degrees simulate
// annotation confidence (true interest signals high, injected spurious
// mentions low — see EXPERIMENTS.md for the channel calibration), and a
// crisp (user × district × slot) check-in context.
func (env *qualityEnv) buildTFCAContexts() (*fca.FuzzyTriContext, *fca.TriContext, error) {
	cfg := env.w.Cfg
	users := make([]string, len(env.w.Users))
	for i := range users {
		users[i] = userName(feed.UserID(i))
	}
	topics := make([]string, cfg.Topics)
	for k := range topics {
		topics[k] = workload.TopicURI(k)
	}
	districts := make([]string, len(env.w.DistrictCenters))
	for i := range districts {
		districts[i] = districtName(i)
	}
	slots := []string{slotName(timeslot.Night), slotName(timeslot.Morning), slotName(timeslot.Afternoon)}

	tweets, err := fca.NewFuzzyTriContext(users, topics, slots)
	if err != nil {
		return nil, nil, err
	}
	checkins, err := fca.NewTriContext(users, districts, slots)
	if err != nil {
		return nil, nil, err
	}

	// Location presence is persistent: a user stays in their home district
	// through every slot unless a check-in moves them (mirroring the
	// engine, where CheckIn state persists until the next check-in).
	for _, u := range env.w.Users {
		for _, sl := range slots {
			if err := checkins.Relate(userName(u.ID), districtName(u.District), sl); err != nil {
				return nil, nil, err
			}
		}
	}

	noise := rand.New(rand.NewSource(cfg.Seed + 9999))
	for i := range env.w.Events {
		ev := &env.w.Events[i]
		sl := slotName(timeslot.Of(ev.Time))
		switch ev.Kind {
		case workload.EventCheckIn:
			if err := checkins.Relate(userName(ev.User), districtName(env.districtOf(ev.Loc)), sl); err != nil {
				return nil, nil, err
			}
		case workload.EventPost:
			// True interest signal: confidence in [0.6, 1.0].
			deg := 0.6 + 0.4*noise.Float64()
			if err := tweets.Set(userName(ev.User), workload.TopicURI(ev.Topic), sl, deg); err != nil {
				return nil, nil, err
			}
			// Spurious annotation: an off-interest topic at confidence
			// below 0.72 (the DBpedia-Spotlight-style disambiguation noise
			// the α-cut exists to remove; see EXPERIMENTS.md on channel
			// calibration).
			if noise.Float64() < 0.5 {
				spurious := noise.Intn(cfg.Topics)
				if err := tweets.Set(userName(ev.User), workload.TopicURI(spurious), sl, 0.72*noise.Float64()); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return tweets, checkins, nil
}

// evalF runs one micro-averaged F-score evaluation over the sampled ads for
// one slot, with a caller-supplied predictor.
func evalF(oracle *workload.Oracle, ads []*adstore.Ad, sl timeslot.Slot, predict func(*adstore.Ad) []feed.UserID) float64 {
	var agg metrics.Retrieval
	for _, a := range ads {
		truth := oracle.InterestedUsers(a.ID, sl)
		if !a.Slots.Contains(sl) {
			continue
		}
		agg.Merge(metrics.EvaluateSets(predict(a), truth))
	}
	return agg.FScore()
}

// runF6 sweeps the threshold α and reports the F-score of TFCA (α = fuzzy
// cut) and CAP (α = normalized score threshold), separately for the morning
// and afternoon slots. Claims under test: a mid-range optimum near
// α ∈ [0.65, 0.75] for TFCA, and a higher attainable F-score in the
// afternoon slot (denser stream → richer contexts).
func runF6(r *Runner) error {
	env, err := buildQualityEnv(qualityConfig(r.Scale), defaultScoring(32))
	if err != nil {
		return err
	}
	ads := env.sampleEvalAds(15)
	if len(ads) == 0 {
		return fmt.Errorf("no evaluable ads generated")
	}
	tweets, checkins, err := env.buildTFCAContexts()
	if err != nil {
		return err
	}
	checkinIdx := fca.NewConceptIndex(checkins)

	alphas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.9, 1.0}
	series := make([]metrics.Series, 0, 4)
	for _, sl := range evalSlots {
		capSeries := metrics.Series{Name: "CAP-" + sl.String()}
		tfcaSeries := metrics.Series{Name: "TFCA-" + sl.String()}
		for _, alpha := range alphas {
			tweetIdx := fca.NewConceptIndex(tweets.AlphaCut(alpha))
			slName := slotName(sl)
			tfcaF := evalF(env.oracle, ads, sl, func(a *adstore.Ad) []feed.UserID {
				recs := fca.RecommendIndexed(checkinIdx, tweetIdx, fca.AdContext{
					Location: districtName(env.districtOf(a.Target.Center)),
					URIs:     []string{workload.TopicURI(env.w.AdTopic[a.ID])},
					Slot:     slName,
				})
				out := make([]feed.UserID, 0, len(recs))
				for _, rec := range recs {
					var id int
					fmt.Sscanf(rec.User, "u%d", &id)
					out = append(out, feed.UserID(id))
				}
				return out
			})
			tfcaSeries.Add(alpha, tfcaF)

			capF := evalF(env.oracle, ads, sl, func(a *adstore.Ad) []feed.UserID {
				return env.capPredict(a.ID, sl, alpha)
			})
			capSeries.Add(alpha, capF)
		}
		series = append(series, tfcaSeries, capSeries)
	}
	r.printf("micro-averaged F-score vs threshold α (%d eval ads)\n%s", len(ads), metrics.Table("alpha", series...))
	return nil
}

// runF7 sweeps the text mixing weight: AlphaText ∈ {0 … 1} with the
// remainder split 60/40 between geo and bid. Claim: text-dominant mixing
// maximizes targeting quality; pure bid/geo ranking cannot see interests.
func runF7(r *Runner) error {
	var series metrics.Series
	series.Name = "CAP F-score"
	for _, at := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		scoring := defaultScoring(32)
		scoring.AlphaText = at
		scoring.BetaGeo = (1 - at) * 0.6
		scoring.GammaBid = (1 - at) * 0.4
		if at == 1 {
			scoring.BetaGeo, scoring.GammaBid = 0, 0
		}
		env, err := buildQualityEnv(qualityConfig(r.Scale), scoring)
		if err != nil {
			return err
		}
		ads := env.sampleEvalAds(15)
		total, n := 0.0, 0
		for _, sl := range evalSlots {
			f := evalF(env.oracle, ads, sl, func(a *adstore.Ad) []feed.UserID {
				return env.capPredict(a.ID, sl, 0.15)
			})
			total += f
			n++
		}
		series.Add(at, total/float64(n))
	}
	r.printf("F-score vs text mixing weight (threshold 0.15)\n%s", metrics.Table("alphaText", series))
	return nil
}

// runF10 sweeps the decay half-life. Claim: very short half-lives forget
// context before it can be exploited; very long ones dilute the current
// context with stale interests; quality saturates at moderate values while
// candidate-buffer footprint stays bounded by the window.
func runF10(r *Runner) error {
	var fSeries, bufSeries metrics.Series
	fSeries.Name = "F-score"
	bufSeries.Name = "buf entries/user"
	for _, hl := range []time.Duration{15 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour, 0} {
		scoring := defaultScoring(32)
		scoring.Decay = timeslot.NewDecay(hl)
		env, err := buildQualityEnv(qualityConfig(r.Scale), scoring)
		if err != nil {
			return err
		}
		ads := env.sampleEvalAds(15)
		total, n := 0.0, 0
		for _, sl := range evalSlots {
			f := evalF(env.oracle, ads, sl, func(a *adstore.Ad) []feed.UserID {
				return env.capPredict(a.ID, sl, 0.15)
			})
			total += f
			n++
		}
		x := hl.Hours()
		if hl == 0 {
			x = 24 // plot "no decay" at the right edge
		}
		fSeries.Add(x, total/float64(n))
		bufSeries.Add(x, float64(env.eng.TotalBufferEntries())/float64(len(env.w.Users)))
	}
	r.printf("F-score and buffer footprint vs decay half-life (hours; 24 = no decay)\n%s",
		metrics.Table("halfLife(h)", fSeries, bufSeries))
	return nil
}
