package experiments

import (
	"runtime"
	"time"

	"caar/internal/core"
	"caar/metrics"
	"caar/workload"
)

// engines compared in the throughput/latency figures.
var engineNames = []string{"RS", "IL", "CAP"}

func init() {
	register(Experiment{ID: "T1", Title: "Workload statistics", Run: runT1})
	register(Experiment{ID: "F1", Title: "Throughput vs number of ads", Run: runF1})
	register(Experiment{ID: "F2", Title: "Event latency vs k", Run: runF2})
	register(Experiment{ID: "F3", Title: "Throughput vs feed-window size", Run: runF3})
	register(Experiment{ID: "F4", Title: "Throughput vs follower fan-out", Run: runF4})
	register(Experiment{ID: "F5", Title: "Memory vs number of ads", Run: runF5})
	register(Experiment{ID: "F8", Title: "Throughput vs shard parallelism", Run: runF8})
	register(Experiment{ID: "F9", Title: "CAP ablation", Run: runF9})
	register(Experiment{ID: "T2", Title: "Index build cost", Run: runT2})
}

func runT1(r *Runner) error {
	w := mustGenerate(scaledConfig(r.Scale))
	posts, checkins := 0, 0
	for _, e := range w.Events {
		if e.Kind == workload.EventPost {
			posts++
		} else {
			checkins++
		}
	}
	_, maxFan := w.Graph.MaxFanout()
	globals := 0
	for _, a := range w.Ads {
		if a.Global {
			globals++
		}
	}
	r.printf("%-28s %d\n", "users", len(w.Users))
	r.printf("%-28s %d\n", "follow edges", w.Graph.Edges())
	r.printf("%-28s %.1f\n", "avg followers", float64(w.Graph.Edges())/float64(len(w.Users)))
	r.printf("%-28s %d\n", "max fan-out", maxFan)
	r.printf("%-28s %d\n", "ads", len(w.Ads))
	r.printf("%-28s %d (%.0f%%)\n", "global ads", globals, 100*float64(globals)/float64(len(w.Ads)))
	r.printf("%-28s %d\n", "latent topics", w.Cfg.Topics)
	r.printf("%-28s %d\n", "vocabulary", w.Cfg.Vocab)
	r.printf("%-28s %d\n", "post events", posts)
	r.printf("%-28s %d\n", "check-in events", checkins)
	if len(w.Events) > 0 {
		span := w.Events[len(w.Events)-1].Time.Sub(w.Events[0].Time)
		r.printf("%-28s %v\n", "stream span", span.Round(time.Second))
	}
	return nil
}

// runF1 sweeps the ad count and reports events/sec per engine. Claim under
// test: CAP's advantage over RS grows with |A| and beats IL consistently,
// because its per-event cost is independent of the total ad count.
func runF1(r *Runner) error {
	adCounts := []int{1000, 2000, 5000, 10000}
	series := make([]metrics.Series, len(engineNames))
	for i, n := range engineNames {
		series[i].Name = n
	}
	for _, ads := range adCounts {
		cfg := scaledConfig(r.Scale)
		cfg.Ads = int(float64(ads) * r.Scale * 10) // scale≈0.1 → listed counts
		if cfg.Ads < 100 {
			cfg.Ads = 100
		}
		w := mustGenerate(cfg)
		for i, name := range engineNames {
			res, err := runOnce(name, w, 32, 5, core.DefaultCAPOptions())
			if err != nil {
				return err
			}
			series[i].Add(float64(cfg.Ads), metrics.Throughput{
				Events: uint64(res.Events), Elapsed: res.Elapsed,
			}.PerSecond())
		}
	}
	r.printf("events/sec by ad count (continuous top-5)\n%s", metrics.Table("ads", series...))
	return nil
}

// runF2 sweeps k and reports p99 event latency per engine at a fixed ad
// count. Claim: CAP latency grows only mildly with k (buffer scan), while
// RS/IL pay their full per-query cost regardless.
func runF2(r *Runner) error {
	w := mustGenerate(scaledConfig(r.Scale))
	ks := []int{1, 5, 10, 20, 50}
	series := make([]metrics.Series, len(engineNames))
	for i, n := range engineNames {
		series[i].Name = n
	}
	for _, k := range ks {
		for i, name := range engineNames {
			res, err := runOnce(name, w, 32, k, core.DefaultCAPOptions())
			if err != nil {
				return err
			}
			series[i].Add(float64(k), float64(res.Latency.Quantile(0.99).Microseconds()))
		}
	}
	r.printf("p99 event latency (µs) by k\n%s", metrics.Table("k", series...))
	return nil
}

// runF3 sweeps the feed-window size for CAP and IL. Claim: larger windows
// grow IL's per-query context (more posting lists touched) faster than
// CAP's incremental cost.
func runF3(r *Runner) error {
	w := mustGenerate(scaledConfig(r.Scale))
	wins := []int{8, 16, 32, 64, 128}
	names := []string{"IL", "CAP"}
	series := make([]metrics.Series, len(names))
	for i, n := range names {
		series[i].Name = n
	}
	for _, win := range wins {
		for i, name := range names {
			res, err := runOnce(name, w, win, 5, core.DefaultCAPOptions())
			if err != nil {
				return err
			}
			series[i].Add(float64(win), metrics.Throughput{
				Events: uint64(res.Events), Elapsed: res.Elapsed,
			}.PerSecond())
		}
	}
	r.printf("events/sec by window size (continuous top-5)\n%s", metrics.Table("window", series...))
	return nil
}

// runF4 sweeps the average fan-out. Claim: all engines slow with fan-out
// (more followers touched per post) but CAP's fan-out sharing flattens the
// curve relative to recomputation.
func runF4(r *Runner) error {
	fans := []int{4, 8, 16, 32}
	names := []string{"IL", "CAP", "CAP-noshare"}
	series := make([]metrics.Series, len(names))
	for i, n := range names {
		series[i].Name = n
	}
	for _, fan := range fans {
		cfg := scaledConfig(r.Scale)
		cfg.AvgFollowees = fan
		w := mustGenerate(cfg)
		runs := []struct {
			name string
			eng  string
			opts core.CAPOptions
		}{
			{"IL", "IL", core.DefaultCAPOptions()},
			{"CAP", "CAP", core.DefaultCAPOptions()},
			{"CAP-noshare", "CAP", core.CAPOptions{FanoutSharing: false, RebuildEvery: 256}},
		}
		for i, run := range runs {
			res, err := runOnce(run.eng, w, 32, 5, run.opts)
			if err != nil {
				return err
			}
			series[i].Add(float64(fan), metrics.Throughput{
				Events: uint64(res.Events), Elapsed: res.Elapsed,
			}.PerSecond())
		}
	}
	r.printf("events/sec by average fan-out (continuous top-5)\n%s", metrics.Table("fanout", series...))
	return nil
}

// runF5 sweeps the ad count and reports live-heap bytes per ad for the
// loaded engine state (store + indexes + buffers after warm-up).
func runF5(r *Runner) error {
	adCounts := []int{1000, 2000, 5000, 10000}
	series := make([]metrics.Series, len(engineNames))
	for i, n := range engineNames {
		series[i].Name = n
	}
	for _, ads := range adCounts {
		cfg := scaledConfig(r.Scale)
		cfg.Ads = int(float64(ads) * r.Scale * 10)
		if cfg.Ads < 100 {
			cfg.Ads = 100
		}
		cfg.Messages = cfg.Messages / 4 // warm-up stream only
		w := mustGenerate(cfg)
		for i, name := range engineNames {
			var keep core.Recommender // keeps the loaded engine live across the heap sample
			bytes := heapAllocDelta(func() {
				eng, err := newEngine(name, defaultScoring(32), w, core.DefaultCAPOptions())
				if err != nil {
					panic(err)
				}
				d := &driver{eng: eng, w: w, k: 0}
				if err := d.prepare(); err != nil {
					panic(err)
				}
				if _, err := d.replay(w.Events); err != nil {
					panic(err)
				}
				keep = eng
			})
			runtime.KeepAlive(keep)
			series[i].Add(float64(cfg.Ads), float64(bytes)/float64(cfg.Ads))
		}
	}
	r.printf("live-heap bytes per ad after warm-up\n%s", metrics.Table("ads", series...))
	return nil
}

// runF8 measures post throughput of the sharded facade; see bench_facade.go
// for the facade-level driver.
func runF8(r *Runner) error {
	return runFacadeParallel(r)
}

// runF9 compares CAP feature ablations on one workload. Claim: each
// optimization contributes; disabling fan-out sharing costs the most under
// skewed fan-out.
func runF9(r *Runner) error {
	cfg := scaledConfig(r.Scale)
	cfg.AvgFollowees = 24 // accentuate fan-out effects
	w := mustGenerate(cfg)
	variants := []struct {
		name string
		eng  string
		opts core.CAPOptions
	}{
		{"CAP (full)", "CAP", core.DefaultCAPOptions()},
		{"CAP -fanout-sharing", "CAP", core.CAPOptions{FanoutSharing: false, RebuildEvery: 256}},
		{"CAP -rebuild", "CAP", core.CAPOptions{FanoutSharing: true, RebuildEvery: 0}},
		{"IL (no incremental)", "IL", core.DefaultCAPOptions()},
		{"RS (no index)", "RS", core.DefaultCAPOptions()},
	}
	r.printf("%-24s %14s %14s\n", "variant", "events/sec", "p99 (µs)")
	for _, v := range variants {
		res, err := runOnce(v.eng, w, 32, 5, v.opts)
		if err != nil {
			return err
		}
		tp := metrics.Throughput{Events: uint64(res.Events), Elapsed: res.Elapsed}
		r.printf("%-24s %14.1f %14d\n", v.name, tp.PerSecond(), res.Latency.Quantile(0.99).Microseconds())
	}
	return nil
}

// runT2 reports index construction cost per engine: wall time and heap to
// load the full ad set.
func runT2(r *Runner) error {
	cfg := scaledConfig(r.Scale)
	cfg.Messages = 0
	cfg.CheckInEvery = 0
	w := mustGenerate(cfg)
	r.printf("%-8s %14s %16s\n", "engine", "build time", "heap bytes/ad")
	for _, name := range engineNames {
		var elapsed time.Duration
		var keep core.Recommender // keeps the built engine live across the heap sample
		bytes := heapAllocDelta(func() {
			eng, err := newEngine(name, defaultScoring(32), w, core.DefaultCAPOptions())
			if err != nil {
				panic(err)
			}
			start := time.Now()
			for _, a := range w.CloneAds() {
				if err := eng.AddAd(a); err != nil {
					panic(err)
				}
			}
			elapsed = time.Since(start)
			keep = eng
		})
		runtime.KeepAlive(keep)
		r.printf("%-8s %14v %16.1f\n", name, elapsed.Round(time.Microsecond), float64(bytes)/float64(len(w.Ads)))
	}
	return nil
}
