package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Runner executes registered experiments and writes their tables/series to
// Out.
type Runner struct {
	// Out receives the experiment output (tables and series).
	Out io.Writer
	// Scale multiplies workload sizes. 1.0 is the full evaluation operating
	// point; bench mode uses ~0.1 to keep iterations short.
	Scale float64
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string // e.g. "F1"
	Title string
	Run   func(r *Runner) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// IDs returns the registered experiment IDs in a stable order (tables first,
// then figures, each numerically).
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i][0], out[j][0]
		if pi != pj {
			return pi > pj // 'T' before 'F'
		}
		return num(out[i]) < num(out[j])
	})
	return out
}

func num(id string) int {
	n := 0
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// Lookup returns an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// Run executes one experiment by ID ("all" runs every one in order).
func (r *Runner) Run(id string) error {
	if r.Scale <= 0 {
		r.Scale = 1
	}
	if strings.EqualFold(id, "all") {
		for _, eid := range IDs() {
			if err := r.Run(eid); err != nil {
				return err
			}
		}
		return nil
	}
	e, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	fmt.Fprintf(r.Out, "=== %s: %s (scale %.2g) ===\n", e.ID, e.Title, r.Scale)
	if err := e.Run(r); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	fmt.Fprintln(r.Out)
	return nil
}

func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.Out, format, args...)
}
