package core

import (
	"math/rand"
	"testing"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// benchSetup loads an engine with nAds random ads and nUsers users, each
// user's window warmed with a handful of messages.
func benchSetup(b *testing.B, name string, nUsers, nAds int) (Recommender, *rand.Rand, time.Time) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	eng, err := newEngineByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for u := feed.UserID(0); u < feed.UserID(nUsers); u++ {
		eng.AddUser(u)
		if err := eng.CheckIn(u, geo.Point{Lat: rng.Float64() * 10, Lng: rng.Float64() * 10}, base0); err != nil {
			b.Fatal(err)
		}
	}
	for id := adstore.AdID(1); id <= adstore.AdID(nAds); id++ {
		if err := eng.AddAd(randAdB(rng, id)); err != nil {
			b.Fatal(err)
		}
	}
	now := base0
	var msgID feed.MessageID
	for i := 0; i < nUsers*4; i++ {
		now = now.Add(time.Second)
		msgID++
		msg := feed.Message{ID: msgID, Time: now, Vec: randVecB(rng, 8, 2000)}
		fanout := []feed.UserID{feed.UserID(i % nUsers), feed.UserID((i + 1) % nUsers)}
		if err := eng.Deliver(msg, fanout); err != nil {
			b.Fatal(err)
		}
	}
	return eng, rng, now
}

func newEngineByName(name string) (Recommender, error) {
	s := defaultBenchScoring()
	switch name {
	case "RS":
		return NewRS(s, nil)
	case "IL":
		return NewIL(s, nil, region, 32, 32)
	default:
		return NewCAP(s, nil, region, 32, 32, DefaultCAPOptions())
	}
}

func defaultBenchScoring() Scoring {
	s := DefaultScoring()
	s.WindowCap = 32
	return s
}

func randVecB(rng *rand.Rand, n, vocab int) textproc.SparseVector {
	v := textproc.SparseVector{}
	for i := 0; i < n; i++ {
		v[textproc.TermID(rng.Intn(vocab))] = 0.1 + rng.Float64()
	}
	v.L2Normalize()
	return v
}

func randAdB(rng *rand.Rand, id adstore.AdID) *adstore.Ad {
	a := &adstore.Ad{
		ID:    id,
		Vec:   randVecB(rng, 6, 2000),
		Slots: timeslot.AllSlots,
		Bid:   0.05 + 0.95*rng.Float64(),
	}
	if rng.Intn(3) == 0 {
		a.Global = true
	} else {
		a.Target = geo.Circle{
			Center:   geo.Point{Lat: rng.Float64() * 10, Lng: rng.Float64() * 10},
			RadiusKm: 50 + rng.Float64()*300,
		}
	}
	return a
}

// BenchmarkDeliver measures one message delivery to a 100-user fan-out,
// per engine (10k ads).
func BenchmarkDeliver(b *testing.B) {
	for _, name := range []string{"RS", "IL", "CAP"} {
		b.Run(name, func(b *testing.B) {
			eng, rng, now := benchSetup(b, name, 200, 10000)
			fanout := make([]feed.UserID, 100)
			for i := range fanout {
				fanout[i] = feed.UserID(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Second)
				msg := feed.Message{
					ID:   feed.MessageID(1<<30 + i),
					Time: now,
					Vec:  randVecB(rng, 8, 2000),
				}
				if err := eng.Deliver(msg, fanout); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopAds measures one top-10 query per engine (10k ads).
func BenchmarkTopAds(b *testing.B) {
	for _, name := range []string{"RS", "IL", "CAP"} {
		b.Run(name, func(b *testing.B) {
			eng, _, now := benchSetup(b, name, 200, 10000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TopAds(feed.UserID(i%200), 10, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
