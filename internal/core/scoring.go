// Package core implements the context-aware ad recommendation engines: the
// exhaustive RS baseline, the inverted-list IL baseline, and the incremental
// CAP engine (the reconstructed contribution of the target paper). All three
// compute the same scoring function and return identical top-k results; they
// differ only in the work they do per feed event and per query.
package core

import (
	"errors"
	"fmt"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/timeslot"
)

// Scoring is the mixing configuration of the ad score
//
//	Score(a, u, t) = AlphaText·TextRel + BetaGeo·GeoProx + GammaBid·Bid
//
// where TextRel is the decayed dot product between the ad's keyword vector
// and the user's feed-window context, GeoProx the distance decay inside the
// ad's target circle (1 for global ads), and Bid the normalized bid.
type Scoring struct {
	AlphaText float64
	BetaGeo   float64
	GammaBid  float64

	// Decay ages feed content; see timeslot.NewDecay.
	Decay timeslot.Decay

	// WindowCap is the per-user feed window size in messages.
	WindowCap int
}

// DefaultScoring returns the configuration used by the evaluation harness:
// text-dominant mixing with a 2-hour half-life over a 32-message window.
func DefaultScoring() Scoring {
	return Scoring{
		AlphaText: 0.6,
		BetaGeo:   0.25,
		GammaBid:  0.15,
		Decay:     timeslot.NewDecay(2 * time.Hour),
		WindowCap: 32,
	}
}

// ErrBadScoring reports an invalid scoring configuration.
var ErrBadScoring = errors.New("core: invalid scoring configuration")

// Validate checks the mixing weights are non-negative with a positive sum
// and the window capacity is positive.
func (s Scoring) Validate() error {
	if s.AlphaText < 0 || s.BetaGeo < 0 || s.GammaBid < 0 {
		return fmt.Errorf("%w: negative mixing weight (α=%v β=%v γ=%v)",
			ErrBadScoring, s.AlphaText, s.BetaGeo, s.GammaBid)
	}
	if s.AlphaText+s.BetaGeo+s.GammaBid == 0 {
		return fmt.Errorf("%w: all mixing weights zero", ErrBadScoring)
	}
	if s.WindowCap < 1 {
		return fmt.Errorf("%w: window capacity %d", ErrBadScoring, s.WindowCap)
	}
	return nil
}

// staticScore is the time-invariant part of an ad's score for a user at a
// fixed location: geography and bid. It ignores eligibility; callers gate
// eligibility first.
func (s Scoring) staticScore(a *adstore.Ad, loc geo.Point, hasLoc bool) float64 {
	return s.BetaGeo*a.GeoScore(loc, hasLoc) + s.GammaBid*a.Bid
}

// Scored is one recommendation: the ad, its total score, and the score
// decomposition for explainability.
type Scored struct {
	Ad    adstore.AdID
	Score float64
	Text  float64 // AlphaText·TextRel component
	Geo   float64 // BetaGeo·GeoProx component
	Bid   float64 // GammaBid·Bid component
}

// Recommender is the interface all three engines implement. Methods are not
// safe for concurrent use; the public facade serializes access (or shards
// users across engine instances).
type Recommender interface {
	// Name identifies the engine in experiment output ("RS", "IL", "CAP").
	Name() string

	// AddUser registers a user with an empty feed window.
	AddUser(u feed.UserID)

	// AddAd registers a servable ad.
	AddAd(a *adstore.Ad) error

	// RemoveAd withdraws an ad.
	RemoveAd(id adstore.AdID) error

	// CheckIn updates a user's location context.
	CheckIn(u feed.UserID, p geo.Point, t time.Time) error

	// Deliver fans a posted message out to the given followers' feed
	// windows. The follower list comes from the social graph, including the
	// author when the platform shows users their own posts.
	Deliver(msg feed.Message, followers []feed.UserID) error

	// TopAds returns the k highest-scoring eligible ads for u at time t,
	// best first. Ads must be slot-eligible, geo-eligible, and have
	// remaining (paced) budget.
	TopAds(u feed.UserID, k int, t time.Time) ([]Scored, error)
}

// ErrUnknownUser reports an operation on an unregistered user.
var ErrUnknownUser = errors.New("core: unknown user")

// Shardable extends Recommender with index-only ad registration, used when
// several engine shards share one (concurrency-safe) ad store: the facade
// adds the ad to the store once and registers it with every shard.
type Shardable interface {
	Recommender
	// RegisterAd indexes an ad assumed to already exist in the store.
	RegisterAd(a *adstore.Ad)
	// UnregisterAd removes an ad from the engine's indexes only.
	UnregisterAd(id adstore.AdID)
}
