package core

import (
	"fmt"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/timeslot"
	"caar/internal/topk"
)

// userState is the per-user context shared by every engine: the feed window
// and the last known location.
type userState struct {
	win    *feed.Window
	loc    geo.Point
	hasLoc bool
}

// base carries the state and helpers common to all engines.
type base struct {
	scoring Scoring
	store   *adstore.Store
	users   map[feed.UserID]*userState

	// stages, when non-nil, receives per-stage TopAds latency spans (see
	// stages.go). nil keeps the query path free of clock reads.
	stages StageRecorder
}

func newBase(s Scoring, store *adstore.Store) (*base, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		store = adstore.NewStore()
	}
	return &base{
		scoring: s,
		store:   store,
		users:   make(map[feed.UserID]*userState),
	}, nil
}

// Store exposes the ad store (for budget inspection by the facade).
func (b *base) Store() *adstore.Store { return b.store }

// WindowStats reports the number of registered users and the total count of
// window-resident messages — the live feed-context occupancy, sampled by
// the facade's observability gauges. Callers hold the engine's lock.
func (b *base) WindowStats() (users, entries int) {
	for _, st := range b.users {
		entries += st.win.Len()
	}
	return len(b.users), entries
}

func (b *base) AddUser(u feed.UserID) {
	if _, ok := b.users[u]; ok {
		return
	}
	b.users[u] = &userState{win: feed.NewWindow(b.scoring.WindowCap, b.scoring.Decay)}
}

func (b *base) CheckIn(u feed.UserID, p geo.Point, t time.Time) error {
	if err := p.Validate(); err != nil {
		return err
	}
	st, ok := b.users[u]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownUser, u)
	}
	st.loc = p
	st.hasLoc = true
	return nil
}

func (b *base) state(u feed.UserID) (*userState, error) {
	st, ok := b.users[u]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownUser, u)
	}
	return st, nil
}

// offer gates eligibility and budget, scores the ad given its raw text
// relevance, and submits it to the collector. It reports whether the ad was
// eligible (not necessarily retained).
func (b *base) offer(c *topk.Collector, a *adstore.Ad, textRel float64, st *userState, sl timeslot.Slot, t time.Time) bool {
	if a == nil {
		return false
	}
	if !a.Eligible(st.loc, st.hasLoc, sl) {
		return false
	}
	// Campaign-less ads are always servable; only budgeted ads need the
	// (shared, locked) store consulted on the hot path.
	if a.Campaign != "" && !b.store.HasBudget(a.ID, t) {
		return false
	}
	score := b.scoring.AlphaText*textRel + b.scoring.staticScore(a, st.loc, st.hasLoc)
	c.Offer(int64(a.ID), score)
	return true
}

// resolve converts collector output into Scored results with component
// decomposition, recomputing components for explainability.
func (b *base) resolve(items []topk.Item, st *userState, textRelOf func(adstore.AdID) float64) []Scored {
	out := make([]Scored, 0, len(items))
	for _, it := range items {
		id := adstore.AdID(it.ID)
		a := b.store.Get(id)
		if a == nil {
			continue
		}
		text := b.scoring.AlphaText * textRelOf(id)
		geoPart := b.scoring.BetaGeo * a.GeoScore(st.loc, st.hasLoc)
		bidPart := b.scoring.GammaBid * a.Bid
		out = append(out, Scored{Ad: id, Score: it.Score, Text: text, Geo: geoPart, Bid: bidPart})
	}
	return out
}
