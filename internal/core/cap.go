package core

import (
	"fmt"
	"math"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/index"
	"caar/internal/textproc"
	"caar/internal/timeslot"
	"caar/internal/topk"
)

// CAPOptions toggles the CAP engine's optimizations for ablation studies.
type CAPOptions struct {
	// FanoutSharing computes each message's ad-delta list once and shares it
	// across all followers (and caches it for eviction time). Disabling it
	// recomputes the delta list per follower and per eviction.
	FanoutSharing bool

	// RebuildEvery caps floating-point drift by recomputing a user's
	// candidate buffer exactly from the window aggregate after this many
	// incremental updates. 0 disables periodic rebuilds.
	RebuildEvery int
}

// DefaultCAPOptions returns the production configuration.
func DefaultCAPOptions() CAPOptions {
	return CAPOptions{FanoutSharing: true, RebuildEvery: 256}
}

// dynBuf is one user's incremental candidate buffer: for every ad that
// shares at least one term with a window-resident message, the exact text
// relevance coefficient in the window's reference space.
//
// Values are stored divided by scale, so aging the whole buffer when the
// window's reference time advances is one O(1) multiplication instead of a
// map sweep.
type dynBuf struct {
	u     map[adstore.AdID]float64
	scale float64
	ops   int
}

func newDynBuf() *dynBuf {
	return &dynBuf{u: make(map[adstore.AdID]float64), scale: 1}
}

// add accumulates a ref-space contribution for an ad, dropping entries that
// return to (numerical) zero.
func (b *dynBuf) add(ad adstore.AdID, refCoeff float64) {
	nv := b.u[ad] + refCoeff/b.scale
	if math.Abs(nv*b.scale) < 1e-12 {
		delete(b.u, ad)
		return
	}
	b.u[ad] = nv
}

// age multiplies every buffered coefficient by factor (usually ≤ 1) in
// O(1), and renormalizes the stored values when the scalar risks underflow.
// A long idle gap can make factor — and therefore scale — underflow to
// exactly 0 (exp(-x) flushes to zero near x ≈ 745); leaving a zero scale
// in place would poison the buffer on the next add (refCoeff/0 → ±Inf),
// so that case drops every entry instead: contributions a zero factor has
// aged are exactly zero.
func (b *dynBuf) age(factor float64) {
	b.scale *= factor
	if b.scale >= 1e-150 {
		return
	}
	if b.scale > 0 {
		for ad, v := range b.u {
			b.u[ad] = v * b.scale
		}
	} else {
		clear(b.u)
	}
	b.scale = 1
}

// msgCache is the shared per-message state of fan-out sharing: the delta
// list computed once at delivery, reference-counted by the number of feed
// windows still holding the message.
type msgCache struct {
	vec    textproc.SparseVector
	deltas []index.Delta
	refs   int
}

// CAP is the Context-aware Ad Publishing engine — the reconstructed
// contribution. It maintains, per user, an incrementally-updated candidate
// buffer so a feed event costs O(|message delta|) per follower and a top-k
// query costs O(|buffer|), independent of the total number of ads.
type CAP struct {
	*indexed
	opts  CAPOptions
	bufs  map[feed.UserID]*dynBuf
	cache map[feed.MessageID]*msgCache
}

// NewCAP creates a CAP engine over the given region and grid resolution.
func NewCAP(s Scoring, store *adstore.Store, region geo.Rect, gridRows, gridCols int, opts CAPOptions) (*CAP, error) {
	ix, err := newIndexed(s, store, region, gridRows, gridCols)
	if err != nil {
		return nil, err
	}
	return &CAP{
		indexed: ix,
		opts:    opts,
		bufs:    make(map[feed.UserID]*dynBuf),
		cache:   make(map[feed.MessageID]*msgCache),
	}, nil
}

// Name implements Recommender.
func (e *CAP) Name() string { return "CAP" }

// AddUser implements Recommender.
func (e *CAP) AddUser(u feed.UserID) {
	if _, ok := e.users[u]; ok {
		return
	}
	e.base.AddUser(u)
	e.bufs[u] = newDynBuf()
}

// AddAd implements Recommender. Beyond indexing, a late-arriving ad is
// back-filled: its text relevance against every user's current window is
// computed from the window aggregate (one sparse dot product per user), and
// its coefficient against every cached live message is appended so future
// evictions stay exact.
func (e *CAP) AddAd(a *adstore.Ad) error {
	if err := e.store.Add(a); err != nil {
		return err
	}
	e.RegisterAd(a)
	return nil
}

// RegisterAd indexes an ad already present in a (shared) store and
// back-fills its candidate-buffer coefficients.
func (e *CAP) RegisterAd(a *adstore.Ad) {
	e.registerAd(a)
	for u, st := range e.users {
		agg, _ := st.win.ContextRef(st.win.Ref())
		if coeff := a.Vec.Dot(agg); coeff != 0 {
			e.bufs[u].add(a.ID, coeff)
		}
	}
	if e.opts.FanoutSharing {
		for _, mc := range e.cache {
			if c := a.Vec.Dot(mc.vec); c != 0 {
				mc.deltas = append(mc.deltas, index.Delta{Ad: a.ID, Coeff: c})
			}
		}
	}
}

// RemoveAd implements Recommender with eager cleanup: stale buffer entries
// or cached delta entries for a removed ID would corrupt scores if the ID
// were ever reused.
func (e *CAP) RemoveAd(id adstore.AdID) error {
	if err := e.store.Remove(id); err != nil {
		return err
	}
	e.UnregisterAd(id)
	return nil
}

// UnregisterAd drops an ad from the engine's indexes, candidate buffers and
// cached delta lists without touching the store.
func (e *CAP) UnregisterAd(id adstore.AdID) {
	e.unregisterAd(id)
	for _, b := range e.bufs {
		delete(b.u, id)
	}
	for _, mc := range e.cache {
		for i := range mc.deltas {
			if mc.deltas[i].Ad == id {
				mc.deltas = append(mc.deltas[:i], mc.deltas[i+1:]...)
				break
			}
		}
	}
}

// Deliver implements Recommender: the heart of the engine.
func (e *CAP) Deliver(msg feed.Message, followers []feed.UserID) error {
	// Validate the whole fan-out first so a partial failure cannot leave
	// some windows updated and others not.
	states := make([]*userState, len(followers))
	for i, u := range followers {
		st, ok := e.users[u]
		if !ok {
			return fmt.Errorf("%w: follower %d", ErrUnknownUser, u)
		}
		states[i] = st
	}

	var deltas []index.Delta
	if e.opts.FanoutSharing {
		deltas = e.inv.DeltaList(msg.Vec)
		if len(followers) > 0 {
			e.cache[msg.ID] = &msgCache{vec: msg.Vec, deltas: deltas, refs: len(followers)}
		}
	}

	for i, u := range followers {
		st := states[i]
		buf := e.bufs[u]
		if !e.opts.FanoutSharing {
			deltas = e.inv.DeltaList(msg.Vec)
		}

		oldRef := st.win.Ref()
		evicted, wasEvicted := st.win.Push(msg)
		newRef := st.win.Ref()

		// 1. Subtract the evicted message's contributions (old ref space).
		if wasEvicted {
			e.applyEviction(buf, evicted)
		}
		// 2. Age the buffer into the new reference space.
		if !oldRef.IsZero() && newRef.After(oldRef) {
			buf.age(e.scoring.Decay.Between(oldRef, newRef))
		}
		// 3. Add the new message's contributions at its weight in new ref
		// space (1 unless the message arrived out of order).
		w := e.scoring.Decay.WeightAt(newRef.Sub(msg.Time))
		for _, d := range deltas {
			buf.add(d.Ad, w*d.Coeff)
		}

		e.maybeRebuild(u, st, buf)
	}
	return nil
}

// applyEviction removes an evicted message's text contributions from the
// buffer, using the cached shared delta list when fan-out sharing is on and
// recomputing it otherwise.
func (e *CAP) applyEviction(buf *dynBuf, evicted feed.Entry) {
	var deltas []index.Delta
	if e.opts.FanoutSharing {
		mc := e.cache[evicted.Msg.ID]
		if mc != nil {
			deltas = mc.deltas
			mc.refs--
			if mc.refs <= 0 {
				delete(e.cache, evicted.Msg.ID)
			}
		}
	} else {
		deltas = e.inv.DeltaList(evicted.Msg.Vec)
	}
	w := evicted.RefWeight()
	for _, d := range deltas {
		buf.add(d.Ad, -w*d.Coeff)
	}
}

// maybeRebuild recomputes the buffer exactly from the window aggregate to
// cap incremental floating-point drift.
func (e *CAP) maybeRebuild(u feed.UserID, st *userState, buf *dynBuf) {
	if e.opts.RebuildEvery <= 0 {
		return
	}
	buf.ops++
	if buf.ops < e.opts.RebuildEvery {
		return
	}
	buf.ops = 0
	agg, _ := st.win.ContextRef(st.win.Ref())
	fresh := newDynBuf()
	for _, d := range e.inv.DeltaList(agg) {
		fresh.u[d.Ad] = d.Coeff
	}
	*buf = *fresh
}

// TopAds implements Recommender: rank the buffered text candidates plus the
// static-only remainder. No index traversal happens on this path — the
// retrieve stage is just the window-context factor lookup, because CAP
// materialized the candidate set incrementally at delivery time.
func (e *CAP) TopAds(u feed.UserID, k int, t time.Time) ([]Scored, error) {
	st, err := e.state(u)
	if err != nil {
		return nil, err
	}
	buf, ok := e.bufs[u]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownUser, u)
	}
	span := e.stageStart()
	_, winFactor := st.win.ContextRef(t)
	mult := buf.scale * winFactor
	sl := timeslot.Of(t)
	c := topk.NewCollector(k)
	span = e.stageDone(StageRetrieve, span, len(buf.u), len(buf.u))

	offered := 0
	for ad, v := range buf.u {
		if e.offer(c, e.ad(ad), v*mult, st, sl, t) {
			offered++
		}
	}
	examined, offeredStatic := e.offerStatic(c, st, sl, t, func(id adstore.AdID) bool {
		_, seen := buf.u[id]
		return seen
	})
	offered += offeredStatic
	span = e.stageDone(StageScore, span, len(buf.u)+examined, offered)

	out := e.resolve(c.Items(), st, func(id adstore.AdID) float64 {
		return buf.u[id] * mult
	})
	e.stageDone(StageTopK, span, offered, len(out))
	return out, nil
}

// BufferSize returns the candidate-buffer size of a user, a memory/latency
// diagnostic for the experiments.
func (e *CAP) BufferSize(u feed.UserID) int {
	if b, ok := e.bufs[u]; ok {
		return len(b.u)
	}
	return 0
}

// CachedMessages returns the number of messages with live shared delta
// lists (fan-out sharing memory diagnostic).
func (e *CAP) CachedMessages() int { return len(e.cache) }

// TotalBufferEntries returns the summed candidate-buffer size across all
// users (memory diagnostic).
func (e *CAP) TotalBufferEntries() int {
	total := 0
	for _, b := range e.bufs {
		total += len(b.u)
	}
	return total
}

var (
	_ Recommender = (*CAP)(nil)
	_ Recommender = (*IL)(nil)
	_ Recommender = (*RS)(nil)
)
