package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

var (
	region = geo.NewRect(geo.Point{Lat: 0, Lng: 0}, geo.Point{Lat: 10, Lng: 10})
	base0  = time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
)

func testScoring() Scoring {
	return Scoring{
		AlphaText: 0.6,
		BetaGeo:   0.25,
		GammaBid:  0.15,
		Decay:     timeslot.NewDecay(30 * time.Minute),
		WindowCap: 6,
	}
}

// makeEngines builds one of each engine with identical configuration and
// private stores.
func makeEngines(t *testing.T, s Scoring) []Recommender {
	t.Helper()
	rs, err := NewRS(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	il, err := NewIL(s, nil, region, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cap1, err := NewCAP(s, nil, region, 8, 8, DefaultCAPOptions())
	if err != nil {
		t.Fatal(err)
	}
	capNoShare, err := NewCAP(s, nil, region, 8, 8, CAPOptions{FanoutSharing: false, RebuildEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	capNoRebuild, err := NewCAP(s, nil, region, 8, 8, CAPOptions{FanoutSharing: true, RebuildEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	return []Recommender{rs, il, cap1, capNoShare, capNoRebuild}
}

func randVec(rng *rand.Rand, nTerms, vocab int) textproc.SparseVector {
	v := textproc.SparseVector{}
	for i := 0; i < nTerms; i++ {
		v[textproc.TermID(rng.Intn(vocab))] = 0.1 + rng.Float64()
	}
	v.L2Normalize()
	return v
}

func randAd(rng *rand.Rand, id adstore.AdID) *adstore.Ad {
	a := &adstore.Ad{
		ID:    id,
		Vec:   randVec(rng, 1+rng.Intn(4), 25),
		Slots: timeslot.AllSlots,
		Bid:   0.05 + 0.95*rng.Float64(),
	}
	switch rng.Intn(3) {
	case 0:
		a.Global = true
	default:
		a.Target = geo.Circle{
			Center:   geo.Point{Lat: rng.Float64() * 10, Lng: rng.Float64() * 10},
			RadiusKm: 30 + rng.Float64()*400,
		}
	}
	if rng.Intn(4) == 0 {
		a.Slots = timeslot.NewSet(timeslot.Morning, timeslot.Afternoon)
	}
	return a
}

// scoresCompatible verifies an engine's result against the oracle (RS)
// result: same length, pairwise-equal scores within tolerance (membership
// may differ only between score ties).
func scoresCompatible(oracle, got []Scored, tol float64) error {
	if len(oracle) != len(got) {
		return fmt.Errorf("length %d != oracle %d", len(got), len(oracle))
	}
	for i := range oracle {
		if math.Abs(oracle[i].Score-got[i].Score) > tol {
			return fmt.Errorf("rank %d: score %v != oracle %v", i, got[i].Score, oracle[i].Score)
		}
		// When scores are NOT tied with neighbours, membership must agree.
		tied := (i > 0 && math.Abs(oracle[i-1].Score-oracle[i].Score) <= tol) ||
			(i+1 < len(oracle) && math.Abs(oracle[i+1].Score-oracle[i].Score) <= tol)
		if !tied && oracle[i].Ad != got[i].Ad {
			return fmt.Errorf("rank %d: ad %d != oracle %d (scores %v vs %v)",
				i, got[i].Ad, oracle[i].Ad, got[i].Score, oracle[i].Score)
		}
	}
	return nil
}

// TestEngineEquivalenceRandomWorkload is the central correctness test: RS,
// IL, and CAP (in three option variants) must produce identical top-k
// rankings throughout a randomized stream of posts, check-ins, ad
// insertions, and ad removals.
func TestEngineEquivalenceRandomWorkload(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			engines := makeEngines(t, testScoring())
			oracle := engines[0]

			const nUsers = 12
			for u := feed.UserID(0); u < nUsers; u++ {
				for _, e := range engines {
					e.AddUser(u)
				}
			}
			nextAd := adstore.AdID(1)
			var liveAds []adstore.AdID
			addAd := func() {
				a := randAd(rng, nextAd)
				for _, e := range engines {
					// Each engine gets its own copy: stores are private.
					cp := *a
					if err := e.AddAd(&cp); err != nil {
						t.Fatalf("%s AddAd: %v", e.Name(), err)
					}
				}
				liveAds = append(liveAds, nextAd)
				nextAd++
			}
			for i := 0; i < 40; i++ {
				addAd()
			}

			now := base0
			var msgID feed.MessageID
			for step := 0; step < 400; step++ {
				now = now.Add(time.Duration(rng.Intn(180)) * time.Second)
				switch op := rng.Intn(10); {
				case op < 6: // post
					msgID++
					author := feed.UserID(rng.Intn(nUsers))
					nFollow := 1 + rng.Intn(5)
					followers := make([]feed.UserID, 0, nFollow)
					seen := map[feed.UserID]bool{}
					for len(followers) < nFollow {
						f := feed.UserID(rng.Intn(nUsers))
						if !seen[f] {
							seen[f] = true
							followers = append(followers, f)
						}
					}
					msg := feed.Message{
						ID:     msgID,
						Author: author,
						Time:   now.Add(-time.Duration(rng.Intn(30)) * time.Second),
						Vec:    randVec(rng, 1+rng.Intn(5), 25),
					}
					for _, e := range engines {
						if err := e.Deliver(msg, followers); err != nil {
							t.Fatalf("%s Deliver: %v", e.Name(), err)
						}
					}
				case op < 8: // check-in
					u := feed.UserID(rng.Intn(nUsers))
					p := geo.Point{Lat: rng.Float64() * 10, Lng: rng.Float64() * 10}
					for _, e := range engines {
						if err := e.CheckIn(u, p, now); err != nil {
							t.Fatalf("%s CheckIn: %v", e.Name(), err)
						}
					}
				case op == 8: // add ad mid-stream
					addAd()
				default: // remove a random ad
					if len(liveAds) > 5 {
						i := rng.Intn(len(liveAds))
						id := liveAds[i]
						liveAds = append(liveAds[:i], liveAds[i+1:]...)
						for _, e := range engines {
							if err := e.RemoveAd(id); err != nil {
								t.Fatalf("%s RemoveAd: %v", e.Name(), err)
							}
						}
					}
				}

				if step%5 == 0 {
					u := feed.UserID(rng.Intn(nUsers))
					k := 1 + rng.Intn(8)
					want, err := oracle.TopAds(u, k, now)
					if err != nil {
						t.Fatal(err)
					}
					for _, e := range engines[1:] {
						got, err := e.TopAds(u, k, now)
						if err != nil {
							t.Fatalf("%s TopAds: %v", e.Name(), err)
						}
						if err := scoresCompatible(want, got, 1e-6); err != nil {
							t.Fatalf("step %d user %d k %d: %s disagrees with RS: %v\nRS:  %+v\n%s: %+v",
								step, u, k, e.Name(), err, want, e.Name(), got)
						}
					}
				}
			}
		})
	}
}

func TestUnknownUserErrors(t *testing.T) {
	for _, e := range makeEngines(t, testScoring()) {
		if _, err := e.TopAds(99, 5, base0); !errors.Is(err, ErrUnknownUser) {
			t.Errorf("%s TopAds unknown user = %v", e.Name(), err)
		}
		if err := e.CheckIn(99, geo.Point{Lat: 5, Lng: 5}, base0); !errors.Is(err, ErrUnknownUser) {
			t.Errorf("%s CheckIn unknown user = %v", e.Name(), err)
		}
		msg := feed.Message{ID: 1, Time: base0, Vec: textproc.SparseVector{1: 1}}
		if err := e.Deliver(msg, []feed.UserID{99}); !errors.Is(err, ErrUnknownUser) {
			t.Errorf("%s Deliver unknown follower = %v", e.Name(), err)
		}
	}
}

func TestCheckInOutsideRegionRejected(t *testing.T) {
	il, _ := NewIL(testScoring(), nil, region, 8, 8)
	il.AddUser(1)
	if err := il.CheckIn(1, geo.Point{Lat: 50, Lng: 50}, base0); err == nil {
		t.Fatal("out-of-region check-in accepted")
	}
	cp, _ := NewCAP(testScoring(), nil, region, 8, 8, DefaultCAPOptions())
	cp.AddUser(1)
	if err := cp.CheckIn(1, geo.Point{Lat: -5, Lng: 5}, base0); err == nil {
		t.Fatal("out-of-region check-in accepted by CAP")
	}
}

func TestScoringValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scoring)
		ok   bool
	}{
		{"default", func(s *Scoring) {}, true},
		{"negative alpha", func(s *Scoring) { s.AlphaText = -1 }, false},
		{"all zero", func(s *Scoring) { s.AlphaText, s.BetaGeo, s.GammaBid = 0, 0, 0 }, false},
		{"zero window", func(s *Scoring) { s.WindowCap = 0 }, false},
		{"text only", func(s *Scoring) { s.BetaGeo, s.GammaBid = 0, 0 }, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := DefaultScoring()
			c.mut(&s)
			err := s.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && !errors.Is(err, ErrBadScoring) {
				t.Fatalf("want ErrBadScoring, got %v", err)
			}
		})
	}
}

func TestNewEngineRejectsBadScoring(t *testing.T) {
	bad := Scoring{WindowCap: 0}
	if _, err := NewRS(bad, nil); err == nil {
		t.Fatal("RS accepted bad scoring")
	}
	if _, err := NewIL(bad, nil, region, 8, 8); err == nil {
		t.Fatal("IL accepted bad scoring")
	}
	if _, err := NewCAP(bad, nil, region, 8, 8, DefaultCAPOptions()); err == nil {
		t.Fatal("CAP accepted bad scoring")
	}
}
