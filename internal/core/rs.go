package core

import (
	"fmt"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/timeslot"
	"caar/internal/topk"
)

// RS is the Re-Scan baseline: every query scores every ad in the store
// against the user's current context. It is trivially exact and serves as
// the correctness oracle for the other engines; its per-query cost is
// O(|ads| · |ad terms|).
type RS struct {
	*base
}

// NewRS creates an RS engine. A nil store creates a private one.
func NewRS(s Scoring, store *adstore.Store) (*RS, error) {
	b, err := newBase(s, store)
	if err != nil {
		return nil, err
	}
	return &RS{base: b}, nil
}

// Name implements Recommender.
func (e *RS) Name() string { return "RS" }

// AddAd implements Recommender. RS keeps no index; the store is the index.
func (e *RS) AddAd(a *adstore.Ad) error { return e.store.Add(a) }

// RemoveAd implements Recommender.
func (e *RS) RemoveAd(id adstore.AdID) error { return e.store.Remove(id) }

// RegisterAd indexes an ad that is already present in a (shared) store. RS
// keeps no index, so this is a no-op.
func (e *RS) RegisterAd(a *adstore.Ad) {}

// UnregisterAd drops an ad from the engine's indexes without touching the
// store. RS keeps no index, so this is a no-op.
func (e *RS) UnregisterAd(id adstore.AdID) {}

// Deliver implements Recommender: push the message into each follower's
// window. RS does no per-event index work.
func (e *RS) Deliver(msg feed.Message, followers []feed.UserID) error {
	for _, u := range followers {
		st, ok := e.users[u]
		if !ok {
			return fmt.Errorf("%w: follower %d", ErrUnknownUser, u)
		}
		st.win.Push(msg)
	}
	return nil
}

// TopAds implements Recommender by exhaustive scan. RS has no retrieval
// structure, so its retrieve stage covers only the window-context fetch;
// all the work lands in the score stage — exactly the contrast the
// per-stage spans exist to expose.
func (e *RS) TopAds(u feed.UserID, k int, t time.Time) ([]Scored, error) {
	st, err := e.state(u)
	if err != nil {
		return nil, err
	}
	span := e.stageStart()
	ctx, factor := st.win.ContextRef(t)
	sl := timeslot.Of(t)
	c := topk.NewCollector(k)
	universe := e.store.Len()
	span = e.stageDone(StageRetrieve, span, universe, universe)

	offered := 0
	e.store.ForEach(func(a *adstore.Ad) {
		textRel := a.Vec.Dot(ctx) * factor
		if e.offer(c, a, textRel, st, sl, t) {
			offered++
		}
	})
	span = e.stageDone(StageScore, span, universe, offered)

	out := e.resolve(c.Items(), st, func(id adstore.AdID) float64 {
		a := e.store.Get(id)
		if a == nil {
			return 0
		}
		return a.Vec.Dot(ctx) * factor
	})
	e.stageDone(StageTopK, span, offered, len(out))
	return out, nil
}
