package core

import (
	"fmt"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/index"
	"caar/internal/timeslot"
	"caar/internal/topk"
)

// indexed bundles the ad indexes shared by the IL and CAP engines: the
// keyword inverted index and the geographic/static pre-filter.
type indexed struct {
	*base
	inv    *index.Inverted
	geoIdx *index.GeoAds
	region geo.Rect
	// ads is a shard-local mirror of the store's live ads. Hot scoring paths
	// read it lock-free (the engine's own mutex serializes mutation), so
	// per-candidate lookups do not contend on the shared store's RWMutex
	// when several shards score in parallel.
	ads map[adstore.AdID]*adstore.Ad
}

func newIndexed(s Scoring, store *adstore.Store, region geo.Rect, gridRows, gridCols int) (*indexed, error) {
	b, err := newBase(s, store)
	if err != nil {
		return nil, err
	}
	gi, err := index.NewGeoAds(region, gridRows, gridCols)
	if err != nil {
		return nil, err
	}
	return &indexed{
		base:   b,
		inv:    index.NewInverted(),
		geoIdx: gi,
		region: region,
		ads:    make(map[adstore.AdID]*adstore.Ad),
	}, nil
}

// registerAd indexes an ad assumed to exist in the (possibly shared) store.
func (ix *indexed) registerAd(a *adstore.Ad) {
	ix.inv.Add(a.ID, a.Vec)
	ix.geoIdx.Add(a)
	ix.ads[a.ID] = a
}

// unregisterAd drops an ad from the engine-local indexes only.
func (ix *indexed) unregisterAd(id adstore.AdID) {
	ix.inv.Remove(id)
	ix.geoIdx.Remove(id)
	delete(ix.ads, id)
}

// ad returns the shard-local ad record (nil when withdrawn).
func (ix *indexed) ad(id adstore.AdID) *adstore.Ad { return ix.ads[id] }

// IndexStats reports the keyword inverted index's size: indexed ads and
// total (term, ad) postings. Callers hold the engine's lock; the facade's
// observability gauges sample it at scrape time.
func (ix *indexed) IndexStats() (ads, postings int) {
	return ix.inv.Len(), ix.inv.Postings()
}

func (ix *indexed) addAd(a *adstore.Ad) error {
	if err := ix.store.Add(a); err != nil {
		return err
	}
	ix.registerAd(a)
	return nil
}

func (ix *indexed) removeAd(id adstore.AdID) error {
	if err := ix.store.Remove(id); err != nil {
		return err
	}
	ix.unregisterAd(id)
	return nil
}

// CheckIn restricts user locations to the indexed region: a user outside the
// grid coverage could match geo-targeted ads the cell index cannot see, so
// the engine rejects the check-in rather than silently degrade to global ads.
func (ix *indexed) CheckIn(u feed.UserID, p geo.Point, t time.Time) error {
	if !ix.region.Contains(p) {
		return fmt.Errorf("core: check-in %v outside indexed region %+v", p, ix.region)
	}
	return ix.base.CheckIn(u, p, t)
}

// offerStatic submits the candidates whose text relevance is zero: the
// geo-targeted ads registered in the user's grid cell plus global ads in
// descending bid order, stopping as soon as no further global ad can enter
// the collector. skip filters ads already offered through the text path.
// It reports how many static candidates it examined and how many passed
// eligibility gating into the collector, for the score stage's trace span.
func (ix *indexed) offerStatic(c *topk.Collector, st *userState, sl timeslot.Slot, t time.Time, skip func(adstore.AdID) bool) (examined, offered int) {
	if st.hasLoc {
		for _, id := range ix.geoIdx.LocalCandidates(st.loc) {
			if skip != nil && skip(id) {
				continue
			}
			examined++
			if ix.offer(c, ix.ad(id), 0, st, sl, t) {
				offered++
			}
		}
	}
	// Global ads: bid-descending, so static scores are non-increasing. Once
	// the collector is full and the best remaining static score cannot beat
	// the threshold, no later entry can either.
	for _, id := range ix.geoIdx.GlobalByBid() {
		a := ix.ad(id)
		if a == nil {
			continue
		}
		bound := ix.scoring.staticScore(a, st.loc, st.hasLoc)
		if !c.WouldAccept(bound) {
			break
		}
		if skip != nil && skip(id) {
			continue
		}
		examined++
		if ix.offer(c, a, 0, st, sl, t) {
			offered++
		}
	}
	return examined, offered
}

// IL is the Inverted-List baseline: per-query threshold evaluation over the
// keyword inverted index. Each query recomputes the delta list of the whole
// window context — exact, and far cheaper than RS, but with no reuse across
// the stream of feed events.
type IL struct {
	*indexed
}

// NewIL creates an IL engine over the given coverage region with the given
// spatial grid resolution. A nil store creates a private one.
func NewIL(s Scoring, store *adstore.Store, region geo.Rect, gridRows, gridCols int) (*IL, error) {
	ix, err := newIndexed(s, store, region, gridRows, gridCols)
	if err != nil {
		return nil, err
	}
	return &IL{indexed: ix}, nil
}

// Name implements Recommender.
func (e *IL) Name() string { return "IL" }

// AddAd implements Recommender.
func (e *IL) AddAd(a *adstore.Ad) error { return e.addAd(a) }

// RemoveAd implements Recommender.
func (e *IL) RemoveAd(id adstore.AdID) error { return e.removeAd(id) }

// RegisterAd indexes an ad already present in a (shared) store.
func (e *IL) RegisterAd(a *adstore.Ad) { e.registerAd(a) }

// UnregisterAd drops an ad from the engine's indexes without touching the
// store.
func (e *IL) UnregisterAd(id adstore.AdID) { e.unregisterAd(id) }

// Deliver implements Recommender: window maintenance only, like RS.
func (e *IL) Deliver(msg feed.Message, followers []feed.UserID) error {
	for _, u := range followers {
		st, ok := e.users[u]
		if !ok {
			return fmt.Errorf("%w: follower %d", ErrUnknownUser, u)
		}
		st.win.Push(msg)
	}
	return nil
}

// TopAds implements Recommender: one inverted-index pass over the context's
// terms yields the exact text relevance of every candidate; the static-only
// remainder comes from the geo/bid index.
func (e *IL) TopAds(u feed.UserID, k int, t time.Time) ([]Scored, error) {
	st, err := e.state(u)
	if err != nil {
		return nil, err
	}
	span := e.stageStart()
	ctx, factor := st.win.ContextRef(t)
	sl := timeslot.Of(t)
	c := topk.NewCollector(k)
	deltas := e.inv.DeltaList(ctx)
	span = e.stageDone(StageRetrieve, span, len(deltas), len(deltas))

	offered := 0
	textOf := make(map[adstore.AdID]float64, len(deltas))
	for _, d := range deltas {
		textRel := d.Coeff * factor
		textOf[d.Ad] = textRel
		if e.offer(c, e.ad(d.Ad), textRel, st, sl, t) {
			offered++
		}
	}
	examined, offeredStatic := e.offerStatic(c, st, sl, t, func(id adstore.AdID) bool {
		_, seen := textOf[id]
		return seen
	})
	offered += offeredStatic
	span = e.stageDone(StageScore, span, len(deltas)+examined, offered)

	out := e.resolve(c.Items(), st, func(id adstore.AdID) float64 { return textOf[id] })
	e.stageDone(StageTopK, span, offered, len(out))
	return out, nil
}
