package core

import (
	"math"
	"testing"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

func newTestCAP(t *testing.T, opts CAPOptions) *CAP {
	t.Helper()
	e, err := NewCAP(testScoring(), nil, region, 8, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func simpleAd(id adstore.AdID, term textproc.TermID, bid float64) *adstore.Ad {
	return &adstore.Ad{
		ID:     id,
		Vec:    textproc.SparseVector{term: 1},
		Global: true,
		Slots:  timeslot.AllSlots,
		Bid:    bid,
	}
}

func post(id feed.MessageID, at time.Time, term textproc.TermID, w float64) feed.Message {
	return feed.Message{ID: id, Time: at, Vec: textproc.SparseVector{term: w}}
}

func TestCAPBufferGrowsAndShrinks(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	e.AddAd(simpleAd(100, 7, 0.5))
	e.AddAd(simpleAd(101, 8, 0.5))

	// Window cap is 6 (testScoring). Post 6 messages on term 7.
	now := base0
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		if err := e.Deliver(post(feed.MessageID(i), now, 7, 1), []feed.UserID{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BufferSize(1); got != 1 {
		t.Fatalf("buffer size = %d, want 1 (only ad 100 matches)", got)
	}
	if got := e.CachedMessages(); got != 6 {
		t.Fatalf("cached messages = %d, want 6", got)
	}

	// Push 6 messages on term 8: all term-7 messages evict, buffer should
	// swap to ad 101 and the old message caches should be released.
	for i := 6; i < 12; i++ {
		now = now.Add(time.Minute)
		if err := e.Deliver(post(feed.MessageID(i), now, 8, 1), []feed.UserID{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BufferSize(1); got != 1 {
		t.Fatalf("buffer size after swap = %d, want 1", got)
	}
	if got := e.CachedMessages(); got != 6 {
		t.Fatalf("cached messages after eviction = %d, want 6", got)
	}
	top, err := e.TopAds(1, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Ad != 101 {
		t.Fatalf("top ad = %d, want 101", top[0].Ad)
	}
}

func TestCAPCacheSharedAcrossFollowers(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	for u := feed.UserID(1); u <= 3; u++ {
		e.AddUser(u)
	}
	e.AddAd(simpleAd(100, 7, 0.5))
	if err := e.Deliver(post(1, base0, 7, 1), []feed.UserID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := e.CachedMessages(); got != 1 {
		t.Fatalf("one message delivered to 3 users should cache once, got %d", got)
	}
	// Evict it from all three windows (capacity 6 → six more posts each).
	now := base0
	for i := 2; i <= 7; i++ {
		now = now.Add(time.Minute)
		if err := e.Deliver(post(feed.MessageID(i), now, 9, 1), []feed.UserID{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Message 1 evicted from all 3 windows → refcount 0 → cache released.
	// 6 live messages remain cached.
	if got := e.CachedMessages(); got != 6 {
		t.Fatalf("cached messages = %d, want 6 (msg 1 released)", got)
	}
}

func TestCAPTopAdsRespectsSlotTargeting(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	morningOnly := simpleAd(1, 7, 0.9)
	morningOnly.Slots = timeslot.NewSet(timeslot.Morning)
	allDay := simpleAd(2, 7, 0.1)
	e.AddAd(morningOnly)
	e.AddAd(allDay)
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1}) // base0 is 08:00

	top, _ := e.TopAds(1, 2, base0)
	if len(top) != 2 || top[0].Ad != 1 {
		t.Fatalf("morning query: %+v", top)
	}
	evening := time.Date(2026, 7, 6, 21, 0, 0, 0, time.UTC)
	top, _ = e.TopAds(1, 2, evening)
	if len(top) != 1 || top[0].Ad != 2 {
		t.Fatalf("evening query should exclude morning-only ad: %+v", top)
	}
}

func TestCAPTopAdsRespectsBudgetPacing(t *testing.T) {
	store := adstore.NewStore()
	camp, err := adstore.NewCampaign("c", 1.0, base0, base0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	store.AddCampaign(camp)
	e, err := NewCAP(testScoring(), store, region, 8, 8, DefaultCAPOptions())
	if err != nil {
		t.Fatal(err)
	}
	e.AddUser(1)
	budgeted := simpleAd(1, 7, 0.5)
	budgeted.Campaign = "c"
	e.AddAd(budgeted)
	e.AddAd(simpleAd(2, 7, 0.1))
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})

	// At flight start nothing is released: budgeted ad is filtered out.
	top, _ := e.TopAds(1, 2, base0)
	if len(top) != 1 || top[0].Ad != 2 {
		t.Fatalf("paced-out ad served: %+v", top)
	}
	// Mid-flight it can serve.
	top, _ = e.TopAds(1, 2, base0.Add(31*time.Minute))
	if len(top) != 2 || top[0].Ad != 1 {
		t.Fatalf("mid-flight: %+v", top)
	}
	// Exhaust it; it disappears again.
	if ok, err := store.ChargeImpression(1, base0.Add(31*time.Minute)); err != nil || !ok {
		t.Fatalf("charge: %v %v", ok, err)
	}
	top, _ = e.TopAds(1, 2, base0.Add(31*time.Minute))
	if len(top) != 1 || top[0].Ad != 2 {
		t.Fatalf("exhausted ad still served: %+v", top)
	}
}

func TestCAPGeoTargetedRanking(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	near := &adstore.Ad{
		ID:     1,
		Vec:    textproc.SparseVector{7: 1},
		Target: geo.Circle{Center: geo.Point{Lat: 5, Lng: 5}, RadiusKm: 100},
		Slots:  timeslot.AllSlots,
		Bid:    0.1,
	}
	far := &adstore.Ad{
		ID:     2,
		Vec:    textproc.SparseVector{7: 1},
		Target: geo.Circle{Center: geo.Point{Lat: 9, Lng: 9}, RadiusKm: 100},
		Slots:  timeslot.AllSlots,
		Bid:    0.1,
	}
	e.AddAd(near)
	e.AddAd(far)
	if err := e.CheckIn(1, geo.Point{Lat: 5, Lng: 5}, base0); err != nil {
		t.Fatal(err)
	}
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})
	top, _ := e.TopAds(1, 5, base0)
	if len(top) != 1 || top[0].Ad != 1 {
		t.Fatalf("only the covering ad should serve: %+v", top)
	}
	if top[0].Geo <= 0 {
		t.Fatalf("geo component missing: %+v", top[0])
	}
	// Without a check-in, geo-targeted ads must not serve at all.
	e2 := newTestCAP(t, DefaultCAPOptions())
	e2.AddUser(1)
	cp := *near
	e2.AddAd(&cp)
	e2.Deliver(post(1, base0, 7, 1), []feed.UserID{1})
	top, _ = e2.TopAds(1, 5, base0)
	if len(top) != 0 {
		t.Fatalf("geo ad served without user location: %+v", top)
	}
}

func TestCAPDecayReordersOverTime(t *testing.T) {
	// A text-matched ad should outrank a high-bid ad right after the post,
	// but decay below it hours later.
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	textAd := simpleAd(1, 7, 0.05)
	bidAd := simpleAd(2, 999, 1.0) // never text-matches
	e.AddAd(textAd)
	e.AddAd(bidAd)
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})

	top, _ := e.TopAds(1, 2, base0)
	if top[0].Ad != 1 {
		t.Fatalf("fresh post: text ad should lead: %+v", top)
	}
	later := base0.Add(6 * time.Hour) // 12 half-lives of 30 min
	top, _ = e.TopAds(1, 2, later)
	if top[0].Ad != 2 {
		t.Fatalf("after decay: bid ad should lead: %+v", top)
	}
}

// TestCAPDecayUnderflowDoesNotPoisonBuffer is the regression test for the
// scale-underflow bug: after an idle gap long enough that the decay factor
// between window references flushes to exactly 0 (exp(-x) underflows past
// x ≈ 745; with the 30-minute test half-life that is a few weeks), the
// buffer scale became 0, the renormalization guard (`scale < 1e-150 &&
// scale > 0`) never fired, and the next add divided by zero — permanently
// poisoning the user's candidate buffer with ±Inf/NaN.
func TestCAPDecayUnderflowDoesNotPoisonBuffer(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	e.AddAd(simpleAd(100, 7, 0.5))

	if err := e.Deliver(post(1, base0, 7, 1), []feed.UserID{1}); err != nil {
		t.Fatal(err)
	}
	// Idle far past the underflow horizon, then post again: the age factor
	// between the old and new window reference is exactly 0.
	later := base0.Add(60 * 24 * time.Hour)
	if err := e.Deliver(post(2, later, 7, 1), []feed.UserID{1}); err != nil {
		t.Fatal(err)
	}
	top, err := e.TopAds(1, 2, later)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Ad != 100 {
		t.Fatalf("top after idle gap = %+v, want ad 100", top)
	}
	for _, s := range top {
		if math.IsNaN(s.Score) || math.IsInf(s.Score, 0) || math.IsNaN(s.Text) || math.IsInf(s.Text, 0) {
			t.Fatalf("buffer poisoned by decay underflow: %+v", s)
		}
	}
	if top[0].Text <= 0 {
		t.Fatalf("fresh post should contribute text relevance, got %+v", top[0])
	}
	// Every later event must stay finite too.
	if err := e.Deliver(post(3, later.Add(time.Minute), 7, 1), []feed.UserID{1}); err != nil {
		t.Fatal(err)
	}
	top, _ = e.TopAds(1, 2, later.Add(time.Minute))
	if math.IsNaN(top[0].Score) || math.IsInf(top[0].Score, 0) {
		t.Fatalf("score still poisoned after recovery post: %+v", top[0])
	}
}

// TestDynBufAgeUnderflow pins the dynBuf repair paths directly: a factor of
// exactly 0 clears the buffer and resets the scale; a subnormal product
// renormalizes into the stored values. Both leave the next add finite.
func TestDynBufAgeUnderflow(t *testing.T) {
	b := newDynBuf()
	b.add(1, 0.5)
	b.age(0)
	if b.scale != 1 || len(b.u) != 0 {
		t.Fatalf("zero factor: scale=%v entries=%d, want scale 1 and empty buffer", b.scale, len(b.u))
	}
	b.add(1, 0.7)
	if v := b.u[1]; math.IsNaN(v) || math.IsInf(v, 0) || v != 0.7 {
		t.Fatalf("add after zero-age = %v, want 0.7", v)
	}

	b = newDynBuf()
	b.add(2, 1.0)
	b.age(5e-324) // subnormal, > 0: renormalization path
	if b.scale != 1 {
		t.Fatalf("subnormal factor: scale=%v, want renormalized to 1", b.scale)
	}
	b.add(2, 0.25)
	if v := b.u[2]; math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("add after subnormal age = %v, want finite", v)
	}
}

func TestCAPDeliverEmptyFollowerList(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	if err := e.Deliver(post(1, base0, 7, 1), nil); err != nil {
		t.Fatalf("empty fan-out should be a no-op: %v", err)
	}
	if e.CachedMessages() != 0 {
		t.Fatal("no-follower message should not be cached")
	}
}

func TestCAPAddUserIdempotent(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	e.AddAd(simpleAd(1, 7, 0.5))
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})
	e.AddUser(1) // must not reset window or buffer
	if e.BufferSize(1) != 1 {
		t.Fatal("re-AddUser cleared buffer")
	}
	top, _ := e.TopAds(1, 1, base0)
	if len(top) != 1 || top[0].Text <= 0 {
		t.Fatalf("window lost: %+v", top)
	}
}
