package core

import (
	"testing"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

func newTestCAP(t *testing.T, opts CAPOptions) *CAP {
	t.Helper()
	e, err := NewCAP(testScoring(), nil, region, 8, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func simpleAd(id adstore.AdID, term textproc.TermID, bid float64) *adstore.Ad {
	return &adstore.Ad{
		ID:     id,
		Vec:    textproc.SparseVector{term: 1},
		Global: true,
		Slots:  timeslot.AllSlots,
		Bid:    bid,
	}
}

func post(id feed.MessageID, at time.Time, term textproc.TermID, w float64) feed.Message {
	return feed.Message{ID: id, Time: at, Vec: textproc.SparseVector{term: w}}
}

func TestCAPBufferGrowsAndShrinks(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	e.AddAd(simpleAd(100, 7, 0.5))
	e.AddAd(simpleAd(101, 8, 0.5))

	// Window cap is 6 (testScoring). Post 6 messages on term 7.
	now := base0
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		if err := e.Deliver(post(feed.MessageID(i), now, 7, 1), []feed.UserID{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BufferSize(1); got != 1 {
		t.Fatalf("buffer size = %d, want 1 (only ad 100 matches)", got)
	}
	if got := e.CachedMessages(); got != 6 {
		t.Fatalf("cached messages = %d, want 6", got)
	}

	// Push 6 messages on term 8: all term-7 messages evict, buffer should
	// swap to ad 101 and the old message caches should be released.
	for i := 6; i < 12; i++ {
		now = now.Add(time.Minute)
		if err := e.Deliver(post(feed.MessageID(i), now, 8, 1), []feed.UserID{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BufferSize(1); got != 1 {
		t.Fatalf("buffer size after swap = %d, want 1", got)
	}
	if got := e.CachedMessages(); got != 6 {
		t.Fatalf("cached messages after eviction = %d, want 6", got)
	}
	top, err := e.TopAds(1, 1, now)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Ad != 101 {
		t.Fatalf("top ad = %d, want 101", top[0].Ad)
	}
}

func TestCAPCacheSharedAcrossFollowers(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	for u := feed.UserID(1); u <= 3; u++ {
		e.AddUser(u)
	}
	e.AddAd(simpleAd(100, 7, 0.5))
	if err := e.Deliver(post(1, base0, 7, 1), []feed.UserID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := e.CachedMessages(); got != 1 {
		t.Fatalf("one message delivered to 3 users should cache once, got %d", got)
	}
	// Evict it from all three windows (capacity 6 → six more posts each).
	now := base0
	for i := 2; i <= 7; i++ {
		now = now.Add(time.Minute)
		if err := e.Deliver(post(feed.MessageID(i), now, 9, 1), []feed.UserID{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Message 1 evicted from all 3 windows → refcount 0 → cache released.
	// 6 live messages remain cached.
	if got := e.CachedMessages(); got != 6 {
		t.Fatalf("cached messages = %d, want 6 (msg 1 released)", got)
	}
}

func TestCAPTopAdsRespectsSlotTargeting(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	morningOnly := simpleAd(1, 7, 0.9)
	morningOnly.Slots = timeslot.NewSet(timeslot.Morning)
	allDay := simpleAd(2, 7, 0.1)
	e.AddAd(morningOnly)
	e.AddAd(allDay)
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1}) // base0 is 08:00

	top, _ := e.TopAds(1, 2, base0)
	if len(top) != 2 || top[0].Ad != 1 {
		t.Fatalf("morning query: %+v", top)
	}
	evening := time.Date(2026, 7, 6, 21, 0, 0, 0, time.UTC)
	top, _ = e.TopAds(1, 2, evening)
	if len(top) != 1 || top[0].Ad != 2 {
		t.Fatalf("evening query should exclude morning-only ad: %+v", top)
	}
}

func TestCAPTopAdsRespectsBudgetPacing(t *testing.T) {
	store := adstore.NewStore()
	camp, err := adstore.NewCampaign("c", 1.0, base0, base0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	store.AddCampaign(camp)
	e, err := NewCAP(testScoring(), store, region, 8, 8, DefaultCAPOptions())
	if err != nil {
		t.Fatal(err)
	}
	e.AddUser(1)
	budgeted := simpleAd(1, 7, 0.5)
	budgeted.Campaign = "c"
	e.AddAd(budgeted)
	e.AddAd(simpleAd(2, 7, 0.1))
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})

	// At flight start nothing is released: budgeted ad is filtered out.
	top, _ := e.TopAds(1, 2, base0)
	if len(top) != 1 || top[0].Ad != 2 {
		t.Fatalf("paced-out ad served: %+v", top)
	}
	// Mid-flight it can serve.
	top, _ = e.TopAds(1, 2, base0.Add(31*time.Minute))
	if len(top) != 2 || top[0].Ad != 1 {
		t.Fatalf("mid-flight: %+v", top)
	}
	// Exhaust it; it disappears again.
	if ok, err := store.ChargeImpression(1, base0.Add(31*time.Minute)); err != nil || !ok {
		t.Fatalf("charge: %v %v", ok, err)
	}
	top, _ = e.TopAds(1, 2, base0.Add(31*time.Minute))
	if len(top) != 1 || top[0].Ad != 2 {
		t.Fatalf("exhausted ad still served: %+v", top)
	}
}

func TestCAPGeoTargetedRanking(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	near := &adstore.Ad{
		ID:     1,
		Vec:    textproc.SparseVector{7: 1},
		Target: geo.Circle{Center: geo.Point{Lat: 5, Lng: 5}, RadiusKm: 100},
		Slots:  timeslot.AllSlots,
		Bid:    0.1,
	}
	far := &adstore.Ad{
		ID:     2,
		Vec:    textproc.SparseVector{7: 1},
		Target: geo.Circle{Center: geo.Point{Lat: 9, Lng: 9}, RadiusKm: 100},
		Slots:  timeslot.AllSlots,
		Bid:    0.1,
	}
	e.AddAd(near)
	e.AddAd(far)
	if err := e.CheckIn(1, geo.Point{Lat: 5, Lng: 5}, base0); err != nil {
		t.Fatal(err)
	}
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})
	top, _ := e.TopAds(1, 5, base0)
	if len(top) != 1 || top[0].Ad != 1 {
		t.Fatalf("only the covering ad should serve: %+v", top)
	}
	if top[0].Geo <= 0 {
		t.Fatalf("geo component missing: %+v", top[0])
	}
	// Without a check-in, geo-targeted ads must not serve at all.
	e2 := newTestCAP(t, DefaultCAPOptions())
	e2.AddUser(1)
	cp := *near
	e2.AddAd(&cp)
	e2.Deliver(post(1, base0, 7, 1), []feed.UserID{1})
	top, _ = e2.TopAds(1, 5, base0)
	if len(top) != 0 {
		t.Fatalf("geo ad served without user location: %+v", top)
	}
}

func TestCAPDecayReordersOverTime(t *testing.T) {
	// A text-matched ad should outrank a high-bid ad right after the post,
	// but decay below it hours later.
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	textAd := simpleAd(1, 7, 0.05)
	bidAd := simpleAd(2, 999, 1.0) // never text-matches
	e.AddAd(textAd)
	e.AddAd(bidAd)
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})

	top, _ := e.TopAds(1, 2, base0)
	if top[0].Ad != 1 {
		t.Fatalf("fresh post: text ad should lead: %+v", top)
	}
	later := base0.Add(6 * time.Hour) // 12 half-lives of 30 min
	top, _ = e.TopAds(1, 2, later)
	if top[0].Ad != 2 {
		t.Fatalf("after decay: bid ad should lead: %+v", top)
	}
}

func TestCAPDeliverEmptyFollowerList(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	if err := e.Deliver(post(1, base0, 7, 1), nil); err != nil {
		t.Fatalf("empty fan-out should be a no-op: %v", err)
	}
	if e.CachedMessages() != 0 {
		t.Fatal("no-follower message should not be cached")
	}
}

func TestCAPAddUserIdempotent(t *testing.T) {
	e := newTestCAP(t, DefaultCAPOptions())
	e.AddUser(1)
	e.AddAd(simpleAd(1, 7, 0.5))
	e.Deliver(post(1, base0, 7, 1), []feed.UserID{1})
	e.AddUser(1) // must not reset window or buffer
	if e.BufferSize(1) != 1 {
		t.Fatal("re-AddUser cleared buffer")
	}
	top, _ := e.TopAds(1, 1, base0)
	if len(top) != 1 || top[0].Text <= 0 {
		t.Fatalf("window lost: %+v", top)
	}
}
