package core

import "time"

// Stage names one phase of a TopAds query, for per-stage latency spans.
// The decomposition follows the serving pipeline all three engines share,
// even though they distribute the work differently:
//
//   - StageRetrieve — obtaining the text-relevant candidate set. IL pays an
//     inverted-index walk per query here; CAP reads its pre-materialized
//     candidate buffer (the paper's contribution is precisely that this
//     stage collapses to ~0); RS has no retrieval structure at all.
//   - StageScore — eligibility gating (slot, geo, budget) plus scoring of
//     every candidate, including the spatial/static remainder from the
//     grid index, feeding the top-k collector.
//   - StageTopK — extracting the ranked top-k from the collector and
//     resolving score decompositions.
type Stage uint8

// TopAds stages, in pipeline order.
const (
	StageRetrieve Stage = iota
	StageScore
	StageTopK
	numStages
)

// String returns the stage's metric label.
func (s Stage) String() string {
	switch s {
	case StageRetrieve:
		return "retrieve"
	case StageScore:
		return "score"
	case StageTopK:
		return "topk"
	default:
		return "unknown"
	}
}

// StageRecorder receives, for each TopAds stage, its elapsed time and the
// candidate counts flowing into (in) and out of (out) the stage — the
// attrition funnel a request trace renders (retrieve 4312 → score 987 →
// topk 10). The score stage's in-count may exceed retrieve's out-count:
// the static/geo remainder adds candidates the text path never saw. It is
// called while the engine's serializing lock is held, so implementations
// must be fast and must not call back into the engine.
type StageRecorder func(s Stage, d time.Duration, in, out int)

// StageSetter is implemented by every engine (via base); the facade uses it
// to attach its metrics registry without widening the Recommender interface.
type StageSetter interface {
	SetStageRecorder(StageRecorder)
}

// SetStageRecorder installs (or, with nil, removes) the per-stage span
// recorder. Not safe to call concurrently with queries; set it at wiring
// time, before the engine serves traffic.
func (b *base) SetStageRecorder(f StageRecorder) { b.stages = f }

// stageStart returns the stage clock's start point, or the zero time when
// no recorder is installed — keeping the disabled path free of time.Now
// calls on the query hot path.
func (b *base) stageStart() time.Time {
	if b.stages == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone records one stage span with its candidate counts and returns
// the start point of the next stage, so consecutive stages share a single
// clock read.
func (b *base) stageDone(s Stage, start time.Time, in, out int) time.Time {
	if b.stages == nil || start.IsZero() {
		return time.Time{}
	}
	now := time.Now()
	b.stages(s, now.Sub(start), in, out)
	return now
}
