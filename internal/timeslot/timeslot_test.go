package timeslot

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func at(hour int) time.Time {
	return time.Date(2026, 7, 6, hour, 30, 0, 0, time.UTC)
}

func TestOf(t *testing.T) {
	tests := []struct {
		hour int
		want Slot
	}{
		{0, Night}, {4, Night}, {5, Morning}, {8, Morning}, {12, Morning},
		{13, Afternoon}, {16, Afternoon}, {19, Afternoon}, {20, Night},
		{23, Night},
	}
	for _, tt := range tests {
		if got := Of(at(tt.hour)); got != tt.want {
			t.Errorf("Of(%02d:30) = %v, want %v", tt.hour, got, tt.want)
		}
	}
}

func TestSlotString(t *testing.T) {
	if Night.String() != "night" || Morning.String() != "morning" || Afternoon.String() != "afternoon" {
		t.Error("slot strings wrong")
	}
	if Slot(7).String() != "slot(7)" {
		t.Errorf("out-of-range slot string = %q", Slot(7).String())
	}
}

func TestSet(t *testing.T) {
	s := NewSet(Morning, Afternoon)
	if !s.Contains(Morning) || !s.Contains(Afternoon) || s.Contains(Night) {
		t.Fatalf("set membership wrong: %v", s)
	}
	if got := s.String(); got != "morning|afternoon" {
		t.Fatalf("String = %q", got)
	}
	if Set(0).String() != "none" {
		t.Error("empty set string")
	}
	if !AllSlots.Contains(Night) || !AllSlots.Contains(Morning) || !AllSlots.Contains(Afternoon) {
		t.Error("AllSlots incomplete")
	}
	slots := s.Slots()
	if len(slots) != 2 || slots[0] != Morning || slots[1] != Afternoon {
		t.Fatalf("Slots = %v", slots)
	}
}

func TestDecayDisabled(t *testing.T) {
	d := NewDecay(0)
	if d.Enabled() {
		t.Fatal("zero half-life should disable decay")
	}
	if d.WeightAt(time.Hour) != 1 {
		t.Fatal("disabled decay must weight 1")
	}
	if d.Between(at(1), at(10)) != 1 {
		t.Fatal("disabled Between must be 1")
	}
}

func TestDecayHalfLife(t *testing.T) {
	d := NewDecay(time.Hour)
	if got := d.WeightAt(time.Hour); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("weight at one half-life = %v, want 0.5", got)
	}
	if got := d.WeightAt(2 * time.Hour); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("weight at two half-lives = %v, want 0.25", got)
	}
	if got := d.WeightAt(0); got != 1 {
		t.Fatalf("weight at age 0 = %v", got)
	}
	if got := d.WeightAt(-time.Minute); got != 1 {
		t.Fatalf("negative age should clamp to 1, got %v", got)
	}
}

func TestDecayBetweenComposes(t *testing.T) {
	d := NewDecay(30 * time.Minute)
	a, b, c := at(1), at(2), at(3)
	lhs := d.Between(a, c)
	rhs := d.Between(a, b) * d.Between(b, c)
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Fatalf("Between does not compose: %v vs %v", lhs, rhs)
	}
	// Inverse direction is reciprocal.
	if math.Abs(d.Between(a, b)*d.Between(b, a)-1) > 1e-12 {
		t.Fatal("Between(a,b)·Between(b,a) ≠ 1")
	}
}

// TestDecayEpochEquivalenceProperty verifies the algebraic identity the CAP
// engine's epoch-rescaling trick relies on: a weight recorded at reference
// time r and converted to query time q equals the direct decay of the
// content's age.
func TestDecayEpochEquivalenceProperty(t *testing.T) {
	base := at(6)
	f := func(postOffsetSec, refOffsetSec, queryOffsetSec uint16) bool {
		d := NewDecay(45 * time.Minute)
		post := base.Add(time.Duration(postOffsetSec) * time.Second)
		ref := post.Add(time.Duration(refOffsetSec) * time.Second)
		query := ref.Add(time.Duration(queryOffsetSec) * time.Second)
		// direct: decay from post to query
		direct := d.WeightAt(query.Sub(post))
		// staged: record at ref, convert ref→query
		staged := d.WeightAt(ref.Sub(post)) * d.Between(ref, query)
		return math.Abs(direct-staged) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
