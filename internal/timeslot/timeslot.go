// Package timeslot models the temporal context dimension: coarse time-of-day
// slots used for ad targeting ("morning commuters", "evening sports fans")
// and exponential time decay used to age feed content.
package timeslot

import (
	"fmt"
	"math"
	"time"
)

// Slot is a coarse time-of-day bucket.
type Slot uint8

// The slot partition follows the evaluation setup: the experiments report
// separate results for the morning window [05:00, 13:00] and the afternoon
// window (13:00, 20:00]; everything else is Night.
const (
	Night     Slot = iota // (20:00, 05:00]
	Morning               // (05:00, 13:00]
	Afternoon             // (13:00, 20:00]
	numSlots
)

// NumSlots is the number of distinct slots.
const NumSlots = int(numSlots)

// String implements fmt.Stringer.
func (s Slot) String() string {
	switch s {
	case Night:
		return "night"
	case Morning:
		return "morning"
	case Afternoon:
		return "afternoon"
	default:
		return fmt.Sprintf("slot(%d)", uint8(s))
	}
}

// Of returns the slot containing t (local time of t).
func Of(t time.Time) Slot {
	h := t.Hour()
	switch {
	case h >= 5 && h < 13:
		return Morning
	case h >= 13 && h < 20:
		return Afternoon
	default:
		return Night
	}
}

// Set is a bitmask of slots, the representation ads use for slot targeting.
// The zero Set matches nothing; use AllSlots to match everything.
type Set uint8

// AllSlots matches every slot.
const AllSlots Set = 1<<numSlots - 1

// NewSet builds a set from individual slots.
func NewSet(slots ...Slot) Set {
	var s Set
	for _, sl := range slots {
		s |= 1 << sl
	}
	return s
}

// Contains reports whether the set includes sl.
func (s Set) Contains(sl Slot) bool { return s&(1<<sl) != 0 }

// Slots expands the set into its member slots in ascending order.
func (s Set) Slots() []Slot {
	var out []Slot
	for sl := Slot(0); sl < numSlots; sl++ {
		if s.Contains(sl) {
			out = append(out, sl)
		}
	}
	return out
}

// String lists the member slots, e.g. "morning|afternoon".
func (s Set) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	for _, sl := range s.Slots() {
		if out != "" {
			out += "|"
		}
		out += sl.String()
	}
	return out
}

// Decay is an exponential time-decay profile parameterized by half-life:
// weight(age) = 2^(−age/halfLife) = e^(−λ·age) with λ = ln2 / halfLife.
// A zero half-life means no decay (weight 1 forever).
type Decay struct {
	lambda float64 // per-second decay rate; 0 = no decay
}

// NewDecay builds a decay profile. halfLife ≤ 0 disables decay.
func NewDecay(halfLife time.Duration) Decay {
	if halfLife <= 0 {
		return Decay{}
	}
	return Decay{lambda: math.Ln2 / halfLife.Seconds()}
}

// Lambda returns the per-second decay rate (0 when decay is disabled).
func (d Decay) Lambda() float64 { return d.lambda }

// Enabled reports whether any decay is applied.
func (d Decay) Enabled() bool { return d.lambda > 0 }

// WeightAt returns the decay factor for content aged `age`. Negative ages
// (content "from the future", e.g. clock skew) clamp to weight 1.
func (d Decay) WeightAt(age time.Duration) float64 {
	if d.lambda == 0 || age <= 0 {
		return 1
	}
	return math.Exp(-d.lambda * age.Seconds())
}

// Between returns the factor that converts a weight referenced at time a to
// one referenced at the later time b: weight_b = weight_a × Between(a, b).
// When b precedes a, the factor is > 1 (inverse conversion).
func (d Decay) Between(a, b time.Time) float64 {
	if d.lambda == 0 {
		return 1
	}
	return math.Exp(-d.lambda * b.Sub(a).Seconds())
}
