package index

import (
	"testing"

	"caar/internal/adstore"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

func geoAd(id adstore.AdID, lat, lng, radiusKm, bid float64) *adstore.Ad {
	return &adstore.Ad{
		ID:     id,
		Vec:    textproc.SparseVector{1: 1},
		Target: geo.Circle{Center: geo.Point{Lat: lat, Lng: lng}, RadiusKm: radiusKm},
		Slots:  timeslot.AllSlots,
		Bid:    bid,
	}
}

func globalAd(id adstore.AdID, bid float64) *adstore.Ad {
	return &adstore.Ad{
		ID:     id,
		Vec:    textproc.SparseVector{1: 1},
		Global: true,
		Slots:  timeslot.AllSlots,
		Bid:    bid,
	}
}

func newGeoAds(t *testing.T) *GeoAds {
	t.Helper()
	g, err := NewGeoAds(geo.NewRect(geo.Point{Lat: 0, Lng: 0}, geo.Point{Lat: 10, Lng: 10}), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeoAdsLocalCandidates(t *testing.T) {
	g := newGeoAds(t)
	g.Add(geoAd(1, 5, 5, 10, 0.5))
	g.Add(geoAd(2, 9, 9, 10, 0.5))
	here := geo.Point{Lat: 5, Lng: 5}
	cands := g.LocalCandidates(here)
	found := false
	for _, id := range cands {
		if id == 1 {
			found = true
		}
		if id == 2 {
			t.Fatal("far ad in local candidates")
		}
	}
	if !found {
		t.Fatal("nearby ad missing from candidates")
	}
	if got := g.LocalCandidates(geo.Point{Lat: 50, Lng: 50}); got != nil {
		t.Fatalf("outside coverage: %v", got)
	}
}

func TestGeoAdsGlobalByBidOrder(t *testing.T) {
	g := newGeoAds(t)
	g.Add(globalAd(1, 0.3))
	g.Add(globalAd(2, 0.9))
	g.Add(globalAd(3, 0.9)) // tie: lower ID first
	g.Add(globalAd(4, 0.5))
	got := g.GlobalByBid()
	want := []adstore.AdID{2, 3, 4, 1}
	if len(got) != len(want) {
		t.Fatalf("GlobalByBid = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GlobalByBid = %v, want %v", got, want)
		}
	}
}

func TestGeoAdsRemove(t *testing.T) {
	g := newGeoAds(t)
	g.Add(geoAd(1, 5, 5, 10, 0.5))
	g.Add(globalAd(2, 0.7))
	e0 := g.Epoch()
	g.Remove(1)
	g.Remove(2)
	if g.Epoch() == e0 {
		t.Fatal("epoch did not advance on removal")
	}
	if got := g.LocalCandidates(geo.Point{Lat: 5, Lng: 5}); len(got) != 0 {
		t.Fatalf("removed geo ad still indexed: %v", got)
	}
	if got := g.GlobalByBid(); len(got) != 0 {
		t.Fatalf("removed global ad still listed: %v", got)
	}
	e1 := g.Epoch()
	g.Remove(99) // unknown: no-op, epoch unchanged
	if g.Epoch() != e1 {
		t.Fatal("no-op removal advanced epoch")
	}
}

func TestGeoAdsEpochAdvancesOnAdd(t *testing.T) {
	g := newGeoAds(t)
	e0 := g.Epoch()
	g.Add(globalAd(1, 0.5))
	if g.Epoch() == e0 {
		t.Fatal("epoch did not advance on add")
	}
}

func TestGeoAdsNoFalseNegatives(t *testing.T) {
	g := newGeoAds(t)
	// An ad whose circle covers the query point must always be in the
	// candidate cell list (the grid guarantee).
	g.Add(geoAd(7, 3, 3, 200, 0.5))
	probes := []geo.Point{{Lat: 3, Lng: 3}, {Lat: 3.9, Lng: 3}, {Lat: 3, Lng: 4.5}}
	for _, p := range probes {
		ad := geoAd(7, 3, 3, 200, 0.5)
		if !ad.Target.Contains(p) {
			continue
		}
		found := false
		for _, id := range g.LocalCandidates(p) {
			if id == 7 {
				found = true
			}
		}
		if !found {
			t.Fatalf("covered point %v missing candidate", p)
		}
	}
}
