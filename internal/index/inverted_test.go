package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"caar/internal/adstore"
	"caar/internal/textproc"
)

func vec(kv map[textproc.TermID]float64) textproc.SparseVector {
	v := textproc.SparseVector{}
	for k, x := range kv {
		v[k] = x
	}
	return v
}

func TestInvertedAddRemove(t *testing.T) {
	ix := NewInverted()
	ix.Add(1, vec(map[textproc.TermID]float64{10: 0.5, 20: 0.5}))
	ix.Add(2, vec(map[textproc.TermID]float64{20: 1.0}))
	if ix.Len() != 2 || ix.Postings() != 3 {
		t.Fatalf("Len=%d Postings=%d", ix.Len(), ix.Postings())
	}
	if ix.ListLen(20) != 2 || ix.ListLen(10) != 1 || ix.ListLen(99) != 0 {
		t.Fatal("list lengths wrong")
	}
	ix.Remove(1)
	if ix.Len() != 1 || ix.Postings() != 1 {
		t.Fatalf("after remove: Len=%d Postings=%d", ix.Len(), ix.Postings())
	}
	if ix.ListLen(10) != 0 {
		t.Fatal("term 10 list should be gone")
	}
	ix.Remove(1) // no-op
	if ix.Len() != 1 {
		t.Fatal("double remove changed state")
	}
}

func TestInvertedReAddReplaces(t *testing.T) {
	ix := NewInverted()
	ix.Add(1, vec(map[textproc.TermID]float64{10: 0.5}))
	ix.Add(1, vec(map[textproc.TermID]float64{20: 0.7}))
	if ix.Len() != 1 || ix.Postings() != 1 {
		t.Fatalf("Len=%d Postings=%d", ix.Len(), ix.Postings())
	}
	ds := ix.DeltaList(vec(map[textproc.TermID]float64{10: 1}))
	if len(ds) != 0 {
		t.Fatalf("old terms still indexed: %v", ds)
	}
}

func TestDeltaListExact(t *testing.T) {
	ix := NewInverted()
	ix.Add(1, vec(map[textproc.TermID]float64{10: 0.6, 20: 0.8}))
	ix.Add(2, vec(map[textproc.TermID]float64{20: 1.0}))
	ix.Add(3, vec(map[textproc.TermID]float64{30: 1.0}))
	msg := vec(map[textproc.TermID]float64{10: 0.5, 20: 0.5})
	ds := ix.DeltaList(msg)
	want := []Delta{
		{Ad: 1, Coeff: 0.5*0.6 + 0.5*0.8},
		{Ad: 2, Coeff: 0.5},
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatalf("DeltaList = %v, want %v", ds, want)
	}
	if ds := ix.DeltaList(vec(map[textproc.TermID]float64{99: 1})); ds != nil {
		t.Fatalf("unmatched message: %v", ds)
	}
	if ds := ix.DeltaList(textproc.SparseVector{}); ds != nil {
		t.Fatalf("empty message: %v", ds)
	}
}

// TestDeltaListMatchesBruteForce: the delta coefficient must equal the exact
// sparse dot product for every ad, on random ad sets and messages.
func TestDeltaListMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := NewInverted()
	ads := map[adstore.AdID]textproc.SparseVector{}
	for id := adstore.AdID(1); id <= 150; id++ {
		v := textproc.SparseVector{}
		for j := 0; j < 1+rng.Intn(6); j++ {
			v[textproc.TermID(rng.Intn(40))] = rng.Float64()
		}
		ads[id] = v
		ix.Add(id, v)
	}
	for trial := 0; trial < 100; trial++ {
		msg := textproc.SparseVector{}
		for j := 0; j < 1+rng.Intn(8); j++ {
			msg[textproc.TermID(rng.Intn(40))] = rng.Float64()
		}
		got := map[adstore.AdID]float64{}
		for _, d := range ix.DeltaList(msg) {
			got[d.Ad] = d.Coeff
		}
		for id, av := range ads {
			want := av.Dot(msg)
			if math.Abs(got[id]-want) > 1e-9 {
				t.Fatalf("trial %d ad %d: delta %v, dot %v", trial, id, got[id], want)
			}
			if want == 0 {
				if _, present := got[id]; present {
					t.Fatalf("ad %d with zero overlap appears in delta list", id)
				}
			}
		}
	}
}

func BenchmarkDeltaList(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := NewInverted()
	for id := adstore.AdID(0); id < 10000; id++ {
		v := textproc.SparseVector{}
		for j := 0; j < 5; j++ {
			v[textproc.TermID(rng.Intn(2000))] = rng.Float64()
		}
		ix.Add(id, v)
	}
	msg := textproc.SparseVector{}
	for j := 0; j < 8; j++ {
		msg[textproc.TermID(rng.Intn(2000))] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.DeltaList(msg)
	}
}
