// Package index provides the ad-side indexes of the recommender: a keyword
// inverted index that turns a message's term vector into the list of ads
// whose text score it moves (the delta lists at the heart of the CAP
// engine), and a spatial/static index that pre-filters ads by geographic
// cell and ranks the text-silent remainder by static score.
package index

import (
	"sort"

	"caar/internal/adstore"
	"caar/internal/textproc"
)

// posting is one (ad, term weight) entry of an inverted list.
type posting struct {
	ad adstore.AdID
	w  float64
}

// Delta is the text-score contribution of one message (or one query context)
// to one ad: Coeff = Σ_τ msg[τ]·ad[τ] over the terms they share.
type Delta struct {
	Ad    adstore.AdID
	Coeff float64
}

// Inverted is the keyword inverted index over ad term vectors.
//
// Inverted is not safe for concurrent mutation; the engine serializes ad
// registration. Lookups (DeltaList) are safe concurrently with each other.
type Inverted struct {
	lists map[textproc.TermID][]posting
	// terms remembers each ad's term IDs so removal is O(|ad terms|·list).
	terms    map[adstore.AdID][]textproc.TermID
	postings int
}

// NewInverted returns an empty inverted index.
func NewInverted() *Inverted {
	return &Inverted{
		lists: make(map[textproc.TermID][]posting),
		terms: make(map[adstore.AdID][]textproc.TermID),
	}
}

// Len returns the number of indexed ads.
func (ix *Inverted) Len() int { return len(ix.terms) }

// Postings returns the total number of (term, ad) pairs, a memory diagnostic.
func (ix *Inverted) Postings() int { return ix.postings }

// Add indexes an ad's term vector. Re-adding an ad replaces its entry.
func (ix *Inverted) Add(id adstore.AdID, vec textproc.SparseVector) {
	if _, exists := ix.terms[id]; exists {
		ix.Remove(id)
	}
	ts := make([]textproc.TermID, 0, len(vec))
	for term, w := range vec {
		ix.lists[term] = append(ix.lists[term], posting{ad: id, w: w})
		ts = append(ts, term)
	}
	ix.terms[id] = ts
	ix.postings += len(ts)
}

// Remove un-indexes an ad. Removing an unknown ad is a no-op.
func (ix *Inverted) Remove(id adstore.AdID) {
	ts, ok := ix.terms[id]
	if !ok {
		return
	}
	for _, term := range ts {
		list := ix.lists[term]
		for i := range list {
			if list[i].ad == id {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(ix.lists, term)
		} else {
			ix.lists[term] = list
		}
	}
	delete(ix.terms, id)
	ix.postings -= len(ts)
}

// DeltaList computes, for every ad sharing at least one term with vec, the
// exact text-score contribution Σ_τ vec[τ]·ad[τ]. This runs once per posted
// message and its result is shared across all followers (fan-out sharing).
// The result order is deterministic (ascending ad ID).
func (ix *Inverted) DeltaList(vec textproc.SparseVector) []Delta {
	acc := make(map[adstore.AdID]float64)
	for term, mw := range vec {
		for _, p := range ix.lists[term] {
			acc[p.ad] += mw * p.w
		}
	}
	if len(acc) == 0 {
		return nil
	}
	out := make([]Delta, 0, len(acc))
	for ad, c := range acc {
		out = append(out, Delta{Ad: ad, Coeff: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ad < out[j].Ad })
	return out
}

// ListLen returns the posting-list length of a term (0 when absent), used by
// workload diagnostics.
func (ix *Inverted) ListLen(term textproc.TermID) int {
	return len(ix.lists[term])
}
