package index

import (
	"sort"

	"caar/internal/adstore"
	"caar/internal/geo"
)

// GeoAds pre-filters ads by location: geo-targeted ads are registered in a
// uniform grid under the cells their target circles overlap; global ads are
// kept in a bid-descending list. A user's eligible ad set is then
// (ads in the user's cell, exact-checked) ∪ (global ads).
type GeoAds struct {
	grid   *geo.Grid
	global []adstore.AdID // bid-descending
	bids   map[adstore.AdID]float64
	epoch  uint64 // bumped on every mutation; invalidates external caches
}

// NewGeoAds creates the index over the given coverage rectangle with a
// rows×cols grid.
func NewGeoAds(cover geo.Rect, rows, cols int) (*GeoAds, error) {
	grid, err := geo.NewGrid(cover, rows, cols)
	if err != nil {
		return nil, err
	}
	return &GeoAds{grid: grid, bids: make(map[adstore.AdID]float64)}, nil
}

// Epoch returns a counter that changes whenever the indexed ad set changes,
// so per-cell result caches can detect staleness.
func (g *GeoAds) Epoch() uint64 { return g.epoch }

// Add registers an ad. Global ads go to the bid-sorted global list;
// geo-targeted ads go to the grid.
func (g *GeoAds) Add(a *adstore.Ad) {
	g.epoch++
	g.bids[a.ID] = a.Bid
	if a.Global {
		pos := sort.Search(len(g.global), func(i int) bool {
			bi := g.bids[g.global[i]]
			if bi != a.Bid {
				return bi < a.Bid
			}
			return g.global[i] > a.ID
		})
		g.global = append(g.global, 0)
		copy(g.global[pos+1:], g.global[pos:])
		g.global[pos] = a.ID
		return
	}
	g.grid.InsertCircle(int64(a.ID), a.Target)
}

// Remove un-registers an ad (no-op for unknown ads).
func (g *GeoAds) Remove(id adstore.AdID) {
	if _, ok := g.bids[id]; !ok {
		return
	}
	g.epoch++
	delete(g.bids, id)
	g.grid.Remove(int64(id))
	for i, gid := range g.global {
		if gid == id {
			g.global = append(g.global[:i], g.global[i+1:]...)
			break
		}
	}
}

// LocalCandidates returns the geo-targeted ads registered in the cell
// containing p (a superset of the ads whose circle contains p; callers apply
// the exact containment check). Nil when p is outside coverage.
func (g *GeoAds) LocalCandidates(p geo.Point) []adstore.AdID {
	items := g.grid.ItemsAt(p)
	if len(items) == 0 {
		return nil
	}
	out := make([]adstore.AdID, len(items))
	for i, it := range items {
		out[i] = adstore.AdID(it)
	}
	return out
}

// GlobalByBid returns global ads in descending bid order (ascending ID on
// ties). The slice is shared; callers must not mutate it.
func (g *GeoAds) GlobalByBid() []adstore.AdID { return g.global }

// CellOf exposes the grid cell of a point for cache keying.
func (g *GeoAds) CellOf(p geo.Point) geo.CellID { return g.grid.CellOf(p) }
