package faultinject

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFailingWriterBudget(t *testing.T) {
	var buf bytes.Buffer
	fw := &FailingWriter{W: &buf, Budget: 10}
	if n, err := fw.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: %d %v", n, err)
	}
	if n, err := fw.Write([]byte("1234567890")); err == nil || n != 0 {
		t.Fatalf("over-budget write accepted: %d %v", n, err)
	}
	if buf.String() != "12345" {
		t.Fatalf("buffer = %q", buf.String())
	}
	if fw.Written() != 5 {
		t.Fatalf("Written = %d", fw.Written())
	}
}

func TestPartialWriterTearsMidWrite(t *testing.T) {
	var buf bytes.Buffer
	pw := &PartialWriter{W: &buf, Budget: 8}
	if n, err := pw.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: %d %v", n, err)
	}
	// This write crosses the budget: only 3 more bytes land.
	n, err := pw.Write([]byte("abcdef"))
	if n != 3 || err == nil {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v", err)
	}
	if buf.String() != "12345abc" {
		t.Fatalf("buffer = %q", buf.String())
	}
	// Fully spent: nothing more lands.
	if n, err := pw.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("post-tear write: %d %v", n, err)
	}
}

func TestSlowWriterDelays(t *testing.T) {
	var buf bytes.Buffer
	sw := &SlowWriter{W: &buf, Delay: 10 * time.Millisecond}
	start := time.Now()
	if _, err := sw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("write not delayed")
	}
}

func TestFlakyTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	ft := &FlakyTransport{FailFirst: 2}
	client := &http.Client{Transport: ft}
	for i := range 2 {
		if _, err := client.Get(ts.URL); err == nil {
			t.Fatalf("request %d should have failed", i)
		}
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("third request failed: %v", err)
	}
	resp.Body.Close()
	if ft.Attempts() != 3 {
		t.Fatalf("attempts = %d", ft.Attempts())
	}
}

func TestDownTransport(t *testing.T) {
	dt := &DownTransport{}
	client := &http.Client{Transport: dt}
	if _, err := client.Get("http://example.invalid/"); err == nil {
		t.Fatal("down transport served a request")
	}
	if dt.Attempts() != 1 {
		t.Fatalf("attempts = %d", dt.Attempts())
	}
}

func TestScriptFailHeal(t *testing.T) {
	var buf bytes.Buffer
	s := NewScript(&buf)
	if _, err := s.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	s.Fail(nil)
	if _, err := s.Write([]byte("dropped")); !errors.Is(err, ErrInjected) {
		t.Fatalf("failing write error = %v", err)
	}
	s.Heal()
	if _, err := s.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "okback" {
		t.Fatalf("buffer = %q", buf.String())
	}
}
