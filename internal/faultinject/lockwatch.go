package faultinject

// Lock watchdog: a runtime complement to the caarlint lockorder analyzer.
//
// The static analyzer proves lock *ordering*; it cannot prove a lock is
// ever released — a hung fsync under journal.Writer.mu, or a writer path
// that blocks while holding the directory lock, stalls every other writer
// silently. The watchdog tracks how long instrumented mutexes have been
// held and, past a bound, dumps every goroutine stack and panics, turning
// an invisible stall into a loud, attributable CI failure.
//
// The real implementation lives behind the `caarlockwatch` build tag
// (lockwatch_on.go) and is compiled into the race-matrix smoke binaries;
// the default build gets the no-op stub in lockwatch_off.go, so production
// binaries pay one inlinable call returning a shared no-op closure.
//
// Instrumented sites call, immediately after acquiring the mutex:
//
//	unwatch := faultinject.WatchLock("engine.dirMu")
//	...
//	unwatch() // immediately before (or deferred alongside) the Unlock
//
// Arming is opt-in even in tagged builds, via CAAR_LOCKWATCH=<bound> (a Go
// duration, e.g. "5s"); the stack dump lands in CAAR_LOCKWATCH_OUT
// (default lockwatch-stacks.txt), which CI uploads as an artifact.

// LockWatchEnv names the environment variable holding the held-time bound
// as a Go duration; unset or empty leaves the watchdog disarmed.
const LockWatchEnv = "CAAR_LOCKWATCH"

// LockWatchOutEnv names the environment variable overriding where the
// watchdog writes its all-goroutine stack dump before panicking.
const LockWatchOutEnv = "CAAR_LOCKWATCH_OUT"

// LockWatchDefaultOut is the stack-dump path used when CAAR_LOCKWATCH_OUT
// is unset.
const LockWatchDefaultOut = "lockwatch-stacks.txt"
