//go:build caarlockwatch

package faultinject

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The tagged lock-watchdog implementation: see lockwatch.go for the
// contract. Held-lock registration is a mutex-guarded map, not a lock-free
// structure, deliberately — the instrumented sites are write-path locks
// (directory writers, journal appends), never the serving read path, and
// the watchdog only exists in smoke builds.

type lwEntry struct {
	name  string
	since time.Time
}

var (
	lwArmed atomic.Bool
	lwBound atomic.Int64 // nanoseconds

	lwMu   sync.Mutex
	lwHeld = map[uint64]*lwEntry{} // guarded by lwMu
	lwNext atomic.Uint64
	lwStop chan struct{} // guarded by lwMu

	// lwHandler, when set, receives the report instead of the
	// write-dump-and-panic default; tests use it to assert detection.
	lwHandler atomic.Value // func(string)
)

// WatchLock registers an acquired mutex with the watchdog and returns the
// release func to call before unlocking. Disarmed, it is one atomic load.
func WatchLock(name string) func() {
	if !lwArmed.Load() {
		return func() {}
	}
	id := lwNext.Add(1)
	e := &lwEntry{name: name, since: time.Now()}
	lwMu.Lock()
	lwHeld[id] = e
	lwMu.Unlock()
	return func() {
		lwMu.Lock()
		delete(lwHeld, id)
		lwMu.Unlock()
	}
}

// ArmLockWatchFromEnv arms the watchdog from CAAR_LOCKWATCH (a Go duration
// bound) and returns the spec it read ("" when unset). Arming starts the
// monitor goroutine; a previous monitor is stopped first.
func ArmLockWatchFromEnv() (string, error) {
	spec := os.Getenv(LockWatchEnv)
	if spec == "" {
		return "", nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil || d <= 0 {
		return spec, fmt.Errorf("faultinject: bad %s %q (want a positive Go duration)", LockWatchEnv, spec)
	}
	armLockWatch(d)
	return spec, nil
}

func armLockWatch(bound time.Duration) {
	DisarmLockWatch()
	lwBound.Store(int64(bound))
	lwArmed.Store(true)
	stop := make(chan struct{})
	lwMu.Lock()
	lwStop = stop
	lwMu.Unlock()
	// Poll at a quarter of the bound so a stall is caught within ~1.25x.
	go lwMonitor(stop, bound/4)
}

// DisarmLockWatch stops the monitor and forgets all held entries.
func DisarmLockWatch() {
	lwArmed.Store(false)
	lwMu.Lock()
	if lwStop != nil {
		close(lwStop)
		lwStop = nil
	}
	lwHeld = map[uint64]*lwEntry{}
	lwMu.Unlock()
}

// SetLockWatchHandler routes trip reports to h instead of the default
// write-stacks-and-panic; pass nil to restore the default.
func SetLockWatchHandler(h func(report string)) {
	lwHandler.Store(h)
}

func lwMonitor(stop <-chan struct{}, every time.Duration) {
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if report := lwCheck(); report != "" {
				if h, _ := lwHandler.Load().(func(string)); h != nil {
					h(report)
					continue
				}
				lwDump(report)
				panic("faultinject: lockwatch: " + firstLine(report))
			}
		}
	}
}

// lwCheck returns a trip report when any watched mutex has been held past
// the bound, "" otherwise.
func lwCheck() string {
	bound := time.Duration(lwBound.Load())
	now := time.Now()
	var over []string
	lwMu.Lock()
	for _, e := range lwHeld {
		if held := now.Sub(e.since); held > bound {
			over = append(over, fmt.Sprintf("mutex %q held for %s (bound %s)", e.name, held.Round(time.Millisecond), bound))
		}
	}
	lwMu.Unlock()
	if len(over) == 0 {
		return ""
	}
	report := "lock held past watchdog bound: " + over[0] + "\n"
	for _, o := range over[1:] {
		report += "  " + o + "\n"
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return report + "\nall goroutine stacks:\n" + string(buf[:n])
}

// lwDump writes the report where CI can pick it up as an artifact.
func lwDump(report string) {
	out := os.Getenv(LockWatchOutEnv)
	if out == "" {
		out = LockWatchDefaultOut
	}
	if err := os.WriteFile(out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "faultinject: lockwatch: writing %s: %v\n", out, err)
	}
	fmt.Fprint(os.Stderr, report)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
