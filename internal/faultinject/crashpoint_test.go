package faultinject

import (
	"os"
	"reflect"
	"testing"
)

// withRecorder swaps the crash action for a recorder and restores defaults
// (action and arm set) when the test finishes.
func withRecorder(t *testing.T) *[]string {
	t.Helper()
	var fired []string
	SetCrashAction(func(name string) { fired = append(fired, name) })
	t.Cleanup(func() {
		SetCrashAction(nil)
		DisarmCrashPoints()
	})
	return &fired
}

func TestCrashPointDisarmedIsNoop(t *testing.T) {
	fired := withRecorder(t)
	DisarmCrashPoints()
	CrashPoint("journal.pre-fsync")
	if len(*fired) != 0 {
		t.Fatalf("disarmed crash point fired: %v", *fired)
	}
}

func TestCrashPointFiresOnFirstHit(t *testing.T) {
	fired := withRecorder(t)
	if err := ArmCrashPoints("snapshot.pre-fsync"); err != nil {
		t.Fatal(err)
	}
	CrashPoint("journal.pre-fsync") // different name: must not fire
	CrashPoint("snapshot.pre-fsync")
	if want := []string{"snapshot.pre-fsync"}; !reflect.DeepEqual(*fired, want) {
		t.Fatalf("fired = %v, want %v", *fired, want)
	}
	// The real action never returns; the recorder does, and a point must
	// fire exactly once even if execution continues past it.
	CrashPoint("snapshot.pre-fsync")
	if len(*fired) != 1 {
		t.Fatalf("crash point fired %d times, want 1", len(*fired))
	}
}

func TestCrashPointCountedArm(t *testing.T) {
	fired := withRecorder(t)
	if err := ArmCrashPoints("journal.mid-replay:3"); err != nil {
		t.Fatal(err)
	}
	CrashPoint("journal.mid-replay")
	CrashPoint("journal.mid-replay")
	if len(*fired) != 0 {
		t.Fatalf("counted arm fired early: %v", *fired)
	}
	CrashPoint("journal.mid-replay")
	if want := []string{"journal.mid-replay"}; !reflect.DeepEqual(*fired, want) {
		t.Fatalf("fired = %v, want %v", *fired, want)
	}
}

func TestArmCrashPointsSpecErrors(t *testing.T) {
	defer DisarmCrashPoints()
	for _, spec := range []string{"a:0", "a:-1", "a:x", ":2"} {
		if err := ArmCrashPoints(spec); err == nil {
			t.Errorf("ArmCrashPoints(%q) accepted a bad spec", spec)
		}
	}
	// A bad spec must not leave a partial arm set active.
	if got := ArmedCrashPoints(); len(got) != 0 {
		// ArmCrashPoints builds the set before storing, so a parse error
		// leaves the previous (empty) set in place.
		t.Errorf("bad spec left points armed: %v", got)
	}
}

func TestArmCrashPointsFromEnv(t *testing.T) {
	fired := withRecorder(t)
	t.Setenv(CrashPointsEnv, "a, b:2")
	spec, err := ArmCrashPointsFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if spec != "a, b:2" {
		t.Fatalf("spec = %q", spec)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(ArmedCrashPoints(), want) {
		t.Fatalf("armed = %v, want %v", ArmedCrashPoints(), want)
	}
	CrashPoint("b")
	CrashPoint("a")
	CrashPoint("b")
	if want := []string{"a", "b"}; !reflect.DeepEqual(*fired, want) {
		t.Fatalf("fired = %v, want %v", *fired, want)
	}

	os.Unsetenv(CrashPointsEnv)
	DisarmCrashPoints()
	if spec, err := ArmCrashPointsFromEnv(); err != nil || spec != "" {
		t.Fatalf("unset env: spec=%q err=%v", spec, err)
	}
	if got := ArmedCrashPoints(); len(got) != 0 {
		t.Fatalf("unset env armed points: %v", got)
	}
}
