package faultinject

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// Crash-point registry: named process-death sites on the durability paths.
//
// A soak harness (cmd/adsoak) arms points by name before starting the
// server; when armed code reaches CrashPoint(name) it kills its own process
// with SIGKILL — no deferred cleanup, no flushes, exactly the failure an
// OOM-kill or power loss produces at that instruction. The instrumented
// sites live on the journal append path (pre-fsync), the snapshot publish
// path (pre-fsync and post-fsync-pre-rename) and the replay loop
// (mid-batch), the places where crash-recovery bugs hide.
//
// Disarmed cost is one atomic load, so production binaries keep the hooks
// compiled in; arming is opt-in via the CAAR_CRASHPOINTS environment
// variable, which adserver reads at startup.

// CrashPointsEnv names the environment variable adserver consults to arm
// crash points: a comma-separated list of "name" or "name:n" specs, where n
// is the 1-based hit count that triggers the crash (default 1).
const CrashPointsEnv = "CAAR_CRASHPOINTS"

// crashArm is one armed point: the process dies on the hitAt-th hit.
type crashArm struct {
	hitAt int64
	hits  atomic.Int64
}

var (
	// crashArmed is the fast path: false means CrashPoint is a no-op.
	crashArmed atomic.Bool
	// crashPoints maps name → arm; replaced wholesale by ArmCrashPoints.
	crashPoints atomic.Value // map[string]*crashArm
	// crashAction is what firing does; overridable for tests.
	crashAction atomic.Value // func(name string)
)

// defaultCrashAction kills the process the hard way: SIGKILL to self, so no
// defer, no atexit, no buffered write gets a chance to run — the same state
// the kernel leaves after an OOM kill.
func defaultCrashAction(name string) {
	fmt.Fprintf(os.Stderr, "faultinject: crash point %q fired, dying\n", name)
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL cannot be caught; if it somehow returned, exit with the
	// conventional killed-by-9 status.
	os.Exit(137)
}

// SetCrashAction replaces the process-killing action (tests substitute a
// recorder). Passing nil restores the default SIGKILL-self behavior.
func SetCrashAction(f func(name string)) {
	if f == nil {
		f = defaultCrashAction
	}
	crashAction.Store(f)
}

func init() {
	crashAction.Store(defaultCrashAction)
	crashPoints.Store(map[string]*crashArm{})
}

// ArmCrashPoints arms the points in spec, a comma-separated list of "name"
// or "name:n" (crash on the n-th hit, 1-based). An empty spec disarms
// everything. Arming replaces the previous arm set wholesale.
func ArmCrashPoints(spec string) error {
	pts := make(map[string]*crashArm)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(field, ":")
		hitAt := int64(1)
		if hasCount {
			n, err := strconv.ParseInt(countStr, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("faultinject: bad crash point spec %q (want name or name:n with n >= 1)", field)
			}
			hitAt = n
		}
		if name == "" {
			return fmt.Errorf("faultinject: bad crash point spec %q (empty name)", field)
		}
		pts[name] = &crashArm{hitAt: hitAt}
	}
	crashPoints.Store(pts)
	crashArmed.Store(len(pts) > 0)
	return nil
}

// ArmCrashPointsFromEnv arms crash points from the CAAR_CRASHPOINTS
// environment variable and returns the spec it read ("" when unset).
func ArmCrashPointsFromEnv() (string, error) {
	spec := os.Getenv(CrashPointsEnv)
	if spec == "" {
		return "", nil
	}
	return spec, ArmCrashPoints(spec)
}

// DisarmCrashPoints removes every armed point.
func DisarmCrashPoints() {
	crashPoints.Store(map[string]*crashArm{})
	crashArmed.Store(false)
}

// ArmedCrashPoints returns the names of currently armed points, sorted.
func ArmedCrashPoints() []string {
	pts := crashPoints.Load().(map[string]*crashArm)
	names := make([]string, 0, len(pts))
	for name := range pts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CrashPoint is the hook durability-critical code calls at a named site.
// Disarmed (the default) it is one atomic load. Armed, the hitAt-th call
// with a matching name fires the crash action — by default SIGKILL to the
// current process, which does not return.
func CrashPoint(name string) {
	if !crashArmed.Load() {
		return
	}
	arm, ok := crashPoints.Load().(map[string]*crashArm)[name]
	if !ok {
		return
	}
	if arm.hits.Add(1) == arm.hitAt {
		crashAction.Load().(func(string))(name)
	}
}
