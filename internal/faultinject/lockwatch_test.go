//go:build caarlockwatch

package faultinject

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLockWatchTripsOnHeldLock arms a tight bound, simulates a stuck
// holder, and asserts the monitor reports it with goroutine stacks.
func TestLockWatchTripsOnHeldLock(t *testing.T) {
	reports := make(chan string, 1)
	SetLockWatchHandler(func(r string) {
		select {
		case reports <- r:
		default:
		}
	})
	defer SetLockWatchHandler(nil)
	armLockWatch(50 * time.Millisecond)
	defer DisarmLockWatch()

	var mu sync.Mutex
	mu.Lock()
	unwatch := WatchLock("test.stuckMu")
	defer func() {
		unwatch()
		mu.Unlock()
	}()

	select {
	case r := <-reports:
		if !strings.Contains(r, `mutex "test.stuckMu" held for`) {
			t.Fatalf("report does not name the stuck mutex:\n%s", r)
		}
		if !strings.Contains(r, "all goroutine stacks:") || !strings.Contains(r, "goroutine ") {
			t.Fatalf("report is missing the goroutine dump:\n%s", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not trip on a lock held past the bound")
	}
}

// TestLockWatchQuietOnTimelyRelease holds a watched lock well inside the
// bound and asserts no report fires.
func TestLockWatchQuietOnTimelyRelease(t *testing.T) {
	reports := make(chan string, 1)
	SetLockWatchHandler(func(r string) {
		select {
		case reports <- r:
		default:
		}
	})
	defer SetLockWatchHandler(nil)
	armLockWatch(500 * time.Millisecond)
	defer DisarmLockWatch()

	for i := 0; i < 20; i++ {
		unwatch := WatchLock("test.quickMu")
		time.Sleep(time.Millisecond)
		unwatch()
	}
	select {
	case r := <-reports:
		t.Fatalf("watchdog tripped on timely releases:\n%s", r)
	case <-time.After(700 * time.Millisecond):
	}
}

// TestLockWatchDisarmedIsFree asserts the disarmed hook hands back a
// release func without registering anything.
func TestLockWatchDisarmedIsFree(t *testing.T) {
	DisarmLockWatch()
	unwatch := WatchLock("test.free")
	unwatch()
	lwMu.Lock()
	n := len(lwHeld)
	lwMu.Unlock()
	if n != 0 {
		t.Fatalf("disarmed WatchLock registered %d entries", n)
	}
}
