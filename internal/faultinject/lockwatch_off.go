//go:build !caarlockwatch

package faultinject

// noopUnwatch is shared by every WatchLock call in untagged builds so the
// hook allocates nothing.
var noopUnwatch = func() {}

// WatchLock is a no-op in builds without the caarlockwatch tag.
func WatchLock(name string) func() { return noopUnwatch }

// ArmLockWatchFromEnv is a no-op in builds without the caarlockwatch tag.
func ArmLockWatchFromEnv() (string, error) { return "", nil }

// DisarmLockWatch is a no-op in builds without the caarlockwatch tag.
func DisarmLockWatch() {}

// SetLockWatchHandler is a no-op in builds without the caarlockwatch tag.
func SetLockWatchHandler(func(report string)) {}
