package faultinject

import (
	"testing"
	"time"
)

func TestDelayPointDisarmedIsNoop(t *testing.T) {
	DisarmDelays()
	start := time.Now()
	DelayPoint("serve.recommend")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("disarmed DelayPoint took %v", elapsed)
	}
}

func TestDelayPointArmedSpins(t *testing.T) {
	if err := ArmDelays("serve.recommend:30ms"); err != nil {
		t.Fatal(err)
	}
	defer DisarmDelays()

	before := DelayHits()
	start := time.Now()
	DelayPoint("serve.recommend")
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Fatalf("armed DelayPoint returned after %v, want >= 30ms", elapsed)
	}
	if got := DelayHits(); got != before+1 {
		t.Fatalf("DelayHits = %d, want %d", got, before+1)
	}

	// A different name stays fast.
	start = time.Now()
	DelayPoint("other.site")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("unarmed name took %v", elapsed)
	}
}

func TestArmDelaysSpecErrors(t *testing.T) {
	defer DisarmDelays()
	for _, spec := range []string{"noduration", "name:", "name:-5ms", "name:0s", ":5ms"} {
		if err := ArmDelays(spec); err == nil {
			t.Errorf("ArmDelays(%q) accepted a bad spec", spec)
		}
	}
	// Empty spec disarms.
	if err := ArmDelays("a:1ms"); err != nil {
		t.Fatal(err)
	}
	if err := ArmDelays(""); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	DelayPoint("a")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("DelayPoint after disarm-by-empty-spec took %v", elapsed)
	}
}

func TestArmDelaysFromEnv(t *testing.T) {
	t.Setenv(DelaysEnv, "x:1ms, y:2ms")
	defer DisarmDelays()
	spec, err := ArmDelaysFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if spec == "" {
		t.Fatal("expected non-empty spec")
	}
	pts := delayPoints.Load().(map[string]time.Duration)
	if pts["x"] != time.Millisecond || pts["y"] != 2*time.Millisecond {
		t.Fatalf("parsed points = %v", pts)
	}
}
