package faultinject

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Delay-point registry: named latency faults on the serving path.
//
// Where crash points (crashpoint.go) model process death on the durability
// paths, delay points model the other production failure family — latency.
// A bench or soak harness arms a point by name with a duration; when armed
// code reaches DelayPoint(name) it burns CPU for that long before
// continuing. The delay is a busy spin, not a sleep, deliberately: a
// sleeping goroutine is invisible to a CPU profile, but the whole purpose
// of injecting latency is to verify that the SLO watchdog's anomaly-
// triggered capture bundle contains a CPU profile in which the fault site
// is attributable. With a spin, the profile shows faultinject.spinDelay on
// the serving stack — exactly what a real hot-loop regression would look
// like.
//
// Disarmed cost is one atomic load, so production binaries keep the hooks
// compiled in; arming is opt-in via the CAAR_DELAYS environment variable,
// which adserver reads at startup, or ArmDelays in-process.

// DelaysEnv names the environment variable adserver consults to arm delay
// points: a comma-separated list of "name:duration" specs, where duration
// uses Go syntax ("5ms", "1s").
const DelaysEnv = "CAAR_DELAYS"

var (
	// delaysArmed is the fast path: false means DelayPoint is a no-op.
	delaysArmed atomic.Bool
	// delayPoints maps name → spin duration; replaced wholesale by ArmDelays.
	delayPoints atomic.Value // map[string]time.Duration
	// delayHits counts fired delays for assertions and metrics.
	delayHits atomic.Uint64
)

func init() {
	delayPoints.Store(map[string]time.Duration{})
}

// ArmDelays arms the points in spec, a comma-separated list of
// "name:duration" entries. An empty spec disarms everything. Arming
// replaces the previous set wholesale.
func ArmDelays(spec string) error {
	pts := make(map[string]time.Duration)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, durStr, hasDur := strings.Cut(field, ":")
		if !hasDur || name == "" {
			return fmt.Errorf("faultinject: bad delay spec %q (want name:duration)", field)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil || d <= 0 {
			return fmt.Errorf("faultinject: bad delay spec %q (want a positive Go duration)", field)
		}
		pts[name] = d
	}
	delayPoints.Store(pts)
	delaysArmed.Store(len(pts) > 0)
	return nil
}

// ArmDelaysFromEnv arms delay points from the CAAR_DELAYS environment
// variable and returns the spec it read ("" when unset).
func ArmDelaysFromEnv() (string, error) {
	spec := os.Getenv(DelaysEnv)
	if spec == "" {
		return "", nil
	}
	return spec, ArmDelays(spec)
}

// DisarmDelays removes every armed delay point.
func DisarmDelays() {
	delayPoints.Store(map[string]time.Duration{})
	delaysArmed.Store(false)
}

// DelayHits reports how many armed delays have fired since process start.
func DelayHits() uint64 { return delayHits.Load() }

// DelayPoint is the hook latency-critical code calls at a named site.
// Disarmed (the default) it is one atomic load. Armed with a duration, it
// busy-spins for that long so the stall is attributable in a CPU profile.
func DelayPoint(name string) {
	if !delaysArmed.Load() {
		return
	}
	d, ok := delayPoints.Load().(map[string]time.Duration)[name]
	if !ok {
		return
	}
	delayHits.Add(1)
	spinDelay(d)
}

// spinSink defeats dead-code elimination of the spin loop body.
var spinSink atomic.Uint64

// spinDelay burns CPU for d. Kept as a named function (not inlined into
// DelayPoint's fast path) so profiles collected during an injected-latency
// incident show faultinject.spinDelay in the hot stack.
//
//go:noinline
func spinDelay(d time.Duration) {
	deadline := time.Now().Add(d)
	var acc uint64
	for time.Now().Before(deadline) {
		// A little arithmetic per iteration keeps the loop from being a
		// pure time.Now() benchmark and gives the profiler distinct frames.
		for i := 0; i < 1024; i++ {
			acc = acc*1664525 + 1013904223
		}
	}
	spinSink.Add(acc | 1)
}
