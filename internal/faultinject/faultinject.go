// Package faultinject supplies deterministic fault models for chaos-style
// testing of the serving path: writers that fail, stall, or tear records
// mid-write (simulating full disks, slow devices, and kill -9 during an
// append), and an http.RoundTripper that drops or delays requests
// (simulating a flaky network or a dead server).
//
// Everything here is deterministic — faults trigger on exact byte or
// request counts — so tests assert precise recovery behavior instead of
// sampling probabilities.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("faultinject: injected fault")

// FailingWriter writes through to W until Budget bytes have been accepted,
// then every subsequent Write fails with Err (ErrInjected when nil) without
// writing anything — a disk that goes read-only or fills exactly at a byte
// boundary.
type FailingWriter struct {
	W      io.Writer
	Budget int64 // bytes accepted before failing
	Err    error

	written atomic.Int64
}

// Write implements io.Writer.
func (f *FailingWriter) Write(p []byte) (int, error) {
	if f.written.Load()+int64(len(p)) > f.Budget {
		return 0, f.err()
	}
	n, err := f.W.Write(p)
	f.written.Add(int64(n))
	return n, err
}

// Written reports bytes accepted so far.
func (f *FailingWriter) Written() int64 { return f.written.Load() }

func (f *FailingWriter) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// PartialWriter writes through to W until Budget bytes have been accepted;
// the write that crosses the budget is torn — its prefix up to the budget
// is written, the rest discarded, and the short count returned with an
// error. This is the write pattern left behind by a crash (kill -9, power
// loss) mid-append.
type PartialWriter struct {
	W      io.Writer
	Budget int64
	Err    error

	written atomic.Int64
}

// Write implements io.Writer.
func (p *PartialWriter) Write(b []byte) (int, error) {
	already := p.written.Load()
	if already >= p.Budget {
		return 0, p.err()
	}
	room := p.Budget - already
	if int64(len(b)) <= room {
		n, err := p.W.Write(b)
		p.written.Add(int64(n))
		return n, err
	}
	n, err := p.W.Write(b[:room])
	p.written.Add(int64(n))
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("%w: torn write after %d bytes", p.err(), p.written.Load())
}

// Written reports bytes accepted so far.
func (p *PartialWriter) Written() int64 { return p.written.Load() }

func (p *PartialWriter) err() error {
	if p.Err != nil {
		return p.Err
	}
	return ErrInjected
}

// FailingReader reads through from R until Budget bytes have been
// delivered, then every subsequent Read fails with Err (ErrInjected when
// nil) — a disk developing a bad sector partway through a file. Reads that
// would cross the budget are shortened to land exactly on it, so the fault
// triggers at a deterministic byte offset.
type FailingReader struct {
	R      io.Reader
	Budget int64 // bytes delivered before failing
	Err    error

	read atomic.Int64
}

// Read implements io.Reader.
func (f *FailingReader) Read(p []byte) (int, error) {
	already := f.read.Load()
	if already >= f.Budget {
		return 0, f.err()
	}
	if room := f.Budget - already; int64(len(p)) > room {
		p = p[:room]
	}
	n, err := f.R.Read(p)
	f.read.Add(int64(n))
	return n, err
}

func (f *FailingReader) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// SlowWriter delays every write by Delay before passing it to W — a
// saturated or degraded disk.
type SlowWriter struct {
	W     io.Writer
	Delay time.Duration
}

// Write implements io.Writer.
func (s *SlowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.Delay)
	return s.W.Write(p)
}

// FlakyTransport is an http.RoundTripper that fails the first FailFirst
// requests (connection-level error), optionally delays the rest by Delay,
// and then delegates to Base (http.DefaultTransport when nil). Safe for
// concurrent use.
type FlakyTransport struct {
	Base      http.RoundTripper
	FailFirst int64 // number of initial requests to fail
	Err       error
	Delay     time.Duration

	attempts atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (f *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.attempts.Add(1)
	if n <= f.FailFirst {
		if f.Err != nil {
			return nil, f.Err
		}
		return nil, ErrInjected
	}
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	base := f.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// Attempts reports how many requests have passed through so far.
func (f *FlakyTransport) Attempts() int64 { return f.attempts.Load() }

// DownTransport refuses every request, like a server that is down; it
// additionally counts attempts so tests can assert a circuit breaker
// stopped issuing network calls.
type DownTransport struct {
	Err      error
	attempts atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (d *DownTransport) RoundTrip(*http.Request) (*http.Response, error) {
	d.attempts.Add(1)
	if d.Err != nil {
		return nil, d.Err
	}
	return nil, ErrInjected
}

// Attempts reports refused requests so far.
func (d *DownTransport) Attempts() int64 { return d.attempts.Load() }

// Script sequences fault windows over a shared writer: Open marks the
// writer healthy, Fail makes subsequent writes fail. It lets one test
// drive a journal through healthy → torn → recovered phases without
// re-plumbing writers.
type Script struct {
	mu      sync.Mutex
	w       io.Writer
	failing bool
	err     error
}

// NewScript wraps w in a scriptable writer, initially healthy.
func NewScript(w io.Writer) *Script { return &Script{w: w} }

// Fail makes subsequent writes return err (ErrInjected when nil).
func (s *Script) Fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failing = true
	s.err = err
}

// Heal makes subsequent writes succeed again.
func (s *Script) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failing = false
}

// Write implements io.Writer.
func (s *Script) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failing {
		if s.err != nil {
			return 0, s.err
		}
		return 0, ErrInjected
	}
	return s.w.Write(p)
}
