package feed

import (
	"fmt"
	"sync"
)

// Graph is the follower graph: Follow(a, b) means a follows b, so b's posts
// enter a's feed. Fan-out of a post by b is Followers(b).
//
// Graph is safe for concurrent use.
type Graph struct {
	mu        sync.RWMutex
	followers map[UserID][]UserID        // poster → ordered followers
	edgeSet   map[UserID]map[UserID]bool // poster → follower set (dedup)
	followees map[UserID]int             // follower → followee count
	users     map[UserID]bool
	edges     int
}

// NewGraph returns an empty follower graph.
func NewGraph() *Graph {
	return &Graph{
		followers: make(map[UserID][]UserID),
		edgeSet:   make(map[UserID]map[UserID]bool),
		followees: make(map[UserID]int),
		users:     make(map[UserID]bool),
	}
}

// AddUser registers a user with no edges. Adding an existing user is a no-op.
func (g *Graph) AddUser(u UserID) {
	g.mu.Lock()
	g.users[u] = true
	g.mu.Unlock()
}

// HasUser reports whether u is registered.
func (g *Graph) HasUser(u UserID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.users[u]
}

// Follow records that follower follows poster. Both users are registered as a
// side effect. Self-follows and duplicate edges are rejected with an error.
func (g *Graph) Follow(follower, poster UserID) error {
	if follower == poster {
		return fmt.Errorf("feed: user %d cannot follow itself", follower)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.users[follower] = true
	g.users[poster] = true
	set := g.edgeSet[poster]
	if set == nil {
		set = make(map[UserID]bool)
		g.edgeSet[poster] = set
	}
	if set[follower] {
		return fmt.Errorf("feed: %d already follows %d", follower, poster)
	}
	set[follower] = true
	g.followers[poster] = append(g.followers[poster], follower)
	g.followees[follower]++
	g.edges++
	return nil
}

// Unfollow removes a follow edge. Removing a non-existent edge is an error.
func (g *Graph) Unfollow(follower, poster UserID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	set := g.edgeSet[poster]
	if !set[follower] {
		return fmt.Errorf("feed: %d does not follow %d", follower, poster)
	}
	delete(set, follower)
	list := g.followers[poster]
	for i, f := range list {
		if f == follower {
			list[i] = list[len(list)-1]
			g.followers[poster] = list[:len(list)-1]
			break
		}
	}
	g.followees[follower]--
	g.edges--
	return nil
}

// Followers returns the users whose feeds receive poster's messages. The
// returned slice is shared; callers must not mutate it.
func (g *Graph) Followers(poster UserID) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.followers[poster]
}

// FollowerCount returns the fan-out degree of poster.
func (g *Graph) FollowerCount(poster UserID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.followers[poster])
}

// FolloweeCount returns how many users this follower follows.
func (g *Graph) FolloweeCount(follower UserID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.followees[follower]
}

// Users returns the number of registered users.
func (g *Graph) Users() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.users)
}

// Edges returns the number of follow edges.
func (g *Graph) Edges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edges
}

// MaxFanout returns the largest follower count and the user holding it
// (0, 0 for an empty graph) — a workload diagnostic for skew experiments.
func (g *Graph) MaxFanout() (UserID, int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var bestU UserID
	best := 0
	for u, fs := range g.followers {
		if len(fs) > best {
			best = len(fs)
			bestU = u
		}
	}
	return bestU, best
}
