package feed

import (
	"sync"
	"testing"
)

func TestGraphFollowBasics(t *testing.T) {
	g := NewGraph()
	if err := g.Follow(1, 2); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if err := g.Follow(3, 2); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	fs := g.Followers(2)
	if len(fs) != 2 {
		t.Fatalf("Followers = %v", fs)
	}
	if g.FollowerCount(2) != 2 || g.FollowerCount(1) != 0 {
		t.Fatal("FollowerCount wrong")
	}
	if g.FolloweeCount(1) != 1 || g.FolloweeCount(2) != 0 {
		t.Fatal("FolloweeCount wrong")
	}
	if g.Users() != 3 || g.Edges() != 2 {
		t.Fatalf("Users=%d Edges=%d", g.Users(), g.Edges())
	}
}

func TestGraphRejectsSelfAndDuplicate(t *testing.T) {
	g := NewGraph()
	if err := g.Follow(1, 1); err == nil {
		t.Error("self-follow accepted")
	}
	if err := g.Follow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Follow(1, 2); err == nil {
		t.Error("duplicate follow accepted")
	}
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1", g.Edges())
	}
}

func TestGraphUnfollow(t *testing.T) {
	g := NewGraph()
	g.Follow(1, 2)
	g.Follow(3, 2)
	if err := g.Unfollow(1, 2); err != nil {
		t.Fatalf("Unfollow: %v", err)
	}
	if err := g.Unfollow(1, 2); err == nil {
		t.Error("double unfollow accepted")
	}
	if err := g.Unfollow(9, 2); err == nil {
		t.Error("unfollow of non-edge accepted")
	}
	fs := g.Followers(2)
	if len(fs) != 1 || fs[0] != 3 {
		t.Fatalf("Followers after unfollow = %v", fs)
	}
	if g.Edges() != 1 || g.FolloweeCount(1) != 0 {
		t.Fatal("counts not updated")
	}
}

func TestGraphAddUser(t *testing.T) {
	g := NewGraph()
	g.AddUser(7)
	if !g.HasUser(7) || g.HasUser(8) {
		t.Fatal("HasUser wrong")
	}
	g.AddUser(7) // idempotent
	if g.Users() != 1 {
		t.Fatalf("Users = %d", g.Users())
	}
}

func TestGraphMaxFanout(t *testing.T) {
	g := NewGraph()
	if _, n := g.MaxFanout(); n != 0 {
		t.Fatal("empty graph fanout should be 0")
	}
	g.Follow(1, 10)
	g.Follow(2, 10)
	g.Follow(3, 10)
	g.Follow(1, 20)
	u, n := g.MaxFanout()
	if u != 10 || n != 3 {
		t.Fatalf("MaxFanout = %d,%d, want 10,3", u, n)
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := UserID(w * 1000)
			for i := UserID(1); i <= 100; i++ {
				g.Follow(base+i, base)
				g.Followers(base)
				g.FollowerCount(base)
			}
		}(w)
	}
	wg.Wait()
	if g.Edges() != 400 {
		t.Fatalf("Edges = %d, want 400", g.Edges())
	}
	for w := 0; w < 4; w++ {
		if n := g.FollowerCount(UserID(w * 1000)); n != 100 {
			t.Fatalf("worker %d fanout = %d", w, n)
		}
	}
}
