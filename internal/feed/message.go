// Package feed implements the "high-speed social news feeding" substrate:
// the follower graph along which posts fan out, and per-user sliding feed
// windows that aggregate recent messages into a time-decayed context vector.
package feed

import (
	"time"

	"caar/internal/geo"
	"caar/internal/textproc"
)

// UserID identifies a user internally. The public facade maps external
// handles to dense UserIDs.
type UserID uint32

// MessageID identifies a message.
type MessageID int64

// Message is one social post after semantic processing: the author, the
// TF-IDF term vector of the text, an optional geotag, and the post time.
type Message struct {
	ID     MessageID
	Author UserID
	Time   time.Time
	Vec    textproc.SparseVector
	Loc    geo.Point
	HasLoc bool
}
