package feed

import (
	"time"

	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// rebuildInterval bounds floating-point drift: after this many mutations the
// aggregate vector is recomputed exactly from the live entries.
const rebuildInterval = 256

// Entry is one message resident in a feed window together with the decay
// weight it carried when it was (re)referenced.
type Entry struct {
	Msg Message
	// wRef is the message's decay weight expressed at the window's reference
	// time. The weight at query time q is wRef × decay.Between(ref, q).
	wRef float64
}

// Window is a per-user sliding feed window: it keeps the most recent Cap
// messages and maintains their exponentially time-decayed aggregate term
// vector incrementally.
//
// Weights follow the pure exponential exp(−λ·(read − post)): a message
// stamped after the read time (clock skew, out-of-order delivery) weighs
// slightly more than 1 until wall time catches up. This keeps the incremental
// algebra exact; callers that need a hard cap clamp at the read site.
//
// The aggregate uses the epoch-rescaling representation (DESIGN.md §3.1):
// weights are stored relative to a moving reference time `ref`, advanced to
// each new message's timestamp; reading the context at time q applies one
// global factor decay.Between(ref, q). This makes decay O(1) per read instead
// of O(window) per read, and message arrival O(|terms|).
//
// Window is not safe for concurrent use; the engine shards windows by user.
type Window struct {
	cap    int
	decay  timeslot.Decay
	ref    time.Time
	refSet bool
	items  []Entry // FIFO: items[0] is oldest
	agg    textproc.SparseVector
	ops    int
}

// NewWindow creates a window holding at most capacity messages (minimum 1).
func NewWindow(capacity int, decay timeslot.Decay) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{
		cap:   capacity,
		decay: decay,
		items: make([]Entry, 0, capacity),
		agg:   textproc.SparseVector{},
	}
}

// Len returns the number of resident messages.
func (w *Window) Len() int { return len(w.items) }

// Cap returns the window capacity.
func (w *Window) Cap() int { return w.cap }

// Ref returns the current reference time (zero before the first push).
func (w *Window) Ref() time.Time { return w.ref }

// Push inserts a message, evicting the oldest resident message when the
// window is full. It returns the evicted entry (valid when ok is true) so the
// caller can propagate the negative score delta.
func (w *Window) Push(m Message) (evicted Entry, ok bool) {
	if len(w.items) == w.cap {
		evicted, ok = w.popOldest()
	}
	w.advanceRef(m.Time)
	// The new message's weight at ref: ref advanced to max(ref, m.Time), so
	// weight = decay of (ref − m.Time), which is 1 when the message is the
	// newest (the common case) and < 1 for out-of-order arrivals.
	wRef := w.decay.WeightAt(w.ref.Sub(m.Time))
	e := Entry{Msg: m, wRef: wRef}
	w.items = append(w.items, e)
	w.agg.AddScaled(m.Vec, wRef)
	w.maybeRebuild()
	return evicted, ok
}

// popOldest removes and returns the oldest entry, subtracting its aggregate
// contribution.
func (w *Window) popOldest() (Entry, bool) {
	if len(w.items) == 0 {
		return Entry{}, false
	}
	e := w.items[0]
	copy(w.items, w.items[1:])
	w.items = w.items[:len(w.items)-1]
	w.agg.SubScaled(e.Msg.Vec, e.wRef)
	w.maybeRebuild()
	return e, true
}

// advanceRef moves the reference time forward to t (never backward) and
// rescales the aggregate and entry weights accordingly.
func (w *Window) advanceRef(t time.Time) {
	if !w.refSet {
		w.ref = t
		w.refSet = true
		return
	}
	if !t.After(w.ref) {
		return
	}
	factor := w.decay.Between(w.ref, t)
	if factor != 1 {
		w.agg.Scale(factor)
		for i := range w.items {
			w.items[i].wRef *= factor
		}
	}
	w.ref = t
}

// maybeRebuild recomputes the aggregate exactly after enough incremental
// mutations to cap floating-point drift.
func (w *Window) maybeRebuild() {
	w.ops++
	if w.ops < rebuildInterval {
		return
	}
	w.ops = 0
	agg := make(textproc.SparseVector, len(w.agg))
	for _, e := range w.items {
		agg.AddScaled(e.Msg.Vec, e.wRef)
	}
	w.agg = agg
}

// WeightAt returns the decay weight an entry pushed at postTime would carry
// when the context is read at query time q.
func (w *Window) WeightAt(postTime, q time.Time) float64 {
	return w.decay.WeightAt(q.Sub(postTime))
}

// Context returns the decayed aggregate term vector as of time q. The result
// is a fresh copy the caller may mutate. It is NOT L2-normalized: the engine
// normalizes (or not) according to its scoring configuration.
func (w *Window) Context(q time.Time) textproc.SparseVector {
	out := w.agg.Clone()
	if w.refSet {
		out.Scale(w.decay.Between(w.ref, q))
	}
	return out
}

// ContextRef returns the internal aggregate (referenced at Ref()) without
// copying, plus the factor that converts it to query time q. Hot paths use
// this to avoid the clone; the returned vector must not be mutated.
func (w *Window) ContextRef(q time.Time) (vec textproc.SparseVector, factor float64) {
	f := 1.0
	if w.refSet {
		f = w.decay.Between(w.ref, q)
	}
	return w.agg, f
}

// Entries returns the resident entries oldest-first. The slice is shared;
// callers must not mutate it.
func (w *Window) Entries() []Entry { return w.items }

// EntryWeight returns the decay weight of entry e at query time q.
func (w *Window) EntryWeight(e Entry, q time.Time) float64 {
	if !w.refSet {
		return e.wRef
	}
	return e.wRef * w.decay.Between(w.ref, q)
}
