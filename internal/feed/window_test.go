package feed

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"caar/internal/textproc"
	"caar/internal/timeslot"
)

var t0 = time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)

func msg(id int, author UserID, at time.Time, terms map[textproc.TermID]float64) Message {
	vec := textproc.SparseVector{}
	for k, v := range terms {
		vec[k] = v
	}
	return Message{ID: MessageID(id), Author: author, Time: at, Vec: vec}
}

func TestWindowPushAndEvict(t *testing.T) {
	w := NewWindow(2, timeslot.NewDecay(0))
	if w.Cap() != 2 || w.Len() != 0 {
		t.Fatal("fresh window state wrong")
	}
	if _, ok := w.Push(msg(1, 1, t0, map[textproc.TermID]float64{1: 1})); ok {
		t.Fatal("first push should not evict")
	}
	if _, ok := w.Push(msg(2, 1, t0.Add(time.Second), map[textproc.TermID]float64{2: 1})); ok {
		t.Fatal("second push should not evict")
	}
	ev, ok := w.Push(msg(3, 1, t0.Add(2*time.Second), map[textproc.TermID]float64{3: 1}))
	if !ok || ev.Msg.ID != 1 {
		t.Fatalf("third push evicted %v, want msg 1", ev.Msg.ID)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	ctx := w.Context(t0.Add(2 * time.Second))
	if _, has := ctx[1]; has {
		t.Fatal("evicted message's terms still in context")
	}
	if ctx[2] != 1 || ctx[3] != 1 {
		t.Fatalf("context = %v", ctx)
	}
}

func TestWindowMinCapacity(t *testing.T) {
	w := NewWindow(0, timeslot.NewDecay(0))
	if w.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1 (clamped)", w.Cap())
	}
}

func TestWindowDecayedContext(t *testing.T) {
	hl := time.Hour
	w := NewWindow(10, timeslot.NewDecay(hl))
	w.Push(msg(1, 1, t0, map[textproc.TermID]float64{1: 1}))
	w.Push(msg(2, 1, t0.Add(hl), map[textproc.TermID]float64{2: 1}))
	// At t0+1h: msg1 is one half-life old (0.5), msg2 fresh (1.0).
	ctx := w.Context(t0.Add(hl))
	if math.Abs(ctx[1]-0.5) > 1e-9 || math.Abs(ctx[2]-1) > 1e-9 {
		t.Fatalf("context at t0+1h = %v", ctx)
	}
	// One more half-life later everything halves again.
	ctx = w.Context(t0.Add(2 * hl))
	if math.Abs(ctx[1]-0.25) > 1e-9 || math.Abs(ctx[2]-0.5) > 1e-9 {
		t.Fatalf("context at t0+2h = %v", ctx)
	}
}

func TestWindowOutOfOrderArrival(t *testing.T) {
	hl := time.Hour
	w := NewWindow(10, timeslot.NewDecay(hl))
	w.Push(msg(1, 1, t0.Add(hl), map[textproc.TermID]float64{1: 1}))
	// Late arrival: posted at t0, delivered after msg1. Its weight must
	// reflect its true age, not its arrival order.
	w.Push(msg(2, 1, t0, map[textproc.TermID]float64{2: 1}))
	ctx := w.Context(t0.Add(hl))
	if math.Abs(ctx[1]-1) > 1e-9 {
		t.Fatalf("fresh msg weight = %v, want 1", ctx[1])
	}
	if math.Abs(ctx[2]-0.5) > 1e-9 {
		t.Fatalf("late msg weight = %v, want 0.5", ctx[2])
	}
}

func TestWindowContextRefConsistent(t *testing.T) {
	w := NewWindow(5, timeslot.NewDecay(30*time.Minute))
	w.Push(msg(1, 1, t0, map[textproc.TermID]float64{1: 0.6, 2: 0.8}))
	w.Push(msg(2, 1, t0.Add(10*time.Minute), map[textproc.TermID]float64{2: 1}))
	q := t0.Add(45 * time.Minute)
	direct := w.Context(q)
	raw, factor := w.ContextRef(q)
	for id, want := range direct {
		if got := raw[id] * factor; math.Abs(got-want) > 1e-9 {
			t.Fatalf("term %d: ContextRef gives %v, Context gives %v", id, got, want)
		}
	}
}

func TestWindowEntryWeight(t *testing.T) {
	hl := time.Hour
	w := NewWindow(5, timeslot.NewDecay(hl))
	w.Push(msg(1, 1, t0, map[textproc.TermID]float64{1: 1}))
	e := w.Entries()[0]
	if got := w.EntryWeight(e, t0.Add(hl)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("EntryWeight = %v, want 0.5", got)
	}
}

// TestWindowAggregateMatchesDirectSum is the core invariant: the incremental
// epoch-rescaled aggregate must equal the direct sum over resident messages
// at all times, across pushes, evictions, decays and out-of-order arrivals.
func TestWindowAggregateMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	decay := timeslot.NewDecay(20 * time.Minute)
	w := NewWindow(8, decay)
	now := t0
	for i := 0; i < 600; i++ {
		// mostly forward time, occasionally out-of-order
		jitter := time.Duration(rng.Intn(120)-10) * time.Second
		now = now.Add(time.Duration(rng.Intn(60)) * time.Second)
		postAt := now.Add(jitter)
		terms := map[textproc.TermID]float64{}
		for k := 0; k < 1+rng.Intn(4); k++ {
			terms[textproc.TermID(rng.Intn(30))] = rng.Float64()
		}
		w.Push(msg(i, 1, postAt, terms))

		q := now.Add(time.Duration(rng.Intn(300)) * time.Second)
		got := w.Context(q)
		want := textproc.SparseVector{}
		for _, e := range w.Entries() {
			// Between is the pure (unclamped) exponential the window
			// implements; content stamped after q weighs slightly > 1.
			want.AddScaled(e.Msg.Vec, decay.Between(e.Msg.Time, q))
		}
		for id, x := range want {
			if math.Abs(got[id]-x) > 1e-6 {
				t.Fatalf("step %d term %d: incremental %v, direct %v", i, id, got[id], x)
			}
		}
		if len(got) > len(want) {
			for id, x := range got {
				if _, ok := want[id]; !ok && math.Abs(x) > 1e-6 {
					t.Fatalf("step %d: stale term %d weight %v", i, id, x)
				}
			}
		}
	}
}

func TestWindowRebuildCapsDrift(t *testing.T) {
	// Push far more than rebuildInterval messages through a tiny window and
	// verify the aggregate stays exact.
	decay := timeslot.NewDecay(time.Minute)
	w := NewWindow(3, decay)
	now := t0
	for i := 0; i < 3*rebuildInterval; i++ {
		now = now.Add(time.Second)
		w.Push(msg(i, 1, now, map[textproc.TermID]float64{textproc.TermID(i % 5): 0.37}))
	}
	got := w.Context(now)
	want := textproc.SparseVector{}
	for _, e := range w.Entries() {
		want.AddScaled(e.Msg.Vec, decay.WeightAt(now.Sub(e.Msg.Time)))
	}
	for id, x := range want {
		if math.Abs(got[id]-x) > 1e-9 {
			t.Fatalf("term %d drifted: %v vs %v", id, got[id], x)
		}
	}
}
