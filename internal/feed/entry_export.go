package feed

// RefWeight returns the entry's decay weight expressed at the reference time
// of the window it was evicted from (the CAP engine converts eviction
// contributions between reference spaces with it).
func (e Entry) RefWeight() float64 { return e.wRef }
