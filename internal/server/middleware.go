package server

import (
	"encoding/json"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// Resilience middleware for the serving path. The handler chain built by
// Handler() is, outermost first:
//
//	panic recovery → admission control (load shedding) → per-request
//	deadline → request-body size limit → mux
//
// Each layer is independently configurable via Options passed to New; the
// zero value of every knob disables that layer (except the body limit,
// which defaults to 1 MiB, and panic recovery, which is always on).

// DefaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 1 << 20

// Option configures a Server.
type Option func(*Server)

// WithMaxBodyBytes caps the request body size; oversized bodies yield 413.
// n < 0 disables the cap.
func WithMaxBodyBytes(n int64) Option { return func(s *Server) { s.maxBody = n } }

// WithRequestTimeout bounds each request's handling time; requests that
// exceed it receive 503 and their context is canceled.
func WithRequestTimeout(d time.Duration) Option { return func(s *Server) { s.reqTimeout = d } }

// WithMaxInFlight admits at most n concurrent requests; beyond that the
// server sheds load with 429 + Retry-After instead of queueing without
// bound.
func WithMaxInFlight(n int) Option { return func(s *Server) { s.maxInFlight = n } }

// WithRetryAfter sets the Retry-After hint attached to shed (429)
// responses. Default 1s.
func WithRetryAfter(d time.Duration) Option { return func(s *Server) { s.retryAfter = d } }

// WithIngest routes posts and check-ins through the batched asynchronous
// ingest pipeline: the handler blocks until the write's group commit is
// durable, and a full ingest ring sheds with 429 + Retry-After. All other
// mutations stay synchronous.
func WithIngest(q IngestQueue) Option { return func(s *Server) { s.ingest = q } }

// WithLogger routes panic reports and shed notices to l instead of the
// process-wide default logger.
func WithLogger(l *log.Logger) Option { return func(s *Server) { s.logger = l } }

// Health is the server's self-reported state, served at /v1/healthz.
// /v1/healthz is a liveness probe: it answers 200 as long as the process
// serves, even while Status is "degraded" — restart decisions belong to the
// operator, not the load balancer. The readiness probe at /v1/readyz turns
// the same degradation into a 503 (see obs.go).
type Health struct {
	Status   string   `json:"status"` // "ok" or "degraded"
	InFlight int64    `json:"in_flight"`
	Shed     uint64   `json:"shed_total"`
	Panics   uint64   `json:"panics_total"`
	Problems []string `json:"problems,omitempty"`
}

// Health returns a point-in-time view of the middleware counters and any
// degraded-state reasons the engine reports.
func (s *Server) Health() Health {
	h := Health{
		Status:   "ok",
		InFlight: s.inFlight.Load(),
		Shed:     s.shed.Load(),
		Panics:   s.panics.Load(),
	}
	if probs := s.healthProblems(); len(probs) > 0 {
		h.Status = "degraded"
		h.Problems = probs
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ok(w, s.Health())
}

// logf writes to the configured logger, falling back to the default.
func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// withRecovery converts handler panics into 500 responses with a logged
// stack trace, so one bad request can never take the process down.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					panic(p) // deliberate connection abort; let net/http handle it
				}
				s.panics.Add(1)
				s.logf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				//caarlint:allow errstatus the recovery middleware is the one owner of 500
				httpError(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withRecoveryGate answers 503 + Retry-After on API paths while journal
// replay is still running, so a freshly restarted server can open its
// listener immediately (letting probes watch recovery progress on
// /v1/readyz) without serving or mutating state that is mid-replay.
// Operator paths stay reachable throughout. The gate evaporates to the
// inner handler once recovery completes; servers without a recovery
// progress tracker skip it entirely.
func (s *Server) withRecoveryGate(next http.Handler) http.Handler {
	if s.recovery == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.recovery.Done() && !isOperatorPath(r.URL.Path) {
			w.Header().Set("Retry-After", "1")
			msg := "server recovering"
			if probs := s.recovery.Problems(); len(probs) > 0 {
				msg = "server recovering: " + probs[0]
			}
			httpError(w, http.StatusServiceUnavailable, msg)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withAdmission sheds load with 429 + Retry-After once maxInFlight requests
// are being served, keeping latency of admitted requests bounded under
// overload. Health and observability endpoints are exempt so operators can
// observe a saturated server.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	if s.maxInFlight <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOperatorPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if s.inFlight.Add(1) > int64(s.maxInFlight) {
			s.inFlight.Add(-1)
			s.shed.Add(1)
			retry := s.retryAfter
			if retry <= 0 {
				retry = time.Second
			}
			w.Header().Set("Retry-After", strconv.FormatInt(int64(math.Ceil(retry.Seconds())), 10))
			httpError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			return
		}
		defer s.inFlight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds each request's total handling time using
// http.TimeoutHandler: the handler runs with a context that expires at the
// deadline and the client receives 503 if it is exceeded. TimeoutHandler
// writes its timeout body with no Content-Type (it would be sniffed as
// text/html), so the response writer is wrapped to default the header to
// JSON, keeping the 503 consistent with every other error response.
// Operator paths bypass the deadline: a forced capture or a
// /debug/pprof/profile collection runs for seconds by design, and cutting
// it off would break the tools reached for exactly when the server is slow.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.reqTimeout <= 0 {
		return next
	}
	body, _ := json.Marshal(errorBody{Error: "request deadline exceeded"})
	th := http.TimeoutHandler(next, s.reqTimeout, string(body))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isOperatorPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		th.ServeHTTP(jsonByDefault{w}, r)
	})
}

// jsonByDefault sets Content-Type to application/json at WriteHeader time
// unless an inner handler already chose one. TimeoutHandler copies the
// inner handler's headers before WriteHeader on the success path, so this
// only kicks in for the timeout response it writes itself.
type jsonByDefault struct{ http.ResponseWriter }

func (w jsonByDefault) WriteHeader(code int) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.ResponseWriter.WriteHeader(code)
}

// withBodyLimit caps request body size; the JSON decoder surfaces the
// overflow as *http.MaxBytesError, mapped to 413 by decodeBody.
func (s *Server) withBodyLimit(next http.Handler) http.Handler {
	if s.maxBody < 0 {
		return next
	}
	limit := s.maxBody
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}
