package server

import (
	"net/url"
	"strings"
	"testing"
)

// FuzzSanitizeRequestID checks the request-ID laundering invariants on
// hostile input: the result is bounded, contains only graphic ASCII (no
// header or log injection), and sanitizing is idempotent.
func FuzzSanitizeRequestID(f *testing.F) {
	f.Add("req-1234")
	f.Add("evil\r\nSet-Cookie: x=1")
	f.Add("\x00\x01\x02")
	f.Add(strings.Repeat("a", 500))
	f.Add("üñïçødé-id")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		got := sanitizeRequestID(raw)
		if len(got) > maxRequestIDLen {
			t.Fatalf("sanitized ID longer than cap: %d > %d", len(got), maxRequestIDLen)
		}
		for i := 0; i < len(got); i++ {
			if got[i] <= 0x20 || got[i] >= 0x7f {
				t.Fatalf("non-graphic byte %#x survived sanitization in %q", got[i], got)
			}
		}
		if again := sanitizeRequestID(got); again != got {
			t.Fatalf("not idempotent: %q -> %q", got, again)
		}
	})
}

// FuzzParsePolicy feeds arbitrary query strings to the serving-policy
// parser: it must never panic, and whenever it accepts input the resulting
// policy must honor its documented bounds (positive cap and window,
// non-negative per-campaign limit).
func FuzzParsePolicy(f *testing.F) {
	f.Add("freq_cap=3&freq_window=1h")
	f.Add("freq_cap=-1")
	f.Add("freq_window=not-a-duration")
	f.Add("max_per_campaign=2&freq_cap=999999999999999999999")
	f.Add("freq_window=-5s&freq_cap=0")
	f.Add("")
	f.Fuzz(func(t *testing.T, rawQuery string) {
		q, err := url.ParseQuery(rawQuery)
		if err != nil {
			t.Skip()
		}
		p, use, perr := parsePolicy(q)
		if perr != nil {
			if use {
				t.Fatalf("parsePolicy returned use=true with error %v", perr)
			}
			return
		}
		hasAny := q.Get("freq_cap") != "" || q.Get("freq_window") != "" || q.Get("max_per_campaign") != ""
		if use != hasAny {
			t.Fatalf("use=%v but policy params present=%v (query %q)", use, hasAny, rawQuery)
		}
		if q.Get("freq_cap") != "" && p.FrequencyCap < 1 {
			t.Fatalf("accepted freq_cap below 1: %+v", p)
		}
		if q.Get("freq_window") != "" && p.FrequencyWindow <= 0 {
			t.Fatalf("accepted non-positive freq_window: %+v", p)
		}
		if q.Get("max_per_campaign") != "" && p.MaxPerCampaign < 1 {
			t.Fatalf("accepted max_per_campaign below 1: %+v", p)
		}
	})
}
