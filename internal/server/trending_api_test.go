package server

import (
	"net/http"
	"testing"
	"time"
)

func TestTrendingEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	do(t, ts, "POST", "/v1/users", map[string]any{"handle": "alice"})
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		do(t, ts, "POST", "/v1/posts", map[string]any{
			"author": "alice", "text": "espresso tasting downtown",
			"at": at.Add(time.Duration(i) * time.Minute).Format(time.RFC3339),
		})
	}

	resp, body := do(t, ts, "GET", "/v1/trending?slot=morning&k=2", nil)
	expectStatus(t, resp, http.StatusOK, body)
	terms, okCast := body["terms"].([]any)
	if !okCast || len(terms) != 2 {
		t.Fatalf("terms = %v", body)
	}
	first := terms[0].(map[string]any)
	if first["count"].(float64) != 10 {
		t.Fatalf("top term = %v", first)
	}

	// Night slot is empty.
	resp, body = do(t, ts, "GET", "/v1/trending?slot=night&k=5", nil)
	expectStatus(t, resp, http.StatusOK, body)
	if terms, _ := body["terms"].([]any); len(terms) != 0 {
		t.Fatalf("night terms = %v", body)
	}

	// Validation.
	resp, body = do(t, ts, "GET", "/v1/trending?slot=brunch", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)
	resp, body = do(t, ts, "GET", "/v1/trending?k=0", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)
	resp, body = do(t, ts, "POST", "/v1/trending", map[string]any{})
	expectStatus(t, resp, http.StatusMethodNotAllowed, body)
}
