// Package server exposes the recommender engine over HTTP/JSON — the
// end-to-end system binary (cmd/adserver) and the T3 experiment drive this
// layer.
//
// Endpoints:
//
//	POST   /v1/users            {"handle": "alice"}
//	POST   /v1/follow           {"follower": "alice", "followee": "bob"}
//	DELETE /v1/follow           {"follower": "alice", "followee": "bob"}
//	POST   /v1/checkins         {"user": "alice", "lat": 1.2, "lng": 3.4, "at": "RFC3339"?}
//	POST   /v1/posts            {"author": "bob", "text": "...", "at": "RFC3339"?}
//	POST   /v1/campaigns        {"name": "...", "budget": 10, "start": "...", "end": "..."}
//	POST   /v1/ads              {"id": "...", "text": "...", "bid": 0.4, ...}
//	DELETE /v1/ads/{id}
//	GET    /v1/recommendations?user=alice&k=5&at=RFC3339
//	POST   /v1/impressions      {"ad": "...", "user": "..."?, "at": "RFC3339"?}
//	GET    /v1/trending?slot=morning&k=10
//	GET    /v1/hot?dim=posters&k=10&window=1m  (heavy-hitter telemetry; view=partition for shard skew)
//	GET    /v1/stats
//	GET    /v1/traces?n=50      (captured request traces, newest first)
//	GET    /v1/traces/{id}      (one full trace with score decomposition)
//
// GET /v1/recommendations also accepts serving-policy parameters —
// freq_cap + freq_window (per-user frequency capping) and max_per_campaign
// (slate diversity) — plus explain=1, which inlines the request's flight
// record (per-stage spans, per-ad score decomposition, policy actions) in
// the response.
//
// Timestamps default to the server's current time when omitted.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	caar "caar"
	"caar/ingest"
	"caar/journal"
	"caar/obs"
	"caar/obs/capture"
	"caar/obs/slo"
	"caar/obs/trace"
)

// API is the engine surface the server exposes. *caar.Engine implements it
// directly; *journal.Logged implements it with write-ahead logging.
type API interface {
	AddUser(handle string) error
	Follow(follower, followee string) error
	Unfollow(follower, followee string) error
	CheckIn(user string, lat, lng float64, at time.Time) error
	Post(author, text string, at time.Time) error
	AddCampaign(name string, budget float64, start, end time.Time) error
	AddAd(ad caar.Ad) error
	RemoveAd(id string) error
	Recommend(user string, k int, at time.Time) ([]caar.Recommendation, error)
	ServeImpression(adID string, at time.Time) (bool, error)
	Trending(slot caar.Slot, k int) ([]caar.TrendingTerm, error)
	Stats() caar.Stats
}

// IngestQueue is the asynchronous write path for posts and check-ins
// (*ingest.Pipeline implements it). When attached via WithIngest, the posts
// and check-ins handlers submit through it — blocking until the write's
// group commit is durable — instead of calling the synchronous engine path;
// ingest.ErrQueueFull surfaces as 429 + Retry-After. Control-plane ops
// (users, follows, campaigns, ads) always stay on the synchronous path.
type IngestQueue interface {
	SubmitPost(author, text string, at time.Time) error
	SubmitCheckIn(user string, lat, lng float64, at time.Time) error
}

// PolicyAPI is implemented by engines that additionally support serving
// policies and per-user impression accounting (*caar.Engine does). When the
// wrapped API lacks it (e.g. a journaled wrapper that only exposes the
// base), the policy query parameters are rejected.
type PolicyAPI interface {
	RecommendWithPolicy(user string, k int, at time.Time, policy caar.ServingPolicy) ([]caar.Recommendation, error)
	RecordImpressionTo(user, adID string, at time.Time) (bool, error)
}

// Server wraps an engine with an HTTP API.
type Server struct {
	eng API
	mux *http.ServeMux
	now func() time.Time

	// resilience knobs (see middleware.go).
	maxBody     int64
	reqTimeout  time.Duration
	maxInFlight int
	retryAfter  time.Duration
	logger      *log.Logger

	inFlight atomic.Int64
	shed     atomic.Uint64
	panics   atomic.Uint64

	// observability (see obs.go). obsInFlight counts every request in the
	// chain, unlike inFlight which belongs to admission control (and stays 0
	// when admission is disabled).
	metrics     *obs.Registry
	sm          *serverMetrics
	accessLog   *slog.Logger
	slowReq     time.Duration
	start       time.Time
	obsInFlight atomic.Int64

	// recovery, when set, gates API traffic until journal replay finishes
	// and feeds replay progress into the readiness probe (see obs.go).
	recovery *journal.RecoveryProgress

	// ingest, when set, carries posts and check-ins through the batched
	// asynchronous write path (see IngestQueue).
	ingest IngestQueue

	// SLO tracking (see slo.go) and the anomaly flight recorder (see
	// capture.go). debugPprof mounts net/http/pprof on the main mux.
	sloCfg     slo.Config
	sloObjs    []slo.Objective
	sloTracker *slo.Tracker
	capture    *capture.Recorder
	debugPprof bool
}

// New creates a server over an engine (or any API implementation). With no
// options the server still recovers from handler panics and caps request
// bodies at DefaultMaxBodyBytes; deadlines and admission control are off.
func New(eng API, opts ...Option) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), now: time.Now, start: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.sm = newServerMetrics(s)
	s.initSLO()
	s.routes()
	if s.capture != nil {
		s.wireCaptureSources()
	}
	return s
}

// Handler returns the HTTP handler wrapped in the middleware chain,
// outermost first: observability (request ID, metrics, access log), panic
// recovery, recovery gate (503 while journal replay runs), admission
// control, per-request deadline, body limit.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	h = s.withBodyLimit(h)
	h = s.withDeadline(h)
	h = s.withAdmission(h)
	h = s.withRecoveryGate(h)
	h = s.withRecovery(h)
	h = s.withObservability(h)
	return h
}

func (s *Server) routes() {
	s.mux.HandleFunc("/v1/users", s.post(s.handleAddUser))
	s.mux.HandleFunc("/v1/follow", s.handleFollow)
	s.mux.HandleFunc("/v1/checkins", s.post(s.handleCheckIn))
	s.mux.HandleFunc("/v1/posts", s.post(s.handlePost))
	s.mux.HandleFunc("/v1/campaigns", s.post(s.handleAddCampaign))
	s.mux.HandleFunc("/v1/ads", s.post(s.handleAddAd))
	s.mux.HandleFunc("/v1/ads/", s.handleRemoveAd)
	s.mux.HandleFunc("/v1/recommendations", s.handleRecommend)
	s.mux.HandleFunc("/v1/impressions", s.post(s.handleImpression))
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/invariants", s.handleInvariants)
	s.mux.HandleFunc("/v1/trending", s.handleTrending)
	s.mux.HandleFunc("/v1/hot", s.handleHot)
	s.mux.HandleFunc("/v1/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/readyz", s.handleReady)
	s.mux.Handle("/v1/metrics", s.metrics.Handler())
	s.mux.HandleFunc("/v1/statusz", s.handleStatusz)
	s.mux.HandleFunc("/v1/traces", s.handleTraces)
	s.mux.HandleFunc("/v1/traces/", s.handleTraces)
	s.mux.HandleFunc("/v1/slo", s.handleSLO)
	s.mux.HandleFunc("/v1/capturez", s.handleCapturez)
	s.mux.HandleFunc("/v1/capturez/", s.handleCapturez)
	if s.debugPprof {
		s.mountDebugPprof()
	}
}

// post wraps a handler with a method check.
func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		h(w, r)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// fail maps engine errors to HTTP status codes: unknown references are 404,
// duplicates 409, and everything else — validation and configuration
// failures — 400. Nothing the engine returns maps to a 500; those are
// reserved for panics caught by the recovery middleware.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, journal.ErrDurability):
		// Applied in memory but not persisted: an infrastructure failure,
		// not a client mistake.
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, caar.ErrUnknownUser), errors.Is(err, caar.ErrUnknownAd),
		errors.Is(err, caar.ErrUnknownCampaign):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, caar.ErrDuplicate):
		httpError(w, http.StatusConflict, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

func ok(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	json.NewEncoder(w).Encode(body)
}

func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// decodeBody decodes the request body into `into`, writing the appropriate
// error response (413 for an oversized body, 400 otherwise) and returning
// false on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := decode(r, into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	return true
}

// at parses an optional RFC3339 timestamp, defaulting to now.
func (s *Server) at(raw string) (time.Time, error) {
	if raw == "" {
		return s.now(), nil
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		return time.Time{}, fmt.Errorf("invalid timestamp %q: %w", raw, err)
	}
	return t, nil
}

func (s *Server) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Handle string `json:"handle"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.eng.AddUser(req.Handle); err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Follower string `json:"follower"`
		Followee string `json:"followee"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	var err error
	switch r.Method {
	case http.MethodPost:
		err = s.eng.Follow(req.Follower, req.Followee)
	case http.MethodDelete:
		err = s.eng.Unfollow(req.Follower, req.Followee)
	default:
		httpError(w, http.StatusMethodNotAllowed, "POST or DELETE required")
		return
	}
	if err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

func (s *Server) handleCheckIn(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User string  `json:"user"`
		Lat  float64 `json:"lat"`
		Lng  float64 `json:"lng"`
		At   string  `json:"at"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	at, err := s.at(req.At)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.ingest != nil {
		s.finishWrite(w, s.ingest.SubmitCheckIn(req.User, req.Lat, req.Lng, at))
		return
	}
	if err := s.eng.CheckIn(req.User, req.Lat, req.Lng, at); err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

// finishWrite completes an ingest-path write: a full ring is backpressure
// (429 + Retry-After, same shape as admission control), every other error
// follows the engine error→status table.
func (s *Server) finishWrite(w http.ResponseWriter, err error) {
	if err == nil {
		ok(w, nil)
		return
	}
	if errors.Is(err, ingest.ErrQueueFull) {
		retry := s.retryAfter
		if retry <= 0 {
			retry = time.Second
		}
		w.Header().Set("Retry-After", strconv.FormatInt(int64(math.Ceil(retry.Seconds())), 10))
		httpError(w, http.StatusTooManyRequests, "ingest queue full, retry later")
		return
	}
	fail(w, err)
}

func (s *Server) handlePost(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Author string `json:"author"`
		Text   string `json:"text"`
		At     string `json:"at"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	at, err := s.at(req.At)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.ingest != nil {
		s.finishWrite(w, s.ingest.SubmitPost(req.Author, req.Text, at))
		return
	}
	if err := s.eng.Post(req.Author, req.Text, at); err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

func (s *Server) handleAddCampaign(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name   string  `json:"name"`
		Budget float64 `json:"budget"`
		Start  string  `json:"start"`
		End    string  `json:"end"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	start, err := time.Parse(time.RFC3339, req.Start)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid start: "+err.Error())
		return
	}
	end, err := time.Parse(time.RFC3339, req.End)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid end: "+err.Error())
		return
	}
	if err := s.eng.AddCampaign(req.Name, req.Budget, start, end); err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

type adRequest struct {
	ID       string   `json:"id"`
	Text     string   `json:"text"`
	Campaign string   `json:"campaign,omitempty"`
	Bid      float64  `json:"bid"`
	Lat      *float64 `json:"lat,omitempty"`
	Lng      *float64 `json:"lng,omitempty"`
	RadiusKm *float64 `json:"radius_km,omitempty"`
	Slots    []string `json:"slots,omitempty"`
}

func (s *Server) handleAddAd(w http.ResponseWriter, r *http.Request) {
	var req adRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ad := caar.Ad{
		ID:       req.ID,
		Text:     req.Text,
		Campaign: req.Campaign,
		Bid:      req.Bid,
	}
	if req.Lat != nil || req.Lng != nil || req.RadiusKm != nil {
		if req.Lat == nil || req.Lng == nil || req.RadiusKm == nil {
			httpError(w, http.StatusBadRequest, "geo targeting needs lat, lng and radius_km together")
			return
		}
		ad.Target = &caar.Target{Lat: *req.Lat, Lng: *req.Lng, RadiusKm: *req.RadiusKm}
	}
	for _, sl := range req.Slots {
		ad.Slots = append(ad.Slots, caar.Slot(sl))
	}
	if err := s.eng.AddAd(ad); err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

func (s *Server) handleRemoveAd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "DELETE required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/ads/")
	if id == "" {
		httpError(w, http.StatusBadRequest, "missing ad id")
		return
	}
	if err := s.eng.RemoveAd(id); err != nil {
		fail(w, err)
		return
	}
	ok(w, nil)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	user := q.Get("user")
	k := 5
	if raw := q.Get("k"); raw != "" {
		var err error
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
	}
	at, err := s.at(q.Get("at"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	policy, usePolicy, err := parsePolicy(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	explain := false
	if raw := q.Get("explain"); raw != "" {
		explain = raw == "1" || raw == "true"
	}

	// A trace-capable engine serves every recommend through the traced path
	// so the request ID flows into the flight recorder; ?explain=1 inlines
	// the captured trace (spans, score decomposition, policy actions) in the
	// response.
	ta, hasTrace := s.eng.(TraceAPI)
	if explain && !hasTrace {
		httpError(w, http.StatusBadRequest, "explain not supported by this deployment")
		return
	}
	var (
		recs []caar.Recommendation
		tr   *trace.Trace
	)
	switch {
	case hasTrace:
		recs, tr, err = ta.RecommendTraced(user, k, at, policy,
			caar.TraceRequest{ID: RequestID(r.Context()), Explain: explain})
	case usePolicy:
		pa, okCast := s.eng.(PolicyAPI)
		if !okCast {
			httpError(w, http.StatusBadRequest, "serving-policy parameters not supported by this deployment")
			return
		}
		recs, err = pa.RecommendWithPolicy(user, k, at, policy)
	default:
		recs, err = s.eng.Recommend(user, k, at)
	}
	if err != nil {
		fail(w, err)
		return
	}
	resp := map[string]any{"user": user, "recommendations": recs}
	if explain && tr != nil {
		resp["explain"] = tr
	}
	ok(w, resp)
}

// parsePolicy reads the optional serving-policy query parameters:
// freq_cap (int), freq_window (Go duration), max_per_campaign (int).
func parsePolicy(q map[string][]string) (caar.ServingPolicy, bool, error) {
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	var p caar.ServingPolicy
	any := false
	if raw := get("freq_cap"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, false, fmt.Errorf("freq_cap must be a positive integer")
		}
		p.FrequencyCap = n
		any = true
	}
	if raw := get("freq_window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			return p, false, fmt.Errorf("freq_window must be a positive duration like 1h")
		}
		p.FrequencyWindow = d
		any = true
	}
	if (p.FrequencyCap > 0) != (p.FrequencyWindow > 0) {
		return p, false, fmt.Errorf("freq_cap and freq_window must be given together")
	}
	if raw := get("max_per_campaign"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, false, fmt.Errorf("max_per_campaign must be a positive integer")
		}
		p.MaxPerCampaign = n
		any = true
	}
	return p, any, nil
}

func (s *Server) handleImpression(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ad   string `json:"ad"`
		User string `json:"user"` // optional: enables frequency capping
		At   string `json:"at"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	at, err := s.at(req.At)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var served bool
	if req.User != "" {
		pa, okCast := s.eng.(PolicyAPI)
		if !okCast {
			httpError(w, http.StatusBadRequest, "per-user impressions not supported by this deployment")
			return
		}
		served, err = pa.RecordImpressionTo(req.User, req.Ad, at)
	} else {
		served, err = s.eng.ServeImpression(req.Ad, at)
	}
	if err != nil {
		fail(w, err)
		return
	}
	ok(w, map[string]bool{"served": served})
}

func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	slot := caar.Slot(q.Get("slot"))
	if slot == "" {
		slot = caar.SlotOf(s.now())
	}
	k := 10
	if raw := q.Get("k"); raw != "" {
		var err error
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
	}
	terms, err := s.eng.Trending(slot, k)
	if err != nil {
		fail(w, err)
		return
	}
	ok(w, map[string]any{"slot": string(slot), "terms": terms})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ok(w, s.eng.Stats())
}

// InvariantAPI is implemented by engines that export the machine-checkable
// invariant report (*caar.Engine does; *journal.Logged promotes it through
// its embedded engine). The soak harness reads it after every crash cycle.
type InvariantAPI interface {
	Invariants() caar.InvariantReport
}

func (s *Server) handleInvariants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ia, okCast := s.eng.(InvariantAPI)
	if !okCast {
		httpError(w, http.StatusNotFound, "invariant export not supported by this deployment")
		return
	}
	ok(w, ia.Invariants())
}
