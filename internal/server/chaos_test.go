package server

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	caar "caar"
	"caar/client"
	"caar/internal/faultinject"
	"caar/journal"
	"caar/metrics"
)

// Chaos-style integration tests: the full serving path (engine → journal →
// HTTP server → Go client) is driven through the fault-injection harness
// and must come out the other side consistent.

// TestChaosPanicMidRequest: scenario (1) of the resilience acceptance — a
// handler panic yields one failed request, the process keeps serving, and
// the same client continues without manual intervention.
func TestChaosPanicMidRequest(t *testing.T) {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	srv := New(panicAPI{eng}, WithLogger(log.New(io.Discard, "", 0)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl, err := client.New(ts.URL,
		client.WithRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The poisoned request fails with a 500, not a hung or dropped
	// connection.
	err = cl.Post(ctx, "alice", "trigger", time.Now())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != 500 {
		t.Fatalf("poisoned request: %v, want APIError 500", err)
	}

	// The same client keeps working against the same server.
	if err := cl.AddUser(ctx, "bob"); err != nil {
		t.Fatalf("server did not survive the panic: %v", err)
	}
	if _, err := cl.Recommend(ctx, "alice", 3, time.Now()); err != nil {
		t.Fatalf("recommend after panic: %v", err)
	}
	if got := srv.Health().Panics; got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

// TestChaosCrashMidAppendThenRecover: scenario (2) — the journal device
// dies mid-record (the torn-write pattern of kill -9), the server is
// replaced, and a restart with journal.Recover loses nothing that was
// acknowledged before the tear.
func TestChaosCrashMidAppendThenRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}

	// The disk accepts ~5 records then tears the next one mid-write.
	pw := &faultinject.PartialWriter{W: f, Budget: 340}
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	logged := journal.NewLogged(eng, journal.NewWriter(pw))
	ts := httptest.NewServer(New(logged).Handler())

	cl, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Drive mutations until the torn write surfaces. Every acknowledged
	// call is durable in the journal prefix before the tear.
	type op func() error
	ops := []op{
		func() error { return cl.AddUser(ctx, "alice") },
		func() error { return cl.AddUser(ctx, "bob") },
		func() error { return cl.Follow(ctx, "alice", "bob") },
	}
	for i := 0; len(ops) < 40; i++ {
		i := i
		ops = append(ops, func() error {
			return cl.Post(ctx, "bob", "marathon espresso update "+time.Duration(i).String(), t0chaos.Add(time.Duration(i)*time.Minute))
		})
	}
	acked := 0
	crashed := false
	for _, o := range ops {
		if err := o(); err != nil {
			// The journal failure must surface as a 503, not a 4xx.
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.StatusCode != 503 {
				t.Fatalf("torn append surfaced as %v, want APIError 503", err)
			}
			crashed = true
			break
		}
		acked++
	}
	ts.Close()
	if !crashed {
		t.Fatalf("journal never tore (budget too high?); acked %d", acked)
	}
	if acked == 0 {
		t.Fatal("journal tore before any op was acknowledged (budget too low)")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh engine, recover the journal in place.
	f2, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	eng2, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := journal.Recover(f2, eng2)
	if err != nil {
		t.Fatalf("recovery refused to start: %v", err)
	}
	if !stats.Torn {
		t.Fatal("torn tail not detected on recovery")
	}
	// Zero data loss up to the last complete record: every acknowledged op
	// replays. (The torn op was never acknowledged.)
	if stats.Applied != acked {
		t.Fatalf("recovered %d ops, want %d acknowledged", stats.Applied, acked)
	}
	if stats.Skipped != 0 {
		t.Fatalf("replay skipped %d ops: %v", stats.Skipped, stats.SkipErrors)
	}

	// The recovered server resumes serving AND appending on the same file.
	logged2 := journal.NewLogged(eng2, journal.NewFileWriter(f2, journal.SyncAlways, 0))
	ts2 := httptest.NewServer(New(logged2).Handler())
	defer ts2.Close()
	cl2, err := client.New(ts2.URL,
		client.WithRetry(client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Post(ctx, "bob", "back from the dead", t0chaos.Add(time.Hour)); err != nil {
		t.Fatalf("post after recovery: %v", err)
	}
	if _, err := cl2.Recommend(ctx, "alice", 3, t0chaos.Add(time.Hour)); err != nil {
		t.Fatalf("recommend after recovery: %v", err)
	}

	// The resumed journal replays cleanly end to end.
	if _, err := f2.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	eng3, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	finalStats, err := journal.Replay(f2, eng3)
	if err != nil {
		t.Fatal(err)
	}
	if finalStats.Torn || finalStats.Applied != acked+1 {
		t.Fatalf("final replay stats = %+v, want %d applied and no tear", finalStats, acked+1)
	}
}

var t0chaos = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// delayAPI holds every Recommend for a fixed duration, simulating an
// engine at capacity.
type delayAPI struct {
	API
	delay time.Duration
}

func (d *delayAPI) Recommend(user string, k int, at time.Time) ([]caar.Recommendation, error) {
	time.Sleep(d.delay)
	return d.API.Recommend(user, k, at)
}

// TestChaosOverloadShedsAndDrains: scenario (3) — sustained overload is
// shed with 429 while admitted requests keep bounded latency, and
// retrying clients all eventually succeed once capacity frees up.
func TestChaosOverloadShedsAndDrains(t *testing.T) {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	const maxInFlight = 4
	srv := New(&delayAPI{API: eng, delay: 5 * time.Millisecond},
		WithMaxInFlight(maxInFlight),
		WithRetryAfter(time.Second))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 16
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies metrics.LatencyHist
		failures  int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.New(ts.URL,
				client.WithRetry(client.RetryPolicy{
					MaxAttempts: 10,
					BaseDelay:   2 * time.Millisecond,
					MaxDelay:    20 * time.Millisecond,
				}))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 2; i++ {
				start := time.Now()
				_, err := cl.Recommend(context.Background(), "alice", 3, t0chaos)
				elapsed := time.Since(start)
				mu.Lock()
				if err != nil {
					failures++
				} else {
					latencies.Observe(elapsed)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if failures != 0 {
		t.Fatalf("%d requests never succeeded despite retries", failures)
	}
	health := srv.Health()
	if health.Shed == 0 {
		t.Fatal("overload never shed load — MaxInFlight not exercised")
	}
	if health.InFlight != 0 {
		t.Fatalf("in-flight count leaked: %d", health.InFlight)
	}

	// p99 end-to-end latency stays bounded: shed responses return instantly,
	// admitted requests hold the engine for only ~5ms, and the client's 1s
	// Retry-After rounds clear the backlog within a couple of cycles — so
	// nothing should approach the 10-attempt worst case.
	p99 := latencies.Quantile(0.99)
	if p99 > 5*time.Second {
		t.Fatalf("p99 latency %v unbounded under overload", p99)
	}
}
