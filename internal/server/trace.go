package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	caar "caar"
	"caar/obs"
	"caar/obs/trace"
)

// Trace endpoints: the operator's window into the request-scoped flight
// recorder.
//
//	GET /v1/traces?n=50     — newest-first summaries of captured traces,
//	                          plus the stage histograms' bucket exemplars
//	                          (trace IDs by latency bucket)
//	GET /v1/traces/{id}     — one full trace: spans with candidate counts,
//	                          score decomposition, policy actions
//
// Both return 404 when the deployment has no trace store. They are
// operator paths: exempt from admission control, because the flight
// recorder is read exactly when the server is misbehaving.

// TraceAPI is implemented by engines that support request-scoped flight
// recording (*caar.Engine does; *journal.Logged promotes it). The serving
// layer uses it to thread the request ID into the trace and to answer
// ?explain=1.
type TraceAPI interface {
	RecommendTraced(user string, k int, at time.Time, policy caar.ServingPolicy, treq caar.TraceRequest) ([]caar.Recommendation, *trace.Trace, error)
	Tracer() *trace.Store
}

// exemplarAPI is the optional engine surface exposing stage-histogram
// exemplars for the trace listing.
type exemplarAPI interface {
	StageExemplars() map[string][]obs.BucketExemplar
}

// traceStore returns the deployment's trace store, or nil when the engine
// does not trace.
func (s *Server) traceStore() *trace.Store {
	if ta, ok := s.eng.(TraceAPI); ok {
		return ta.Tracer()
	}
	return nil
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	store := s.traceStore()
	if store == nil {
		httpError(w, http.StatusNotFound, "request tracing disabled in this deployment")
		return
	}

	if id := strings.TrimPrefix(r.URL.Path, "/v1/traces/"); id != r.URL.Path && id != "" {
		tr := store.Get(id)
		if tr == nil {
			httpError(w, http.StatusNotFound, "no captured trace with id "+strconv.Quote(id))
			return
		}
		ok(w, tr)
		return
	}

	n := 50
	if raw := r.URL.Query().Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = parsed
	}
	traces := store.List(n)
	sums := make([]trace.Summary, 0, len(traces))
	for _, t := range traces {
		sums = append(sums, t.Summary())
	}
	body := map[string]any{"traces": sums}
	if ea, okCast := s.eng.(exemplarAPI); okCast {
		if ex := ea.StageExemplars(); len(ex) > 0 {
			body["exemplars"] = ex
		}
	}
	ok(w, body)
}
