package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	caar "caar"
	"caar/internal/faultinject"
	"caar/obs"
	"caar/obs/capture"
	"caar/obs/slo"
)

// TestSLOTripCapturesAttributableBundle is the incident pipeline end to end:
// an injected serving-path latency fault must trip the burn-rate watchdog,
// the trip must produce a capture bundle, and the bundle's CPU profile must
// attribute the injected delay site — the same chain adserver wires through
// slo.Config.OnTrip, driven here with a deterministic sampling clock.
func TestSLOTripCapturesAttributableBundle(t *testing.T) {
	if err := faultinject.ArmDelays("serve.recommend:2ms"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.DisarmDelays()

	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Metrics = reg
	cfg.DecayHalfLife = time.Hour
	eng, err := caar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seedSLOSmoke(t, eng)

	rec, err := capture.NewRecorder(capture.Config{
		Dir:                t.TempDir(),
		CPUProfileDuration: time.Second,
		Metrics:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// OnTrip does exactly what adserver's wiring does: capture while the
	// anomaly is still happening. The channel carries the result out.
	type captured struct {
		bundle string
		err    error
	}
	got := make(chan captured, 1)
	sloCfg := slo.Config{
		FastWindow:    5 * time.Second,
		SlowWindow:    10 * time.Second,
		SampleEvery:   100 * time.Millisecond,
		BurnThreshold: 14.4,
		MinEvents:     10,
		OnTrip: func(tp slo.Trip) {
			bundle, err := rec.Capture("anomaly", "test trip: "+tp.Objective, false)
			select {
			case got <- captured{bundle, err}:
			default:
			}
		},
	}
	obj := slo.Objective{
		Name:      "rec-test",
		Endpoint:  "/v1/recommendations",
		Kind:      slo.KindLatency,
		Threshold: time.Millisecond,
		Target:    0.99,
	}
	srv := New(eng,
		WithMetrics(reg),
		WithSLO(sloCfg, obj),
		WithCapture(rec),
	)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tracker := srv.SLO()
	if tracker == nil {
		t.Fatal("WithSLO did not install a tracker")
	}
	start := time.Now()
	tracker.Sample(start) // baseline ring entry

	// Closed-loop load: every recommend busy-spins 2ms, blowing the 1ms
	// objective, and keeps the delay site hot for the CPU profile.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/v1/recommendations?user=alice&k=3")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	time.Sleep(400 * time.Millisecond) // accumulate >MinEvents slow requests
	tracker.Sample(start.Add(400 * time.Millisecond))

	var c captured
	select {
	case c = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog sample did not trip / capture did not land")
	}
	if c.err != nil {
		t.Fatalf("capture after trip: %v", c.err)
	}

	cpu, err := rec.ReadFile(c.bundle, "cpu.pprof")
	if err != nil {
		t.Fatalf("read cpu.pprof: %v", err)
	}
	if len(cpu) == 0 {
		t.Fatal("cpu.pprof is empty")
	}
	if !gzipContains(t, cpu, "faultinject") {
		t.Fatalf("injected delay site not attributable in cpu.pprof (%d bytes)", len(cpu))
	}

	// The bundle must name the hot key driving the anomaly: the closed-loop
	// load hammers alice's recommendations, so hotkeys.json must rank her
	// first in the users dimension.
	hk, err := rec.ReadFile(c.bundle, "hotkeys.json")
	if err != nil {
		t.Fatalf("read hotkeys.json: %v", err)
	}
	var hot struct {
		Dimensions []struct {
			Dimension string `json:"dimension"`
			Keys      []struct {
				Key string `json:"key"`
			} `json:"keys"`
		} `json:"dimensions"`
	}
	if err := json.Unmarshal(hk, &hot); err != nil {
		t.Fatalf("hotkeys.json: %v (%s)", err, hk)
	}
	hotUser := ""
	for _, d := range hot.Dimensions {
		if d.Dimension == "users" && len(d.Keys) > 0 {
			hotUser = d.Keys[0].Key
		}
	}
	if hotUser != "alice" {
		t.Fatalf("hotkeys.json does not name the hot user: %s", hk)
	}

	// The bundle must also be reachable over the operator surface.
	resp, err := http.Get(ts.URL + "/v1/capturez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/capturez: status %d", resp.StatusCode)
	}
	var list struct {
		Bundles []capture.BundleInfo `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range list.Bundles {
		if b.Name == c.bundle {
			found = true
		}
	}
	if !found {
		t.Fatalf("bundle %q not listed by /v1/capturez (%d bundles)", c.bundle, len(list.Bundles))
	}

	// And the SLO report must show the objective breaching.
	resp2, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st slo.Status
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	breaching := false
	for _, o := range st.Objectives {
		if o.Name == "rec-test" && o.Breaching {
			breaching = true
		}
	}
	if !breaching {
		t.Fatalf("/v1/slo does not report rec-test breaching: %+v", st.Objectives)
	}
}

// TestSLOAndCaptureEndpointsAbsentByDefault: a server built without WithSLO /
// WithCapture must 404 the operator endpoints rather than serving empty
// documents that look like a healthy-but-idle watchdog.
func TestSLOAndCaptureEndpointsAbsentByDefault(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/slo", "/v1/capturez"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without wiring: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// gzipContains reports whether the gzipped blob's decompressed payload
// contains the substring — the pprof string table stores symbol names raw,
// so this attributes a function without a protobuf decoder.
func gzipContains(t *testing.T, gzipped []byte, substr string) bool {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gzipped))
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip read: %v", err)
	}
	return bytes.Contains(raw, []byte(substr))
}

func seedSLOSmoke(t *testing.T, eng *caar.Engine) {
	t.Helper()
	for _, u := range []string{"alice", "bob"} {
		if err := eng.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes spring sale", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Post("bob", "long marathon run this morning, shoes finally broke in", time.Now()); err != nil {
		t.Fatal(err)
	}
}
