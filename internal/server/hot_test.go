package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	caar "caar"
)

// hotDoc mirrors the /v1/hot wire shape for decoding in tests.
type hotDoc struct {
	WindowSeconds float64 `json:"window_seconds"`
	Dimensions    []struct {
		Dimension   string `json:"dimension"`
		Events      uint64 `json:"events_total"`
		TrackedKeys int    `json:"tracked_keys"`
		Keys        []struct {
			Key        string `json:"key"`
			Count      uint64 `json:"count"`
			ErrorBound uint64 `json:"error_bound"`
		} `json:"keys"`
	} `json:"dimensions"`
}

func getHot(t *testing.T, ts *httptest.Server, query string) (*http.Response, hotDoc) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/hot" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc hotDoc
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

func TestHotEndpointReportsPlantedHotKey(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, u := range []string{"hotshot", "bob"} {
		resp, body := do(t, ts, http.MethodPost, "/v1/users", map[string]any{"handle": u})
		expectStatus(t, resp, http.StatusNoContent, body)
	}
	for i := 0; i < 30; i++ {
		resp, _ := do(t, ts, http.MethodGet, "/v1/recommendations?user=hotshot&k=3", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend: status %d", resp.StatusCode)
		}
	}
	resp, _ := do(t, ts, http.MethodGet, "/v1/recommendations?user=bob&k=3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend: status %d", resp.StatusCode)
	}

	// All dimensions by default.
	resp2, doc := getHot(t, ts, "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/hot: status %d", resp2.StatusCode)
	}
	if len(doc.Dimensions) != 4 {
		t.Fatalf("dimensions = %+v", doc.Dimensions)
	}
	found := false
	for _, d := range doc.Dimensions {
		if d.Dimension != "users" {
			continue
		}
		found = true
		if len(d.Keys) == 0 || d.Keys[0].Key != "hotshot" || d.Keys[0].Count != 30 {
			t.Fatalf("users dimension = %+v", d.Keys)
		}
		if d.Events != 31 {
			t.Fatalf("events_total = %d, want 31", d.Events)
		}
	}
	if !found {
		t.Fatal("users dimension missing from default response")
	}

	// Single dimension, k=1.
	resp3, doc3 := getHot(t, ts, "?dim=users&k=1&window=1m")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/hot?dim=users: status %d", resp3.StatusCode)
	}
	if len(doc3.Dimensions) != 1 || len(doc3.Dimensions[0].Keys) != 1 ||
		doc3.Dimensions[0].Keys[0].Key != "hotshot" {
		t.Fatalf("filtered response = %+v", doc3.Dimensions)
	}
	if doc3.WindowSeconds <= 0 {
		t.Fatalf("window_seconds = %v", doc3.WindowSeconds)
	}
}

func TestHotEndpointPartitionView(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := do(t, ts, http.MethodPost, "/v1/users", map[string]any{"handle": "alice"})
	expectStatus(t, resp, http.StatusNoContent, body)
	for i := 0; i < 5; i++ {
		do(t, ts, http.MethodGet, "/v1/recommendations?user=alice&k=3", nil)
	}
	resp2, err := http.Get(ts.URL + "/v1/hot?view=partition")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("partition view: status %d", resp2.StatusCode)
	}
	var rep caar.HotPartitionReport
	if err := json.NewDecoder(resp2.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shards < 1 || len(rep.Dimensions) != 4 {
		t.Fatalf("partition report = %+v", rep)
	}
}

func TestHotEndpointValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?dim=bogus", http.StatusBadRequest},
		{"?k=0", http.StatusBadRequest},
		{"?k=nope", http.StatusBadRequest},
		{"?window=yesterday", http.StatusBadRequest},
		{"?window=-5s", http.StatusBadRequest},
		{"?view=sideways", http.StatusBadRequest},
	} {
		resp, doc := getHot(t, ts, tc.query)
		if resp.StatusCode != tc.want {
			t.Errorf("GET /v1/hot%s: status %d, want %d (%+v)", tc.query, resp.StatusCode, tc.want, doc)
		}
	}
	resp, body := do(t, ts, http.MethodPost, "/v1/hot", map[string]any{})
	expectStatus(t, resp, http.StatusMethodNotAllowed, body)
}

// TestHotEndpointDisabled: an engine opened with DisableHotKeys must surface
// 404 from /v1/hot — the resource does not exist on this deployment.
func TestHotEndpointDisabled(t *testing.T) {
	cfg := caar.DefaultConfig()
	cfg.DecayHalfLife = time.Hour
	cfg.DisableHotKeys = true
	eng, err := caar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng).Handler())
	defer ts.Close()
	for _, query := range []string{"", "?dim=users", "?view=partition"} {
		resp, err := http.Get(ts.URL + "/v1/hot" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /v1/hot%s on disabled engine: status %d, want 404", query, resp.StatusCode)
		}
	}
}
