package server

import (
	"net/http"

	"caar/obs"
	"caar/obs/slo"
)

// SLO endpoint: the server self-reports whether it is keeping its latency
// and availability promises, computed from the same per-endpoint histograms
// and counters /v1/metrics exposes — the tracker samples them on a cadence,
// so enabling SLOs adds nothing to the request path.
//
//	GET /v1/slo            — objectives with fast/slow-window burn rates
//	GET /v1/slo?refresh=1  — take a fresh sample first (adctl uses this so
//	                         the report reflects traffic sent moments ago)
//
// /v1/slo is an operator path: reachable while the server sheds load,
// because burn rates are read exactly when the server is misbehaving.

// WithSLO declares the server's objectives and enables burn-rate tracking.
// The tracker registers its caar_slo_ metrics on the server's registry and
// binds each objective to the serving-layer collectors for its endpoint;
// cfg.OnTrip (typically wired to a capture recorder) fires when an
// objective's fast AND slow windows burn above cfg.BurnThreshold.
//
// The caller owns the sampling cadence: either run SLO().Run in a goroutine
// (adserver does) or drive SLO().Sample directly (tests, harnesses).
func WithSLO(cfg slo.Config, objectives ...slo.Objective) Option {
	return func(s *Server) {
		s.sloCfg = cfg
		s.sloObjs = objectives
	}
}

// SLO returns the burn-rate tracker, or nil when WithSLO was not used.
func (s *Server) SLO() *slo.Tracker { return s.sloTracker }

// initSLO builds the tracker once the serving metrics exist (New calls it
// after newServerMetrics). Objective misconfiguration panics: SLO specs are
// startup configuration, validated by ParseObjectives long before this, and
// a server silently dropping an objective would be worse than failing loud.
func (s *Server) initSLO() {
	if len(s.sloObjs) == 0 {
		return
	}
	t := slo.NewTracker(s.sloCfg, s.metrics)
	for _, obj := range s.sloObjs {
		ep := endpointLabel(obj.Endpoint)
		var (
			src slo.Source
			eff float64
		)
		switch obj.Kind {
		case slo.KindLatency:
			src, eff = slo.LatencySource(s.sm.latency.With(ep), obj.Threshold)
		case slo.KindAvailability:
			classes := []*obs.Counter{
				s.sm.requests.With(ep, "2xx"),
				s.sm.requests.With(ep, "3xx"),
				s.sm.requests.With(ep, "4xx"),
				s.sm.requests.With(ep, "5xx"),
			}
			errs := classes[3]
			src = slo.AvailabilitySource(func() uint64 {
				var total uint64
				for _, c := range classes {
					total += c.Value()
				}
				return total
			}, errs.Value)
		}
		if err := t.Add(obj, src, eff); err != nil {
			panic("server: " + err.Error())
		}
	}
	s.sloTracker = t
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.sloTracker == nil {
		httpError(w, http.StatusNotFound, "SLO tracking disabled in this deployment")
		return
	}
	if raw := r.URL.Query().Get("refresh"); raw == "1" || raw == "true" {
		s.sloTracker.Sample(s.now())
	}
	ok(w, s.sloTracker.Status())
}
