package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	caar "caar"
)

// panicAPI wraps an API and panics on Post, simulating a handler bug.
type panicAPI struct {
	API
}

func (p panicAPI) Post(author, text string, at time.Time) error {
	panic("boom: " + text)
}

// slowAPI wraps an API and stalls reads until released.
type slowAPI struct {
	API
	gate chan struct{}
}

func (s *slowAPI) Recommend(user string, k int, at time.Time) ([]caar.Recommendation, error) {
	<-s.gate
	return s.API.Recommend(user, k, at)
}

func testEngine(t *testing.T) *caar.Engine {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPanicRecovery: a panicking handler yields 500 and the server keeps
// serving subsequent requests.
func TestPanicRecovery(t *testing.T) {
	srv := New(panicAPI{testEngine(t)}, WithLogger(log.New(io.Discard, "", 0)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/posts", "application/json",
		strings.NewReader(`{"author":"alice","text":"trigger"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic mapped to %d, want 500", resp.StatusCode)
	}

	// The process survived: an unrelated endpoint still works.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server dead after panic: stats %d", resp.StatusCode)
	}
	if got := srv.Health().Panics; got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

// TestAdmissionControlSheds saturates the server past MaxInFlight and
// expects 429 + Retry-After for the overflow, success for admitted
// requests, and full recovery once load drains.
func TestAdmissionControlSheds(t *testing.T) {
	gate := make(chan struct{})
	api := &slowAPI{API: testEngine(t), gate: gate}
	srv := New(api, WithMaxInFlight(2), WithRetryAfter(3*time.Second))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy both slots with requests blocked inside the engine.
	var wg sync.WaitGroup
	release := func() { close(gate) }
	statuses := make([]int, 2)
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/recommendations?user=alice&k=1")
			if err == nil {
				statuses[i] = resp.StatusCode
				resp.Body.Close()
			}
		}()
	}
	// Wait until both are in flight.
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight requests never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request is shed immediately with Retry-After.
	resp, err := http.Get(ts.URL + "/v1/recommendations?user=alice&k=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra != 3 {
		t.Fatalf("Retry-After = %q, want 3", resp.Header.Get("Retry-After"))
	}

	// Health stays reachable while saturated.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.InFlight != 2 || h.Shed != 1 {
		t.Fatalf("health under load = %+v", h)
	}

	// Drain: blocked requests complete successfully and capacity returns.
	release()
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("admitted request %d: status %d", i, st)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/recommendations?user=alice&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: status %d", resp.StatusCode)
	}
}

// TestRequestDeadline bounds a stuck handler with 503.
func TestRequestDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	api := &slowAPI{API: testEngine(t), gate: gate}
	ts := httptest.NewServer(New(api, WithRequestTimeout(50*time.Millisecond)).Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/recommendations?user=alice&k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stuck request: status %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline not enforced: took %v", elapsed)
	}
	// The timeout 503 must look like every other error response: JSON with
	// the right media type, not a content-sniffed text/html body.
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout response Content-Type = %q, want application/json", ct)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("timeout response body not JSON: %v", err)
	}
	if eb.Error == "" {
		t.Fatal("timeout response has empty error field")
	}

	// A request that completes in time keeps the handler's own Content-Type.
	resp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz through timeout middleware: status %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz Content-Type = %q, want application/json", ct)
	}
}
