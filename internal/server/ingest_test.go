package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	caar "caar"
	"caar/ingest"
	"caar/journal"
)

// fakeQueue scripts the ingest pipeline's answer so the HTTP mapping can be
// tested without a real ring, journal or committer.
type fakeQueue struct {
	err    error
	posts  int
	checks int
}

func (q *fakeQueue) SubmitPost(author, text string, at time.Time) error {
	q.posts++
	return q.err
}

func (q *fakeQueue) SubmitCheckIn(user string, lat, lng float64, at time.Time) error {
	q.checks++
	return q.err
}

// TestIngestRouting: with WithIngest configured, posts and check-ins go to
// the queue (not the synchronous engine path) and a nil ack maps to 204.
func TestIngestRouting(t *testing.T) {
	eng := testEngine(t)
	q := &fakeQueue{}
	srv := New(eng, WithIngest(q))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/posts", "application/json",
		strings.NewReader(`{"author":"alice","text":"hello"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("ingest post: %d, want 204", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/checkins", "application/json",
		strings.NewReader(`{"user":"alice","lat":1.5,"lng":1.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("ingest check-in: %d, want 204", resp.StatusCode)
	}
	if q.posts != 1 || q.checks != 1 {
		t.Fatalf("queue saw %d posts, %d check-ins; want 1 and 1", q.posts, q.checks)
	}
	// The queue, not the engine, owns the write: nothing was applied.
	if got := eng.Stats().PostsDelivered; got != 0 {
		t.Fatalf("post bypassed the ingest queue: %d delivered", got)
	}
}

// TestIngestQueueFullMaps429: ErrQueueFull is backpressure, not a client
// error — 429 with a Retry-After hint, same shape as admission control.
func TestIngestQueueFullMaps429(t *testing.T) {
	srv := New(testEngine(t), WithIngest(&fakeQueue{err: ingest.ErrQueueFull}), WithRetryAfter(2*time.Second))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/posts", "application/json",
		strings.NewReader(`{"author":"alice","text":"burst"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full ring: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
}

// TestIngestValidationErrorsKeepEngineMapping: the pipeline re-derives the
// sync path's rejections at submission time; they must map to the same
// statuses the synchronous handler produces.
func TestIngestValidationErrorsKeepEngineMapping(t *testing.T) {
	srv := New(testEngine(t), WithIngest(&fakeQueue{err: caar.ErrUnknownUser}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/posts", "application/json",
		strings.NewReader(`{"author":"ghost","text":"boo"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user via ingest: %d, want 404", resp.StatusCode)
	}
}

// TestIngestEndToEndThroughRealPipeline wires a real pipeline (no journal
// durability needed — a no-op journal) behind the server and checks the
// acked write becomes visible after Close drains the applier.
func TestIngestEndToEndThroughRealPipeline(t *testing.T) {
	eng := testEngine(t)
	p := ingest.New(eng, nopJournal{}, nil, ingest.Config{QueueSize: 16, MaxBatch: 4})
	srv := New(eng, WithIngest(p))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/posts", "application/json",
		strings.NewReader(`{"author":"alice","text":"through the ring"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post via real pipeline: %d, want 204", resp.StatusCode)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().PostsDelivered; got != 1 {
		t.Fatalf("posts delivered = %d, want 1", got)
	}
}

type nopJournal struct{}

func (nopJournal) AppendBatch([]journal.Entry) error { return nil }
func (nopJournal) SyncPending() error                { return nil }
