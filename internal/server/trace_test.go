package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	caar "caar"
	"caar/obs/trace"
)

// newTracedTestServer builds a server whose engine captures every request
// in a trace store, seeded with enough state for recommends to return ads.
func newTracedTestServer(t *testing.T) (*httptest.Server, *caar.Engine) {
	t.Helper()
	cfg := caar.DefaultConfig()
	cfg.DecayHalfLife = time.Hour
	cfg.Tracer = trace.NewStore(trace.Config{Capacity: 32, SampleRate: 1})
	eng, err := caar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for _, u := range []string{"alice", "bob"} {
		if err := eng.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Post("bob", "marathon running today", at); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestExplainInlinesDecomposition: ?explain=1 attaches the full trace —
// spans, score decomposition summing to the ranked score — to the
// recommendation response, under the request's own X-Request-Id.
func TestExplainInlinesDecomposition(t *testing.T) {
	ts, _ := newTracedTestServer(t)
	at := time.Date(2026, 7, 6, 9, 1, 0, 0, time.UTC).Format(time.RFC3339)

	req, _ := http.NewRequest(http.MethodGet,
		ts.URL+"/v1/recommendations?user=alice&k=3&explain=1&at="+at, nil)
	req.Header.Set("X-Request-Id", "explain-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Recommendations []caar.Recommendation `json:"recommendations"`
		Explain         *trace.Trace          `json:"explain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	tr := body.Explain
	if tr == nil {
		t.Fatal("explain=1 returned no trace")
	}
	if tr.ID != "explain-me-1" {
		t.Fatalf("trace ID %q, want the request ID", tr.ID)
	}
	if len(tr.Spans) != 6 {
		t.Fatalf("trace has %d spans: %+v", len(tr.Spans), tr.Spans)
	}
	if len(tr.Ads) != len(body.Recommendations) {
		t.Fatalf("%d traced ads for %d recommendations", len(tr.Ads), len(body.Recommendations))
	}
	for _, ad := range tr.Ads {
		if sum := ad.Text + ad.Geo + ad.Bid; sum < ad.Score-1e-9 || sum > ad.Score+1e-9 {
			t.Errorf("ad %s decomposition %g+%g+%g != score %g", ad.AdID, ad.Text, ad.Geo, ad.Bid, ad.Score)
		}
	}
}

// bareAPI hides the engine's trace surface: embedding the API interface
// forwards every serving method but deliberately does not implement
// TraceAPI.
type bareAPI struct{ API }

// TestExplainRejectedWithoutTraceSupport: a deployment whose engine lacks
// TraceAPI answers ?explain=1 with 400, not a silently unexplained slate.
func TestExplainRejectedWithoutTraceSupport(t *testing.T) {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(bareAPI{eng}).Handler())
	t.Cleanup(ts.Close)

	resp, body := do(t, ts, "GET", "/v1/recommendations?user=alice&explain=1", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)

	// Without explain the same deployment serves normally.
	resp, body = do(t, ts, "GET", "/v1/recommendations?user=alice", nil)
	expectStatus(t, resp, http.StatusOK, body)

	// And its trace endpoints report tracing as unavailable.
	resp, body = do(t, ts, "GET", "/v1/traces", nil)
	expectStatus(t, resp, http.StatusNotFound, body)
}

// TestTraceEndpoints: /v1/traces lists captured traces newest-first and
// /v1/traces/{id} retrieves one by its request ID; unknown IDs 404.
func TestTraceEndpoints(t *testing.T) {
	ts, _ := newTracedTestServer(t)
	at := time.Date(2026, 7, 6, 9, 1, 0, 0, time.UTC).Format(time.RFC3339)

	for _, id := range []string{"trace-a", "trace-b"} {
		req, _ := http.NewRequest(http.MethodGet,
			ts.URL+"/v1/recommendations?user=alice&k=2&at="+at, nil)
		req.Header.Set("X-Request-Id", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %s: status %d", id, resp.StatusCode)
		}
	}

	resp, body := do(t, ts, "GET", "/v1/traces", nil)
	expectStatus(t, resp, http.StatusOK, body)
	sums, okCast := body["traces"].([]any)
	if !okCast || len(sums) != 2 {
		t.Fatalf("traces = %v", body["traces"])
	}
	newest := sums[0].(map[string]any)
	if newest["id"] != "trace-b" {
		t.Fatalf("newest trace = %v, want trace-b first", newest)
	}
	if _, hasEx := body["exemplars"]; !hasEx {
		t.Fatalf("trace listing carries no exemplars: %v", body)
	}

	resp, body = do(t, ts, "GET", "/v1/traces/trace-a", nil)
	expectStatus(t, resp, http.StatusOK, body)
	if body["id"] != "trace-a" {
		t.Fatalf("trace body = %v", body)
	}
	if spans, _ := body["spans"].([]any); len(spans) != 6 {
		t.Fatalf("spans = %v", body["spans"])
	}

	resp, body = do(t, ts, "GET", "/v1/traces/no-such-trace", nil)
	expectStatus(t, resp, http.StatusNotFound, body)

	resp, body = do(t, ts, "GET", "/v1/traces?n=bogus", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)
}

// TestTraceEndpointsDisabled: without a trace store the endpoints 404 with
// a message saying tracing is off, so operators don't chase ghosts.
func TestTraceEndpointsDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := do(t, ts, "GET", "/v1/traces", nil)
	expectStatus(t, resp, http.StatusNotFound, body)
}
