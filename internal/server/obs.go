package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"caar/journal"
	"caar/obs"
)

// Observability middleware and operator endpoints. The observability layer
// is the outermost middleware so its single clock capture covers the entire
// chain (recovery, admission, deadline, body limit, handler) and the same
// reading feeds the latency histogram, the access log and the slow-request
// log — one request, one duration, three consumers.

// WithMetrics registers the server's collectors on reg instead of a private
// registry. Pass the same registry to caar.Config.Metrics and
// journal.NewMetrics so one /v1/metrics scrape covers every layer.
func WithMetrics(reg *obs.Registry) Option { return func(s *Server) { s.metrics = reg } }

// WithAccessLog emits one structured log line per request (and a warn-level
// line for slow requests) through l. Every line carries the request_id
// echoed in the X-Request-Id response header. nil (the default) disables
// access logging; metrics and request IDs stay on.
func WithAccessLog(l *slog.Logger) Option { return func(s *Server) { s.accessLog = l } }

// WithSlowRequestThreshold logs requests slower than d at warn level
// (requires WithAccessLog). 0 disables slow-request logging.
func WithSlowRequestThreshold(d time.Duration) Option { return func(s *Server) { s.slowReq = d } }

// WithRecoveryProgress attaches a journal-replay progress tracker: while
// recovery runs, API paths are gated with 503 + Retry-After and /v1/readyz
// reports the replay position ("N records applied, M/T bytes") instead of a
// bare not-ready; once done, the ready response embeds the final replay
// summary. This lets adserver start listening before replay finishes, so
// supervisors can distinguish "recovering" from "wedged".
func WithRecoveryProgress(p *journal.RecoveryProgress) Option {
	return func(s *Server) { s.recovery = p }
}

// HealthReporter is implemented by engines that can report degraded-but-
// alive conditions (*caar.Engine reports snapshot-write failures,
// *journal.Logged adds journal durability failures). The readiness endpoint
// turns a non-empty report into a 503 so load balancers drain the replica
// while /v1/healthz keeps answering 200 (the process is alive).
type HealthReporter interface {
	HealthProblems() []string
}

// serverMetrics bundles the HTTP-layer collectors.
type serverMetrics struct {
	requests *obs.CounterVec   // {endpoint, class}
	latency  *obs.HistogramVec // {endpoint}
	timeouts *obs.Counter
}

// newServerMetrics registers the HTTP metric family on the server's
// registry, with scrape-time functions over the middleware counters.
func newServerMetrics(s *Server) *serverMetrics {
	reg := s.metrics
	m := &serverMetrics{
		requests: reg.CounterVec("caar_http_requests_total",
			"HTTP requests by endpoint and status class.", "endpoint", "class"),
		latency: reg.HistogramVec("caar_http_request_seconds",
			"End-to-end request latency through the full middleware chain.",
			obs.LatencyBuckets, "endpoint"),
		timeouts: reg.Counter("caar_http_timeouts_total",
			"Requests cut off by the per-request deadline."),
	}
	reg.GaugeFunc("caar_http_in_flight", "Requests currently being served.", func() float64 {
		return float64(s.obsInFlight.Load())
	})
	reg.CounterFunc("caar_http_shed_total", "Requests shed by admission control (429).", func() uint64 {
		return s.shed.Load()
	})
	reg.CounterFunc("caar_http_panics_total", "Handler panics converted to 500s.", func() uint64 {
		return s.panics.Load()
	})
	reg.GaugeFunc("caar_process_uptime_seconds", "Seconds since the server was constructed.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.GaugeFunc("caar_ready", "1 while the readiness probe passes, 0 while degraded.", func() float64 {
		if len(s.healthProblems()) > 0 {
			return 0
		}
		return 1
	})
	// Go runtime health (goroutines, heap, GC pause, GOMAXPROCS) rides on
	// the same registry; registration is idempotent across servers. The
	// build-info gauge lets dashboards join any series against the binary
	// that produced it.
	obs.RegisterRuntime(reg)
	obs.RegisterBuildInfo(reg)
	return m
}

// reqIDPrefix makes request IDs unique across process restarts; the atomic
// sequence makes them unique within one.
var reqIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var reqIDSeq atomic.Uint64

func newRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDSeq.Add(1), 10)
}

// maxRequestIDLen caps adopted client request IDs; anything longer is
// truncated before sanitizing.
const maxRequestIDLen = 128

// sanitizeRequestID hardens a client-supplied X-Request-Id before it is
// echoed into response headers, log lines and trace IDs: the length is
// capped and every byte outside graphic ASCII (controls, spaces, newlines,
// escape sequences, non-ASCII) is stripped — a hostile ID must not be able
// to inject log lines or smuggle header bytes. Returns "" when nothing
// printable survives, which makes the middleware mint a fresh ID.
func sanitizeRequestID(raw string) string {
	if len(raw) > maxRequestIDLen {
		raw = raw[:maxRequestIDLen]
	}
	clean := true
	for i := 0; i < len(raw); i++ {
		if raw[i] <= 0x20 || raw[i] >= 0x7f {
			clean = false
			break
		}
	}
	if clean {
		return raw
	}
	b := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		if c := raw[i]; c > 0x20 && c < 0x7f {
			b = append(b, c)
		}
	}
	return string(b)
}

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request's ID (generated by the observability
// middleware or supplied by the client in X-Request-Id), or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusRecorder captures the response status and body size for metrics and
// the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// Unwrap lets http.ResponseController reach Flush/SetWriteDeadline on the
// underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// endpoints is the fixed label set per-endpoint series use; anything else
// collapses into "other" so a path-scanning client cannot explode the
// metric cardinality.
var endpoints = []string{
	"/v1/users", "/v1/follow", "/v1/checkins", "/v1/posts", "/v1/campaigns",
	"/v1/recommendations", "/v1/impressions", "/v1/trending", "/v1/stats",
	"/v1/healthz", "/v1/readyz", "/v1/metrics", "/v1/statusz", "/v1/traces",
	"/v1/invariants", "/v1/slo", "/v1/capturez", "/v1/hot",
}

func endpointLabel(path string) string {
	if path == "/v1/ads" || len(path) > len("/v1/ads/") && path[:len("/v1/ads/")] == "/v1/ads/" {
		return "/v1/ads"
	}
	if strings.HasPrefix(path, "/v1/traces/") {
		return "/v1/traces"
	}
	if strings.HasPrefix(path, "/v1/capturez/") {
		return "/v1/capturez"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	for _, ep := range endpoints {
		if path == ep {
			return ep
		}
	}
	return "other"
}

// isOperatorPath reports whether the path is a health/observability endpoint
// that must stay reachable on a saturated server (exempt from admission
// control and the request deadline) — traces, burn rates and capture bundles
// included, because they are read exactly when the server is misbehaving,
// and a capture or a pprof collection legitimately runs for seconds.
func isOperatorPath(path string) bool {
	switch path {
	case "/v1/healthz", "/v1/readyz", "/v1/metrics", "/v1/statusz", "/v1/traces",
		"/v1/invariants", "/v1/slo", "/v1/capturez", "/v1/hot":
		return true
	}
	return strings.HasPrefix(path, "/v1/traces/") ||
		strings.HasPrefix(path, "/v1/capturez/") ||
		strings.HasPrefix(path, "/debug/pprof")
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// withObservability is the outermost middleware: one monotonic clock
// capture at entry feeds the per-endpoint latency histogram, the access log
// and the slow-request log; the request ID is minted (or adopted from the
// client), echoed in X-Request-Id and attached to the request context and
// every log line.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.obsInFlight.Add(1)
		defer s.obsInFlight.Add(-1)
		reqID := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, reqID))

		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		ep := endpointLabel(r.URL.Path)
		s.sm.requests.With(ep, statusClass(rec.status())).Inc()
		s.sm.latency.With(ep).ObserveDuration(elapsed)
		// The deadline middleware answers 503 after reqTimeout; a 503 that
		// took at least that long is a deadline cut, not a handler error.
		if s.reqTimeout > 0 && rec.status() == http.StatusServiceUnavailable && elapsed >= s.reqTimeout {
			s.sm.timeouts.Inc()
		}

		if s.accessLog != nil {
			lg := s.accessLog.With(slog.String("request_id", reqID))
			lg.LogAttrs(r.Context(), slog.LevelInfo, "http_request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status()),
				slog.Int64("bytes", rec.bytes),
				slog.Duration("duration", elapsed),
			)
			if s.slowReq > 0 && elapsed >= s.slowReq {
				lg.LogAttrs(r.Context(), slog.LevelWarn, "slow_request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Duration("duration", elapsed),
					slog.Duration("threshold", s.slowReq),
				)
			}
		}
	})
}

// Metrics returns the server's observability registry.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// healthProblems collects degraded-state reasons: journal-replay progress
// while recovery is running, then whatever the engine reports.
func (s *Server) healthProblems() []string {
	var probs []string
	if s.recovery != nil {
		probs = append(probs, s.recovery.Problems()...)
	}
	if hr, ok := s.eng.(HealthReporter); ok {
		probs = append(probs, hr.HealthProblems()...)
	}
	return probs
}

// handleReady is the readiness probe: 200 while the deployment can do its
// job, 503 with machine-readable reasons once a layer reports degradation
// (journal durability failure, snapshot write failure). Liveness stays on
// /v1/healthz, which keeps answering 200 as long as the process serves.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	problems := s.healthProblems()
	if len(problems) == 0 {
		body := map[string]any{"status": "ready"}
		if s.recovery != nil {
			if sum, done := s.recovery.Summary(); done {
				body["replay"] = sum
			}
		}
		ok(w, body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	writeJSON(w, map[string]any{"status": "degraded", "reasons": problems})
}

// handleStatusz renders a human-readable operational summary — the page an
// operator opens before reaching for the metrics.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	fmt.Fprintf(w, "caar adserver status\n====================\n\n")
	b := obs.Build()
	ver, rev := b.Version, b.ShortRev()
	if ver == "" {
		ver = "unknown"
	}
	if rev == "" {
		rev = "unknown"
	}
	dirty := ""
	if b.VCSDirty {
		dirty = " (dirty)"
	}
	fmt.Fprintf(w, "build:         %s %s  rev %s%s\n", b.Module, ver, rev, dirty)
	fmt.Fprintf(w, "uptime:        %s\n", time.Since(s.start).Round(time.Second))
	fmt.Fprintf(w, "go:            %s  (%d goroutines, GOMAXPROCS %d)\n",
		runtime.Version(), runtime.NumGoroutine(), runtime.GOMAXPROCS(0))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "heap:          %.1f MiB in use, %.1f MiB sys\n\n",
		float64(ms.HeapInuse)/(1<<20), float64(ms.Sys)/(1<<20))

	h := s.Health()
	fmt.Fprintf(w, "health:        %s\n", h.Status)
	for _, p := range h.Problems {
		fmt.Fprintf(w, "  problem:     %s\n", p)
	}
	fmt.Fprintf(w, "in flight:     %d\n", h.InFlight)
	fmt.Fprintf(w, "shed total:    %d\n", h.Shed)
	fmt.Fprintf(w, "panics total:  %d\n\n", h.Panics)

	st := s.eng.Stats()
	fmt.Fprintf(w, "engine\n------\n")
	fmt.Fprintf(w, "users:                    %d\n", st.Users)
	fmt.Fprintf(w, "ads:                      %d\n", st.Ads)
	fmt.Fprintf(w, "follow edges:             %d\n", st.FollowEdges)
	fmt.Fprintf(w, "posts delivered:          %d\n", st.PostsDelivered)
	fmt.Fprintf(w, "check-ins:                %d\n", st.CheckIns)
	fmt.Fprintf(w, "shards:                   %d\n", st.Shards)
	fmt.Fprintf(w, "candidate buffer entries: %d\n", st.CandidateBufferEntries)
	fmt.Fprintf(w, "cached messages:          %d\n\n", st.CachedMessages)

	fmt.Fprintf(w, "see /v1/metrics for the full Prometheus exposition\n")
}

// writeJSON mirrors ok()'s encoding for responses that set their own status
// code first.
func writeJSON(w http.ResponseWriter, body any) {
	_ = json.NewEncoder(w).Encode(body)
}
