package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	caar "caar"
	"caar/obs/hotkey"
)

// Hot-key telemetry endpoint: the HTTP surface over obs/hotkey.
//
//	GET /v1/hot                          — all dimensions, top 10 each
//	GET /v1/hot?dim=posters&k=5          — one dimension
//	GET /v1/hot?window=30s               — narrower sliding window
//	GET /v1/hot?view=partition           — engine HotPartitionReport (router signal)
//
// An operator path: it is read exactly when a shard is melting down under a
// hot key, so it must stay reachable on a saturated server.

// HotAPI is implemented by engines with hot-key telemetry (*caar.Engine,
// and *journal.Logged by embedding). Wrappers that only expose the base API
// surface a 404 from /v1/hot.
type HotAPI interface {
	Hot(dim string, k int, window time.Duration) (hotkey.DimReport, error)
	HotPartitionReport(window time.Duration) (caar.HotPartitionReport, error)
}

// hotResponse is the /v1/hot wire shape for dimension queries.
type hotResponse struct {
	WindowSeconds float64            `json:"window_seconds"`
	Dimensions    []hotkey.DimReport `json:"dimensions"`
}

func (s *Server) handleHot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ha, hasHot := s.eng.(HotAPI)
	if !hasHot {
		httpError(w, http.StatusNotFound, "hot-key telemetry not supported by this deployment")
		return
	}
	q := r.URL.Query()

	window := time.Duration(0)
	if raw := q.Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "invalid window "+strconv.Quote(raw))
			return
		}
		window = d
	}

	if view := q.Get("view"); view != "" {
		if view != "partition" {
			httpError(w, http.StatusBadRequest, "unknown view "+strconv.Quote(view)+` (want "partition")`)
			return
		}
		rep, err := ha.HotPartitionReport(window)
		if err != nil {
			failHot(w, err)
			return
		}
		ok(w, rep)
		return
	}

	k := 10
	if raw := q.Get("k"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid k "+strconv.Quote(raw))
			return
		}
		k = n
	}

	dims := hotkey.Dimensions()
	if raw := q.Get("dim"); raw != "" {
		if !hotkey.Valid(hotkey.Dimension(raw)) {
			httpError(w, http.StatusBadRequest, "unknown dimension "+strconv.Quote(raw))
			return
		}
		dims = []hotkey.Dimension{hotkey.Dimension(raw)}
	}

	resp := hotResponse{Dimensions: make([]hotkey.DimReport, 0, len(dims))}
	for _, dim := range dims {
		rep, err := ha.Hot(string(dim), k, window)
		if err != nil {
			failHot(w, err)
			return
		}
		resp.WindowSeconds = rep.WindowSeconds
		resp.Dimensions = append(resp.Dimensions, rep)
	}
	ok(w, resp)
}

// failHot maps hot-key query errors: a deployment with telemetry disabled
// is a 404 (the resource does not exist here), anything else follows the
// standard error→status table.
func failHot(w http.ResponseWriter, err error) {
	if errors.Is(err, caar.ErrHotKeysDisabled) {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	fail(w, err)
}

// captureHotkeysJSON renders the hot-key snapshot for SLO-trip capture
// bundles: every dimension's top 10 over the full retained window, same
// shape as GET /v1/hot — so a burn-rate trip names the offending key.
func (s *Server) captureHotkeysJSON() ([]byte, error) {
	ha, hasHot := s.eng.(HotAPI)
	if !hasHot {
		return []byte(`{"dimensions":[]}` + "\n"), nil
	}
	resp := hotResponse{Dimensions: []hotkey.DimReport{}}
	for _, dim := range hotkey.Dimensions() {
		rep, err := ha.Hot(string(dim), 10, 0)
		if err != nil {
			if errors.Is(err, caar.ErrHotKeysDisabled) {
				return []byte(`{"dimensions":[]}` + "\n"), nil
			}
			return nil, err
		}
		resp.WindowSeconds = rep.WindowSeconds
		resp.Dimensions = append(resp.Dimensions, rep)
	}
	return json.Marshal(resp)
}
