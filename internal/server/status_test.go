package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	caar "caar"
)

// TestErrorStatusMapping audits the error→status contract across every
// endpoint: unknown references are 404, duplicates 409, validation
// failures 400 — never a generic 500.
func TestErrorStatusMapping(t *testing.T) {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddCampaign("spring", 100, day, day.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(eng).Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		// users
		{"add user ok", "POST", "/v1/users", `{"handle":"bob"}`, 204},
		{"add user duplicate", "POST", "/v1/users", `{"handle":"alice"}`, 409},
		{"add user empty handle", "POST", "/v1/users", `{"handle":""}`, 400},
		{"add user bad json", "POST", "/v1/users", `{"handle"`, 400},
		{"add user wrong method", "GET", "/v1/users", "", 405},

		// follow
		{"follow ok", "POST", "/v1/follow", `{"follower":"alice","followee":"bob"}`, 204},
		{"follow unknown follower", "POST", "/v1/follow", `{"follower":"ghost","followee":"alice"}`, 404},
		{"follow unknown followee", "POST", "/v1/follow", `{"follower":"alice","followee":"ghost"}`, 404},
		{"unfollow unknown user", "DELETE", "/v1/follow", `{"follower":"ghost","followee":"alice"}`, 404},
		{"follow wrong method", "PUT", "/v1/follow", `{}`, 405},

		// checkins / posts
		{"checkin unknown user", "POST", "/v1/checkins", `{"user":"ghost","lat":1,"lng":1}`, 404},
		{"checkin bad timestamp", "POST", "/v1/checkins", `{"user":"alice","lat":1,"lng":1,"at":"yesterday"}`, 400},
		{"post unknown author", "POST", "/v1/posts", `{"author":"ghost","text":"hi"}`, 404},
		{"post ok", "POST", "/v1/posts", `{"author":"alice","text":"morning espresso run"}`, 204},

		// campaigns
		{"campaign duplicate", "POST", "/v1/campaigns",
			`{"name":"spring","budget":5,"start":"2026-07-06T00:00:00Z","end":"2026-07-07T00:00:00Z"}`, 409},
		{"campaign bad budget", "POST", "/v1/campaigns",
			`{"name":"x","budget":-1,"start":"2026-07-06T00:00:00Z","end":"2026-07-07T00:00:00Z"}`, 400},
		{"campaign bad start", "POST", "/v1/campaigns", `{"name":"x","budget":5,"start":"nope","end":"2026-07-07T00:00:00Z"}`, 400},

		// ads
		{"ad unknown campaign", "POST", "/v1/ads", `{"id":"new","text":"fresh espresso deals","campaign":"ghost","bid":0.2}`, 404},
		{"ad duplicate", "POST", "/v1/ads", `{"id":"shoes","text":"more shoes","bid":0.2}`, 409},
		{"ad bad bid", "POST", "/v1/ads", `{"id":"badbid","text":"espresso deals","bid":7}`, 400},
		{"ad empty id", "POST", "/v1/ads", `{"id":"","text":"espresso deals","bid":0.2}`, 400},
		{"ad partial geo", "POST", "/v1/ads", `{"id":"geo","text":"espresso deals","bid":0.2,"lat":1.0}`, 400},
		{"remove unknown ad", "DELETE", "/v1/ads/ghost", "", 404},
		{"remove ad missing id", "DELETE", "/v1/ads/", "", 400},

		// recommendations
		{"recommend unknown user", "GET", "/v1/recommendations?user=ghost", "", 404},
		{"recommend bad k", "GET", "/v1/recommendations?user=alice&k=zero", "", 400},
		{"recommend bad policy", "GET", "/v1/recommendations?user=alice&freq_cap=2", "", 400},
		{"recommend ok", "GET", "/v1/recommendations?user=alice&k=3", "", 200},

		// impressions
		{"impression unknown ad", "POST", "/v1/impressions", `{"ad":"ghost"}`, 404},
		{"impression unknown user", "POST", "/v1/impressions", `{"ad":"shoes","user":"ghost"}`, 404},

		// trending / stats / health
		{"trending bad slot", "GET", "/v1/trending?slot=brunch", "", 400},
		{"trending ok", "GET", "/v1/trending?slot=morning", "", 200},
		{"stats ok", "GET", "/v1/stats", "", 200},
		{"healthz ok", "GET", "/v1/healthz", "", 200},
		{"healthz wrong method", "POST", "/v1/healthz", "", 405},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			if resp.StatusCode == http.StatusInternalServerError {
				t.Fatalf("%s %s: generic 500 leaked", tc.method, tc.path)
			}
		})
	}
}

// TestOversizedBodyRejected maps a body over the configured cap to 413.
func TestOversizedBodyRejected(t *testing.T) {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, WithMaxBodyBytes(128)).Handler())
	defer ts.Close()

	big := `{"handle":"` + strings.Repeat("x", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/users", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
