package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	netpprof "net/http/pprof"
	"strings"

	"caar/obs/capture"
	"caar/obs/trace"
)

// Capture endpoints: the HTTP surface over the flight recorder (obs/capture).
//
//	GET  /v1/capturez               — retained bundles, newest first
//	POST /v1/capturez               — force a capture now ("manual" trigger)
//	GET  /v1/capturez/{name}        — one bundle's meta.json
//	GET  /v1/capturez/{name}/{file} — one artifact (cpu.pprof, metrics.prom, …)
//
// All are operator paths — exempt from admission control and the request
// deadline, because a capture takes CPUProfileDuration (seconds) by design
// and is requested exactly when the server is misbehaving.
//
// WithDebugPprof mounts net/http/pprof under /debug/pprof/ on the same mux
// behind the same gate: one listener, one flag surface, instead of the
// former side mux on a second goroutine.

// WithCapture attaches a flight recorder and enables the /v1/capturez
// endpoints.
func WithCapture(rec *capture.Recorder) Option {
	return func(s *Server) { s.capture = rec }
}

// WithDebugPprof mounts the net/http/pprof handlers at /debug/pprof/ on the
// server's mux. Opt-in: profiling handlers can run seconds-long collections,
// so deployments enable them deliberately (adserver's -pprof flag).
func WithDebugPprof() Option {
	return func(s *Server) { s.debugPprof = true }
}

// Capture returns the flight recorder, or nil when WithCapture was not used.
func (s *Server) Capture() *capture.Recorder { return s.capture }

// captureTraceJSON adapts the deployment's trace store for bundle inclusion:
// the newest trace summaries, same shape as GET /v1/traces.
func (s *Server) captureTraceJSON() ([]byte, error) {
	store := s.traceStore()
	if store == nil {
		return []byte(`{"traces":[]}` + "\n"), nil
	}
	traces := store.List(50)
	sums := make([]trace.Summary, 0, len(traces))
	for _, t := range traces {
		sums = append(sums, t.Summary())
	}
	return json.Marshal(map[string]any{"traces": sums})
}

// wireCaptureSources points the recorder's trace-tail, statusz, and hot-key
// sources at this server (New calls it when WithCapture was used), so bundles
// carry the same views an operator would have fetched by hand.
func (s *Server) wireCaptureSources() {
	s.capture.SetSources(s.captureTraceJSON, s.captureStatuszText, s.captureHotkeysJSON)
}

// captureStatuszText renders the statusz page into memory for bundle
// inclusion.
func (s *Server) captureStatuszText() ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, "/v1/statusz", nil)
	if err != nil {
		return nil, err
	}
	w := &memResponseWriter{header: make(http.Header)}
	s.handleStatusz(w, req)
	return w.buf.Bytes(), nil
}

// memResponseWriter collects a handler's output in memory.
type memResponseWriter struct {
	header http.Header
	buf    bytes.Buffer
	code   int
}

func (w *memResponseWriter) Header() http.Header { return w.header }
func (w *memResponseWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}
func (w *memResponseWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.buf.Write(p)
}

func (s *Server) handleCapturez(w http.ResponseWriter, r *http.Request) {
	if s.capture == nil {
		httpError(w, http.StatusNotFound, "capture disabled in this deployment (start with -capture-dir)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/capturez")
	rest = strings.TrimPrefix(rest, "/")

	switch {
	case rest == "":
		switch r.Method {
		case http.MethodGet:
			list, err := s.capture.List()
			if err != nil {
				httpError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
			ok(w, map[string]any{"bundles": list, "dir": s.capture.Dir()})
		case http.MethodPost:
			name, err := s.capture.Capture("manual", "operator request via /v1/capturez", true)
			if err != nil {
				if errors.Is(err, capture.ErrThrottled) {
					httpError(w, http.StatusConflict, err.Error())
					return
				}
				httpError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
			ok(w, map[string]string{"bundle": name})
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
		}
	default:
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		name, file, hasFile := strings.Cut(rest, "/")
		if !hasFile {
			meta, err := s.capture.Meta(name)
			if err != nil {
				httpError(w, http.StatusNotFound, "no capture bundle "+name)
				return
			}
			ok(w, meta)
			return
		}
		b, err := s.capture.ReadFile(name, file)
		if err != nil {
			httpError(w, http.StatusNotFound, "no file "+file+" in bundle "+name)
			return
		}
		w.Header().Set("Content-Type", contentTypeFor(file))
		w.Write(b)
	}
}

// contentTypeFor picks a Content-Type for a bundle artifact.
func contentTypeFor(file string) string {
	switch {
	case strings.HasSuffix(file, ".json"):
		return "application/json"
	case strings.HasSuffix(file, ".pprof"):
		return "application/octet-stream"
	default:
		return "text/plain; charset=utf-8"
	}
}

// mountDebugPprof registers the net/http/pprof handlers (routes() calls it
// when WithDebugPprof was used).
func (s *Server) mountDebugPprof() {
	s.mux.HandleFunc("/debug/pprof/", netpprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
}
