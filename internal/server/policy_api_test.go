package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	caar "caar"
)

// policyServer builds a server whose engine has one user facing one
// dominant campaign plus an independent ad.
func policyServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.AddUser("alice")
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	eng.AddCampaign("mega", 1000, day, day.Add(48*time.Hour))
	eng.AddAd(caar.Ad{ID: "mega-1", Text: "sneaker sale flash", Campaign: "mega", Bid: 0.9})
	eng.AddAd(caar.Ad{ID: "mega-2", Text: "sneaker sale encore", Campaign: "mega", Bid: 0.8})
	eng.AddAd(caar.Ad{ID: "indie", Text: "sneaker cleaning kit", Bid: 0.2})
	eng.Post("alice", "sneaker hunting", day.Add(10*time.Hour))
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRecommendWithPolicyParams(t *testing.T) {
	ts := policyServer(t)
	at := time.Date(2026, 7, 6, 10, 1, 0, 0, time.UTC).Format(time.RFC3339)

	// Campaign diversity: at most 1 mega ad.
	resp, body := do(t, ts, "GET", "/v1/recommendations?user=alice&k=2&max_per_campaign=1&at="+at, nil)
	expectStatus(t, resp, http.StatusOK, body)
	recs := body["recommendations"].([]any)
	if len(recs) != 2 {
		t.Fatalf("recs = %v", recs)
	}
	mega := 0
	for _, r := range recs {
		id := r.(map[string]any)["AdID"].(string)
		if id == "mega-1" || id == "mega-2" {
			mega++
		}
	}
	if mega != 1 {
		t.Fatalf("campaign cap via HTTP failed: %v", recs)
	}

	// Frequency capping through the per-user impression endpoint.
	resp, body = do(t, ts, "POST", "/v1/impressions", map[string]any{
		"ad": "mega-1", "user": "alice", "at": at,
	})
	expectStatus(t, resp, http.StatusOK, body)
	if body["served"] != true {
		t.Fatalf("impression = %v", body)
	}
	resp, body = do(t, ts, "GET",
		"/v1/recommendations?user=alice&k=1&freq_cap=1&freq_window=1h&at="+
			time.Date(2026, 7, 6, 10, 2, 0, 0, time.UTC).Format(time.RFC3339), nil)
	expectStatus(t, resp, http.StatusOK, body)
	recs = body["recommendations"].([]any)
	if len(recs) != 1 || recs[0].(map[string]any)["AdID"] == "mega-1" {
		t.Fatalf("frequency cap via HTTP failed: %v", recs)
	}
}

func TestPolicyParamValidation(t *testing.T) {
	ts := policyServer(t)
	cases := []string{
		"/v1/recommendations?user=alice&freq_cap=0&freq_window=1h",
		"/v1/recommendations?user=alice&freq_cap=abc&freq_window=1h",
		"/v1/recommendations?user=alice&freq_cap=2", // cap without window
		"/v1/recommendations?user=alice&freq_window=1h",
		"/v1/recommendations?user=alice&freq_cap=2&freq_window=-1h",
		"/v1/recommendations?user=alice&max_per_campaign=0",
	}
	for _, path := range cases {
		resp, body := do(t, ts, "GET", path, nil)
		expectStatus(t, resp, http.StatusBadRequest, body)
	}
}

// stubAPI implements API but not PolicyAPI.
type stubAPI struct{ API }

func TestPolicyRejectedWithoutPolicyAPI(t *testing.T) {
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.AddUser("alice")
	ts := httptest.NewServer(New(stubAPI{eng}).Handler())
	t.Cleanup(ts.Close)
	resp, body := do(t, ts, "GET", "/v1/recommendations?user=alice&max_per_campaign=1", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)
	resp, body = do(t, ts, "POST", "/v1/impressions", map[string]any{"ad": "x", "user": "alice"})
	expectStatus(t, resp, http.StatusBadRequest, body)
}
