package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	caar "caar"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	cfg := caar.DefaultConfig()
	cfg.DecayHalfLife = time.Hour
	eng, err := caar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func do(t *testing.T, ts *httptest.Server, method, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	json.NewDecoder(resp.Body).Decode(&decoded)
	return resp, decoded
}

func expectStatus(t *testing.T, resp *http.Response, want int, body map[string]any) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d (body %v)",
			resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, want, body)
	}
}

func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC).Format(time.RFC3339)

	resp, body := do(t, ts, "POST", "/v1/users", map[string]any{"handle": "alice"})
	expectStatus(t, resp, http.StatusNoContent, body)
	resp, body = do(t, ts, "POST", "/v1/users", map[string]any{"handle": "bob"})
	expectStatus(t, resp, http.StatusNoContent, body)

	resp, body = do(t, ts, "POST", "/v1/follow", map[string]any{"follower": "alice", "followee": "bob"})
	expectStatus(t, resp, http.StatusNoContent, body)

	resp, body = do(t, ts, "POST", "/v1/ads", map[string]any{
		"id": "shoes", "text": "marathon running shoes", "bid": 0.4,
	})
	expectStatus(t, resp, http.StatusNoContent, body)

	resp, body = do(t, ts, "POST", "/v1/checkins", map[string]any{
		"user": "alice", "lat": 1.5, "lng": 1.5, "at": at,
	})
	expectStatus(t, resp, http.StatusNoContent, body)

	resp, body = do(t, ts, "POST", "/v1/posts", map[string]any{
		"author": "bob", "text": "marathon running today", "at": at,
	})
	expectStatus(t, resp, http.StatusNoContent, body)

	resp, body = do(t, ts, "GET", "/v1/recommendations?user=alice&k=3&at="+at, nil)
	expectStatus(t, resp, http.StatusOK, body)
	recs, okCast := body["recommendations"].([]any)
	if !okCast || len(recs) != 1 {
		t.Fatalf("recommendations = %v", body)
	}
	first := recs[0].(map[string]any)
	if first["AdID"] != "shoes" {
		t.Fatalf("top ad = %v", first)
	}

	resp, body = do(t, ts, "POST", "/v1/impressions", map[string]any{"ad": "shoes", "at": at})
	expectStatus(t, resp, http.StatusOK, body)
	if body["served"] != true {
		t.Fatalf("impression = %v", body)
	}

	resp, body = do(t, ts, "GET", "/v1/stats", nil)
	expectStatus(t, resp, http.StatusOK, body)
	if body["Users"].(float64) != 2 || body["Ads"].(float64) != 1 {
		t.Fatalf("stats = %v", body)
	}

	resp, body = do(t, ts, "DELETE", "/v1/ads/shoes", nil)
	expectStatus(t, resp, http.StatusNoContent, body)
	resp, body = do(t, ts, "GET", "/v1/recommendations?user=alice", nil)
	expectStatus(t, resp, http.StatusOK, body)
	if recs, _ := body["recommendations"].([]any); len(recs) != 0 {
		t.Fatalf("removed ad still served: %v", body)
	}
}

func TestServerErrorMapping(t *testing.T) {
	ts, _ := newTestServer(t)
	at := time.Now().UTC().Format(time.RFC3339)

	// Unknown user → 404.
	resp, body := do(t, ts, "GET", "/v1/recommendations?user=ghost", nil)
	expectStatus(t, resp, http.StatusNotFound, body)

	// Duplicate user → 409.
	do(t, ts, "POST", "/v1/users", map[string]any{"handle": "alice"})
	resp, body = do(t, ts, "POST", "/v1/users", map[string]any{"handle": "alice"})
	expectStatus(t, resp, http.StatusConflict, body)

	// Malformed JSON → 400.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/users", bytes.NewBufferString("{nope"))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", resp2.StatusCode)
	}

	// Unknown fields rejected → 400.
	resp, body = do(t, ts, "POST", "/v1/users", map[string]any{"handle": "x", "extra": 1})
	expectStatus(t, resp, http.StatusBadRequest, body)

	// Bad timestamp → 400.
	resp, body = do(t, ts, "POST", "/v1/posts", map[string]any{"author": "alice", "text": "hi", "at": "yesterday"})
	expectStatus(t, resp, http.StatusBadRequest, body)

	// Wrong method → 405.
	resp, body = do(t, ts, "GET", "/v1/users", nil)
	expectStatus(t, resp, http.StatusMethodNotAllowed, body)
	resp, body = do(t, ts, "POST", "/v1/stats", nil)
	expectStatus(t, resp, http.StatusMethodNotAllowed, body)
	resp, body = do(t, ts, "PUT", "/v1/follow", map[string]any{"follower": "a", "followee": "b"})
	expectStatus(t, resp, http.StatusMethodNotAllowed, body)

	// Partial geo targeting → 400.
	resp, body = do(t, ts, "POST", "/v1/ads", map[string]any{
		"id": "g", "text": "coffee shop", "bid": 0.2, "lat": 1.0,
	})
	expectStatus(t, resp, http.StatusBadRequest, body)

	// Bad k → 400.
	resp, body = do(t, ts, "GET", "/v1/recommendations?user=alice&k=0", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)
	resp, body = do(t, ts, "GET", "/v1/recommendations?user=alice&k=abc", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)

	// Missing ad id on delete → 400; unknown ad → 404.
	resp, body = do(t, ts, "DELETE", "/v1/ads/", nil)
	expectStatus(t, resp, http.StatusBadRequest, body)
	resp, body = do(t, ts, "DELETE", "/v1/ads/ghost", nil)
	expectStatus(t, resp, http.StatusNotFound, body)

	// Campaign with bad dates → 400.
	resp, body = do(t, ts, "POST", "/v1/campaigns", map[string]any{
		"name": "c", "budget": 5, "start": "bad", "end": at,
	})
	expectStatus(t, resp, http.StatusBadRequest, body)
}

func TestServerUnfollow(t *testing.T) {
	ts, _ := newTestServer(t)
	do(t, ts, "POST", "/v1/users", map[string]any{"handle": "a"})
	do(t, ts, "POST", "/v1/users", map[string]any{"handle": "b"})
	resp, body := do(t, ts, "POST", "/v1/follow", map[string]any{"follower": "a", "followee": "b"})
	expectStatus(t, resp, http.StatusNoContent, body)
	resp, body = do(t, ts, "DELETE", "/v1/follow", map[string]any{"follower": "a", "followee": "b"})
	expectStatus(t, resp, http.StatusNoContent, body)
	// Unfollowing again fails.
	resp, body = do(t, ts, "DELETE", "/v1/follow", map[string]any{"follower": "a", "followee": "b"})
	expectStatus(t, resp, http.StatusBadRequest, body)
}

func TestServerConcurrentTraffic(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 10; i++ {
		do(t, ts, "POST", "/v1/users", map[string]any{"handle": fmt.Sprintf("u%d", i)})
	}
	do(t, ts, "POST", "/v1/ads", map[string]any{"id": "a", "text": "sneaker sale", "bid": 0.5})
	at := time.Now().UTC().Format(time.RFC3339)

	done := make(chan error, 20)
	for w := 0; w < 20; w++ {
		go func(w int) {
			defer func() { done <- nil }()
			for i := 0; i < 20; i++ {
				u := fmt.Sprintf("u%d", (w+i)%10)
				if i%2 == 0 {
					do(t, ts, "POST", "/v1/posts", map[string]any{"author": u, "text": "sneaker run", "at": at})
				} else {
					do(t, ts, "GET", "/v1/recommendations?user="+u+"&at="+at, nil)
				}
			}
		}(w)
	}
	for w := 0; w < 20; w++ {
		<-done
	}
}
