package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	caar "caar"
	"caar/internal/faultinject"
	"caar/journal"
	"caar/obs"
)

func newObsTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestRequestIDMintedAndEchoed: every response carries an X-Request-Id — a
// client-supplied one is adopted verbatim, otherwise the server mints one.
func TestRequestIDMintedAndEchoed(t *testing.T) {
	_, ts := newObsTestServer(t)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-Id")
	if minted == "" {
		t.Fatal("no X-Request-Id minted for a request without one")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-Id", "client-supplied-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-supplied-42" {
		t.Fatalf("client-supplied request ID not echoed: got %q", got)
	}
	if minted == "client-supplied-42" {
		t.Fatal("minted ID collided with the client-supplied one")
	}
}

// TestSanitizeRequestID: hostile client request IDs — header-injection
// newlines, control bytes, unprintable characters, unbounded length — are
// stripped or capped before the server echoes and logs them.
func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ raw, want string }{
		{"ok-id-123", "ok-id-123"},                        // clean IDs pass verbatim
		{"evil\x00id\x7fwith\tjunk", "evilidwithjunk"},    // NUL/DEL/tab stripped
		{"inject\r\nSet-Cookie: x", "injectSet-Cookie:x"}, // CRLF and spaces gone
		{"\x01\x02\x03", ""},                              // all junk → discard, mint
		{"", ""},
		{strings.Repeat("x", 4096), strings.Repeat("x", 128)}, // capped
	}
	for _, c := range cases {
		if got := sanitizeRequestID(c.raw); got != c.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", c.raw, got, c.want)
		}
	}
}

// TestRequestIDSanitizedEndToEnd: the middleware applies sanitization to
// hostile-but-transmittable IDs (the http client refuses to send the worst
// bytes itself): tabs are stripped, oversized IDs are capped.
func TestRequestIDSanitizedEndToEnd(t *testing.T) {
	_, ts := newObsTestServer(t)

	send := func(t *testing.T, raw string) string {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
		req.Header["X-Request-Id"] = []string{raw} // bypass Set's canonicalization
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}

	if got := send(t, "tab\there"); got != "tabhere" {
		t.Fatalf("tab survived sanitization: %q", got)
	}
	if got := send(t, strings.Repeat("x", 4096)); len(got) != 128 {
		t.Fatalf("overlong ID not capped at 128: len=%d %q…", len(got), got[:16])
	}
}

// TestAccessLogCarriesRequestID: the slog access-log line for a request
// carries the same request_id the response header does — the contract that
// makes a latency spike in the histogram traceable to its log line.
func TestAccessLogCarriesRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newObsTestServer(t, WithAccessLog(logger))

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-Id", "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var found bool
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Msg       string `json:"msg"`
			RequestID string `json:"request_id"`
			Path      string `json:"path"`
			Status    int    `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("access log is not JSON: %v: %s", err, sc.Text())
		}
		if line.Msg == "http_request" && line.RequestID == "trace-me-7" {
			found = true
			if line.Path != "/v1/stats" || line.Status != http.StatusOK {
				t.Fatalf("access log line wrong: %+v", line)
			}
		}
	}
	if !found {
		t.Fatalf("no http_request line with request_id=trace-me-7 in access log:\n%s", buf.String())
	}
}

// TestStatusClassCounters: requests land in caar_http_requests_total under
// their endpoint and status class, with unknown paths collapsed into
// "other" so path scanning cannot explode cardinality.
func TestStatusClassCounters(t *testing.T) {
	_, ts := newObsTestServer(t)

	for _, path := range []string{"/v1/stats", "/v1/stats", "/no-such-endpoint"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`caar_http_requests_total{endpoint="/v1/stats",class="2xx"} 2`,
		`caar_http_requests_total{endpoint="other",class="4xx"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(body, `caar_http_request_seconds_count{endpoint="/v1/stats"} 2`) {
		t.Error("latency histogram did not count the /v1/stats requests")
	}
}

// TestReadinessDegradation: a journal durability failure flips /v1/readyz
// to 503 with a machine-readable reason while /v1/healthz keeps answering
// 200 (liveness), and the shared registry's caar_journal_degraded gauge
// flips to 1 for alerting.
func TestReadinessDegradation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := caar.DefaultConfig()
	cfg.Metrics = reg
	eng, err := caar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	script := faultinject.NewScript(io.Discard)
	jw := journal.NewWriter(script)
	jw.SetMetrics(journal.NewMetrics(reg))
	srv := New(journal.NewLogged(eng, jw),
		WithLogger(log.New(io.Discard, "", 0)), WithMetrics(reg))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	assertReady := func(wantCode int) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantCode {
			t.Fatalf("readyz = %d, want %d", resp.StatusCode, wantCode)
		}
		return resp
	}
	addUser := func(name string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/users", "application/json",
			strings.NewReader(`{"handle":"`+name+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	assertReady(http.StatusOK).Body.Close()

	script.Fail(errors.New("disk full"))
	resp := addUser("alice")
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("mutation with failing journal = %d, want 5xx", resp.StatusCode)
	}

	resp = assertReady(http.StatusServiceUnavailable)
	var degraded struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&degraded); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if degraded.Status != "degraded" || len(degraded.Reasons) == 0 ||
		!strings.Contains(degraded.Reasons[0], "journal") {
		t.Fatalf("degraded readyz body wrong: %+v", degraded)
	}

	// Liveness stays up and reports the same problem without a 503.
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while degraded = %d, want 200 (liveness)", resp.StatusCode)
	}
	if h.Status != "degraded" || len(h.Problems) == 0 {
		t.Fatalf("healthz body did not report degradation: %+v", h)
	}

	// The shared registry reflects the same state for alerting: the
	// degraded gauge is 1 and caar_ready is 0.
	body := scrape(t, ts.URL)
	for _, want := range []string{"caar_journal_degraded 1", "caar_ready 0",
		"caar_journal_append_errors_total 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q while degraded", want)
		}
	}
}

// scrape fetches /v1/metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics scrape: %d", resp.StatusCode)
	}
	return string(body)
}
