package caar

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"caar/obs/trace"
)

// TestRecommendTouchesEveryStage: one recommendation request must leave a
// sample in every pipeline-stage histogram — lookup, retrieve, score, topk,
// map and policy — so a stage that silently stops being measured fails
// loudly here rather than as a flat line on a dashboard.
func TestRecommendTouchesEveryStage(t *testing.T) {
	e, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"u1", "u2"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("u1", "u2"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "coffee espresso pastries", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Post("u2", "morning coffee espresso downtown", morning); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recommend("u1", 3, morning.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	for _, stage := range []string{"lookup", "retrieve", "score", "topk", "map", "policy"} {
		want := fmt.Sprintf(`caar_engine_recommend_stage_seconds_count{stage=%q} 1`, stage)
		if !strings.Contains(body, want) {
			t.Errorf("stage %q not recorded: missing %q", stage, want)
		}
	}
	if !strings.Contains(body, "caar_engine_recommend_seconds_count 1") {
		t.Error("total recommend latency not recorded")
	}
	if !strings.Contains(body, "caar_engine_recommends_total 1") {
		t.Error("recommend counter not incremented")
	}
	// Post and AddAd both vectorize text.
	if !strings.Contains(body, "caar_engine_vectorize_seconds_count 2") {
		t.Error("vectorization latency not recorded for post + ad")
	}
}

// TestExemplarRefreshThrottle: routine head-sampled traces may rewrite the
// histogram exemplars at most once per exemplarRefresh (they take seven
// shared histogram mutexes, a pure p99 tax at full tracing rate), while
// interesting captures — slow, errored, explained — always attach. The gate
// is the lastExemplarNano CAS in attachExemplars.
func TestExemplarRefreshThrottle(t *testing.T) {
	e, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := e.obsm

	mkTrace := func(id, reason string) *trace.Trace {
		return &trace.Trace{ID: id, CaptureReason: reason, DurationSeconds: 0.002}
	}
	slowest := func() string {
		ex, ok := m.recommendSeconds.SlowestExemplar()
		if !ok {
			return ""
		}
		return ex.TraceID
	}

	// First sampled trace lands: the gate starts at zero, so now-last is
	// far past the refresh interval.
	m.attachExemplars(mkTrace("t-first", trace.ReasonSampled))
	if got := slowest(); got != "t-first" {
		t.Fatalf("first sampled trace did not attach: exemplar = %q", got)
	}

	// A second sampled trace inside the refresh window must be dropped.
	m.attachExemplars(mkTrace("t-throttled", trace.ReasonSampled))
	if got := slowest(); got != "t-first" {
		t.Errorf("sampled trace inside refresh window overwrote exemplar: %q", got)
	}

	// Interesting captures bypass the throttle entirely.
	for _, reason := range []string{trace.ReasonSlow, trace.ReasonError, trace.ReasonExplain} {
		id := "t-" + reason
		m.attachExemplars(mkTrace(id, reason))
		if got := slowest(); got != id {
			t.Errorf("capture reason %q throttled: exemplar = %q, want %q", reason, got, id)
		}
	}

	// Once the refresh interval has passed, sampled traces attach again.
	m.lastExemplarNano.Store(time.Now().Add(-2 * exemplarRefresh).UnixNano())
	m.attachExemplars(mkTrace("t-after-window", trace.ReasonSampled))
	if got := slowest(); got != "t-after-window" {
		t.Errorf("sampled trace after refresh window did not attach: exemplar = %q", got)
	}
}

// TestEngineExposesMetricFamilies: the engine registry alone must expose a
// substantial family set (the acceptance floor for the whole process is 20
// across engine + server + journal).
func TestEngineExposesMetricFamilies(t *testing.T) {
	e, err := Open(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families := strings.Count(buf.String(), "# TYPE ")
	if families < 15 {
		t.Fatalf("engine registry exposes %d families, want >= 15:\n%s", families, buf.String())
	}
}
