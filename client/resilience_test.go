package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	caar "caar"
	"caar/internal/faultinject"
	"caar/internal/server"
)

func newResilServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRetryTransportError: an idempotent GET survives a transient
// connection failure.
func TestRetryTransportError(t *testing.T) {
	ts := newResilServer(t)
	ft := &faultinject.FlakyTransport{FailFirst: 2}
	c, err := New(ts.URL,
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recommend(context.Background(), "alice", 3, time.Now()); err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if got := ft.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + 1 success)", got)
	}
}

// TestNoRetryNonIdempotentOnTransportError: a POST that may have reached
// the server is not blindly repeated.
func TestNoRetryNonIdempotentOnTransportError(t *testing.T) {
	ts := newResilServer(t)
	ft := &faultinject.FlakyTransport{FailFirst: 1}
	c, err := New(ts.URL,
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddUser(context.Background(), "bob"); err == nil {
		t.Fatal("transport error on POST retried and succeeded")
	}
	if got := ft.Attempts(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry)", got)
	}
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After delays the next
// attempt by the server's hint, not the computed backoff. POSTs are
// retried on 429 because admission control rejects before any work.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if err := c.AddUser(context.Background(), "bob"); err != nil {
		t.Fatalf("retry after 429 failed: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d != 7*time.Second {
			t.Fatalf("sleep %d = %v, want 7s from Retry-After", i, d)
		}
	}
}

// TestRetryGivesUp returns the last error once attempts are exhausted.
func TestRetryGivesUp(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, err := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Stats(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
}

// TestCircuitBreakerFailsFast: after the threshold of transport failures,
// calls short-circuit without touching the network; after the cooldown a
// probe is admitted and a healthy server closes the circuit.
func TestCircuitBreakerFailsFast(t *testing.T) {
	dt := &faultinject.DownTransport{}
	c, err := New("http://127.0.0.1:0",
		WithHTTPClient(&http.Client{Transport: dt}),
		WithCircuitBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	c.breaker.now = func() time.Time { return clock }

	ctx := context.Background()
	for i := range 2 {
		if _, err := c.Stats(ctx); err == nil {
			t.Fatalf("call %d should fail", i)
		}
	}
	if dt.Attempts() != 2 {
		t.Fatalf("network attempts = %d, want 2", dt.Attempts())
	}

	// Circuit open: no network traffic, immediate error.
	_, err = c.Stats(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if dt.Attempts() != 2 {
		t.Fatalf("open circuit still hit the network: %d attempts", dt.Attempts())
	}

	// After the cooldown, one probe goes out (and fails: server still down).
	clock = clock.Add(2 * time.Minute)
	if _, err := c.Stats(ctx); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("probe not admitted after cooldown")
	}
	if dt.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3 (one probe)", dt.Attempts())
	}
	// And the failed probe re-opened the circuit.
	if _, err := c.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after failed probe", err)
	}
}

// TestCircuitBreakerRecovers: once the server is reachable again, the
// half-open probe succeeds and the circuit closes fully.
func TestCircuitBreakerRecovers(t *testing.T) {
	ts := newResilServer(t)
	ft := &faultinject.FlakyTransport{FailFirst: 2}
	c, err := New(ts.URL,
		WithHTTPClient(&http.Client{Transport: ft}),
		WithCircuitBreaker(BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	c.breaker.now = func() time.Time { return clock }

	ctx := context.Background()
	for range 2 {
		c.Stats(ctx) // trip the breaker
	}
	if _, err := c.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not open: %v", err)
	}

	clock = clock.Add(2 * time.Minute)
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("probe against healthy server failed: %v", err)
	}
	// Closed again: subsequent calls flow normally.
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("circuit did not close: %v", err)
	}
}

// TestRetryAfterCappedOn503: a flapping server that answers an idempotent
// GET with repeated 503s and an absurd Retry-After hint must not stall the
// client for hours — every waited delay is capped at retryAfterCap.
func TestRetryAfterCappedOn503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.Header().Set("Retry-After", "86400") // "come back tomorrow"
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("GET through 503s failed: %v", err)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	for i, d := range slept {
		if d != retryAfterCap {
			t.Fatalf("sleep %d = %v, want Retry-After capped at %v", i, d, retryAfterCap)
		}
	}
}

// TestBackoffJitterBounded: computed delays stay within [0, MaxDelay] and
// never exceed the Retry-After cap.
func TestBackoffJitterBounded(t *testing.T) {
	c, err := New("http://localhost:1",
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt < 10; attempt++ {
		d := c.backoff(attempt, errors.New("transport"))
		if d < 0 || d > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v out of bounds", attempt, d)
		}
	}
	huge := &APIError{StatusCode: 429, RetryAfter: 10 * time.Minute}
	if d := c.backoff(1, huge); d != retryAfterCap {
		t.Fatalf("uncapped Retry-After: %v", d)
	}
}
