package client

import (
	"context"
	"testing"
	"time"

	caar "caar"
)

func TestClientPolicyRoundTrip(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()
	day := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	at := day.Add(10 * time.Hour)

	if err := c.AddUser(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCampaign(ctx, "mega", 1000, day, day.Add(48*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ads := []caar.Ad{
		{ID: "mega-1", Text: "sneaker sale flash", Campaign: "mega", Bid: 0.9},
		{ID: "mega-2", Text: "sneaker sale encore", Campaign: "mega", Bid: 0.8},
		{ID: "indie", Text: "sneaker cleaning kit", Bid: 0.2},
	}
	for _, ad := range ads {
		if err := c.AddAd(ctx, ad); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Post(ctx, "alice", "sneaker hunting", at); err != nil {
		t.Fatal(err)
	}

	// Diversity through the client.
	recs, err := c.RecommendWithPolicy(ctx, "alice", 2, at.Add(time.Minute),
		caar.ServingPolicy{MaxPerCampaign: 1})
	if err != nil {
		t.Fatal(err)
	}
	mega := 0
	for _, r := range recs {
		if r.AdID == "mega-1" || r.AdID == "mega-2" {
			mega++
		}
	}
	if len(recs) != 2 || mega != 1 {
		t.Fatalf("policy recs = %+v", recs)
	}

	// Frequency cap through the client.
	served, err := c.RecordImpressionTo(ctx, "alice", "mega-1", at.Add(time.Minute))
	if err != nil || !served {
		t.Fatalf("impression: %v %v", served, err)
	}
	recs, err = c.RecommendWithPolicy(ctx, "alice", 1, at.Add(2*time.Minute),
		caar.ServingPolicy{FrequencyCap: 1, FrequencyWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].AdID == "mega-1" {
		t.Fatalf("capped recs = %+v", recs)
	}
}
