package client

import (
	"context"
	"testing"
	"time"
)

func TestClientHot(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()

	for _, u := range []string{"hotshot", "bob"} {
		if err := c.AddUser(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		if _, err := c.Recommend(ctx, "hotshot", 3, at); err != nil {
			t.Fatal(err)
		}
	}

	dims, err := c.Hot(ctx, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 4 {
		t.Fatalf("dimensions = %+v", dims)
	}

	users, err := c.Hot(ctx, "users", 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || len(users[0].Keys) != 1 || users[0].Keys[0].Key != "hotshot" {
		t.Fatalf("users dimension = %+v", users)
	}
	if users[0].Keys[0].Count != 20 {
		t.Fatalf("hot user count = %+v", users[0].Keys[0])
	}

	rep, err := c.HotPartitionReport(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dimensions) != 4 {
		t.Fatalf("partition report = %+v", rep)
	}
}
