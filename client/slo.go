package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"caar/obs/capture"
	"caar/obs/slo"
)

// SLO and capture clients — the adctl surface over GET /v1/slo and
// /v1/capturez. Like the other observability calls these bypass the
// retry/breaker machinery: burn rates and capture bundles are read exactly
// when the server is misbehaving, and a retried stale answer would lie.

// SLOStatus fetches the burn-rate report (GET /v1/slo). refresh asks the
// server to take a fresh sample first, so the report covers traffic sent
// moments ago instead of waiting for the next sampling tick.
func (c *Client) SLOStatus(ctx context.Context, refresh bool) (slo.Status, error) {
	path := "/v1/slo"
	if refresh {
		path += "?refresh=1"
	}
	resp, err := c.rawGet(ctx, path)
	if err != nil {
		return slo.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return slo.Status{}, fmt.Errorf("client: slo: status %d: %s", resp.StatusCode, body)
	}
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return slo.Status{}, fmt.Errorf("client: slo: decode: %w", err)
	}
	return st, nil
}

// CaptureList fetches the retained capture bundles, newest first
// (GET /v1/capturez).
func (c *Client) CaptureList(ctx context.Context) ([]capture.BundleInfo, error) {
	resp, err := c.rawGet(ctx, "/v1/capturez")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("client: capturez: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Bundles []capture.BundleInfo `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: capturez: decode: %w", err)
	}
	return out.Bundles, nil
}

// CaptureNow forces a capture bundle (POST /v1/capturez) and returns its
// name. Blocks for the server's CPU-profile duration (seconds). A 409 means
// another capture is already in flight.
func (c *Client) CaptureNow(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/capturez",
		bytes.NewReader(nil))
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("client: capture now: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Bundle string `json:"bundle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("client: capture now: decode: %w", err)
	}
	return out.Bundle, nil
}

// CaptureMeta fetches one bundle's meta document (GET /v1/capturez/{name}).
func (c *Client) CaptureMeta(ctx context.Context, name string) (capture.Meta, error) {
	resp, err := c.rawGet(ctx, "/v1/capturez/"+url.PathEscape(name))
	if err != nil {
		return capture.Meta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return capture.Meta{}, fmt.Errorf("client: capture meta: status %d: %s", resp.StatusCode, body)
	}
	var m capture.Meta
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return capture.Meta{}, fmt.Errorf("client: capture meta: decode: %w", err)
	}
	return m, nil
}

// CaptureFile fetches one artifact from a bundle
// (GET /v1/capturez/{name}/{file}).
func (c *Client) CaptureFile(ctx context.Context, name, file string) ([]byte, error) {
	resp, err := c.rawGet(ctx, "/v1/capturez/"+url.PathEscape(name)+"/"+url.PathEscape(file))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: capture file: status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
