package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	caar "caar"
	"caar/internal/server"
)

func newClientServer(t *testing.T) *Client {
	t.Helper()
	eng, err := caar.Open(caar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng).Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New("not a url"); err == nil {
		t.Error("garbage URL accepted")
	}
	if _, err := New(""); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := New("http://localhost:1/"); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

func TestClientRoundTrip(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	for _, u := range []string{"alice", "bob"} {
		if err := c.AddUser(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Follow(ctx, "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCampaign(ctx, "spring", 10, at.Add(-12*time.Hour), at.Add(12*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAd(ctx, caar.Ad{
		ID: "shoes", Text: "marathon running shoes", Campaign: "spring", Bid: 0.4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAd(ctx, caar.Ad{
		ID: "cafe", Text: "espresso downtown", Bid: 0.3,
		Target: &caar.Target{Lat: 1.5, Lng: 1.5, RadiusKm: 25},
		Slots:  []caar.Slot{caar.Morning},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckIn(ctx, "alice", 1.5, 1.5, at); err != nil {
		t.Fatal(err)
	}
	if err := c.Post(ctx, "bob", "marathon run then espresso", at); err != nil {
		t.Fatal(err)
	}

	recs, err := c.Recommend(ctx, "alice", 3, at.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %+v", recs)
	}

	served, err := c.ServeImpression(ctx, "shoes", at.Add(time.Hour))
	if err != nil || !served {
		t.Fatalf("impression: %v %v", served, err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 2 || st.Ads != 2 {
		t.Fatalf("stats = %+v", st)
	}

	if err := c.Unfollow(ctx, "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveAd(ctx, "cafe"); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Stats(ctx); st.Ads != 1 || st.FollowEdges != 0 {
		t.Fatalf("after removals: %+v", st)
	}
}

func TestClientErrorClassification(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()
	at := time.Now()

	err := c.Post(ctx, "ghost", "hello", at)
	if !IsNotFound(err) {
		t.Fatalf("posting as ghost: %v", err)
	}
	if _, err := c.Recommend(ctx, "ghost", 3, at); !IsNotFound(err) {
		t.Fatalf("recommend ghost: %v", err)
	}
	if err := c.AddUser(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	err = c.AddUser(ctx, "alice")
	if !IsConflict(err) {
		t.Fatalf("duplicate user: %v", err)
	}
	if IsNotFound(err) {
		t.Fatal("conflict classified as not-found")
	}
	var ae *APIError
	if ok := asAPIError(err, &ae); !ok || ae.StatusCode != 409 {
		t.Fatalf("APIError unwrap: %v", err)
	}
	if ae.Error() == "" {
		t.Fatal("empty error message")
	}
	// Context cancellation surfaces as a transport error, not APIError.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := c.AddUser(cancelled, "bob"); err == nil || IsConflict(err) || IsNotFound(err) {
		t.Fatalf("cancelled context: %v", err)
	}
}

func asAPIError(err error, into **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*into = ae
	}
	return ok
}

func TestClientAdIDEscaping(t *testing.T) {
	c := newClientServer(t)
	ctx := context.Background()
	if err := c.AddAd(ctx, caar.Ad{ID: "sale 50%/off", Text: "big sneaker sale", Bid: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveAd(ctx, "sale 50%/off"); err != nil {
		t.Fatalf("escaped removal failed: %v", err)
	}
}
