package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	caar "caar"
)

// Health is the server's self-reported health document (GET /v1/healthz).
// Status "degraded" means the process is alive but some layer cannot do its
// job — Problems carries the reasons.
type Health struct {
	Status   string   `json:"status"`
	InFlight int64    `json:"in_flight"`
	Shed     uint64   `json:"shed_total"`
	Panics   uint64   `json:"panics_total"`
	Problems []string `json:"problems,omitempty"`
}

// Health fetches the liveness document. It answers as long as the server
// process serves, even while degraded.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

// Ready checks the readiness probe (GET /v1/readyz): true when the server
// can fully do its job, false with the degradation reasons when it answers
// 503. The error is non-nil only for transport failures or unexpected
// statuses.
func (c *Client) Ready(ctx context.Context) (bool, []string, error) {
	r, err := c.Readiness(ctx)
	return r.Ready, r.Reasons, err
}

// ReplaySummary mirrors the journal-replay accounting a recovered server
// embeds in its ready response.
type ReplaySummary struct {
	Records       int64   `json:"records"`
	Applied       int     `json:"applied"`
	Skipped       int     `json:"skipped"`
	Bytes         int64   `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Torn          bool    `json:"torn,omitempty"`
}

// Readiness is the full readiness document: while the server recovers, the
// Reasons include live journal-replay progress; once ready, Replay (when
// present) carries the final replay accounting.
type Readiness struct {
	Ready   bool
	Reasons []string
	Replay  *ReplaySummary
}

// Readiness fetches the readiness document with replay detail. The error is
// non-nil only for transport failures or unexpected statuses.
func (c *Client) Readiness(ctx context.Context) (Readiness, error) {
	resp, err := c.rawGet(ctx, "/v1/readyz")
	if err != nil {
		return Readiness{}, err
	}
	defer resp.Body.Close()
	var body struct {
		Status  string         `json:"status"`
		Reasons []string       `json:"reasons"`
		Replay  *ReplaySummary `json:"replay"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	switch resp.StatusCode {
	case http.StatusOK:
		return Readiness{Ready: true, Replay: body.Replay}, nil
	case http.StatusServiceUnavailable:
		return Readiness{Reasons: body.Reasons}, nil
	default:
		return Readiness{}, fmt.Errorf("client: readyz: unexpected status %d", resp.StatusCode)
	}
}

// Invariants fetches the machine-checkable state export
// (GET /v1/invariants) the crash-recovery soak harness verifies its
// acknowledged-write ledger against.
func (c *Client) Invariants(ctx context.Context) (caar.InvariantReport, error) {
	resp, err := c.rawGet(ctx, "/v1/invariants")
	if err != nil {
		return caar.InvariantReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return caar.InvariantReport{}, fmt.Errorf("client: invariants: status %d: %s", resp.StatusCode, body)
	}
	var rep caar.InvariantReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return caar.InvariantReport{}, fmt.Errorf("client: invariants: decode: %w", err)
	}
	return rep, nil
}

// MetricsText fetches the raw Prometheus exposition (GET /v1/metrics).
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	return c.rawText(ctx, "/v1/metrics")
}

// Statusz fetches the human-readable status page (GET /v1/statusz).
func (c *Client) Statusz(ctx context.Context) (string, error) {
	return c.rawText(ctx, "/v1/statusz")
}

// rawGet issues a plain GET without the retry/breaker machinery — the
// observability endpoints are for probes and operators, where a stale error
// is more useful than a retried success.
func (c *Client) rawGet(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.http.Do(req)
}

func (c *Client) rawText(ctx context.Context, path string) (string, error) {
	resp, err := c.rawGet(ctx, path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), nil
}
