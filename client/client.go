// Package client is a Go client for the caar HTTP API served by
// cmd/adserver (see internal/server for the endpoint contract). It lets a
// second process — a feed renderer, an advertiser dashboard, a load driver —
// talk to a running recommender without linking the engine in.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	caar "caar"
)

// Client talks to one adserver instance. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// New creates a client for a base URL like "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// IsConflict reports whether err is an APIError with status 409.
func IsConflict(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusConflict
}

func (c *Client) do(ctx context.Context, method, path string, body, into any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return &APIError{StatusCode: resp.StatusCode, Message: eb.Error}
	}
	if into != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// AddUser registers a user handle.
func (c *Client) AddUser(ctx context.Context, handle string) error {
	return c.do(ctx, http.MethodPost, "/v1/users", map[string]string{"handle": handle}, nil)
}

// Follow makes follower receive followee's posts.
func (c *Client) Follow(ctx context.Context, follower, followee string) error {
	return c.do(ctx, http.MethodPost, "/v1/follow",
		map[string]string{"follower": follower, "followee": followee}, nil)
}

// Unfollow removes a follow edge.
func (c *Client) Unfollow(ctx context.Context, follower, followee string) error {
	return c.do(ctx, http.MethodDelete, "/v1/follow",
		map[string]string{"follower": follower, "followee": followee}, nil)
}

// CheckIn updates a user's location.
func (c *Client) CheckIn(ctx context.Context, user string, lat, lng float64, at time.Time) error {
	return c.do(ctx, http.MethodPost, "/v1/checkins", map[string]any{
		"user": user, "lat": lat, "lng": lng, "at": at.Format(time.RFC3339),
	}, nil)
}

// Post publishes a message to the author's followers.
func (c *Client) Post(ctx context.Context, author, text string, at time.Time) error {
	return c.do(ctx, http.MethodPost, "/v1/posts", map[string]string{
		"author": author, "text": text, "at": at.Format(time.RFC3339),
	}, nil)
}

// AddCampaign registers a budgeted campaign.
func (c *Client) AddCampaign(ctx context.Context, name string, budget float64, start, end time.Time) error {
	return c.do(ctx, http.MethodPost, "/v1/campaigns", map[string]any{
		"name": name, "budget": budget,
		"start": start.Format(time.RFC3339), "end": end.Format(time.RFC3339),
	}, nil)
}

// AddAd registers an advertisement.
func (c *Client) AddAd(ctx context.Context, ad caar.Ad) error {
	body := map[string]any{
		"id":   ad.ID,
		"text": ad.Text,
		"bid":  ad.Bid,
	}
	if ad.Campaign != "" {
		body["campaign"] = ad.Campaign
	}
	if ad.Target != nil {
		body["lat"] = ad.Target.Lat
		body["lng"] = ad.Target.Lng
		body["radius_km"] = ad.Target.RadiusKm
	}
	if len(ad.Slots) > 0 {
		slots := make([]string, len(ad.Slots))
		for i, s := range ad.Slots {
			slots[i] = string(s)
		}
		body["slots"] = slots
	}
	return c.do(ctx, http.MethodPost, "/v1/ads", body, nil)
}

// RemoveAd withdraws an advertisement.
func (c *Client) RemoveAd(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/ads/"+url.PathEscape(id), nil, nil)
}

// Recommend fetches the top-k ads for a user at time at.
func (c *Client) Recommend(ctx context.Context, user string, k int, at time.Time) ([]caar.Recommendation, error) {
	q := url.Values{}
	q.Set("user", user)
	q.Set("k", strconv.Itoa(k))
	q.Set("at", at.Format(time.RFC3339))
	var out struct {
		Recommendations []caar.Recommendation `json:"recommendations"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/recommendations?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Recommendations, nil
}

// RecommendWithPolicy is Recommend with server-side serving-policy
// constraints (frequency capping, campaign diversity).
func (c *Client) RecommendWithPolicy(ctx context.Context, user string, k int, at time.Time, policy caar.ServingPolicy) ([]caar.Recommendation, error) {
	q := url.Values{}
	q.Set("user", user)
	q.Set("k", strconv.Itoa(k))
	q.Set("at", at.Format(time.RFC3339))
	if policy.FrequencyCap > 0 {
		q.Set("freq_cap", strconv.Itoa(policy.FrequencyCap))
		q.Set("freq_window", policy.FrequencyWindow.String())
	}
	if policy.MaxPerCampaign > 0 {
		q.Set("max_per_campaign", strconv.Itoa(policy.MaxPerCampaign))
	}
	var out struct {
		Recommendations []caar.Recommendation `json:"recommendations"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/recommendations?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Recommendations, nil
}

// RecordImpressionTo bills one impression seen by a specific user, feeding
// server-side frequency capping.
func (c *Client) RecordImpressionTo(ctx context.Context, user, adID string, at time.Time) (bool, error) {
	var out struct {
		Served bool `json:"served"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/impressions", map[string]string{
		"ad": adID, "user": user, "at": at.Format(time.RFC3339),
	}, &out)
	return out.Served, err
}

// ServeImpression bills one impression; served=false means the campaign is
// out of released budget.
func (c *Client) ServeImpression(ctx context.Context, adID string, at time.Time) (bool, error) {
	var out struct {
		Served bool `json:"served"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/impressions", map[string]string{
		"ad": adID, "at": at.Format(time.RFC3339),
	}, &out)
	return out.Served, err
}

// Trending fetches the top-k trending terms of a time slot ("morning",
// "afternoon", "night"; empty = the server's current slot).
func (c *Client) Trending(ctx context.Context, slot caar.Slot, k int) ([]caar.TrendingTerm, error) {
	q := url.Values{}
	if slot != "" {
		q.Set("slot", string(slot))
	}
	q.Set("k", strconv.Itoa(k))
	var out struct {
		Terms []caar.TrendingTerm `json:"terms"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/trending?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Terms, nil
}

// Stats fetches the engine's monitoring snapshot.
func (c *Client) Stats(ctx context.Context) (caar.Stats, error) {
	var st caar.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}
