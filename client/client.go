// Package client is a Go client for the caar HTTP API served by
// cmd/adserver (see internal/server for the endpoint contract). It lets a
// second process — a feed renderer, an advertiser dashboard, a load driver —
// talk to a running recommender without linking the engine in.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	caar "caar"
)

// Client talks to one adserver instance. Safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	breaker *breaker
	sleep   func(ctx context.Context, d time.Duration) error
	rand    func() float64 // in [0, 1); jitter source
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// RetryPolicy configures automatic retries. Idempotent requests (GET,
// DELETE) are retried on transport errors and on 429/502/503/504
// responses; non-idempotent requests are retried only on 429, which the
// server sends before doing any work. Backoff is exponential with full
// jitter, and a server-provided Retry-After header overrides the computed
// delay.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values < 2 disable retrying.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff (default 5s). Retry-After hints
	// are honored beyond it, up to 30s.
	MaxDelay time.Duration
}

// WithRetry enables automatic retries with backoff.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		if p.BaseDelay <= 0 {
			p.BaseDelay = 100 * time.Millisecond
		}
		if p.MaxDelay <= 0 {
			p.MaxDelay = 5 * time.Second
		}
		c.retry = p
	}
}

// BreakerPolicy configures the client-side circuit breaker: after
// FailureThreshold consecutive transport-level failures the circuit opens
// and calls fail fast with ErrCircuitOpen for Cooldown, after which a
// single probe request is let through; its outcome closes or re-opens the
// circuit.
type BreakerPolicy struct {
	FailureThreshold int           // default 5
	Cooldown         time.Duration // default 1s
}

// WithCircuitBreaker enables fail-fast behavior against a dead server.
func WithCircuitBreaker(p BreakerPolicy) Option {
	return func(c *Client) {
		if p.FailureThreshold <= 0 {
			p.FailureThreshold = 5
		}
		if p.Cooldown <= 0 {
			p.Cooldown = time.Second
		}
		c.breaker = &breaker{policy: p, now: time.Now}
	}
}

// New creates a client for a base URL like "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
		rand: rand.Float64,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// ErrCircuitOpen is returned without touching the network while the
// circuit breaker is open.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// breaker is a minimal consecutive-failure circuit breaker.
type breaker struct {
	mu        sync.Mutex
	policy    BreakerPolicy
	failures  int
	openUntil time.Time
	now       func() time.Time
}

// allow reports whether a request may proceed; while open it admits one
// probe per cooldown window.
func (b *breaker) allow() error {
	b.mu.Lock() //caarlint:allow readpathlock client-side breaker state; not the engine serving path
	defer b.mu.Unlock()
	if b.failures < b.policy.FailureThreshold {
		return nil
	}
	now := b.now()
	if now.Before(b.openUntil) {
		return ErrCircuitOpen
	}
	// Half-open: admit this probe, push the next one a cooldown out.
	b.openUntil = now.Add(b.policy.Cooldown)
	return nil
}

// record feeds a request outcome into the breaker. Only transport-level
// failures (the server unreachable) trip it; an HTTP response of any
// status proves the server is alive.
func (b *breaker) record(transportOK bool) {
	b.mu.Lock() //caarlint:allow readpathlock client-side breaker state; not the engine serving path
	defer b.mu.Unlock()
	if transportOK {
		b.failures = 0
		b.openUntil = time.Time{}
		return
	}
	b.failures++
	if b.failures >= b.policy.FailureThreshold {
		b.openUntil = b.now().Add(b.policy.Cooldown)
	}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint, when one was sent
	// (e.g. on 429 load-shedding responses); zero otherwise.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// IsConflict reports whether err is an APIError with status 409.
func IsConflict(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusConflict
}

// retryAfterCap bounds how long a server Retry-After hint is honored.
const retryAfterCap = 30 * time.Second

func (c *Client) do(ctx context.Context, method, path string, body, into any) error {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		payload = buf
	}
	idempotent := method == http.MethodGet || method == http.MethodDelete
	attempts := c.retry.MaxAttempts
	if attempts < 2 {
		attempts = 1
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return err
			}
		}
		err := c.doOnce(ctx, method, path, payload, into)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err, idempotent) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// doOnce performs a single HTTP exchange, consulting and feeding the
// circuit breaker.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, into any) error {
	if c.breaker != nil {
		if err := c.breaker.allow(); err != nil {
			return err
		}
	}
	var rdr io.Reader
	if payload != nil {
		rdr = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if c.breaker != nil {
		c.breaker.record(err == nil)
	}
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: eb.Error}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if into != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// retryable decides whether err is worth another attempt. Transport errors
// and overload/gateway statuses are retried for idempotent requests;
// non-idempotent requests retry only on 429, which the server's admission
// controller sends before any work happens.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, ErrCircuitOpen) {
		return false // fail fast; the breaker gates recovery itself
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusTooManyRequests:
			return true
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return idempotent
		default:
			return false
		}
	}
	// Transport-level failure: the request may not have reached the server.
	return idempotent
}

// backoff computes the pre-attempt delay: exponential with full jitter,
// overridden by a server Retry-After hint when one was given.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		if ae.RetryAfter > retryAfterCap {
			return retryAfterCap
		}
		return ae.RetryAfter
	}
	d := c.retry.BaseDelay << (attempt - 1)
	if d > c.retry.MaxDelay || d <= 0 {
		d = c.retry.MaxDelay
	}
	return time.Duration(c.rand() * float64(d))
}

// AddUser registers a user handle.
func (c *Client) AddUser(ctx context.Context, handle string) error {
	return c.do(ctx, http.MethodPost, "/v1/users", map[string]string{"handle": handle}, nil)
}

// Follow makes follower receive followee's posts.
func (c *Client) Follow(ctx context.Context, follower, followee string) error {
	return c.do(ctx, http.MethodPost, "/v1/follow",
		map[string]string{"follower": follower, "followee": followee}, nil)
}

// Unfollow removes a follow edge.
func (c *Client) Unfollow(ctx context.Context, follower, followee string) error {
	return c.do(ctx, http.MethodDelete, "/v1/follow",
		map[string]string{"follower": follower, "followee": followee}, nil)
}

// CheckIn updates a user's location.
func (c *Client) CheckIn(ctx context.Context, user string, lat, lng float64, at time.Time) error {
	return c.do(ctx, http.MethodPost, "/v1/checkins", map[string]any{
		"user": user, "lat": lat, "lng": lng, "at": at.Format(time.RFC3339),
	}, nil)
}

// Post publishes a message to the author's followers.
func (c *Client) Post(ctx context.Context, author, text string, at time.Time) error {
	return c.do(ctx, http.MethodPost, "/v1/posts", map[string]string{
		"author": author, "text": text, "at": at.Format(time.RFC3339),
	}, nil)
}

// AddCampaign registers a budgeted campaign.
func (c *Client) AddCampaign(ctx context.Context, name string, budget float64, start, end time.Time) error {
	return c.do(ctx, http.MethodPost, "/v1/campaigns", map[string]any{
		"name": name, "budget": budget,
		"start": start.Format(time.RFC3339), "end": end.Format(time.RFC3339),
	}, nil)
}

// AddAd registers an advertisement.
func (c *Client) AddAd(ctx context.Context, ad caar.Ad) error {
	body := map[string]any{
		"id":   ad.ID,
		"text": ad.Text,
		"bid":  ad.Bid,
	}
	if ad.Campaign != "" {
		body["campaign"] = ad.Campaign
	}
	if ad.Target != nil {
		body["lat"] = ad.Target.Lat
		body["lng"] = ad.Target.Lng
		body["radius_km"] = ad.Target.RadiusKm
	}
	if len(ad.Slots) > 0 {
		slots := make([]string, len(ad.Slots))
		for i, s := range ad.Slots {
			slots[i] = string(s)
		}
		body["slots"] = slots
	}
	return c.do(ctx, http.MethodPost, "/v1/ads", body, nil)
}

// RemoveAd withdraws an advertisement.
func (c *Client) RemoveAd(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/ads/"+url.PathEscape(id), nil, nil)
}

// Recommend fetches the top-k ads for a user at time at.
func (c *Client) Recommend(ctx context.Context, user string, k int, at time.Time) ([]caar.Recommendation, error) {
	q := url.Values{}
	q.Set("user", user)
	q.Set("k", strconv.Itoa(k))
	q.Set("at", at.Format(time.RFC3339))
	var out struct {
		Recommendations []caar.Recommendation `json:"recommendations"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/recommendations?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Recommendations, nil
}

// RecommendWithPolicy is Recommend with server-side serving-policy
// constraints (frequency capping, campaign diversity).
func (c *Client) RecommendWithPolicy(ctx context.Context, user string, k int, at time.Time, policy caar.ServingPolicy) ([]caar.Recommendation, error) {
	q := url.Values{}
	q.Set("user", user)
	q.Set("k", strconv.Itoa(k))
	q.Set("at", at.Format(time.RFC3339))
	if policy.FrequencyCap > 0 {
		q.Set("freq_cap", strconv.Itoa(policy.FrequencyCap))
		q.Set("freq_window", policy.FrequencyWindow.String())
	}
	if policy.MaxPerCampaign > 0 {
		q.Set("max_per_campaign", strconv.Itoa(policy.MaxPerCampaign))
	}
	var out struct {
		Recommendations []caar.Recommendation `json:"recommendations"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/recommendations?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Recommendations, nil
}

// RecordImpressionTo bills one impression seen by a specific user, feeding
// server-side frequency capping.
func (c *Client) RecordImpressionTo(ctx context.Context, user, adID string, at time.Time) (bool, error) {
	var out struct {
		Served bool `json:"served"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/impressions", map[string]string{
		"ad": adID, "user": user, "at": at.Format(time.RFC3339),
	}, &out)
	return out.Served, err
}

// ServeImpression bills one impression; served=false means the campaign is
// out of released budget.
func (c *Client) ServeImpression(ctx context.Context, adID string, at time.Time) (bool, error) {
	var out struct {
		Served bool `json:"served"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/impressions", map[string]string{
		"ad": adID, "at": at.Format(time.RFC3339),
	}, &out)
	return out.Served, err
}

// Trending fetches the top-k trending terms of a time slot ("morning",
// "afternoon", "night"; empty = the server's current slot).
func (c *Client) Trending(ctx context.Context, slot caar.Slot, k int) ([]caar.TrendingTerm, error) {
	q := url.Values{}
	if slot != "" {
		q.Set("slot", string(slot))
	}
	q.Set("k", strconv.Itoa(k))
	var out struct {
		Terms []caar.TrendingTerm `json:"terms"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/trending?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Terms, nil
}

// Stats fetches the engine's monitoring snapshot.
func (c *Client) Stats(ctx context.Context) (caar.Stats, error) {
	var st caar.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}
