package client

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"time"

	caar "caar"
	"caar/obs"
	"caar/obs/trace"
)

// TraceList is the response of /v1/traces: newest-first summaries of the
// captured traces plus, when present, the stage histograms' bucket
// exemplars (trace IDs keyed by pipeline stage).
type TraceList struct {
	Traces    []trace.Summary                 `json:"traces"`
	Exemplars map[string][]obs.BucketExemplar `json:"exemplars,omitempty"`
}

// Traces lists up to n captured traces, newest first. A server without a
// trace store answers 404, surfaced as an *APIError.
func (c *Client) Traces(ctx context.Context, n int) (TraceList, error) {
	q := url.Values{}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	path := "/v1/traces"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out TraceList
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// TraceByID fetches one captured trace — spans with candidate counts,
// score decomposition, policy actions — by its ID (usually the request's
// X-Request-Id).
func (c *Client) TraceByID(ctx context.Context, id string) (*trace.Trace, error) {
	var tr trace.Trace
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// RecommendExplained is Recommend with ?explain=1: alongside the slate it
// returns the request's trace, whose Ads carry the additive score
// decomposition (text + geo + bid = score) of every returned ad.
func (c *Client) RecommendExplained(ctx context.Context, user string, k int, at time.Time) ([]caar.Recommendation, *trace.Trace, error) {
	q := url.Values{}
	q.Set("user", user)
	q.Set("k", strconv.Itoa(k))
	q.Set("at", at.Format(time.RFC3339))
	q.Set("explain", "1")
	var out struct {
		Recommendations []caar.Recommendation `json:"recommendations"`
		Explain         *trace.Trace          `json:"explain"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/recommendations?"+q.Encode(), nil, &out); err != nil {
		return nil, nil, err
	}
	return out.Recommendations, out.Explain, nil
}
