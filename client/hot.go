package client

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"time"

	caar "caar"
	"caar/obs/hotkey"
)

// Hot fetches heavy-hitter telemetry from /v1/hot. dim filters to one
// dimension ("users", "posters", "campaigns", "terms"; empty = all), k
// bounds keys per dimension (0 = server default), window narrows the query
// to the trailing duration (0 = full retained window).
func (c *Client) Hot(ctx context.Context, dim string, k int, window time.Duration) ([]hotkey.DimReport, error) {
	q := url.Values{}
	if dim != "" {
		q.Set("dim", dim)
	}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	if window > 0 {
		q.Set("window", window.String())
	}
	var out struct {
		Dimensions []hotkey.DimReport `json:"dimensions"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/hot?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out.Dimensions, nil
}

// HotPartitionReport fetches the per-dimension skew summary a router tier
// would consume (/v1/hot?view=partition).
func (c *Client) HotPartitionReport(ctx context.Context, window time.Duration) (caar.HotPartitionReport, error) {
	q := url.Values{}
	q.Set("view", "partition")
	if window > 0 {
		q.Set("window", window.String())
	}
	var rep caar.HotPartitionReport
	err := c.do(ctx, http.MethodGet, "/v1/hot?"+q.Encode(), nil, &rep)
	return rep, err
}
