package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	caar "caar"
	"caar/internal/server"
	"caar/obs/trace"
)

// newTracedClientServer is newClientServer with request tracing enabled at
// full sampling, seeded so recommends return an ad.
func newTracedClientServer(t *testing.T) *Client {
	t.Helper()
	cfg := caar.DefaultConfig()
	cfg.DecayHalfLife = time.Hour
	cfg.Tracer = trace.NewStore(trace.Config{Capacity: 16, SampleRate: 1})
	eng, err := caar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for _, u := range []string{"alice", "bob"} {
		if err := eng.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddAd(caar.Ad{ID: "shoes", Text: "marathon running shoes", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Post("bob", "marathon running today", at); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng).Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientTracesAndExplain(t *testing.T) {
	c := newTracedClientServer(t)
	ctx := context.Background()
	at := time.Date(2026, 7, 6, 9, 1, 0, 0, time.UTC)

	recs, tr, err := c.RecommendExplained(ctx, "alice", 2, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || tr == nil {
		t.Fatalf("recs=%v trace=%v", recs, tr)
	}
	if len(tr.Ads) != len(recs) {
		t.Fatalf("%d traced ads for %d recs", len(tr.Ads), len(recs))
	}

	list, err := c.Traces(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("no traces listed")
	}
	if len(list.Exemplars) == 0 {
		t.Fatal("no exemplars in listing")
	}

	got, err := c.TraceByID(ctx, tr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tr.ID || len(got.Spans) != len(tr.Spans) {
		t.Fatalf("fetched trace %+v does not match explained trace %+v", got, tr)
	}

	var apiErr *APIError
	if _, err := c.TraceByID(ctx, "no-such-id"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("missing trace: err=%v", err)
	}
}

func TestClientTracesDisabled(t *testing.T) {
	c := newClientServer(t)
	var apiErr *APIError
	if _, err := c.Traces(context.Background(), 5); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("traces on an untraced server: err=%v", err)
	}
}
