module caar

go 1.23
