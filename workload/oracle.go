package workload

import (
	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/timeslot"
)

// Oracle answers ground-truth interest queries. Because users are GENERATED
// from latent interests, the labels are exact by construction — this
// replaces the manual expert labeling of the original evaluation (the paper
// had domain experts mark which users were interested in each ad).
type Oracle struct {
	w *Workload
	// interested[topic] = users whose interest set contains topic.
	interested map[int][]feed.UserID
}

// NewOracle builds the oracle index for a workload.
func NewOracle(w *Workload) *Oracle {
	o := &Oracle{w: w, interested: make(map[int][]feed.UserID)}
	for _, u := range w.Users {
		for _, t := range u.Interests {
			o.interested[t] = append(o.interested[t], u.ID)
		}
	}
	return o
}

// InterestedUsers returns the users genuinely interested in ad `id` during
// slot `sl`: their latent interests contain the ad's topic, the ad targets
// the slot, and — for geo-targeted ads — their home lies inside the target
// circle.
func (o *Oracle) InterestedUsers(id adstore.AdID, sl timeslot.Slot) []feed.UserID {
	topic, ok := o.w.AdTopic[id]
	if !ok {
		return nil
	}
	var ad *adstore.Ad
	for _, a := range o.w.Ads {
		if a.ID == id {
			ad = a
			break
		}
	}
	if ad == nil || !ad.Slots.Contains(sl) {
		return nil
	}
	var out []feed.UserID
	for _, u := range o.interested[topic] {
		if !ad.Global && !ad.Target.Contains(o.w.Users[int(u)].Home) {
			continue
		}
		out = append(out, u)
	}
	return out
}

// IsInterested reports whether one user is interested in one ad during a
// slot.
func (o *Oracle) IsInterested(u feed.UserID, id adstore.AdID, sl timeslot.Slot) bool {
	for _, v := range o.InterestedUsers(id, sl) {
		if v == u {
			return true
		}
	}
	return false
}

// UsersInterestedInTopic returns the users whose latent interests include
// the topic.
func (o *Oracle) UsersInterestedInTopic(topic int) []feed.UserID {
	return o.interested[topic]
}
