package workload

import (
	"bytes"
	"testing"

	"caar/internal/adstore"
	"caar/internal/textproc"
)

// churnConfig is smallConfig with every soak extension switched on.
func churnConfig() Config {
	c := smallConfig()
	c.Campaigns = 5
	c.CampaignBudget = 50
	c.AdChurnFrac = 0.1
	c.AdRemoveFrac = 0.05
	c.ImpressionEvery = 4
	c.Celebrities = 3
	c.CelebrityFollowFrac = 0.5
	c.RenderText = true
	return c
}

// TestChurnDeterministicByteIdentical is the soak harness's foundation: the
// same seed must yield byte-identical traces and identical ad sets, or a
// crash-recovery diff against the ledger means nothing.
func TestChurnDeterministicByteIdentical(t *testing.T) {
	cfg := churnConfig()
	var b1, b2 bytes.Buffer
	for i, buf := range []*bytes.Buffer{&b1, &b2} {
		w, err := Generate(cfg)
		if err != nil {
			t.Fatalf("generate %d: %v", i, err)
		}
		if err := w.ExportTrace(buf); err != nil {
			t.Fatalf("export %d: %v", i, err)
		}
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", b1.Len(), b2.Len())
	}
}

func TestChurnEventsConsistent(t *testing.T) {
	cfg := churnConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantLate := int(float64(cfg.Ads) * cfg.AdChurnFrac)
	if len(w.LateAds) != wantLate {
		t.Fatalf("late ads = %d, want %d", len(w.LateAds), wantLate)
	}
	if got := len(w.InitialAds()); got != cfg.Ads-wantLate {
		t.Fatalf("initial ads = %d, want %d", got, cfg.Ads-wantLate)
	}
	if len(w.Campaigns) != cfg.Campaigns {
		t.Fatalf("campaigns = %d, want %d", len(w.Campaigns), cfg.Campaigns)
	}
	names := map[string]bool{}
	for _, c := range w.Campaigns {
		if c.Budget != cfg.CampaignBudget || !c.Start.Before(cfg.Start) {
			t.Fatalf("bad campaign spec %+v", c)
		}
		names[c.Name] = true
	}
	for _, a := range w.Ads {
		if !names[a.Campaign] {
			t.Fatalf("ad %d references unknown campaign %q", a.ID, a.Campaign)
		}
		if w.AdText[a.ID] == "" {
			t.Fatalf("ad %d has no rendered text", a.ID)
		}
		if w.AdByID(a.ID) != a {
			t.Fatalf("AdByID(%d) mismatch", a.ID)
		}
	}

	// Replay the churn events and check referential consistency: adds only
	// introduce late ads, removals and impressions only touch live ads.
	live := map[adstore.AdID]bool{}
	for _, a := range w.InitialAds() {
		live[a.ID] = true
	}
	adds, removes, impressions := 0, 0, 0
	for i, ev := range w.Events {
		switch ev.Kind {
		case EventAddAd:
			adds++
			if !w.LateAds[ev.Ad] {
				t.Fatalf("event %d adds non-late ad %d", i, ev.Ad)
			}
			if live[ev.Ad] {
				t.Fatalf("event %d adds already-live ad %d", i, ev.Ad)
			}
			live[ev.Ad] = true
		case EventRemoveAd:
			removes++
			if !live[ev.Ad] {
				t.Fatalf("event %d removes non-live ad %d", i, ev.Ad)
			}
			delete(live, ev.Ad)
		case EventImpression:
			impressions++
			if !live[ev.Ad] {
				t.Fatalf("event %d bills impression on non-live ad %d", i, ev.Ad)
			}
		case EventPost:
			if ev.Text == "" {
				t.Fatalf("event %d: post without rendered text", i)
			}
		}
	}
	if adds != wantLate {
		t.Fatalf("add events = %d, want %d", adds, wantLate)
	}
	wantRemoves := int(float64(cfg.Ads-wantLate) * cfg.AdRemoveFrac)
	if removes != wantRemoves {
		t.Fatalf("remove events = %d, want %d", removes, wantRemoves)
	}
	if impressions == 0 {
		t.Fatal("no impression events")
	}
}

// TestChurnTraceRoundTrip: export with all extensions on, load back, and the
// churn bookkeeping (campaigns, late set, text, events) must survive.
func TestChurnTraceRoundTrip(t *testing.T) {
	w, err := Generate(churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.ExportTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Campaigns) != len(w.Campaigns) || got.Campaigns[0] != w.Campaigns[0] {
		t.Fatalf("campaigns did not round-trip: %+v", got.Campaigns)
	}
	if len(got.LateAds) != len(w.LateAds) {
		t.Fatalf("late ads did not round-trip: %d vs %d", len(got.LateAds), len(w.LateAds))
	}
	if len(got.Events) != len(w.Events) {
		t.Fatalf("events did not round-trip: %d vs %d", len(got.Events), len(w.Events))
	}
	for i, ev := range w.Events {
		g := got.Events[i]
		if g.Kind != ev.Kind || g.Ad != ev.Ad || g.Text != ev.Text {
			t.Fatalf("event %d did not round-trip: %+v vs %+v", i, g, ev)
		}
	}
	for id, text := range w.AdText {
		if got.AdText[id] != text {
			t.Fatalf("ad %d text did not round-trip", id)
		}
		if got.AdByID(id).Campaign != w.AdByID(id).Campaign {
			t.Fatalf("ad %d campaign did not round-trip", id)
		}
	}
}

// TestRenderedTextSurvivesTokenizer: the whole point of RenderText is driving
// the real HTTP text pipeline, so every rendered token must come back out of
// the default tokenizer (alphanumeric words are kept; pure digits are not).
func TestRenderedTextSurvivesTokenizer(t *testing.T) {
	w, err := Generate(churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	tok := textproc.NewTokenizer()
	for _, ev := range w.Events[:200] {
		if ev.Kind != EventPost {
			continue
		}
		words := tok.Words(ev.Text)
		if len(words) != w.Cfg.TermsPerMsg {
			t.Fatalf("rendered post text %q tokenized to %d words, want %d", ev.Text, len(words), w.Cfg.TermsPerMsg)
		}
	}
}

func TestCelebrityFanIn(t *testing.T) {
	cfg := churnConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Celebrities; i++ {
		fans := len(w.Graph.Followers(w.Users[i].ID))
		if fans < cfg.Users/4 {
			t.Fatalf("celebrity %d has only %d followers (want ≥ %d)", i, fans, cfg.Users/4)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Campaigns = -1 },
		func(c *Config) { c.Campaigns = 3; c.CampaignBudget = 0 },
		func(c *Config) { c.AdChurnFrac = 1.5 },
		func(c *Config) { c.AdRemoveFrac = -0.1 },
		func(c *Config) { c.ImpressionEvery = -1 },
		func(c *Config) { c.Celebrities = c.Users + 1 },
		func(c *Config) { c.CelebrityFollowFrac = 2 },
	}
	for i, mut := range cases {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
