package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.ExportTrace(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if len(loaded.Users) != len(orig.Users) {
		t.Fatalf("users: %d vs %d", len(loaded.Users), len(orig.Users))
	}
	for i := range orig.Users {
		a, b := orig.Users[i], loaded.Users[i]
		if a.ID != b.ID || a.Home != b.Home || a.District != b.District ||
			!reflect.DeepEqual(a.Interests, b.Interests) {
			t.Fatalf("user %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if loaded.Graph.Edges() != orig.Graph.Edges() {
		t.Fatalf("edges: %d vs %d", loaded.Graph.Edges(), orig.Graph.Edges())
	}
	for _, u := range orig.Users {
		var a []uint32
		for _, f := range orig.Graph.Followers(u.ID) {
			a = append(a, uint32(f))
		}
		var b []uint32
		for _, f := range loaded.Graph.Followers(u.ID) {
			b = append(b, uint32(f))
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("followers of %d differ", u.ID)
		}
	}
	if len(loaded.Ads) != len(orig.Ads) {
		t.Fatalf("ads: %d vs %d", len(loaded.Ads), len(orig.Ads))
	}
	for i := range orig.Ads {
		a, b := orig.Ads[i], loaded.Ads[i]
		if a.ID != b.ID || a.Bid != b.Bid || a.Global != b.Global ||
			a.Slots != b.Slots || !reflect.DeepEqual(a.Vec, b.Vec) {
			t.Fatalf("ad %d mismatch", a.ID)
		}
		if !a.Global && a.Target != b.Target {
			t.Fatalf("ad %d target mismatch", a.ID)
		}
		if orig.AdTopic[a.ID] != loaded.AdTopic[b.ID] {
			t.Fatalf("ad %d topic mismatch", a.ID)
		}
	}
	if len(loaded.Events) != len(orig.Events) {
		t.Fatalf("events: %d vs %d", len(loaded.Events), len(orig.Events))
	}
	for i := range orig.Events {
		a, b := orig.Events[i], loaded.Events[i]
		if a.Kind != b.Kind || a.User != b.User || !a.Time.Equal(b.Time) || a.Topic != b.Topic {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
		if a.Kind == EventPost {
			if a.Msg.ID != b.Msg.ID || !reflect.DeepEqual(a.Msg.Vec, b.Msg.Vec) {
				t.Fatalf("event %d message mismatch", i)
			}
		} else if a.Loc != b.Loc {
			t.Fatalf("event %d location mismatch", i)
		}
	}
	// The oracle works on loaded workloads.
	o := NewOracle(loaded)
	found := false
	for _, a := range loaded.Ads {
		for _, sl := range a.Slots.Slots() {
			if len(o.InterestedUsers(a.ID, sl)) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("oracle found no interested users on loaded workload")
	}
}

func TestLoadTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no meta":        `{"type":"user","user":{"id":0,"interests":[0],"lat":1,"lng":1}}`,
		"garbage":        `{nope`,
		"unknown type":   `{"type":"meta","meta":{"seed":1,"topics":1,"region":[0,0,1,1],"start":"2026-07-06T05:00:00Z"}}` + "\n" + `{"type":"wat"}`,
		"sparse user id": `{"type":"meta","meta":{"seed":1,"topics":1,"region":[0,0,1,1],"start":"2026-07-06T05:00:00Z"}}` + "\n" + `{"type":"user","user":{"id":5}}`,
		"unknown slot":   `{"type":"meta","meta":{"seed":1,"topics":1,"region":[0,0,1,1],"start":"2026-07-06T05:00:00Z"}}` + "\n" + `{"type":"ad","ad":{"id":1,"bid":0.5,"global":true,"slots":["brunch"],"terms":{"1":1}}}`,
		"bad event kind": `{"type":"meta","meta":{"seed":1,"topics":1,"region":[0,0,1,1],"start":"2026-07-06T05:00:00Z"}}` + "\n" + `{"type":"event","event":{"kind":"dance","at":"2026-07-06T05:00:00Z","user":0}}`,
	}
	for name, trace := range cases {
		if _, err := LoadTrace(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadedTraceReplaysLikeOriginal(t *testing.T) {
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.ExportTrace(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// CloneAds must work on loaded workloads (used by the experiment
	// driver), and district centres must be preserved for the quality
	// experiments.
	if len(loaded.CloneAds()) != len(orig.Ads) {
		t.Fatal("CloneAds on loaded workload failed")
	}
	if len(loaded.DistrictCenters) != len(orig.DistrictCenters) {
		t.Fatal("district centres lost")
	}
}
