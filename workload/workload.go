// Package workload generates synthetic social-stream workloads that stand in
// for the proprietary Twitter crawl of the original evaluation (DESIGN.md
// §4). The generator is fully deterministic given a seed and reproduces the
// statistical properties the algorithms are sensitive to:
//
//   - power-law follower distribution (preferential attachment),
//   - Zipf-skewed term usage within latent topics,
//   - per-user topic interests that drive both posting behaviour and the
//     ground-truth interest labels (the oracle),
//   - spatial clustering of users around district centres,
//   - a diurnal posting-intensity profile (afternoons busier than mornings,
//     which reproduces the paper's slot asymmetry claim).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// Config parameterizes a workload.
type Config struct {
	Seed int64

	// Social graph.
	Users          int
	AvgFollowees   int     // average out-degree
	PrefAttachBias float64 // ∈ [0,1]: probability a new edge prefers popular targets
	// Homophily ∈ [0,1] is the probability that a follow edge is required to
	// connect users sharing at least one interest. Real follow graphs are
	// interest-assortative; without this, a user's feed would not reflect
	// their own interests and context-based targeting could not work.
	Homophily float64

	// Topic model.
	Topics           int // latent topics
	Vocab            int // total distinct terms
	TermsPerTopic    int // terms in each topic's vocabulary slice
	TermZipfS        float64
	InterestsPerUser int

	// Ads.
	Ads               int
	AdTermCount       int
	GlobalAdFrac      float64 // fraction of ads with no geo targeting
	AdRadiusKm        float64
	SlotTargetingFrac float64 // fraction of ads targeting a single slot

	// Geography.
	Region    geo.Rect
	Districts int // gaussian user clusters
	SpreadDeg float64

	// Stream.
	Messages     int
	TermsPerMsg  int
	CheckInEvery int // one check-in event per this many posts
	Start        time.Time
	MeanGapMs    int // mean inter-arrival gap at baseline intensity

	// Campaign churn and billing (soak-harness extensions). All zero values
	// reproduce the pre-churn workload byte-for-byte: no campaigns, no
	// mid-stream ad arrivals/withdrawals, no impression events.
	Campaigns       int     // budgeted campaigns the ads are spread across (0 = campaign-less)
	CampaignBudget  float64 // budget per campaign (required when Campaigns > 0)
	AdChurnFrac     float64 // ∈ [0,1]: fraction of ads held back at load and added mid-stream
	AdRemoveFrac    float64 // ∈ [0,1]: fraction of initially-loaded ads withdrawn mid-stream
	ImpressionEvery int     // one billable impression event per this many posts (0 = none)

	// Celebrity tail: the first Celebrities users become high-activity
	// accounts followed by a CelebrityFollowFrac share of the whole user
	// base, producing the extreme fan-out bursts a kill mid-delivery must
	// survive.
	Celebrities         int
	CelebrityFollowFrac float64 // ∈ [0,1]

	// RenderText, when set, attaches deterministic token text to every post
	// event and generated ad (Event.Text, Workload.AdText) so a harness can
	// drive the real HTTP text pipeline instead of injecting vectors.
	RenderText bool
}

// DefaultConfig returns a laptop-scale workload matching the evaluation's
// default operating point.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Users:             2000,
		AvgFollowees:      12,
		PrefAttachBias:    0.7,
		Homophily:         0.8,
		Topics:            50,
		Vocab:             8000,
		TermsPerTopic:     60,
		TermZipfS:         1.2,
		InterestsPerUser:  3,
		Ads:               10000,
		AdTermCount:       6,
		GlobalAdFrac:      0.3,
		AdRadiusKm:        40,
		SlotTargetingFrac: 0.25,
		Region:            geo.NewRect(geo.Point{Lat: 0, Lng: 0}, geo.Point{Lat: 4, Lng: 4}),
		Districts:         12,
		SpreadDeg:         0.15,
		Messages:          20000,
		TermsPerMsg:       8,
		CheckInEvery:      10,
		Start:             time.Date(2026, 7, 6, 5, 0, 0, 0, time.UTC),
		MeanGapMs:         400,
	}
}

// Validate rejects configurations the generator cannot honour.
func (c Config) Validate() error {
	switch {
	case c.Users < 2:
		return fmt.Errorf("workload: need ≥ 2 users, got %d", c.Users)
	case c.Topics < 1:
		return fmt.Errorf("workload: need ≥ 1 topic, got %d", c.Topics)
	case c.Vocab < c.TermsPerTopic:
		return fmt.Errorf("workload: vocab %d smaller than topic size %d", c.Vocab, c.TermsPerTopic)
	case c.TermsPerTopic < 2:
		return fmt.Errorf("workload: topic size %d too small", c.TermsPerTopic)
	case c.InterestsPerUser < 1 || c.InterestsPerUser > c.Topics:
		return fmt.Errorf("workload: interests per user %d outside [1, %d]", c.InterestsPerUser, c.Topics)
	case c.Ads < 1:
		return fmt.Errorf("workload: need ≥ 1 ad, got %d", c.Ads)
	case c.AdTermCount < 1 || c.AdTermCount > c.TermsPerTopic:
		return fmt.Errorf("workload: ad term count %d outside [1, %d]", c.AdTermCount, c.TermsPerTopic)
	case !c.Region.Valid():
		return fmt.Errorf("workload: invalid region %+v", c.Region)
	case c.Districts < 1:
		return fmt.Errorf("workload: need ≥ 1 district")
	case c.Messages < 0:
		return fmt.Errorf("workload: negative message count")
	case c.TermsPerMsg < 1:
		return fmt.Errorf("workload: terms per message %d < 1", c.TermsPerMsg)
	case c.MeanGapMs < 1:
		return fmt.Errorf("workload: mean gap %d ms < 1", c.MeanGapMs)
	case c.Campaigns < 0:
		return fmt.Errorf("workload: negative campaign count")
	case c.Campaigns > 0 && c.CampaignBudget <= 0:
		return fmt.Errorf("workload: %d campaigns need a positive budget, got %g", c.Campaigns, c.CampaignBudget)
	case c.AdChurnFrac < 0 || c.AdChurnFrac > 1:
		return fmt.Errorf("workload: ad churn fraction %g outside [0,1]", c.AdChurnFrac)
	case c.AdRemoveFrac < 0 || c.AdRemoveFrac > 1:
		return fmt.Errorf("workload: ad remove fraction %g outside [0,1]", c.AdRemoveFrac)
	case c.ImpressionEvery < 0:
		return fmt.Errorf("workload: negative impression interval")
	case c.Celebrities < 0 || c.Celebrities > c.Users:
		return fmt.Errorf("workload: celebrity count %d outside [0, %d]", c.Celebrities, c.Users)
	case c.CelebrityFollowFrac < 0 || c.CelebrityFollowFrac > 1:
		return fmt.Errorf("workload: celebrity follow fraction %g outside [0,1]", c.CelebrityFollowFrac)
	}
	return nil
}

// User is one generated user profile.
type User struct {
	ID        feed.UserID
	Interests []int // latent topic indexes, the oracle's label source
	Home      geo.Point
	District  int     // index into Workload.DistrictCenters of the home cluster
	Activity  float64 // relative posting propensity
}

// EventKind discriminates stream events.
type EventKind uint8

// Stream event kinds.
const (
	EventPost EventKind = iota
	EventCheckIn
	// EventAddAd introduces a held-back ad mid-stream (campaign churn):
	// Event.Ad names an entry of Workload.Ads that is NOT part of the
	// initial load (Workload.LateAds).
	EventAddAd
	// EventRemoveAd withdraws a live ad mid-stream; Event.Ad names it.
	EventRemoveAd
	// EventImpression bills one impression of a live ad (Event.Ad) against
	// its campaign budget.
	EventImpression
)

// Event is one timestamped stream event.
type Event struct {
	Kind EventKind
	Time time.Time
	User feed.UserID
	Msg  feed.Message // valid when Kind == EventPost
	Loc  geo.Point    // valid when Kind == EventCheckIn
	// Ad names the subject of add/remove/impression events.
	Ad adstore.AdID
	// Text is the rendered token form of a post, set only when
	// Config.RenderText — what a harness feeds the HTTP text pipeline.
	Text string
	// Topic is the latent topic the post was generated from (oracle
	// bookkeeping; -1 for non-post events).
	Topic int
}

// CampaignSpec is one generated advertiser budget. The flight window opens
// well before the stream starts so pacing has released most of the budget by
// the time the workload replays — a double-applied journal therefore shows
// up as real over-spend rather than being masked by the pacing cap.
type CampaignSpec struct {
	Name   string
	Budget float64
	Start  time.Time
	End    time.Time
}

// Workload is a fully generated benchmark input.
type Workload struct {
	Cfg    Config
	Users  []User
	Graph  *feed.Graph
	Ads    []*adstore.Ad
	Events []Event

	// DistrictCenters are the gaussian cluster centres users were placed
	// around; User.District indexes into this slice.
	DistrictCenters []geo.Point

	// AdTopic maps each ad to the latent topic its keywords were drawn
	// from — the oracle's link between ads and user interests.
	AdTopic map[adstore.AdID]int

	// Campaigns are the generated advertiser budgets (empty unless
	// Config.Campaigns > 0); Ad.Campaign references them by name.
	Campaigns []CampaignSpec

	// LateAds marks ads that are NOT part of the initial load: they arrive
	// mid-stream via EventAddAd (empty unless Config.AdChurnFrac > 0).
	LateAds map[adstore.AdID]bool

	// AdText is the rendered token text per ad, set only when
	// Config.RenderText.
	AdText map[adstore.AdID]string

	topicTerms [][]textproc.TermID
	adIndex    map[adstore.AdID]int // position in Ads
}

// InitialAds returns the ads present at load time, i.e. Ads minus LateAds,
// in generation order.
func (w *Workload) InitialAds() []*adstore.Ad {
	out := make([]*adstore.Ad, 0, len(w.Ads)-len(w.LateAds))
	for _, a := range w.Ads {
		if !w.LateAds[a.ID] {
			out = append(out, a)
		}
	}
	return out
}

// AdByID returns the generated ad with the given ID, or nil.
func (w *Workload) AdByID(id adstore.AdID) *adstore.Ad {
	i, ok := w.adIndex[id]
	if !ok {
		return nil
	}
	return w.Ads[i]
}

// Generate builds a workload. The same Config (including Seed) always yields
// the same workload.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Cfg: cfg, AdTopic: make(map[adstore.AdID]int, cfg.Ads)}
	w.genTopics(rng)
	w.genUsers(rng)
	w.genGraph(rng)
	w.genAds(rng)
	w.genEvents(rng)
	return w, nil
}

// genTopics carves the vocabulary into overlapping topic slices.
func (w *Workload) genTopics(rng *rand.Rand) {
	c := w.Cfg
	w.topicTerms = make([][]textproc.TermID, c.Topics)
	for k := range w.topicTerms {
		terms := make([]textproc.TermID, c.TermsPerTopic)
		// Each topic draws a contiguous-ish slice plus random spill, giving
		// partial overlap between topics (shared vocabulary is what makes
		// delta lists non-trivial).
		start := rng.Intn(c.Vocab)
		for i := range terms {
			if rng.Float64() < 0.8 {
				terms[i] = textproc.TermID((start + i) % c.Vocab)
			} else {
				terms[i] = textproc.TermID(rng.Intn(c.Vocab))
			}
		}
		w.topicTerms[k] = terms
	}
}

func (w *Workload) genUsers(rng *rand.Rand) {
	c := w.Cfg
	centers := make([]geo.Point, c.Districts)
	for i := range centers {
		centers[i] = geo.Point{
			Lat: c.Region.MinLat + rng.Float64()*(c.Region.MaxLat-c.Region.MinLat),
			Lng: c.Region.MinLng + rng.Float64()*(c.Region.MaxLng-c.Region.MinLng),
		}
	}
	w.DistrictCenters = centers
	w.Users = make([]User, c.Users)
	for i := range w.Users {
		interests := rng.Perm(c.Topics)[:c.InterestsPerUser]
		district := rng.Intn(len(centers))
		ctr := centers[district]
		home := geo.Point{
			Lat: clamp(ctr.Lat+rng.NormFloat64()*c.SpreadDeg, c.Region.MinLat, c.Region.MaxLat),
			Lng: clamp(ctr.Lng+rng.NormFloat64()*c.SpreadDeg, c.Region.MinLng, c.Region.MaxLng),
		}
		w.Users[i] = User{
			ID:        feed.UserID(i),
			Interests: interests,
			Home:      home,
			District:  district,
			Activity:  0.2 + rng.ExpFloat64(), // heavy-ish tail
		}
	}
	// Celebrity tail: the first Celebrities users post an order of magnitude
	// more than the organic heavy tail, so their (huge, see genGraph)
	// follower sets are fanned out to constantly.
	for i := 0; i < c.Celebrities && i < len(w.Users); i++ {
		w.Users[i].Activity *= 25
	}
}

// genGraph wires a preferential-attachment follower graph: popular accounts
// accumulate followers, yielding the power-law fan-out the fan-out-sharing
// optimization targets.
func (w *Workload) genGraph(rng *rand.Rand) {
	c := w.Cfg
	g := feed.NewGraph()
	for _, u := range w.Users {
		g.AddUser(u.ID)
	}
	// edgeTargets samples proportional to in-degree+1 via a growing list of
	// endpoint repetitions (the classic Barabási–Albert trick).
	endpoints := make([]feed.UserID, 0, c.Users*c.AvgFollowees)
	sharesInterest := func(a, b feed.UserID) bool {
		for _, x := range w.Users[int(a)].Interests {
			for _, y := range w.Users[int(b)].Interests {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < c.Users; i++ {
		follower := feed.UserID(i)
		for e := 0; e < c.AvgFollowees; e++ {
			wantShared := rng.Float64() < c.Homophily
			var target feed.UserID
			found := false
			// Bounded resampling: prefer popular and (when required)
			// interest-sharing targets, falling back to whatever the last
			// draw produced so degree stays near the configured average.
			for attempt := 0; attempt < 16; attempt++ {
				if len(endpoints) > 0 && rng.Float64() < c.PrefAttachBias {
					target = endpoints[rng.Intn(len(endpoints))]
				} else {
					target = feed.UserID(rng.Intn(c.Users))
				}
				if target == follower {
					continue
				}
				if wantShared && !sharesInterest(follower, target) {
					continue
				}
				found = true
				break
			}
			if !found {
				continue
			}
			if err := g.Follow(follower, target); err != nil {
				continue // duplicate edge: skip
			}
			endpoints = append(endpoints, target)
		}
	}
	// Celebrity fan-in: each celebrity is followed by a CelebrityFollowFrac
	// share of the whole user base, regardless of interests — the extreme
	// fan-out case the delivery path must survive a kill in the middle of.
	for ci := 0; ci < c.Celebrities && ci < len(w.Users); ci++ {
		celeb := w.Users[ci].ID
		for i := 0; i < c.Users; i++ {
			follower := feed.UserID(i)
			if follower == celeb || rng.Float64() >= c.CelebrityFollowFrac {
				continue
			}
			_ = g.Follow(follower, celeb) // duplicate edge: already a fan
		}
	}
	w.Graph = g
}

func (w *Workload) genAds(rng *rand.Rand) {
	c := w.Cfg
	// Advertiser budgets: flight opened 30 days before the stream so pacing
	// has released ~97% of each budget at replay time (see CampaignSpec).
	if c.Campaigns > 0 {
		w.Campaigns = make([]CampaignSpec, c.Campaigns)
		for k := range w.Campaigns {
			w.Campaigns[k] = CampaignSpec{
				Name:   fmt.Sprintf("camp-%03d", k),
				Budget: c.CampaignBudget,
				Start:  c.Start.Add(-30 * 24 * time.Hour),
				End:    c.Start.Add(48 * time.Hour),
			}
		}
	}
	w.Ads = make([]*adstore.Ad, 0, c.Ads)
	w.adIndex = make(map[adstore.AdID]int, c.Ads)
	if c.RenderText {
		w.AdText = make(map[adstore.AdID]string, c.Ads)
	}
	for i := 0; i < c.Ads; i++ {
		topic := rng.Intn(c.Topics)
		terms := w.sampleTerms(rng, topic, c.AdTermCount)
		a := &adstore.Ad{
			ID:    adstore.AdID(i + 1),
			Vec:   vecFromTerms(terms),
			Slots: timeslot.AllSlots,
			Bid:   0.05 + 0.95*rng.Float64(),
		}
		if c.Campaigns > 0 {
			a.Campaign = w.Campaigns[i%c.Campaigns].Name
		}
		if rng.Float64() < c.SlotTargetingFrac {
			a.Slots = timeslot.NewSet(timeslot.Slot(rng.Intn(timeslot.NumSlots)))
		}
		if rng.Float64() < c.GlobalAdFrac {
			a.Global = true
		} else {
			home := w.Users[rng.Intn(len(w.Users))].Home
			a.Target = geo.Circle{Center: home, RadiusKm: c.AdRadiusKm * (0.5 + rng.Float64())}
		}
		w.adIndex[a.ID] = len(w.Ads)
		w.Ads = append(w.Ads, a)
		w.AdTopic[a.ID] = topic
		if c.RenderText {
			w.AdText[a.ID] = textFromTerms(terms)
		}
	}
	// Churn: the last AdChurnFrac of the ads are held back from the initial
	// load and arrive mid-stream (genEvents schedules the EventAddAd).
	nLate := int(float64(c.Ads) * c.AdChurnFrac)
	w.LateAds = make(map[adstore.AdID]bool, nLate)
	for _, a := range w.Ads[c.Ads-nLate:] {
		w.LateAds[a.ID] = true
	}
}

// sampleTerms draws n terms from a topic's Zipf distribution, in draw order.
func (w *Workload) sampleTerms(rng *rand.Rand, topic, n int) []textproc.TermID {
	terms := w.topicTerms[topic]
	z := rand.NewZipf(rng, w.Cfg.TermZipfS, 1, uint64(len(terms)-1))
	out := make([]textproc.TermID, n)
	for i := range out {
		out[i] = terms[z.Uint64()]
	}
	return out
}

// vecFromTerms builds the L2-normalized TF vector over a term draw.
func vecFromTerms(terms []textproc.TermID) textproc.SparseVector {
	vec := textproc.SparseVector{}
	for _, t := range terms {
		vec[t]++
	}
	vec.L2Normalize()
	return vec
}

// textFromTerms renders a term draw as deterministic tokens ("t0042 …") that
// survive the real tokenizer (alphanumeric, ≥ 2 runes, not pure digits), so
// text-driven replay indexes the same term multiset the vector carries.
func textFromTerms(terms []textproc.TermID) string {
	var b strings.Builder
	for i, t := range terms {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "t%04d", t)
	}
	return b.String()
}

// intensity is the diurnal posting-rate multiplier: afternoons are the
// busiest, mornings moderate, nights quiet. Higher multiplier → shorter
// inter-arrival gaps.
func intensity(t time.Time) float64 {
	switch timeslot.Of(t) {
	case timeslot.Morning:
		return 1.0
	case timeslot.Afternoon:
		return 1.8
	default:
		return 0.4
	}
}

func (w *Workload) genEvents(rng *rand.Rand) {
	c := w.Cfg
	// Author sampling proportional to activity.
	cum := make([]float64, len(w.Users))
	total := 0.0
	for i, u := range w.Users {
		total += u.Activity
		cum[i] = total
	}
	pickAuthor := func() int {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Churn schedule: held-back ads arrive evenly across the stream; a
	// deterministic sample of the initial ads is withdrawn, also evenly
	// spaced. Keyed by post index so the schedule rides the diurnal clock.
	addsAt := make(map[int][]adstore.AdID)
	if n := len(w.LateAds); n > 0 {
		late := w.Ads[c.Ads-n:]
		for k, a := range late {
			at := (k + 1) * c.Messages / (n + 1)
			addsAt[at] = append(addsAt[at], a.ID)
		}
	}
	removesAt := make(map[int][]adstore.AdID)
	nInit := c.Ads - len(w.LateAds)
	if nRemove := int(float64(nInit) * c.AdRemoveFrac); nRemove > 0 {
		victims := rng.Perm(nInit)[:nRemove]
		for k, vi := range victims {
			at := (k + 1) * c.Messages / (nRemove + 1)
			removesAt[at] = append(removesAt[at], w.Ads[vi].ID)
		}
	}
	// live tracks ads currently addressable by impressions.
	live := make([]adstore.AdID, 0, c.Ads)
	for _, a := range w.InitialAds() {
		live = append(live, a.ID)
	}

	now := c.Start
	w.Events = make([]Event, 0, c.Messages+c.Messages/max(1, c.CheckInEvery))
	var msgID feed.MessageID
	for i := 0; i < c.Messages; i++ {
		gap := time.Duration(float64(c.MeanGapMs)*rng.ExpFloat64()/intensity(now)) * time.Millisecond
		now = now.Add(gap)

		for _, id := range addsAt[i] {
			w.Events = append(w.Events, Event{Kind: EventAddAd, Time: now, Ad: id, Topic: -1})
			live = append(live, id)
		}
		for _, id := range removesAt[i] {
			w.Events = append(w.Events, Event{Kind: EventRemoveAd, Time: now, Ad: id, Topic: -1})
			for li, lid := range live {
				if lid == id {
					live = append(live[:li], live[li+1:]...)
					break
				}
			}
		}

		if c.CheckInEvery > 0 && i%c.CheckInEvery == 0 {
			ui := rng.Intn(len(w.Users))
			u := w.Users[ui]
			loc := geo.Point{
				Lat: clamp(u.Home.Lat+rng.NormFloat64()*c.SpreadDeg/3, c.Region.MinLat, c.Region.MaxLat),
				Lng: clamp(u.Home.Lng+rng.NormFloat64()*c.SpreadDeg/3, c.Region.MinLng, c.Region.MaxLng),
			}
			w.Events = append(w.Events, Event{
				Kind: EventCheckIn, Time: now, User: u.ID, Loc: loc, Topic: -1,
			})
		}

		ai := pickAuthor()
		author := w.Users[ai]
		topic := author.Interests[rng.Intn(len(author.Interests))]
		msgID++
		terms := w.sampleTerms(rng, topic, c.TermsPerMsg)
		msg := feed.Message{
			ID:     msgID,
			Author: author.ID,
			Time:   now,
			Vec:    vecFromTerms(terms),
		}
		ev := Event{
			Kind: EventPost, Time: now, User: author.ID, Msg: msg, Topic: topic,
		}
		if c.RenderText {
			ev.Text = textFromTerms(terms)
		}
		w.Events = append(w.Events, ev)

		if c.ImpressionEvery > 0 && i%c.ImpressionEvery == 0 && len(live) > 0 {
			id := live[rng.Intn(len(live))]
			w.Events = append(w.Events, Event{Kind: EventImpression, Time: now, Ad: id, Topic: -1})
		}
	}
}

// CloneAds returns deep copies of the generated ads, so that multiple engine
// instances can own private stores without sharing pointers.
func (w *Workload) CloneAds() []*adstore.Ad {
	out := make([]*adstore.Ad, len(w.Ads))
	for i, a := range w.Ads {
		cp := *a
		cp.Vec = a.Vec.Clone()
		out[i] = &cp
	}
	return out
}

// TopicURI renders a latent topic as a DBpedia-style URI for the TFCA
// pipeline.
func TopicURI(topic int) string {
	return fmt.Sprintf("topic://%03d", topic)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
