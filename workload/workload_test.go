package workload

import (
	"reflect"
	"testing"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/timeslot"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Users = 200
	c.Ads = 300
	c.Messages = 1000
	c.Topics = 10
	c.Vocab = 500
	c.TermsPerTopic = 40
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Events) != len(w2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(w1.Events), len(w2.Events))
	}
	for i := range w1.Events {
		a, b := w1.Events[i], w2.Events[i]
		if a.Kind != b.Kind || a.User != b.User || !a.Time.Equal(b.Time) || a.Topic != b.Topic {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
		if a.Kind == EventPost && !reflect.DeepEqual(a.Msg.Vec, b.Msg.Vec) {
			t.Fatalf("event %d message vectors differ", i)
		}
	}
	if w1.Graph.Edges() != w2.Graph.Edges() {
		t.Fatal("graphs differ")
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Users = 1 },
		func(c *Config) { c.Topics = 0 },
		func(c *Config) { c.Vocab = 10; c.TermsPerTopic = 40 },
		func(c *Config) { c.InterestsPerUser = 0 },
		func(c *Config) { c.InterestsPerUser = c.Topics + 1 },
		func(c *Config) { c.Ads = 0 },
		func(c *Config) { c.AdTermCount = 0 },
		func(c *Config) { c.Districts = 0 },
		func(c *Config) { c.TermsPerMsg = 0 },
		func(c *Config) { c.MeanGapMs = 0 },
	}
	for i, mut := range cases {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGeneratedAdsAreValid(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Ads) != 300 {
		t.Fatalf("ads = %d", len(w.Ads))
	}
	store := adstore.NewStore()
	for _, a := range w.Ads {
		if err := a.Validate(); err != nil {
			t.Fatalf("generated ad invalid: %v", err)
		}
		if err := store.Add(a); err != nil {
			t.Fatalf("store rejected generated ad: %v", err)
		}
		if _, ok := w.AdTopic[a.ID]; !ok {
			t.Fatalf("ad %d has no topic label", a.ID)
		}
	}
}

func TestGeneratedEventsOrderedAndInRegion(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	posts, checkins := 0, 0
	for i, e := range w.Events {
		if i > 0 && e.Time.Before(w.Events[i-1].Time) {
			t.Fatalf("event %d out of order", i)
		}
		switch e.Kind {
		case EventPost:
			posts++
			if len(e.Msg.Vec) == 0 {
				t.Fatalf("post %d has empty vector", i)
			}
			if e.Msg.Author != e.User {
				t.Fatalf("post %d author mismatch", i)
			}
			if e.Topic < 0 || e.Topic >= w.Cfg.Topics {
				t.Fatalf("post %d topic %d out of range", i, e.Topic)
			}
		case EventCheckIn:
			checkins++
			if !w.Cfg.Region.Contains(e.Loc) {
				t.Fatalf("check-in %d outside region: %v", i, e.Loc)
			}
		}
	}
	if posts != w.Cfg.Messages {
		t.Fatalf("posts = %d, want %d", posts, w.Cfg.Messages)
	}
	if checkins == 0 {
		t.Fatal("no check-ins generated")
	}
}

func TestGraphIsSkewed(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, maxFan := w.Graph.MaxFanout()
	avg := float64(w.Graph.Edges()) / float64(w.Cfg.Users)
	if float64(maxFan) < 3*avg {
		t.Fatalf("graph not skewed: max fan-out %d vs average %.1f", maxFan, avg)
	}
	if w.Graph.Users() != w.Cfg.Users {
		t.Fatalf("users = %d", w.Graph.Users())
	}
}

func TestPostsReflectInterests(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range w.Events {
		if e.Kind != EventPost {
			continue
		}
		u := w.Users[int(e.User)]
		found := false
		for _, topic := range u.Interests {
			if topic == e.Topic {
				found = true
			}
		}
		if !found {
			t.Fatalf("event %d: user %d posted about non-interest topic %d", i, e.User, e.Topic)
		}
	}
}

func TestOracleConsistentWithGeneration(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(w)
	for _, a := range w.Ads[:50] {
		topic := w.AdTopic[a.ID]
		for _, sl := range []timeslot.Slot{timeslot.Morning, timeslot.Afternoon, timeslot.Night} {
			users := o.InterestedUsers(a.ID, sl)
			if !a.Slots.Contains(sl) {
				if users != nil {
					t.Fatalf("ad %d: users returned for untargeted slot", a.ID)
				}
				continue
			}
			for _, u := range users {
				prof := w.Users[int(u)]
				ok := false
				for _, ti := range prof.Interests {
					if ti == topic {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("oracle labeled uninterested user %d for ad %d", u, a.ID)
				}
				if !a.Global && !a.Target.Contains(prof.Home) {
					t.Fatalf("oracle labeled out-of-range user %d for geo ad %d", u, a.ID)
				}
				if !o.IsInterested(u, a.ID, sl) {
					t.Fatalf("IsInterested inconsistent for %d/%d", u, a.ID)
				}
			}
		}
	}
	if o.InterestedUsers(99999, timeslot.Morning) != nil {
		t.Fatal("unknown ad should yield nil")
	}
}

func TestCloneAdsIndependent(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	clones := w.CloneAds()
	if len(clones) != len(w.Ads) {
		t.Fatal("clone count mismatch")
	}
	for term := range clones[0].Vec {
		clones[0].Vec[term] = 999
		if w.Ads[0].Vec[term] == 999 {
			t.Fatal("clone shares vector with original")
		}
		break
	}
}

func TestAfternoonBusierThanMorning(t *testing.T) {
	cfg := smallConfig()
	cfg.Messages = 5000
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[timeslot.Slot]int{}
	for _, e := range w.Events {
		if e.Kind == EventPost {
			counts[timeslot.Of(e.Time)]++
		}
	}
	// The diurnal intensity profile must make the afternoon slot denser per
	// wall-clock hour. Compare rates only when the stream spans both slots.
	if counts[timeslot.Morning] > 0 && counts[timeslot.Afternoon] > 0 {
		// Afternoon rate multiplier is 1.8× morning, so with spans of 8 h
		// and 7 h the afternoon count should clearly exceed when reached.
		if counts[timeslot.Afternoon] < counts[timeslot.Morning]/8 {
			t.Fatalf("afternoon unexpectedly sparse: %v", counts)
		}
	}
	if counts[timeslot.Morning] == 0 {
		t.Fatalf("stream never reached morning: %v", counts)
	}
}

func TestTopicURI(t *testing.T) {
	if TopicURI(7) != "topic://007" {
		t.Fatalf("TopicURI = %q", TopicURI(7))
	}
}

func TestFanoutDelivery(t *testing.T) {
	// Smoke-check the graph integrates with feed delivery semantics.
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var post *Event
	for i := range w.Events {
		if w.Events[i].Kind == EventPost {
			post = &w.Events[i]
			break
		}
	}
	if post == nil {
		t.Fatal("no posts")
	}
	followers := w.Graph.Followers(feed.UserID(post.User))
	for _, f := range followers {
		if f == post.User {
			t.Fatal("author in own follower list")
		}
	}
}
