package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"caar/internal/adstore"
	"caar/internal/feed"
	"caar/internal/geo"
	"caar/internal/textproc"
	"caar/internal/timeslot"
)

// Trace serialization: a workload as JSON lines (users, follow edges, ads,
// timestamped events), so generated benchmarks can be saved, inspected with
// standard tools, and replayed across processes. cmd/adgen writes this
// format; LoadTrace reads it back into a replayable Workload.

// TraceRecord is the JSONL envelope: exactly one payload field is set,
// discriminated by Type.
type TraceRecord struct {
	Type     string            `json:"type"` // "meta", "user", "edge", "campaign", "ad", "event"
	Meta     *TraceMeta        `json:"meta,omitempty"`
	User     *TraceUser        `json:"user,omitempty"`
	Edge     *TraceEdge        `json:"edge,omitempty"`
	Campaign *TraceCampaign    `json:"campaign,omitempty"`
	Ad       *TraceAd          `json:"ad,omitempty"`
	Event    *TraceEventRecord `json:"event,omitempty"`
}

// TraceMeta carries the workload-level parameters a replayer needs.
type TraceMeta struct {
	Seed      int64        `json:"seed"`
	Topics    int          `json:"topics"`
	Region    [4]float64   `json:"region"` // minLat, minLng, maxLat, maxLng
	Districts [][2]float64 `json:"districts"`
	Start     time.Time    `json:"start"`
}

// TraceUser is one user profile row.
type TraceUser struct {
	ID        uint32  `json:"id"`
	Interests []int   `json:"interests"`
	Lat       float64 `json:"lat"`
	Lng       float64 `json:"lng"`
	District  int     `json:"district"`
	Activity  float64 `json:"activity"`
}

// TraceEdge is one follow edge (follower receives followee's posts).
type TraceEdge struct {
	Follower uint32 `json:"follower"`
	Followee uint32 `json:"followee"`
}

// TraceCampaign is one advertiser budget row.
type TraceCampaign struct {
	Name   string    `json:"name"`
	Budget float64   `json:"budget"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// TraceAd is one advertisement row.
type TraceAd struct {
	ID       int64              `json:"id"`
	Topic    int                `json:"topic"`
	Bid      float64            `json:"bid"`
	Global   bool               `json:"global"`
	Lat      float64            `json:"lat,omitempty"`
	Lng      float64            `json:"lng,omitempty"`
	RadiusKm float64            `json:"radius_km,omitempty"`
	Slots    []string           `json:"slots,omitempty"`
	Terms    map[uint32]float64 `json:"terms"`
	Campaign string             `json:"campaign,omitempty"`
	Text     string             `json:"text,omitempty"`
	Late     bool               `json:"late,omitempty"` // arrives mid-stream via add_ad
}

// TraceEventRecord is one stream event row.
type TraceEventRecord struct {
	Kind  string             `json:"kind"` // "post", "checkin", "add_ad", "remove_ad", "impression"
	At    time.Time          `json:"at"`
	User  uint32             `json:"user,omitempty"`
	MsgID int64              `json:"msg_id,omitempty"`
	Topic int                `json:"topic,omitempty"`
	Terms map[uint32]float64 `json:"terms,omitempty"`
	Lat   float64            `json:"lat,omitempty"`
	Lng   float64            `json:"lng,omitempty"`
	AdID  int64              `json:"ad_id,omitempty"`
	Text  string             `json:"text,omitempty"`
}

// ExportTrace writes the workload as JSON lines: one meta row, then users,
// edges, ads, and events in stream order.
func (w *Workload) ExportTrace(out io.Writer) error {
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	emit := func(rec TraceRecord) error {
		return enc.Encode(rec)
	}

	meta := TraceMeta{
		Seed:   w.Cfg.Seed,
		Topics: w.Cfg.Topics,
		Region: [4]float64{w.Cfg.Region.MinLat, w.Cfg.Region.MinLng, w.Cfg.Region.MaxLat, w.Cfg.Region.MaxLng},
		Start:  w.Cfg.Start,
	}
	for _, d := range w.DistrictCenters {
		meta.Districts = append(meta.Districts, [2]float64{d.Lat, d.Lng})
	}
	if err := emit(TraceRecord{Type: "meta", Meta: &meta}); err != nil {
		return err
	}

	for _, u := range w.Users {
		if err := emit(TraceRecord{Type: "user", User: &TraceUser{
			ID: uint32(u.ID), Interests: u.Interests,
			Lat: u.Home.Lat, Lng: u.Home.Lng, District: u.District, Activity: u.Activity,
		}}); err != nil {
			return err
		}
	}
	for _, u := range w.Users {
		for _, f := range w.Graph.Followers(u.ID) {
			if err := emit(TraceRecord{Type: "edge", Edge: &TraceEdge{
				Follower: uint32(f), Followee: uint32(u.ID),
			}}); err != nil {
				return err
			}
		}
	}
	for _, c := range w.Campaigns {
		if err := emit(TraceRecord{Type: "campaign", Campaign: &TraceCampaign{
			Name: c.Name, Budget: c.Budget, Start: c.Start, End: c.End,
		}}); err != nil {
			return err
		}
	}
	for _, a := range w.Ads {
		rec := TraceAd{
			ID: int64(a.ID), Topic: w.AdTopic[a.ID], Bid: a.Bid, Global: a.Global,
			Terms: vecToMap(a.Vec), Campaign: a.Campaign,
			Text: w.AdText[a.ID], Late: w.LateAds[a.ID],
		}
		if !a.Global {
			rec.Lat, rec.Lng, rec.RadiusKm = a.Target.Center.Lat, a.Target.Center.Lng, a.Target.RadiusKm
		}
		for _, sl := range a.Slots.Slots() {
			rec.Slots = append(rec.Slots, sl.String())
		}
		if err := emit(TraceRecord{Type: "ad", Ad: &rec}); err != nil {
			return err
		}
	}
	for _, ev := range w.Events {
		var rec TraceEventRecord
		switch ev.Kind {
		case EventPost:
			rec = TraceEventRecord{
				Kind: "post", At: ev.Time, User: uint32(ev.User),
				MsgID: int64(ev.Msg.ID), Topic: ev.Topic, Terms: vecToMap(ev.Msg.Vec),
				Text: ev.Text,
			}
		case EventCheckIn:
			rec = TraceEventRecord{
				Kind: "checkin", At: ev.Time, User: uint32(ev.User),
				Lat: ev.Loc.Lat, Lng: ev.Loc.Lng,
			}
		case EventAddAd:
			rec = TraceEventRecord{Kind: "add_ad", At: ev.Time, AdID: int64(ev.Ad)}
		case EventRemoveAd:
			rec = TraceEventRecord{Kind: "remove_ad", At: ev.Time, AdID: int64(ev.Ad)}
		case EventImpression:
			rec = TraceEventRecord{Kind: "impression", At: ev.Time, AdID: int64(ev.Ad)}
		}
		if err := emit(TraceRecord{Type: "event", Event: &rec}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func vecToMap(v textproc.SparseVector) map[uint32]float64 {
	out := make(map[uint32]float64, len(v))
	for term, wgt := range v {
		out[uint32(term)] = wgt
	}
	return out
}

func mapToVec(m map[uint32]float64) textproc.SparseVector {
	out := make(textproc.SparseVector, len(m))
	for term, wgt := range m {
		out[textproc.TermID(term)] = wgt
	}
	return out
}

// LoadTrace reads a JSONL trace back into a Workload. The resulting
// workload replays identically through the experiment driver and supports
// the oracle (interests and ad topics are preserved).
func LoadTrace(in io.Reader) (*Workload, error) {
	w := &Workload{
		Graph:   feed.NewGraph(),
		AdTopic: make(map[adstore.AdID]int),
		LateAds: make(map[adstore.AdID]bool),
		adIndex: make(map[adstore.AdID]int),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	sawMeta := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		switch rec.Type {
		case "meta":
			if rec.Meta == nil {
				return nil, fmt.Errorf("workload: trace line %d: meta without payload", line)
			}
			sawMeta = true
			w.Cfg.Seed = rec.Meta.Seed
			w.Cfg.Topics = rec.Meta.Topics
			w.Cfg.Region = geo.Rect{
				MinLat: rec.Meta.Region[0], MinLng: rec.Meta.Region[1],
				MaxLat: rec.Meta.Region[2], MaxLng: rec.Meta.Region[3],
			}
			w.Cfg.Start = rec.Meta.Start
			for _, d := range rec.Meta.Districts {
				w.DistrictCenters = append(w.DistrictCenters, geo.Point{Lat: d[0], Lng: d[1]})
			}
		case "user":
			u := rec.User
			if u == nil {
				return nil, fmt.Errorf("workload: trace line %d: user without payload", line)
			}
			if int(u.ID) != len(w.Users) {
				return nil, fmt.Errorf("workload: trace line %d: user IDs must be dense and ordered (got %d, want %d)",
					line, u.ID, len(w.Users))
			}
			w.Users = append(w.Users, User{
				ID:        feed.UserID(u.ID),
				Interests: u.Interests,
				Home:      geo.Point{Lat: u.Lat, Lng: u.Lng},
				District:  u.District,
				Activity:  u.Activity,
			})
			w.Graph.AddUser(feed.UserID(u.ID))
		case "edge":
			e := rec.Edge
			if e == nil {
				return nil, fmt.Errorf("workload: trace line %d: edge without payload", line)
			}
			if err := w.Graph.Follow(feed.UserID(e.Follower), feed.UserID(e.Followee)); err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
			}
		case "campaign":
			c := rec.Campaign
			if c == nil {
				return nil, fmt.Errorf("workload: trace line %d: campaign without payload", line)
			}
			w.Campaigns = append(w.Campaigns, CampaignSpec{
				Name: c.Name, Budget: c.Budget, Start: c.Start, End: c.End,
			})
		case "ad":
			a := rec.Ad
			if a == nil {
				return nil, fmt.Errorf("workload: trace line %d: ad without payload", line)
			}
			ad := &adstore.Ad{
				ID:       adstore.AdID(a.ID),
				Vec:      mapToVec(a.Terms),
				Bid:      a.Bid,
				Global:   a.Global,
				Campaign: a.Campaign,
			}
			if !a.Global {
				ad.Target = geo.Circle{Center: geo.Point{Lat: a.Lat, Lng: a.Lng}, RadiusKm: a.RadiusKm}
			}
			if len(a.Slots) == 0 {
				ad.Slots = timeslot.AllSlots
			} else {
				for _, name := range a.Slots {
					sl, ok := slotByName(name)
					if !ok {
						return nil, fmt.Errorf("workload: trace line %d: unknown slot %q", line, name)
					}
					ad.Slots |= timeslot.NewSet(sl)
				}
			}
			if err := ad.Validate(); err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
			}
			w.adIndex[ad.ID] = len(w.Ads)
			w.Ads = append(w.Ads, ad)
			w.AdTopic[ad.ID] = a.Topic
			if a.Late {
				w.LateAds[ad.ID] = true
			}
			if a.Text != "" {
				if w.AdText == nil {
					w.AdText = make(map[adstore.AdID]string)
				}
				w.AdText[ad.ID] = a.Text
			}
		case "event":
			ev := rec.Event
			if ev == nil {
				return nil, fmt.Errorf("workload: trace line %d: event without payload", line)
			}
			switch ev.Kind {
			case "post":
				w.Events = append(w.Events, Event{
					Kind: EventPost, Time: ev.At, User: feed.UserID(ev.User), Topic: ev.Topic,
					Text: ev.Text,
					Msg: feed.Message{
						ID:     feed.MessageID(ev.MsgID),
						Author: feed.UserID(ev.User),
						Time:   ev.At,
						Vec:    mapToVec(ev.Terms),
					},
				})
			case "checkin":
				w.Events = append(w.Events, Event{
					Kind: EventCheckIn, Time: ev.At, User: feed.UserID(ev.User),
					Loc: geo.Point{Lat: ev.Lat, Lng: ev.Lng}, Topic: -1,
				})
			case "add_ad":
				w.Events = append(w.Events, Event{Kind: EventAddAd, Time: ev.At, Ad: adstore.AdID(ev.AdID), Topic: -1})
			case "remove_ad":
				w.Events = append(w.Events, Event{Kind: EventRemoveAd, Time: ev.At, Ad: adstore.AdID(ev.AdID), Topic: -1})
			case "impression":
				w.Events = append(w.Events, Event{Kind: EventImpression, Time: ev.At, Ad: adstore.AdID(ev.AdID), Topic: -1})
			default:
				return nil, fmt.Errorf("workload: trace line %d: unknown event kind %q", line, ev.Kind)
			}
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace read: %w", err)
	}
	if !sawMeta {
		return nil, fmt.Errorf("workload: trace has no meta record")
	}
	return w, nil
}

func slotByName(name string) (timeslot.Slot, bool) {
	switch name {
	case "night":
		return timeslot.Night, true
	case "morning":
		return timeslot.Morning, true
	case "afternoon":
		return timeslot.Afternoon, true
	default:
		return 0, false
	}
}
