GO ?= go

.PHONY: all check vet staticcheck build test race bench bench-smoke clean

all: check

# check is the full pre-merge gate: static analysis, compilation of every
# package, and the test suite under the race detector.
check: vet staticcheck build race

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools checks when the binary is on PATH and
# skips gracefully when it is not, so the gate works in minimal containers
# without network access to install it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-smoke runs the same workload twice — flight recorder off, then
# capturing every request — and fails if the /v1/metrics scrape is empty,
# if the traced phase captured no traces, or if full-rate tracing grew the
# recommend p99 by more than 10%.
bench-smoke:
	$(GO) run ./cmd/adbench -serve-bench 5s -bench-out BENCH_PR3.json

clean:
	$(GO) clean ./...
