GO ?= go

.PHONY: all check vet staticcheck build test race bench bench-smoke bench-contention clean

all: check

# check is the full pre-merge gate: static analysis, compilation of every
# package, and the test suite under the race detector.
check: vet staticcheck build race

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools checks when the binary is on PATH and
# skips gracefully when it is not, so the gate works in minimal containers
# without network access to install it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers every package under the race detector; the root package and
# internal/core carry the concurrency-sensitive paths (COW directory swaps,
# shard locking, dynBuf aging) and their stress tests.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-smoke runs the same workload twice — flight recorder off, then
# capturing every request — and fails if the /v1/metrics scrape is empty,
# if the traced phase captured no traces, or if full-rate tracing grew the
# recommend p99 by more than 10%.
bench-smoke:
	$(GO) run ./cmd/adbench -serve-bench 5s -bench-out BENCH_PR3.json

# bench-contention drives parallel Recommend workers against a live engine
# while a writer churns AddAd/RemoveAd, at 1/4/8 workers, and writes the
# per-phase throughput, exact latency quantiles, and speedup-vs-1-worker to
# BENCH_PR4.json.
bench-contention:
	$(GO) run ./cmd/adbench -contention 6s -contention-out BENCH_PR4.json

clean:
	$(GO) clean ./...
