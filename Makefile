GO ?= go

# staticcheck is pinned so CI and laptops agree on the finding set; bump
# deliberately, with a pass over any new findings.
STATICCHECK_VERSION ?= 2025.1

CAARLINT := bin/caarlint

# The full analyzer suite, in the order cmd/caarlint registers it. Used by
# the per-analyzer finding summary below; keep in sync with
# tools/cmd/caarlint/main.go (`caarlint -list` prints the same set).
CAARLINT_ANALYZERS := cowmut readpathlock metricname fsyncrename errstatus lockorder goroutinelife atomicfield batchalias

.PHONY: all check lint vet staticcheck caarlint tools-test build test race race-matrix fuzz-smoke bench bench-smoke bench-contention bench-hot bench-ingest hot-smoke ingest-smoke soak-smoke capture-smoke bench-diff clean

all: check

# check is the full pre-merge gate: static analysis (go vet, staticcheck,
# the project's own caarlint suite), compilation of every package, the test
# suite under the race detector, and the hot-key and ingest smoke drills.
check: lint build race hot-smoke ingest-smoke

# lint folds the three static-analysis layers into one gate.
lint: vet staticcheck caarlint

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools checks when the binary is on PATH and
# skips gracefully when it is not, so the gate works in minimal containers
# without network access to install it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# caarlint builds the project's go/analysis suite (tools/ is a nested module
# so the x/tools dependency stays out of the main module) and runs it over
# the tree through go vet's -vettool protocol. The analyzers enforce the
# invariants DESIGN.md documents under "Enforced invariants": COW snapshot
# immutability, read-path lock-freedom, metric naming, fsync-before-rename,
# and the error→status table.
# Every diagnostic message carries its analyzer name as a "name: " prefix,
# so the summary is a plain grep over the vet output. The target fails iff
# go vet failed; the summary is printed either way.
caarlint: $(CAARLINT)
	@out=$$($(GO) vet -vettool=$(CAARLINT) ./... 2>&1); status=$$?; \
	if [ -n "$$out" ]; then printf '%s\n' "$$out"; fi; \
	echo "caarlint: findings per analyzer:"; \
	for a in $(CAARLINT_ANALYZERS); do \
		n=$$(printf '%s\n' "$$out" | grep -c ": $$a: "); \
		printf '  %-14s %s\n' "$$a" "$$n"; \
	done; \
	exit $$status

$(CAARLINT): $(wildcard tools/caarlint/*/*.go tools/cmd/caarlint/*.go)
	cd tools && $(GO) build -o ../$(CAARLINT) ./cmd/caarlint

# tools-test runs the analyzer suite's own golden tests (fixtures under
# tools/caarlint/testdata/src, driven by the internal atest harness).
tools-test:
	cd tools && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers every package under the race detector; the root package and
# internal/core carry the concurrency-sensitive paths (COW directory swaps,
# shard locking, dynBuf aging) and their stress tests.
race:
	$(GO) test -race ./...

# race-matrix is the concurrency gate: the full test suite plus the three
# end-to-end smokes, all race-built with GORACE=halt_on_error=1 so the
# first data race aborts the run, and all with the caarlockwatch build tag
# plus CAAR_LOCKWATCH armed so any mutex held past the bound dumps every
# goroutine stack (CAAR_LOCKWATCH_OUT, default lockwatch-stacks.txt) and
# panics instead of hanging CI. The tag also compiles in the watchdog's own
# trip/release/disarm tests, which plain `make race` skips.
race-matrix: export GORACE = halt_on_error=1
race-matrix: export CAAR_LOCKWATCH = 5s
race-matrix:
	$(GO) test -race -tags caarlockwatch ./...
	$(GO) run -race -tags caarlockwatch ./cmd/adbench -ingest-smoke
	$(GO) run -race -tags caarlockwatch ./cmd/adbench -hot-smoke
	$(GO) build -race -tags caarlockwatch -o bin/adserver ./cmd/adserver
	$(GO) build -race -tags caarlockwatch -o bin/adsoak ./cmd/adsoak
	./bin/adsoak -server-bin bin/adserver -addr 127.0.0.1:9785 \
		-users 80 -ads 200 -messages 2500 -events-per-cycle 150 \
		-kills 3 -out BENCH_SOAK_RACE.json

# fuzz-smoke gives each fuzz target a short budget — enough to catch a
# regression in the journal frame decoder, crash recovery, or the request
# parsers without holding up the gate.
fuzz-smoke:
	$(GO) test ./journal/ -fuzz FuzzDecodeLine -fuzztime 10s -run '^$$'
	$(GO) test ./journal/ -fuzz FuzzRecoverTornTail -fuzztime 10s -run '^$$'
	$(GO) test ./journal/ -fuzz FuzzAppendBatchRecover -fuzztime 10s -run '^$$'
	$(GO) test ./internal/server/ -fuzz FuzzSanitizeRequestID -fuzztime 10s -run '^$$'
	$(GO) test ./internal/server/ -fuzz FuzzParsePolicy -fuzztime 10s -run '^$$'
	$(GO) test ./internal/sketch/ -fuzz FuzzCountMinEstimate -fuzztime 10s -run '^$$'
	$(GO) test ./internal/sketch/ -fuzz FuzzWindowedDecay -fuzztime 10s -run '^$$'

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-smoke runs the same workload twice — flight recorder off, then
# capturing every request — and fails if the /v1/metrics scrape is empty,
# if the traced phase captured no traces, or if full-rate tracing grew the
# recommend p99 by more than 10%.
bench-smoke:
	$(GO) run ./cmd/adbench -serve-bench 5s -bench-out BENCH_PR3.json

# soak-smoke is the crash-recovery soak in its CI-sized configuration: both
# binaries built with the race detector, 3 random SIGKILL cycles plus the 3
# named crash points (journal pre-fsync, snapshot post-fsync-pre-rename,
# journal mid-replay), every restart machine-checked against the client-side
# ack ledger, and the double-replay self-test at the end. Exits non-zero if
# any invariant fails; writes BENCH_SOAK.json. Runs in well under a minute.
soak-smoke:
	$(GO) build -race -o bin/adserver ./cmd/adserver
	$(GO) build -race -o bin/adsoak ./cmd/adsoak
	./bin/adsoak -server-bin bin/adserver -addr 127.0.0.1:9784 \
		-users 80 -ads 200 -messages 2500 -events-per-cycle 150 \
		-kills 3 -out BENCH_SOAK.json

# bench-contention drives parallel Recommend workers against a live engine
# while a writer churns AddAd/RemoveAd, at 1/4/8 workers, and writes the
# per-phase throughput, exact latency quantiles, and speedup-vs-1-worker to
# BENCH_PR4.json.
bench-contention:
	$(GO) run ./cmd/adbench -contention 6s -contention-out BENCH_PR4.json

# bench-hot measures what always-on hot-key telemetry costs the serving
# path: the same ABBA-interleaved workload with tracking disabled vs enabled
# (live aggregator goroutine), gated at 5% recommend-p99 growth. Also
# verifies the hot-on phase's /v1/hot names the workload's hot keys. Writes
# BENCH_PR8.json.
bench-hot:
	$(GO) run ./cmd/adbench -hot-bench 6s -hot-out BENCH_PR8.json

# bench-ingest measures what group commit buys the write path: synchronous
# journaled posts (one fsync each) vs the batched ingest pipeline (one fsync
# per group commit), both on real files with -fsync always. Gated at 2x
# posts/s, 5x fewer fsyncs per post with a mean batch of at least 8, and
# at most 10% recommend-p99 growth under a matched paced write load. Writes
# BENCH_PR9.json.
bench-ingest:
	$(GO) run ./cmd/adbench -ingest-bench 6s -ingest-out BENCH_PR9.json

# ingest-smoke is the end-to-end backpressure drill, race-built: a live
# server with a deliberately tiny ingest ring behind a slow journal must
# shed part of a concurrent burst with 429 + Retry-After, land every shed
# post on client-style retry, account for every ack in /v1/invariants after
# the pipeline drains, and replay the journal to the same state.
ingest-smoke:
	$(GO) run -race ./cmd/adbench -ingest-smoke

# hot-smoke is the end-to-end /v1/hot drill, race-built: a live server with
# a planted celebrity poster and hot consumer must name both through
# /v1/hot and export the caar_hot_* metric families.
hot-smoke:
	$(GO) run -race ./cmd/adbench -hot-smoke

# capture-smoke proves the incident pipeline end to end: arms the
# serving-path delay fault, drives load until the SLO burn-rate watchdog
# trips, and fails unless the resulting capture bundle holds a CPU profile
# in which the injected delay site is attributable. Writes
# BENCH_CAPTURE_SMOKE.json and keeps the bundle under capture-smoke/ so CI
# can upload it.
capture-smoke:
	$(GO) run ./cmd/adbench -capture-smoke -capture-smoke-dir capture-smoke

# bench-diff compares the checked-in benchmark artifacts across PRs and
# writes BENCH_TRAJECTORY.json. The four files come from different harnesses
# (and, for checked-in baselines, different hardware), so consecutive pairs
# are cross-kind and reported informationally; regenerate a same-kind pair
# (e.g. two -contention runs) to get a gated verdict with the default 10%
# budget.
bench-diff:
	$(GO) run ./cmd/benchdiff -out BENCH_TRAJECTORY.json \
		BENCH_PR2.json BENCH_PR3.json BENCH_PR4.json BENCH_SOAK.json BENCH_PR8.json BENCH_PR9.json

clean:
	$(GO) clean ./...
	rm -f $(CAARLINT)
