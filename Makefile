GO ?= go

.PHONY: all check vet build test race bench bench-smoke clean

all: check

# check is the full pre-merge gate: static analysis, compilation of every
# package, and the test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-smoke drives an in-process HTTP server for 5 seconds and fails if
# the /v1/metrics scrape afterwards is empty — a fast end-to-end check
# that the observability wiring survived whatever you just changed.
bench-smoke:
	$(GO) run ./cmd/adbench -serve-bench 5s -bench-out BENCH_PR2.json

clean:
	$(GO) clean ./...
