GO ?= go

.PHONY: all check vet build test race bench clean

all: check

# check is the full pre-merge gate: static analysis, compilation of every
# package, and the test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
