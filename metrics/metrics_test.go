package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEvaluateSets(t *testing.T) {
	r := EvaluateSets([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if r.TruePositives != 2 || r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Fatalf("Retrieval = %+v", r)
	}
	if math.Abs(r.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("Precision = %v", r.Precision())
	}
	if math.Abs(r.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("Recall = %v", r.Recall())
	}
	if math.Abs(r.FScore()-2.0/3) > 1e-12 {
		t.Fatalf("FScore = %v", r.FScore())
	}
}

func TestEvaluateSetsEdgeCases(t *testing.T) {
	// Both empty: perfect by convention.
	r := EvaluateSets[string](nil, nil)
	if r.Precision() != 1 || r.Recall() != 1 {
		t.Fatalf("empty/empty: %+v p=%v r=%v", r, r.Precision(), r.Recall())
	}
	// Nothing retrieved, something relevant.
	r = EvaluateSets(nil, []string{"a"})
	if r.Precision() != 0 || r.Recall() != 0 || r.FScore() != 0 {
		t.Fatalf("miss-all: p=%v r=%v f=%v", r.Precision(), r.Recall(), r.FScore())
	}
	// Retrieved junk, nothing relevant.
	r = EvaluateSets([]string{"a"}, nil)
	if r.Precision() != 0 || r.Recall() != 1 {
		t.Fatalf("junk: p=%v r=%v", r.Precision(), r.Recall())
	}
	// Duplicates in retrieved count once.
	r = EvaluateSets([]string{"a", "a", "b"}, []string{"a"})
	if r.TruePositives != 1 || r.FalsePositives != 1 {
		t.Fatalf("dup handling: %+v", r)
	}
}

func TestRetrievalMerge(t *testing.T) {
	a := Retrieval{1, 2, 3}
	a.Merge(Retrieval{10, 20, 30})
	if a != (Retrieval{11, 22, 33}) {
		t.Fatalf("Merge = %+v", a)
	}
}

func TestFScoreBoundsProperty(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		r := Retrieval{int(tp), int(fp), int(fn)}
		f1 := r.FScore()
		if f1 < 0 || f1 > 1 {
			return false
		}
		// F1 is between min and max of precision and recall.
		p, rec := r.Precision(), r.Recall()
		lo, hi := math.Min(p, rec), math.Max(p, rec)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistBasics(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero hist not zero")
	}
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(-time.Second) // clamps to 0
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 2*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
	if !strings.Contains(h.String(), "n=3") {
		t.Fatalf("String = %q", h.String())
	}
}

func TestLatencyHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var h LatencyHist
	var samples []time.Duration
	for i := 0; i < 20000; i++ {
		// log-uniform between 1µs and 100ms
		exp := rng.Float64() * 5
		d := time.Duration(float64(time.Microsecond) * math.Pow(10, exp))
		h.Observe(d)
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		ratio := float64(got) / float64(exact)
		if ratio < 0.90 || ratio > 1.10 {
			t.Fatalf("q=%v: hist %v vs exact %v (ratio %.3f)", q, got, exact, ratio)
		}
	}
	// Quantile clamping.
	if h.Quantile(-1) > h.Quantile(0) || h.Quantile(2) < h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b LatencyHist
	a.Observe(time.Millisecond)
	b.Observe(10 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Max() != 10*time.Millisecond {
		t.Fatalf("after merge: %v", a.String())
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Events: 1000, Elapsed: 2 * time.Second}
	if tp.PerSecond() != 500 {
		t.Fatalf("PerSecond = %v", tp.PerSecond())
	}
	if (Throughput{Events: 5}).PerSecond() != 0 {
		t.Fatal("zero elapsed should be 0")
	}
	if !strings.Contains(tp.String(), "500.0 ev/s") {
		t.Fatalf("String = %q", tp.String())
	}
}

func TestSeriesTable(t *testing.T) {
	a := Series{Name: "CAP"}
	a.Add(1, 100)
	a.Add(2, 200)
	b := Series{Name: "RS"}
	b.Add(1, 10)
	// b has no point at x=2: rendered as "-".
	out := Table("ads", a, b)
	if !strings.Contains(out, "CAP") || !strings.Contains(out, "RS") {
		t.Fatalf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table rows = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "-") {
		t.Fatalf("missing gap marker:\n%s", out)
	}
}
