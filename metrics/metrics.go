// Package metrics provides the evaluation instrumentation of the
// reproduction: set-retrieval quality (precision / recall / F-score),
// latency histograms with quantile readout, and throughput meters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Retrieval holds the confusion counts of one set-retrieval evaluation.
type Retrieval struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// EvaluateSets compares a retrieved set against a relevant (ground-truth)
// set. Both are identified by comparable keys.
func EvaluateSets[K comparable](retrieved, relevant []K) Retrieval {
	rel := make(map[K]bool, len(relevant))
	for _, k := range relevant {
		rel[k] = true
	}
	got := make(map[K]bool, len(retrieved))
	var r Retrieval
	for _, k := range retrieved {
		if got[k] {
			continue // duplicates count once
		}
		got[k] = true
		if rel[k] {
			r.TruePositives++
		} else {
			r.FalsePositives++
		}
	}
	for k := range rel {
		if !got[k] {
			r.FalseNegatives++
		}
	}
	return r
}

// Precision returns TP/(TP+FP); by convention 0 when nothing was retrieved
// and something was relevant, and 1 when both sides are empty.
func (r Retrieval) Precision() float64 {
	den := r.TruePositives + r.FalsePositives
	if den == 0 {
		if r.FalseNegatives == 0 {
			return 1
		}
		return 0
	}
	return float64(r.TruePositives) / float64(den)
}

// Recall returns TP/(TP+FN); by convention 1 when nothing was relevant.
func (r Retrieval) Recall() float64 {
	den := r.TruePositives + r.FalseNegatives
	if den == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(den)
}

// FScore returns the harmonic mean of precision and recall (F1), 0 when
// both are 0.
func (r Retrieval) FScore() float64 {
	p, rec := r.Precision(), r.Recall()
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// Merge accumulates another evaluation's counts (micro-averaging).
func (r *Retrieval) Merge(o Retrieval) {
	r.TruePositives += o.TruePositives
	r.FalsePositives += o.FalsePositives
	r.FalseNegatives += o.FalseNegatives
}

// LatencyHist is a log-bucketed latency histogram in the HDR style: fixed
// memory, ~4% relative bucket width, exact count and sum. The zero value is
// ready to use. Not safe for concurrent use.
type LatencyHist struct {
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// Bucket layout: bucket i covers [base·g^i, base·g^(i+1)) with base = 100 ns
// and growth g = 2^(1/16) ≈ 1.044, spanning 100 ns .. ~53 s in 460 buckets.
const (
	bucketCount = 460
	baseLatency = 100 * time.Nanosecond
)

var bucketGrowth = math.Pow(2, 1.0/16)

func bucketOf(d time.Duration) int {
	if d < baseLatency {
		return 0
	}
	i := int(math.Log(float64(d)/float64(baseLatency)) / math.Log(bucketGrowth))
	if i < 0 {
		i = 0
	}
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return i
}

// bucketLower returns the lower bound of bucket i.
func bucketLower(i int) time.Duration {
	return time.Duration(float64(baseLatency) * math.Pow(bucketGrowth, float64(i)))
}

// Observe records one latency sample. Negative durations are clamped to 0.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Mean returns the exact mean latency (0 with no samples).
func (h *LatencyHist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the exact maximum observed latency.
func (h *LatencyHist) Max() time.Duration { return h.max }

// Quantile returns the latency at quantile q ∈ [0, 1], accurate to the
// bucket width (~4%). Returns 0 with no samples.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count-1))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return bucketLower(i)
		}
	}
	return h.max
}

// String summarizes the histogram as "n=… mean=… p50=… p99=… max=…".
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Merge accumulates another histogram's samples.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Throughput measures events per second over a measured interval.
type Throughput struct {
	Events  uint64
	Elapsed time.Duration
}

// PerSecond returns events per second (0 for a zero interval).
func (t Throughput) PerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Events) / t.Elapsed.Seconds()
}

// String renders like "12345.6 ev/s (n=100000 in 8.1s)".
func (t Throughput) String() string {
	return fmt.Sprintf("%.1f ev/s (n=%d in %v)", t.PerSecond(), t.Events, t.Elapsed.Round(time.Millisecond))
}

// Series is a labeled (x, y) sequence used by the experiment harness to
// print figure data as aligned text tables.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Table renders multiple series sharing the same X values as an aligned
// text table with one row per X and one column per series — the harness's
// "figure" output format.
func Table(xLabel string, series ...Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	out := fmt.Sprintf("%-14s", xLabel)
	for _, s := range series {
		out += fmt.Sprintf("%18s", s.Name)
	}
	out += "\n"
	for _, x := range sorted {
		out += fmt.Sprintf("%-14.4g", x)
		for _, s := range series {
			y, ok := lookupX(s, x)
			if ok {
				out += fmt.Sprintf("%18.4f", y)
			} else {
				out += fmt.Sprintf("%18s", "-")
			}
		}
		out += "\n"
	}
	return out
}

func lookupX(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
