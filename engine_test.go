package caar

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caar/internal/core"
	"caar/internal/feed"
)

var morning = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DecayHalfLife = 30 * time.Minute
	cfg.WindowSize = 8
	return cfg
}

func openEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOpenValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithm = "MAGIC"
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad algorithm: %v", err)
	}
	cfg = testConfig()
	cfg.Region = Region{MinLat: 5, MaxLat: 1}
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad region: %v", err)
	}
	cfg = testConfig()
	cfg.ContinuousK = 3 // no callback
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("continuous without callback: %v", err)
	}
	cfg = testConfig()
	cfg.WindowSize = 0
	if _, err := Open(cfg); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestEndToEndRecommendation(t *testing.T) {
	e := openEngine(t, testConfig())
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := e.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Follow("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "shoes", Text: "marathon running shoes with cushioned sole", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "pizza", Text: "fresh pizza delivered hot tonight", Bid: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := e.Post("bob", "great marathon today, my running shoes held up", morning); err != nil {
		t.Fatal(err)
	}

	recs, err := e.Recommend("alice", 2, morning)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].AdID != "shoes" {
		t.Fatalf("recs = %+v, want shoes first", recs)
	}
	if recs[0].Text <= recs[1].Text {
		t.Fatalf("shoes should win on text: %+v", recs)
	}
	// carol follows nobody: her feed is empty, ranking is bid-only ties.
	recs, err = e.Recommend("carol", 2, morning)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Text != 0 {
			t.Fatalf("carol has no feed, text must be 0: %+v", r)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	if err := e.AddUser("alice"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup user: %v", err)
	}
	if err := e.AddUser(""); err == nil {
		t.Fatal("empty handle accepted")
	}
	if err := e.Follow("alice", "ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("follow ghost: %v", err)
	}
	if err := e.Post("ghost", "hi", morning); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("post as ghost: %v", err)
	}
	if _, err := e.Recommend("ghost", 3, morning); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("recommend ghost: %v", err)
	}
	if _, err := e.Recommend("alice", 0, morning); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("k=0: %v", err)
	}
	if err := e.AddAd(Ad{ID: "", Text: "x y z", Bid: 0.5}); err == nil {
		t.Fatal("empty ad ID accepted")
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "the of and", Bid: 0.5}); err == nil {
		t.Fatal("stopword-only ad accepted")
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "great sneakers", Bid: 0}); err == nil {
		t.Fatal("zero bid accepted")
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "great sneakers", Bid: 0.5, Slots: []Slot{"brunch"}}); err == nil {
		t.Fatal("unknown slot accepted")
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "great sneakers", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "a1", Text: "more sneakers", Bid: 0.5}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup ad: %v", err)
	}
	if err := e.RemoveAd("nope"); !errors.Is(err, ErrUnknownAd) {
		t.Fatalf("remove unknown: %v", err)
	}
	if _, err := e.ServeImpression("nope", morning); !errors.Is(err, ErrUnknownAd) {
		t.Fatalf("serve unknown: %v", err)
	}
	if err := e.CheckIn("alice", 99, 0, morning); err == nil {
		t.Fatal("out-of-region check-in accepted")
	}
}

func TestFailedAdDoesNotLeakID(t *testing.T) {
	e := openEngine(t, testConfig())
	if err := e.AddAd(Ad{ID: "bad", Text: "sneakers", Bid: 2}); err == nil {
		t.Fatal("bid 2 accepted")
	}
	// The name must be reusable after the failed insert.
	if err := e.AddAd(Ad{ID: "bad", Text: "sneakers", Bid: 0.5}); err != nil {
		t.Fatalf("name not released: %v", err)
	}
}

func TestGeoTargetedRecommendation(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	if err := e.AddAd(Ad{
		ID: "local-cafe", Text: "espresso and pastries downtown",
		Target: &Target{Lat: 2, Lng: 2, RadiusKm: 20}, Bid: 0.3,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "vpn", Text: "fast vpn service anywhere", Bid: 0.3}); err != nil {
		t.Fatal(err)
	}
	e.Post("alice", "need espresso and pastries right now", morning)

	// No location: only the global ad is eligible.
	recs, _ := e.Recommend("alice", 5, morning)
	if len(recs) != 1 || recs[0].AdID != "vpn" {
		t.Fatalf("no-location recs = %+v", recs)
	}
	// Inside the circle: the café wins on text + geo.
	if err := e.CheckIn("alice", 2.01, 2.01, morning); err != nil {
		t.Fatal(err)
	}
	recs, _ = e.Recommend("alice", 5, morning)
	if len(recs) != 2 || recs[0].AdID != "local-cafe" {
		t.Fatalf("in-range recs = %+v", recs)
	}
	// Far away: café drops out again.
	if err := e.CheckIn("alice", 3.9, 3.9, morning); err != nil {
		t.Fatal(err)
	}
	recs, _ = e.Recommend("alice", 5, morning)
	if len(recs) != 1 || recs[0].AdID != "vpn" {
		t.Fatalf("out-of-range recs = %+v", recs)
	}
}

func TestCampaignBudgetIntegration(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	flightEnd := morning.Add(time.Hour)
	if err := e.AddCampaign("summer", 1.0, morning, flightEnd); err != nil {
		t.Fatal(err)
	}
	if err := e.AddCampaign("summer", 1.0, morning, flightEnd); err == nil {
		t.Fatal("dup campaign accepted")
	}
	if err := e.AddAd(Ad{ID: "sale", Text: "summer sneaker sale", Campaign: "summer", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAd(Ad{ID: "nocamp", Text: "unbudgeted sneakers", Bid: 0.1}); err != nil {
		t.Fatal(err)
	}
	mid := morning.Add(40 * time.Minute)
	ok, err := e.ServeImpression("sale", mid)
	if err != nil || !ok {
		t.Fatalf("first impression: %v %v", ok, err)
	}
	// 0.5 of 1.0 spent; at 40 min only ~0.67 released → next 0.5 denied.
	ok, err = e.ServeImpression("sale", mid)
	if err != nil || ok {
		t.Fatalf("second impression should be paced out: %v %v", ok, err)
	}
	// Paced-out ads disappear from recommendations too.
	e.Post("alice", "sneaker sale hunting", mid)
	recs, _ := e.Recommend("alice", 5, mid)
	for _, r := range recs {
		if r.AdID == "sale" {
			t.Fatalf("paced-out ad recommended: %+v", recs)
		}
	}
}

func TestRemoveAdDisappears(t *testing.T) {
	e := openEngine(t, testConfig())
	e.AddUser("alice")
	e.AddAd(Ad{ID: "x", Text: "sneaker sale", Bid: 0.5})
	e.Post("alice", "sneaker sale", morning)
	recs, _ := e.Recommend("alice", 3, morning)
	if len(recs) != 1 {
		t.Fatalf("recs = %+v", recs)
	}
	if err := e.RemoveAd("x"); err != nil {
		t.Fatal(err)
	}
	recs, _ = e.Recommend("alice", 3, morning)
	if len(recs) != 0 {
		t.Fatalf("removed ad still recommended: %+v", recs)
	}
	// The external ID is reusable after removal.
	if err := e.AddAd(Ad{ID: "x", Text: "new sneakers", Bid: 0.4}); err != nil {
		t.Fatalf("ID not reusable: %v", err)
	}
}

func TestAlgorithmsAgreeThroughFacade(t *testing.T) {
	build := func(alg Algorithm) *Engine {
		cfg := testConfig()
		cfg.Algorithm = alg
		e := openEngine(t, cfg)
		for _, u := range []string{"u0", "u1", "u2", "u3"} {
			e.AddUser(u)
		}
		e.Follow("u0", "u1")
		e.Follow("u2", "u1")
		e.Follow("u3", "u0")
		e.AddAd(Ad{ID: "run", Text: "running shoes marathon gear", Bid: 0.3})
		e.AddAd(Ad{ID: "eat", Text: "pizza pasta dinner specials", Bid: 0.6})
		e.AddAd(Ad{ID: "geo", Text: "running track downtown", Bid: 0.4,
			Target: &Target{Lat: 1, Lng: 1, RadiusKm: 50}})
		e.CheckIn("u0", 1.0, 1.0, morning)
		e.CheckIn("u2", 3.5, 3.5, morning)
		e.Post("u1", "marathon training with new running shoes", morning)
		e.Post("u0", "pizza night after the run", morning.Add(time.Minute))
		return e
	}
	var results [][]Recommendation
	for _, alg := range []Algorithm{AlgorithmRS, AlgorithmIL, AlgorithmCAP} {
		e := build(alg)
		var all []Recommendation
		for _, u := range []string{"u0", "u1", "u2", "u3"} {
			recs, err := e.Recommend(u, 3, morning.Add(2*time.Minute))
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			all = append(all, recs...)
		}
		results = append(results, all)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(roundRecs(results[0]), roundRecs(results[i])) {
			t.Fatalf("engine %d disagrees:\nRS:  %+v\ngot: %+v", i, results[0], results[i])
		}
	}
}

// roundRecs quantizes scores so cross-engine float noise cannot fail the
// comparison.
func roundRecs(recs []Recommendation) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = fmt.Sprintf("%s:%.6f", r.AdID, r.Score)
	}
	return out
}

func TestShardedEngineMatchesSingle(t *testing.T) {
	run := func(shards int) []string {
		cfg := testConfig()
		cfg.Shards = shards
		e := openEngine(t, cfg)
		users := make([]string, 20)
		for i := range users {
			users[i] = fmt.Sprintf("u%02d", i)
			e.AddUser(users[i])
		}
		for i := 1; i < 20; i++ {
			e.Follow(users[i], users[0])
		}
		e.AddAd(Ad{ID: "run", Text: "running shoes marathon", Bid: 0.3})
		e.AddAd(Ad{ID: "eat", Text: "pizza dinner tonight", Bid: 0.6})
		for i := 0; i < 10; i++ {
			e.Post(users[0], "marathon running update number", morning.Add(time.Duration(i)*time.Minute))
		}
		var out []string
		for _, u := range users {
			recs, err := e.Recommend(u, 2, morning.Add(time.Hour))
			if err != nil {
				panic(err)
			}
			out = append(out, roundRecs(recs)...)
		}
		return out
	}
	single := run(1)
	for _, p := range []int{2, 4} {
		if got := run(p); !reflect.DeepEqual(single, got) {
			t.Fatalf("shards=%d diverges from single:\n%v\n%v", p, single, got)
		}
	}
}

func TestContinuousMode(t *testing.T) {
	var mu sync.Mutex
	calls := map[string][]Recommendation{}
	cfg := testConfig()
	cfg.ContinuousK = 2
	cfg.OnRecommend = func(user string, recs []Recommendation) {
		mu.Lock()
		calls[user] = recs
		mu.Unlock()
	}
	e := openEngine(t, cfg)
	e.AddUser("alice")
	e.AddUser("bob")
	e.Follow("alice", "bob")
	e.AddAd(Ad{ID: "shoes", Text: "running shoes", Bid: 0.5})
	e.Post("bob", "running today", morning)

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 { // bob (own feed) + alice
		t.Fatalf("continuous calls = %v", calls)
	}
	if len(calls["alice"]) != 1 || calls["alice"][0].AdID != "shoes" {
		t.Fatalf("alice continuous recs = %+v", calls["alice"])
	}
}

func TestStats(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	e := openEngine(t, cfg)
	e.AddUser("a")
	e.AddUser("b")
	e.Follow("a", "b")
	e.AddAd(Ad{ID: "x", Text: "sneaker sale", Bid: 0.5})
	e.Post("b", "sneaker day", morning)
	e.CheckIn("a", 1, 1, morning)
	st := e.Stats()
	if st.Users != 2 || st.Ads != 1 || st.FollowEdges != 1 || st.Shards != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.PostsDelivered != 1 || st.CheckIns != 1 {
		t.Fatalf("counters = %+v", st)
	}
	if st.CandidateBufferEntries == 0 {
		t.Fatalf("CAP buffers empty: %+v", st)
	}
	if e.Algorithm() != AlgorithmCAP {
		t.Fatalf("Algorithm = %v", e.Algorithm())
	}
}

// TestConcurrentAddRemoveRecommendStress drives Recommend/Post/CheckIn
// readers against a churn of AddAd/RemoveAd writers across shards. Beyond
// `-race` cleanliness it pins the RemoveAd ordering fix: every writer
// records an ad name only *after* its RemoveAd returned, and no Recommend
// that started after that point may serve the name (ad names are never
// reused here). With the seed ordering — store and shard indexes torn down
// before the name unmap — a recommend overlapping the removal could still
// resolve and serve the withdrawn ad.
func TestConcurrentAddRemoveRecommendStress(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	e := openEngine(t, cfg)
	users := make([]string, 32)
	for i := range users {
		users[i] = fmt.Sprintf("u%02d", i)
		e.AddUser(users[i])
	}
	for i := 1; i < len(users); i++ {
		e.Follow(users[i], users[0])
	}
	if err := e.AddAd(Ad{ID: "base", Text: "sneaker sale downtown", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	e.Post(users[0], "sneaker sale running downtown", morning)

	// removed is an append-only log of fully-withdrawn ad names; removedN
	// publishes how much of it is safe to read without a lock.
	var (
		removedMu sync.Mutex
		removed   []string
		removedN  atomic.Int64
		stop      atomic.Bool
		fail      atomic.Pointer[string]
	)
	const writers, readers, posters = 2, 4, 2
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				name := fmt.Sprintf("churn-%d-%d", w, i)
				if err := e.AddAd(Ad{ID: name, Text: "sneaker flash sale", Bid: 0.3}); err != nil {
					msg := fmt.Sprintf("AddAd(%s): %v", name, err)
					fail.Store(&msg)
					return
				}
				if err := e.RemoveAd(name); err != nil {
					msg := fmt.Sprintf("RemoveAd(%s): %v", name, err)
					fail.Store(&msg)
					return
				}
				removedMu.Lock()
				removed = append(removed, name)
				removedN.Store(int64(len(removed)))
				removedMu.Unlock()
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// Names withdrawn before this query started must not serve.
				// The header copy under the mutex is race-free: the log is
				// append-only, so its first len(gone) entries never change.
				removedMu.Lock()
				gone := removed
				removedMu.Unlock()
				recs, err := e.Recommend(users[(r*7+i)%len(users)], 4, morning.Add(time.Minute))
				if err != nil {
					msg := fmt.Sprintf("Recommend: %v", err)
					fail.Store(&msg)
					return
				}
				for _, rec := range recs {
					for _, name := range gone {
						if rec.AdID == name {
							msg := fmt.Sprintf("served ad %q after its RemoveAd returned", name)
							fail.Store(&msg)
							return
						}
					}
				}
			}
		}(r)
	}
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				at := morning.Add(time.Duration(p*100+i) * time.Second)
				if i%5 == 0 {
					e.CheckIn(users[(p+i)%len(users)], 1.5, 1.5, at)
				} else if err := e.Post(users[p], "sneaker sale running", at); err != nil {
					msg := fmt.Sprintf("Post: %v", err)
					fail.Store(&msg)
					return
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers and posters are bounded; once they finish, release the readers.
	for {
		select {
		case <-done:
			if msg := fail.Load(); msg != nil {
				t.Fatal(*msg)
			}
			if got := removedN.Load(); got != writers*150 {
				t.Fatalf("writers completed %d removals, want %d", got, writers*150)
			}
			return
		case <-time.After(10 * time.Millisecond):
			if removedN.Load() == writers*150 || fail.Load() != nil {
				stop.Store(true)
			}
		}
	}
}

// TestRemoveAdRollbackOnStoreError pins the rollback half of the new
// RemoveAd ordering: the name unmap is published first, and when the store
// removal then fails the mapping is restored, leaving the ad resolvable.
func TestRemoveAdRollbackOnStoreError(t *testing.T) {
	e := openEngine(t, testConfig())
	if err := e.AddAd(Ad{ID: "x", Text: "sneaker sale", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	internalID, ok := e.dir.Load().adIDs["x"]
	if !ok {
		t.Fatal("ad not mapped")
	}
	// Sabotage: pull the ad out of the store behind the facade's back so
	// RemoveAd's store step fails after the unmap was published.
	if err := e.store.Remove(internalID); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveAd("x"); err == nil {
		t.Fatal("RemoveAd should surface the store error")
	}
	if _, ok := e.dir.Load().adIDs["x"]; !ok {
		t.Fatal("mapping not rolled back after store error")
	}
	if e.dir.Load().ads[internalID].name != "x" {
		t.Fatal("reverse mapping not rolled back after store error")
	}
}

// failingTopAds wraps a shard engine and fails every TopAds call, to reach
// the continuous delivery path's per-user error branch.
type failingTopAds struct {
	core.Shardable
}

func (failingTopAds) TopAds(feed.UserID, int, time.Time) ([]core.Scored, error) {
	return nil, errors.New("stub: topads unavailable")
}

// TestContinuousTopAdsErrorsCounted pins that per-user TopAds failures on
// the continuous delivery path are counted instead of silently swallowed.
func TestContinuousTopAdsErrorsCounted(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig()
	cfg.ContinuousK = 2
	cfg.OnRecommend = func(string, []Recommendation) { calls.Add(1) }
	e := openEngine(t, cfg)
	e.AddUser("alice")
	e.AddUser("bob")
	e.Follow("alice", "bob")
	if err := e.AddAd(Ad{ID: "shoes", Text: "running shoes", Bid: 0.5}); err != nil {
		t.Fatal(err)
	}
	e.shards[0].eng = failingTopAds{e.shards[0].eng}

	if err := e.Post("bob", "running today", morning); err != nil {
		t.Fatal(err)
	}
	// bob (own feed) + alice both hit the failing TopAds.
	if got := e.obsm.continuousErrors.Value(); got != 2 {
		t.Fatalf("continuous error counter = %d, want 2", got)
	}
	if calls.Load() != 0 {
		t.Fatalf("OnRecommend fired despite TopAds errors")
	}
}

func TestConcurrentFacadeUse(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 4
	e := openEngine(t, cfg)
	for i := 0; i < 40; i++ {
		e.AddUser(fmt.Sprintf("u%02d", i))
	}
	for i := 1; i < 40; i++ {
		e.Follow(fmt.Sprintf("u%02d", i), "u00")
	}
	e.AddAd(Ad{ID: "base", Text: "sneaker sale downtown", Bid: 0.5})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				at := morning.Add(time.Duration(w*50+i) * time.Second)
				switch i % 4 {
				case 0:
					e.Post("u00", "sneaker sale running", at)
				case 1:
					e.Recommend(fmt.Sprintf("u%02d", i%40), 3, at)
				case 2:
					e.CheckIn(fmt.Sprintf("u%02d", i%40), 1.5, 1.5, at)
				default:
					e.AddAd(Ad{ID: fmt.Sprintf("ad-%d-%d", w, i), Text: "flash sneaker deal", Bid: 0.2})
				}
			}
		}(w)
	}
	wg.Wait()
	if st := e.Stats(); st.PostsDelivered == 0 || st.Ads < 2 {
		t.Fatalf("concurrent run lost work: %+v", st)
	}
}
