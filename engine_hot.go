package caar

import (
	"errors"
	"time"

	"caar/obs/hotkey"
)

// ErrHotKeysDisabled is returned by hot-key queries when the engine was
// opened with Config.DisableHotKeys.
var ErrHotKeysDisabled = errors.New("caar: hot-key telemetry disabled")

// Hot returns the top-k heavy hitters of one telemetry dimension
// ("users", "posters", "campaigns", "terms") over the requested window
// (0 = the full retained window). Estimates carry one-sided error bounds:
// the true count lies in [Count−ErrorBound, Count].
func (e *Engine) Hot(dim string, k int, window time.Duration) (hotkey.DimReport, error) {
	if e.hot == nil {
		return hotkey.DimReport{}, ErrHotKeysDisabled
	}
	return e.hot.Report(hotkey.Dimension(dim), k, window)
}

// HotTracker exposes the telemetry tracker for lifecycle wiring (its Run
// loop keeps gauges and window decay fresh between queries). nil when
// hot-key telemetry is disabled.
func (e *Engine) HotTracker() *hotkey.Tracker { return e.hot }

// DimensionSkew summarizes one dimension's load concentration for the
// hot-partition signal.
type DimensionSkew struct {
	Dimension    string `json:"dimension"`
	WindowWeight uint64 `json:"window_weight"`
	TopKey       string `json:"top_key,omitempty"`
	TopCount     uint64 `json:"top_count,omitempty"`
	ErrorBound   uint64 `json:"error_bound,omitempty"`
	// TopShare is the hottest key's fraction of the window weight. Sketch
	// overestimation can push it marginally above the true share (never
	// below it by more than ErrorBound/WindowWeight).
	TopShare float64 `json:"top_share"`
	// ShardWeight attributes heavy-hitter weight to engine shards by the
	// serving shard function (user-keyed dimensions only; nil otherwise).
	// It sums tracked candidates, not total load, so it is a lower bound
	// on each shard's hot-key mass.
	ShardWeight   []uint64 `json:"shard_weight,omitempty"`
	MaxShardShare float64  `json:"max_shard_share,omitempty"`
}

// HotPartitionReport is the engine-level skew signal for a router tier:
// per-dimension load concentration plus the shard-level imbalance the
// current hash partitioning yields. A router consumes it to decide when a
// hot user/poster justifies a partition split or migration (ROADMAP:
// adaptive scale-out); the contract is documented in DESIGN.md §11.
type HotPartitionReport struct {
	WindowSeconds float64         `json:"window_seconds"`
	Shards        int             `json:"shards"`
	Dimensions    []DimensionSkew `json:"dimensions"`
}

// HotPartitionReport computes the skew signal over the requested window
// (0 = the full retained window).
func (e *Engine) HotPartitionReport(window time.Duration) (HotPartitionReport, error) {
	if e.hot == nil {
		return HotPartitionReport{}, ErrHotKeysDisabled
	}
	rep := HotPartitionReport{Shards: len(e.shards)}
	for _, dim := range hotkey.Dimensions() {
		// Pull the tracker's full candidate capacity so shard attribution
		// sees every tracked heavy hitter, not just the default top 10.
		dr, err := e.hot.Report(dim, 1<<20, window)
		if err != nil {
			return HotPartitionReport{}, err
		}
		rep.WindowSeconds = dr.WindowSeconds
		sk := DimensionSkew{Dimension: dr.Dimension, WindowWeight: dr.WindowWeight}
		if len(dr.Keys) > 0 {
			top := dr.Keys[0]
			sk.TopKey, sk.TopCount, sk.ErrorBound = top.Key, top.Count, top.ErrorBound
			if dr.WindowWeight > 0 {
				sk.TopShare = float64(top.Count) / float64(dr.WindowWeight)
			}
		}
		if dim == hotkey.DimUsers || dim == hotkey.DimPosters {
			sw := make([]uint64, len(e.shards))
			var max uint64
			for _, k := range dr.Keys {
				si := int(k.RawKey) % len(e.shards)
				sw[si] += k.Count
				if sw[si] > max {
					max = sw[si]
				}
			}
			sk.ShardWeight = sw
			if dr.WindowWeight > 0 {
				sk.MaxShardShare = float64(max) / float64(dr.WindowWeight)
			}
		}
		rep.Dimensions = append(rep.Dimensions, sk)
	}
	return rep, nil
}
