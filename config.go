package caar

import (
	"errors"
	"fmt"
	"time"

	"caar/internal/core"
	"caar/internal/geo"
	"caar/internal/timeslot"
	"caar/obs"
	"caar/obs/trace"
)

// Config configures an Engine. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Algorithm selects the engine; default CAP.
	Algorithm Algorithm

	// AlphaText, BetaGeo and GammaBid are the non-negative mixing weights of
	// the scoring function Score = α·TextRel + β·GeoProx + γ·Bid.
	AlphaText float64
	BetaGeo   float64
	GammaBid  float64

	// DecayHalfLife ages feed content: a message's influence halves every
	// half-life. Zero disables decay.
	DecayHalfLife time.Duration

	// WindowSize is the per-user feed window capacity in messages.
	WindowSize int

	// Region is the spatial coverage; GridRows × GridCols is the resolution
	// of the spatial pre-filter.
	Region   Region
	GridRows int
	GridCols int

	// Shards splits users across this many engine instances that share one
	// budget store, letting posts fan out in parallel. 0 or 1 disables
	// sharding. Only meaningful for CAP and IL.
	Shards int

	// FanoutSharing and RebuildEvery tune the CAP engine (see
	// DESIGN.md §3.1); ignored by other algorithms.
	FanoutSharing bool
	RebuildEvery  int

	// ContinuousK, when positive, recomputes the top-ContinuousK ads of
	// every affected follower after each post and invokes OnRecommend.
	// This is the paper's continuous "ads with every feed refresh" mode.
	ContinuousK int
	// OnRecommend receives continuous-mode results. It may be called from
	// multiple goroutines when Shards > 1.
	OnRecommend func(user string, recs []Recommendation)

	// Metrics, when non-nil, is the observability registry the engine
	// registers its collectors on — pass the process-wide registry to expose
	// engine metrics alongside server and journal metrics on one scrape
	// endpoint. nil gives the engine a private registry (reachable through
	// Engine.Metrics), so instrumentation is always on.
	Metrics *obs.Registry

	// Tracer, when non-nil, enables request-scoped flight recording: each
	// recommend builds a trace (per-stage spans with candidate counts, score
	// decomposition, policy actions) and submits it to the store, which
	// head-samples ordinary requests and unconditionally tail-captures slow
	// and errored ones. nil disables tracing; the recommend hot path then
	// pays nothing (no clock reads, no allocations) beyond a nil check.
	Tracer *trace.Store

	// DisableHotKeys turns off the hot-key telemetry layer (obs/hotkey).
	// It is on by default: recording is one lock-free bounded-queue write
	// per observation and the sketches hold a fixed ~0.5 MiB, so serving
	// cost stays within the ≤5% p99 budget the hot-bench gate enforces.
	DisableHotKeys bool

	// HotKeyWindow is the hot-key telemetry sliding window (default 1m,
	// split into 6 ring'd sub-windows). Longer windows trade freshness for
	// stability of the heavy-hitter set.
	HotKeyWindow time.Duration
}

// DefaultConfig returns a production-shaped configuration: CAP engine,
// text-dominant scoring, 2-hour half-life, 32-message windows, a city-scale
// region with a 64×64 grid.
func DefaultConfig() Config {
	return Config{
		Algorithm:     AlgorithmCAP,
		AlphaText:     0.6,
		BetaGeo:       0.25,
		GammaBid:      0.15,
		DecayHalfLife: 2 * time.Hour,
		WindowSize:    32,
		Region:        Region{MinLat: 0, MinLng: 0, MaxLat: 4, MaxLng: 4},
		GridRows:      64,
		GridCols:      64,
		FanoutSharing: true,
		RebuildEvery:  256,
	}
}

// ErrBadConfig reports an invalid engine configuration.
var ErrBadConfig = errors.New("caar: invalid configuration")

func (c Config) validate() error {
	switch c.Algorithm {
	case AlgorithmCAP, AlgorithmIL, AlgorithmRS, "":
	default:
		return fmt.Errorf("%w: unknown algorithm %q", ErrBadConfig, c.Algorithm)
	}
	if c.Shards < 0 {
		return fmt.Errorf("%w: negative shard count %d", ErrBadConfig, c.Shards)
	}
	if c.ContinuousK < 0 {
		return fmt.Errorf("%w: negative ContinuousK", ErrBadConfig)
	}
	if c.ContinuousK > 0 && c.OnRecommend == nil {
		return fmt.Errorf("%w: ContinuousK set without OnRecommend callback", ErrBadConfig)
	}
	if c.HotKeyWindow < 0 {
		return fmt.Errorf("%w: negative HotKeyWindow %v", ErrBadConfig, c.HotKeyWindow)
	}
	rect := geo.Rect(c.Region)
	if !rect.Valid() || rect.MinLat == rect.MaxLat || rect.MinLng == rect.MaxLng {
		return fmt.Errorf("%w: region %+v", ErrBadConfig, c.Region)
	}
	return nil
}

func (c Config) scoring() core.Scoring {
	return core.Scoring{
		AlphaText: c.AlphaText,
		BetaGeo:   c.BetaGeo,
		GammaBid:  c.GammaBid,
		Decay:     timeslot.NewDecay(c.DecayHalfLife),
		WindowCap: c.WindowSize,
	}
}
