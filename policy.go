package caar

import (
	"sync"
	"time"

	"caar/obs/trace"
)

// ServingPolicy adds delivery constraints on top of raw relevance ranking:
// frequency capping (stop showing a user the same ad over and over) and
// campaign diversity (avoid a single advertiser monopolizing a slate).
//
// Both constraints are applied by over-fetching OverfetchFactor·k candidates
// from the engine and greedily selecting down to k. Under extreme skew
// (e.g. thousands of same-campaign ads outranking everything) the slate can
// come back shorter than k; raise OverfetchFactor if that matters more than
// the extra query cost.
type ServingPolicy struct {
	// FrequencyCap is the maximum impressions of one ad a single user may
	// receive within FrequencyWindow. 0 disables capping.
	FrequencyCap int
	// FrequencyWindow is the sliding period the cap applies to.
	FrequencyWindow time.Duration
	// MaxPerCampaign bounds ads of one campaign in a single slate
	// (campaign-less ads are never constrained). 0 disables.
	MaxPerCampaign int
	// OverfetchFactor scales the internal candidate fetch (default 4).
	OverfetchFactor int
}

// enabled reports whether any constraint is active.
func (p ServingPolicy) enabled() bool {
	return (p.FrequencyCap > 0 && p.FrequencyWindow > 0) || p.MaxPerCampaign > 0
}

// overfetch returns the effective candidate-fetch multiplier.
func (p ServingPolicy) overfetch() int {
	if p.OverfetchFactor < 1 {
		return 4
	}
	return p.OverfetchFactor
}

// impressionLog tracks recent impression times per (user, ad) for frequency
// capping. Old entries are pruned lazily on access.
type impressionLog struct {
	mu   sync.Mutex
	byUA map[string]map[string][]time.Time
}

func newImpressionLog() *impressionLog {
	return &impressionLog{byUA: make(map[string]map[string][]time.Time)}
}

// record notes one impression of ad for user at time t.
func (l *impressionLog) record(user, ad string, t time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ads := l.byUA[user]
	if ads == nil {
		ads = make(map[string][]time.Time)
		l.byUA[user] = ads
	}
	ads[ad] = append(ads[ad], t)
}

// countSince returns the impressions of ad seen by user within [t−window, t],
// pruning entries that have aged out.
func (l *impressionLog) countSince(user, ad string, t time.Time, window time.Duration) int {
	l.mu.Lock() //caarlint:allow readpathlock impression log is mutable frequency-cap state; serialization here is the design
	defer l.mu.Unlock()
	ads := l.byUA[user]
	if ads == nil {
		return 0
	}
	times := ads[ad]
	cutoff := t.Add(-window)
	live := times[:0]
	for _, ts := range times {
		if ts.After(cutoff) && !ts.After(t) {
			live = append(live, ts)
		} else if ts.After(t) {
			// future-stamped entries (clock skew) are kept but not counted
			live = append(live, ts)
		}
	}
	if len(live) == 0 {
		delete(ads, ad)
		if len(ads) == 0 {
			delete(l.byUA, user)
		}
		return 0
	}
	ads[ad] = live
	n := 0
	for _, ts := range live {
		if !ts.After(t) {
			n++
		}
	}
	return n
}

// RecordImpressionTo registers that user actually saw ad at time t (for
// frequency capping) and bills the impression against the ad's campaign
// budget. It reports whether the impression was billable.
func (e *Engine) RecordImpressionTo(user, adID string, at time.Time) (bool, error) {
	if _, err := e.lookupUser(user); err != nil {
		return false, err
	}
	served, err := e.ServeImpression(adID, at)
	if err != nil {
		return false, err
	}
	if served {
		e.impressions.record(user, adID, at)
	}
	return served, nil
}

// RecommendWithPolicy returns up to k ads for user, applying the serving
// policy's frequency cap and campaign-diversity constraints on top of the
// relevance ranking. With a zero policy it is equivalent to Recommend.
func (e *Engine) RecommendWithPolicy(user string, k int, at time.Time, policy ServingPolicy) ([]Recommendation, error) {
	recs, _, err := e.recommend(user, k, at, policy, TraceRequest{})
	return recs, err
}

// applyPolicy greedily selects up to k recommendations from the over-fetched
// candidate list under the policy's constraints. With no active constraint
// the candidates pass through unchanged (the pipeline fetched exactly k).
// Campaigns resolve against the request's directory snapshot d — one
// atomic load made by the caller covers every candidate, where the seed
// code took the global read lock once per candidate. When the request
// carries a trace, every drop decision is recorded as a policy action, so
// an explained slate shows why a higher-scored candidate is missing from
// the response.
func (e *Engine) applyPolicy(d *directory, user string, k int, at time.Time, policy ServingPolicy, candidates []Recommendation, tr *trace.Trace) []Recommendation {
	if !policy.enabled() {
		return candidates
	}
	perCampaign := map[string]int{}
	out := make([]Recommendation, 0, k)
	for _, cand := range candidates {
		if len(out) == k {
			break
		}
		if policy.FrequencyCap > 0 && policy.FrequencyWindow > 0 {
			seen := e.impressions.countSince(user, cand.AdID, at, policy.FrequencyWindow)
			if seen >= policy.FrequencyCap {
				if tr != nil {
					tr.AddPolicyAction(cand.AdID, "dropped_frequency_cap")
				}
				continue
			}
		}
		if policy.MaxPerCampaign > 0 {
			if camp := d.campaignOf(cand.AdID); camp != "" {
				if perCampaign[camp] >= policy.MaxPerCampaign {
					if tr != nil {
						tr.AddPolicyAction(cand.AdID, "dropped_campaign_diversity")
					}
					continue
				}
				perCampaign[camp]++
			}
		}
		out = append(out, cand)
	}
	return out
}
