package fca

import (
	"fmt"
	"sort"
)

// TriContext is a triadic formal context (G, M, B, Y): objects, attributes,
// conditions, and a ternary incidence Y ⊆ G×M×B. In the recommender's two
// instantiations: (users, locations, time slots, check-ins) and
// (users, topic URIs, time slots, posts-about).
type TriContext struct {
	objects    []string
	attributes []string
	conditions []string
	objIndex   map[string]int
	attrIndex  map[string]int
	condIndex  map[string]int
	// inc[g] is a bitset over the flattened M×B pairs: index j*|B|+k.
	inc []BitSet
}

// NewTriContext creates an empty triadic context. Names must be unique
// within each dimension.
func NewTriContext(objects, attributes, conditions []string) (*TriContext, error) {
	t := &TriContext{
		objects:    append([]string(nil), objects...),
		attributes: append([]string(nil), attributes...),
		conditions: append([]string(nil), conditions...),
		objIndex:   make(map[string]int, len(objects)),
		attrIndex:  make(map[string]int, len(attributes)),
		condIndex:  make(map[string]int, len(conditions)),
	}
	for i, o := range objects {
		if _, dup := t.objIndex[o]; dup {
			return nil, fmt.Errorf("fca: duplicate object %q", o)
		}
		t.objIndex[o] = i
	}
	for j, a := range attributes {
		if _, dup := t.attrIndex[a]; dup {
			return nil, fmt.Errorf("fca: duplicate attribute %q", a)
		}
		t.attrIndex[a] = j
	}
	for k, b := range conditions {
		if _, dup := t.condIndex[b]; dup {
			return nil, fmt.Errorf("fca: duplicate condition %q", b)
		}
		t.condIndex[b] = k
	}
	t.inc = make([]BitSet, len(objects))
	for i := range t.inc {
		t.inc[i] = NewBitSet(len(attributes) * len(conditions))
	}
	return t, nil
}

// Objects returns the object names.
func (t *TriContext) Objects() []string { return t.objects }

// Attributes returns the attribute names.
func (t *TriContext) Attributes() []string { return t.attributes }

// Conditions returns the condition names.
func (t *TriContext) Conditions() []string { return t.conditions }

// Relate adds (object, attribute, condition) to Y by name.
func (t *TriContext) Relate(object, attribute, condition string) error {
	i, ok := t.objIndex[object]
	if !ok {
		return fmt.Errorf("fca: unknown object %q", object)
	}
	j, ok := t.attrIndex[attribute]
	if !ok {
		return fmt.Errorf("fca: unknown attribute %q", attribute)
	}
	k, ok := t.condIndex[condition]
	if !ok {
		return fmt.Errorf("fca: unknown condition %q", condition)
	}
	t.RelateIdx(i, j, k)
	return nil
}

// RelateIdx adds (i, j, k) to Y by index.
func (t *TriContext) RelateIdx(i, j, k int) {
	t.inc[i].Set(j*len(t.conditions) + k)
}

// Incident reports whether (i, j, k) ∈ Y.
func (t *TriContext) Incident(i, j, k int) bool {
	return t.inc[i].Test(j*len(t.conditions) + k)
}

// TriConcept is a triadic concept (A1, A2, A3): a maximal box
// A1×A2×A3 ⊆ Y — no dimension can be enlarged without breaking inclusion
// (Wille's triadic concepts).
type TriConcept struct {
	Extent BitSet // A1 ⊆ G
	Intent BitSet // A2 ⊆ M
	Modus  BitSet // A3 ⊆ B
}

// ExtentNames resolves A1 to object names.
func (t *TriContext) ExtentNames(c TriConcept) []string { return names(t.objects, c.Extent) }

// IntentNames resolves A2 to attribute names.
func (t *TriContext) IntentNames(c TriConcept) []string { return names(t.attributes, c.Intent) }

// ModusNames resolves A3 to condition names.
func (t *TriContext) ModusNames(c TriConcept) []string { return names(t.conditions, c.Modus) }

// boxExtent returns the objects g with {g}×A2×A3 ⊆ Y.
func (t *TriContext) boxExtent(intent, modus BitSet) BitSet {
	mask := NewBitSet(len(t.attributes) * len(t.conditions))
	intent.ForEach(func(j int) {
		modus.ForEach(func(k int) {
			mask.Set(j*len(t.conditions) + k)
		})
	})
	ext := NewBitSet(len(t.objects))
	for i := range t.inc {
		if mask.IsSubsetOf(t.inc[i]) {
			ext.Set(i)
		}
	}
	return ext
}

// Concepts enumerates all triadic concepts using the TRIAS scheme
// (Jäschke et al.): enumerate the concepts (A1, I) of the projected dyadic
// context (G, M×B, Y¹); for each, enumerate the dyadic concepts (A2, A3) of
// the slice context I ⊆ M×B; keep (A1, A2, A3) when A1 is exactly the box
// extent of A2×A3, which guarantees maximality in all three dimensions and
// emits every triadic concept exactly once.
func (t *TriContext) Concepts() []TriConcept {
	nm, nb := len(t.attributes), len(t.conditions)

	// Projected dyadic context K1 = (G, M×B, Y¹).
	k1 := &Context{
		objects:    t.objects,
		attributes: make([]string, nm*nb),
		objIndex:   t.objIndex,
		attrIndex:  map[string]int{},
		rows:       t.inc,
	}
	for p := range k1.attributes {
		k1.attributes[p] = fmt.Sprintf("p%d", p)
		k1.attrIndex[k1.attributes[p]] = p
	}
	k1.cols = make([]BitSet, nm*nb)
	for p := 0; p < nm*nb; p++ {
		col := NewBitSet(len(t.objects))
		for i := range t.inc {
			if t.inc[i].Test(p) {
				col.Set(i)
			}
		}
		k1.cols[p] = col
	}

	var out []TriConcept
	seen := map[string]bool{}
	for _, c1 := range k1.Concepts() {
		// Slice context: attributes M, objects... we want dyadic concepts
		// of the relation I ⊆ M×B with M as objects and B as attributes.
		slice, err := NewContext(t.attributes, t.conditions)
		if err != nil {
			panic("fca: internal slice context: " + err.Error())
		}
		c1.Intent.ForEach(func(p int) {
			slice.RelateIdx(p/nb, p%nb)
		})
		for _, c2 := range slice.Concepts() {
			a2, a3 := c2.Extent, c2.Intent
			a1 := t.boxExtent(a2, a3)
			if !a1.Equal(c1.Extent) {
				continue
			}
			key := a2.String() + "|" + a3.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, TriConcept{Extent: a1, Intent: a2.Clone(), Modus: a3.Clone()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Extent.Count(), out[j].Extent.Count()
		if ci != cj {
			return ci > cj
		}
		return out[i].Intent.String()+out[i].Modus.String() <
			out[j].Intent.String()+out[j].Modus.String()
	})
	return out
}

// MTriadicConcepts returns the triadic concepts whose attribute set (A2) is
// exactly the single attribute m — the "m-triadic concepts" of Hao et al.
// that form the skeleton of location-focused communities. ok is false for an
// unknown attribute name.
func (t *TriContext) MTriadicConcepts(m string) ([]TriConcept, bool) {
	j, known := t.attrIndex[m]
	if !known {
		return nil, false
	}
	var out []TriConcept
	for _, c := range t.Concepts() {
		if c.Intent.Count() == 1 && c.Intent.Test(j) {
			out = append(out, c)
		}
	}
	return out, true
}
