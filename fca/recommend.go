package fca

import "sort"

// This file implements the triadic-concept ad-matching model used as the
// TFCA effectiveness baseline: location-focused communities and topic-based
// communities are extracted as triadic concepts, and an advertisement
// context (location, topic URIs, optional slot) selects target users as the
// join of the matching communities.

// Community is a user community induced by a triadic concept: the users of
// the extent, active on the anchor attribute during the modus slots.
type Community struct {
	Users []string
	Slots []string
}

// ConceptIndex precomputes a context's triadic concepts (one TRIAS run) and
// serves community lookups per anchor attribute — use it when sweeping many
// ads or thresholds over the same context.
type ConceptIndex struct {
	t      *TriContext
	byAttr map[string][]Community
}

// NewConceptIndex runs TRIAS once and indexes the single-attribute concepts
// by their anchor attribute.
func NewConceptIndex(t *TriContext) *ConceptIndex {
	ix := &ConceptIndex{t: t, byAttr: make(map[string][]Community)}
	for _, tc := range t.Concepts() {
		if tc.Intent.Count() != 1 || tc.Extent.IsEmpty() {
			continue
		}
		name := t.attributes[tc.Intent.Elements()[0]]
		ix.byAttr[name] = append(ix.byAttr[name], Community{
			Users: t.ExtentNames(tc),
			Slots: t.ModusNames(tc),
		})
	}
	return ix
}

// Communities returns the communities anchored on attribute m (nil when m is
// unknown or has no concepts).
func (ix *ConceptIndex) Communities(m string) []Community { return ix.byAttr[m] }

// Communities returns the communities anchored on a single attribute m: the
// extents of the m-triadic concepts (Comm(H, m) of the location analysis, or
// Comm(TFC, uri) of the topic analysis). Unknown attributes yield nil.
// For repeated queries over one context build a ConceptIndex instead.
func Communities(t *TriContext, m string) []Community {
	tcs, ok := t.MTriadicConcepts(m)
	if !ok {
		return nil
	}
	out := make([]Community, 0, len(tcs))
	for _, tc := range tcs {
		if tc.Extent.IsEmpty() {
			continue
		}
		out = append(out, Community{
			Users: t.ExtentNames(tc),
			Slots: t.ModusNames(tc),
		})
	}
	return out
}

// AdContext describes one advertisement for TFCA matching: where it is
// relevant, which concept URIs characterize its copy, and (optionally) the
// slot it should run in (empty = any slot).
type AdContext struct {
	Location string
	URIs     []string
	Slot     string
}

// Recommendation is the TFCA output: target users with, per user, the slots
// in which both their location community and a topic community are active.
type Recommendation struct {
	User  string
	Slots []string
}

// Recommend selects target users for an ad: the users present both in a
// location community of ad.Location (from the check-in context) and in a
// topic community of some URI in ad.URIs (from the tweet context), with the
// slot intersection non-empty (and containing ad.Slot when given). Users are
// returned alphabetically; their slots sorted.
func Recommend(checkins, tweets *TriContext, ad AdContext) []Recommendation {
	return RecommendIndexed(NewConceptIndex(checkins), NewConceptIndex(tweets), ad)
}

// RecommendIndexed is Recommend over precomputed concept indexes, for
// sweeps that query many ads against the same contexts.
func RecommendIndexed(checkins, tweets *ConceptIndex, ad AdContext) []Recommendation {
	locComms := checkins.Communities(ad.Location)
	if len(locComms) == 0 {
		return nil
	}
	var topicComms []Community
	for _, uri := range ad.URIs {
		topicComms = append(topicComms, tweets.Communities(uri)...)
	}
	if len(topicComms) == 0 {
		return nil
	}

	userSlots := map[string]map[string]bool{}
	for _, lc := range locComms {
		for _, tc := range topicComms {
			common := intersectStrings(lc.Users, tc.Users)
			slots := intersectStrings(lc.Slots, tc.Slots)
			if ad.Slot != "" {
				if !containsString(slots, ad.Slot) {
					continue
				}
				slots = []string{ad.Slot}
			}
			if len(slots) == 0 {
				continue
			}
			for _, u := range common {
				set := userSlots[u]
				if set == nil {
					set = map[string]bool{}
					userSlots[u] = set
				}
				for _, s := range slots {
					set[s] = true
				}
			}
		}
	}

	out := make([]Recommendation, 0, len(userSlots))
	for u, set := range userSlots {
		slots := make([]string, 0, len(set))
		for s := range set {
			slots = append(slots, s)
		}
		sort.Strings(slots)
		out = append(out, Recommendation{User: u, Slots: slots})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

func intersectStrings(a, b []string) []string {
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var out []string
	for _, y := range b {
		if set[y] {
			out = append(out, y)
		}
	}
	sort.Strings(out)
	return out
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
