package fca

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	if b.Cap() != 130 || !b.IsEmpty() || b.Count() != 0 {
		t.Fatal("fresh bitset state wrong")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Test(1) || b.Test(128) {
		t.Fatal("unset bit reads true")
	}
	if b.Test(-1) || b.Test(130) {
		t.Fatal("out-of-range Test should be false")
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 2 {
		t.Fatal("Clear failed")
	}
	if got := b.Elements(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Fatalf("Elements = %v", got)
	}
	if got := b.String(); got != "{0, 129}" {
		t.Fatalf("String = %q", got)
	}
}

func TestBitSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	b := NewBitSet(10)
	b.Set(10)
}

func TestBitSetFillTrims(t *testing.T) {
	b := NewBitSet(70)
	b.Fill()
	if b.Count() != 70 {
		t.Fatalf("Fill count = %d, want 70", b.Count())
	}
	c := NewBitSet(64)
	c.Fill()
	if c.Count() != 64 {
		t.Fatalf("Fill count = %d, want 64", c.Count())
	}
	z := NewBitSet(0)
	z.Fill()
	if !z.IsEmpty() {
		t.Fatal("empty universe fill should stay empty")
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	for _, i := range []int{1, 5, 70} {
		a.Set(i)
	}
	for _, i := range []int{5, 70, 99} {
		b.Set(i)
	}
	and := a.Clone()
	and.AndWith(b)
	if got := and.Elements(); !reflect.DeepEqual(got, []int{5, 70}) {
		t.Fatalf("And = %v", got)
	}
	or := a.Clone()
	or.OrWith(b)
	if got := or.Elements(); !reflect.DeepEqual(got, []int{1, 5, 70, 99}) {
		t.Fatalf("Or = %v", got)
	}
	diff := a.Clone()
	diff.AndNotWith(b)
	if got := diff.Elements(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("AndNot = %v", got)
	}
	if !and.IsSubsetOf(a) || !and.IsSubsetOf(b) || a.IsSubsetOf(b) {
		t.Fatal("IsSubsetOf wrong")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
	if a.Equal(NewBitSet(50)) {
		t.Fatal("different capacities should not be equal")
	}
}

func TestBitSetCloneIndependence(t *testing.T) {
	a := NewBitSet(10)
	a.Set(3)
	c := a.Clone()
	c.Set(4)
	if a.Test(4) {
		t.Fatal("clone mutation leaked")
	}
}

func TestBitSetSetTestProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBitSet(1 << 16)
		seen := map[int]bool{}
		for _, r := range raw {
			b.Set(int(r))
			seen[int(r)] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitSetDeMorganProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := NewBitSet(256)
		b := NewBitSet(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		// a \ b == a ∩ complement(b)
		lhs := a.Clone()
		lhs.AndNotWith(b)
		comp := NewBitSet(256)
		comp.Fill()
		comp.AndNotWith(b)
		rhs := a.Clone()
		rhs.AndWith(comp)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
