package fca

import (
	"math/rand"
	"testing"
)

// randomContext builds a small random context for basis property tests.
func randomContext(t *testing.T, rng *rand.Rand, nObj, nAttr int, density float64) *Context {
	t.Helper()
	objs := make([]string, nObj)
	attrs := make([]string, nAttr)
	for i := range objs {
		objs[i] = "o" + string(rune('0'+i))
	}
	for j := range attrs {
		attrs[j] = "a" + string(rune('0'+j))
	}
	c, err := NewContext(objs, attrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nObj; i++ {
		for j := 0; j < nAttr; j++ {
			if rng.Float64() < density {
				c.RelateIdx(i, j)
			}
		}
	}
	return c
}

func TestStemBaseSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		c := randomContext(t, rng, 2+rng.Intn(6), 2+rng.Intn(6), 0.3+0.4*rng.Float64())
		for _, imp := range c.StemBase() {
			if !imp.Holds(c) {
				t.Fatalf("trial %d: implication %v → %v does not hold",
					trial, c.PremiseNames(imp), c.ConclusionNames(imp))
			}
		}
	}
}

// TestStemBaseComplete: the syntactic closure under the base must equal the
// context closure for EVERY attribute subset — soundness + completeness in
// one check.
func TestStemBaseComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		nAttr := 2 + rng.Intn(6)
		c := randomContext(t, rng, 2+rng.Intn(6), nAttr, 0.3+0.4*rng.Float64())
		base := c.StemBase()
		for mask := 0; mask < 1<<nAttr; mask++ {
			x := NewBitSet(nAttr)
			for j := 0; j < nAttr; j++ {
				if mask&(1<<j) != 0 {
					x.Set(j)
				}
			}
			syntactic := CloseUnder(base, x)
			semantic := c.CloseAttributes(x)
			if !syntactic.Equal(semantic) {
				t.Fatalf("trial %d set %s: syntactic %s ≠ semantic %s (base size %d)",
					trial, x, syntactic, semantic, len(base))
			}
		}
	}
}

// TestStemBaseNonRedundant: dropping any implication breaks completeness —
// the defining minimality property of the Duquenne–Guigues base.
func TestStemBaseNonRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		c := randomContext(t, rng, 2+rng.Intn(5), 2+rng.Intn(5), 0.4)
		base := c.StemBase()
		for drop := range base {
			reduced := make([]Implication, 0, len(base)-1)
			reduced = append(reduced, base[:drop]...)
			reduced = append(reduced, base[drop+1:]...)
			// The dropped implication's premise must no longer close to its
			// full conclusion.
			syn := CloseUnder(reduced, base[drop].Premise)
			if syn.Equal(c.CloseAttributes(base[drop].Premise)) {
				t.Fatalf("trial %d: implication %d is redundant in stem base",
					trial, drop)
			}
		}
	}
}

func TestStemBasePremisesArePseudoIntents(t *testing.T) {
	c := classicContext(t)
	base := c.StemBase()
	if len(base) == 0 {
		t.Fatal("classic context should have implications")
	}
	for _, imp := range base {
		// A pseudo-intent is never closed.
		if imp.Premise.Equal(c.CloseAttributes(imp.Premise)) {
			t.Fatalf("premise %v is closed", c.PremiseNames(imp))
		}
		// Conclusions are stored closed.
		if !imp.Conclusion.Equal(c.CloseAttributes(imp.Conclusion)) {
			t.Fatalf("conclusion %v not closed", c.ConclusionNames(imp))
		}
	}
}

func TestStemBaseClassicExamples(t *testing.T) {
	c := classicContext(t)
	base := c.StemBase()
	// "suckles → needs-water, lives-on-land, can-move, has-limbs, suckles"
	// (only the dog suckles) must be derivable.
	suckles, ok := c.AttributeSet("suckles")
	if !ok {
		t.Fatal("attribute lookup failed")
	}
	closure := CloseUnder(base, suckles)
	want, _ := c.AttributeSet("suckles", "needs-water", "lives-on-land", "can-move", "has-limbs")
	if !want.IsSubsetOf(closure) {
		t.Fatalf("suckles closure %s misses %s", closure, want)
	}
	// Everything implies needs-water (every object needs water): the empty
	// set's closure contains it.
	empty := NewBitSet(c.NumAttributes())
	closure = CloseUnder(base, empty)
	needsWater, _ := c.AttributeSet("needs-water")
	if !needsWater.IsSubsetOf(closure) {
		t.Fatalf("∅ closure %s misses needs-water", closure)
	}
}

func TestAttributeSetUnknown(t *testing.T) {
	c := classicContext(t)
	if _, ok := c.AttributeSet("no-such"); ok {
		t.Fatal("unknown attribute accepted")
	}
}

func TestCloseUnderEmptyBase(t *testing.T) {
	x := NewBitSet(5)
	x.Set(2)
	got := CloseUnder(nil, x)
	if !got.Equal(x) {
		t.Fatalf("empty base closure changed the set: %s", got)
	}
}

func BenchmarkStemBaseClassic(b *testing.B) {
	c, err := NewContext(
		[]string{"leech", "bream", "frog", "dog", "spike-weed", "reed", "bean", "maize"},
		[]string{"nw", "liw", "lol", "nc", "tsl", "osl", "cm", "hl", "s"},
	)
	if err != nil {
		b.Fatal(err)
	}
	rel := [][2]int{
		{0, 0}, {0, 1}, {0, 6},
		{1, 0}, {1, 1}, {1, 6}, {1, 7},
		{2, 0}, {2, 1}, {2, 2}, {2, 6}, {2, 7},
		{3, 0}, {3, 2}, {3, 6}, {3, 7}, {3, 8},
		{4, 0}, {4, 1}, {4, 3}, {4, 5},
		{5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 5},
		{6, 0}, {6, 2}, {6, 3}, {6, 4},
		{7, 0}, {7, 2}, {7, 3}, {7, 5},
	}
	for _, p := range rel {
		c.RelateIdx(p[0], p[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.StemBase()
	}
}
