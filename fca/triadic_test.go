package fca

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// paperCheckinContext builds the check-in context of the worked example
// (5 users × 3 locations × 3 slots).
func paperCheckinContext(t *testing.T) *TriContext {
	t.Helper()
	tc, err := NewTriContext(
		[]string{"Tom", "Luke", "Anna", "Sam", "Lia"},
		[]string{"m1", "m2", "m3"},
		[]string{"t1", "t2", "t3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	triples := [][3]string{
		{"Tom", "m1", "t1"}, {"Tom", "m1", "t2"}, {"Tom", "m1", "t3"},
		{"Luke", "m2", "t1"}, {"Luke", "m2", "t2"}, {"Luke", "m3", "t3"},
		{"Sam", "m1", "t3"},
		{"Lia", "m2", "t1"}, {"Lia", "m2", "t2"}, {"Lia", "m2", "t3"},
	}
	for _, tr := range triples {
		if err := tc.Relate(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// paperTweetContext builds the α>0.6 cut of the tweet context of the worked
// example (5 users × 5 URIs × 3 slots).
func paperTweetContext(t *testing.T) *FuzzyTriContext {
	t.Helper()
	f, err := NewFuzzyTriContext(
		[]string{"Tom", "Luke", "Anna", "Sam", "Lia"},
		[]string{"URI1", "URI2", "URI3", "URI4", "URI5"},
		[]string{"t1", "t2", "t3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	set := func(u, uri, slot string, d float64) {
		t.Helper()
		if err := f.Set(u, uri, slot, d); err != nil {
			t.Fatal(err)
		}
	}
	// t1
	set("Tom", "URI1", "t1", 1.0)
	set("Luke", "URI1", "t1", 1.0)
	set("Anna", "URI3", "t1", 0.9)
	set("Sam", "URI2", "t1", 1.0)
	set("Lia", "URI5", "t1", 1.0)
	// t2
	set("Tom", "URI1", "t2", 1.0)
	set("Luke", "URI4", "t2", 0.8)
	set("Anna", "URI3", "t2", 0.8)
	set("Sam", "URI5", "t2", 0.75)
	set("Lia", "URI5", "t2", 0.8)
	// t3
	set("Tom", "URI3", "t3", 0.8)
	set("Luke", "URI1", "t3", 1.0)
	set("Anna", "URI3", "t3", 1.0)
	set("Sam", "URI2", "t3", 1.0)
	set("Lia", "URI5", "t3", 1.0)
	return f
}

func TestTriContextValidation(t *testing.T) {
	if _, err := NewTriContext([]string{"a", "a"}, []string{"m"}, []string{"t"}); err == nil {
		t.Error("duplicate object accepted")
	}
	tc, err := NewTriContext([]string{"a"}, []string{"m"}, []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Relate("b", "m", "t"); err == nil {
		t.Error("unknown object accepted")
	}
	if err := tc.Relate("a", "x", "t"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := tc.Relate("a", "m", "x"); err == nil {
		t.Error("unknown condition accepted")
	}
	if err := tc.Relate("a", "m", "t"); err != nil {
		t.Fatal(err)
	}
	if !tc.Incident(0, 0, 0) {
		t.Error("Incident after Relate false")
	}
}

// triConceptsBrute enumerates triadic concepts by trying every (A2, A3)
// pair and checking maximality in every dimension — exponential, for tiny
// contexts only.
func triConceptsBrute(t *TriContext) []TriConcept {
	ng, nm, nb := len(t.objects), len(t.attributes), len(t.conditions)
	seen := map[string]TriConcept{}
	for am := 0; am < 1<<nm; am++ {
		for ab := 0; ab < 1<<nb; ab++ {
			a2 := NewBitSet(nm)
			for j := 0; j < nm; j++ {
				if am&(1<<j) != 0 {
					a2.Set(j)
				}
			}
			a3 := NewBitSet(nb)
			for k := 0; k < nb; k++ {
				if ab&(1<<k) != 0 {
					a3.Set(k)
				}
			}
			a1 := t.boxExtent(a2, a3)
			if !maximalTriple(t, a1, a2, a3, ng, nm, nb) {
				continue
			}
			key := a1.String() + "|" + a2.String() + "|" + a3.String()
			seen[key] = TriConcept{Extent: a1, Intent: a2, Modus: a3}
		}
	}
	out := make([]TriConcept, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	return out
}

// maximalTriple checks that the box A1×A2×A3 ⊆ Y cannot be extended in any
// dimension.
func maximalTriple(t *TriContext, a1, a2, a3 BitSet, ng, nm, nb int) bool {
	boxIn := func(a1, a2, a3 BitSet) bool {
		ok := true
		a1.ForEach(func(i int) {
			a2.ForEach(func(j int) {
				a3.ForEach(func(k int) {
					if !t.Incident(i, j, k) {
						ok = false
					}
				})
			})
		})
		return ok
	}
	if !boxIn(a1, a2, a3) {
		return false
	}
	for i := 0; i < ng; i++ {
		if !a1.Test(i) {
			bigger := a1.Clone()
			bigger.Set(i)
			if boxIn(bigger, a2, a3) {
				return false
			}
		}
	}
	for j := 0; j < nm; j++ {
		if !a2.Test(j) {
			bigger := a2.Clone()
			bigger.Set(j)
			if boxIn(a1, bigger, a3) {
				return false
			}
		}
	}
	for k := 0; k < nb; k++ {
		if !a3.Test(k) {
			bigger := a3.Clone()
			bigger.Set(k)
			if boxIn(a1, a2, bigger) {
				return false
			}
		}
	}
	return true
}

func triKey(c TriConcept) string {
	return c.Extent.String() + "|" + c.Intent.String() + "|" + c.Modus.String()
}

func sortTri(cs []TriConcept) []string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = triKey(c)
	}
	sort.Strings(keys)
	return keys
}

func TestTriasMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		ng, nm, nb := 1+rng.Intn(5), 1+rng.Intn(4), 1+rng.Intn(4)
		objs := make([]string, ng)
		attrs := make([]string, nm)
		conds := make([]string, nb)
		for i := range objs {
			objs[i] = "g" + string(rune('0'+i))
		}
		for j := range attrs {
			attrs[j] = "m" + string(rune('0'+j))
		}
		for k := range conds {
			conds[k] = "b" + string(rune('0'+k))
		}
		tc, err := NewTriContext(objs, attrs, conds)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ng; i++ {
			for j := 0; j < nm; j++ {
				for k := 0; k < nb; k++ {
					if rng.Intn(3) == 0 {
						tc.RelateIdx(i, j, k)
					}
				}
			}
		}
		got := sortTri(tc.Concepts())
		want := sortTri(triConceptsBrute(tc))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%dx%dx%d):\nTRIAS %v\nbrute %v", trial, ng, nm, nb, got, want)
		}
	}
}

func TestPaperCheckinConcepts(t *testing.T) {
	tc := paperCheckinContext(t)
	comms, ok := tc.MTriadicConcepts("m2")
	if !ok {
		t.Fatal("m2 unknown")
	}
	// Expected m2-communities: ({Luke,Lia},{m2},{t1,t2}) and
	// ({Lia},{m2},{t1,t2,t3}).
	var got [][2]string
	for _, c := range comms {
		if c.Extent.IsEmpty() {
			continue
		}
		got = append(got, [2]string{
			join(tc.ExtentNames(c)), join(tc.ModusNames(c)),
		})
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	want := [][2]string{
		{"Lia", "t1,t2,t3"},
		{"Lia,Luke", "t1,t2"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("m2 communities = %v, want %v", got, want)
	}
}

func TestPaperTweetConcepts(t *testing.T) {
	cut := paperTweetContext(t).AlphaCut(0.6)
	uri1, ok := cut.MTriadicConcepts("URI1")
	if !ok {
		t.Fatal("URI1 unknown")
	}
	var got [][2]string
	for _, c := range uri1 {
		if c.Extent.IsEmpty() {
			continue
		}
		got = append(got, [2]string{join(cut.ExtentNames(c)), join(cut.ModusNames(c))})
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0]+got[i][1] < got[j][0]+got[j][1] })
	want := [][2]string{
		{"Luke,Tom", "t1"},
		{"Luke", "t1,t3"},
		{"Tom", "t1,t2"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("URI1 communities = %v, want %v", got, want)
	}
}

func join(xs []string) string { return strings.Join(xs, ",") }

func TestAlphaCutThresholds(t *testing.T) {
	f := paperTweetContext(t)
	if f.Len() != 15 {
		t.Fatalf("fuzzy triples = %d, want 15", f.Len())
	}
	// α = 0.75 drops Sam-URI5-t2 (0.75, strict cut) and nothing else below 0.8.
	cut := f.AlphaCut(0.75)
	if cut.Incident(3, 4, 1) { // Sam, URI5, t2
		t.Fatal("0.75-degree triple survived α=0.75 strict cut")
	}
	if !cut.Incident(1, 3, 1) { // Luke, URI4, t2 at 0.8
		t.Fatal("0.8-degree triple dropped at α=0.75")
	}
	// α = 1 keeps nothing.
	empty := f.AlphaCut(1)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 3; k++ {
				if empty.Incident(i, j, k) {
					t.Fatal("α=1 cut should be empty")
				}
			}
		}
	}
}

func TestFuzzySetValidation(t *testing.T) {
	f, _ := NewFuzzyTriContext([]string{"u"}, []string{"m"}, []string{"t"})
	if err := f.Set("u", "m", "t", 1.5); err == nil {
		t.Error("degree > 1 accepted")
	}
	if err := f.Set("u", "m", "t", -0.1); err == nil {
		t.Error("negative degree accepted")
	}
	if err := f.Set("x", "m", "t", 0.5); err == nil {
		t.Error("unknown object accepted")
	}
	// Max-merge on repeated set.
	f.Set("u", "m", "t", 0.4)
	f.Set("u", "m", "t", 0.7)
	f.Set("u", "m", "t", 0.2)
	if got := f.Degree("u", "m", "t"); got != 0.7 {
		t.Fatalf("Degree = %v, want max 0.7", got)
	}
	if f.Degree("zz", "m", "t") != 0 {
		t.Fatal("unknown degree should be 0")
	}
}
