package fca

import (
	"fmt"
	"sort"
)

// Context is a dyadic formal context (G, M, I): a set of objects G, a set of
// attributes M, and an incidence relation I ⊆ G×M. Objects and attributes
// carry string names; internally they are dense indexes.
type Context struct {
	objects    []string
	attributes []string
	objIndex   map[string]int
	attrIndex  map[string]int
	rows       []BitSet // per object: its attributes
	cols       []BitSet // per attribute: its objects
}

// NewContext creates a context with the given object and attribute names.
// Names must be unique within their kind.
func NewContext(objects, attributes []string) (*Context, error) {
	c := &Context{
		objects:    append([]string(nil), objects...),
		attributes: append([]string(nil), attributes...),
		objIndex:   make(map[string]int, len(objects)),
		attrIndex:  make(map[string]int, len(attributes)),
	}
	for i, o := range objects {
		if _, dup := c.objIndex[o]; dup {
			return nil, fmt.Errorf("fca: duplicate object %q", o)
		}
		c.objIndex[o] = i
	}
	for j, a := range attributes {
		if _, dup := c.attrIndex[a]; dup {
			return nil, fmt.Errorf("fca: duplicate attribute %q", a)
		}
		c.attrIndex[a] = j
	}
	c.rows = make([]BitSet, len(objects))
	for i := range c.rows {
		c.rows[i] = NewBitSet(len(attributes))
	}
	c.cols = make([]BitSet, len(attributes))
	for j := range c.cols {
		c.cols[j] = NewBitSet(len(objects))
	}
	return c, nil
}

// Objects returns the object names (shared slice; do not mutate).
func (c *Context) Objects() []string { return c.objects }

// Attributes returns the attribute names (shared slice; do not mutate).
func (c *Context) Attributes() []string { return c.attributes }

// NumObjects returns |G|.
func (c *Context) NumObjects() int { return len(c.objects) }

// NumAttributes returns |M|.
func (c *Context) NumAttributes() int { return len(c.attributes) }

// AddObject appends a new object with the given attribute set (a bitset
// over this context's attributes). Used by attribute exploration to absorb
// counterexamples.
func (c *Context) AddObject(name string, attrs BitSet) error {
	if _, dup := c.objIndex[name]; dup {
		return fmt.Errorf("fca: duplicate object %q", name)
	}
	if attrs.Cap() != len(c.attributes) {
		return fmt.Errorf("fca: attribute set capacity %d ≠ %d attributes", attrs.Cap(), len(c.attributes))
	}
	i := len(c.objects)
	c.objIndex[name] = i
	c.objects = append(c.objects, name)
	c.rows = append(c.rows, attrs.Clone())
	for j := range c.cols {
		grown := NewBitSet(len(c.objects))
		c.cols[j].ForEach(func(o int) { grown.Set(o) })
		if attrs.Test(j) {
			grown.Set(i)
		}
		c.cols[j] = grown
	}
	return nil
}

// Relate adds (object, attribute) to the incidence relation by name.
func (c *Context) Relate(object, attribute string) error {
	i, ok := c.objIndex[object]
	if !ok {
		return fmt.Errorf("fca: unknown object %q", object)
	}
	j, ok := c.attrIndex[attribute]
	if !ok {
		return fmt.Errorf("fca: unknown attribute %q", attribute)
	}
	c.RelateIdx(i, j)
	return nil
}

// RelateIdx adds (object i, attribute j) by index.
func (c *Context) RelateIdx(i, j int) {
	c.rows[i].Set(j)
	c.cols[j].Set(i)
}

// Incident reports whether object i has attribute j.
func (c *Context) Incident(i, j int) bool { return c.rows[i].Test(j) }

// ObjectsDerive returns the attributes common to all objects in ext (the ′
// operator on object sets). For the empty set it returns all attributes.
func (c *Context) ObjectsDerive(ext BitSet) BitSet {
	out := NewBitSet(len(c.attributes))
	out.Fill()
	ext.ForEach(func(i int) { out.AndWith(c.rows[i]) })
	return out
}

// AttributesDerive returns the objects possessing all attributes in int
// (the ′ operator on attribute sets). For the empty set it returns all
// objects.
func (c *Context) AttributesDerive(intent BitSet) BitSet {
	out := NewBitSet(len(c.objects))
	out.Fill()
	intent.ForEach(func(j int) { out.AndWith(c.cols[j]) })
	return out
}

// CloseAttributes returns the closure A″ of an attribute set.
func (c *Context) CloseAttributes(intent BitSet) BitSet {
	return c.ObjectsDerive(c.AttributesDerive(intent))
}

// Concept is a formal concept: a maximal rectangle (Extent × Intent) ⊆ I
// with Extent′ = Intent and Intent′ = Extent.
type Concept struct {
	Extent BitSet // objects
	Intent BitSet // attributes
}

// ExtentNames resolves the extent to object names.
func (c *Context) ExtentNames(cc Concept) []string {
	return names(c.objects, cc.Extent)
}

// IntentNames resolves the intent to attribute names.
func (c *Context) IntentNames(cc Concept) []string {
	return names(c.attributes, cc.Intent)
}

func names(all []string, s BitSet) []string {
	out := make([]string, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, all[i]) })
	sort.Strings(out)
	return out
}

// Concepts enumerates every formal concept of the context using Ganter's
// NextClosure algorithm, in lectic order of intents. The number of concepts
// can be exponential in the context size; callers working with adversarial
// inputs should bound their contexts.
func (c *Context) Concepts() []Concept {
	m := len(c.attributes)
	var out []Concept

	intent := c.CloseAttributes(NewBitSet(m))
	for {
		out = append(out, Concept{Extent: c.AttributesDerive(intent), Intent: intent.Clone()})
		next, ok := c.nextClosure(intent)
		if !ok {
			return out
		}
		intent = next
	}
}

// nextClosure computes the lectically next closed attribute set after the
// given closed set, or ok=false when it was the last one (the full set).
func (c *Context) nextClosure(a BitSet) (BitSet, bool) {
	m := len(c.attributes)
	for i := m - 1; i >= 0; i-- {
		if a.Test(i) {
			continue
		}
		// candidate = closure((a ∩ {0..i−1}) ∪ {i})
		cand := NewBitSet(m)
		for j := 0; j < i; j++ {
			if a.Test(j) {
				cand.Set(j)
			}
		}
		cand.Set(i)
		closed := c.CloseAttributes(cand)
		// Accept if no new element below i was introduced.
		ok := true
		for j := 0; j < i; j++ {
			if closed.Test(j) && !cand.Test(j) {
				ok = false
				break
			}
		}
		if ok {
			return closed, true
		}
	}
	return BitSet{}, false
}
