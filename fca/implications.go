package fca

// Implications: attribute dependencies of a formal context. The
// Duquenne–Guigues ("stem") base is the canonical minimum-cardinality set
// of implications from which every attribute implication that holds in the
// context can be derived — the standard FCA tool for dependency analysis
// ("every user who checks in at the stadium in the evening also posts about
// sports").

// Implication states: every object having all Premise attributes also has
// all Conclusion attributes. Conclusion is stored closed (it contains the
// premise's full closure).
type Implication struct {
	Premise    BitSet
	Conclusion BitSet
}

// Holds reports whether the implication is valid in the context: the
// premise's extent is contained in the conclusion's extent.
func (imp Implication) Holds(c *Context) bool {
	return c.AttributesDerive(imp.Premise).IsSubsetOf(c.AttributesDerive(imp.Conclusion))
}

// PremiseNames resolves the premise to attribute names.
func (c *Context) PremiseNames(imp Implication) []string {
	return names(c.attributes, imp.Premise)
}

// ConclusionNames resolves the conclusion to attribute names.
func (c *Context) ConclusionNames(imp Implication) []string {
	return names(c.attributes, imp.Conclusion)
}

// CloseUnder returns the syntactic closure of X under the implication set:
// the smallest superset of X closed under every implication (premise ⊆ set
// ⇒ conclusion ⊆ set). For a sound and complete basis this equals the
// context closure X″.
func CloseUnder(impls []Implication, x BitSet) BitSet {
	out := x.Clone()
	for changed := true; changed; {
		changed = false
		for _, imp := range impls {
			if imp.Premise.IsSubsetOf(out) && !imp.Conclusion.IsSubsetOf(out) {
				out.OrWith(imp.Conclusion)
				changed = true
			}
		}
	}
	return out
}

// lStarClose closes X under the implications using the PROPER-premise rule
// (apply P→C only when P ⊊ X). Its fixpoints are exactly the intents plus
// the pseudo-intents, which is the closure system the stem-base enumeration
// walks.
func lStarClose(impls []Implication, x BitSet) BitSet {
	out := x.Clone()
	for changed := true; changed; {
		changed = false
		for _, imp := range impls {
			if imp.Premise.IsSubsetOf(out) && !imp.Premise.Equal(out) && !imp.Conclusion.IsSubsetOf(out) {
				out.OrWith(imp.Conclusion)
				changed = true
			}
		}
	}
	return out
}

// StemBase computes the Duquenne–Guigues base of the context with Ganter's
// NextClosure-style enumeration of pseudo-intents. The result derives every
// valid attribute implication (see CloseUnder) with the minimum possible
// number of implications.
//
// Worst-case cost is exponential in the attribute count (the base itself
// can be exponential); intended for the analysis-sized contexts this
// package targets.
func (c *Context) StemBase() []Implication {
	m := len(c.attributes)
	var impls []Implication

	a := lStarClose(impls, NewBitSet(m))
	for {
		closed := c.CloseAttributes(a)
		if !a.Equal(closed) {
			// a is a pseudo-intent: record its implication.
			impls = append(impls, Implication{Premise: a.Clone(), Conclusion: closed})
		}
		if a.Count() == m {
			return impls
		}
		next, ok := c.nextLStar(impls, a)
		if !ok {
			return impls
		}
		a = next
	}
}

// nextLStar is the NextClosure step over the intents-plus-pseudo-intents
// closure system.
func (c *Context) nextLStar(impls []Implication, a BitSet) (BitSet, bool) {
	m := len(c.attributes)
	for i := m - 1; i >= 0; i-- {
		if a.Test(i) {
			continue
		}
		cand := NewBitSet(m)
		for j := 0; j < i; j++ {
			if a.Test(j) {
				cand.Set(j)
			}
		}
		cand.Set(i)
		closed := lStarClose(impls, cand)
		ok := true
		for j := 0; j < i; j++ {
			if closed.Test(j) && !cand.Test(j) {
				ok = false
				break
			}
		}
		if ok {
			return closed, true
		}
	}
	return BitSet{}, false
}

// AttributeSet builds a BitSet over the context's attributes from names.
// Unknown names are reported.
func (c *Context) AttributeSet(names ...string) (BitSet, bool) {
	s := NewBitSet(len(c.attributes))
	for _, n := range names {
		j, ok := c.attrIndex[n]
		if !ok {
			return BitSet{}, false
		}
		s.Set(j)
	}
	return s, true
}
