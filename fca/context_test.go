package fca

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// classicContext is the standard "live in water" teaching example with a
// known concept count.
func classicContext(t *testing.T) *Context {
	t.Helper()
	c, err := NewContext(
		[]string{"leech", "bream", "frog", "dog", "spike-weed", "reed", "bean", "maize"},
		[]string{"needs-water", "lives-in-water", "lives-on-land", "needs-chlorophyll", "two-seed-leaves", "one-seed-leaf", "can-move", "has-limbs", "suckles"},
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string][]string{
		"leech":      {"needs-water", "lives-in-water", "can-move"},
		"bream":      {"needs-water", "lives-in-water", "can-move", "has-limbs"},
		"frog":       {"needs-water", "lives-in-water", "lives-on-land", "can-move", "has-limbs"},
		"dog":        {"needs-water", "lives-on-land", "can-move", "has-limbs", "suckles"},
		"spike-weed": {"needs-water", "lives-in-water", "needs-chlorophyll", "one-seed-leaf"},
		"reed":       {"needs-water", "lives-in-water", "lives-on-land", "needs-chlorophyll", "one-seed-leaf"},
		"bean":       {"needs-water", "lives-on-land", "needs-chlorophyll", "two-seed-leaves"},
		"maize":      {"needs-water", "lives-on-land", "needs-chlorophyll", "one-seed-leaf"},
	}
	for o, attrs := range rel {
		for _, a := range attrs {
			if err := c.Relate(o, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestNewContextValidation(t *testing.T) {
	if _, err := NewContext([]string{"a", "a"}, []string{"x"}); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := NewContext([]string{"a"}, []string{"x", "x"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	c, err := NewContext([]string{"a"}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Relate("b", "x"); err == nil {
		t.Error("unknown object accepted")
	}
	if err := c.Relate("a", "y"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestClassicContextConceptCount(t *testing.T) {
	c := classicContext(t)
	concepts := c.Concepts()
	// The classic example is known to have 19 concepts.
	if len(concepts) != 19 {
		t.Fatalf("concept count = %d, want 19", len(concepts))
	}
	// Every concept must be a fixed point of both derivations.
	for _, cc := range concepts {
		if !c.ObjectsDerive(cc.Extent).Equal(cc.Intent) {
			t.Fatalf("extent′ ≠ intent for %v/%v", c.ExtentNames(cc), c.IntentNames(cc))
		}
		if !c.AttributesDerive(cc.Intent).Equal(cc.Extent) {
			t.Fatalf("intent′ ≠ extent for %v/%v", c.ExtentNames(cc), c.IntentNames(cc))
		}
	}
}

func TestConceptsNoDuplicates(t *testing.T) {
	c := classicContext(t)
	seen := map[string]bool{}
	for _, cc := range c.Concepts() {
		key := cc.Intent.String()
		if seen[key] {
			t.Fatalf("duplicate intent %s", key)
		}
		seen[key] = true
	}
}

// conceptsBrute enumerates concepts by closing every attribute subset —
// exponential, usable only for tiny contexts.
func conceptsBrute(c *Context) []Concept {
	m := c.NumAttributes()
	seen := map[string]Concept{}
	for mask := 0; mask < 1<<m; mask++ {
		s := NewBitSet(m)
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				s.Set(j)
			}
		}
		closed := c.CloseAttributes(s)
		seen[closed.String()] = Concept{Extent: c.AttributesDerive(closed), Intent: closed}
	}
	out := make([]Concept, 0, len(seen))
	for _, cc := range seen {
		out = append(out, cc)
	}
	return out
}

func sortConcepts(cs []Concept) []Concept {
	out := append([]Concept(nil), cs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Intent.String() < out[j].Intent.String() })
	return out
}

func TestNextClosureMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		nObj := 1 + rng.Intn(6)
		nAttr := 1 + rng.Intn(6)
		objs := make([]string, nObj)
		attrs := make([]string, nAttr)
		for i := range objs {
			objs[i] = "o" + string(rune('0'+i))
		}
		for j := range attrs {
			attrs[j] = "a" + string(rune('0'+j))
		}
		c, err := NewContext(objs, attrs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nObj; i++ {
			for j := 0; j < nAttr; j++ {
				if rng.Intn(2) == 0 {
					c.RelateIdx(i, j)
				}
			}
		}
		got := sortConcepts(c.Concepts())
		want := sortConcepts(conceptsBrute(c))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d concepts, brute force %d", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].Intent.Equal(want[i].Intent) || !got[i].Extent.Equal(want[i].Extent) {
				t.Fatalf("trial %d concept %d mismatch", trial, i)
			}
		}
	}
}

// TestGaloisConnectionProperties checks the defining properties of the
// derivation operators on random contexts: antitone, extensive composition,
// idempotent closure.
func TestGaloisConnectionProperties(t *testing.T) {
	f := func(seed int64, aMask, bMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewContext(
			[]string{"o0", "o1", "o2", "o3", "o4"},
			[]string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"},
		)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			for j := 0; j < 8; j++ {
				if rng.Intn(3) == 0 {
					c.RelateIdx(i, j)
				}
			}
		}
		mkSet := func(mask uint8) BitSet {
			s := NewBitSet(8)
			for j := 0; j < 8; j++ {
				if mask&(1<<j) != 0 {
					s.Set(j)
				}
			}
			return s
		}
		a, b := mkSet(aMask), mkSet(bMask)

		// Antitone: A ⊆ B ⇒ B′ ⊆ A′.
		ab := a.Clone()
		ab.OrWith(b) // a ⊆ ab
		if !c.AttributesDerive(ab).IsSubsetOf(c.AttributesDerive(a)) {
			return false
		}
		// Extensive: A ⊆ A″.
		if !a.IsSubsetOf(c.CloseAttributes(a)) {
			return false
		}
		// Idempotent: A″ = (A″)″.
		closed := c.CloseAttributes(a)
		if !c.CloseAttributes(closed).Equal(closed) {
			return false
		}
		// Monotone closure: A ⊆ B ⇒ A″ ⊆ B″ (with B := A∪B).
		if !c.CloseAttributes(a).IsSubsetOf(c.CloseAttributes(ab)) {
			return false
		}
		// Triple derivation: A′ = A‴.
		da := c.AttributesDerive(a)
		if !c.AttributesDerive(c.ObjectsDerive(da)).Equal(da) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExtentIntentNamesSorted(t *testing.T) {
	c := classicContext(t)
	for _, cc := range c.Concepts() {
		en := c.ExtentNames(cc)
		if !sort.StringsAreSorted(en) {
			t.Fatalf("extent names unsorted: %v", en)
		}
		in := c.IntentNames(cc)
		if !sort.StringsAreSorted(in) {
			t.Fatalf("intent names unsorted: %v", in)
		}
	}
}
