package fca

import "fmt"

// Attribute exploration (Ganter): interactively complete a partially
// observed domain. The algorithm walks the would-be stem base of the
// current context; for each candidate implication it asks an expert whether
// the implication holds in the full domain. Accepted implications join the
// basis; rejections must come with a counterexample object, which is added
// to the context and the exploration continues. On termination the basis is
// sound and complete for the expert's domain, and the context contains
// enough objects to witness every non-implication.

// Expert answers implication queries during exploration.
type Expert interface {
	// Ask is posed a candidate implication (premise → conclusion over the
	// context's attributes). Return accept=true when the implication holds
	// in the whole domain; otherwise return a counterexample: a new object
	// name and its attribute set, which must satisfy the premise but not
	// the full conclusion.
	Ask(imp Implication) (accept bool, objName string, objAttrs BitSet)
}

// ExpertFunc adapts a function to the Expert interface.
type ExpertFunc func(imp Implication) (bool, string, BitSet)

// Ask implements Expert.
func (f ExpertFunc) Ask(imp Implication) (bool, string, BitSet) { return f(imp) }

// maxExplorationSteps caps runaway experts (e.g. one that keeps returning
// fresh counterexamples that do not actually refute anything is rejected
// earlier, but a domain with astronomically many implications would loop
// for its full exponential course otherwise).
const maxExplorationSteps = 1 << 20

// Explore runs attribute exploration on the context, mutating it with the
// expert's counterexamples, and returns the accepted implication basis.
func Explore(c *Context, expert Expert) ([]Implication, error) {
	m := len(c.attributes)
	var impls []Implication

	a := NewBitSet(m)
	a = lStarClose(impls, a)
	for steps := 0; ; steps++ {
		if steps > maxExplorationSteps {
			return nil, fmt.Errorf("fca: exploration exceeded %d steps", maxExplorationSteps)
		}
		closed := c.CloseAttributes(a)
		if !a.Equal(closed) {
			imp := Implication{Premise: a.Clone(), Conclusion: closed}
			accept, name, attrs := expert.Ask(imp)
			if accept {
				impls = append(impls, imp)
			} else {
				if err := validCounterexample(imp, attrs); err != nil {
					return nil, fmt.Errorf("fca: counterexample %q: %w", name, err)
				}
				if err := c.AddObject(name, attrs); err != nil {
					return nil, err
				}
				// The context changed: re-examine the same premise.
				continue
			}
		}
		if a.Count() == m {
			return impls, nil
		}
		next, ok := c.nextLStar(impls, a)
		if !ok {
			return impls, nil
		}
		a = next
	}
}

// validCounterexample checks that the object's attributes refute the
// implication: premise satisfied, conclusion not.
func validCounterexample(imp Implication, attrs BitSet) error {
	if attrs.Cap() != imp.Conclusion.Cap() {
		return fmt.Errorf("attribute set capacity %d ≠ %d", attrs.Cap(), imp.Conclusion.Cap())
	}
	if !imp.Premise.IsSubsetOf(attrs) {
		return fmt.Errorf("does not satisfy the premise %s", imp.Premise)
	}
	if imp.Conclusion.IsSubsetOf(attrs) {
		return fmt.Errorf("satisfies the conclusion %s — not a counterexample", imp.Conclusion)
	}
	return nil
}

// DomainExpert answers exploration queries from a reference context over
// the same attributes — the standard way to test exploration, and useful in
// production to reconcile a sample context against a full dataset that is
// too large to run StemBase on directly.
type DomainExpert struct {
	Domain *Context
	serial int
}

// Ask implements Expert: accept when the implication holds in the domain,
// otherwise return the lectically first violating domain object.
func (d *DomainExpert) Ask(imp Implication) (bool, string, BitSet) {
	for i := range d.Domain.objects {
		row := d.Domain.rows[i]
		if imp.Premise.IsSubsetOf(row) && !imp.Conclusion.IsSubsetOf(row) {
			d.serial++
			return false, fmt.Sprintf("cx%d-%s", d.serial, d.Domain.objects[i]), row.Clone()
		}
	}
	return true, "", BitSet{}
}
