package fca

import (
	"reflect"
	"testing"
)

func TestCommunities(t *testing.T) {
	tc := paperCheckinContext(t)
	comms := Communities(tc, "m1")
	// m1: Tom checks in at t1..t3, Sam at t3 only →
	// ({Tom},{t1,t2,t3}) and ({Sam,Tom},{t3}).
	if len(comms) != 2 {
		t.Fatalf("m1 communities = %+v", comms)
	}
	if got := Communities(tc, "nowhere"); got != nil {
		t.Fatalf("unknown location: %+v", got)
	}
}

// TestRecommendPaperScenario reproduces the worked example: an Adidas ad at
// location m2 characterized by URI1 and URI2 must target exactly Luke.
// (The source text reports Luke's slots as the topic community's {t1, t3};
// our stricter semantics intersects with the location community's slots,
// yielding {t1} — Luke is at m2 only during t1 and t2.)
func TestRecommendPaperScenario(t *testing.T) {
	checkins := paperCheckinContext(t)
	tweets := paperTweetContext(t).AlphaCut(0.6)
	recs := Recommend(checkins, tweets, AdContext{
		Location: "m2",
		URIs:     []string{"URI1", "URI2"},
	})
	want := []Recommendation{{User: "Luke", Slots: []string{"t1"}}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("Recommend = %+v, want %+v", recs, want)
	}
}

func TestRecommendSlotFilter(t *testing.T) {
	checkins := paperCheckinContext(t)
	tweets := paperTweetContext(t).AlphaCut(0.6)
	// Restricting to t1 keeps Luke; restricting to t3 drops everyone
	// (Luke's m2 community is only active t1, t2).
	recs := Recommend(checkins, tweets, AdContext{
		Location: "m2", URIs: []string{"URI1"}, Slot: "t1",
	})
	if len(recs) != 1 || recs[0].User != "Luke" || !reflect.DeepEqual(recs[0].Slots, []string{"t1"}) {
		t.Fatalf("slot t1: %+v", recs)
	}
	recs = Recommend(checkins, tweets, AdContext{
		Location: "m2", URIs: []string{"URI1"}, Slot: "t3",
	})
	if len(recs) != 0 {
		t.Fatalf("slot t3 should be empty: %+v", recs)
	}
}

func TestRecommendLiaAtM2(t *testing.T) {
	checkins := paperCheckinContext(t)
	tweets := paperTweetContext(t).AlphaCut(0.6)
	// Lia posts about URI5 all day and checks in at m2 all day: a URI5 ad at
	// m2 should target Lia (and Sam is excluded: no m2 check-ins).
	recs := Recommend(checkins, tweets, AdContext{
		Location: "m2", URIs: []string{"URI5"},
	})
	if len(recs) != 1 || recs[0].User != "Lia" {
		t.Fatalf("URI5@m2: %+v", recs)
	}
	if !reflect.DeepEqual(recs[0].Slots, []string{"t1", "t2", "t3"}) {
		t.Fatalf("Lia slots = %v", recs[0].Slots)
	}
}

func TestRecommendNoMatch(t *testing.T) {
	checkins := paperCheckinContext(t)
	tweets := paperTweetContext(t).AlphaCut(0.6)
	if recs := Recommend(checkins, tweets, AdContext{Location: "m3", URIs: []string{"URI2"}}); len(recs) != 0 {
		t.Fatalf("m3×URI2 should be empty (Sam never at m3): %+v", recs)
	}
	if recs := Recommend(checkins, tweets, AdContext{Location: "unknown", URIs: []string{"URI1"}}); recs != nil {
		t.Fatalf("unknown location: %+v", recs)
	}
	if recs := Recommend(checkins, tweets, AdContext{Location: "m2", URIs: nil}); recs != nil {
		t.Fatalf("no URIs: %+v", recs)
	}
}

func TestLatticeOnClassicContext(t *testing.T) {
	c := classicContext(t)
	l := NewLattice(c)
	if l.Len() != 19 {
		t.Fatalf("lattice size = %d", l.Len())
	}
	top := l.Concepts()[l.Top()]
	if top.Extent.Count() != c.NumObjects() {
		t.Fatal("top concept should have full extent")
	}
	bottom := l.Concepts()[l.Bottom()]
	if bottom.Extent.Count() > top.Extent.Count() {
		t.Fatal("bottom larger than top")
	}
	// Cover relation sanity: each concept's upper covers have strictly
	// larger extents, and the top has none.
	for i := 0; i < l.Len(); i++ {
		for _, j := range l.UpperCovers(i) {
			ci := l.Concepts()[i]
			cj := l.Concepts()[j]
			if !ci.Extent.IsSubsetOf(cj.Extent) || ci.Extent.Equal(cj.Extent) {
				t.Fatalf("cover %d→%d is not a strict extent inclusion", i, j)
			}
		}
	}
	if len(l.UpperCovers(l.Top())) != 0 {
		t.Fatal("top concept has upper covers")
	}
	if len(l.LowerCovers(l.Bottom())) != 0 {
		t.Fatal("bottom concept has lower covers")
	}
	// ConceptFor: querying one attribute yields the attribute concept.
	cc, ok := l.ConceptFor("suckles")
	if !ok {
		t.Fatal("ConceptFor failed")
	}
	if got := c.ExtentNames(Concept{Extent: cc.Extent, Intent: cc.Intent}); !reflect.DeepEqual(got, []string{"dog"}) {
		t.Fatalf("suckles extent = %v", got)
	}
	if _, ok := l.ConceptFor("no-such-attribute"); ok {
		t.Fatal("unknown attribute accepted")
	}
}
