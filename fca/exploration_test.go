package fca

import (
	"math/rand"
	"testing"
)

// TestExplorationRecoversHiddenTheory: exploring an empty visible context
// against a hidden domain must produce a basis equivalent to the hidden
// context's stem base.
func TestExplorationRecoversHiddenTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		nAttr := 2 + rng.Intn(5)
		hidden := randomContext(t, rng, 3+rng.Intn(6), nAttr, 0.3+0.4*rng.Float64())

		visible, err := NewContext(nil, hidden.Attributes())
		if err != nil {
			t.Fatal(err)
		}
		basis, err := Explore(visible, &DomainExpert{Domain: hidden})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Equivalence: the explored basis closes every attribute set exactly
		// like the hidden context does.
		for mask := 0; mask < 1<<nAttr; mask++ {
			x := NewBitSet(nAttr)
			for j := 0; j < nAttr; j++ {
				if mask&(1<<j) != 0 {
					x.Set(j)
				}
			}
			got := CloseUnder(basis, x)
			want := hidden.CloseAttributes(x)
			if !got.Equal(want) {
				t.Fatalf("trial %d set %s: explored %s, hidden %s", trial, x, got, want)
			}
		}
		// The counterexamples that were absorbed are real domain rows: every
		// visible object refutes something, i.e. visible incidences appear
		// in the hidden context too (same attribute universe).
		for i := range visible.Objects() {
			row := visible.rows[i]
			found := false
			for j := range hidden.Objects() {
				if hidden.rows[j].Equal(row) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: fabricated counterexample row %s", trial, row)
			}
		}
	}
}

// TestExplorationFromPartialSample: starting from a sample of the domain
// must converge to the same theory.
func TestExplorationFromPartialSample(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	hidden := randomContext(t, rng, 8, 5, 0.4)
	visible, err := NewContext(hidden.Objects()[:3], hidden.Attributes())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		hidden.rows[i].ForEach(func(j int) { visible.RelateIdx(i, j) })
	}
	basis, err := Explore(visible, &DomainExpert{Domain: hidden})
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 1<<5; mask++ {
		x := NewBitSet(5)
		for j := 0; j < 5; j++ {
			if mask&(1<<j) != 0 {
				x.Set(j)
			}
		}
		if !CloseUnder(basis, x).Equal(hidden.CloseAttributes(x)) {
			t.Fatalf("set %s: theories differ", x)
		}
	}
}

func TestExplorationAcceptEverythingEqualsStemBase(t *testing.T) {
	// An expert that accepts every implication leaves the context unchanged
	// and must return exactly the stem base.
	c := classicContext(t)
	want := c.StemBase()
	got, err := Explore(c, ExpertFunc(func(Implication) (bool, string, BitSet) {
		return true, "", BitSet{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("basis sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Premise.Equal(want[i].Premise) || !got[i].Conclusion.Equal(want[i].Conclusion) {
			t.Fatalf("implication %d differs", i)
		}
	}
}

func TestExplorationRejectsBadCounterexample(t *testing.T) {
	c := classicContext(t)
	// An expert that rejects but hands back an object satisfying the
	// conclusion (not a counterexample).
	_, err := Explore(c, ExpertFunc(func(imp Implication) (bool, string, BitSet) {
		full := NewBitSet(c.NumAttributes())
		full.Fill()
		return false, "liar", full
	}))
	if err == nil {
		t.Fatal("fabricated counterexample accepted")
	}
	// An expert returning a wrong-capacity set.
	_, err = Explore(classicContext(t), ExpertFunc(func(imp Implication) (bool, string, BitSet) {
		return false, "liar", NewBitSet(3)
	}))
	if err == nil {
		t.Fatal("wrong-capacity counterexample accepted")
	}
}

func TestAddObject(t *testing.T) {
	c, err := NewContext([]string{"a"}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	c.Relate("a", "x")
	attrs := NewBitSet(2)
	attrs.Set(1)
	if err := c.AddObject("b", attrs); err != nil {
		t.Fatal(err)
	}
	if c.NumObjects() != 2 || !c.Incident(1, 1) || c.Incident(1, 0) {
		t.Fatal("AddObject state wrong")
	}
	// Derivations see the new object.
	ys := NewBitSet(2)
	ys.Set(1)
	ext := c.AttributesDerive(ys)
	if ext.Count() != 1 || !ext.Test(1) {
		t.Fatalf("extent of y = %s", ext)
	}
	if err := c.AddObject("a", attrs); err == nil {
		t.Fatal("duplicate object accepted")
	}
	if err := c.AddObject("c", NewBitSet(5)); err == nil {
		t.Fatal("wrong-capacity attrs accepted")
	}
}
