package fca

import "sort"

// Lattice is the concept lattice of a dyadic context: all concepts ordered
// by extent inclusion, with the cover (Hasse diagram) relation computed.
type Lattice struct {
	ctx      *Context
	concepts []Concept
	// upper[i] lists the indexes of the immediate super-concepts of i
	// (larger extents); lower[i] the immediate sub-concepts.
	upper [][]int
	lower [][]int
}

// NewLattice builds the lattice of a context. Cost is O(n²·|G|/64) over the
// n concepts for the order relation plus transitive reduction.
func NewLattice(ctx *Context) *Lattice {
	concepts := ctx.Concepts()
	// Sort by ascending extent size so that order i < j can only hold with
	// |extent_i| ≤ |extent_j|, simplifying cover computation.
	sort.Slice(concepts, func(i, j int) bool {
		ci, cj := concepts[i].Extent.Count(), concepts[j].Extent.Count()
		if ci != cj {
			return ci < cj
		}
		return concepts[i].Intent.String() < concepts[j].Intent.String()
	})
	n := len(concepts)
	l := &Lattice{
		ctx:      ctx,
		concepts: concepts,
		upper:    make([][]int, n),
		lower:    make([][]int, n),
	}
	// leq[i][j] = extent_i ⊂ extent_j (strict)
	leq := make([][]bool, n)
	for i := range leq {
		leq[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i != j && concepts[i].Extent.IsSubsetOf(concepts[j].Extent) &&
				!concepts[i].Extent.Equal(concepts[j].Extent) {
				leq[i][j] = true
			}
		}
	}
	// Cover: i ⋖ j iff i < j with no strictly intermediate concept.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !leq[i][j] {
				continue
			}
			cover := true
			for h := 0; h < n; h++ {
				if leq[i][h] && leq[h][j] {
					cover = false
					break
				}
			}
			if cover {
				l.upper[i] = append(l.upper[i], j)
				l.lower[j] = append(l.lower[j], i)
			}
		}
	}
	return l
}

// Concepts returns the lattice's concepts in ascending extent-size order.
func (l *Lattice) Concepts() []Concept { return l.concepts }

// Len returns the number of concepts.
func (l *Lattice) Len() int { return len(l.concepts) }

// Top returns the index of the top concept (full extent).
func (l *Lattice) Top() int { return len(l.concepts) - 1 }

// Bottom returns the index of the bottom concept (smallest extent).
func (l *Lattice) Bottom() int { return 0 }

// UpperCovers returns the immediate super-concepts of concept i.
func (l *Lattice) UpperCovers(i int) []int { return l.upper[i] }

// LowerCovers returns the immediate sub-concepts of concept i.
func (l *Lattice) LowerCovers(i int) []int { return l.lower[i] }

// ConceptFor returns the most specific concept whose intent contains all the
// given attributes — the standard "query the lattice" operation. ok is false
// for unknown attribute names.
func (l *Lattice) ConceptFor(attributes ...string) (Concept, bool) {
	intent := NewBitSet(l.ctx.NumAttributes())
	for _, a := range attributes {
		j, known := l.ctx.attrIndex[a]
		if !known {
			return Concept{}, false
		}
		intent.Set(j)
	}
	ext := l.ctx.AttributesDerive(intent)
	return Concept{Extent: ext, Intent: l.ctx.ObjectsDerive(ext)}, true
}
