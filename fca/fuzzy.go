package fca

import "fmt"

// FuzzyTriContext is a triadic context whose incidence carries membership
// degrees in [0, 1] instead of booleans — the representation of
// (user, topic, slot) relations weighted by annotation confidence. Crisp
// analysis is performed on α-cuts.
type FuzzyTriContext struct {
	objects    []string
	attributes []string
	conditions []string
	objIndex   map[string]int
	attrIndex  map[string]int
	condIndex  map[string]int
	deg        map[[3]int]float64
}

// NewFuzzyTriContext creates an empty fuzzy triadic context.
func NewFuzzyTriContext(objects, attributes, conditions []string) (*FuzzyTriContext, error) {
	f := &FuzzyTriContext{
		objects:    append([]string(nil), objects...),
		attributes: append([]string(nil), attributes...),
		conditions: append([]string(nil), conditions...),
		objIndex:   make(map[string]int, len(objects)),
		attrIndex:  make(map[string]int, len(attributes)),
		condIndex:  make(map[string]int, len(conditions)),
		deg:        make(map[[3]int]float64),
	}
	for i, o := range objects {
		if _, dup := f.objIndex[o]; dup {
			return nil, fmt.Errorf("fca: duplicate object %q", o)
		}
		f.objIndex[o] = i
	}
	for j, a := range attributes {
		if _, dup := f.attrIndex[a]; dup {
			return nil, fmt.Errorf("fca: duplicate attribute %q", a)
		}
		f.attrIndex[a] = j
	}
	for k, b := range conditions {
		if _, dup := f.condIndex[b]; dup {
			return nil, fmt.Errorf("fca: duplicate condition %q", b)
		}
		f.condIndex[b] = k
	}
	return f, nil
}

// Set records a membership degree; degrees outside [0, 1] are rejected.
// Setting an existing triple keeps the maximum of the old and new degree
// (a user who posts about a topic twice is at least as related to it).
func (f *FuzzyTriContext) Set(object, attribute, condition string, degree float64) error {
	if degree < 0 || degree > 1 {
		return fmt.Errorf("fca: degree %v outside [0,1]", degree)
	}
	i, ok := f.objIndex[object]
	if !ok {
		return fmt.Errorf("fca: unknown object %q", object)
	}
	j, ok := f.attrIndex[attribute]
	if !ok {
		return fmt.Errorf("fca: unknown attribute %q", attribute)
	}
	k, ok := f.condIndex[condition]
	if !ok {
		return fmt.Errorf("fca: unknown condition %q", condition)
	}
	key := [3]int{i, j, k}
	if old, exists := f.deg[key]; !exists || degree > old {
		f.deg[key] = degree
	}
	return nil
}

// Degree returns the membership of a triple (0 when absent or unknown).
func (f *FuzzyTriContext) Degree(object, attribute, condition string) float64 {
	i, ok1 := f.objIndex[object]
	j, ok2 := f.attrIndex[attribute]
	k, ok3 := f.condIndex[condition]
	if !ok1 || !ok2 || !ok3 {
		return 0
	}
	return f.deg[[3]int{i, j, k}]
}

// Len returns the number of non-zero triples.
func (f *FuzzyTriContext) Len() int { return len(f.deg) }

// AlphaCut returns the crisp triadic context containing the triples whose
// degree is strictly greater than alpha (the "> α" convention of the
// evaluation: α = 0 keeps every non-zero triple, α = 1 keeps none).
func (f *FuzzyTriContext) AlphaCut(alpha float64) *TriContext {
	t, err := NewTriContext(f.objects, f.attributes, f.conditions)
	if err != nil {
		// The fuzzy context validated the same name sets at construction.
		panic("fca: alpha-cut reconstruction: " + err.Error())
	}
	for key, d := range f.deg {
		if d > alpha {
			t.RelateIdx(key[0], key[1], key[2])
		}
	}
	return t
}
