// Package fca implements formal concept analysis: dyadic contexts with the
// NextClosure concept enumeration and lattice construction, triadic contexts
// with the TRIAS algorithm, fuzzy contexts with α-cut scaling, and the
// community-detection and ad-matching operations built on triadic concepts
// (the TFCA effectiveness baseline of the evaluation).
//
// The package is self-contained and reusable outside the recommender.
package fca

import (
	"math/bits"
	"strconv"
	"strings"
)

// BitSet is a fixed-capacity bit vector used to represent object and
// attribute sets. The zero value is an empty set of capacity 0; use
// NewBitSet for a working instance.
type BitSet struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitSet returns an empty set over the universe {0, …, n−1}.
func NewBitSet(n int) BitSet {
	if n < 0 {
		n = 0
	}
	return BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the universe size.
func (b BitSet) Cap() int { return b.n }

// Set adds element i. Out-of-range indices panic, as they indicate a
// programming error in context construction.
func (b BitSet) Set(i int) {
	if i < 0 || i >= b.n {
		panic("fca: bitset index " + strconv.Itoa(i) + " out of range")
	}
	b.words[i/64] |= 1 << (i % 64)
}

// Clear removes element i.
func (b BitSet) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("fca: bitset index " + strconv.Itoa(i) + " out of range")
	}
	b.words[i/64] &^= 1 << (i % 64)
}

// Test reports whether element i is present.
func (b BitSet) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of elements.
func (b BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (b BitSet) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet {
	out := BitSet{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// Fill adds every element of the universe.
func (b BitSet) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim zeroes the bits beyond the universe size.
func (b BitSet) trim() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// AndWith intersects b with o in place. Capacities must match.
func (b BitSet) AndWith(o BitSet) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// OrWith unions o into b in place. Capacities must match.
func (b BitSet) OrWith(o BitSet) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNotWith removes o's elements from b in place.
func (b BitSet) AndNotWith(o BitSet) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Equal reports set equality.
func (b BitSet) Equal(o BitSet) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every element of b is in o.
func (b BitSet) IsSubsetOf(o BitSet) bool {
	for i := range b.words {
		if b.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order.
func (b BitSet) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			fn(i)
			w &= w - 1
		}
	}
}

// Elements returns the members in ascending order.
func (b BitSet) Elements() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1, 3, 7}".
func (b BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(strconv.Itoa(i))
	})
	sb.WriteByte('}')
	return sb.String()
}
